// Tests for the pure erasure-coded baseline: correctness plus the O(cD)
// storage growth the paper's introduction attributes to this class of
// algorithms ([5, 9, 6, 8]).
#include <gtest/gtest.h>

#include "bounds/formulas.h"
#include "harness/runner.h"

namespace sbrs {
namespace {

using harness::RunOptions;
using harness::SchedKind;
using harness::run_register_experiment;
using registers::RegisterConfig;

RegisterConfig cfg_fk(uint32_t f, uint32_t k, uint64_t data_bits = 512) {
  RegisterConfig cfg;
  cfg.f = f;
  cfg.k = k;
  cfg.n = 2 * f + k;
  cfg.data_bits = data_bits;
  return cfg;
}

TEST(Coded, SequentialCorrectness) {
  auto alg = registers::make_coded(cfg_fk(1, 2));
  RunOptions opts;
  opts.writers = 1;
  opts.writes_per_client = 4;
  opts.readers = 1;
  opts.reads_per_client = 4;
  opts.scheduler = SchedKind::kRoundRobin;
  auto out = run_register_experiment(*alg, opts);
  EXPECT_TRUE(out.report.quiesced);
  EXPECT_TRUE(out.strong_regular.ok) << out.strong_regular.summary();
}

TEST(Coded, RegularUnderConcurrency) {
  auto alg = registers::make_coded(cfg_fk(2, 3));
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    RunOptions opts;
    opts.writers = 4;
    opts.writes_per_client = 2;
    opts.readers = 2;
    opts.reads_per_client = 2;
    opts.seed = seed;
    auto out = run_register_experiment(*alg, opts);
    EXPECT_TRUE(out.report.quiesced) << "seed " << seed;
    EXPECT_TRUE(out.weak_regular.ok)
        << "seed " << seed << ": " << out.weak_regular.summary();
    EXPECT_TRUE(out.strong_regular.ok)
        << "seed " << seed << ": " << out.strong_regular.summary();
  }
}

TEST(Coded, StorageGrowsLinearlyWithConcurrency) {
  // The motivating O(cD) claim: with c writers stalled between store and
  // commit, every object accumulates one piece per concurrent write.
  const uint32_t f = 2, k = 4;
  const uint64_t D = 1024;
  auto alg = registers::make_coded(cfg_fk(f, k, D));
  std::vector<uint64_t> measured;
  for (uint32_t c : {1u, 2u, 4u, 8u}) {
    RunOptions opts;
    opts.writers = c;
    opts.writes_per_client = 1;
    opts.scheduler = SchedKind::kBurst;
    auto out = run_register_experiment(*alg, opts);
    EXPECT_TRUE(out.report.quiesced);
    measured.push_back(out.max_object_bits);
    // Upper sanity bound: c+1 pieces per object.
    EXPECT_LE(out.max_object_bits, bounds::coded_baseline_bits(f, k, c, D));
  }
  // Strictly increasing in c, and roughly linear: doubling c from 4 to 8
  // must grow storage by at least 1.5x.
  for (size_t i = 1; i < measured.size(); ++i) {
    EXPECT_GT(measured[i], measured[i - 1]);
  }
  EXPECT_GE(measured[3] * 2, measured[2] * 3);
}

TEST(Coded, StorageExceedsAdaptiveCapUnderHighConcurrency) {
  // At high concurrency the coded baseline must pay more than the adaptive
  // algorithm's replication cap 2 n D — the gap Theorem 2 closes.
  const uint32_t f = 2, k = 4;
  const uint64_t D = 1024;
  auto coded = registers::make_coded(cfg_fk(f, k, D));
  auto adaptive = registers::make_adaptive(cfg_fk(f, k, D));
  const uint32_t c = 16;
  RunOptions opts;
  opts.writers = c;
  opts.writes_per_client = 1;
  opts.scheduler = SchedKind::kBurst;
  auto coded_out = run_register_experiment(*coded, opts);
  auto adaptive_out = run_register_experiment(*adaptive, opts);
  EXPECT_GT(coded_out.max_object_bits, adaptive_out.max_object_bits);
  EXPECT_GT(coded_out.max_object_bits, 2ull * (2 * f + k) * D);
}

TEST(Coded, CommitShrinksStorage) {
  // After quiescence only the last committed write's pieces remain.
  const uint32_t f = 1, k = 2;
  const uint64_t D = 512;
  auto alg = registers::make_coded(cfg_fk(f, k, D));
  RunOptions opts;
  opts.writers = 2;
  opts.writes_per_client = 3;
  opts.scheduler = SchedKind::kRoundRobin;
  auto out = run_register_experiment(*alg, opts);
  EXPECT_TRUE(out.report.quiesced);
  EXPECT_LE(out.final_object_bits, (2ull * f + k) * D / k);
}

TEST(Coded, ToleratesFCrashes) {
  const auto cfg = cfg_fk(2, 2);
  auto alg = registers::make_coded(cfg);
  for (uint64_t seed : {41u, 42u, 43u}) {
    RunOptions opts;
    opts.writers = 2;
    opts.writes_per_client = 2;
    opts.readers = 2;
    opts.reads_per_client = 2;
    opts.object_crashes = cfg.f;
    opts.seed = seed;
    auto out = run_register_experiment(*alg, opts);
    EXPECT_TRUE(out.live) << "seed " << seed;
    EXPECT_TRUE(out.weak_regular.ok)
        << "seed " << seed << ": " << out.weak_regular.summary();
  }
}

}  // namespace
}  // namespace sbrs
