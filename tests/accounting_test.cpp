// The incremental-accounting exactness contract: the simulator's
// delta-tracked storage totals must equal a full Definition 2 snapshot
// rebuild after *every* step, for every register algorithm, with and
// without crashes, and with crashed storage both counted and excluded.
//
// Two layers of checking:
//   - SimConfig::verify_accounting makes the simulator itself assert
//     tracked == snapshot each step (the debug cross-check);
//   - the test additionally replays each step's snapshot into a second,
//     snapshot-fed StorageMeter and requires the meters' maxima and the
//     decimated series to be bit-identical — i.e. the O(1) path reports
//     exactly what the old O(system) path did.
#include <gtest/gtest.h>

#include "harness/algorithms.h"
#include "sim/schedulers.h"
#include "sim/simulator.h"
#include "sim/workload.h"

namespace sbrs {
namespace {

struct Scenario {
  std::string algorithm;
  uint32_t object_crashes = 0;
  uint32_t client_crashes = 0;
  bool count_crashed = true;
  /// Crash recovery: restart each crashed object this many steps after its
  /// crash (0 = never), in `restart_mode`.
  uint64_t restart_after = 0;
  sim::RestartMode restart_mode = sim::RestartMode::kFromDisk;
};

registers::RegisterConfig small_cfg() {
  registers::RegisterConfig cfg;
  cfg.f = 2;
  cfg.k = 3;
  cfg.n = 7;
  cfg.data_bits = 512;
  return cfg;
}

sim::RunReport run_scenario(const Scenario& sc, uint64_t seed) {
  auto alg = harness::make_algorithm(sc.algorithm, small_cfg());
  const auto& cfg = alg->config();

  sim::UniformWorkload::Options wl;
  wl.writers = 4;
  wl.writes_per_client = 2;
  wl.readers = 2;
  wl.reads_per_client = 2;
  wl.data_bits = cfg.data_bits;

  sim::RandomScheduler::Options so;
  so.seed = seed;
  so.max_object_crashes = sc.object_crashes;
  so.crash_object_permyriad = sc.object_crashes > 0 ? 50 : 0;
  so.max_client_crashes = sc.client_crashes;
  so.crash_client_permyriad = sc.client_crashes > 0 ? 50 : 0;
  so.restart_after = sc.restart_after;
  so.restart_mode = sc.restart_mode;
  so.max_object_restarts = sc.restart_after > 0 ? sc.object_crashes : 0;

  sim::SimConfig simc;
  simc.num_objects = cfg.n;
  simc.num_clients = wl.writers + wl.readers;
  simc.max_steps = 50'000;
  simc.sample_every = 3;  // deliberately not 1: series decimation must agree
  simc.count_crashed = sc.count_crashed;
  simc.verify_accounting = true;  // per-step assert, release build included

  sim::Simulator sim(simc, alg->object_factory(), alg->client_factory(),
                     std::make_unique<sim::UniformWorkload>(wl),
                     std::make_unique<sim::RandomScheduler>(so));
  const sim::RunReport report = sim.run();

  SCOPED_TRACE(sc.algorithm);
  const auto& meter = sim.meter();

  // Replay: a second identical simulator, stepped manually, feeding a
  // snapshot-rebuilt meter with the same cadence as the incremental one
  // (one observation at construction + one per step).
  auto alg2 = harness::make_algorithm(sc.algorithm, small_cfg());
  sim::RandomScheduler::Options so2 = so;
  sim::Simulator sim2(simc, alg2->object_factory(), alg2->client_factory(),
                      std::make_unique<sim::UniformWorkload>(wl),
                      std::make_unique<sim::RandomScheduler>(so2));
  metrics::StorageMeter snap_meter(simc.sample_every);
  snap_meter.observe(sim2.snapshot());
  while (sim2.step()) {
    snap_meter.observe(sim2.snapshot());
  }

  EXPECT_EQ(meter.observations(), snap_meter.observations());
  EXPECT_EQ(meter.max_total_bits(), snap_meter.max_total_bits());
  EXPECT_EQ(meter.max_object_bits(), snap_meter.max_object_bits());
  EXPECT_EQ(meter.max_channel_bits(), snap_meter.max_channel_bits());
  EXPECT_EQ(meter.max_object_time(), snap_meter.max_object_time());
  EXPECT_EQ(meter.last_total_bits(), snap_meter.last_total_bits());
  EXPECT_EQ(meter.last_object_bits(), snap_meter.last_object_bits());
  EXPECT_EQ(meter.series().size(), snap_meter.series().size());
  const size_t common =
      std::min(meter.series().size(), snap_meter.series().size());
  for (size_t i = 0; i < common; ++i) {
    const auto& a = meter.series()[i];
    const auto& b = snap_meter.series()[i];
    EXPECT_EQ(a.time, b.time) << "sample " << i;
    EXPECT_EQ(a.total_bits, b.total_bits) << "sample " << i;
    EXPECT_EQ(a.object_bits, b.object_bits) << "sample " << i;
    EXPECT_EQ(a.channel_bits, b.channel_bits) << "sample " << i;
  }

  // Final totals also agree with a direct snapshot.
  const auto snap = sim.snapshot();
  EXPECT_EQ(sim.tracked_object_bits(), snap.object_bits());
  EXPECT_EQ(sim.tracked_channel_bits(), snap.channel_bits());
  return report;
}

TEST(IncrementalAccounting, MatchesSnapshotForAllAlgorithms) {
  for (const char* alg :
       {"abd", "abd-wb", "safe", "coded", "coded-atomic", "adaptive",
        "no-replica"}) {
    run_scenario({alg}, /*seed=*/41);
  }
}

TEST(IncrementalAccounting, MatchesSnapshotUnderObjectCrashes) {
  for (const char* alg : {"abd", "coded", "adaptive"}) {
    Scenario sc{alg};
    sc.object_crashes = 2;
    run_scenario(sc, /*seed=*/97);
  }
}

TEST(IncrementalAccounting, MatchesSnapshotUnderClientCrashes) {
  for (const char* alg : {"safe", "coded-atomic", "adaptive"}) {
    Scenario sc{alg};
    sc.client_crashes = 2;
    run_scenario(sc, /*seed=*/131);
  }
}

TEST(IncrementalAccounting, MatchesSnapshotExcludingCrashedStorage) {
  for (const char* alg : {"abd", "coded", "adaptive"}) {
    Scenario sc{alg};
    sc.object_crashes = 2;
    sc.client_crashes = 1;
    sc.count_crashed = false;
    run_scenario(sc, /*seed=*/173);
  }
}

// Crash -> restart transitions (both restart modes) must keep the tracked
// totals exactly equal to full snapshots at every step, for every
// algorithm variant. verify_accounting asserts per step inside run(); the
// replayed snapshot-fed meter additionally pins the maxima and series.
TEST(IncrementalAccounting, MatchesSnapshotAcrossRestartsForAllAlgorithms) {
  uint64_t total_restarts = 0;
  for (const char* alg :
       {"abd", "abd-wb", "safe", "coded", "coded-atomic", "adaptive",
        "no-replica"}) {
    Scenario sc{alg};
    sc.object_crashes = 2;
    sc.restart_after = 40;
    total_restarts += run_scenario(sc, /*seed=*/211).object_restarts;
  }
  EXPECT_GT(total_restarts, 0u)
      << "seed 211 must exercise at least one actual restart";
}

TEST(IncrementalAccounting, MatchesSnapshotAcrossFromScratchRestarts) {
  for (const char* alg :
       {"abd", "abd-wb", "safe", "coded", "coded-atomic", "adaptive",
        "no-replica"}) {
    Scenario sc{alg};
    sc.object_crashes = 2;
    sc.restart_after = 25;
    sc.restart_mode = sim::RestartMode::kFromScratch;
    run_scenario(sc, /*seed=*/223);
  }
}

TEST(IncrementalAccounting, MatchesSnapshotAcrossRestartsExcludingCrashed) {
  for (const char* alg : {"abd", "coded", "adaptive"}) {
    for (const sim::RestartMode mode :
         {sim::RestartMode::kFromDisk, sim::RestartMode::kFromScratch}) {
      Scenario sc{alg};
      sc.object_crashes = 2;
      sc.client_crashes = 1;
      sc.count_crashed = false;
      sc.restart_after = 30;
      sc.restart_mode = mode;
      run_scenario(sc, /*seed=*/239);
    }
  }
}

}  // namespace
}  // namespace sbrs
