// Scenario subsystem tests: the hand-written JSON parser (exact-u64
// numbers, escapes, comments, trailing commas, error reporting), the
// scenario schema (defaults, strict unknown-member rejection at every
// nesting level, rate-based timeline expansion, mode-specific
// restrictions), and scenario execution/judging including the canary
// path that must report a violation.
#include <gtest/gtest.h>

#include <string>

#include "common/check.h"
#include "common/json.h"
#include "harness/scenario.h"
#include "sim/linkfault.h"

namespace sbrs {
namespace {

// --- JSON parser ---

TEST(Json, ScalarsAndExactU64) {
  EXPECT_TRUE(json::parse("null").is_null());
  EXPECT_EQ(json::parse("true").as_bool(), true);
  EXPECT_EQ(json::parse("false").as_bool(), false);
  EXPECT_EQ(json::parse("18446744073709551615").as_u64(), UINT64_MAX);
  EXPECT_EQ(json::parse("0").as_u64(), 0u);
  EXPECT_DOUBLE_EQ(json::parse("-2.5e3").as_double(), -2500.0);
  EXPECT_EQ(json::parse("-7").as_i64(), -7);
  // Non-integer literals refuse the exact-u64 accessor.
  EXPECT_THROW(json::parse("1.5").as_u64(), CheckFailure);
  EXPECT_THROW(json::parse("-1").as_u64(), CheckFailure);
  EXPECT_THROW(json::parse("1e3").as_u64(), CheckFailure);
}

TEST(Json, StringsAndEscapes) {
  EXPECT_EQ(json::parse(R"("hello")").as_string(), "hello");
  EXPECT_EQ(json::parse(R"("a\"b\\c\nd\t")").as_string(), "a\"b\\c\nd\t");
  EXPECT_EQ(json::parse(R"("Aé")").as_string(), "A\xc3\xa9");
  EXPECT_THROW(json::parse(R"("\ud800")"), CheckFailure);  // lone surrogate
  EXPECT_THROW(json::parse(R"("unterminated)"), CheckFailure);
}

TEST(Json, CommentsAndTrailingCommas) {
  const auto v = json::parse(R"(
    // scenario files are hand-edited: comments allowed
    {
      "a": [1, 2, 3,],   // trailing comma in array
      "b": {"x": true,}, // and in object
    }
  )");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.find("a")->as_array().size(), 3u);
  EXPECT_EQ(v.find("b")->get_bool("x", false), true);
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(Json, GettersWithFallbacks) {
  const auto v = json::parse(R"({"n": 7, "s": "x", "b": true, "d": 0.5})");
  EXPECT_EQ(v.get_u64("n", 99), 7u);
  EXPECT_EQ(v.get_u64("absent", 99), 99u);
  EXPECT_EQ(v.get_string("s", "y"), "x");
  EXPECT_EQ(v.get_string("absent", "y"), "y");
  EXPECT_EQ(v.get_bool("b", false), true);
  EXPECT_DOUBLE_EQ(v.get_double("d", 2.0), 0.5);
}

TEST(Json, MalformedInputThrowsWithPosition) {
  try {
    json::parse("{\n  \"a\": @\n}");
    FAIL() << "expected CheckFailure";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("at 2:"), std::string::npos)
        << e.what();
  }
  EXPECT_THROW(json::parse(""), CheckFailure);
  EXPECT_THROW(json::parse("{\"a\": 1} trailing"), CheckFailure);
  EXPECT_THROW(json::parse("{\"a\" 1}"), CheckFailure);
  EXPECT_THROW(json::parse("[1 2]"), CheckFailure);
  EXPECT_THROW(json::parse("{\"dup\": 1, \"dup\": 2}"), CheckFailure);
}

// --- Scenario schema ---

TEST(ScenarioParse, MinimalRegisterDefaults) {
  const auto s = harness::parse_scenario(R"({"name": "tiny"})");
  EXPECT_EQ(s.name, "tiny");
  EXPECT_EQ(s.mode, "register");
  EXPECT_EQ(s.algorithm, "adaptive");
  EXPECT_EQ(s.config.f, 2u);
  EXPECT_EQ(s.config.k, 4u);
  EXPECT_EQ(s.config.n, 2 * s.config.f + s.config.k);
  EXPECT_EQ(s.expect.consistency, "algorithm");
  EXPECT_TRUE(s.expect.live);
  EXPECT_FALSE(s.expect.max_total_bits.has_value());
}

TEST(ScenarioParse, UnknownMembersRejectedAtEveryLevel) {
  // Top level.
  EXPECT_THROW(harness::parse_scenario(R"({"name": "x", "bogus": 1})"),
               CheckFailure);
  // config block.
  EXPECT_THROW(
      harness::parse_scenario(R"({"name": "x", "config": {"ff": 1}})"),
      CheckFailure);
  // faults block.
  EXPECT_THROW(
      harness::parse_scenario(
          R"({"name": "x", "faults": {"drop_permyriad": 1, "oops": 2}})"),
      CheckFailure);
  // fault window.
  EXPECT_THROW(
      harness::parse_scenario(
          R"({"name": "x",
              "faults": {"windows": [{"kind": "drop", "typo": 1}]}})"),
      CheckFailure);
  // timeline entry.
  EXPECT_THROW(
      harness::parse_scenario(
          R"({"name": "x",
              "faults": {"timeline":
                [{"at": 1, "kind": "heal_all", "nope": 1}]}})"),
      CheckFailure);
  // expect block.
  EXPECT_THROW(
      harness::parse_scenario(R"({"name": "x", "expect": {"livee": true}})"),
      CheckFailure);
}

TEST(ScenarioParse, RateBasedTimelineExpansion) {
  const auto s = harness::parse_scenario(R"({
    "name": "rate",
    "faults": {
      "timeline": [
        {"from": 100, "every": 50, "count": 3,
         "kind": "partition_object", "object": 1, "heal_after": 40}
      ]
    }
  })");
  ASSERT_EQ(s.run.fault_timeline.size(), 3u);
  EXPECT_EQ(s.run.fault_timeline[0].at, 100u);
  EXPECT_EQ(s.run.fault_timeline[1].at, 150u);
  EXPECT_EQ(s.run.fault_timeline[2].at, 200u);
  for (const auto& e : s.run.fault_timeline) {
    EXPECT_EQ(e.kind, sim::FaultEvent::Kind::kPartitionObject);
    EXPECT_EQ(e.object, 1u);
    EXPECT_EQ(e.heal_after, 40u);
  }
}

TEST(ScenarioParse, TimelineRejectsMixedAndBadTriggers) {
  // Absolute and rate-based triggers cannot be mixed in one entry.
  EXPECT_THROW(
      harness::parse_scenario(
          R"({"name": "x",
              "faults": {"timeline":
                [{"at": 5, "every": 10, "kind": "heal_all"}]}})"),
      CheckFailure);
  // Neither trigger at all.
  EXPECT_THROW(
      harness::parse_scenario(
          R"({"name": "x", "faults": {"timeline": [{"kind": "heal_all"}]}})"),
      CheckFailure);
  // Unknown event kind.
  EXPECT_THROW(
      harness::parse_scenario(
          R"({"name": "x",
              "faults": {"timeline": [{"at": 1, "kind": "explode"}]}})"),
      CheckFailure);
}

TEST(ScenarioParse, LinkFaultsRequireRandomScheduler) {
  EXPECT_THROW(
      harness::parse_scenario(
          R"({"name": "x", "scheduler": "rr",
              "faults": {"partitions": 1}})"),
      CheckFailure);
}

TEST(ScenarioParse, StoreModeShape) {
  const auto s = harness::parse_scenario(R"({
    "name": "st", "mode": "store", "algorithm": "abd",
    "config": {"f": 1, "k": 1, "data_bits": 64},
    "store": {"num_shards": 2, "num_keys": 8, "clients": 2,
              "ops_per_client": 4, "mix": "A"},
    "faults": {"partitions": 1, "heal_after": 100}
  })");
  EXPECT_EQ(s.mode, "store");
  EXPECT_EQ(s.store_opts.num_shards, 2u);
  EXPECT_EQ(s.store_opts.partitions_per_shard, 1u);
  EXPECT_EQ(s.store_opts.heal_after, 100u);

  // Register-only constructs are rejected in store mode.
  EXPECT_THROW(harness::parse_scenario(R"({
      "name": "st", "mode": "store",
      "workload": {"writers": 1}})"),
               CheckFailure);
  EXPECT_THROW(harness::parse_scenario(R"({
      "name": "st", "mode": "store",
      "faults": {"client_crashes": 1}})"),
               CheckFailure);
  EXPECT_THROW(harness::parse_scenario(R"({
      "name": "st", "mode": "store",
      "expect": {"consistency": "atomic"}})"),
               CheckFailure);
}

// --- Scenario execution ---

TEST(ScenarioRun, PassingRegisterScenario) {
  const auto s = harness::parse_scenario(R"({
    "name": "inline-pass",
    "algorithm": "adaptive",
    "config": {"f": 1, "k": 2, "data_bits": 64},
    "workload": {"writers": 2, "writes_per_client": 4,
                 "readers": 2, "reads_per_client": 4},
    "faults": {"partitions": 1, "heal_after": 200},
    "expect": {"consistency": "algorithm", "live": true}
  })");
  const auto out = harness::run_scenario(s, /*seed=*/7);
  EXPECT_TRUE(out.ok) << (out.violations.empty() ? std::string("?")
                                                 : out.violations[0]);
  EXPECT_EQ(out.seed, 7u);
  EXPECT_EQ(out.name, "inline-pass");
  EXPECT_NE(out.fingerprint, 0u);
  EXPECT_GT(out.steps, 0u);
  ASSERT_TRUE(out.register_out.has_value());

  // Same seed replays to the identical fingerprint; a different seed is a
  // different schedule.
  EXPECT_EQ(harness::run_scenario(s, 7).fingerprint, out.fingerprint);
  EXPECT_NE(harness::run_scenario(s, 8).fingerprint, out.fingerprint);
}

TEST(ScenarioRun, SeedArgumentOverridesFileSeed) {
  const auto s = harness::parse_scenario(
      R"({"name": "seeded", "seed": 3,
          "workload": {"writers": 1, "writes_per_client": 2}})");
  EXPECT_EQ(s.run.seed, 3u);
  EXPECT_EQ(harness::run_scenario(s, 11).seed, 11u);
}

TEST(ScenarioRun, CanaryStorageBoundReportsViolation) {
  // A deliberately-broken expectation: no run fits peak storage in 1 bit.
  const auto s = harness::parse_scenario(R"({
    "name": "canary-storage",
    "config": {"f": 1, "k": 2, "data_bits": 64},
    "workload": {"writers": 1, "writes_per_client": 2,
                 "readers": 1, "reads_per_client": 2},
    "expect": {"max_total_bits": 1}
  })");
  const auto out = harness::run_scenario(s, 1);
  EXPECT_FALSE(out.ok);
  ASSERT_FALSE(out.violations.empty());
  EXPECT_NE(out.violations[0].find("max_total_bits"), std::string::npos)
      << out.violations[0];
}

TEST(ScenarioRun, ReproCommandNamesScenarioAndSeed) {
  harness::Scenario s;
  s.source_path = "/tmp/x.json";
  const auto cmd = harness::repro_command(s, 42);
  EXPECT_NE(cmd.find("--scenario=/tmp/x.json"), std::string::npos) << cmd;
  EXPECT_NE(cmd.find("--seed=42"), std::string::npos) << cmd;
}

TEST(ScenarioRun, StoreModeRunsAndJudges) {
  const auto s = harness::parse_scenario(R"({
    "name": "store-pass", "mode": "store",
    "config": {"f": 1, "k": 2, "data_bits": 64},
    "store": {"num_shards": 2, "num_keys": 8, "clients": 2,
              "ops_per_client": 6, "mix": "A"},
    "faults": {"partitions": 1, "heal_after": 150},
    "expect": {"consistency": "algorithm", "live": true}
  })");
  const auto out = harness::run_scenario(s, 5);
  EXPECT_TRUE(out.ok) << (out.violations.empty() ? std::string("?")
                                                 : out.violations[0]);
  EXPECT_EQ(out.mode, "store");
  EXPECT_FALSE(out.register_out.has_value());
  EXPECT_GT(out.max_total_bits, 0u);
}

}  // namespace
}  // namespace sbrs
