// Link-fault injection tests: LinkFaultTable unit semantics (cut/heal
// bookkeeping, auto-heal deadlines, deliverability filtering), the
// simulator's partition/drop/delay behavior end to end (events recorded in
// the history trace, fault counters in RunReport, degraded-window
// accounting, determinism), scripted fault timelines, fingerprint
// compatibility for fault-free runs, and the scheduler-compatibility
// guard.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/stop_reason.h"
#include "harness/algorithms.h"
#include "harness/runner.h"
#include "harness/sweep.h"
#include "sim/linkfault.h"
#include "sim/schedulers.h"
#include "sim/simulator.h"
#include "store/store.h"

namespace sbrs {
namespace {

registers::RegisterConfig small_cfg() {
  registers::RegisterConfig cfg;
  cfg.f = 1;
  cfg.k = 2;
  cfg.n = 4;
  cfg.data_bits = 64;
  return cfg;
}

harness::RunOptions base_opts(uint64_t seed) {
  harness::RunOptions opts;
  opts.writers = 2;
  opts.writes_per_client = 5;
  opts.readers = 2;
  opts.reads_per_client = 5;
  opts.seed = seed;
  return opts;
}

// --- LinkFaultTable unit semantics ---

TEST(LinkFaultTable, FaultSeedDecorrelates) {
  EXPECT_NE(sim::fault_seed(1), 1u);
  EXPECT_NE(sim::fault_seed(1), sim::fault_seed(2));
  EXPECT_NE(sim::fault_seed(0), 0u);  // never the degenerate zero state
}

TEST(LinkFaultTable, CutAndHealBookkeeping) {
  sim::LinkFaultTable t({}, /*num_clients=*/2, /*num_objects=*/3);
  EXPECT_FALSE(t.configured());
  EXPECT_FALSE(t.engaged());
  EXPECT_EQ(t.cut_links(), 0u);

  auto changed = t.cut_link(ClientId{0}, ObjectId{1}, UINT64_MAX);
  ASSERT_EQ(changed.size(), 1u);
  EXPECT_EQ(changed[0].client.value, 0u);
  EXPECT_EQ(changed[0].object.value, 1u);
  EXPECT_TRUE(t.engaged());  // sticky once anything was cut
  EXPECT_TRUE(t.link_cut(ClientId{0}, ObjectId{1}));
  EXPECT_FALSE(t.link_cut(ClientId{1}, ObjectId{1}));
  EXPECT_EQ(t.cut_links(), 1u);

  // Re-cutting a cut link only moves the deadline: no state transition.
  EXPECT_TRUE(t.cut_link(ClientId{0}, ObjectId{1}, 100).empty());
  EXPECT_EQ(t.cut_links(), 1u);

  // Whole-object cut reports only the links that actually changed.
  changed = t.cut_object(ObjectId{1}, UINT64_MAX);
  ASSERT_EQ(changed.size(), 1u);  // (0,1) already cut; only (1,1) changes
  EXPECT_EQ(changed[0].client.value, 1u);
  EXPECT_EQ(t.cut_links(), 2u);

  // Healing an open link is a no-op; healing cut ones reports them.
  EXPECT_TRUE(t.heal_link(ClientId{0}, ObjectId{0}).empty());
  changed = t.heal_object(ObjectId{1});
  EXPECT_EQ(changed.size(), 2u);
  EXPECT_EQ(t.cut_links(), 0u);
  EXPECT_TRUE(t.engaged());  // stays engaged after full heal
}

TEST(LinkFaultTable, AutoHealDeadlines) {
  sim::LinkFaultTable t({}, 2, 2);
  t.cut_link(ClientId{0}, ObjectId{0}, /*heal_at=*/50);
  t.cut_link(ClientId{1}, ObjectId{1}, /*heal_at=*/90);
  ASSERT_TRUE(t.next_auto_heal().has_value());
  EXPECT_EQ(*t.next_auto_heal(), 50u);

  EXPECT_TRUE(t.advance_to(49).empty());
  auto healed = t.advance_to(50);
  ASSERT_EQ(healed.size(), 1u);
  EXPECT_EQ(healed[0].client.value, 0u);
  EXPECT_EQ(t.cut_links(), 1u);
  EXPECT_EQ(*t.next_auto_heal(), 90u);

  // Cut-forever links never surface a deadline.
  t.advance_to(90);
  t.cut_link(ClientId{0}, ObjectId{1}, UINT64_MAX);
  EXPECT_FALSE(t.next_auto_heal().has_value());
}

TEST(LinkFaultTable, DeliverabilityFiltering) {
  sim::LinkFaultTable t({}, 2, 2);
  sim::PendingRmw p;
  p.client = ClientId{0};
  p.target = ObjectId{1};
  EXPECT_TRUE(t.deliverable(p, 0));

  p.deliverable_at = 10;  // delayed
  EXPECT_FALSE(t.deliverable(p, 9));
  EXPECT_TRUE(t.deliverable(p, 10));

  t.cut_link(ClientId{0}, ObjectId{1}, UINT64_MAX);
  EXPECT_FALSE(t.deliverable(p, 100));  // partitioned
  p.dropped = true;
  EXPECT_TRUE(t.deliverable(p, 0));  // drops always deliverable (= the loss)
}

TEST(LinkFaultTable, NextReleaseSkipsCutAndDroppedRmws) {
  sim::LinkFaultTable t({}, 2, 2);
  std::deque<sim::PendingRmw> pending(3);
  pending[0].client = ClientId{0};
  pending[0].target = ObjectId{0};
  pending[0].deliverable_at = 40;
  pending[1].client = ClientId{0};
  pending[1].target = ObjectId{1};
  pending[1].deliverable_at = 20;  // on a link we cut below
  pending[2].client = ClientId{1};
  pending[2].target = ObjectId{0};
  pending[2].dropped = true;

  t.cut_link(ClientId{0}, ObjectId{1}, UINT64_MAX);
  auto release = t.next_release(pending, 0);
  ASSERT_TRUE(release.has_value());
  EXPECT_EQ(*release, 40u);  // cut link's 20 excluded; dropped excluded
}

// --- Fingerprint compatibility ---

TEST(LinkFaultFingerprint, FaultFreeReportsLeaveHashUntouched) {
  sim::RunReport report;
  const uint64_t h = 0x1234abcdu;
  EXPECT_EQ(harness::link_fault_fingerprint(report, h), h);
  report.rmws_dropped = 1;
  EXPECT_NE(harness::link_fault_fingerprint(report, h), h);
}

// --- End-to-end partition injection (random scheduler) ---

TEST(PartitionRun, InjectsHealsAndKeepsGuarantees) {
  auto algorithm = harness::make_algorithm("adaptive", small_cfg());
  bool saw_degraded_window = false;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    harness::RunOptions opts = base_opts(seed);
    opts.partitions = 2;
    opts.heal_after = 300;
    auto out = harness::run_register_experiment(*algorithm, opts);

    EXPECT_TRUE(out.values_legal.ok) << "seed " << seed;
    EXPECT_TRUE(out.strong_regular.ok) << "seed " << seed;
    EXPECT_TRUE(out.live) << "seed " << seed;
    // Every cut heals (auto-heal), so the counters must balance by the end.
    EXPECT_EQ(out.report.partition_events, out.report.heal_events)
        << "seed " << seed;
    // History trace records exactly the transitions the report counted.
    EXPECT_EQ(out.history.partition_count(), out.report.partition_events);
    EXPECT_EQ(out.history.heal_count(), out.report.heal_events);
    if (out.report.partition_events > 0 && out.report.degraded_steps > 0) {
      saw_degraded_window = true;
    }
  }
  EXPECT_TRUE(saw_degraded_window)
      << "no seed in 1..10 opened a measurable degraded window";
}

TEST(PartitionRun, DeterministicAcrossRepeatedRuns) {
  auto algorithm = harness::make_algorithm("adaptive", small_cfg());
  harness::RunOptions opts = base_opts(7);
  opts.partitions = 2;
  opts.heal_after = 250;
  opts.link_faults.drop_permyriad = 100;
  opts.link_faults.max_drops = 1;
  opts.link_faults.reorder_window = 4;
  const auto a = harness::run_register_experiment(*algorithm, opts);
  const auto b = harness::run_register_experiment(*algorithm, opts);
  EXPECT_EQ(harness::outcome_fingerprint(a), harness::outcome_fingerprint(b));
  EXPECT_EQ(a.report.partition_events, b.report.partition_events);
  EXPECT_EQ(a.report.rmws_dropped, b.report.rmws_dropped);
  EXPECT_EQ(a.report.steps, b.report.steps);
}

TEST(PartitionRun, PartitionTimeChargedToDegradedWindow) {
  // A scripted whole-object cut with a long heal delay must charge the
  // partitioned span into degraded_steps even with zero crashes.
  auto algorithm = harness::make_algorithm("adaptive", small_cfg());
  harness::RunOptions opts = base_opts(3);
  opts.writes_per_client = 8;
  opts.reads_per_client = 8;
  sim::FaultEvent cut;
  cut.kind = sim::FaultEvent::Kind::kPartitionObject;
  cut.at = 50;
  cut.object = 0;
  cut.heal_after = 400;
  opts.fault_timeline = {cut};
  auto out = harness::run_register_experiment(*algorithm, opts);
  EXPECT_EQ(out.report.object_crash_events, 0u);
  EXPECT_GT(out.report.partition_events, 0u);
  EXPECT_GT(out.report.degraded_steps, 0u);
  EXPECT_TRUE(out.live);
  EXPECT_TRUE(out.strong_regular.ok);
}

TEST(PartitionRun, AccountingCrossCheckHoldsAcrossPartitionHeal) {
  // verify_accounting recomputes Definition-2 storage from full snapshots
  // every step; a partition/heal cycle must keep the incremental totals
  // exactly equal throughout (the run CHECK-fails otherwise).
  auto algorithm = harness::make_algorithm("adaptive", small_cfg());
  harness::RunOptions opts = base_opts(7);
  opts.partitions = 2;
  opts.heal_after = 200;
  opts.verify_accounting = true;
  auto out = harness::run_register_experiment(*algorithm, opts);
  EXPECT_TRUE(out.live);
  EXPECT_EQ(out.report.partition_events, out.report.heal_events);
}

// --- Probabilistic drops and delays ---

TEST(DropRun, BudgetedDropsAreCountedAndSurvived) {
  registers::RegisterConfig cfg;
  cfg.f = 2;
  cfg.k = 2;
  cfg.n = 6;
  cfg.data_bits = 64;
  auto algorithm = harness::make_algorithm("adaptive", cfg);
  harness::RunOptions opts = base_opts(5);
  opts.link_faults.drop_permyriad = 10'000;  // drop every RMW...
  opts.link_faults.max_drops = 2;            // ...until the budget is spent
  auto out = harness::run_register_experiment(*algorithm, opts);
  EXPECT_EQ(out.report.rmws_dropped, 2u);
  EXPECT_TRUE(out.live);
  EXPECT_TRUE(out.values_legal.ok);
  EXPECT_TRUE(out.strong_regular.ok);
}

TEST(DelayRun, DelaysAreCountedAndRunStillQuiesces) {
  auto algorithm = harness::make_algorithm("abd", small_cfg());
  harness::RunOptions opts = base_opts(9);
  opts.link_faults.delay_permyriad = 10'000;
  opts.link_faults.delay_steps = 40;
  opts.link_faults.delay_jitter = 10;
  auto out = harness::run_register_experiment(*algorithm, opts);
  EXPECT_GT(out.report.rmws_delayed, 0u);
  EXPECT_TRUE(out.live);
  EXPECT_TRUE(out.report.quiesced);
  EXPECT_EQ(out.report.stop_reason, kStopQuiesced);
}

TEST(StopReason, ClassifiesQuiescedAndStepLimit) {
  auto algorithm = harness::make_algorithm("adaptive", small_cfg());
  harness::RunOptions opts = base_opts(1);
  auto out = harness::run_register_experiment(*algorithm, opts);
  EXPECT_EQ(out.report.stop_reason, kStopQuiesced);

  opts.max_steps = 20;  // cut the run off mid-flight
  out = harness::run_register_experiment(*algorithm, opts);
  EXPECT_EQ(out.report.stop_reason, kStopStepLimit);
}

// --- Store-level partition/heal determinism (the acceptance pin) ---

TEST(PartitionStore, DeterministicJsonAcrossThreadCounts) {
  // A partitioned+healed store run must produce a byte-identical
  // deterministic JSON block for any worker-thread count, with a
  // measurable degraded window.
  store::StoreOptions opts;
  opts.algorithm = "adaptive";
  opts.register_config = small_cfg();
  opts.num_shards = 4;
  opts.workload.num_keys = 32;
  opts.workload.clients = 3;
  opts.workload.ops_per_client = 16;
  opts.workload.mix = store::ycsb::Mix::kA;
  opts.seed = 5;
  opts.partitions_per_shard = 1;
  opts.heal_after = 300;
  opts.link_faults.reorder_window = 4;

  std::string deterministic[3];
  const uint32_t threads[] = {1, 4, 9};
  for (int i = 0; i < 3; ++i) {
    store::StoreOptions run_opts = opts;
    run_opts.threads = threads[i];
    store::Store engine(run_opts);
    const store::StoreResult result = engine.run();

    EXPECT_TRUE(result.all_live);
    EXPECT_EQ(result.consistency_failures, 0u);
    EXPECT_GT(result.partition_events, 0u);
    EXPECT_EQ(result.partition_events, result.heal_events);
    EXPECT_GT(result.degraded_steps, 0u);

    std::ostringstream os;
    store::write_store_deterministic_json(os, result);
    deterministic[i] = os.str();
  }
  EXPECT_EQ(deterministic[0], deterministic[1]);
  EXPECT_EQ(deterministic[0], deterministic[2])
      << "partitioned store results must not depend on the thread count";
}

// --- Scheduler compatibility guard ---

TEST(FaultValidation, LinkFaultsRejectDeterministicSchedulers) {
  auto algorithm = harness::make_algorithm("adaptive", small_cfg());
  harness::RunOptions opts = base_opts(1);
  opts.scheduler = harness::SchedKind::kRoundRobin;
  opts.partitions = 1;
  EXPECT_FALSE(harness::validate_fault_options(opts).empty());
  EXPECT_THROW(harness::run_register_experiment(*algorithm, opts),
               CheckFailure);

  opts.partitions = 0;
  EXPECT_TRUE(harness::has_link_faults(opts) == false);
  opts.link_faults.reorder_window = 3;
  EXPECT_TRUE(harness::has_link_faults(opts));
  EXPECT_THROW(harness::run_register_experiment(*algorithm, opts),
               CheckFailure);
}

}  // namespace
}  // namespace sbrs
