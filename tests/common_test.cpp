// Tests for the common vocabulary types: bytes, values, timestamps, RNG.
#include <gtest/gtest.h>

#include <set>

#include "common/bytes.h"
#include "common/check.h"
#include "common/rng.h"
#include "common/timestamp.h"
#include "common/value.h"

namespace sbrs {
namespace {

TEST(Bytes, HexRoundTrip) {
  const Bytes b = {0x00, 0x0a, 0xff, 0x42};
  EXPECT_EQ(to_hex(b), "000aff42");
  EXPECT_EQ(from_hex("000aff42"), b);
  EXPECT_EQ(from_hex("000AFF42"), b);
}

TEST(Bytes, FromHexRejectsMalformed) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);
}

TEST(Bytes, BitSize) {
  EXPECT_EQ(bit_size(Bytes{}), 0u);
  EXPECT_EQ(bit_size(Bytes{1, 2, 3}), 24u);
}

TEST(Bytes, Fnv1aDistinguishes) {
  EXPECT_NE(fnv1a(Bytes{1}), fnv1a(Bytes{2}));
  EXPECT_NE(fnv1a(Bytes{1, 2}), fnv1a(Bytes{2, 1}));
  EXPECT_EQ(fnv1a(Bytes{7, 7}), fnv1a(Bytes{7, 7}));
}

TEST(Bytes, XorInplace) {
  Bytes a = {0xf0, 0x0f};
  xor_inplace(a, Bytes{0xff, 0xff});
  EXPECT_EQ(a, (Bytes{0x0f, 0xf0}));
  EXPECT_THROW(xor_inplace(a, Bytes{1}), std::invalid_argument);
}

TEST(Bytes, Concat) {
  const Bytes a = {1, 2};
  const Bytes b = {3};
  std::vector<BytesView> parts = {a, b};
  EXPECT_EQ(concat(parts), (Bytes{1, 2, 3}));
}

TEST(Value, InitialIsAllZero) {
  const Value v0 = Value::initial(64);
  EXPECT_EQ(v0.bit_size(), 64u);
  for (uint8_t b : v0.bytes()) EXPECT_EQ(b, 0);
  EXPECT_EQ(v0.tag(), 0u);
}

TEST(Value, FromTagRoundTrip) {
  for (uint64_t tag : {1ull, 42ull, 0xdeadbeefull, (1ull << 63)}) {
    const Value v = Value::from_tag(tag, 256);
    EXPECT_EQ(v.tag(), tag);
    EXPECT_EQ(v.bit_size(), 256u);
  }
}

TEST(Value, DistinctTagsDistinctValues) {
  std::set<uint64_t> fingerprints;
  for (uint64_t tag = 1; tag <= 200; ++tag) {
    fingerprints.insert(Value::from_tag(tag, 128).fingerprint());
  }
  EXPECT_EQ(fingerprints.size(), 200u);
}

TEST(Value, LargeValueNonTrivialTail) {
  const Value v = Value::from_tag(5, 4096);
  size_t nonzero = 0;
  for (uint8_t b : v.bytes()) {
    if (b != 0) ++nonzero;
  }
  EXPECT_GT(nonzero, 100u);  // tail is pseudo-random, not zeros
}

TEST(Value, RejectsBadSizes) {
  EXPECT_THROW(Value::initial(0), std::invalid_argument);
  EXPECT_THROW(Value::initial(13), std::invalid_argument);
}

TEST(TimeStamp, LexicographicOrder) {
  const TimeStamp a{1, ClientId{5}};
  const TimeStamp b{2, ClientId{0}};
  const TimeStamp c{2, ClientId{3}};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_LT(a, c);
  EXPECT_EQ(a, (TimeStamp{1, ClientId{5}}));
}

TEST(TimeStamp, NextForIsStrictlyBigger) {
  const TimeStamp ts{7, ClientId{9}};
  const TimeStamp next = ts.next_for(ClientId{0});
  EXPECT_LT(ts, next);
  EXPECT_EQ(next.num, 8u);
  EXPECT_EQ(next.client, ClientId{0});
}

TEST(TimeStamp, ZeroIsMinimal) {
  EXPECT_TRUE(TimeStamp::zero().is_zero());
  EXPECT_LT(TimeStamp::zero(), (TimeStamp{0, ClientId{1}}));
  EXPECT_LT(TimeStamp::zero(), (TimeStamp{1, ClientId{0}}));
}

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, BelowIsInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
    EXPECT_EQ(rng.below(1), 0u);
  }
}

TEST(Rng, BetweenInclusive) {
  Rng rng(8);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const uint64_t v = rng.between(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= (v == 3);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BelowRoughlyUniform) {
  Rng rng(9);
  std::vector<int> buckets(10, 0);
  const int kDraws = 100'000;
  for (int i = 0; i < kDraws; ++i) ++buckets[rng.below(10)];
  for (int b : buckets) {
    EXPECT_GT(b, kDraws / 10 - kDraws / 50);
    EXPECT_LT(b, kDraws / 10 + kDraws / 50);
  }
}

TEST(Rng, ShufflePermutes) {
  Rng rng(10);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  EXPECT_NE(v, sorted);  // overwhelmingly likely
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ForkIndependent) {
  Rng a(11);
  Rng child = a.fork();
  EXPECT_NE(a.next(), child.next());
}

TEST(Check, ThrowsWithMessage) {
  try {
    SBRS_CHECK_MSG(1 == 2, "math is broken: " << 42);
    FAIL() << "expected CheckFailure";
  } catch (const CheckFailure& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("math is broken: 42"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
  }
}

}  // namespace
}  // namespace sbrs
