// Codec tests: round trips, erasure patterns, MDS property, symmetry
// (Definition 3), and boundary conditions. Parameterized over (n, k, D).
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "codec/codec.h"
#include "codec/reed_solomon.h"
#include "common/check.h"
#include "codec/replication.h"
#include "codec/stripe.h"
#include "common/rng.h"

namespace sbrs::codec {
namespace {

Value random_value(uint64_t bits, Rng& rng) {
  Bytes b(bits / 8);
  for (auto& x : b) x = static_cast<uint8_t>(rng.below(256));
  return Value(std::move(b));
}

// ---------------------------------------------------------------------------
// Parameterized MDS sweep: every codec config must decode from any k blocks.
// ---------------------------------------------------------------------------

struct CodecCase {
  std::string kind;
  uint32_t n;
  uint32_t k;
  uint64_t data_bits;
};

class CodecRoundTrip : public ::testing::TestWithParam<CodecCase> {};

TEST_P(CodecRoundTrip, AllBlocksDecode) {
  const auto& p = GetParam();
  auto codec = make_codec(p.kind, p.n, p.k, p.data_bits);
  Rng rng(p.n * 131 + p.k);
  const Value v = random_value(p.data_bits, rng);
  auto blocks = codec->encode(v);
  ASSERT_EQ(blocks.size(), p.n);
  auto decoded = codec->decode(blocks);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, v);
}

TEST_P(CodecRoundTrip, RandomKSubsetsDecode) {
  const auto& p = GetParam();
  auto codec = make_codec(p.kind, p.n, p.k, p.data_bits);
  Rng rng(p.n * 7 + p.k * 3);
  const Value v = random_value(p.data_bits, rng);
  auto blocks = codec->encode(v);
  const uint32_t k = codec->k();
  for (int trial = 0; trial < 12; ++trial) {
    std::vector<Block> subset = blocks;
    rng.shuffle(subset);
    subset.resize(k);
    auto decoded = codec->decode(subset);
    ASSERT_TRUE(decoded.has_value()) << "trial " << trial;
    EXPECT_EQ(*decoded, v);
  }
}

TEST_P(CodecRoundTrip, FewerThanKBlocksFail) {
  const auto& p = GetParam();
  auto codec = make_codec(p.kind, p.n, p.k, p.data_bits);
  const uint32_t k = codec->k();
  if (k < 2) GTEST_SKIP() << "k=1 decodes from any single block";
  Rng rng(p.n + p.k);
  const Value v = random_value(p.data_bits, rng);
  auto blocks = codec->encode(v);
  std::vector<Block> subset(blocks.begin(), blocks.begin() + (k - 1));
  EXPECT_FALSE(codec->decode(subset).has_value());
}

TEST_P(CodecRoundTrip, DuplicatedBlocksDoNotHelp) {
  const auto& p = GetParam();
  auto codec = make_codec(p.kind, p.n, p.k, p.data_bits);
  const uint32_t k = codec->k();
  if (k < 2) GTEST_SKIP();
  Rng rng(p.n + 2 * p.k);
  const Value v = random_value(p.data_bits, rng);
  auto blocks = codec->encode(v);
  // k-1 distinct blocks, one duplicated many times: still undecodable
  // (Definition 6 counts distinct indices for exactly this reason).
  std::vector<Block> subset(blocks.begin(), blocks.begin() + (k - 1));
  for (int i = 0; i < 5; ++i) subset.push_back(blocks[0]);
  EXPECT_FALSE(codec->decode(subset).has_value());
}

TEST_P(CodecRoundTrip, BulkEncodeMatchesPerBlockEncode) {
  // Contract: a codec's bulk encode() override must produce exactly the
  // blocks the base-class encode_block loop would.
  const auto& p = GetParam();
  auto codec = make_codec(p.kind, p.n, p.k, p.data_bits);
  Rng rng(p.n * 53 + p.k * 29);
  const Value v = random_value(p.data_bits, rng);
  auto bulk = codec->encode(v);
  ASSERT_EQ(bulk.size(), codec->n());
  for (uint32_t i = 1; i <= codec->n(); ++i) {
    EXPECT_EQ(bulk[i - 1], codec->encode_block(v, i)) << "block " << i;
  }
}

TEST_P(CodecRoundTrip, SymmetricEncoding) {
  const auto& p = GetParam();
  auto codec = make_codec(p.kind, p.n, p.k, p.data_bits);
  Rng rng(p.n * 31 + p.k * 17);
  std::vector<Value> sample;
  sample.push_back(Value::initial(p.data_bits));
  for (int i = 0; i < 6; ++i) sample.push_back(random_value(p.data_bits, rng));
  EXPECT_TRUE(verify_symmetry(*codec, sample));
}

TEST_P(CodecRoundTrip, BlockBitsMatchesActualBlocks) {
  const auto& p = GetParam();
  auto codec = make_codec(p.kind, p.n, p.k, p.data_bits);
  Rng rng(p.k * 97 + 1);
  const Value v = random_value(p.data_bits, rng);
  for (uint32_t i = 1; i <= codec->n(); ++i) {
    EXPECT_EQ(codec->encode_block(v, i).bit_size(), codec->block_bits(i));
  }
}

TEST_P(CodecRoundTrip, TotalBitsIsNOverKExpansion) {
  const auto& p = GetParam();
  auto codec = make_codec(p.kind, p.n, p.k, p.data_bits);
  // n blocks of ceil(D/8k) bytes each.
  const uint64_t shard_bits =
      8ull * ((p.data_bits / 8 + codec->k() - 1) / codec->k());
  EXPECT_EQ(codec->total_bits(), codec->n() * shard_bits);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CodecRoundTrip,
    ::testing::Values(
        CodecCase{"replication", 3, 1, 256}, CodecCase{"replication", 5, 1, 64},
        CodecCase{"replication", 1, 1, 8}, CodecCase{"rs", 3, 1, 256},
        CodecCase{"rs", 4, 2, 256}, CodecCase{"rs", 6, 2, 512},
        CodecCase{"rs", 7, 3, 1024}, CodecCase{"rs", 9, 3, 240},
        CodecCase{"rs", 12, 4, 2048}, CodecCase{"rs", 20, 16, 4096},
        CodecCase{"rs", 255, 100, 8000}, CodecCase{"stripe", 4, 4, 256},
        CodecCase{"stripe", 8, 8, 512}),
    [](const ::testing::TestParamInfo<CodecCase>& info) {
      return info.param.kind + "_n" + std::to_string(info.param.n) + "_k" +
             std::to_string(info.param.k) + "_D" +
             std::to_string(info.param.data_bits);
    });

// ---------------------------------------------------------------------------
// Codec-specific behaviour.
// ---------------------------------------------------------------------------

TEST(ReplicationCodec, EveryBlockIsTheFullValue) {
  ReplicationCodec codec(4, 128);
  Rng rng(2);
  const Value v = random_value(128, rng);
  for (uint32_t i = 1; i <= 4; ++i) {
    const Block b = codec.encode_block(v, i);
    EXPECT_EQ(b.data, v.bytes());
    EXPECT_EQ(b.index, i);
  }
}

TEST(ReplicationCodec, DecodeIgnoresJunkBlocks) {
  ReplicationCodec codec(3, 64);
  Rng rng(3);
  const Value v = random_value(64, rng);
  std::vector<Block> blocks;
  blocks.push_back(Block{9, Bytes{1, 2}});       // out of range index
  blocks.push_back(Block{1, Bytes{1, 2, 3}});    // wrong size
  blocks.push_back(codec.encode_block(v, 2));    // good copy
  auto decoded = codec.decode(blocks);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, v);
}

TEST(RsCodec, SystematicPrefixIsRawData) {
  RsCodec codec(6, 2, 128);
  Rng rng(4);
  const Value v = random_value(128, rng);
  // Blocks 1..k hold the data shards verbatim (systematic generator).
  const Block b1 = codec.encode_block(v, 1);
  const Block b2 = codec.encode_block(v, 2);
  Bytes joined = b1.data.bytes();
  joined.insert(joined.end(), b2.data.begin(), b2.data.end());
  joined.resize(v.bytes().size());
  EXPECT_EQ(joined, v.bytes());
}

TEST(RsCodec, PaddingHandledWhenKDoesNotDivideSize) {
  // 30 bytes into k=4 shards of 8 bytes: 2 bytes padding.
  RsCodec codec(7, 4, 240);
  Rng rng(8);
  const Value v = random_value(240, rng);
  auto blocks = codec.encode(v);
  // Decode from the last 4 (all-parity) blocks.
  std::vector<Block> subset(blocks.begin() + 3, blocks.end());
  auto decoded = codec.decode(subset);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, v);
}

TEST(RsCodec, MixedValueBlocksDecodeToSomethingElse) {
  // Blocks of two different values with the same indices must not decode
  // to either value (the register algorithms key blocks by timestamp to
  // avoid ever mixing).
  RsCodec codec(6, 2, 256);
  Rng rng(5);
  const Value v1 = random_value(256, rng);
  const Value v2 = random_value(256, rng);
  std::vector<Block> mixed = {codec.encode_block(v1, 3),
                              codec.encode_block(v2, 5)};
  auto decoded = codec.decode(mixed);
  ASSERT_TRUE(decoded.has_value());  // decoding "succeeds"...
  EXPECT_NE(*decoded, v1);           // ...but yields a Frankenstein value
  EXPECT_NE(*decoded, v2);
}

TEST(RsCodec, DistinctValuesGiveDistinctBlocks) {
  RsCodec codec(8, 3, 512);
  Rng rng(6);
  const Value v1 = random_value(512, rng);
  const Value v2 = random_value(512, rng);
  ASSERT_NE(v1, v2);
  std::set<Bytes> blocks1, blocks2;
  bool any_different = false;
  for (uint32_t i = 1; i <= 8; ++i) {
    if (codec.encode_block(v1, i).data != codec.encode_block(v2, i).data) {
      any_different = true;
    }
  }
  EXPECT_TRUE(any_different);
}

TEST(RsCodec, DuplicateIndexWithConflictingPayloadIsInconsistent) {
  // Two blocks claiming the same index but carrying different payloads mean
  // the set cannot come from one value: decode must return bottom instead of
  // silently picking whichever copy came first.
  RsCodec codec(6, 2, 256);
  Rng rng(9);
  const Value v = random_value(256, rng);
  auto blocks = codec.encode(v);
  Block forged = blocks[0];
  forged.data.mutable_bytes()[0] ^= 0x01;  // clones: blocks[0] is untouched
  // A full decodable set plus one conflicting duplicate of block 1.
  std::vector<Block> set = {blocks[0], blocks[1], forged};
  EXPECT_FALSE(codec.decode(set).has_value());
  // Order must not matter: conflict detected even when the duplicate's twin
  // arrives later.
  std::vector<Block> reordered = {forged, blocks[1], blocks[0]};
  EXPECT_FALSE(codec.decode(reordered).has_value());
}

TEST(RsCodec, DuplicateIndexWithIdenticalPayloadIsRedundant) {
  RsCodec codec(6, 2, 256);
  Rng rng(10);
  const Value v = random_value(256, rng);
  auto blocks = codec.encode(v);
  std::vector<Block> set = {blocks[4], blocks[4], blocks[4], blocks[5]};
  auto decoded = codec.decode(set);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, v);
}

TEST(RsCodec, DecodeInverseCacheIsHitAndStaysCorrect) {
  RsCodec codec(12, 4, 4096);
  Rng rng(11);
  const Value v = random_value(4096, rng);
  auto blocks = codec.encode(v);
  std::vector<Block> parity(blocks.begin() + 4, blocks.begin() + 8);
  ASSERT_EQ(codec.decode_cache_hits(), 0u);
  for (int round = 0; round < 5; ++round) {
    auto decoded = codec.decode(parity);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, v);
  }
  // First decode of this row set inverts; the next four hit the cache.
  EXPECT_EQ(codec.decode_cache_hits(), 4u);
  // A different value with the same row set reuses the cached inverse.
  const Value v2 = random_value(4096, rng);
  auto blocks2 = codec.encode(v2);
  std::vector<Block> parity2(blocks2.begin() + 4, blocks2.begin() + 8);
  auto decoded2 = codec.decode(parity2);
  ASSERT_TRUE(decoded2.has_value());
  EXPECT_EQ(*decoded2, v2);
  EXPECT_EQ(codec.decode_cache_hits(), 5u);
}

TEST(RsCodec, SystematicDecodeDoesNotTouchInverseCache) {
  RsCodec codec(8, 3, 512);
  Rng rng(12);
  const Value v = random_value(512, rng);
  auto blocks = codec.encode(v);
  std::vector<Block> data(blocks.begin(), blocks.begin() + 3);
  auto decoded = codec.decode(data);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, v);
  EXPECT_EQ(codec.decode_cache_hits(), 0u);
}

TEST(StripeCodec, NeedsAllBlocks) {
  StripeCodec codec(4, 256);
  Rng rng(7);
  const Value v = random_value(256, rng);
  auto blocks = codec.encode(v);
  EXPECT_TRUE(codec.decode(blocks).has_value());
  blocks.pop_back();
  EXPECT_FALSE(codec.decode(blocks).has_value());
}

TEST(CodecFactory, UnknownKindFails) {
  EXPECT_THROW(make_codec("fountain", 4, 2, 256), CheckFailure);
}

TEST(CodecFactory, InvalidParamsFail) {
  EXPECT_THROW(make_codec("rs", 4, 5, 256), CheckFailure);   // k > n
  EXPECT_THROW(make_codec("rs", 300, 5, 256), CheckFailure); // n > 255
  EXPECT_THROW(make_codec("rs", 4, 2, 0), CheckFailure);     // no data
  EXPECT_THROW(make_codec("rs", 4, 2, 12), CheckFailure);    // not byte-sized
}

}  // namespace
}  // namespace sbrs::codec
