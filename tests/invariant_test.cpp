// The paper's key invariant (Appendix D, Invariant 1), checked live:
//
//   At any time, for any set S of n - f base objects, let ts_S be the
//   maximum storedTS among S. Then some timestamp ts' >= ts_S has at least
//   k distinct pieces stored within S.
//
// This is what makes reads of the adaptive (and coded) registers return
// the latest completely-written or newer value. We step the simulator
// manually and verify the invariant over EVERY (n-f)-subset of objects
// after every single event, across schedules and algorithms.
#include <gtest/gtest.h>

#include "registers/object_state.h"
#include "registers/register_algorithm.h"
#include "sim/schedulers.h"
#include "sim/simulator.h"
#include "sim/workload.h"

namespace sbrs {
namespace {

using registers::Chunk;
using registers::RegisterObjectState;

/// All size-m subsets of {0..n-1}.
std::vector<std::vector<uint32_t>> subsets(uint32_t n, uint32_t m) {
  std::vector<std::vector<uint32_t>> out;
  std::vector<uint32_t> cur;
  std::function<void(uint32_t)> rec = [&](uint32_t start) {
    if (cur.size() == m) {
      out.push_back(cur);
      return;
    }
    for (uint32_t i = start; i < n; ++i) {
      cur.push_back(i);
      rec(i + 1);
      cur.pop_back();
    }
  };
  rec(0);
  return out;
}

/// Check Invariant 1 for one subset of live objects.
bool invariant_holds(const sim::Simulator& sim,
                     const std::vector<uint32_t>& subset, uint32_t k) {
  TimeStamp max_stored = TimeStamp::zero();
  std::vector<Chunk> chunks;
  for (uint32_t i : subset) {
    const auto& st = dynamic_cast<const RegisterObjectState&>(
        sim.object_state(ObjectId{i}));
    max_stored = std::max(max_stored, st.stored_ts);
    auto all = st.all_chunks();
    chunks.insert(chunks.end(), all.begin(), all.end());
  }
  for (const Chunk& c : chunks) {
    if (c.ts < max_stored) continue;
    if (registers::distinct_indices_at(chunks, c.ts) >= k) return true;
  }
  return false;
}

void run_with_invariant_checks(
    const registers::RegisterAlgorithm& alg, uint64_t seed,
    uint32_t writers, uint32_t crashes) {
  const auto& cfg = alg.config();
  sim::UniformWorkload::Options wl;
  wl.writers = writers;
  wl.writes_per_client = 2;
  wl.readers = 1;
  wl.reads_per_client = 2;
  wl.data_bits = cfg.data_bits;

  sim::RandomScheduler::Options so;
  so.seed = seed;
  so.max_object_crashes = crashes;
  so.crash_object_permyriad = crashes > 0 ? 30 : 0;

  sim::SimConfig sc;
  sc.num_objects = cfg.n;
  sc.num_clients = writers + 1;
  sc.sample_every = 1024;

  sim::Simulator sim(sc, alg.object_factory(), alg.client_factory(),
                     std::make_unique<sim::UniformWorkload>(wl),
                     std::make_unique<sim::RandomScheduler>(so));

  const auto all_subsets = subsets(cfg.n, cfg.n - cfg.f);
  while (sim.step()) {
    for (const auto& subset : all_subsets) {
      // Only subsets of live objects matter (a read quorum cannot include
      // crashed objects).
      bool all_alive = true;
      for (uint32_t i : subset) {
        if (!sim.object_alive(ObjectId{i})) all_alive = false;
      }
      if (!all_alive) continue;
      ASSERT_TRUE(invariant_holds(sim, subset, cfg.k))
          << alg.name() << " seed=" << seed << " t=" << sim.now()
          << " subset[0]=" << subset[0];
    }
  }
}

registers::RegisterConfig cfg_fk(uint32_t f, uint32_t k) {
  registers::RegisterConfig cfg;
  cfg.f = f;
  cfg.k = k;
  cfg.n = 2 * f + k;
  cfg.data_bits = 128;
  return cfg;
}

TEST(Invariant1, AdaptiveHoldsAtEveryStep) {
  auto alg = registers::make_adaptive(cfg_fk(1, 2));
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    run_with_invariant_checks(*alg, seed, /*writers=*/3, /*crashes=*/0);
  }
}

TEST(Invariant1, AdaptiveHoldsUnderCrashes) {
  auto alg = registers::make_adaptive(cfg_fk(1, 2));
  for (uint64_t seed = 21; seed <= 26; ++seed) {
    run_with_invariant_checks(*alg, seed, 3, /*crashes=*/1);
  }
}

TEST(Invariant1, AdaptiveHoldsWithWiderCode) {
  auto alg = registers::make_adaptive(cfg_fk(2, 3));
  for (uint64_t seed = 41; seed <= 44; ++seed) {
    run_with_invariant_checks(*alg, seed, 4, 0);
  }
}

TEST(Invariant1, CodedBaselineHoldsAtEveryStep) {
  auto alg = registers::make_coded(cfg_fk(1, 2));
  for (uint64_t seed = 61; seed <= 66; ++seed) {
    run_with_invariant_checks(*alg, seed, 3, 0);
  }
}

TEST(Invariant1, CodedAtomicHoldsAtEveryStep) {
  auto alg = registers::make_coded_atomic(cfg_fk(1, 2));
  for (uint64_t seed = 81; seed <= 86; ++seed) {
    run_with_invariant_checks(*alg, seed, 3, 0);
  }
}

TEST(Invariant1, AblatedAdaptiveStillHolds) {
  // Corollary 2's ablation trades storage, not the invariant: with Vp
  // unbounded the pieces are simply never evicted.
  registers::AdaptiveOptions o;
  o.enable_replica_path = false;
  o.vp_unbounded = true;
  auto alg = registers::make_adaptive(cfg_fk(1, 2), o);
  for (uint64_t seed = 91; seed <= 94; ++seed) {
    run_with_invariant_checks(*alg, seed, 4, 0);
  }
}

}  // namespace
}  // namespace sbrs
