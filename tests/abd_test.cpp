// Tests for the ABD replication baseline: strong regularity (atomicity with
// write-back), fault tolerance, and the flat O(nD) storage profile.
#include <gtest/gtest.h>

#include "bounds/formulas.h"
#include "harness/runner.h"

namespace sbrs {
namespace {

using harness::RunOptions;
using harness::SchedKind;
using harness::run_register_experiment;
using registers::RegisterConfig;

RegisterConfig abd_cfg(uint32_t f, uint64_t data_bits = 256) {
  RegisterConfig cfg;
  cfg.f = f;
  cfg.n = 2 * f + 1;
  cfg.k = 1;
  cfg.data_bits = data_bits;
  return cfg;
}

TEST(Abd, RejectsTooFewObjects) {
  RegisterConfig bad = abd_cfg(2);
  bad.n = 4;  // < 2f+1
  EXPECT_THROW(registers::make_abd(bad), CheckFailure);
}

TEST(Abd, SequentialReadsSeeWrites) {
  auto alg = registers::make_abd(abd_cfg(1));
  RunOptions opts;
  opts.writers = 1;
  opts.writes_per_client = 4;
  opts.readers = 1;
  opts.reads_per_client = 4;
  opts.scheduler = SchedKind::kRoundRobin;
  auto out = run_register_experiment(*alg, opts);
  EXPECT_TRUE(out.report.quiesced);
  EXPECT_TRUE(out.strong_regular.ok) << out.strong_regular.summary();
}

TEST(Abd, StronglyRegularUnderConcurrency) {
  auto alg = registers::make_abd(abd_cfg(2));
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    RunOptions opts;
    opts.writers = 4;
    opts.writes_per_client = 2;
    opts.readers = 3;
    opts.reads_per_client = 3;
    opts.seed = seed;
    auto out = run_register_experiment(*alg, opts);
    EXPECT_TRUE(out.report.quiesced) << "seed " << seed;
    EXPECT_TRUE(out.strong_regular.ok)
        << "seed " << seed << ": " << out.strong_regular.summary();
  }
}

TEST(Abd, WriteBackGivesAtomicity) {
  registers::AbdOptions wb;
  wb.write_back = true;
  auto alg = registers::make_abd(abd_cfg(2), wb);
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    RunOptions opts;
    opts.writers = 3;
    opts.writes_per_client = 2;
    opts.readers = 4;
    opts.reads_per_client = 3;
    opts.seed = seed;
    auto out = run_register_experiment(*alg, opts);
    EXPECT_TRUE(out.report.quiesced) << "seed " << seed;
    auto atom = consistency::check_atomicity(out.history);
    EXPECT_TRUE(atom.ok) << "seed " << seed << ": " << atom.summary();
  }
}

TEST(Abd, StorageFlatInConcurrency) {
  // Replication stores one full value per object regardless of how many
  // writers race: object storage is exactly n * D at all times.
  const uint32_t f = 2;
  const uint64_t D = 512;
  auto alg = registers::make_abd(abd_cfg(f, D));
  const uint64_t expected = bounds::replication_bits(2 * f + 1, D);
  for (uint32_t c : {1u, 4u, 16u}) {
    RunOptions opts;
    opts.writers = c;
    opts.writes_per_client = 2;
    opts.scheduler = SchedKind::kBurst;
    auto out = run_register_experiment(*alg, opts);
    EXPECT_TRUE(out.report.quiesced);
    EXPECT_EQ(out.max_object_bits, expected) << "c=" << c;
    EXPECT_EQ(out.final_object_bits, expected) << "c=" << c;
  }
}

TEST(Abd, ToleratesFCrashes) {
  const auto cfg = abd_cfg(2);
  auto alg = registers::make_abd(cfg);
  for (uint64_t seed : {31u, 32u, 33u}) {
    RunOptions opts;
    opts.writers = 2;
    opts.writes_per_client = 3;
    opts.readers = 2;
    opts.reads_per_client = 3;
    opts.object_crashes = cfg.f;
    opts.seed = seed;
    auto out = run_register_experiment(*alg, opts);
    EXPECT_TRUE(out.live) << "seed " << seed;
    EXPECT_TRUE(out.weak_regular.ok)
        << "seed " << seed << ": " << out.weak_regular.summary();
  }
}

TEST(Abd, ReadsAreTwoRoundTripsAtMost) {
  // Reads complete after one readValue round (no write-back): the run's
  // RMW count is bounded by ops * n * rounds.
  auto alg = registers::make_abd(abd_cfg(1));
  RunOptions opts;
  opts.writers = 1;
  opts.writes_per_client = 2;
  opts.readers = 1;
  opts.reads_per_client = 2;
  opts.scheduler = SchedKind::kRoundRobin;
  auto out = run_register_experiment(*alg, opts);
  EXPECT_TRUE(out.report.quiesced);
  // 2 writes x 2 rounds x 3 objects + 2 reads x 1 round x 3 objects = 18.
  EXPECT_EQ(out.report.rmws_triggered, 18u);
}

}  // namespace
}  // namespace sbrs
