// Checker cross-validation by mutation fuzzing: take histories produced by
// algorithms with known guarantees, mutate read return values, and verify
// the checkers flag the corruption. This guards the guards — a checker that
// silently accepts everything would make the whole test suite vacuous.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "harness/runner.h"
#include "sim/history.h"

namespace sbrs {
namespace {

/// Rebuild a history with one read's returned value replaced.
sim::History mutate_read_value(const sim::History& h, OpId read_op,
                               const Value& new_value) {
  sim::History out;
  for (const auto& ev : h.events()) {
    if (ev.kind == sim::HistoryEvent::Kind::kInvoke) {
      sim::Invocation inv;
      inv.op = ev.op;
      inv.client = ev.client;
      inv.kind = ev.op_kind;
      inv.value = ev.value;
      out.record_invoke(ev.time, inv);
    } else {
      const bool is_target =
          ev.op == read_op && ev.op_kind == sim::OpKind::kRead;
      std::optional<Value> v;
      if (ev.op_kind == sim::OpKind::kRead) {
        v = is_target ? new_value : ev.value;
      }
      out.record_return(ev.time, ev.op, v);
    }
  }
  return out;
}

harness::RunOutcome baseline_run(uint64_t seed) {
  registers::RegisterConfig cfg;
  cfg.f = 1;
  cfg.k = 2;
  cfg.n = 4;
  cfg.data_bits = 64;
  auto alg = registers::make_abd(
      [&] {
        auto c = cfg;
        c.k = 1;
        c.n = 3;
        return c;
      }(),
      registers::AbdOptions{.write_back = true});
  harness::RunOptions opts;
  opts.writers = 2;
  opts.writes_per_client = 3;
  opts.readers = 2;
  opts.reads_per_client = 3;
  opts.seed = seed;
  return harness::run_register_experiment(*alg, opts);
}

TEST(CheckerFuzz, UnwrittenValueAlwaysCaught) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    auto out = baseline_run(seed);
    ASSERT_TRUE(out.values_legal.ok);
    auto reads = out.history.reads();
    ASSERT_FALSE(reads.empty());
    Rng rng(seed);
    const auto& victim = reads[rng.pick_index(reads)];
    // A value no write produced (tag far outside the op-id range).
    auto mutated = mutate_read_value(out.history, victim.op,
                                     Value::from_tag(999999, 64));
    EXPECT_FALSE(consistency::check_values_legal(mutated).ok)
        << "seed " << seed;
    EXPECT_FALSE(consistency::check_weak_regularity(mutated).ok)
        << "seed " << seed;
  }
}

TEST(CheckerFuzz, StaleValueCaughtByRegularityWhenGapExists) {
  // Replace a read's value with the FIRST written value; whenever another
  // write completed strictly between that write and the read, weak
  // regularity must flag it.
  int flagged = 0, mutations = 0;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    auto out = baseline_run(seed);
    auto writes = out.history.writes();
    auto reads = out.history.reads();
    ASSERT_FALSE(writes.empty());
    const auto& w_first = writes.front();
    if (!w_first.complete()) continue;
    for (const auto& r : reads) {
      if (r.value == w_first.value) continue;
      // Does some write fit strictly between w_first and r?
      bool gap = false;
      for (const auto& w : writes) {
        if (w.complete() && w.invoke_time > *w_first.return_time &&
            *w.return_time < r.invoke_time) {
          gap = true;
        }
      }
      if (!gap) continue;
      ++mutations;
      auto mutated = mutate_read_value(out.history, r.op, w_first.value);
      if (!consistency::check_weak_regularity(mutated).ok) ++flagged;
    }
  }
  ASSERT_GT(mutations, 0);
  EXPECT_EQ(flagged, mutations);
}

TEST(CheckerFuzz, V0AfterCompletedWriteCaught) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    auto out = baseline_run(seed);
    auto writes = out.history.writes();
    auto reads = out.history.reads();
    // Find a read invoked after some write completed.
    for (const auto& r : reads) {
      bool after_write = false;
      for (const auto& w : writes) {
        if (w.complete() && *w.return_time < r.invoke_time) {
          after_write = true;
        }
      }
      if (!after_write) continue;
      auto mutated =
          mutate_read_value(out.history, r.op, Value::initial(64));
      EXPECT_FALSE(consistency::check_weak_regularity(mutated).ok)
          << "seed " << seed;
      break;
    }
  }
}

TEST(CheckerFuzz, AtomicHistoriesSurviveUnmutated) {
  // Control group: the unmutated histories pass everything they should.
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    auto out = baseline_run(seed);
    EXPECT_TRUE(out.values_legal.ok);
    EXPECT_TRUE(out.weak_regular.ok);
    EXPECT_TRUE(consistency::check_atomicity(out.history).ok);
  }
}

}  // namespace
}  // namespace sbrs
