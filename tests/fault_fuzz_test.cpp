// Property/fuzz coverage for link-fault injection: every register
// algorithm variant must keep its declared consistency guarantee (and
// values-legality, and liveness) under randomized drop + reorder +
// partition/heal schedules across seeds; and a deliberately corrupted read
// in a partitioned run's history must be caught by the checker hierarchy —
// evidence the checkers still have teeth when fault bookkeeping events
// ride in the trace.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "consistency/checker.h"
#include "harness/algorithms.h"
#include "harness/runner.h"
#include "sim/history.h"

namespace sbrs {
namespace {

const char* kVariants[] = {"adaptive", "no-replica", "abd",  "abd-wb",
                           "coded",    "coded-atomic", "safe"};

registers::RegisterConfig fuzz_cfg() {
  registers::RegisterConfig cfg;
  cfg.f = 1;
  cfg.k = 2;
  cfg.n = 4;
  cfg.data_bits = 64;
  return cfg;
}

harness::RunOptions fuzz_opts(uint64_t seed) {
  harness::RunOptions opts;
  opts.writers = 2;
  opts.writes_per_client = 4;
  opts.readers = 2;
  opts.reads_per_client = 4;
  opts.seed = seed;
  // The full storm: random partitions (auto-healed), a bounded drop budget
  // (<= f, so quorums stay reachable), and a reorder window.
  opts.partitions = 2;
  opts.heal_after = 250;
  opts.link_faults.drop_permyriad = 400;
  opts.link_faults.max_drops = 1;  // == f for fuzz_cfg
  opts.link_faults.reorder_window = 6;
  return opts;
}

/// The declared-guarantee judgment, mirroring the scenario runner:
/// values-legality always, plus the algorithm's own consistency level.
void expect_guarantee_holds(const std::string& name,
                            const harness::RunOutcome& out,
                            const std::string& context) {
  EXPECT_TRUE(out.values_legal.ok)
      << context << ": " << out.values_legal.summary();
  switch (harness::expected_consistency(name)) {
    case harness::ConsistencyGuarantee::kStronglySafe:
      EXPECT_TRUE(out.strongly_safe.ok)
          << context << ": " << out.strongly_safe.summary();
      break;
    case harness::ConsistencyGuarantee::kWeakRegular:
      EXPECT_TRUE(out.weak_regular.ok)
          << context << ": " << out.weak_regular.summary();
      break;
    case harness::ConsistencyGuarantee::kStrongRegular:
      EXPECT_TRUE(out.weak_regular.ok)
          << context << ": " << out.weak_regular.summary();
      EXPECT_TRUE(out.strong_regular.ok)
          << context << ": " << out.strong_regular.summary();
      break;
  }
}

TEST(FaultFuzz, AllVariantsKeepDeclaredGuaranteeUnderLinkFaultStorm) {
  uint64_t faulted_runs = 0;
  for (const char* name : kVariants) {
    auto algorithm = harness::make_algorithm(name, fuzz_cfg());
    for (uint64_t seed = 1; seed <= 5; ++seed) {
      const auto opts = fuzz_opts(seed);
      const auto out = harness::run_register_experiment(*algorithm, opts);
      const std::string context =
          std::string(name) + " seed " + std::to_string(seed);
      expect_guarantee_holds(name, out, context);
      EXPECT_TRUE(out.live) << context << " (stop: " << out.report.stop_reason
                            << ")";
      // Partitions always auto-heal, so the books must balance.
      EXPECT_EQ(out.report.partition_events, out.report.heal_events)
          << context;
      EXPECT_LE(out.report.rmws_dropped, 1u) << context;  // the budget
      if (out.report.partition_events > 0 || out.report.rmws_dropped > 0) {
        ++faulted_runs;
      }
    }
  }
  // The storm must actually materialize across the sweep, or the test
  // proves nothing.
  EXPECT_GT(faulted_runs, 20u);
}

TEST(FaultFuzz, ScriptedPartitionStormAcrossVariants) {
  // Deterministic rate-based cuts on top of the probabilistic storm: every
  // variant rides out three scripted whole-object partitions.
  for (const char* name : kVariants) {
    auto algorithm = harness::make_algorithm(name, fuzz_cfg());
    harness::RunOptions opts = fuzz_opts(11);
    opts.partitions = 0;
    for (uint64_t i = 0; i < 3; ++i) {
      sim::FaultEvent cut;
      cut.kind = sim::FaultEvent::Kind::kPartitionObject;
      cut.at = 150 + 300 * i;
      cut.object = static_cast<uint32_t>(i % fuzz_cfg().n);
      cut.heal_after = 200;
      opts.fault_timeline.push_back(cut);
    }
    const auto out = harness::run_register_experiment(*algorithm, opts);
    const std::string context = std::string(name) + " scripted storm";
    expect_guarantee_holds(name, out, context);
    EXPECT_TRUE(out.live) << context;
    EXPECT_GT(out.report.partition_events, 0u) << context;
  }
}

TEST(FaultFuzz, CorruptedReadIsCaughtUnderPartitions) {
  // Take a passing partitioned run, then rebuild its history with one
  // completed read's value replaced by a value nobody ever wrote. The
  // checker hierarchy must flag the mutated trace while still passing the
  // original — fault bookkeeping events must not blind the checkers.
  const auto cfg = fuzz_cfg();
  auto algorithm = harness::make_algorithm("adaptive", cfg);
  const auto opts = fuzz_opts(7);
  const auto out = harness::run_register_experiment(*algorithm, opts);
  ASSERT_TRUE(out.values_legal.ok);
  ASSERT_GT(out.history.completed_reads(), 0u);

  const Value bogus = Value::from_tag(0xDEADBEEFu, cfg.data_bits);
  sim::History mutated;
  bool corrupted = false;
  for (const auto& ev : out.history.events()) {
    switch (ev.kind) {
      case sim::HistoryEvent::Kind::kInvoke: {
        sim::Invocation inv;
        inv.op = ev.op;
        inv.client = ev.client;
        inv.kind = ev.op_kind;
        inv.value = ev.value;
        mutated.record_invoke(ev.time, inv);
        break;
      }
      case sim::HistoryEvent::Kind::kReturn:
        if (!corrupted && ev.op_kind == sim::OpKind::kRead) {
          mutated.record_return(ev.time, ev.op, bogus);
          corrupted = true;
        } else {
          mutated.record_return(ev.time, ev.op,
                                ev.op_kind == sim::OpKind::kRead
                                    ? std::optional<Value>(ev.value)
                                    : std::nullopt);
        }
        break;
      case sim::HistoryEvent::Kind::kCrashObject:
        mutated.record_object_crash(ev.time, ev.object);
        break;
      case sim::HistoryEvent::Kind::kRestartObject:
        mutated.record_object_restart(ev.time, ev.object, ev.restart_mode);
        break;
      case sim::HistoryEvent::Kind::kPartition:
        mutated.record_partition(ev.time, ev.client, ev.object);
        break;
      case sim::HistoryEvent::Kind::kHeal:
        mutated.record_heal(ev.time, ev.client, ev.object);
        break;
    }
  }
  ASSERT_TRUE(corrupted);
  EXPECT_EQ(mutated.partition_count(), out.history.partition_count());

  // Original (bookkeeping events included) passes the full hierarchy ...
  EXPECT_TRUE(consistency::check_values_legal(out.history).ok);
  EXPECT_TRUE(consistency::check_strong_regularity(out.history).ok);
  // ... the mutated trace is caught at its base.
  const auto verdict = consistency::check_values_legal(mutated);
  EXPECT_FALSE(verdict.ok);
  EXPECT_FALSE(verdict.violations.empty());
  EXPECT_FALSE(consistency::check_strong_regularity(mutated).ok);
}

}  // namespace
}  // namespace sbrs
