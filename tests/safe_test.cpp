// Tests for the Appendix E safe register: wait-freedom, strongly-safe
// semantics, and the constant n*D/k storage that demonstrates the lower
// bound does not extend to safe semantics.
#include <gtest/gtest.h>

#include "bounds/formulas.h"
#include "harness/runner.h"

namespace sbrs {
namespace {

using harness::RunOptions;
using harness::SchedKind;
using harness::run_register_experiment;
using registers::RegisterConfig;

RegisterConfig cfg_fk(uint32_t f, uint32_t k, uint64_t data_bits = 512) {
  RegisterConfig cfg;
  cfg.f = f;
  cfg.k = k;
  cfg.n = 2 * f + k;
  cfg.data_bits = data_bits;
  return cfg;
}

TEST(Safe, SequentialReadsSeeLastWrite) {
  auto alg = registers::make_safe(cfg_fk(1, 2));
  RunOptions opts;
  opts.writers = 1;
  opts.writes_per_client = 4;
  opts.readers = 1;
  opts.reads_per_client = 4;
  opts.scheduler = SchedKind::kRoundRobin;
  auto out = run_register_experiment(*alg, opts);
  EXPECT_TRUE(out.report.quiesced);
  EXPECT_TRUE(out.strongly_safe.ok) << out.strongly_safe.summary();
}

TEST(Safe, StronglySafeUnderConcurrency) {
  auto alg = registers::make_safe(cfg_fk(2, 3));
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    RunOptions opts;
    opts.writers = 4;
    opts.writes_per_client = 3;
    opts.readers = 3;
    opts.reads_per_client = 3;
    opts.seed = seed;
    auto out = run_register_experiment(*alg, opts);
    EXPECT_TRUE(out.report.quiesced) << "seed " << seed;
    EXPECT_TRUE(out.values_legal.ok)
        << "seed " << seed << ": " << out.values_legal.summary();
    EXPECT_TRUE(out.strongly_safe.ok)
        << "seed " << seed << ": " << out.strongly_safe.summary();
  }
}

TEST(Safe, StorageExactlyNDOverKAlways) {
  // Lemma 17: each object stores exactly one piece of D/k bits at every
  // moment — the max and the final storage both equal n D / k.
  const uint32_t f = 2, k = 4;
  const uint64_t D = 1024;
  auto alg = registers::make_safe(cfg_fk(f, k, D));
  const uint64_t expected = bounds::safe_register_bits(f, k, D);
  for (uint32_t c : {1u, 4u, 16u}) {
    RunOptions opts;
    opts.writers = c;
    opts.writes_per_client = 2;
    opts.scheduler = SchedKind::kBurst;
    auto out = run_register_experiment(*alg, opts);
    EXPECT_TRUE(out.report.quiesced);
    EXPECT_EQ(out.max_object_bits, expected) << "c=" << c;
    EXPECT_EQ(out.final_object_bits, expected) << "c=" << c;
  }
}

TEST(Safe, StorageBeatsRegularLowerBoundWhenKLarge) {
  // With k >> f, n D / k < min(f+1, c) D / 2: the safe register stores
  // less than any regular register possibly can (Theorem 1) — the
  // separation Appendix E is about.
  const uint32_t f = 2, k = 16;
  const uint64_t D = 1024;
  const uint32_t c = 8;
  EXPECT_LT(bounds::safe_register_bits(f, k, D),
            bounds::lower_bound_bits(f, c, D));
}

TEST(Safe, WaitFreeReadsAreSingleRound) {
  // Reads never loop: exactly one readValue round per read regardless of
  // write churn (wait-freedom vs the regular registers' FW-termination).
  auto alg = registers::make_safe(cfg_fk(1, 2));
  RunOptions opts;
  opts.writers = 2;
  opts.writes_per_client = 3;
  opts.readers = 2;
  opts.reads_per_client = 3;
  opts.seed = 5;
  auto out = run_register_experiment(*alg, opts);
  EXPECT_TRUE(out.report.quiesced);
  // writes: 6 x 2 rounds x 4 objects; reads: 6 x 1 round x 4 objects.
  EXPECT_EQ(out.report.rmws_triggered, 6u * 2 * 4 + 6u * 1 * 4);
}

TEST(Safe, ToleratesFCrashes) {
  const auto cfg = cfg_fk(2, 2);
  auto alg = registers::make_safe(cfg);
  for (uint64_t seed : {51u, 52u, 53u}) {
    RunOptions opts;
    opts.writers = 2;
    opts.writes_per_client = 2;
    opts.readers = 2;
    opts.reads_per_client = 2;
    opts.object_crashes = cfg.f;
    opts.seed = seed;
    auto out = run_register_experiment(*alg, opts);
    EXPECT_TRUE(out.live) << "seed " << seed;
    EXPECT_TRUE(out.values_legal.ok) << "seed " << seed;
    EXPECT_TRUE(out.strongly_safe.ok)
        << "seed " << seed << ": " << out.strongly_safe.summary();
  }
}

TEST(Safe, MayReturnV0UnderChurnButNeverGarbage) {
  // Under heavy concurrent writing a read may legitimately return v0; it
  // must never return a Frankenstein value.
  auto alg = registers::make_safe(cfg_fk(1, 4, 256));
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    RunOptions opts;
    opts.writers = 5;
    opts.writes_per_client = 2;
    opts.readers = 3;
    opts.reads_per_client = 3;
    opts.seed = seed;
    auto out = run_register_experiment(*alg, opts);
    EXPECT_TRUE(out.values_legal.ok)
        << "seed " << seed << ": " << out.values_legal.summary();
  }
}

}  // namespace
}  // namespace sbrs
