// Sanity tests for the closed-form bounds of src/bounds — the reference
// values the benches print next to measurements.
#include <gtest/gtest.h>

#include "bounds/formulas.h"

namespace sbrs::bounds {
namespace {

TEST(Bounds, LowerBoundMatchesTheorem1Shape) {
  const uint64_t D = 1000;
  // Grows linearly in c until c = f+1, then flat.
  EXPECT_EQ(lower_bound_bits(4, 1, D), 1 * D / 2);
  EXPECT_EQ(lower_bound_bits(4, 3, D), 3 * D / 2);
  EXPECT_EQ(lower_bound_bits(4, 5, D), 5 * D / 2);
  EXPECT_EQ(lower_bound_bits(4, 50, D), 5 * D / 2);
  // Grows linearly in f until f+1 = c.
  EXPECT_EQ(lower_bound_bits(1, 10, D), 2 * D / 2);
  EXPECT_EQ(lower_bound_bits(9, 10, D), 10 * D / 2);
  EXPECT_EQ(lower_bound_bits(20, 10, D), 10 * D / 2);
}

TEST(Bounds, AdaptiveUpperBoundRegimes) {
  const uint32_t f = 3, k = 8;
  const uint64_t D = 832;  // k-divisible byte count: pieces are exactly D/k
  const uint64_t n = 2 * f + k;
  // Low concurrency: (c+1) pieces per object.
  EXPECT_EQ(adaptive_upper_bound_bits(f, k, 1, D), 2 * n * D / k);
  EXPECT_EQ(adaptive_upper_bound_bits(f, k, 5, D), 6 * n * D / k);
  // At and beyond c = k-1 the replica cap governs.
  EXPECT_EQ(adaptive_upper_bound_bits(f, k, 7, D), 2 * n * D);
  EXPECT_EQ(adaptive_upper_bound_bits(f, k, 100, D), 2 * n * D);
}

TEST(Bounds, AdaptiveBoundIsMonotoneInC) {
  const uint64_t D = 512;
  uint64_t prev = 0;
  for (uint32_t c = 1; c <= 40; ++c) {
    const uint64_t b = adaptive_upper_bound_bits(2, 8, c, D);
    EXPECT_GE(b, prev) << "c=" << c;
    prev = b;
  }
}

TEST(Bounds, AdaptiveMatchesMinFCShapeWithKEqualsF) {
  // With k = f the bound is Theta(min(f, c) D): check the two regimes
  // against explicit constants.
  const uint32_t f = 8, k = 8;
  const uint64_t D = 1024;
  // c << f: (c+1) * 3f * D / f = 3(c+1) D.
  EXPECT_EQ(adaptive_upper_bound_bits(f, k, 2, D), 3 * 3 * D);
  // c >> f: 2 * 3f * D = 6 f D.
  EXPECT_EQ(adaptive_upper_bound_bits(f, k, 1000, D), 6 * f * D);
}

TEST(Bounds, QuiescentStorageIsOnePiecePerObject) {
  EXPECT_EQ(adaptive_quiescent_bits(2, 4, 1024), 8u * 1024 / 4);
  EXPECT_EQ(adaptive_quiescent_bits(1, 1, 256), 3u * 256);
}

TEST(Bounds, SafeRegisterIsNDOverK) {
  EXPECT_EQ(safe_register_bits(2, 4, 1024), 8u * 1024 / 4);
  // (2f/k + 1) D formulation from Corollary 7, on a k-divisible size.
  EXPECT_EQ(safe_register_bits(4, 8, 832), (2 * 4 / 8 + 1) * 832u);
}

TEST(Bounds, PieceBitsRoundsUpToBytes) {
  EXPECT_EQ(piece_bits(4, 1024), 256u);  // divides evenly
  EXPECT_EQ(piece_bits(3, 256), 88u);    // 32 bytes / 3 -> 11-byte shards
  EXPECT_EQ(piece_bits(8, 800), 104u);   // 100 bytes / 8 -> 13-byte shards
  EXPECT_EQ(piece_bits(1, 64), 64u);
}

TEST(Bounds, ReplicationIsND) {
  EXPECT_EQ(replication_bits(5, 300), 1500u);
}

TEST(Bounds, CodedBaselineLinearInC) {
  const uint64_t D = 100;
  EXPECT_EQ(coded_baseline_bits(2, 4, 1, D) * 2,
            coded_baseline_bits(2, 4, 3, D));
}

TEST(Bounds, CrossoverAtTwoKMinusOne) {
  EXPECT_EQ(crossover_concurrency(3, 4), 7u);
  // Below the crossover coding is cheaper than the replica cap; above it
  // the cap wins: check directly against the bound function.
  const uint32_t f = 3, k = 16;
  const uint64_t D = 640;
  const uint64_t n = 2 * f + k;
  const uint32_t x = crossover_concurrency(f, k);
  EXPECT_LT(adaptive_upper_bound_bits(f, k, 2, D), 2 * n * D);
  EXPECT_EQ(adaptive_upper_bound_bits(f, k, x + 2, D), 2 * n * D);
}

TEST(Bounds, SafeBeatsLowerBoundOnlyForLargeK) {
  const uint64_t D = 1024;
  // k = f: safe register pays 3D, the bound for c >= f+1 is (f+1) D/2.
  EXPECT_GE(safe_register_bits(4, 4, D), lower_bound_bits(4, 10, D) * 2 / 3);
  // k = 8f: safe register clearly below the bound.
  EXPECT_LT(safe_register_bits(4, 32, D), lower_bound_bits(4, 10, D));
}

}  // namespace
}  // namespace sbrs::bounds
