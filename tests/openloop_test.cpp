// Tests for the open-loop load subsystem: arrival-schedule determinism and
// shape (fixed-rate / bursty on-off / Poisson, mirroring the statistical
// style of ycsb_test.cpp — fixed seeds make every assertion an exact
// regression), queue-depth invariants, sojourn >= service for every
// operation across all algorithm variants, the pinned saturation
// regression, and the thread-count independence of open-loop store runs.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <sstream>

#include "common/check.h"
#include "harness/algorithms.h"
#include "harness/runner.h"
#include "sim/arrival.h"
#include "store/store.h"

namespace sbrs {
namespace {

using sim::ArrivalOptions;
using sim::ArrivalProcess;
using sim::generate_arrivals;

// The validation contract front-ends rely on to turn bad open-loop flags
// into usage errors: rate must be positive and finite, bursty specs need a
// non-empty on-window, and closed-loop specs are always fine (their knobs
// are ignored). generate_arrivals enforces the same rule as a CheckFailure.
TEST(ArrivalValidation, RejectsUnusableSpecs) {
  ArrivalOptions a;
  EXPECT_TRUE(sim::validate_arrival(a).empty()) << "closed loop is valid";
  a.rate = 0.0;  // closed loop ignores the bad rate
  EXPECT_TRUE(sim::validate_arrival(a).empty());

  a.process = ArrivalProcess::kFixedRate;
  EXPECT_FALSE(sim::validate_arrival(a).empty()) << "rate 0 divides by zero";
  a.rate = -0.5;
  EXPECT_FALSE(sim::validate_arrival(a).empty());
  a.rate = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(sim::validate_arrival(a).empty());
  a.rate = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(sim::validate_arrival(a).empty());
  a.rate = 0.25;
  EXPECT_TRUE(sim::validate_arrival(a).empty());

  a.process = ArrivalProcess::kBursty;
  a.burst_on = 0;
  a.burst_off = 0;  // --burst=0,0: a schedule that never releases arrivals
  EXPECT_FALSE(sim::validate_arrival(a).empty());
  a.burst_on = 1;
  EXPECT_TRUE(sim::validate_arrival(a).empty())
      << "burst_off 0 alone is legal (continuous on-window)";

  // generate_arrivals enforces the same contract.
  a.burst_on = 0;
  EXPECT_THROW(generate_arrivals(a, 4, 1), CheckFailure);
  a.process = ArrivalProcess::kFixedRate;
  a.rate = 0.0;
  EXPECT_THROW(generate_arrivals(a, 4, 1), CheckFailure);
}

// The harness and the store reject bad specs at mount time, not mid-run.
TEST(ArrivalValidation, EnginesRejectBadSpecsUpFront) {
  harness::RunOptions opts;
  opts.arrival.process = ArrivalProcess::kPoisson;
  opts.arrival.rate = 0.0;
  auto algorithm = harness::make_algorithm(
      "adaptive", registers::RegisterConfig{});
  EXPECT_THROW(harness::run_register_experiment(*algorithm, opts),
               CheckFailure);

  store::StoreOptions so;
  so.arrival.process = ArrivalProcess::kBursty;
  so.arrival.burst_on = 0;
  EXPECT_THROW(store::Store{so}, CheckFailure);
}

TEST(ArrivalSchedule, FixedRateIsExactAndNondecreasing) {
  ArrivalOptions a;
  a.process = ArrivalProcess::kFixedRate;
  a.rate = 0.5;  // one op every 2 steps
  const auto arrivals = generate_arrivals(a, 10, 1);
  ASSERT_EQ(arrivals.size(), 10u);
  for (size_t i = 0; i < arrivals.size(); ++i) {
    EXPECT_EQ(arrivals[i], 2 * i);
  }

  a.rate = 2.0;  // two ops per step
  const auto fast = generate_arrivals(a, 9, 1);
  for (size_t i = 0; i < fast.size(); ++i) {
    EXPECT_EQ(fast[i], i / 2);
  }
}

TEST(ArrivalSchedule, SameSeedByteIdenticalDifferentSeedDiffers) {
  ArrivalOptions a;
  a.process = ArrivalProcess::kPoisson;
  a.rate = 0.1;
  const auto first = generate_arrivals(a, 500, 42);
  const auto second = generate_arrivals(a, 500, 42);
  EXPECT_EQ(first, second) << "same seed must give a byte-identical schedule";

  const auto other = generate_arrivals(a, 500, 43);
  EXPECT_NE(first, other) << "distinct seeds should move the arrivals";

  // Deterministic processes ignore the seed entirely.
  a.process = ArrivalProcess::kFixedRate;
  EXPECT_EQ(generate_arrivals(a, 100, 1), generate_arrivals(a, 100, 999));
}

TEST(ArrivalSchedule, PoissonMeanInterarrivalMatchesRate) {
  ArrivalOptions a;
  a.process = ArrivalProcess::kPoisson;
  a.rate = 0.05;  // mean interarrival 20 steps
  const size_t n = 4000;
  const auto arrivals = generate_arrivals(a, n, 7);
  for (size_t i = 1; i < n; ++i) {
    ASSERT_LE(arrivals[i - 1], arrivals[i]) << "arrivals must be sorted";
  }
  // Under this fixed seed the empirical mean interarrival sits within 5%
  // of 1/rate (an exact regression, not a flaky tolerance check).
  const double mean =
      static_cast<double>(arrivals.back()) / static_cast<double>(n - 1);
  EXPECT_GT(mean, 19.0);
  EXPECT_LT(mean, 21.0);
  // And it is genuinely random: not all interarrivals equal the mean.
  size_t distinct_gaps = 0;
  for (size_t i = 1; i < 50; ++i) {
    if (arrivals[i] - arrivals[i - 1] != 20) ++distinct_gaps;
  }
  EXPECT_GT(distinct_gaps, 10u);
}

TEST(ArrivalSchedule, BurstyRespectsOnOffWindowsAndMeanRate) {
  ArrivalOptions a;
  a.process = ArrivalProcess::kBursty;
  a.rate = 0.1;
  a.burst_on = 16;
  a.burst_off = 48;  // cycle 64, peak rate 0.4
  const size_t n = 1000;
  const auto arrivals = generate_arrivals(a, n, 1);
  const uint64_t cycle = a.burst_on + a.burst_off;
  for (size_t i = 0; i < n; ++i) {
    if (i > 0) ASSERT_LE(arrivals[i - 1], arrivals[i]);
    EXPECT_LT(arrivals[i] % cycle, a.burst_on)
        << "arrival " << i << " at step " << arrivals[i]
        << " falls in an off-window";
  }
  // The mean rate is preserved across whole cycles: the last arrival of a
  // 1000-op stream at rate 0.1 lands near step 10'000.
  EXPECT_GT(arrivals.back(), 9'000u);
  EXPECT_LT(arrivals.back(), 11'000u);
}

TEST(ArrivalSchedule, RejectsClosedLoopAndBadRate) {
  ArrivalOptions a;  // kClosedLoop
  EXPECT_THROW(generate_arrivals(a, 4, 1), CheckFailure);
  a.process = ArrivalProcess::kFixedRate;
  a.rate = 0.0;
  EXPECT_THROW(generate_arrivals(a, 4, 1), CheckFailure);
}

TEST(ArrivalSchedule, ParseRoundTripAndReject) {
  EXPECT_EQ(sim::parse_arrival_process("closed"),
            ArrivalProcess::kClosedLoop);
  EXPECT_EQ(sim::parse_arrival_process("fixed"), ArrivalProcess::kFixedRate);
  EXPECT_EQ(sim::parse_arrival_process("burst"), ArrivalProcess::kBursty);
  EXPECT_EQ(sim::parse_arrival_process("poisson"),
            ArrivalProcess::kPoisson);
  EXPECT_THROW(sim::parse_arrival_process("uniform"), CheckFailure);
  for (auto p : {ArrivalProcess::kClosedLoop, ArrivalProcess::kFixedRate,
                 ArrivalProcess::kBursty, ArrivalProcess::kPoisson}) {
    EXPECT_EQ(sim::parse_arrival_process(sim::to_string(p)), p);
  }
}

registers::RegisterConfig small_config() {
  registers::RegisterConfig cfg;
  cfg.f = 1;
  cfg.k = 2;
  cfg.n = 4;
  cfg.data_bits = 128;
  return cfg;
}

harness::RunOptions open_loop_options(double rate) {
  harness::RunOptions opts;
  opts.writers = 2;
  opts.writes_per_client = 8;
  opts.readers = 2;
  opts.reads_per_client = 8;
  opts.seed = 5;
  opts.arrival.process = ArrivalProcess::kPoisson;
  opts.arrival.rate = rate;
  return opts;
}

// Every algorithm variant, open loop: per-op sojourn bounds service from
// above (arrival <= invoke for every op), the two histograms count the
// same completions, and each variant still meets its own consistency
// guarantee when ops are dispatched by queue order instead of session.
TEST(OpenLoopRegister, SojournAtLeastServicePerOpAcrossAllAlgorithms) {
  for (const std::string& alg : harness::algorithm_names()) {
    SCOPED_TRACE(alg);
    auto algorithm = harness::make_algorithm(alg, small_config());
    const auto out =
        harness::run_register_experiment(*algorithm, open_loop_options(0.1));

    EXPECT_TRUE(out.live);
    EXPECT_TRUE(out.report.quiesced);
    EXPECT_EQ(out.report.sojourn_latency.count(),
              out.report.op_latency.count());
    EXPECT_GE(out.report.sojourn_latency.max(), out.report.op_latency.max());
    size_t checked = 0;
    for (const auto& rec : out.history.ops()) {
      EXPECT_LE(rec.arrival_time, rec.invoke_time) << rec.op;
      if (!rec.complete()) continue;
      const uint64_t service = *rec.return_time - rec.invoke_time;
      const uint64_t sojourn = *rec.return_time - rec.arrival_time;
      EXPECT_GE(sojourn, service) << rec.op;
      ++checked;
    }
    EXPECT_EQ(checked, 32u) << "all 32 scheduled ops should complete";

    // The variant keeps its own promise under open-loop dispatch.
    EXPECT_TRUE(out.values_legal.ok);
    switch (harness::expected_consistency(alg)) {
      case harness::ConsistencyGuarantee::kStronglySafe:
        EXPECT_TRUE(out.strongly_safe.ok);
        break;
      case harness::ConsistencyGuarantee::kWeakRegular:
        EXPECT_TRUE(out.weak_regular.ok);
        break;
      case harness::ConsistencyGuarantee::kStrongRegular:
        EXPECT_TRUE(out.weak_regular.ok && out.strong_regular.ok);
        break;
    }
  }
}

TEST(OpenLoopRegister, QueueDepthInvariants) {
  // A trickle never queues more than the momentary burst the PRNG emits,
  // and everything dispatches.
  auto algorithm = harness::make_algorithm("adaptive", small_config());
  const auto slow =
      harness::run_register_experiment(*algorithm, open_loop_options(0.005));
  EXPECT_EQ(slow.undispatched, 0u);
  EXPECT_FALSE(slow.saturated);
  EXPECT_LE(slow.max_queue_depth, 4u);
  // Sojourn stays close to service when there is no queueing.
  EXPECT_LE(slow.report.sojourn_latency.p99(),
            slow.report.op_latency.p99() + 16);

  // A flood queues nearly everything at once; the queue is bounded by the
  // op count and still fully drains (finite workload, ample step budget).
  const auto flood =
      harness::run_register_experiment(*algorithm, open_loop_options(64.0));
  EXPECT_EQ(flood.undispatched, 0u);
  EXPECT_TRUE(flood.saturated);
  EXPECT_GT(flood.max_queue_depth, 2 * 4u);
  EXPECT_LE(flood.max_queue_depth, 32u);
  EXPECT_GT(flood.report.sojourn_latency.p99(),
            flood.report.op_latency.p99());
}

TEST(OpenLoopRegister, DispatchFollowsArrivalOrder) {
  auto algorithm = harness::make_algorithm("adaptive", small_config());
  const auto out =
      harness::run_register_experiment(*algorithm, open_loop_options(0.5));
  // The shared ready queue is FIFO: ops are invoked in arrival order.
  uint64_t last_arrival = 0;
  for (const auto& rec : out.history.ops()) {
    EXPECT_GE(rec.arrival_time, last_arrival);
    last_arrival = rec.arrival_time;
  }
}

// The satellite saturation regression: a pinned small-config cell whose
// offered rate exceeds capacity by an order of magnitude and whose step
// budget truncates the run. The run must report saturation, leave arrivals
// undispatched, keep the queue bounded by the (finite) stream, and stop at
// exactly the step budget — the exact-step assertion pins the idle
// fast-forward clamping too.
TEST(OpenLoopStore, SaturationRegressionPinned) {
  store::StoreOptions opts;
  opts.algorithm = "adaptive";
  opts.register_config = small_config();
  opts.num_shards = 1;
  opts.workload.num_keys = 8;
  opts.workload.clients = 2;
  opts.workload.ops_per_client = 64;  // 128 ops through one shard
  opts.workload.mix = store::ycsb::Mix::kA;
  opts.workload.distribution = store::ycsb::Distribution::kZipfian;
  opts.seed = 3;
  opts.threads = 1;
  opts.arrival.process = ArrivalProcess::kFixedRate;
  opts.arrival.rate = 4.0;          // far beyond the ~0.1 ops/step capacity
  opts.max_steps_per_shard = 1024;  // cut the run off mid-drain

  store::Store store(opts);
  const store::StoreResult result = store.run();

  ASSERT_EQ(result.shards.size(), 1u);
  const store::ShardResult& s = result.shards[0];
  EXPECT_TRUE(result.saturated);
  EXPECT_TRUE(s.saturated);
  EXPECT_TRUE(s.report.hit_step_limit);
  EXPECT_FALSE(s.report.quiesced);
  // Exactly the step budget was spent — not one step more.
  EXPECT_EQ(s.report.steps, opts.max_steps_per_shard);
  EXPECT_EQ(result.total_steps, opts.max_steps_per_shard);
  // The queue is bounded by the finite stream and something was left over.
  EXPECT_GT(result.undispatched, 0u);
  EXPECT_LE(result.undispatched, 128u);
  EXPECT_LE(result.max_queue_depth, 128u);
  EXPECT_GT(result.max_queue_depth, 2u * opts.workload.clients);
  // Undispatched + invoked accounts for the whole stream: nothing lost.
  EXPECT_EQ(result.undispatched + s.report.invoked_ops, 128u);
  // What did complete still checks out per key.
  EXPECT_EQ(result.consistency_failures, 0u);
}

// The acceptance smoke: an open-loop zipfian store run well past
// saturation keeps the deterministic block byte-identical for 1/4/9
// worker threads, and its sojourn tail dominates its service tail.
TEST(OpenLoopStore, DeterministicAcrossThreadCountsAndSojournDominates) {
  store::StoreOptions opts;
  opts.algorithm = "adaptive";
  opts.register_config.f = 1;
  opts.register_config.k = 2;
  opts.register_config.n = 4;
  opts.register_config.data_bits = 128;
  opts.num_shards = 8;
  opts.workload.num_keys = 64;
  opts.workload.clients = 4;
  opts.workload.ops_per_client = 48;
  opts.workload.mix = store::ycsb::Mix::kB;
  opts.workload.distribution = store::ycsb::Distribution::kZipfian;
  opts.seed = 2016;
  opts.arrival.process = ArrivalProcess::kPoisson;
  opts.arrival.rate = 0.5;  // >= 2x the ~0.1 ops/step/shard capacity

  std::string deterministic[3];
  const uint32_t thread_counts[3] = {1, 4, 9};
  for (int i = 0; i < 3; ++i) {
    store::StoreOptions run_opts = opts;
    run_opts.threads = thread_counts[i];
    store::Store store(run_opts);
    const store::StoreResult result = store.run();

    EXPECT_EQ(result.consistency_failures, 0u);
    EXPECT_TRUE(result.saturated);
    EXPECT_EQ(result.undispatched, 0u) << "ample budget: the queue drains";
    EXPECT_GT(result.sojourn_latency.p99(),
              2 * result.service_latency.p99())
        << "past saturation the sojourn tail must detach from service";
    EXPECT_GE(result.sojourn_latency.count(),
              result.service_latency.count());

    std::ostringstream os;
    store::write_store_deterministic_json(os, result);
    deterministic[i] = os.str();
  }
  EXPECT_EQ(deterministic[0], deterministic[1]);
  EXPECT_EQ(deterministic[0], deterministic[2])
      << "open-loop results must not depend on the worker thread count";
}

// A saturated first run() leaves arrivals scheduled beyond the shard's
// step budget; a second run() must base its batch past them (nondecreasing
// push order) instead of throwing, and report the still-growing backlog.
TEST(OpenLoopStore, RepeatedRunAfterSaturationDoesNotThrow) {
  store::StoreOptions opts;
  opts.algorithm = "adaptive";
  opts.register_config = small_config();
  opts.num_shards = 1;
  opts.workload.num_keys = 8;
  opts.workload.clients = 2;
  opts.workload.ops_per_client = 32;
  opts.workload.mix = store::ycsb::Mix::kA;
  opts.seed = 3;
  opts.threads = 1;
  opts.arrival.process = ArrivalProcess::kFixedRate;
  opts.arrival.rate = 0.01;         // arrivals stretch far past the budget
  opts.max_steps_per_shard = 256;   // cut off early

  store::Store store(opts);
  const store::StoreResult first = store.run();
  EXPECT_TRUE(first.saturated);
  EXPECT_GT(first.undispatched, 0u);

  const store::StoreResult second = store.run();  // must not throw
  EXPECT_TRUE(second.saturated);
  // The new batch queued on top of the leftover one; nothing was lost.
  EXPECT_EQ(second.undispatched,
            first.undispatched + 2u * opts.workload.ops_per_client);
}

// A CLOSED-loop run truncated by the step budget is a stuck run, not a
// saturated one: the saturation excuse must never leak into closed-loop
// verdicts (it would mask wedged protocols from the CLI's exit code).
TEST(OpenLoopStore, ClosedLoopStepLimitIsNotSaturation) {
  store::StoreOptions opts;
  opts.algorithm = "adaptive";
  opts.register_config = small_config();
  opts.num_shards = 1;
  opts.workload.num_keys = 8;
  opts.workload.clients = 4;
  opts.workload.ops_per_client = 32;
  opts.workload.mix = store::ycsb::Mix::kA;
  opts.seed = 3;
  opts.threads = 1;
  opts.max_steps_per_shard = 64;  // truncates mid-run; no arrival schedule

  store::Store store(opts);
  const store::StoreResult result = store.run();
  ASSERT_TRUE(result.shards[0].report.hit_step_limit);
  EXPECT_FALSE(result.saturated);
  EXPECT_FALSE(result.all_quiesced);
  EXPECT_EQ(result.max_queue_depth, 0u);
}

TEST(OpenLoopStore, BurstySchedulesQuiesceAndCheckOut) {
  store::StoreOptions opts;
  opts.algorithm = "coded";
  opts.register_config = small_config();
  opts.num_shards = 2;
  opts.workload.num_keys = 16;
  opts.workload.clients = 4;
  opts.workload.ops_per_client = 24;
  opts.workload.mix = store::ycsb::Mix::kA;
  opts.seed = 9;
  opts.threads = 2;
  opts.arrival.process = ArrivalProcess::kBursty;
  opts.arrival.rate = 0.05;
  opts.arrival.burst_on = 8;
  opts.arrival.burst_off = 56;

  store::Store store(opts);
  const store::StoreResult result = store.run();
  EXPECT_TRUE(result.all_quiesced);
  EXPECT_EQ(result.undispatched, 0u);
  EXPECT_EQ(result.consistency_failures, 0u);
  // On-off load queues inside the bursts even though the mean rate is low.
  EXPECT_GT(result.max_queue_depth, 0u);
  EXPECT_NE(result.sojourn_latency.count(), 0u);
}

TEST(OpenLoopStore, JsonCarriesQueueingFields) {
  store::StoreOptions opts;
  opts.algorithm = "adaptive";
  opts.register_config = small_config();
  opts.num_shards = 2;
  opts.workload.num_keys = 16;
  opts.workload.clients = 2;
  opts.workload.ops_per_client = 8;
  opts.threads = 1;
  opts.arrival.process = ArrivalProcess::kFixedRate;
  opts.arrival.rate = 0.1;

  store::Store store(opts);
  const store::StoreResult result = store.run();
  std::ostringstream os;
  store::write_store_json(os, result);
  const std::string json = os.str();
  for (const char* field :
       {"\"arrival\": \"fixed\"", "\"rate\": 0.1", "\"sojourn_latency_steps\"",
        "\"service_latency_steps\"", "\"max_queue_depth\"",
        "\"undispatched\"", "\"saturated\""}) {
    EXPECT_NE(json.find(field), std::string::npos) << field;
  }
}

}  // namespace
}  // namespace sbrs
