// Contract tests for the bulk GF(2^8) kernels: the fast paths (flat-table
// scalar and SIMD split-nibble row loops) must agree exactly with the
// bit-level reference on every input — exhaustively for scalar mul, and on
// randomized buffers across odd lengths and unaligned offsets for the row
// kernels, so both the 8/16-byte main loops and the tail loops are hit.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "gf/gf256.h"
#include "gf/gf_kernels.h"

namespace sbrs::gf {
namespace {

TEST(GfKernels, ExhaustiveMulMatchesSlowReference) {
  // All 65536 products: the flat table (and thus gf::mul) must equal the
  // shift-and-reduce reference everywhere, including the zero row/column.
  for (int a = 0; a < 256; ++a) {
    for (int b = 0; b < 256; ++b) {
      const uint8_t ua = static_cast<uint8_t>(a);
      const uint8_t ub = static_cast<uint8_t>(b);
      ASSERT_EQ(kern::mul(ua, ub), mul_slow(ua, ub)) << "a=" << a << " b=" << b;
      ASSERT_EQ(mul(ua, ub), mul_slow(ua, ub)) << "a=" << a << " b=" << b;
    }
  }
}

TEST(GfKernels, SplitNibbleTablesRecomposeProducts) {
  // c*x == nib_lo[c][x & 15] ^ nib_hi[c][x >> 4] for all (c, x).
  const auto& t = kern::tables();
  for (int c = 0; c < 256; ++c) {
    for (int x = 0; x < 256; ++x) {
      const uint8_t expect = mul_slow(static_cast<uint8_t>(c),
                                      static_cast<uint8_t>(x));
      ASSERT_EQ(t.nib_lo[c][x & 0x0f] ^ t.nib_hi[c][x >> 4], expect)
          << "c=" << c << " x=" << x;
    }
  }
}

TEST(GfKernels, BackendIsKnown) {
  const std::string b = kern::backend();
  EXPECT_TRUE(b == "ssse3" || b == "neon" || b == "scalar") << b;
}

// Randomized row-kernel equivalence. Buffers get a canary pad on both sides
// so out-of-bounds writes by the vector loops are caught, and every length
// in [0, 257] is exercised at several misalignments.
class GfRowKernels : public ::testing::Test {
 protected:
  static constexpr size_t kPad = 32;
  static constexpr uint8_t kCanary = 0xa5;

  void run_case(size_t len, size_t offset, uint8_t c, Rng& rng) {
    std::vector<uint8_t> xbuf(len + offset + 2 * kPad, kCanary);
    std::vector<uint8_t> ybuf(len + offset + 2 * kPad, kCanary);
    uint8_t* x = xbuf.data() + kPad + offset;
    uint8_t* y = ybuf.data() + kPad + offset;
    for (size_t i = 0; i < len; ++i) {
      x[i] = static_cast<uint8_t>(rng.below(256));
      y[i] = static_cast<uint8_t>(rng.below(256));
    }

    // Byte-at-a-time references from the slow bit-level product.
    std::vector<uint8_t> add_ref(len), mul_ref(len);
    for (size_t i = 0; i < len; ++i) {
      add_ref[i] = y[i] ^ mul_slow(c, x[i]);
      mul_ref[i] = mul_slow(c, x[i]);
    }

    // memcmp with a null pointer is UB even for length 0 (an empty vector's
    // data() may be null), so route comparisons through std::equal.
    std::vector<uint8_t> ysave(y, y + len);
    kern::mul_add_row(y, x, c, len);
    EXPECT_TRUE(std::equal(add_ref.begin(), add_ref.end(), y))
        << "mul_add_row len=" << len << " off=" << offset << " c=" << int(c);

    std::copy(ysave.begin(), ysave.end(), y);
    kern::mul_row(y, x, c, len);
    EXPECT_TRUE(std::equal(mul_ref.begin(), mul_ref.end(), y))
        << "mul_row len=" << len << " off=" << offset << " c=" << int(c);

    // In-place mul_row (y == x) must give the same result.
    kern::mul_row(x, x, c, len);
    EXPECT_TRUE(std::equal(mul_ref.begin(), mul_ref.end(), x))
        << "in-place mul_row len=" << len << " off=" << offset;

    // Canaries: nothing outside [0, len) was touched in either buffer.
    auto check_canary = [&](const std::vector<uint8_t>& buf) {
      for (size_t i = 0; i < kPad + offset; ++i) EXPECT_EQ(buf[i], kCanary);
      for (size_t i = kPad + offset + len; i < buf.size(); ++i) {
        EXPECT_EQ(buf[i], kCanary);
      }
    };
    check_canary(xbuf);
    check_canary(ybuf);
  }
};

TEST_F(GfRowKernels, AllLengthsAndOffsetsMatchByteReference) {
  Rng rng(0xfeedc0de);
  const uint8_t coeffs[] = {0x00, 0x01, 0x02, 0x53, 0x8e, 0xff,
                            static_cast<uint8_t>(rng.between(2, 255)),
                            static_cast<uint8_t>(rng.between(2, 255))};
  for (size_t len = 0; len <= 257; ++len) {
    for (size_t offset : {0u, 1u, 3u, 7u}) {
      for (uint8_t c : coeffs) run_case(len, offset, c, rng);
    }
  }
}

TEST_F(GfRowKernels, LongBufferMatchesByteReference) {
  Rng rng(0xdecafbad);
  for (size_t len : {4096u, 65537u}) {
    for (size_t offset : {0u, 5u}) {
      run_case(len, offset, 0xb7, rng);
    }
  }
}

}  // namespace
}  // namespace sbrs::gf
