// Simulator mechanics: pending RMWs, delivery, crashes, histories,
// determinism, storage snapshots.
#include <gtest/gtest.h>

#include "sim/schedulers.h"
#include "sim/simulator.h"
#include "sim/workload.h"

namespace sbrs::sim {
namespace {

/// A trivial test object: stores an integer counter plus a declared number
/// of "fake block bits" so we can test storage accounting.
struct CounterState final : ObjectStateBase {
  int counter = 0;
  metrics::StorageFootprint fake;

  metrics::StorageFootprint footprint() const override { return fake; }
};

struct CounterResponse {
  int value = 0;
};

/// A test client: every operation triggers one increment-RMW per object and
/// completes after `quorum` responses.
class CounterClient final : public ClientProtocol {
 public:
  CounterClient(ClientId self, uint32_t quorum) : self_(self), quorum_(quorum) {}

  void on_invoke(const Invocation& inv, SimContext& ctx) override {
    op_ = inv.op;
    responses_ = 0;
    for (uint32_t i = 0; i < ctx.num_objects(); ++i) {
      ctx.trigger(
          ObjectId{i},
          [](ObjectStateBase& s) -> ResponsePtr {
            auto& st = static_cast<CounterState&>(s);
            ++st.counter;
            return std::make_shared<const CounterResponse>(
                CounterResponse{st.counter});
          },
          {});
    }
  }

  void on_response(RmwId, ResponsePtr, SimContext& ctx) override {
    if (++responses_ == quorum_) {
      ctx.complete(op_, std::nullopt);
    }
  }

 private:
  ClientId self_;
  uint32_t quorum_;
  OpId op_;
  uint32_t responses_ = 0;
};

SimConfig small_config(uint32_t objects, uint32_t clients) {
  SimConfig c;
  c.num_objects = objects;
  c.num_clients = clients;
  return c;
}

std::unique_ptr<Workload> write_workload(uint32_t writers, uint32_t each) {
  UniformWorkload::Options o;
  o.writers = writers;
  o.writes_per_client = each;
  o.data_bits = 64;
  return std::make_unique<UniformWorkload>(o);
}

ObjectFactory counter_factory() {
  return [](ObjectId) { return std::make_unique<CounterState>(); };
}

ClientFactory counter_clients(uint32_t quorum) {
  return [quorum](ClientId c) {
    return std::make_unique<CounterClient>(c, quorum);
  };
}

TEST(Simulator, CompletesSimpleWorkload) {
  Simulator sim(small_config(3, 2), counter_factory(), counter_clients(2),
                write_workload(2, 3), std::make_unique<RoundRobinScheduler>());
  RunReport report = sim.run();
  EXPECT_TRUE(report.quiesced);
  EXPECT_EQ(report.invoked_ops, 6u);
  EXPECT_EQ(report.completed_ops, 6u);
  EXPECT_EQ(report.rmws_triggered, 18u);
}

TEST(Simulator, HistoryRecordsInvokesAndReturns) {
  Simulator sim(small_config(3, 1), counter_factory(), counter_clients(2),
                write_workload(1, 2), std::make_unique<RoundRobinScheduler>());
  sim.run();
  const History& h = sim.history();
  EXPECT_EQ(h.invoke_count(), 2u);
  EXPECT_EQ(h.return_count(), 2u);
  EXPECT_TRUE(h.outstanding().empty());
  auto ops = h.ops();
  ASSERT_EQ(ops.size(), 2u);
  EXPECT_LT(ops[0].invoke_time, *ops[0].return_time);
  EXPECT_LE(*ops[0].return_time, ops[1].invoke_time);
}

TEST(Simulator, QuorumCompletesBeforeAllDeliveries) {
  // With quorum 2 of 3, the op completes while one RMW is still pending.
  Simulator sim(small_config(3, 1), counter_factory(), counter_clients(2),
                write_workload(1, 1), std::make_unique<RoundRobinScheduler>());
  // Step until the op completes.
  while (sim.step()) {
    if (sim.history().return_count() == 1) break;
  }
  EXPECT_EQ(sim.pending().size(), 1u);  // the straggler RMW
  // The run continues: the straggler still takes effect on the object.
  while (sim.step()) {
  }
  EXPECT_TRUE(sim.pending().empty());
  const auto& st = static_cast<const CounterState&>(sim.object_state(ObjectId{2}));
  EXPECT_EQ(st.counter, 1);
}

TEST(Simulator, CrashedObjectDropsRmws) {
  SimConfig cfg = small_config(3, 1);
  RandomScheduler::Options so;
  so.seed = 5;
  Simulator sim(cfg, counter_factory(), counter_clients(2),
                write_workload(1, 1),
                std::make_unique<RandomScheduler>(so));
  // Manually crash object 0 before anything runs: deliveries to it drop.
  // We emulate by invoking, then crashing via a scripted sequence: use
  // the step API with a custom scheduler instead.
  // Simpler: crash injection is tested through RandomScheduler options in
  // the register property tests; here we check object_alive bookkeeping.
  EXPECT_TRUE(sim.object_alive(ObjectId{0}));
  EXPECT_TRUE(sim.client_alive(ClientId{0}));
  EXPECT_EQ(sim.crashed_objects(), 0u);
}

TEST(Simulator, DeterministicUnderSameSeed) {
  auto run_once = [](uint64_t seed) {
    RandomScheduler::Options so;
    so.seed = seed;
    Simulator sim(small_config(5, 3), counter_factory(), counter_clients(3),
                  write_workload(3, 4),
                  std::make_unique<RandomScheduler>(so));
    sim.run();
    // Fingerprint the history event sequence.
    uint64_t fp = 1469598103934665603ull;
    for (const auto& ev : sim.history().events()) {
      fp = (fp ^ ev.time) * 1099511628211ull;
      fp = (fp ^ ev.op.value) * 1099511628211ull;
      fp = (fp ^ static_cast<uint64_t>(ev.kind)) * 1099511628211ull;
    }
    return fp;
  };
  EXPECT_EQ(run_once(77), run_once(77));
  EXPECT_NE(run_once(77), run_once(78));
}

TEST(Simulator, StepLimitStopsRun) {
  SimConfig cfg = small_config(3, 1);
  cfg.max_steps = 3;
  Simulator sim(cfg, counter_factory(), counter_clients(3),
                write_workload(1, 100),
                std::make_unique<RoundRobinScheduler>());
  RunReport report = sim.run();
  EXPECT_TRUE(report.hit_step_limit);
  EXPECT_FALSE(report.quiesced);
  EXPECT_EQ(report.steps, 3u);
}

TEST(Simulator, SnapshotCountsInFlightFootprints) {
  // Client triggers RMWs whose request footprint declares 100 bits each.
  class FatClient final : public ClientProtocol {
   public:
    void on_invoke(const Invocation& inv, SimContext& ctx) override {
      op_ = inv.op;
      for (uint32_t i = 0; i < ctx.num_objects(); ++i) {
        metrics::StorageFootprint fp;
        fp.add(codec::Source{inv.op, i + 1}, 100);
        ctx.trigger(
            ObjectId{i},
            [](ObjectStateBase&) -> ResponsePtr { return nullptr; },
            std::move(fp));
      }
    }
    void on_response(RmwId, ResponsePtr, SimContext& ctx) override {
      if (++responses_ == 2) ctx.complete(op_, std::nullopt);
    }

   private:
    OpId op_;
    uint32_t responses_ = 0;
  };

  Simulator sim(
      small_config(3, 1), counter_factory(),
      [](ClientId) { return std::make_unique<FatClient>(); },
      write_workload(1, 1), std::make_unique<RoundRobinScheduler>());
  // After the invocation, 3 RMWs x 100 bits ride the channels.
  ASSERT_TRUE(sim.step());  // invoke
  auto snap = sim.snapshot();
  EXPECT_EQ(snap.channel_bits(), 300u);
  EXPECT_EQ(snap.total_bits(), 300u);
  EXPECT_EQ(snap.object_bits(), 0u);
  // Channel bits drain as RMWs are delivered.
  ASSERT_TRUE(sim.step());
  EXPECT_EQ(sim.snapshot().channel_bits(), 200u);
  // Per-op contribution excludes the owner's own channel payloads
  // (Definition 6: blocks at the writer's own client do not count).
  const OpId op{1};
  EXPECT_EQ(sim.snapshot().op_contribution_bits(op, ClientId{0}), 0u);
  EXPECT_EQ(sim.snapshot().op_contribution_bits(op, std::nullopt), 200u);
}

TEST(Workload, UniformDealsWritesThenReaders) {
  UniformWorkload::Options o;
  o.writers = 2;
  o.writes_per_client = 1;
  o.readers = 1;
  o.reads_per_client = 2;
  o.data_bits = 64;
  UniformWorkload wl(o);
  EXPECT_TRUE(wl.has_more(ClientId{0}));
  EXPECT_TRUE(wl.has_more(ClientId{2}));
  EXPECT_FALSE(wl.has_more(ClientId{3}));
  auto inv = wl.next(ClientId{0}, OpId{1});
  EXPECT_EQ(inv.kind, OpKind::kWrite);
  EXPECT_EQ(inv.value.bit_size(), 64u);
  EXPECT_FALSE(wl.has_more(ClientId{0}));
  auto read = wl.next(ClientId{2}, OpId{2});
  EXPECT_EQ(read.kind, OpKind::kRead);
  EXPECT_TRUE(wl.has_more(ClientId{2}));
}

TEST(Workload, UniformValuesAreDistinct) {
  UniformWorkload::Options o;
  o.writers = 1;
  o.writes_per_client = 10;
  o.data_bits = 64;
  UniformWorkload wl(o);
  std::set<uint64_t> tags;
  for (uint64_t i = 1; i <= 10; ++i) {
    tags.insert(wl.next(ClientId{0}, OpId{i}).value.tag());
  }
  EXPECT_EQ(tags.size(), 10u);
}

TEST(Workload, ScriptedDealsInOrder) {
  std::vector<ScriptedWorkload::Step> steps = {
      {ClientId{0}, OpKind::kWrite, Value::from_tag(1, 64)},
      {ClientId{1}, OpKind::kRead, {}},
      {ClientId{0}, OpKind::kRead, {}},
  };
  ScriptedWorkload wl(steps);
  EXPECT_TRUE(wl.has_more(ClientId{0}));
  EXPECT_EQ(wl.next(ClientId{0}, OpId{1}).kind, OpKind::kWrite);
  EXPECT_EQ(wl.next(ClientId{0}, OpId{2}).kind, OpKind::kRead);
  EXPECT_FALSE(wl.has_more(ClientId{0}));
  EXPECT_TRUE(wl.has_more(ClientId{1}));
}

TEST(Workload, MixedRespectsOpsPerClient) {
  MixedWorkload::Options o;
  o.clients = 3;
  o.ops_per_client = 5;
  o.data_bits = 64;
  MixedWorkload wl(o);
  uint64_t op = 1;
  for (uint32_t c = 0; c < 3; ++c) {
    for (int i = 0; i < 5; ++i) {
      EXPECT_TRUE(wl.has_more(ClientId{c}));
      wl.next(ClientId{c}, OpId{op++});
    }
    EXPECT_FALSE(wl.has_more(ClientId{c}));
  }
}

TEST(History, RejectsDuplicateEvents) {
  History h;
  Invocation inv;
  inv.op = OpId{1};
  inv.client = ClientId{0};
  inv.kind = OpKind::kWrite;
  inv.value = Value::from_tag(1, 64);
  h.record_invoke(0, inv);
  EXPECT_THROW(h.record_invoke(1, inv), CheckFailure);
  h.record_return(2, OpId{1}, std::nullopt);
  EXPECT_THROW(h.record_return(3, OpId{1}, std::nullopt), CheckFailure);
  EXPECT_THROW(h.record_return(3, OpId{9}, std::nullopt), CheckFailure);
}

}  // namespace
}  // namespace sbrs::sim
