// Tests for the threaded runtime backend (src/runtime/): the MPSC channel
// primitive, the latency-unit tag, the seed-stream registry aliases, the
// cross-backend equivalence of every register variant, and pinned
// simulator fingerprints guarding that mounting the protocols on real
// threads changed no simulator byte.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "harness/algorithms.h"
#include "harness/runner.h"
#include "harness/sweep.h"
#include "metrics/latency_histogram.h"
#include "runtime/backend.h"
#include "runtime/channel.h"
#include "sim/arrival.h"
#include "sim/linkfault.h"
#include "store/store.h"

namespace sbrs {
namespace {

// --- Channel -------------------------------------------------------------

TEST(Channel, DeliversInFifoOrderAndDrainsAfterClose) {
  runtime::Channel<int> ch(0);  // unbounded
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(ch.send(i));
  ch.close();
  EXPECT_FALSE(ch.send(100)) << "send to a closed channel must fail";
  for (int i = 0; i < 100; ++i) {
    auto v = ch.recv();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(ch.recv().has_value()) << "closed + drained -> nullopt";
}

TEST(Channel, BoundedSendBlocksUntilReceiverDrains) {
  runtime::Channel<int> ch(2);
  std::atomic<int> sent{0};
  std::thread producer([&] {
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(ch.send(i));
      sent.fetch_add(1);
    }
  });
  // The producer can run at most `capacity` ahead of the consumer.
  while (sent.load() < 2) std::this_thread::yield();
  EXPECT_LE(sent.load(), 3) << "capacity-2 channel admitted >3 sends";
  for (int i = 0; i < 8; ++i) {
    auto v = ch.recv();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  producer.join();
  EXPECT_EQ(sent.load(), 8);
}

TEST(Channel, TryRecvNeverBlocks) {
  runtime::Channel<int> ch(0);
  EXPECT_FALSE(ch.try_recv().has_value());
  ch.send(7);
  auto v = ch.try_recv();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 7);
}

TEST(Channel, CloseWakesBlockedReceivers) {
  runtime::Channel<int> ch(0);
  std::thread receiver([&] { EXPECT_FALSE(ch.recv().has_value()); });
  ch.close();
  receiver.join();
}

TEST(Channel, ManyProducersOneConsumerLosesNothing) {
  runtime::Channel<int> ch(4);
  constexpr int kProducers = 8;
  constexpr int kPerProducer = 250;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ch] {
      for (int i = 0; i < kPerProducer; ++i) ASSERT_TRUE(ch.send(1));
    });
  }
  int received = 0;
  while (received < kProducers * kPerProducer) {
    ASSERT_TRUE(ch.recv().has_value());
    ++received;
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(ch.size(), 0u);
}

// --- LatencyUnit tag -----------------------------------------------------

TEST(LatencyUnit, DefaultIsStepsAndSuffixesArePinned) {
  metrics::LatencyHistogram h;
  EXPECT_EQ(h.unit(), metrics::LatencyUnit::kSteps);
  // The suffixes are part of the JSON artifact contract
  // ("read_latency_steps" / "read_latency_ns" keys).
  EXPECT_STREQ(metrics::unit_suffix(metrics::LatencyUnit::kSteps), "steps");
  EXPECT_STREQ(metrics::unit_suffix(metrics::LatencyUnit::kNanos), "ns");
}

TEST(LatencyUnit, EmptyHistogramAdoptsUnitOnMerge) {
  metrics::LatencyHistogram ns(metrics::LatencyUnit::kNanos);
  ns.record(1000);
  metrics::LatencyHistogram acc;  // default kSteps, empty
  acc.merge(ns);
  EXPECT_EQ(acc.unit(), metrics::LatencyUnit::kNanos);
  EXPECT_EQ(acc.count(), 1u);
}

TEST(LatencyUnit, MergingNonEmptyHistogramsOfDifferentUnitsIsAnError) {
  metrics::LatencyHistogram steps;
  steps.record(5);
  metrics::LatencyHistogram ns(metrics::LatencyUnit::kNanos);
  ns.record(5000);
  EXPECT_THROW(steps.merge(ns), CheckFailure);
}

// --- Seed-stream registry ------------------------------------------------

TEST(SeedRegistry, AliasesReproduceTheRegistryDerivation) {
  for (uint64_t seed : {0ull, 1ull, 42ull, 0xdeadbeefull}) {
    EXPECT_EQ(sim::arrival_seed(seed),
              derive_stream_seed(seed, seed_stream::kArrival));
    EXPECT_EQ(sim::fault_seed(seed),
              derive_stream_seed(seed, seed_stream::kLinkFault));
  }
}

TEST(SeedRegistry, DerivedSeedsArePinned) {
  // Frozen values: recorded artifacts (sweep JSON, scenario fingerprints)
  // depend on these streams — any drift here is an artifact break.
  EXPECT_EQ(sim::arrival_seed(1), 5517455394253255330ull);
  EXPECT_EQ(sim::arrival_seed(42), 468195606706551751ull);
  EXPECT_EQ(sim::fault_seed(1), 4070338423703192525ull);
  EXPECT_EQ(sim::fault_seed(42), 9021251642896246740ull);
  EXPECT_EQ(harness::cell_seed(1, 0, 0), 864272392484479936ull);
  EXPECT_EQ(harness::cell_seed(7, 3, 2), 14455008940317830726ull);
}

TEST(SeedRegistry, StreamsAreDecorrelatedAndNonzero) {
  EXPECT_NE(derive_stream_seed(1, seed_stream::kArrival),
            derive_stream_seed(1, seed_stream::kLinkFault));
  EXPECT_NE(derive_stream_seed(1, seed_stream::kArrival),
            derive_stream_seed(1, seed_stream::kRuntime));
  EXPECT_NE(derive_stream_seed(1, seed_stream::kRuntime), 0u);
  EXPECT_NE(derive_cell_seed(0, 0, 0), 0u);
}

// --- Cross-backend equivalence -------------------------------------------

harness::RunOptions closed_loop(harness::Backend backend) {
  harness::RunOptions opts;
  opts.backend = backend;
  opts.writers = 3;
  opts.writes_per_client = 8;
  opts.readers = 3;
  opts.reads_per_client = 8;
  opts.seed = 1;
  return opts;
}

registers::RegisterConfig small_config() {
  registers::RegisterConfig cfg;
  cfg.f = 1;
  cfg.k = 2;
  cfg.n = 4;  // n = 2f + k, valid for every variant
  cfg.data_bits = 128;
  return cfg;
}

bool meets_guarantee(const std::string& name,
                     const harness::RunOutcome& out) {
  if (!out.values_legal.ok) return false;
  switch (harness::expected_consistency(name)) {
    case harness::ConsistencyGuarantee::kStronglySafe:
      return out.strongly_safe.ok;
    case harness::ConsistencyGuarantee::kWeakRegular:
      return out.weak_regular.ok;
    case harness::ConsistencyGuarantee::kStrongRegular:
      return out.strong_regular.ok;
  }
  return false;
}

TEST(RuntimeBackend, EveryVariantRunsCheckerCleanOnBothBackends) {
  for (const auto& name : harness::algorithm_names()) {
    SCOPED_TRACE(name);
    auto alg = harness::make_algorithm(name, small_config());

    const auto threads = harness::run_register_experiment(
        *alg, closed_loop(harness::Backend::kThreads));
    const auto sim = harness::run_register_experiment(
        *alg, closed_loop(harness::Backend::kSim));

    // Same closed-loop workload -> same op counts; both histories must
    // pass the variant's promised consistency level and complete fully.
    EXPECT_EQ(threads.report.completed_ops, sim.report.completed_ops);
    EXPECT_EQ(threads.report.completed_ops, 48u);
    EXPECT_TRUE(threads.live);
    EXPECT_TRUE(sim.live);
    EXPECT_TRUE(threads.report.quiesced);
    EXPECT_TRUE(meets_guarantee(name, threads))
        << "threaded history violated the promised consistency level";
    EXPECT_TRUE(meets_guarantee(name, sim));
    EXPECT_EQ(threads.backend, harness::Backend::kThreads);
    EXPECT_EQ(sim.backend, harness::Backend::kSim);

    // Unit tags: wall-clock nanoseconds on threads, logical steps on sim.
    EXPECT_EQ(threads.report.op_latency.unit(), metrics::LatencyUnit::kNanos);
    EXPECT_EQ(sim.report.op_latency.unit(), metrics::LatencyUnit::kSteps);
    EXPECT_EQ(threads.report.op_latency.count(), 48u);
    EXPECT_GT(threads.wall_seconds, 0.0);

    // The threaded run really stored something and quiesced to the same
    // steady-state footprint a fault-free closed-loop run must reach.
    EXPECT_GT(threads.final_object_bits, 0u);
    EXPECT_GT(threads.max_object_bits, 0u);
  }
}

TEST(RuntimeBackend, ValidationRejectsSimulatorOnlyKnobs) {
  EXPECT_EQ(harness::parse_backend("sim"), harness::Backend::kSim);
  EXPECT_EQ(harness::parse_backend("threads"), harness::Backend::kThreads);
  EXPECT_THROW(harness::parse_backend("gpu"), CheckFailure);

  harness::RunOptions opts = closed_loop(harness::Backend::kThreads);
  EXPECT_TRUE(harness::validate_backend_options(opts).empty());

  opts.arrival.process = sim::ArrivalProcess::kPoisson;
  EXPECT_FALSE(harness::validate_backend_options(opts).empty())
      << "open-loop arrival is simulator-only";

  opts = closed_loop(harness::Backend::kThreads);
  opts.object_crashes = 1;
  EXPECT_FALSE(harness::validate_backend_options(opts).empty())
      << "fault injection is simulator-only";

  opts = closed_loop(harness::Backend::kSim);
  opts.object_crashes = 1;
  EXPECT_TRUE(harness::validate_backend_options(opts).empty())
      << "the simulator keeps every knob";
}

TEST(RuntimeBackend, StoreBatchRunsCheckerCleanOnThreads) {
  store::StoreOptions opts;
  opts.backend = harness::Backend::kThreads;
  opts.algorithm = "adaptive";
  opts.register_config = small_config();
  opts.num_shards = 4;
  opts.workload.num_keys = 32;
  opts.workload.clients = 4;
  opts.workload.ops_per_client = 16;
  opts.workload.mix = store::ycsb::Mix::kA;
  opts.workload.seed = 5;
  opts.seed = 11;
  store::Store st(opts);
  const store::StoreResult r = st.run();

  EXPECT_EQ(r.completed_reads + r.completed_writes, 64u);
  EXPECT_EQ(r.consistency_failures, 0u);
  EXPECT_TRUE(r.all_live);
  EXPECT_TRUE(r.all_quiesced);
  EXPECT_GT(r.keys_checked, 0u);
  EXPECT_EQ(r.read_latency.unit(), metrics::LatencyUnit::kNanos);
  EXPECT_GT(r.ops_per_sec, 0.0);
}

// --- Pinned simulator fingerprints ---------------------------------------
//
// The purification refactor (protocols compiled against runtime/ instead
// of sim/ headers) must not change a single simulator byte. These two
// fingerprints were captured on the pre-refactor tree; they cover the
// sweep engine (4 algorithms x 2 seeds, histories included) and the store
// engine (placement, multiplexing, YCSB stream, per-shard histories).

TEST(RuntimeBackend, SimSweepFingerprintUnchanged) {
  harness::SweepOptions so;
  so.seeds_per_cell = 2;
  so.base_seed = 7;
  so.threads = 2;
  std::vector<harness::SweepCell> grid;
  for (const char* alg : {"adaptive", "abd", "coded", "safe"}) {
    harness::SweepCell c;
    c.algorithm = alg;
    c.config.n = 4;
    c.config.k = 2;
    c.config.f = 1;
    c.config.data_bits = 64;
    c.opts.writers = 2;
    c.opts.writes_per_client = 2;
    c.opts.readers = 2;
    c.opts.reads_per_client = 2;
    grid.push_back(c);
  }
  const harness::SweepResult sweep = harness::SweepRunner(so).run(grid);
  EXPECT_EQ(sweep.fingerprint(), 0x217e396cc0212292ull);
}

TEST(RuntimeBackend, SimStoreFingerprintUnchanged) {
  store::StoreOptions opts;
  opts.algorithm = "adaptive";
  opts.register_config.n = 4;
  opts.register_config.k = 2;
  opts.register_config.f = 1;
  opts.register_config.data_bits = 64;
  opts.num_shards = 4;
  opts.workload.num_keys = 32;
  opts.workload.clients = 4;
  opts.workload.ops_per_client = 32;
  opts.workload.mix = store::ycsb::Mix::kA;
  opts.workload.seed = 5;
  opts.seed = 11;
  opts.threads = 2;
  opts.verify_accounting = false;
  store::Store st(opts);
  const store::StoreResult r = st.run();
  EXPECT_EQ(r.fingerprint(), 0xbd77422f7135c7a4ull);
  EXPECT_EQ(r.completed_reads, 62u);
  EXPECT_EQ(r.completed_writes, 66u);
  EXPECT_EQ(r.consistency_failures, 0u);
}

}  // namespace
}  // namespace sbrs
