// Unit tests for the register building blocks: chunks, object state
// footprints, the shared readValue helpers, and the RoundClient quorum
// machinery (driven through a mock SimContext).
#include <gtest/gtest.h>

#include "registers/round_client.h"
#include "registers/rmw_ops.h"
#include "sim/client.h"

namespace sbrs::registers {
namespace {

codec::TaggedBlock tagged(OpId op, uint32_t index, size_t bytes) {
  codec::TaggedBlock tb;
  tb.source = codec::Source{op, index};
  tb.block.index = index;
  tb.block.data = Bytes(bytes, static_cast<uint8_t>(index));
  return tb;
}

Chunk chunk(uint64_t ts_num, uint32_t index, size_t bytes = 8) {
  return Chunk{TimeStamp{ts_num, ClientId{0}}, tagged(OpId{ts_num}, index, bytes)};
}

TEST(ChunkOps, DistinctIndicesAt) {
  std::vector<Chunk> chunks = {chunk(1, 1), chunk(1, 2), chunk(1, 2),
                               chunk(2, 3)};
  EXPECT_EQ(distinct_indices_at(chunks, TimeStamp{1, ClientId{0}}), 2u);
  EXPECT_EQ(distinct_indices_at(chunks, TimeStamp{2, ClientId{0}}), 1u);
  EXPECT_EQ(distinct_indices_at(chunks, TimeStamp{9, ClientId{0}}), 0u);
}

TEST(ChunkOps, BlocksAtFiltersByTimestamp) {
  std::vector<Chunk> chunks = {chunk(1, 1), chunk(2, 2), chunk(1, 3)};
  auto blocks = blocks_at(chunks, TimeStamp{1, ClientId{0}});
  ASSERT_EQ(blocks.size(), 2u);
  EXPECT_EQ(blocks[0].index, 1u);
  EXPECT_EQ(blocks[1].index, 3u);
}

TEST(ChunkOps, MaxTs) {
  std::vector<Chunk> chunks = {chunk(3, 1), chunk(7, 2), chunk(5, 3)};
  EXPECT_EQ(max_ts(chunks).num, 7u);
  EXPECT_EQ(max_ts({}).num, 0u);
}

TEST(ObjectState, FootprintSumsVpAndVf) {
  RegisterObjectState st;
  st.vp.push_back(chunk(1, 1, 16));  // 128 bits
  st.vf.push_back(chunk(2, 2, 16));
  st.vf.push_back(chunk(2, 3, 16));
  EXPECT_EQ(st.footprint().total_bits(), 3u * 128);
  EXPECT_EQ(st.stored_bits(), 3u * 128);
  EXPECT_EQ(st.all_chunks().size(), 3u);
}

TEST(ObjectState, DowncastChecks) {
  RegisterObjectState good;
  EXPECT_EQ(&as_register_state(good), &good);

  struct Other final : sim::ObjectStateBase {
    metrics::StorageFootprint footprint() const override { return {}; }
  } other;
  EXPECT_THROW(as_register_state(other), CheckFailure);
}

TEST(RmwOps, ReadValueReturnsStateCopy) {
  RegisterObjectState st;
  st.stored_ts = TimeStamp{4, ClientId{1}};
  st.vp.push_back(chunk(4, 2));
  auto rmw = make_read_value_rmw(ObjectId{7});
  auto resp = rmw(st);
  const auto* r = response_as<ReadValueResponse>(resp);
  EXPECT_EQ(r->from, ObjectId{7});
  EXPECT_EQ(r->stored_ts.num, 4u);
  ASSERT_EQ(r->vp.size(), 1u);
  EXPECT_TRUE(r->vf.empty());
  // It is a copy: mutating the object does not affect the response.
  st.vp.clear();
  EXPECT_EQ(r->vp.size(), 1u);
}

TEST(RmwOps, MaxHelpersScanAllResponses) {
  std::vector<sim::ResponsePtr> responses;
  {
    ReadValueResponse r;
    r.from = ObjectId{0};
    r.stored_ts = TimeStamp{3, ClientId{0}};
    r.vp.push_back(chunk(9, 1));
    responses.push_back(make_response(std::move(r)));
  }
  {
    ReadValueResponse r;
    r.from = ObjectId{1};
    r.stored_ts = TimeStamp{5, ClientId{2}};
    r.vf.push_back(chunk(4, 2));
    responses.push_back(make_response(std::move(r)));
  }
  EXPECT_EQ(max_ts_num(responses), 9u);
  EXPECT_EQ(max_stored_ts(responses).num, 5u);
  EXPECT_EQ(merge_chunks(responses).size(), 2u);
}

// --------------------------- RoundClient ----------------------------------

/// Records triggers and lets the test deliver them manually.
class MockContext final : public sim::SimContext {
 public:
  explicit MockContext(uint32_t n) : n_(n) {}

  RmwId trigger(ObjectId target, sim::RmwFn fn,
                metrics::StorageFootprint fp) override {
    triggered.push_back({RmwId{next_id_++}, target, std::move(fn)});
    footprint_bits += fp.total_bits();
    return triggered.back().id;
  }
  void complete(OpId op, std::optional<Value>) override {
    completed.push_back(op);
  }
  ClientId self() const override { return ClientId{0}; }
  uint32_t num_objects() const override { return n_; }
  uint64_t now() const override { return 0; }

  struct Triggered {
    RmwId id;
    ObjectId target;
    sim::RmwFn fn;
  };
  std::vector<Triggered> triggered;
  std::vector<OpId> completed;
  uint64_t footprint_bits = 0;

 private:
  uint32_t n_;
  uint64_t next_id_ = 1;
};

/// Minimal RoundClient: counts quorum callbacks.
class ProbeClient final : public RoundClient {
 public:
  ProbeClient(uint32_t n, uint32_t f) : RoundClient(n, f) {}

  void on_invoke(const sim::Invocation&, sim::SimContext&) override {}

  void begin(sim::SimContext& ctx) {
    start_round(
        ctx,
        [](ObjectId o) -> sim::RmwFn {
          return [o](sim::ObjectStateBase&) -> sim::ResponsePtr {
            return make_response(AckResponse{o, TimeStamp::zero()});
          };
        },
        [](ObjectId) { return metrics::StorageFootprint{}; });
  }

  int quorums = 0;
  size_t last_count = 0;

 protected:
  void on_quorum(uint64_t, const std::vector<sim::ResponsePtr>& responses,
                 sim::SimContext&) override {
    ++quorums;
    last_count = responses.size();
  }
};

TEST(RoundClient, QuorumFiresAtNMinusF) {
  MockContext ctx(5);
  ProbeClient client(5, 2);
  client.begin(ctx);
  ASSERT_EQ(ctx.triggered.size(), 5u);

  RegisterObjectState dummy;
  for (size_t i = 0; i < 2; ++i) {
    client.on_response(ctx.triggered[i].id, ctx.triggered[i].fn(dummy), ctx);
    EXPECT_EQ(client.quorums, 0);
  }
  client.on_response(ctx.triggered[2].id, ctx.triggered[2].fn(dummy), ctx);
  EXPECT_EQ(client.quorums, 1);  // 3 = n - f responses
  EXPECT_EQ(client.last_count, 3u);
}

TEST(RoundClient, LateResponsesOfFinishedRoundIgnored) {
  MockContext ctx(5);
  ProbeClient client(5, 2);
  client.begin(ctx);
  RegisterObjectState dummy;
  for (size_t i = 0; i < 3; ++i) {
    client.on_response(ctx.triggered[i].id, ctx.triggered[i].fn(dummy), ctx);
  }
  EXPECT_EQ(client.quorums, 1);
  // Stragglers arrive after the round closed: no further callbacks.
  client.on_response(ctx.triggered[3].id, ctx.triggered[3].fn(dummy), ctx);
  client.on_response(ctx.triggered[4].id, ctx.triggered[4].fn(dummy), ctx);
  EXPECT_EQ(client.quorums, 1);
}

TEST(RoundClient, ForeignResponsesIgnored) {
  MockContext ctx(3);
  ProbeClient client(3, 1);
  client.begin(ctx);
  RegisterObjectState dummy;
  client.on_response(RmwId{424242}, nullptr, ctx);  // not ours
  EXPECT_EQ(client.quorums, 0);
  client.on_response(ctx.triggered[0].id, ctx.triggered[0].fn(dummy), ctx);
  client.on_response(ctx.triggered[1].id, ctx.triggered[1].fn(dummy), ctx);
  EXPECT_EQ(client.quorums, 1);
}

TEST(RoundClient, RejectsOverlappingRounds) {
  MockContext ctx(3);
  ProbeClient client(3, 1);
  client.begin(ctx);
  EXPECT_THROW(client.begin(ctx), CheckFailure);
}

TEST(RoundClient, RejectsBadQuorumShape) {
  EXPECT_THROW(ProbeClient(4, 2), CheckFailure);  // needs f < n/2
  EXPECT_NO_THROW(ProbeClient(5, 2));
}

}  // namespace
}  // namespace sbrs::registers
