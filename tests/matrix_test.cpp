// Tests for GF(2^8) matrices: inversion, MDS constructions.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "gf/matrix.h"

namespace sbrs::gf {
namespace {

Matrix random_matrix(size_t n, Rng& rng) {
  Matrix m(n, n);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < n; ++c) {
      m.at(r, c) = static_cast<uint8_t>(rng.below(256));
    }
  }
  return m;
}

TEST(Matrix, IdentityIsItsOwnInverse) {
  const Matrix id = Matrix::identity(5);
  auto inv = id.inverted();
  ASSERT_TRUE(inv.has_value());
  EXPECT_EQ(*inv, id);
}

TEST(Matrix, MulByIdentity) {
  Rng rng(1);
  const Matrix m = random_matrix(6, rng);
  EXPECT_EQ(m.mul(Matrix::identity(6)), m);
  EXPECT_EQ(Matrix::identity(6).mul(m), m);
}

TEST(Matrix, SingularMatrixNotInvertible) {
  Matrix m(3, 3);  // all zeros
  EXPECT_FALSE(m.inverted().has_value());
  // Duplicate rows.
  Matrix d(2, 2);
  d.at(0, 0) = 3;
  d.at(0, 1) = 7;
  d.at(1, 0) = 3;
  d.at(1, 1) = 7;
  EXPECT_FALSE(d.inverted().has_value());
}

TEST(Matrix, InverseRoundTripRandom) {
  Rng rng(99);
  size_t inverted_count = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const size_t n = 1 + rng.below(8);
    const Matrix m = random_matrix(n, rng);
    auto inv = m.inverted();
    if (!inv.has_value()) continue;  // singular random matrices happen
    ++inverted_count;
    EXPECT_EQ(m.mul(*inv), Matrix::identity(n));
    EXPECT_EQ(inv->mul(m), Matrix::identity(n));
  }
  EXPECT_GT(inverted_count, 20u);  // most random matrices are invertible
}

TEST(Matrix, VandermondeSquareSubmatricesInvertible) {
  const Matrix v = Matrix::vandermonde(10, 4);
  Rng rng(5);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<size_t> rows;
    for (size_t r = 0; r < 10; ++r) rows.push_back(r);
    rng.shuffle(rows);
    rows.resize(4);
    EXPECT_TRUE(v.select_rows(rows).inverted().has_value())
        << "rows " << rows[0] << "," << rows[1] << "," << rows[2] << ","
        << rows[3];
  }
}

TEST(Matrix, CauchyAllSquareSubmatricesInvertible) {
  const Matrix c = Matrix::cauchy(8, 4);
  Rng rng(6);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<size_t> rows;
    for (size_t r = 0; r < 8; ++r) rows.push_back(r);
    rng.shuffle(rows);
    rows.resize(4);
    EXPECT_TRUE(c.select_rows(rows).inverted().has_value());
  }
}

TEST(Matrix, RsSystematicTopIsIdentity) {
  const Matrix g = Matrix::rs_systematic(9, 4);
  ASSERT_EQ(g.rows(), 9u);
  ASSERT_EQ(g.cols(), 4u);
  for (size_t r = 0; r < 4; ++r) {
    for (size_t c = 0; c < 4; ++c) {
      EXPECT_EQ(g.at(r, c), r == c ? 1 : 0);
    }
  }
}

TEST(Matrix, RsSystematicIsMds) {
  // Every k-subset of rows must be invertible (the MDS property that makes
  // "any k blocks decode" true).
  const size_t n = 8, k = 3;
  const Matrix g = Matrix::rs_systematic(n, k);
  // Enumerate all C(8,3) = 56 subsets.
  size_t checked = 0;
  for (size_t a = 0; a < n; ++a) {
    for (size_t b = a + 1; b < n; ++b) {
      for (size_t c = b + 1; c < n; ++c) {
        EXPECT_TRUE(g.select_rows({a, b, c}).inverted().has_value())
            << a << "," << b << "," << c;
        ++checked;
      }
    }
  }
  EXPECT_EQ(checked, 56u);
}

TEST(Matrix, ApplyMatchesMul) {
  Rng rng(17);
  const Matrix m = random_matrix(4, rng);
  const size_t len = 16;
  std::vector<std::vector<uint8_t>> in(4, std::vector<uint8_t>(len));
  for (auto& v : in) {
    for (auto& b : v) b = static_cast<uint8_t>(rng.below(256));
  }
  std::vector<const uint8_t*> in_ptrs;
  for (auto& v : in) in_ptrs.push_back(v.data());
  std::vector<std::vector<uint8_t>> out(4, std::vector<uint8_t>(len));
  std::vector<uint8_t*> out_ptrs;
  for (auto& v : out) out_ptrs.push_back(v.data());
  m.apply(in_ptrs, out_ptrs, len);

  for (size_t r = 0; r < 4; ++r) {
    for (size_t i = 0; i < len; ++i) {
      uint8_t expect = 0;
      for (size_t c = 0; c < 4; ++c) expect ^= mul(m.at(r, c), in[c][i]);
      EXPECT_EQ(out[r][i], expect);
    }
  }
}

TEST(Matrix, SelectRowsPreservesOrder) {
  const Matrix v = Matrix::vandermonde(5, 2);
  const Matrix s = v.select_rows({4, 0, 2});
  EXPECT_EQ(s.rows(), 3u);
  for (size_t c = 0; c < 2; ++c) {
    EXPECT_EQ(s.at(0, c), v.at(4, c));
    EXPECT_EQ(s.at(1, c), v.at(0, c));
    EXPECT_EQ(s.at(2, c), v.at(2, c));
  }
}

}  // namespace
}  // namespace sbrs::gf
