// Tests for the lower-bound machinery: the C/F classification (Definition
// 6, Observations 1-2), the adversary Ad (Definition 7), and the Lemma 3
// experiment certifying Theorem 1's Omega(min(f,c) D) on every regular
// algorithm — and its non-applicability to the safe register.
#include <gtest/gtest.h>

#include "adversary/ad_scheduler.h"
#include "adversary/lower_bound.h"
#include "adversary/tracker.h"
#include "bounds/formulas.h"
#include "sim/simulator.h"
#include "sim/workload.h"

namespace sbrs {
namespace {

registers::RegisterConfig cfg_fk(uint32_t f, uint32_t k,
                                 uint64_t data_bits = 1024) {
  registers::RegisterConfig cfg;
  cfg.f = f;
  cfg.k = k;
  cfg.n = 2 * f + k;
  cfg.data_bits = data_bits;
  return cfg;
}

// --------------------------- tracker ---------------------------------------

TEST(Tracker, ClassifiesFromSnapshot) {
  adversary::OpClassTracker tracker(/*l=*/512, /*D=*/1024);

  sim::History history;
  sim::Invocation w1;
  w1.op = OpId{1};
  w1.client = ClientId{0};
  w1.kind = sim::OpKind::kWrite;
  w1.value = Value::from_tag(1, 1024);
  history.record_invoke(0, w1);
  sim::Invocation w2 = w1;
  w2.op = OpId{2};
  w2.client = ClientId{1};
  w2.value = Value::from_tag(2, 1024);
  history.record_invoke(1, w2);

  metrics::StorageSnapshot snap;
  // Object 0 stores 600 bits of w1 (distinct indices) -> w1 in C+ and the
  // object frozen; object 1 stores 100 bits of w2 -> w2 in C-.
  metrics::StorageSnapshot::ObjectEntry o0;
  o0.id = ObjectId{0};
  o0.footprint.add(codec::Source{OpId{1}, 1}, 300);
  o0.footprint.add(codec::Source{OpId{1}, 2}, 300);
  snap.objects.push_back(o0);
  metrics::StorageSnapshot::ObjectEntry o1;
  o1.id = ObjectId{1};
  o1.footprint.add(codec::Source{OpId{2}, 1}, 100);
  snap.objects.push_back(o1);

  auto st = tracker.classify(history, snap);
  EXPECT_EQ(st.outstanding_writes.size(), 2u);
  ASSERT_EQ(st.c_plus.size(), 1u);
  EXPECT_EQ(st.c_plus[0], OpId{1});
  ASSERT_EQ(st.c_minus.size(), 1u);
  EXPECT_EQ(st.c_minus[0], OpId{2});
  EXPECT_EQ(st.frozen.size(), 1u);
  EXPECT_TRUE(st.frozen.count(ObjectId{0}) > 0);
}

TEST(Tracker, DuplicateBlockIndicesCountOnce) {
  // Definition 6 sums size(i) over the *set* of indices: five copies of
  // the same block are one contribution.
  adversary::OpClassTracker tracker(512, 1024);
  metrics::StorageSnapshot snap;
  metrics::StorageSnapshot::ObjectEntry o;
  o.id = ObjectId{0};
  for (int copy = 0; copy < 5; ++copy) {
    o.footprint.add(codec::Source{OpId{1}, 7}, 200);
  }
  snap.objects.push_back(o);
  EXPECT_EQ(tracker.contribution_bits(snap, OpId{1}, ClientId{0}), 200u);
}

TEST(Tracker, CompletedWritesAreNotClassified) {
  adversary::OpClassTracker tracker(512, 1024);
  sim::History history;
  sim::Invocation w;
  w.op = OpId{1};
  w.client = ClientId{0};
  w.kind = sim::OpKind::kWrite;
  w.value = Value::from_tag(1, 1024);
  history.record_invoke(0, w);
  history.record_return(5, OpId{1}, std::nullopt);
  metrics::StorageSnapshot snap;
  auto st = tracker.classify(history, snap);
  EXPECT_TRUE(st.outstanding_writes.empty());
  EXPECT_TRUE(st.c_plus.empty());
  EXPECT_TRUE(st.c_minus.empty());
}

// --------------------------- adversary runs --------------------------------

/// Run the Lemma 3 experiment and also verify Observation 2 (the frozen set
/// only grows) by stepping manually.
TEST(Adversary, FrozenSetIsMonotone) {
  const auto cfg = cfg_fk(2, 2);
  auto alg = registers::make_coded(cfg);

  sim::UniformWorkload::Options wl;
  wl.writers = 4;
  wl.writes_per_client = 1;
  wl.data_bits = cfg.data_bits;

  adversary::AdScheduler::Options ad;
  ad.l_bits = cfg.data_bits / 2;
  ad.data_bits = cfg.data_bits;
  ad.concurrency = 4;
  ad.f = cfg.f;
  ad.stop_when_frozen = false;  // let freezing accumulate

  sim::SimConfig sc;
  sc.num_objects = cfg.n;
  sc.num_clients = 4;

  adversary::OpClassTracker tracker(ad.l_bits, cfg.data_bits);
  sim::Simulator sim(sc, alg->object_factory(), alg->client_factory(),
                     std::make_unique<sim::UniformWorkload>(wl),
                     std::make_unique<adversary::AdScheduler>(ad));
  std::set<ObjectId> prev_frozen;
  while (sim.step()) {
    auto st = tracker.classify(sim.history(), sim.snapshot());
    for (ObjectId o : prev_frozen) {
      EXPECT_TRUE(st.frozen.count(o) > 0)
          << "object " << o << " thawed at t=" << sim.now();
    }
    prev_frozen = st.frozen;
  }
}

TEST(Adversary, PreventsWriteCompletionOnRegularAlgorithms) {
  // Under Ad no write of a (coded or adaptive) regular algorithm returns:
  // the no-progress core of the lower-bound proof (Corollary 1).
  for (int which = 0; which < 2; ++which) {
    const auto cfg = cfg_fk(2, 2);
    auto alg = which == 0
                   ? registers::make_coded(cfg)
                   : registers::make_adaptive(cfg);
    auto res = adversary::run_lower_bound_experiment(*alg, 4);
    EXPECT_EQ(res.completed_writes, 0u) << res.algorithm;
  }
}

TEST(Adversary, LowerBoundCertifiedOnRegularAlgorithms) {
  // Theorem 1: measured storage at the adversary's fixed point must be at
  // least min(f+1, c) * D/2 for every regular algorithm.
  const auto cfg = cfg_fk(2, 2);
  std::vector<std::unique_ptr<registers::RegisterAlgorithm>> algs;
  algs.push_back(registers::make_coded(cfg));
  algs.push_back(registers::make_adaptive(cfg));
  {
    registers::RegisterConfig abd = cfg;
    abd.k = 1;
    abd.n = 2 * abd.f + 1;
    algs.push_back(registers::make_abd(abd));
  }
  for (const auto& alg : algs) {
    for (uint32_t c : {1u, 2u, 3u, 6u}) {
      auto res = adversary::run_lower_bound_experiment(*alg, c);
      EXPECT_GE(res.max_total_bits, res.predicted_bits)
          << alg->name() << " c=" << c;
    }
  }
}

TEST(Adversary, SafeRegisterEscapesTheBound) {
  // Appendix E: the safe register's *object* storage stays at n D / k no
  // matter how hard Ad pushes — below the regular-register bound once
  // k >> f. (Channel bits are the writers' in-flight pieces, not storage
  // the algorithm retains.)
  const auto cfg = cfg_fk(2, 16, 2048);
  auto alg = registers::make_safe(cfg);
  const uint64_t flat = bounds::safe_register_bits(cfg.f, cfg.k, cfg.data_bits);
  for (uint32_t c : {4u, 8u, 16u}) {
    auto res = adversary::run_lower_bound_experiment(*alg, c);
    EXPECT_EQ(res.max_object_bits, flat) << "c=" << c;
    EXPECT_LT(res.max_object_bits,
              bounds::lower_bound_bits(cfg.f, c, cfg.data_bits))
        << "c=" << c;
  }
}

TEST(Adversary, StopReasonsMatchTheDichotomy) {
  // Lemma 3: the run ends with |C+| = c, or |F| > f, or total starvation.
  const auto cfg = cfg_fk(2, 2);
  auto alg = registers::make_coded(cfg);
  for (uint32_t c : {1u, 2u, 5u}) {
    auto res = adversary::run_lower_bound_experiment(*alg, c);
    const bool c_plus_full = res.c_plus_writes >= c;
    const bool frozen_full = res.frozen_objects > cfg.f;
    const bool starved = res.stop_reason.find("starved") != std::string::npos;
    EXPECT_TRUE(c_plus_full || frozen_full || starved)
        << "c=" << c << " stop=" << res.stop_reason;
  }
}

TEST(Adversary, LEqualsDStarvesWritesAfterOnePiece) {
  // Corollary 2's reading of Lemma 3 with l = D: the contribution budget
  // D - l is zero, so a write enters C+ as soon as its first piece lands.
  // Every write is starved after at most one delivered RMW and none
  // completes.
  const auto cfg = cfg_fk(1, 4, 1024);
  auto alg = registers::make_coded(cfg);
  adversary::LowerBoundOptions opts;
  opts.l_bits = cfg.data_bits;  // l = D
  auto res = adversary::run_lower_bound_experiment(*alg, 3, opts);
  EXPECT_EQ(res.completed_writes, 0u);
  EXPECT_EQ(res.c_plus_writes, 3u);
  // Each write parked exactly one D/4-bit piece; plus the v0 pieces.
  EXPECT_LE(res.final_object_bits,
            (3 + cfg.n) * bounds::piece_bits(cfg.k, cfg.data_bits));
}

TEST(Adversary, DeterministicAcrossRuns) {
  const auto cfg = cfg_fk(2, 2);
  auto alg = registers::make_coded(cfg);
  auto r1 = adversary::run_lower_bound_experiment(*alg, 3);
  auto r2 = adversary::run_lower_bound_experiment(*alg, 3);
  EXPECT_EQ(r1.max_total_bits, r2.max_total_bits);
  EXPECT_EQ(r1.steps, r2.steps);
  EXPECT_EQ(r1.stop_reason, r2.stop_reason);
}

}  // namespace
}  // namespace sbrs
