// End-to-end smoke tests: every algorithm, small workloads, all checkers.
#include <gtest/gtest.h>

#include "harness/runner.h"

namespace sbrs {
namespace {

using harness::RunOptions;
using harness::run_register_experiment;
using registers::RegisterConfig;

RegisterConfig coded_cfg() {
  RegisterConfig cfg;
  cfg.f = 2;
  cfg.k = 2;
  cfg.n = 2 * cfg.f + cfg.k;  // 6
  cfg.data_bits = 256;
  return cfg;
}

TEST(Smoke, AdaptiveSequential) {
  auto alg = registers::make_adaptive(coded_cfg());
  RunOptions opts;
  opts.writers = 1;
  opts.writes_per_client = 3;
  opts.readers = 1;
  opts.reads_per_client = 3;
  opts.scheduler = harness::SchedKind::kRoundRobin;
  auto out = run_register_experiment(*alg, opts);
  EXPECT_TRUE(out.report.quiesced) << out.report.stop_reason;
  EXPECT_TRUE(out.live);
  EXPECT_TRUE(out.values_legal.ok) << out.values_legal.summary();
  EXPECT_TRUE(out.weak_regular.ok) << out.weak_regular.summary();
  EXPECT_TRUE(out.strong_regular.ok) << out.strong_regular.summary();
}

TEST(Smoke, AdaptiveConcurrentRandom) {
  auto alg = registers::make_adaptive(coded_cfg());
  RunOptions opts;
  opts.writers = 3;
  opts.writes_per_client = 2;
  opts.readers = 2;
  opts.reads_per_client = 2;
  opts.seed = 42;
  auto out = run_register_experiment(*alg, opts);
  EXPECT_TRUE(out.report.quiesced) << out.report.stop_reason;
  EXPECT_TRUE(out.weak_regular.ok) << out.weak_regular.summary();
  EXPECT_TRUE(out.strong_regular.ok) << out.strong_regular.summary();
}

TEST(Smoke, AbdSequential) {
  RegisterConfig cfg;
  cfg.f = 1;
  cfg.n = 3;
  cfg.k = 1;
  cfg.data_bits = 128;
  auto alg = registers::make_abd(cfg);
  RunOptions opts;
  opts.writers = 2;
  opts.writes_per_client = 2;
  opts.readers = 2;
  opts.reads_per_client = 2;
  opts.seed = 7;
  auto out = run_register_experiment(*alg, opts);
  EXPECT_TRUE(out.report.quiesced);
  EXPECT_TRUE(out.strong_regular.ok) << out.strong_regular.summary();
}

TEST(Smoke, CodedBaseline) {
  auto alg = registers::make_coded(coded_cfg());
  RunOptions opts;
  opts.writers = 2;
  opts.writes_per_client = 2;
  opts.readers = 1;
  opts.reads_per_client = 2;
  opts.seed = 3;
  auto out = run_register_experiment(*alg, opts);
  EXPECT_TRUE(out.report.quiesced) << out.report.stop_reason;
  EXPECT_TRUE(out.weak_regular.ok) << out.weak_regular.summary();
}

TEST(Smoke, SafeRegister) {
  auto alg = registers::make_safe(coded_cfg());
  RunOptions opts;
  opts.writers = 2;
  opts.writes_per_client = 2;
  opts.readers = 2;
  opts.reads_per_client = 2;
  opts.seed = 11;
  auto out = run_register_experiment(*alg, opts);
  EXPECT_TRUE(out.report.quiesced);
  EXPECT_TRUE(out.values_legal.ok) << out.values_legal.summary();
  EXPECT_TRUE(out.strongly_safe.ok) << out.strongly_safe.summary();
}

}  // namespace
}  // namespace sbrs
