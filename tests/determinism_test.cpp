// Determinism regression tests: one seed, one schedule.
//
//   - Running the same {seed, scheduler, workload} twice must produce a
//     byte-identical History and storage series.
//   - A sweep grid must produce identical per-cell outcomes no matter how
//     many worker threads execute it.
#include <gtest/gtest.h>

#include "harness/algorithms.h"
#include "harness/sweep.h"
#include "sim/schedulers.h"
#include "sim/simulator.h"
#include "sim/workload.h"

namespace sbrs {
namespace {

registers::RegisterConfig cfg_small() {
  registers::RegisterConfig cfg;
  cfg.f = 2;
  cfg.k = 2;
  cfg.n = 6;
  cfg.data_bits = 256;
  return cfg;
}

struct RunArtifacts {
  std::vector<sim::HistoryEvent> events;
  std::vector<metrics::StorageSample> series;
  uint64_t max_total = 0;
  uint64_t max_object = 0;
};

RunArtifacts run_once(uint64_t seed) {
  auto alg = harness::make_algorithm("adaptive", cfg_small());
  const auto& cfg = alg->config();

  sim::UniformWorkload::Options wl;
  wl.writers = 3;
  wl.writes_per_client = 2;
  wl.readers = 2;
  wl.reads_per_client = 2;
  wl.data_bits = cfg.data_bits;

  sim::RandomScheduler::Options so;
  so.seed = seed;
  so.max_object_crashes = 1;
  so.crash_object_permyriad = 30;
  so.max_client_crashes = 1;
  so.crash_client_permyriad = 30;

  sim::SimConfig simc;
  simc.num_objects = cfg.n;
  simc.num_clients = wl.writers + wl.readers;
  simc.sample_every = 1;

  sim::Simulator sim(simc, alg->object_factory(), alg->client_factory(),
                     std::make_unique<sim::UniformWorkload>(wl),
                     std::make_unique<sim::RandomScheduler>(so));
  sim.run();

  RunArtifacts a;
  a.events = sim.history().events();
  a.series = sim.meter().series();
  a.max_total = sim.meter().max_total_bits();
  a.max_object = sim.meter().max_object_bits();
  return a;
}

TEST(Determinism, SameSeedGivesIdenticalHistoryAndStorageSeries) {
  const RunArtifacts a = run_once(2024);
  const RunArtifacts b = run_once(2024);

  ASSERT_EQ(a.events.size(), b.events.size());
  for (size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].kind, b.events[i].kind) << "event " << i;
    EXPECT_EQ(a.events[i].time, b.events[i].time) << "event " << i;
    EXPECT_EQ(a.events[i].op, b.events[i].op) << "event " << i;
    EXPECT_EQ(a.events[i].client, b.events[i].client) << "event " << i;
    EXPECT_EQ(a.events[i].op_kind, b.events[i].op_kind) << "event " << i;
    EXPECT_EQ(a.events[i].value, b.events[i].value) << "event " << i;
  }
  ASSERT_EQ(a.series.size(), b.series.size());
  for (size_t i = 0; i < a.series.size(); ++i) {
    EXPECT_EQ(a.series[i].time, b.series[i].time);
    EXPECT_EQ(a.series[i].total_bits, b.series[i].total_bits);
    EXPECT_EQ(a.series[i].object_bits, b.series[i].object_bits);
    EXPECT_EQ(a.series[i].channel_bits, b.series[i].channel_bits);
  }
  EXPECT_EQ(a.max_total, b.max_total);
  EXPECT_EQ(a.max_object, b.max_object);

  // And a different seed actually changes the schedule.
  const RunArtifacts c = run_once(2025);
  EXPECT_FALSE(a.series.size() == c.series.size() &&
               a.max_total == c.max_total && a.events.size() == c.events.size())
      << "distinct seeds produced suspiciously identical runs";
}

std::vector<harness::SweepCell> test_grid() {
  std::vector<harness::SweepCell> grid;
  for (const char* alg : {"adaptive", "coded", "abd"}) {
    for (uint32_t c : {1u, 3u, 6u}) {
      harness::SweepCell cell;
      cell.algorithm = alg;
      cell.config = cfg_small();
      cell.opts.writers = c;
      cell.opts.writes_per_client = 2;
      cell.opts.readers = 1;
      cell.opts.reads_per_client = 1;
      cell.opts.scheduler = harness::SchedKind::kRandom;
      grid.push_back(std::move(cell));
    }
  }
  return grid;
}

TEST(Determinism, SweepIdenticalAcrossThreadCounts) {
  const auto grid = test_grid();
  harness::SweepOptions base;
  base.seeds_per_cell = 3;
  base.base_seed = 7;

  std::vector<harness::SweepResult> results;
  for (uint32_t threads : {1u, 4u, 9u}) {
    harness::SweepOptions so = base;
    so.threads = threads;
    results.push_back(harness::SweepRunner(so).run(grid));
  }

  const auto& ref = results[0];
  for (size_t r = 1; r < results.size(); ++r) {
    const auto& got = results[r];
    ASSERT_EQ(got.cells.size(), ref.cells.size());
    EXPECT_EQ(got.fingerprint(), ref.fingerprint());
    for (size_t i = 0; i < ref.cells.size(); ++i) {
      SCOPED_TRACE(ref.cells[i].cell.label.empty()
                       ? ref.cells[i].cell.algorithm
                       : ref.cells[i].cell.label);
      EXPECT_EQ(got.cells[i].fingerprint, ref.cells[i].fingerprint);
      EXPECT_EQ(got.cells[i].max_total_bits.max,
                ref.cells[i].max_total_bits.max);
      EXPECT_EQ(got.cells[i].max_total_bits.p50,
                ref.cells[i].max_total_bits.p50);
      EXPECT_EQ(got.cells[i].max_object_bits.max,
                ref.cells[i].max_object_bits.max);
      EXPECT_EQ(got.cells[i].steps.min, ref.cells[i].steps.min);
      EXPECT_EQ(got.cells[i].steps.max, ref.cells[i].steps.max);
      EXPECT_EQ(got.cells[i].total_steps, ref.cells[i].total_steps);
      EXPECT_EQ(got.cells[i].consistency_failures,
                ref.cells[i].consistency_failures);
      EXPECT_EQ(got.cells[i].quiesced, ref.cells[i].quiesced);
    }
  }
}

TEST(Determinism, CellSeedsAreStableAndDistinct) {
  // Thread-schedule independence rests on the seed being a pure function of
  // {base, cell, seed-index}.
  EXPECT_EQ(harness::cell_seed(1, 0, 0), harness::cell_seed(1, 0, 0));
  std::set<uint64_t> seen;
  for (size_t cell = 0; cell < 16; ++cell) {
    for (uint32_t s = 0; s < 16; ++s) {
      const uint64_t seed = harness::cell_seed(42, cell, s);
      EXPECT_NE(seed, 0u);
      EXPECT_TRUE(seen.insert(seed).second)
          << "seed collision at cell " << cell << " seed-index " << s;
    }
  }
}

}  // namespace
}  // namespace sbrs
