// Statistical and determinism tests for the YCSB-style generators
// (src/store/ycsb.h): zipfian frequency-vs-rank shape, latest-distribution
// recency chasing, mix ratios, and stream determinism.
//
// All statistical assertions run under a fixed seed, so they are exact
// regressions rather than flaky tolerance checks — the margins only need to
// hold for these particular deterministic streams.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "store/ycsb.h"
#include "sim/types.h"

namespace sbrs::store::ycsb {
namespace {

TEST(Zipfian, FrequencyDecreasesWithRank) {
  const uint64_t n = 100;
  ZipfianGenerator zipf(n, 0.99);
  Rng rng(42);
  std::vector<uint64_t> freq(n, 0);
  const int draws = 20000;
  for (int i = 0; i < draws; ++i) ++freq[zipf.next(rng)];

  // Rank 0 is the hottest key by a wide margin...
  EXPECT_GT(freq[0], freq[5]);
  EXPECT_GT(freq[5], freq[50]);
  // ...far above the uniform share (200 draws/key for n=100)...
  EXPECT_GT(freq[0], 5 * draws / static_cast<int>(n));
  // ...and the theoretical rank-0 mass 1/zeta_100(0.99) ~ 19% shows up.
  EXPECT_GT(freq[0], draws * 15 / 100);
  EXPECT_LT(freq[0], draws * 25 / 100);
  // The tail is populated: a bounded zipfian, not a point mass.
  uint64_t tail = 0;
  for (uint64_t k = 50; k < n; ++k) tail += freq[k];
  EXPECT_GT(tail, 0u);
}

TEST(Zipfian, EveryDrawInRange) {
  ZipfianGenerator zipf(7, 0.5);
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) EXPECT_LT(zipf.next(rng), 7u);
}

TEST(Latest, ChasesTheWriteFrontier) {
  const uint64_t n = 100;
  LatestGenerator latest(n, 0.99);
  EXPECT_EQ(latest.latest(), n - 1);  // before any write: newest record

  latest.note_write(30);
  Rng rng(7);
  std::vector<uint64_t> freq(n, 0);
  const int draws = 20000;
  for (int i = 0; i < draws; ++i) ++freq[latest.next(rng)];

  // The most recently written key is the hottest, and the recency window
  // just behind it carries most of the mass.
  EXPECT_EQ(std::max_element(freq.begin(), freq.end()) - freq.begin(), 30);
  const uint64_t recent = freq[30] + freq[29] + freq[28] + freq[27] + freq[26];
  EXPECT_GT(recent, static_cast<uint64_t>(draws) * 35 / 100);
  // Recency wraps around the keyspace: key 31 is the *oldest*, not adjacent.
  EXPECT_LT(freq[31], freq[30]);
}

TEST(Generate, DeterministicAndClientOrdered) {
  Options opts;
  opts.num_keys = 64;
  opts.clients = 5;
  opts.ops_per_client = 40;
  opts.mix = Mix::kA;
  opts.distribution = Distribution::kZipfian;
  opts.seed = 99;

  const std::vector<Op> a = generate(opts);
  const std::vector<Op> b = generate(opts);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].client, b[i].client);
    EXPECT_EQ(a[i].key, b[i].key);
    EXPECT_EQ(a[i].kind, b[i].kind);
  }

  // A different seed produces a different stream.
  Options other = opts;
  other.seed = 100;
  const std::vector<Op> c = generate(other);
  bool any_diff = c.size() != a.size();
  for (size_t i = 0; !any_diff && i < a.size(); ++i) {
    any_diff = a[i].key != c[i].key || a[i].kind != c[i].kind;
  }
  EXPECT_TRUE(any_diff);

  // Every client got exactly ops_per_client workload ops (mix A: no RMW
  // expansion), keys are in range, and clients interleave round-robin.
  std::map<uint32_t, int> per_client;
  for (const Op& op : a) {
    EXPECT_LT(op.client, opts.clients);
    EXPECT_LT(op.key, opts.num_keys);
    ++per_client[op.client];
  }
  for (uint32_t c2 = 0; c2 < opts.clients; ++c2) {
    EXPECT_EQ(per_client[c2], static_cast<int>(opts.ops_per_client));
  }
}

TEST(Generate, MixRatiosAreRespected) {
  Options opts;
  opts.num_keys = 32;
  opts.clients = 4;
  opts.ops_per_client = 250;  // 1000 ops total
  opts.seed = 5;

  auto count_writes = [](const std::vector<Op>& ops) {
    int w = 0;
    for (const Op& op : ops) w += op.kind == sim::OpKind::kWrite;
    return w;
  };

  opts.mix = Mix::kC;
  EXPECT_EQ(count_writes(generate(opts)), 0);  // 100% reads

  opts.mix = Mix::kB;  // 95/5
  {
    const auto ops = generate(opts);
    const int w = count_writes(ops);
    EXPECT_GT(w, 20);
    EXPECT_LT(w, 90);
  }

  opts.mix = Mix::kA;  // 50/50
  {
    const auto ops = generate(opts);
    const int w = count_writes(ops);
    EXPECT_GT(w, 400);
    EXPECT_LT(w, 600);
  }

  opts.mix = Mix::kF;  // every write is preceded by its RMW read
  {
    const auto ops = generate(opts);
    for (size_t i = 0; i < ops.size(); ++i) {
      if (ops[i].kind != sim::OpKind::kWrite) continue;
      ASSERT_GT(i, 0u);
      EXPECT_EQ(ops[i - 1].kind, sim::OpKind::kRead);
      EXPECT_EQ(ops[i - 1].key, ops[i].key);
      EXPECT_EQ(ops[i - 1].client, ops[i].client);
    }
  }

  opts.mix = Mix::kCustom;
  opts.read_percent = 0;  // all writes
  EXPECT_EQ(count_writes(generate(opts)),
            static_cast<int>(opts.clients * opts.ops_per_client));
}

TEST(Generate, UniformCoversTheKeyspace) {
  Options opts;
  opts.num_keys = 16;
  opts.clients = 2;
  opts.ops_per_client = 400;
  opts.mix = Mix::kC;
  opts.distribution = Distribution::kUniform;
  opts.seed = 13;
  std::vector<int> freq(opts.num_keys, 0);
  for (const Op& op : generate(opts)) ++freq[op.key];
  for (uint32_t k = 0; k < opts.num_keys; ++k) {
    EXPECT_GT(freq[k], 10) << "key " << k << " starved under uniform";
  }
}

TEST(ParseHelpers, RoundTripAndReject) {
  EXPECT_EQ(parse_distribution("uniform"), Distribution::kUniform);
  EXPECT_EQ(parse_distribution("zipfian"), Distribution::kZipfian);
  EXPECT_EQ(parse_distribution("latest"), Distribution::kLatest);
  EXPECT_THROW(parse_distribution("hot"), CheckFailure);
  EXPECT_EQ(parse_mix("A"), Mix::kA);
  EXPECT_EQ(parse_mix("b"), Mix::kB);
  EXPECT_EQ(parse_mix("F"), Mix::kF);
  EXPECT_THROW(parse_mix("Z"), CheckFailure);
  EXPECT_EQ(read_percent_for(Mix::kA), 50u);
  EXPECT_EQ(read_percent_for(Mix::kB), 95u);
  EXPECT_EQ(read_percent_for(Mix::kC), 100u);
}

}  // namespace
}  // namespace sbrs::store::ycsb
