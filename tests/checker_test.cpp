// Consistency-checker tests on hand-crafted histories: each checker must
// accept the legal histories of its level and reject canonical violations.
#include <gtest/gtest.h>

#include "consistency/checker.h"
#include "sim/history.h"

namespace sbrs::consistency {
namespace {

constexpr uint64_t kBits = 64;

Value val(uint64_t tag) { return Value::from_tag(tag, kBits); }
Value v0() { return Value::initial(kBits); }

/// History builder with explicit logical times.
class H {
 public:
  H& write(uint64_t op, uint32_t client, uint64_t inv, uint64_t tag) {
    sim::Invocation i;
    i.op = OpId{op};
    i.client = ClientId{client};
    i.kind = sim::OpKind::kWrite;
    i.value = val(tag);
    h_.record_invoke(inv, i);
    return *this;
  }
  H& ret_write(uint64_t op, uint64_t t) {
    h_.record_return(t, OpId{op}, std::nullopt);
    return *this;
  }
  H& read(uint64_t op, uint32_t client, uint64_t inv) {
    sim::Invocation i;
    i.op = OpId{op};
    i.client = ClientId{client};
    i.kind = sim::OpKind::kRead;
    h_.record_invoke(inv, i);
    return *this;
  }
  H& ret_read(uint64_t op, uint64_t t, uint64_t tag) {
    h_.record_return(t, OpId{op}, val(tag));
    return *this;
  }
  H& ret_read_v0(uint64_t op, uint64_t t) {
    h_.record_return(t, OpId{op}, v0());
    return *this;
  }
  const sim::History& history() const { return h_; }

 private:
  sim::History h_;
};

// --------------------------- value legality -------------------------------

TEST(ValuesLegal, AcceptsWrittenValuesAndV0) {
  H h;
  h.write(1, 0, 0, 7).ret_write(1, 5);
  h.read(2, 1, 6).ret_read(2, 8, 7);
  h.read(3, 1, 9).ret_read_v0(3, 10);  // v0 is a known value
  EXPECT_TRUE(check_values_legal(h.history()).ok);
}

TEST(ValuesLegal, RejectsUnwrittenValue) {
  H h;
  h.write(1, 0, 0, 7).ret_write(1, 5);
  h.read(2, 1, 6).ret_read(2, 8, 99);  // 99 was never written
  auto res = check_values_legal(h.history());
  EXPECT_FALSE(res.ok);
  EXPECT_EQ(res.violations.size(), 1u);
}

// --------------------------- weak regularity -------------------------------

TEST(WeakRegularity, SequentialReadSeesLastWrite) {
  H h;
  h.write(1, 0, 0, 7).ret_write(1, 5);
  h.write(2, 0, 6, 8).ret_write(2, 10);
  h.read(3, 1, 11).ret_read(3, 15, 8);
  EXPECT_TRUE(check_weak_regularity(h.history()).ok);
}

TEST(WeakRegularity, RejectsStaleRead) {
  // w1 then w2 complete, then a read returns w1: new-old inversion across
  // a fully-completed write.
  H h;
  h.write(1, 0, 0, 7).ret_write(1, 5);
  h.write(2, 0, 6, 8).ret_write(2, 10);
  h.read(3, 1, 11).ret_read(3, 15, 7);
  auto res = check_weak_regularity(h.history());
  EXPECT_FALSE(res.ok) << res.summary();
}

TEST(WeakRegularity, AcceptsConcurrentWriteValue) {
  // The read overlaps w2; returning either w1 or w2 is regular.
  H h;
  h.write(1, 0, 0, 7).ret_write(1, 5);
  h.write(2, 0, 8, 8);
  h.read(3, 1, 9);
  h.ret_read(3, 12, 8);  // w2 still outstanding
  h.ret_write(2, 20);
  EXPECT_TRUE(check_weak_regularity(h.history()).ok);

  H h2;
  h2.write(1, 0, 0, 7).ret_write(1, 5);
  h2.write(2, 0, 8, 8);
  h2.read(3, 1, 9);
  h2.ret_read(3, 12, 7);  // the older value is also fine
  h2.ret_write(2, 20);
  EXPECT_TRUE(check_weak_regularity(h2.history()).ok);
}

TEST(WeakRegularity, RejectsValueFromTheFuture) {
  // Read returns a write invoked only after the read returned.
  H h;
  h.read(1, 1, 0).ret_read(1, 3, 7);
  h.write(2, 0, 5, 7).ret_write(2, 9);
  auto res = check_weak_regularity(h.history());
  EXPECT_FALSE(res.ok);
}

TEST(WeakRegularity, V0LegalOnlyBeforeAnyCompleteWrite) {
  H ok;
  ok.read(1, 1, 0).ret_read_v0(1, 3);
  ok.write(2, 0, 5, 7).ret_write(2, 9);
  EXPECT_TRUE(check_weak_regularity(ok.history()).ok);

  H bad;
  bad.write(1, 0, 0, 7).ret_write(1, 4);
  bad.read(2, 1, 5).ret_read_v0(2, 8);
  auto res = check_weak_regularity(bad.history());
  EXPECT_FALSE(res.ok) << res.summary();
}

TEST(WeakRegularity, V0LegalWhileFirstWriteConcurrent) {
  H h;
  h.write(1, 0, 0, 7);
  h.read(2, 1, 2).ret_read_v0(2, 5);
  h.ret_write(1, 9);
  EXPECT_TRUE(check_weak_regularity(h.history()).ok);
}

TEST(WeakRegularity, IncompleteWriteValueIsLegal) {
  // A write that never returns can still be read (its blocks landed).
  H h;
  h.write(1, 0, 0, 7);  // never returns
  h.read(2, 1, 3).ret_read(2, 6, 7);
  EXPECT_TRUE(check_weak_regularity(h.history()).ok);
}

// --------------------------- strong regularity -----------------------------

TEST(StrongRegularity, AcceptsAgreeingReads) {
  // Two concurrent writes; two reads agree on their order.
  H h;
  h.write(1, 0, 0, 7);
  h.write(2, 1, 1, 8);
  h.read(3, 2, 2).ret_read(3, 4, 7);
  h.read(4, 3, 5).ret_read(4, 8, 8);
  h.ret_write(1, 10).ret_write(2, 11);
  EXPECT_TRUE(check_strong_regularity(h.history()).ok);
}

TEST(StrongRegularity, RejectsReadOrderInversion) {
  // w1 and w2 are concurrent with each other and both complete; r3 then
  // returns w1 (implying w2 < w1) while r4 returns w2 (implying w1 < w2).
  // Each read is individually weakly regular, but no single write order
  // satisfies both — strong regularity fails.
  H h;
  h.write(1, 0, 0, 7);
  h.write(2, 1, 1, 8);
  h.ret_write(1, 2).ret_write(2, 3);
  h.read(3, 2, 4).ret_read(3, 5, 7);
  h.read(4, 3, 6).ret_read(4, 8, 8);
  auto weak = check_weak_regularity(h.history());
  EXPECT_TRUE(weak.ok) << weak.summary();
  auto strong = check_strong_regularity(h.history());
  EXPECT_FALSE(strong.ok);
}

TEST(StrongRegularity, ConcurrentReadsMaySwapConcurrentWrites) {
  // With both writes still outstanding during both reads, opposite return
  // orders are reconcilable by placing one write after the earlier read —
  // this history IS strongly regular and the checker must accept it.
  H h;
  h.write(1, 0, 0, 7);
  h.write(2, 1, 1, 8);
  h.read(3, 2, 2).ret_read(3, 4, 8);
  h.read(4, 3, 5).ret_read(4, 8, 7);
  h.ret_write(1, 20).ret_write(2, 21);
  EXPECT_TRUE(check_strong_regularity(h.history()).ok);
}

TEST(StrongRegularity, SequentialHistoryPasses) {
  H h;
  uint64_t t = 0;
  for (uint64_t i = 1; i <= 4; ++i) {
    h.write(i, 0, t, i);
    h.ret_write(i, t + 1);
    h.read(10 + i, 1, t + 2).ret_read(10 + i, t + 3, i);
    t += 4;
  }
  EXPECT_TRUE(check_strong_regularity(h.history()).ok);
}

// --------------------------- strongly safe ---------------------------------

TEST(StronglySafe, QuiescentReadMustSeeLastWrite) {
  H h;
  h.write(1, 0, 0, 7).ret_write(1, 5);
  h.read(2, 1, 6).ret_read(2, 8, 7);
  EXPECT_TRUE(check_strongly_safe(h.history()).ok);

  H bad;
  bad.write(1, 0, 0, 7).ret_write(1, 5);
  bad.read(2, 1, 6).ret_read_v0(2, 8);  // must return w1, not v0
  EXPECT_FALSE(check_strongly_safe(bad.history()).ok);
}

TEST(StronglySafe, ConcurrentReadMayReturnAnything) {
  // Safe semantics put no constraint on reads overlapping writes — even a
  // value that is not the latest and not concurrent.
  H h;
  h.write(1, 0, 0, 7).ret_write(1, 5);
  h.write(2, 0, 6, 8).ret_write(2, 10);
  h.write(3, 0, 11, 9);              // concurrent with the read
  h.read(4, 1, 12).ret_read_v0(4, 14);  // stale v0: fine under safe
  h.ret_write(3, 20);
  EXPECT_TRUE(check_strongly_safe(h.history()).ok);
  // ...but the same history is NOT weakly regular.
  EXPECT_FALSE(check_weak_regularity(h.history()).ok);
}

// --------------------------- atomicity -------------------------------------

TEST(Atomicity, RejectsReadReadInversionThatRegularityAllows) {
  // Classic: w2 concurrent with two sequential reads; r1 sees w2, r2 sees
  // w1. Weakly regular (each read individually fine) but not atomic.
  H h;
  h.write(1, 0, 0, 7).ret_write(1, 2);
  h.write(2, 0, 3, 8);  // outstanding during both reads
  h.read(3, 1, 4).ret_read(3, 6, 8);
  h.read(4, 2, 7).ret_read(4, 9, 7);
  h.ret_write(2, 20);
  EXPECT_TRUE(check_weak_regularity(h.history()).ok);
  auto atom = check_atomicity(h.history());
  EXPECT_FALSE(atom.ok);
}

TEST(Atomicity, AcceptsMonotoneReads) {
  H h;
  h.write(1, 0, 0, 7).ret_write(1, 2);
  h.write(2, 0, 3, 8);
  h.read(3, 1, 4).ret_read(3, 6, 7);
  h.read(4, 2, 7).ret_read(4, 9, 8);
  h.ret_write(2, 20);
  EXPECT_TRUE(check_atomicity(h.history()).ok);
}

// --------------------------- misc ------------------------------------------

TEST(Checker, EmptyHistoryPassesEverything) {
  sim::History h;
  EXPECT_TRUE(check_values_legal(h).ok);
  EXPECT_TRUE(check_weak_regularity(h).ok);
  EXPECT_TRUE(check_strong_regularity(h).ok);
  EXPECT_TRUE(check_strongly_safe(h).ok);
  EXPECT_TRUE(check_atomicity(h).ok);
}

TEST(Checker, WriteOnlyHistoryPassesEverything) {
  H h;
  h.write(1, 0, 0, 7).ret_write(1, 5);
  h.write(2, 1, 2, 8);  // incomplete
  EXPECT_TRUE(check_weak_regularity(h.history()).ok);
  EXPECT_TRUE(check_strong_regularity(h.history()).ok);
  EXPECT_TRUE(check_atomicity(h.history()).ok);
}

TEST(Checker, SummaryFormats) {
  CheckResult r;
  EXPECT_EQ(r.summary(), "OK");
  r.fail("first");
  r.fail("second");
  const std::string s = r.summary();
  EXPECT_NE(s.find("2 violation(s)"), std::string::npos);
  EXPECT_NE(s.find("first"), std::string::npos);
}

}  // namespace
}  // namespace sbrs::consistency
