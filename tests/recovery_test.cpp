// Crash-recovery subsystem tests: Simulator::restart_object semantics (both
// restart modes, the repair window, the degraded-window metrics), scheduler
// and adversary restart schedules, exact storage accounting across every
// crash/restart transition, per-key consistency on recovery histories, and
// the thread-count independence of recovering store runs.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "adversary/ad_scheduler.h"
#include "common/check.h"
#include "harness/algorithms.h"
#include "harness/export.h"
#include "harness/runner.h"
#include "harness/sweep.h"
#include "sim/schedulers.h"
#include "sim/simulator.h"
#include "sim/workload.h"
#include "store/store.h"

namespace sbrs {
namespace {

registers::RegisterConfig small_cfg() {
  registers::RegisterConfig cfg;
  cfg.f = 2;
  cfg.k = 2;
  cfg.n = 6;
  cfg.data_bits = 256;
  return cfg;
}

/// Deterministic scheduler for pinning exact crash->restart interleavings:
/// applies the scripted fault list at the given steps, otherwise delivers
/// FIFO and invokes round-robin (every pending RMW eventually delivered).
class ScriptedFaultScheduler final : public sim::Scheduler {
 public:
  struct Fault {
    uint64_t at_step = 0;
    ObjectId object{};
    bool restart = false;
    sim::RestartMode mode = sim::RestartMode::kFromDisk;
  };

  explicit ScriptedFaultScheduler(std::vector<Fault> faults)
      : faults_(std::move(faults)) {}

  sim::Action next(const sim::Simulator& sim) override {
    while (cursor_ < faults_.size() &&
           sim.now() >= faults_[cursor_].at_step) {
      const Fault& f = faults_[cursor_];
      ++cursor_;
      if (f.restart && !sim.object_alive(f.object)) {
        return sim::Action::restart_object(f.object, f.mode);
      }
      if (!f.restart && sim.object_alive(f.object)) {
        return sim::Action::crash_object(f.object);
      }
    }
    if (!sim.pending().empty()) {
      return sim::Action::deliver(sim.pending().front().id);
    }
    const auto ready = sim.invocable_clients();
    if (!ready.empty()) return sim::Action::invoke(ready.front());
    return sim::Action::stop();
  }

 private:
  std::vector<Fault> faults_;
  size_t cursor_ = 0;
};

sim::Simulator make_sim(const std::string& alg, const sim::SimConfig& sc,
                        std::vector<ScriptedFaultScheduler::Fault> faults,
                        uint32_t writers = 2, uint32_t writes = 4,
                        uint32_t readers = 1, uint32_t reads = 4) {
  auto algorithm = harness::make_algorithm(alg, small_cfg());
  sim::UniformWorkload::Options wl;
  wl.writers = writers;
  wl.writes_per_client = writes;
  wl.readers = readers;
  wl.reads_per_client = reads;
  wl.data_bits = small_cfg().data_bits;
  sim::SimConfig actual = sc;
  // Algorithms may normalize their pool shape (abd forces n = 2f + 1).
  actual.num_objects = algorithm->config().n;
  actual.num_clients = writers + readers;
  return sim::Simulator(
      actual, algorithm->object_factory(), algorithm->client_factory(),
      std::make_unique<sim::UniformWorkload>(wl),
      std::make_unique<ScriptedFaultScheduler>(std::move(faults)));
}

sim::SimConfig strict_config() {
  sim::SimConfig sc;
  sc.num_objects = small_cfg().n;
  sc.num_clients = 3;
  sc.max_steps = 50'000;
  sc.verify_accounting = true;  // per-step cross-check, release included
  return sc;
}

// ------------------------- restart_object core -----------------------------

TEST(Recovery, RestartOfLiveObjectThrows) {
  auto sim = make_sim("abd", strict_config(), {});
  EXPECT_THROW(sim.restart_object(ObjectId{0}, sim::RestartMode::kFromDisk),
               CheckFailure);
  EXPECT_THROW(sim.restart_object(ObjectId{99}, sim::RestartMode::kFromDisk),
               CheckFailure);
}

TEST(Recovery, CrashedObjectRejoinsAndRepairWindowCloses) {
  // Crash bo0 at step 10, restart it (from disk) at step 40. The workload
  // keeps writing long past step 40, so a fresh write's RMW lands on the
  // restarted object and closes its repair window.
  auto sim = make_sim("abd", strict_config(),
                      {{10, ObjectId{0}, false},
                       {40, ObjectId{0}, true, sim::RestartMode::kFromDisk}},
                      /*writers=*/2, /*writes=*/8, /*readers=*/1, /*reads=*/4);
  bool saw_crashed = false;
  bool saw_restarted = false;
  while (sim.step()) {
    if (!sim.object_alive(ObjectId{0})) saw_crashed = true;
    if (saw_crashed && sim.object_alive(ObjectId{0})) saw_restarted = true;
  }
  // Finalize the summary fields (steps / invoked_ops / quiesced) that only
  // run() fills in; the stepped-out simulator returns immediately.
  const sim::RunReport report = sim.run();

  EXPECT_TRUE(saw_crashed);
  EXPECT_TRUE(saw_restarted);
  EXPECT_TRUE(sim.object_alive(ObjectId{0}));
  EXPECT_EQ(report.object_crash_events, 1u);
  EXPECT_EQ(report.object_restarts, 1u);
  EXPECT_EQ(sim.crashed_objects(), 0u);

  // The restarted object received repair traffic, and the first fresh
  // write overwrote it — the window is closed by the end of the run.
  EXPECT_GT(report.repair_bits, 0u);
  EXPECT_FALSE(sim.object_repairing(ObjectId{0}));

  // The degraded window spans the crash->restart gap (the crash step
  // counts, the restart step does not).
  EXPECT_GT(report.degraded_steps, 0u);
  EXPECT_LT(report.degraded_steps, report.steps);

  // The trace carries both events, and the operation accessors ignore them.
  EXPECT_EQ(sim.history().object_crash_count(), 1u);
  EXPECT_EQ(sim.history().object_restart_count(), 1u);
  EXPECT_EQ(sim.history().ops().size(), report.invoked_ops);

  // All ops completed: a from-disk restart only adds capacity back.
  EXPECT_TRUE(report.quiesced);
}

TEST(Recovery, FromScratchRestartMountsFreshStateWithExactAccounting) {
  for (const bool count_crashed : {true, false}) {
    sim::SimConfig sc = strict_config();
    sc.count_crashed = count_crashed;
    auto sim = make_sim(
        "adaptive", sc,
        {{12, ObjectId{1}, false},
         {42, ObjectId{1}, true, sim::RestartMode::kFromScratch}},
        /*writers=*/2, /*writes=*/8);
    // verify_accounting asserts tracked == snapshot after every step,
    // including the crash and restart transitions; run() throwing would
    // fail the test.
    const sim::RunReport report = sim.run();
    EXPECT_EQ(report.object_restarts, 1u) << "count_crashed=" << count_crashed;

    // The replacement was overwritten by post-restart rounds; pin the final
    // exactness of the tracked totals against a full snapshot rebuild.
    const auto snap = sim.snapshot();
    EXPECT_EQ(sim.tracked_object_bits(), snap.object_bits());
    EXPECT_EQ(sim.tracked_channel_bits(), snap.channel_bits());
  }
}

TEST(Recovery, RepairWindowStaysOpenWithoutFreshWrites) {
  // Crash and restart only after every write has been invoked and
  // delivered; with no fresh (post-restart) write the repair window never
  // closes — reads alone must not count as the re-converging overwrite.
  // (ReadRepairClosesReadOnlyWindow below is the same run with active
  // repair on, where the expectation flips.)
  auto sim = make_sim("abd", strict_config(),
                      {{200, ObjectId{2}, false},
                       {210, ObjectId{2}, true, sim::RestartMode::kFromDisk}},
                      /*writers=*/1, /*writes=*/2, /*readers=*/2,
                      /*reads=*/16);
  sim.run();
  if (sim.report().object_restarts == 1) {
    EXPECT_TRUE(sim.object_repairing(ObjectId{2}));
  }
}

TEST(Recovery, WriteInvokedAtRestartStepDoesNotCloseWindow) {
  // The window-close boundary: a write invoked at the *exact* step the
  // object restarted may have computed its payload against pre-restart
  // reads, so it must NOT close the repair window — only strictly-later
  // invocations count. Pin it by restarting directly (the public
  // restart_object API, no step consumed) at a moment when the next action
  // is guaranteed to be the writer's final invocation: that write's
  // invoke_time then equals the restart time exactly. Under the buggy
  // `invoke_time >= restart_time` comparison this closed the window.
  auto sim = make_sim("abd", strict_config(), {{6, ObjectId{0}, false}},
                      /*writers=*/1, /*writes=*/2, /*readers=*/1,
                      /*reads=*/2);
  std::optional<uint64_t> restart_time;
  while (true) {
    if (!restart_time.has_value() && !sim.object_alive(ObjectId{0}) &&
        sim.pending().empty() && !sim.invocable_clients().empty() &&
        sim.invocable_clients().front() == ClientId{0}) {
      sim.restart_object(ObjectId{0}, sim::RestartMode::kFromDisk);
      restart_time = sim.now();
      // The very next action is client 0's invocation at this same step.
    }
    if (!sim.step()) break;
  }
  ASSERT_TRUE(restart_time.has_value())
      << "the writer must still have an invocation left after the crash";
  const sim::RunReport report = sim.run();
  EXPECT_EQ(report.object_restarts, 1u);

  // The boundary write really was invoked at the restart step, carried a
  // payload, and was the last write of the run.
  bool boundary_write = false;
  for (const auto& op : sim.history().ops()) {
    if (op.kind == sim::OpKind::kWrite) {
      EXPECT_LE(op.invoke_time, *restart_time);
      if (op.invoke_time == *restart_time) boundary_write = true;
    }
  }
  ASSERT_TRUE(boundary_write)
      << "tune the crash step: no write was invoked at the restart step";

  // Its store-phase RMWs delivered payload bits into the window (charged
  // as repair traffic) without closing it.
  EXPECT_GT(report.repair_bits, 0u);
  EXPECT_TRUE(sim.object_repairing(ObjectId{0}))
      << "a write invoked at the restart step itself must not close the "
         "repair window";
}

/// Crashes bo0 at step 10, scratch-restarts it at 40, then re-crashes it
/// at the exact moment a repair push toward it enters the channel — the
/// push is then guaranteed to deliver as kLostCrashed. FIFO delivery and
/// round-robin invocation otherwise.
class CrashOnRepairPushScheduler final : public sim::Scheduler {
 public:
  sim::Action next(const sim::Simulator& sim) override {
    if (!crashed_ && sim.now() >= 10 && sim.object_alive(ObjectId{0})) {
      crashed_ = true;
      return sim::Action::crash_object(ObjectId{0});
    }
    if (crashed_ && !restarted_ && sim.now() >= 40 &&
        !sim.object_alive(ObjectId{0})) {
      restarted_ = true;
      return sim::Action::restart_object(ObjectId{0},
                                         sim::RestartMode::kFromScratch);
    }
    if (restarted_ && !recrashed_) {
      for (const auto& p : sim.pending()) {
        if (p.is_repair && p.target.value == 0) {
          recrashed_ = true;
          return sim::Action::crash_object(ObjectId{0});
        }
      }
    }
    if (!sim.pending().empty()) {
      return sim::Action::deliver(sim.pending().front().id);
    }
    const auto ready = sim.invocable_clients();
    if (!ready.empty()) return sim::Action::invoke(ready.front());
    return sim::Action::stop();
  }

 private:
  bool crashed_ = false;
  bool restarted_ = false;
  bool recrashed_ = false;
};

TEST(Recovery, CrashDuringRepairDrainsPushBitsExactly) {
  // Accounting audit for kLostCrashed deliveries inside a repair cycle:
  // the scratch restart opens a window, a read completing inside it pushes
  // repair, and the target re-crashes with the push still in the channel —
  // the push then delivers as kLostCrashed and its request bits must drain
  // from the channel account. verify_accounting cross-checks the tracked
  // totals against a full snapshot after EVERY step, so any drift (the
  // drain skipped, or applied twice) throws mid-run and fails the test.
  auto algorithm = harness::make_algorithm("adaptive", small_cfg());
  sim::UniformWorkload::Options wl;
  wl.writers = 1;
  wl.writes_per_client = 2;  // exhausted early: a read-only tail after 40
  wl.readers = 2;
  wl.reads_per_client = 16;
  wl.data_bits = small_cfg().data_bits;
  sim::SimConfig sc = strict_config();
  sc.num_objects = algorithm->config().n;
  sc.num_clients = 3;
  sc.read_repair = true;
  sc.repair_planner = algorithm->repair_planner();
  sim::Simulator sim(sc, algorithm->object_factory(),
                     algorithm->client_factory(),
                     std::make_unique<sim::UniformWorkload>(wl),
                     std::make_unique<CrashOnRepairPushScheduler>());
  const sim::RunReport report = sim.run();  // throws on any accounting drift
  EXPECT_EQ(report.object_crash_events, 2u)
      << "the second crash must have caught a repair push in flight";
  EXPECT_EQ(report.object_restarts, 1u);
  ASSERT_GT(report.repair_pushes, 0u)
      << "a read inside the window must have triggered a repair push";

  // Final exactness: the tracked totals equal a from-scratch snapshot
  // rebuild even after the push was lost to the re-crash.
  const auto snap = sim.snapshot();
  EXPECT_EQ(sim.tracked_object_bits(), snap.object_bits());
  EXPECT_EQ(sim.tracked_channel_bits(), snap.channel_bits());
}

TEST(Recovery, ReadRepairClosesReadOnlyWindow) {
  // The flip side of RepairWindowStaysOpenWithoutFreshWrites: same
  // read-only tail (all writes done long before the crash), but with
  // read-repair on a read completing inside the window pushes the newest
  // coded block back and the push's delivery closes the window.
  auto algorithm = harness::make_algorithm("abd", small_cfg());
  sim::UniformWorkload::Options wl;
  wl.writers = 1;
  wl.writes_per_client = 2;
  wl.readers = 2;
  wl.reads_per_client = 16;
  wl.data_bits = small_cfg().data_bits;
  sim::SimConfig sc = strict_config();
  sc.num_objects = algorithm->config().n;
  sc.num_clients = 3;
  sc.read_repair = true;
  sc.repair_planner = algorithm->repair_planner();
  sim::Simulator sim(
      sc, algorithm->object_factory(), algorithm->client_factory(),
      std::make_unique<sim::UniformWorkload>(wl),
      std::make_unique<ScriptedFaultScheduler>(
          std::vector<ScriptedFaultScheduler::Fault>{
              {200, ObjectId{2}, false},
              {210, ObjectId{2}, true, sim::RestartMode::kFromDisk}}));
  const sim::RunReport report = sim.run();
  if (report.object_restarts == 1 && report.repair_pushes > 0) {
    EXPECT_FALSE(sim.object_repairing(ObjectId{2}))
        << "a delivered repair push must close the window";
    EXPECT_EQ(report.open_repair_windows, 0u);
  }
}

// ------------------------- scheduler integration ---------------------------

TEST(Recovery, RandomSchedulerRestartAfterRecoversEveryCrash) {
  harness::RunOptions opts;
  opts.writers = 4;
  opts.writes_per_client = 4;
  opts.readers = 2;
  opts.reads_per_client = 4;
  opts.object_crashes = 2;
  opts.restart_after = 50;
  opts.seed = 7;
  auto algorithm = harness::make_algorithm("adaptive", small_cfg());
  const auto out = harness::run_register_experiment(*algorithm, opts);

  ASSERT_GT(out.report.object_crash_events, 0u)
      << "seed 7 must inject at least one crash for this test to bite";
  EXPECT_EQ(out.report.object_restarts, out.report.object_crash_events);
  EXPECT_GT(out.report.degraded_steps, 0u);

  // From-disk recovery: every consistency level the algorithm promises
  // still holds, and liveness is intact.
  EXPECT_TRUE(out.values_legal.ok);
  EXPECT_TRUE(out.weak_regular.ok);
  EXPECT_TRUE(out.strong_regular.ok);
  EXPECT_TRUE(out.live);
}

TEST(Recovery, RestartPermyriadAloneAlsoRecovers) {
  harness::RunOptions opts;
  opts.writers = 4;
  opts.writes_per_client = 8;
  opts.readers = 2;
  opts.reads_per_client = 8;
  opts.object_crashes = 2;
  opts.restart_permyriad = 400;  // ~4% per step: restarts come quickly
  opts.seed = 11;
  auto algorithm = harness::make_algorithm("abd", small_cfg());
  const auto out = harness::run_register_experiment(*algorithm, opts);
  ASSERT_GT(out.report.object_crash_events, 0u);
  EXPECT_GT(out.report.object_restarts, 0u);
  EXPECT_TRUE(out.values_legal.ok);
  EXPECT_TRUE(out.live);
}

TEST(Recovery, RecoveryRunsAreExactlyReplayable) {
  harness::RunOptions opts;
  opts.writers = 4;
  opts.writes_per_client = 4;
  opts.readers = 2;
  opts.reads_per_client = 4;
  opts.object_crashes = 2;
  opts.restart_after = 30;
  opts.restart_mode = sim::RestartMode::kFromScratch;
  opts.seed = 13;
  opts.check_consistency = false;  // scratch restarts may violate; not the point
  auto algorithm = harness::make_algorithm("coded", small_cfg());
  const auto a = harness::run_register_experiment(*algorithm, opts);
  auto algorithm2 = harness::make_algorithm("coded", small_cfg());
  const auto b = harness::run_register_experiment(*algorithm2, opts);
  EXPECT_EQ(harness::outcome_fingerprint(a), harness::outcome_fingerprint(b));
  EXPECT_EQ(a.report.object_restarts, b.report.object_restarts);
  EXPECT_EQ(a.report.repair_bits, b.report.repair_bits);
  EXPECT_EQ(a.report.degraded_steps, b.report.degraded_steps);
}

TEST(Recovery, FingerprintDistinguishesRecoverySchedules) {
  // Two runs differing only in restart_after must fingerprint differently
  // (the crash/restart events ride in the history trace).
  harness::RunOptions opts;
  opts.writers = 4;
  opts.writes_per_client = 4;
  opts.readers = 2;
  opts.reads_per_client = 4;
  opts.object_crashes = 2;
  opts.restart_after = 30;
  opts.seed = 7;
  auto alg1 = harness::make_algorithm("adaptive", small_cfg());
  const auto a = harness::run_register_experiment(*alg1, opts);
  ASSERT_GT(a.report.object_restarts, 0u);
  opts.restart_after = 0;  // never restart
  auto alg2 = harness::make_algorithm("adaptive", small_cfg());
  const auto b = harness::run_register_experiment(*alg2, opts);
  EXPECT_NE(harness::outcome_fingerprint(a), harness::outcome_fingerprint(b));
}

TEST(Recovery, AntiEntropyClosesWindowsWithoutForegroundWrites) {
  // Read-dominated run whose writes are exhausted early: restarted objects
  // would stay in their repair window forever (the regression pinned by
  // RepairWindowStaysOpenWithoutFreshWrites). The background anti-entropy
  // pump must close every window — the run keeps fast-forwarding to pump
  // wakeups after the workload quiesces, so no window is left open.
  harness::RunOptions opts;
  opts.writers = 1;
  opts.writes_per_client = 2;
  opts.readers = 2;
  opts.reads_per_client = 16;
  opts.object_crashes = 2;
  opts.restart_after = 50;
  opts.repair_every = 25;
  opts.seed = 7;
  auto algorithm = harness::make_algorithm("adaptive", small_cfg());
  const auto out = harness::run_register_experiment(*algorithm, opts);
  ASSERT_GT(out.report.object_crash_events, 0u)
      << "seed 7 must inject at least one crash for this test to bite";
  EXPECT_EQ(out.report.object_restarts, out.report.object_crash_events);
  EXPECT_GT(out.report.repair_pushes, 0u);
  EXPECT_EQ(out.report.open_repair_windows, 0u)
      << "anti-entropy must close every repair window before the run ends";
  EXPECT_TRUE(out.values_legal.ok);
  EXPECT_TRUE(out.live);
}

TEST(Recovery, AntiEntropyRunsAreExactlyReplayable) {
  harness::RunOptions opts;
  opts.writers = 2;
  opts.writes_per_client = 4;
  opts.readers = 2;
  opts.reads_per_client = 4;
  opts.object_crashes = 2;
  opts.restart_after = 40;
  opts.restart_mode = sim::RestartMode::kFromScratch;
  opts.repair_every = 30;
  opts.read_repair = true;
  opts.seed = 13;
  opts.check_consistency = false;  // scratch restarts may violate; not the point
  auto alg1 = harness::make_algorithm("coded", small_cfg());
  const auto a = harness::run_register_experiment(*alg1, opts);
  auto alg2 = harness::make_algorithm("coded", small_cfg());
  const auto b = harness::run_register_experiment(*alg2, opts);
  EXPECT_EQ(harness::outcome_fingerprint(a), harness::outcome_fingerprint(b));
  EXPECT_EQ(a.report.repair_pushes, b.report.repair_pushes);
  EXPECT_EQ(a.report.open_repair_windows, b.report.open_repair_windows);
}

TEST(Recovery, RepairBudgetStopsAntiEntropyPushes) {
  // A 1-bit budget: the first non-digest push spends it, after which both
  // the pump and read-repair must stop triggering. Scratch restarts force
  // real (non-zero-bit) pushes, so exactly one push fires.
  harness::RunOptions opts;
  opts.writers = 1;
  opts.writes_per_client = 2;
  opts.readers = 2;
  opts.reads_per_client = 16;
  opts.object_crashes = 2;
  opts.restart_after = 50;
  opts.restart_mode = sim::RestartMode::kFromScratch;
  opts.repair_every = 25;
  opts.repair_budget = 1;
  opts.seed = 7;
  opts.check_consistency = false;  // scratch restarts may violate; not the point
  auto algorithm = harness::make_algorithm("adaptive", small_cfg());
  const auto out = harness::run_register_experiment(*algorithm, opts);
  ASSERT_GT(out.report.object_restarts, 0u);
  EXPECT_EQ(out.report.repair_pushes, 1u)
      << "the first real push exhausts a 1-bit budget";

  // Unbudgeted control at the same seed: at least as many pushes, and the
  // budget being the only difference, the stream of pushes must be a
  // prefix — the budgeted run cannot push more.
  opts.repair_budget = UINT64_MAX;
  auto algorithm2 = harness::make_algorithm("adaptive", small_cfg());
  const auto full = harness::run_register_experiment(*algorithm2, opts);
  EXPECT_GE(full.report.repair_pushes, out.report.repair_pushes);
  EXPECT_EQ(full.report.open_repair_windows, 0u);
}

// ------------------------- adversary integration ---------------------------

TEST(Recovery, AdSchedulerAppliesTargetedFaultSchedule) {
  const auto cfg = small_cfg();
  auto algorithm = harness::make_algorithm("coded", cfg);

  sim::UniformWorkload::Options wl;
  wl.writers = 4;
  wl.writes_per_client = 1;
  wl.data_bits = cfg.data_bits;

  adversary::AdScheduler::Options ad;
  ad.l_bits = cfg.data_bits / 2;
  ad.data_bits = cfg.data_bits;
  ad.concurrency = 0;  // disable the |C+| fixed point: run until starved
  ad.f = cfg.f;
  ad.stop_when_frozen = false;
  // The first steps are rule-2 invocations (nothing is pending yet), so
  // faults this early are guaranteed to be applied before any fixed point.
  ad.faults = {{1, ObjectId{0}, false, sim::RestartMode::kFromDisk},
               {3, ObjectId{0}, true, sim::RestartMode::kFromDisk}};

  sim::SimConfig sc;
  sc.num_objects = cfg.n;
  sc.num_clients = 4;
  sc.verify_accounting = true;

  sim::Simulator sim(sc, algorithm->object_factory(),
                     algorithm->client_factory(),
                     std::make_unique<sim::UniformWorkload>(wl),
                     std::make_unique<adversary::AdScheduler>(ad));
  sim.run();
  EXPECT_EQ(sim.history().object_crash_count(), 1u);
  EXPECT_EQ(sim.history().object_restart_count(), 1u);
  EXPECT_TRUE(sim.object_alive(ObjectId{0}));
}

// --------------------------- sweep integration -----------------------------

TEST(Recovery, SweepCellsAggregateRecoveryOutcome) {
  harness::SweepCell cell;
  cell.algorithm = "adaptive";
  cell.config = small_cfg();
  cell.opts.writers = 4;
  cell.opts.writes_per_client = 4;
  cell.opts.readers = 2;
  cell.opts.reads_per_client = 4;
  cell.opts.object_crashes = 2;
  cell.opts.restart_after = 40;

  harness::SweepOptions so;
  so.threads = 2;
  so.seeds_per_cell = 4;
  so.base_seed = 7;
  const auto result = harness::SweepRunner(so).run({cell});
  ASSERT_EQ(result.cells.size(), 1u);
  const harness::CellSummary& cs = result.cells[0];
  EXPECT_GT(cs.object_crash_events, 0u);
  EXPECT_GT(cs.object_restarts, 0u);
  EXPECT_GT(cs.degraded_steps.max, 0u);
  EXPECT_EQ(cs.consistency_failures, 0u);
  EXPECT_EQ(cs.liveness_failures, 0u);

  std::ostringstream os;
  harness::write_sweep_json(os, result);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"object_restarts\""), std::string::npos);
  EXPECT_NE(json.find("\"repair_bits\""), std::string::npos);
  EXPECT_NE(json.find("\"degraded_sojourn_steps\""), std::string::npos);
  EXPECT_NE(json.find("\"restart_after\": 40"), std::string::npos);
  EXPECT_NE(json.find("\"repair_pushes\""), std::string::npos);
  EXPECT_NE(json.find("\"open_repair_windows\""), std::string::npos);
  EXPECT_NE(json.find("\"repair_every\": 0"), std::string::npos);
}

TEST(Recovery, SweepRepairRateCellsTradeBandwidthForWindowLength) {
  // The tentpole's tradeoff curve, at sweep-engine level: three cells that
  // differ only in repair_every. Faster pumps may spend more pushes; every
  // rate must close all windows (the runs keep going until the pump wins).
  std::vector<harness::SweepCell> grid;
  for (const uint64_t rate : {20u, 80u, 320u}) {
    harness::SweepCell cell;
    cell.algorithm = "adaptive";
    cell.config = small_cfg();
    cell.opts.writers = 1;
    cell.opts.writes_per_client = 2;
    cell.opts.readers = 2;
    cell.opts.reads_per_client = 16;
    cell.opts.object_crashes = 2;
    cell.opts.restart_after = 40;
    cell.opts.repair_every = rate;
    cell.label = "adaptive r=" + std::to_string(rate);
    grid.push_back(std::move(cell));
  }
  harness::SweepOptions so;
  so.threads = 2;
  so.seeds_per_cell = 3;
  so.base_seed = 7;
  const auto result = harness::SweepRunner(so).run(grid);
  ASSERT_EQ(result.cells.size(), 3u);
  uint64_t restarts = 0;
  for (const auto& cs : result.cells) {
    restarts += cs.object_restarts;
    EXPECT_EQ(cs.open_repair_windows, 0u) << cs.cell.label;
    EXPECT_EQ(cs.consistency_failures, 0u) << cs.cell.label;
  }
  ASSERT_GT(restarts, 0u) << "base seed 7 must inject restarts somewhere";
  // The same {cell, seed} grid re-run must fingerprint identically.
  const auto again = harness::SweepRunner(so).run(grid);
  EXPECT_EQ(result.fingerprint(), again.fingerprint());
}

// --------------------------- store integration -----------------------------

store::StoreOptions recovery_store_options() {
  store::StoreOptions opts;
  opts.algorithm = "adaptive";
  opts.register_config.f = 2;
  opts.register_config.k = 2;
  opts.register_config.n = 6;
  opts.register_config.data_bits = 128;
  opts.num_shards = 3;
  opts.workload.num_keys = 24;
  opts.workload.clients = 4;
  opts.workload.ops_per_client = 24;
  opts.workload.mix = store::ycsb::Mix::kA;  // write-heavy: windows close
  opts.workload.distribution = store::ycsb::Distribution::kZipfian;
  opts.seed = 5;
  opts.threads = 2;
  opts.object_crashes_per_shard = 2;
  opts.restart_after = 60;
  return opts;
}

TEST(Recovery, StoreRecoveryKeepsPerKeyGuarantees) {
  store::Store engine(recovery_store_options());
  const store::StoreResult result = engine.run();
  ASSERT_GT(result.object_crash_events, 0u)
      << "seed 5 must inject crashes for this test to bite";
  // A crash within restart_after steps of the end of a shard's run may
  // never restart; every other crash must.
  EXPECT_GT(result.object_restarts, 0u);
  EXPECT_LE(result.object_restarts, result.object_crash_events);
  EXPECT_GT(result.repair_bits, 0u);
  EXPECT_GT(result.degraded_steps, 0u);
  EXPECT_EQ(result.consistency_failures, 0u)
      << "from-disk restarts must keep every key's guarantee";
  EXPECT_TRUE(result.all_live);
}

TEST(Recovery, StoreRecoveryDeterministicAcrossThreadCounts) {
  std::vector<std::string> deterministic(3);
  const uint32_t threads[] = {1, 4, 9};
  for (size_t i = 0; i < 3; ++i) {
    store::StoreOptions opts = recovery_store_options();
    opts.threads = threads[i];
    store::Store engine(opts);
    const store::StoreResult result = engine.run();
    ASSERT_GT(result.object_restarts, 0u);
    std::ostringstream os;
    store::write_store_deterministic_json(os, result);
    deterministic[i] = os.str();
  }
  EXPECT_EQ(deterministic[0], deterministic[1]);
  EXPECT_EQ(deterministic[0], deterministic[2])
      << "recovery runs must not depend on the worker thread count";
}

TEST(Recovery, StoreRecoveryJsonCarriesRecoveryFields) {
  store::Store engine(recovery_store_options());
  const store::StoreResult result = engine.run();
  std::ostringstream os;
  store::write_store_json(os, result);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"object_restarts\""), std::string::npos);
  EXPECT_NE(json.find("\"repair_bits\""), std::string::npos);
  EXPECT_NE(json.find("\"degraded_steps\""), std::string::npos);
  EXPECT_NE(json.find("\"degraded_sojourn_steps\""), std::string::npos);
  EXPECT_NE(json.find("\"restart_after\": 60"), std::string::npos);
  EXPECT_NE(json.find("\"restart_mode\": \"disk\""), std::string::npos);
}

TEST(Recovery, StoreAntiEntropyClosesWindowsOnReadOnlyKeys) {
  // Pure-read store load (mix C): no foreground write ever lands, so every
  // repair window opened by a restart can only be closed by active repair.
  // Without it the windows stay open; with the pump they all close.
  store::StoreOptions opts = recovery_store_options();
  opts.workload.mix = store::ycsb::Mix::kC;
  {
    store::Store engine(opts);
    const store::StoreResult result = engine.run();
    ASSERT_GT(result.object_restarts, 0u);
    EXPECT_EQ(result.repair_pushes, 0u);
    EXPECT_GT(result.open_repair_windows, 0u)
        << "with repair off, a read-only run must leave its windows open";
  }
  opts.repair_every = 40;
  opts.read_repair = true;
  {
    store::Store engine(opts);
    const store::StoreResult result = engine.run();
    ASSERT_GT(result.object_restarts, 0u);
    EXPECT_GT(result.repair_pushes, 0u);
    EXPECT_EQ(result.open_repair_windows, 0u)
        << "anti-entropy must close every window without foreground writes";
    EXPECT_EQ(result.consistency_failures, 0u);
    EXPECT_TRUE(result.all_live);
  }
}

TEST(Recovery, StoreAntiEntropyDeterministicAcrossThreadCounts) {
  // Window-close determinism: the repairing, pumping, read-repairing store
  // must export byte-identical deterministic JSON for any worker count.
  std::vector<std::string> deterministic(3);
  const uint32_t threads[] = {1, 4, 9};
  for (size_t i = 0; i < 3; ++i) {
    store::StoreOptions opts = recovery_store_options();
    opts.workload.mix = store::ycsb::Mix::kC;  // only repair closes windows
    opts.repair_every = 40;
    opts.read_repair = true;
    opts.threads = threads[i];
    store::Store engine(opts);
    const store::StoreResult result = engine.run();
    ASSERT_GT(result.object_restarts, 0u);
    ASSERT_GT(result.repair_pushes, 0u);
    EXPECT_EQ(result.open_repair_windows, 0u);
    std::ostringstream os;
    store::write_store_deterministic_json(os, result);
    deterministic[i] = os.str();
  }
  EXPECT_EQ(deterministic[0], deterministic[1]);
  EXPECT_EQ(deterministic[0], deterministic[2])
      << "anti-entropy runs must not depend on the worker thread count";
}

// Satellite: repeated open-loop run() re-basing. Two identical stores
// driven through two batches each must agree byte-for-byte regardless of
// thread count, and the second batch must queue on top of the first
// without colliding (cumulative counts, no throw).
TEST(Recovery, RepeatedOpenLoopRunsRebaseDeterministically) {
  auto make = [](uint32_t threads) {
    store::StoreOptions opts;
    opts.algorithm = "adaptive";
    opts.register_config.f = 1;
    opts.register_config.k = 2;
    opts.register_config.n = 4;
    opts.register_config.data_bits = 128;
    opts.num_shards = 3;
    opts.workload.num_keys = 16;
    opts.workload.clients = 3;
    opts.workload.ops_per_client = 8;
    opts.workload.mix = store::ycsb::Mix::kA;
    opts.seed = 17;
    opts.threads = threads;
    opts.arrival.process = sim::ArrivalProcess::kPoisson;
    opts.arrival.rate = 0.05;
    return opts;
  };

  std::vector<std::string> second_batch(3);
  const uint32_t threads[] = {1, 4, 9};
  for (size_t i = 0; i < 3; ++i) {
    store::Store engine(make(threads[i]));
    const store::StoreResult first = engine.run();
    const store::StoreResult second = engine.run();
    EXPECT_EQ(second.completed_reads + second.completed_writes,
              2 * (first.completed_reads + first.completed_writes));
    EXPECT_EQ(second.consistency_failures, 0u);
    std::ostringstream os;
    store::write_store_deterministic_json(os, second);
    second_batch[i] = os.str();
  }
  EXPECT_EQ(second_batch[0], second_batch[1]);
  EXPECT_EQ(second_batch[0], second_batch[2])
      << "re-based second batches must not depend on the thread count";
}

// The second batch must not replay the first batch's arrival pattern:
// per-batch seed indices give fresh interarrival draws.
TEST(Recovery, RepeatedRunsDrawFreshArrivalSchedules) {
  sim::ArrivalOptions a;
  a.process = sim::ArrivalProcess::kPoisson;
  a.rate = 0.1;
  const auto batch1 = sim::generate_arrivals(
      a, 32, sim::arrival_seed(harness::cell_seed(17, 0, 1)));
  const auto batch2 = sim::generate_arrivals(
      a, 32, sim::arrival_seed(harness::cell_seed(17, 0, 2)));
  EXPECT_NE(batch1, batch2)
      << "per-batch seed indices must decorrelate repeated run() batches";
}

}  // namespace
}  // namespace sbrs
