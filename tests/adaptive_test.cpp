// Tests for the paper's adaptive register (Section 5, Algorithms 1-3):
// correctness (strong regularity), liveness (FW-termination), fault
// tolerance, and — the heart of the reproduction — the Theorem 2 storage
// bounds including garbage collection.
#include <gtest/gtest.h>

#include "bounds/formulas.h"
#include "harness/runner.h"

namespace sbrs {
namespace {

using harness::RunOptions;
using harness::SchedKind;
using harness::run_register_experiment;
using registers::RegisterConfig;

RegisterConfig cfg_fk(uint32_t f, uint32_t k, uint64_t data_bits = 512) {
  RegisterConfig cfg;
  cfg.f = f;
  cfg.k = k;
  cfg.n = 2 * f + k;
  cfg.data_bits = data_bits;
  return cfg;
}

TEST(Adaptive, RejectsInconsistentConfig) {
  RegisterConfig bad = cfg_fk(2, 2);
  bad.n = 5;  // != 2f + k
  EXPECT_THROW(registers::make_adaptive(bad), CheckFailure);
}

TEST(Adaptive, SingleWriterSingleReaderSequential) {
  auto alg = registers::make_adaptive(cfg_fk(1, 2));
  RunOptions opts;
  opts.writers = 1;
  opts.writes_per_client = 5;
  opts.readers = 1;
  opts.reads_per_client = 5;
  opts.scheduler = SchedKind::kRoundRobin;
  auto out = run_register_experiment(*alg, opts);
  EXPECT_TRUE(out.report.quiesced);
  EXPECT_TRUE(out.strong_regular.ok) << out.strong_regular.summary();
  EXPECT_TRUE(out.values_legal.ok) << out.values_legal.summary();
}

TEST(Adaptive, ManyConcurrentWritersStayRegular) {
  auto alg = registers::make_adaptive(cfg_fk(2, 3));
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    RunOptions opts;
    opts.writers = 6;
    opts.writes_per_client = 2;
    opts.readers = 3;
    opts.reads_per_client = 2;
    opts.seed = seed;
    auto out = run_register_experiment(*alg, opts);
    EXPECT_TRUE(out.report.quiesced) << "seed " << seed;
    EXPECT_TRUE(out.weak_regular.ok)
        << "seed " << seed << ": " << out.weak_regular.summary();
    EXPECT_TRUE(out.strong_regular.ok)
        << "seed " << seed << ": " << out.strong_regular.summary();
  }
}

TEST(Adaptive, ToleratesFCrashes) {
  const auto cfg = cfg_fk(2, 2);
  auto alg = registers::make_adaptive(cfg);
  for (uint64_t seed : {11u, 12u, 13u}) {
    RunOptions opts;
    opts.writers = 3;
    opts.writes_per_client = 3;
    opts.readers = 2;
    opts.reads_per_client = 3;
    opts.object_crashes = cfg.f;  // the maximum the algorithm tolerates
    opts.seed = seed;
    auto out = run_register_experiment(*alg, opts);
    EXPECT_TRUE(out.live) << "seed " << seed << ": ops stuck after " << cfg.f
                          << " crashes";
    EXPECT_TRUE(out.weak_regular.ok)
        << "seed " << seed << ": " << out.weak_regular.summary();
    EXPECT_TRUE(out.strong_regular.ok)
        << "seed " << seed << ": " << out.strong_regular.summary();
  }
}

TEST(Adaptive, StorageWithinTheorem2Bound) {
  // Sweep the concurrency level and check the Appendix D object-storage
  // bound min((c+1) n D/k, 2 n D) at every point of every run.
  const uint32_t f = 2, k = 4;
  const uint64_t D = 1024;
  auto alg = registers::make_adaptive(cfg_fk(f, k, D));
  for (uint32_t c : {1u, 2u, 3u, 5u, 8u, 12u}) {
    RunOptions opts;
    opts.writers = c;
    opts.writes_per_client = 2;
    opts.scheduler = SchedKind::kBurst;  // maximum concurrency
    auto out = run_register_experiment(*alg, opts);
    EXPECT_TRUE(out.report.quiesced);
    EXPECT_LE(out.max_object_bits,
              bounds::adaptive_upper_bound_bits(f, k, c, D))
        << "c=" << c;
  }
}

TEST(Adaptive, StorageBoundHoldsUnderRandomSchedules) {
  const uint32_t f = 1, k = 3;
  const uint64_t D = 768;
  auto alg = registers::make_adaptive(cfg_fk(f, k, D));
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const uint32_t c = 4;
    RunOptions opts;
    opts.writers = c;
    opts.writes_per_client = 3;
    opts.readers = 1;
    opts.reads_per_client = 2;
    opts.seed = seed;
    auto out = run_register_experiment(*alg, opts);
    EXPECT_LE(out.max_object_bits,
              bounds::adaptive_upper_bound_bits(f, k, c, D))
        << "seed " << seed;
  }
}

TEST(Adaptive, GarbageCollectionShrinksToOnePiecePerObject) {
  // Theorem 2's quiescence clause: with finitely many writes, all by
  // correct writers, storage eventually drops to (2f+k) D / k. Under the
  // FIFO round-robin scheduler every straggler RMW lands in trigger order,
  // so the final state is exactly one piece per object.
  const uint32_t f = 2, k = 2;
  const uint64_t D = 512;
  auto alg = registers::make_adaptive(cfg_fk(f, k, D));
  RunOptions opts;
  opts.writers = 3;
  opts.writes_per_client = 3;
  opts.scheduler = SchedKind::kRoundRobin;
  auto out = run_register_experiment(*alg, opts);
  EXPECT_TRUE(out.report.quiesced);
  EXPECT_EQ(out.final_object_bits, bounds::adaptive_quiescent_bits(f, k, D));
}

TEST(Adaptive, GcUnderRandomScheduleWithinOnePiecePerLiveObject) {
  // Random delivery can reorder a write's own update after its GC on up to
  // f straggler objects, which then end up empty — still within the bound.
  const uint32_t f = 2, k = 2;
  const uint64_t D = 512;
  auto alg = registers::make_adaptive(cfg_fk(f, k, D));
  for (uint64_t seed : {21u, 22u, 23u, 24u}) {
    RunOptions opts;
    opts.writers = 2;
    opts.writes_per_client = 4;
    opts.seed = seed;
    auto out = run_register_experiment(*alg, opts);
    EXPECT_TRUE(out.report.quiesced);
    EXPECT_LE(out.final_object_bits,
              bounds::adaptive_quiescent_bits(f, k, D))
        << "seed " << seed;
  }
}

TEST(Adaptive, AblationNoReplicaGrowsWithConcurrency) {
  // Corollary 2: without the full-replica fallback (and with Vp unbounded
  // to preserve regularity), storage must grow linearly with c.
  const uint32_t f = 2, k = 4;
  const uint64_t D = 1024;
  registers::AdaptiveOptions ablation;
  ablation.enable_replica_path = false;
  ablation.vp_unbounded = true;
  auto alg = registers::make_adaptive(cfg_fk(f, k, D), ablation);

  uint64_t prev = 0;
  for (uint32_t c : {2u, 6u, 12u}) {
    RunOptions opts;
    opts.writers = c;
    opts.writes_per_client = 1;
    opts.scheduler = SchedKind::kBurst;
    auto out = run_register_experiment(*alg, opts);
    EXPECT_TRUE(out.report.quiesced);
    EXPECT_GT(out.max_object_bits, prev) << "c=" << c;
    prev = out.max_object_bits;
  }
  // At c = 12 the ablated variant must exceed the adaptive cap 2 n D.
  EXPECT_GT(prev, 2ull * (2 * f + k) * D);
}

TEST(Adaptive, AblationStaysRegular) {
  registers::AdaptiveOptions ablation;
  ablation.enable_replica_path = false;
  ablation.vp_unbounded = true;
  auto alg = registers::make_adaptive(cfg_fk(1, 2), ablation);
  RunOptions opts;
  opts.writers = 4;
  opts.writes_per_client = 2;
  opts.readers = 2;
  opts.reads_per_client = 2;
  opts.seed = 5;
  auto out = run_register_experiment(*alg, opts);
  EXPECT_TRUE(out.report.quiesced);
  EXPECT_TRUE(out.weak_regular.ok) << out.weak_regular.summary();
  EXPECT_TRUE(out.strong_regular.ok) << out.strong_regular.summary();
}

TEST(Adaptive, ReplicationDegenerateKEqualsOne) {
  // k = 1 turns the erasure code into replication; everything must still
  // hold (this exercises the ReplicationCodec inside the adaptive client).
  auto alg = registers::make_adaptive(cfg_fk(2, 1, 256));
  RunOptions opts;
  opts.writers = 3;
  opts.writes_per_client = 2;
  opts.readers = 2;
  opts.reads_per_client = 2;
  opts.seed = 9;
  auto out = run_register_experiment(*alg, opts);
  EXPECT_TRUE(out.report.quiesced);
  EXPECT_TRUE(out.strong_regular.ok) << out.strong_regular.summary();
}

TEST(Adaptive, ReadsReturnFreshValuesAfterQuiescence) {
  // Write 5 values sequentially, then read: the read must return the last.
  auto alg = registers::make_adaptive(cfg_fk(1, 2, 256));
  RunOptions opts;
  opts.writers = 1;
  opts.writes_per_client = 5;
  opts.readers = 1;
  opts.reads_per_client = 1;
  opts.scheduler = SchedKind::kRoundRobin;
  auto out = run_register_experiment(*alg, opts);
  ASSERT_TRUE(out.report.quiesced);
  // Under round-robin the read is concurrent with writes in general; we
  // assert regularity rather than an exact value, and additionally check
  // the stricter property when the read starts after all writes finished.
  EXPECT_TRUE(out.strong_regular.ok) << out.strong_regular.summary();
  auto reads = out.history.reads();
  ASSERT_EQ(reads.size(), 1u);
  auto writes = out.history.writes();
  uint64_t last_return = 0;
  for (const auto& w : writes) last_return = std::max(last_return, *w.return_time);
  if (reads[0].invoke_time > last_return) {
    EXPECT_EQ(reads[0].value, writes.back().value);
  }
}

TEST(Adaptive, ChannelStorageIsMetered) {
  // Definition 2 counts pending-RMW payloads; an update round carries the
  // Vp piece plus the k replica pieces per object, so channel storage must
  // be visibly nonzero at some point.
  auto alg = registers::make_adaptive(cfg_fk(1, 2, 512));
  RunOptions opts;
  opts.writers = 1;
  opts.writes_per_client = 1;
  opts.scheduler = SchedKind::kRoundRobin;
  auto out = run_register_experiment(*alg, opts);
  EXPECT_GT(out.max_channel_bits, 0u);
  EXPECT_GE(out.max_total_bits, out.max_object_bits);
}

}  // namespace
}  // namespace sbrs
