// Tests for the rateless LT codec (Definition 1's E : V x N -> E case).
#include <gtest/gtest.h>

#include "codec/rateless.h"
#include "common/rng.h"

namespace sbrs::codec {
namespace {

Value random_value(uint64_t bits, uint64_t seed) {
  Rng rng(seed);
  Bytes b(bits / 8);
  for (auto& x : b) x = static_cast<uint8_t>(rng.below(256));
  return Value(std::move(b));
}

TEST(Rateless, UnboundedBlockIndices) {
  LtCodec codec(4, 256);
  const Value v = random_value(256, 1);
  // Far beyond the nominal horizon: still well-defined and symmetric.
  for (uint32_t i : {1u, 17u, 1000u, 1000000u}) {
    const Block b = codec.encode_block(v, i);
    EXPECT_EQ(b.index, i);
    EXPECT_EQ(b.bit_size(), codec.block_bits(i));
  }
}

TEST(Rateless, EncodingIsSymmetric) {
  LtCodec codec(4, 256);
  std::vector<Value> sample;
  for (uint64_t t = 0; t < 5; ++t) sample.push_back(random_value(256, t));
  // Spot-check symmetry over a spread of indices (Definition 3).
  for (uint32_t i : {1u, 2u, 3u, 100u, 5000u}) {
    const uint64_t declared = codec.block_bits(i);
    for (const Value& v : sample) {
      EXPECT_EQ(codec.encode_block(v, i).bit_size(), declared);
    }
  }
}

TEST(Rateless, NeighborsAreDeterministicAndInRange) {
  LtCodec codec(8, 512);
  for (uint32_t i = 1; i <= 200; ++i) {
    auto a = codec.neighbors(i);
    auto b = codec.neighbors(i);
    EXPECT_EQ(a, b);
    EXPECT_GE(a.size(), 1u);
    EXPECT_LE(a.size(), 8u);
    for (uint32_t s : a) EXPECT_LT(s, 8u);
  }
}

TEST(Rateless, DecodesFromPrefixWithOverhead) {
  // With 2k consecutive blocks, peeling succeeds for these seeds/shapes
  // (deterministic given the codec seed).
  for (uint32_t k : {2u, 4u, 8u}) {
    LtCodec codec(k, 512);
    const Value v = random_value(512, k);
    std::vector<Block> blocks;
    for (uint32_t i = 1; i <= 3 * k; ++i) {
      blocks.push_back(codec.encode_block(v, i));
    }
    auto decoded = codec.decode(blocks);
    ASSERT_TRUE(decoded.has_value()) << "k=" << k;
    EXPECT_EQ(*decoded, v) << "k=" << k;
  }
}

TEST(Rateless, DecodesFromRandomBlockSubsetsWithHighProbability) {
  const uint32_t k = 8;
  LtCodec codec(k, 1024);
  const Value v = random_value(1024, 99);
  Rng rng(7);
  int successes = 0;
  const int trials = 50;
  for (int t = 0; t < trials; ++t) {
    std::vector<Block> blocks;
    std::set<uint32_t> indices;
    while (indices.size() < 3 * k) {
      indices.insert(1 + static_cast<uint32_t>(rng.below(100 * k)));
    }
    for (uint32_t i : indices) blocks.push_back(codec.encode_block(v, i));
    auto decoded = codec.decode(blocks);
    if (decoded.has_value() && *decoded == v) ++successes;
  }
  // 3k random blocks should nearly always decode.
  EXPECT_GE(successes, trials * 8 / 10) << successes << "/" << trials;
}

TEST(Rateless, TooFewBlocksNeverDecode) {
  const uint32_t k = 8;
  LtCodec codec(k, 1024);
  const Value v = random_value(1024, 5);
  std::vector<Block> blocks;
  for (uint32_t i = 1; i < k; ++i) {  // k-1 blocks: information-theoretic no
    blocks.push_back(codec.encode_block(v, i));
  }
  EXPECT_FALSE(codec.decode(blocks).has_value());
}

TEST(Rateless, DuplicateIndicesDoNotHelp) {
  const uint32_t k = 4;
  LtCodec codec(k, 256);
  const Value v = random_value(256, 6);
  std::vector<Block> blocks;
  for (int copy = 0; copy < 20; ++copy) {
    blocks.push_back(codec.encode_block(v, 1));
  }
  EXPECT_FALSE(codec.decode(blocks).has_value());
}

TEST(Rateless, DifferentSeedsGiveDifferentCodes) {
  LtCodec a(4, 256, 0, 111);
  LtCodec b(4, 256, 0, 222);
  const Value v = random_value(256, 3);
  bool any_different = false;
  for (uint32_t i = 1; i <= 16; ++i) {
    if (a.encode_block(v, i).data != b.encode_block(v, i).data) {
      any_different = true;
    }
  }
  EXPECT_TRUE(any_different);
}

}  // namespace
}  // namespace sbrs::codec
