// Liveness-property tests: FW-termination vs wait-freedom, and the read-
// starvation behaviour under unbounded write churn that motivates the
// FW-termination definition (Appendix A).
#include <gtest/gtest.h>

#include "harness/runner.h"
#include "sim/schedulers.h"
#include "sim/simulator.h"
#include "sim/workload.h"

namespace sbrs {
namespace {

registers::RegisterConfig cfg_fk(uint32_t f, uint32_t k) {
  registers::RegisterConfig cfg;
  cfg.f = f;
  cfg.k = k;
  cfg.n = 2 * f + k;
  cfg.data_bits = 256;
  return cfg;
}

/// A scheduler that starves a reader: it always delivers the reader's
/// readValue RMWs immediately but keeps exactly one write outstanding and
/// in the middle of its update round forever (by rotating writes), so the
/// reader keeps observing fresh timestamps without k matching pieces.
/// Realized here more simply: run a workload with endless writes and a
/// bounded step budget, and observe the reader makes many rounds without
/// returning while writes keep completing (lock-freedom holds, the read
/// starves) — permitted by FW-termination since writes are infinite.
TEST(Liveness, AdaptiveReaderCanStarveUnderEndlessWrites) {
  auto alg = registers::make_adaptive(cfg_fk(1, 2));
  sim::UniformWorkload::Options wl;
  wl.writers = 3;
  wl.writes_per_client = 100000;  // effectively unbounded
  wl.readers = 1;
  wl.reads_per_client = 1;
  wl.data_bits = 256;

  sim::RandomScheduler::Options so;
  so.seed = 12345;
  so.invoke_weight = 8;  // aggressive churn
  so.deliver_weight = 2;

  sim::SimConfig sc;
  sc.num_objects = 4;
  sc.num_clients = 4;
  sc.max_steps = 30'000;
  sc.sample_every = 4096;

  sim::Simulator sim(sc, alg->object_factory(), alg->client_factory(),
                     std::make_unique<sim::UniformWorkload>(wl),
                     std::make_unique<sim::RandomScheduler>(so));
  sim.run();
  // Lock-freedom: plenty of writes completed.
  EXPECT_GT(sim.history().completed_writes(), 100u);
  // The single read either completed (fine — starvation is possible, not
  // certain) or is still outstanding; both are consistent with
  // FW-termination. What must NOT happen is a wrong value; nothing to
  // check if it never returned.
  SUCCEED();
}

TEST(Liveness, SafeRegisterReadsAlwaysReturnPromptly) {
  // Wait-freedom: under the same endless churn, the safe register's read
  // returns after its single round.
  auto alg = registers::make_safe(cfg_fk(1, 2));
  sim::UniformWorkload::Options wl;
  wl.writers = 3;
  wl.writes_per_client = 100000;
  wl.readers = 1;
  wl.reads_per_client = 1;
  wl.data_bits = 256;

  sim::RandomScheduler::Options so;
  so.seed = 999;
  so.invoke_weight = 8;
  so.deliver_weight = 2;

  sim::SimConfig sc;
  sc.num_objects = 4;
  sc.num_clients = 4;
  sc.max_steps = 30'000;
  sc.sample_every = 4096;

  sim::Simulator sim(sc, alg->object_factory(), alg->client_factory(),
                     std::make_unique<sim::UniformWorkload>(wl),
                     std::make_unique<sim::RandomScheduler>(so));
  sim.run();
  EXPECT_EQ(sim.history().completed_reads(), 1u);
}

TEST(Liveness, FwTerminationAfterWritesStop) {
  // Once writes are finite, every read completes (the FW guarantee) — for
  // all three FW-terminating algorithms.
  for (int which = 0; which < 3; ++which) {
    const auto cfg = cfg_fk(2, 2);
    std::unique_ptr<registers::RegisterAlgorithm> alg;
    switch (which) {
      case 0: alg = registers::make_adaptive(cfg); break;
      case 1: alg = registers::make_coded(cfg); break;
      default: alg = registers::make_coded_atomic(cfg); break;
    }
    for (uint64_t seed = 1; seed <= 4; ++seed) {
      harness::RunOptions opts;
      opts.writers = 3;
      opts.writes_per_client = 3;
      opts.readers = 3;
      opts.reads_per_client = 3;
      opts.seed = seed;
      auto out = harness::run_register_experiment(*alg, opts);
      EXPECT_TRUE(out.live) << alg->name() << " seed " << seed;
      EXPECT_EQ(out.history.completed_reads(), 9u)
          << alg->name() << " seed " << seed;
    }
  }
}

TEST(Liveness, WritesAreWaitFreeEvenWithReadersCrashed) {
  auto alg = registers::make_adaptive(cfg_fk(1, 2));
  harness::RunOptions opts;
  opts.writers = 2;
  opts.writes_per_client = 4;
  opts.readers = 2;
  opts.reads_per_client = 4;
  opts.client_crashes = 2;  // may kill the readers mid-op
  opts.seed = 4242;
  auto out = harness::run_register_experiment(*alg, opts);
  // All writes by surviving writers completed.
  for (const auto& w : out.history.writes()) {
    if (!w.complete()) {
      // Only acceptable if that writer crashed.
      SUCCEED();
    }
  }
  EXPECT_TRUE(out.values_legal.ok);
  EXPECT_TRUE(out.weak_regular.ok) << out.weak_regular.summary();
}

}  // namespace
}  // namespace sbrs
