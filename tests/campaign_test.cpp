// Campaign-runner tests: the shipped scenarios/ files all pass, the grid
// is deterministic across worker-thread counts, and the acceptance-pin
// canary path — a deliberately-broken expectation must produce a triage
// bundle whose recorded scenario + seed reproduce the violation in one
// run_scenario call.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.h"
#include "harness/campaign.h"
#include "harness/scenario.h"

#ifndef SBRS_SOURCE_DIR
#error "SBRS_SOURCE_DIR must point at the repository root"
#endif

namespace sbrs {
namespace {

namespace fs = std::filesystem;

std::string shipped(const char* name) {
  return std::string(SBRS_SOURCE_DIR) + "/scenarios/" + name;
}

std::vector<std::string> shipped_scenarios() {
  return {shipped("partition-heal.json"), shipped("delay-spike.json"),
          shipped("drop-storm.json"), shipped("repair-storm.json")};
}

std::string read_file(const std::string& path) {
  std::ifstream is(path);
  EXPECT_TRUE(is.good()) << path;
  std::ostringstream buf;
  buf << is.rdbuf();
  return buf.str();
}

/// A scratch directory removed on scope exit.
struct TempDir {
  fs::path path;
  TempDir() {
    path = fs::temp_directory_path() /
           ("sbrs-campaign-test-" + std::to_string(::getpid()));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
};

TEST(Campaign, ShippedScenariosAllPass) {
  harness::CampaignOptions opts;
  opts.scenario_files = shipped_scenarios();
  opts.seeds_per_scenario = 2;
  opts.base_seed = 1;
  const auto result = harness::run_campaign(opts);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.failures, 0u);
  ASSERT_EQ(result.runs.size(), 8u);
  for (const auto& run : result.runs) {
    EXPECT_TRUE(run.outcome.ok)
        << run.scenario << " seed " << run.seed << ": "
        << (run.outcome.violations.empty() ? std::string("?")
                                           : run.outcome.violations[0]);
    EXPECT_TRUE(run.bundle_path.empty());
  }
  // Scenario-major, seed-minor order.
  EXPECT_EQ(result.runs[0].scenario, "partition-heal");
  EXPECT_EQ(result.runs[0].seed, 1u);
  EXPECT_EQ(result.runs[1].seed, 2u);
  EXPECT_EQ(result.runs[2].scenario, "delay-spike");
}

TEST(Campaign, DeterministicAcrossThreadCounts) {
  auto fingerprints_at = [](uint32_t threads) {
    harness::CampaignOptions opts;
    opts.scenario_files = {shipped("partition-heal.json"),
                           shipped("repair-storm.json")};
    opts.seeds_per_scenario = 3;
    opts.threads = threads;
    const auto result = harness::run_campaign(opts);
    std::vector<uint64_t> fps;
    for (const auto& run : result.runs) fps.push_back(run.outcome.fingerprint);
    return fps;
  };
  const auto one = fingerprints_at(1);
  const auto four = fingerprints_at(4);
  const auto nine = fingerprints_at(9);
  EXPECT_EQ(one, four);
  EXPECT_EQ(one, nine);
}

TEST(Campaign, CampaignJsonDeterministicModuloWallClock) {
  auto summary_at = [](uint32_t threads) {
    harness::CampaignOptions opts;
    opts.scenario_files = {shipped("drop-storm.json")};
    opts.seeds_per_scenario = 2;
    opts.threads = threads;
    auto result = harness::run_campaign(opts);
    // The two knowingly environment-dependent fields.
    result.wall_seconds = 0;
    result.threads_used = 1;
    std::ostringstream os;
    harness::write_campaign_json(os, result);
    return os.str();
  };
  EXPECT_EQ(summary_at(1), summary_at(4));
}

TEST(Campaign, EmptyCampaignIsUsageError) {
  EXPECT_THROW(harness::run_campaign({}), CheckFailure);
  harness::CampaignOptions opts;
  opts.scenario_files = {shipped("drop-storm.json")};
  opts.seeds_per_scenario = 0;
  EXPECT_THROW(harness::run_campaign(opts), CheckFailure);
  opts.seeds_per_scenario = 1;
  opts.scenario_files = {"/nonexistent/scenario.json"};
  EXPECT_THROW(harness::run_campaign(opts), CheckFailure);  // parse = usage
}

// The ISSUE acceptance pin: a canary scenario with a deliberately-broken
// expectation makes the campaign emit a triage bundle, and the bundle's
// recorded scenario + seed reproduce the violation in one invocation.
TEST(Campaign, CanaryEmitsReproducibleTriageBundle) {
  TempDir tmp;
  const std::string canary_path = (tmp.path / "canary.json").string();
  {
    std::ofstream os(canary_path);
    os << R"({
  "name": "canary-storage",
  "config": {"f": 1, "k": 2, "data_bits": 64},
  "workload": {"writers": 1, "writes_per_client": 2,
               "readers": 1, "reads_per_client": 2},
  "expect": {"max_total_bits": 1}
})";
  }

  harness::CampaignOptions opts;
  opts.scenario_files = {canary_path, shipped("drop-storm.json")};
  opts.bundle_dir = (tmp.path / "bundles").string();
  const auto result = harness::run_campaign(opts);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.failures, 1u);

  const auto& failed = result.runs[0];
  ASSERT_FALSE(failed.outcome.ok);
  ASSERT_FALSE(failed.bundle_path.empty());
  const fs::path bundle(failed.bundle_path);
  EXPECT_EQ(bundle.filename().string(), "canary-storage-seed1");

  // Bundle layout: scenario file verbatim, run.json, repro.txt, trace.txt.
  EXPECT_TRUE(fs::exists(bundle / "scenario.json"));
  EXPECT_TRUE(fs::exists(bundle / "run.json"));
  EXPECT_TRUE(fs::exists(bundle / "repro.txt"));
  EXPECT_TRUE(fs::exists(bundle / "trace.txt"));

  const std::string copied = read_file((bundle / "scenario.json").string());
  EXPECT_EQ(copied.substr(0, copied.find_last_not_of('\n') + 1),
            read_file(canary_path));

  const std::string repro = read_file((bundle / "repro.txt").string());
  EXPECT_NE(repro.find("--scenario=" + canary_path), std::string::npos)
      << repro;
  EXPECT_NE(repro.find("--seed=1"), std::string::npos) << repro;

  const std::string run_json = read_file((bundle / "run.json").string());
  EXPECT_NE(run_json.find("\"ok\": false"), std::string::npos);
  EXPECT_NE(run_json.find("max_total_bits"), std::string::npos);

  // THE pin: replaying the bundled scenario at the recorded seed reproduces
  // the violation — same verdict, same fingerprint.
  const auto replay = harness::run_scenario(
      harness::load_scenario((bundle / "scenario.json").string()),
      failed.seed);
  EXPECT_FALSE(replay.ok);
  EXPECT_EQ(replay.fingerprint, failed.outcome.fingerprint);
  ASSERT_FALSE(replay.violations.empty());
  EXPECT_EQ(replay.violations[0], failed.outcome.violations[0]);

  // The passing scenario produced no bundle.
  EXPECT_TRUE(result.runs[1].bundle_path.empty());
  EXPECT_TRUE(result.runs[1].outcome.ok);
}

}  // namespace
}  // namespace sbrs
