// Tests for the atomic coded register (reader write-back).
#include <gtest/gtest.h>

#include "bounds/formulas.h"
#include "harness/runner.h"

namespace sbrs {
namespace {

using harness::RunOptions;
using harness::SchedKind;
using harness::run_register_experiment;
using registers::RegisterConfig;

RegisterConfig cfg_fk(uint32_t f, uint32_t k, uint64_t data_bits = 512) {
  RegisterConfig cfg;
  cfg.f = f;
  cfg.k = k;
  cfg.n = 2 * f + k;
  cfg.data_bits = data_bits;
  return cfg;
}

TEST(CodedAtomic, SequentialCorrectness) {
  auto alg = registers::make_coded_atomic(cfg_fk(1, 2));
  RunOptions opts;
  opts.writers = 1;
  opts.writes_per_client = 4;
  opts.readers = 1;
  opts.reads_per_client = 4;
  opts.scheduler = SchedKind::kRoundRobin;
  auto out = run_register_experiment(*alg, opts);
  EXPECT_TRUE(out.report.quiesced);
  auto atom = consistency::check_atomicity(out.history);
  EXPECT_TRUE(atom.ok) << atom.summary();
}

TEST(CodedAtomic, AtomicUnderConcurrency) {
  auto alg = registers::make_coded_atomic(cfg_fk(2, 3));
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    RunOptions opts;
    opts.writers = 3;
    opts.writes_per_client = 2;
    opts.readers = 4;
    opts.reads_per_client = 3;
    opts.seed = seed;
    auto out = run_register_experiment(*alg, opts);
    EXPECT_TRUE(out.report.quiesced) << "seed " << seed;
    EXPECT_TRUE(out.values_legal.ok)
        << "seed " << seed << ": " << out.values_legal.summary();
    auto atom = consistency::check_atomicity(out.history);
    EXPECT_TRUE(atom.ok) << "seed " << seed << ": " << atom.summary();
  }
}

TEST(CodedAtomic, AtomicWithCrashes) {
  const auto cfg = cfg_fk(2, 2);
  auto alg = registers::make_coded_atomic(cfg);
  for (uint64_t seed : {61u, 62u, 63u, 64u}) {
    RunOptions opts;
    opts.writers = 2;
    opts.writes_per_client = 3;
    opts.readers = 3;
    opts.reads_per_client = 2;
    opts.object_crashes = cfg.f;
    opts.seed = seed;
    auto out = run_register_experiment(*alg, opts);
    EXPECT_TRUE(out.live) << "seed " << seed;
    auto atom = consistency::check_atomicity(out.history);
    EXPECT_TRUE(atom.ok) << "seed " << seed << ": " << atom.summary();
  }
}

TEST(CodedAtomic, StillInTheOcdStorageClass) {
  // Reader write-back does not change the O(cD) storage class: the
  // algorithm is subject to Theorem 1 like the plain coded baseline.
  const uint32_t f = 2, k = 4;
  const uint64_t D = 1024;
  auto alg = registers::make_coded_atomic(cfg_fk(f, k, D));
  uint64_t prev = 0;
  for (uint32_t c : {2u, 4u, 8u}) {
    RunOptions opts;
    opts.writers = c;
    opts.writes_per_client = 1;
    opts.scheduler = SchedKind::kBurst;
    auto out = run_register_experiment(*alg, opts);
    EXPECT_TRUE(out.report.quiesced);
    EXPECT_GT(out.max_object_bits, prev) << "c=" << c;
    prev = out.max_object_bits;
  }
}

TEST(CodedAtomic, ReadsCostAnExtraRound) {
  auto plain = registers::make_coded(cfg_fk(1, 2));
  auto atomic = registers::make_coded_atomic(cfg_fk(1, 2));
  RunOptions opts;
  opts.writers = 1;
  opts.writes_per_client = 2;
  opts.readers = 1;
  opts.reads_per_client = 2;
  opts.scheduler = SchedKind::kRoundRobin;
  auto plain_out = run_register_experiment(*plain, opts);
  auto atomic_out = run_register_experiment(*atomic, opts);
  // Two reads x one extra round x n objects.
  EXPECT_EQ(atomic_out.report.rmws_triggered,
            plain_out.report.rmws_triggered + 2 * 4);
}

}  // namespace
}  // namespace sbrs
