// Tests for the sharded multi-object store engine (src/store/): key
// placement, register multiplexing over a shared base-object pool, the
// interactive put/get API, per-key consistency under load and crashes, and
// the thread-count independence of batch results.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "harness/algorithms.h"
#include "store/multi_object.h"
#include "store/shard_map.h"
#include "store/store.h"
#include "sim/types.h"

namespace sbrs::store {
namespace {

StoreOptions small_options() {
  StoreOptions opts;
  opts.algorithm = "adaptive";
  opts.register_config.f = 1;
  opts.register_config.k = 2;
  opts.register_config.n = 4;  // n = 2f + k
  opts.register_config.data_bits = 128;
  opts.num_shards = 4;
  opts.workload.num_keys = 32;
  opts.workload.clients = 3;
  opts.workload.ops_per_client = 12;
  opts.workload.mix = ycsb::Mix::kA;
  opts.workload.distribution = ycsb::Distribution::kZipfian;
  opts.seed = 11;
  opts.threads = 2;
  return opts;
}

TEST(ShardMap, PlacementIsStableAndCoversAllShards) {
  ShardMap map(8);
  std::set<uint32_t> used;
  for (int i = 0; i < 256; ++i) {
    const std::string key = "user" + std::to_string(i);
    const uint32_t s = map.shard_of(key);
    EXPECT_LT(s, 8u);
    EXPECT_EQ(s, map.shard_of(key));  // deterministic
    used.insert(s);
  }
  EXPECT_EQ(used.size(), 8u) << "256 hashed keys should hit all 8 shards";
  // The hash itself is pinned (standard FNV-1a 64): it is part of the JSON
  // artifact contract.
  EXPECT_EQ(ShardMap::key_hash(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(ShardMap::key_hash("a"), 0xaf63dc4c8601ec8cull);
}

TEST(MultiObject, PremountsKeysAndIsolatesSubStates) {
  auto algorithm = harness::make_algorithm(
      "adaptive", small_options().register_config);
  MultiKeyObjectState obj(ObjectId{0}, algorithm->object_factory(), {1, 2, 3});
  EXPECT_EQ(obj.mounted_keys(), 3u);

  // Each premounted key holds its own v0 piece: total is 3x one register's.
  auto single = algorithm->object_factory()(ObjectId{0});
  EXPECT_EQ(obj.stored_bits(), 3 * single->stored_bits());
  EXPECT_EQ(obj.footprint().total_bits(), obj.stored_bits());

  // An RMW on key 7 mounts it lazily and touches only key 7's sub-state.
  const uint64_t before = obj.stored_bits();
  obj.apply(7, [](sim::ObjectStateBase& s) -> sim::ResponsePtr {
    (void)s;
    return nullptr;
  });
  EXPECT_EQ(obj.mounted_keys(), 4u);
  EXPECT_EQ(obj.stored_bits(), before + single->stored_bits());
  EXPECT_NE(obj.sub(7), nullptr);
  EXPECT_EQ(obj.sub(99), nullptr);
}

TEST(Store, InteractivePutGetRoundTrip) {
  Store store(small_options());
  const uint64_t d = store.options().register_config.data_bits;

  store.put("alpha", Value::from_tag(101, d));
  store.put("beta", Value::from_tag(202, d));
  EXPECT_EQ(store.get("alpha").tag(), 101u);
  EXPECT_EQ(store.get("beta").tag(), 202u);

  // Overwrite is visible to a subsequent read (no concurrency here, so even
  // weakly regular algorithms must return the latest value).
  store.put("alpha", Value::from_tag(303, d));
  EXPECT_EQ(store.get("alpha").tag(), 303u);

  // A never-written key returns v0 (all zeros, tag 0).
  EXPECT_EQ(store.get("user0").tag(), 0u);

  // Interactive traffic summarizes cleanly: every touched key checks out.
  StoreResult result = store.summarize();
  EXPECT_TRUE(result.all_live);
  EXPECT_GT(result.keys_checked, 0u);
  EXPECT_EQ(result.consistency_failures, 0u);
}

TEST(Store, BatchRunChecksEveryKeyAndQuiesces) {
  StoreOptions opts = small_options();
  Store store(opts);
  StoreResult result = store.run();

  EXPECT_TRUE(result.all_live);
  EXPECT_TRUE(result.all_quiesced);
  EXPECT_EQ(result.consistency_failures, 0u);
  EXPECT_GT(result.keys_checked, 0u);
  EXPECT_GT(result.completed_reads + result.completed_writes, 0u);
  EXPECT_GT(result.peak_object_bits_sum, 0u);
  // Every workload op completed: the stream has clients x ops entries plus
  // one extra write per F-mix RMW (mix A has none).
  EXPECT_EQ(result.completed_reads + result.completed_writes,
            static_cast<uint64_t>(opts.workload.clients) *
                opts.workload.ops_per_client);
  ASSERT_EQ(result.shards.size(), opts.num_shards);
  uint32_t mounted = 0;
  for (const auto& s : result.shards) mounted += s.keys_mounted;
  EXPECT_EQ(mounted, opts.workload.num_keys);
}

TEST(Store, AllAlgorithmsServeTheStore) {
  for (const std::string& alg : harness::algorithm_names()) {
    SCOPED_TRACE(alg);
    StoreOptions opts = small_options();
    opts.algorithm = alg;
    opts.workload.ops_per_client = 6;
    Store store(opts);
    StoreResult result = store.run();
    EXPECT_TRUE(result.all_live);
    EXPECT_EQ(result.consistency_failures, 0u)
        << (result.shards[0].violations.empty()
                ? "(no violation detail)"
                : result.shards[0].violations[0]);
  }
}

TEST(Store, SurvivesObjectCrashesWithinF) {
  StoreOptions opts = small_options();
  opts.register_config.f = 2;
  opts.register_config.k = 2;
  opts.register_config.n = 6;
  opts.object_crashes_per_shard = 2;  // == f, the tolerated maximum
  Store store(opts);
  StoreResult result = store.run();
  EXPECT_TRUE(result.all_live);
  EXPECT_TRUE(result.all_quiesced);
  EXPECT_EQ(result.consistency_failures, 0u);
}

// The ISSUE-3 acceptance smoke: >= 32 shards x >= 512 keys under a zipfian
// read-heavy mix; every key passes its consistency checker; merged p50/p99
// and peak storage are reported; and the deterministic result is
// byte-identical across 1 and 8 worker threads for the same seed.
TEST(Store, SmokeLargeGridDeterministicAcrossThreadCounts) {
  StoreOptions opts;
  opts.algorithm = "adaptive";
  opts.register_config.f = 2;
  opts.register_config.k = 4;
  opts.register_config.n = 8;
  opts.register_config.data_bits = 256;
  opts.num_shards = 32;
  opts.workload.num_keys = 512;
  opts.workload.clients = 8;
  opts.workload.ops_per_client = 32;
  opts.workload.mix = ycsb::Mix::kB;  // read-heavy (95%)
  opts.workload.distribution = ycsb::Distribution::kZipfian;
  opts.seed = 2016;

  std::string deterministic[2];
  for (int i = 0; i < 2; ++i) {
    StoreOptions run_opts = opts;
    run_opts.threads = i == 0 ? 1 : 8;
    Store store(run_opts);
    StoreResult result = store.run();

    EXPECT_TRUE(result.all_live);
    EXPECT_TRUE(result.all_quiesced);
    EXPECT_EQ(result.consistency_failures, 0u);
    EXPECT_GT(result.keys_checked, 0u);
    // The merged latency and peak storage reports are present and sane.
    EXPECT_GT(result.read_latency.count(), 0u);
    EXPECT_GE(result.read_latency.p99(), result.read_latency.p50());
    EXPECT_GT(result.peak_total_bits_sum, 0u);
    EXPECT_GE(result.peak_total_bits_sum, result.max_shard_object_bits);

    // Serialize only the deterministic block (timing excluded by design).
    std::ostringstream os;
    write_store_deterministic_json(os, result);
    deterministic[i] = os.str();
  }
  EXPECT_EQ(deterministic[0], deterministic[1])
      << "store results must not depend on the worker thread count";
}

TEST(Store, RepeatedRunsKeepWrittenValuesDistinct) {
  StoreOptions opts = small_options();
  opts.workload.ops_per_client = 8;
  Store store(opts);
  const StoreResult first = store.run();
  const StoreResult second = store.run();
  // The second run's results are cumulative and still check out — write
  // tags continue across run() calls, so no two writes share a value and
  // the per-key checkers stay sound.
  EXPECT_EQ(second.completed_reads + second.completed_writes,
            2 * (first.completed_reads + first.completed_writes));
  EXPECT_TRUE(second.all_live);
  EXPECT_EQ(second.consistency_failures, 0u);
}

TEST(Store, LatestDistributionAndFMixRun) {
  StoreOptions opts = small_options();
  opts.workload.mix = ycsb::Mix::kF;
  opts.workload.distribution = ycsb::Distribution::kLatest;
  Store store(opts);
  StoreResult result = store.run();
  EXPECT_TRUE(result.all_live);
  EXPECT_EQ(result.consistency_failures, 0u);
  // F-mix RMWs add one read per write pair, so reads strictly outnumber
  // the A-mix read share.
  EXPECT_GT(result.completed_reads, result.completed_writes);
}

TEST(Store, JsonExportHasOptionsDeterministicAndTimingBlocks) {
  Store store(small_options());
  StoreResult result = store.run();
  std::ostringstream os;
  write_store_json(os, result);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"options\""), std::string::npos);
  EXPECT_NE(json.find("\"deterministic\""), std::string::npos);
  EXPECT_NE(json.find("\"timing\""), std::string::npos);
  EXPECT_NE(json.find("\"read_latency_steps\""), std::string::npos);
  EXPECT_NE(json.find("\"fingerprint\""), std::string::npos);
}

}  // namespace
}  // namespace sbrs::store
