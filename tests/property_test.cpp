// Property-based sweeps: every register algorithm, many seeds, random
// schedules, optional crash injection — each run is checked against the
// consistency level the algorithm promises, plus liveness and storage
// invariants. These are the "many schedules" analogue of the paper's
// universally-quantified correctness claims.
#include <gtest/gtest.h>

#include "bounds/formulas.h"
#include "harness/runner.h"

namespace sbrs {
namespace {

using harness::RunOptions;
using harness::run_register_experiment;
using registers::RegisterConfig;

enum class Alg { kAdaptive, kAbd, kAbdWriteBack, kCoded, kSafe };

struct PropertyCase {
  Alg alg;
  uint32_t f;
  uint32_t k;
  uint64_t data_bits;
  uint64_t seed;
  bool crashes;
};

std::string case_name(const ::testing::TestParamInfo<PropertyCase>& info) {
  const auto& p = info.param;
  std::string alg;
  switch (p.alg) {
    case Alg::kAdaptive: alg = "adaptive"; break;
    case Alg::kAbd: alg = "abd"; break;
    case Alg::kAbdWriteBack: alg = "abdwb"; break;
    case Alg::kCoded: alg = "coded"; break;
    case Alg::kSafe: alg = "safe"; break;
  }
  return alg + "_f" + std::to_string(p.f) + "_k" + std::to_string(p.k) +
         "_s" + std::to_string(p.seed) + (p.crashes ? "_crash" : "");
}

std::unique_ptr<registers::RegisterAlgorithm> make(const PropertyCase& p) {
  RegisterConfig cfg;
  cfg.f = p.f;
  cfg.k = p.k;
  cfg.n = 2 * p.f + p.k;
  cfg.data_bits = p.data_bits;
  switch (p.alg) {
    case Alg::kAdaptive:
      return registers::make_adaptive(cfg);
    case Alg::kAbd: {
      cfg.k = 1;
      cfg.n = 2 * p.f + 1;
      return registers::make_abd(cfg);
    }
    case Alg::kAbdWriteBack: {
      cfg.k = 1;
      cfg.n = 2 * p.f + 1;
      registers::AbdOptions o;
      o.write_back = true;
      return registers::make_abd(cfg, o);
    }
    case Alg::kCoded:
      return registers::make_coded(cfg);
    case Alg::kSafe:
      return registers::make_safe(cfg);
  }
  return nullptr;
}

class RegisterProperty : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(RegisterProperty, ConsistencyAndLiveness) {
  const auto& p = GetParam();
  auto alg = make(p);

  RunOptions opts;
  opts.writers = 3;
  opts.writes_per_client = 3;
  opts.readers = 3;
  opts.reads_per_client = 3;
  opts.seed = p.seed;
  opts.object_crashes = p.crashes ? p.f : 0;
  auto out = run_register_experiment(*alg, opts);

  // Liveness: every op of a surviving client completes. For the regular
  // registers this is FW-termination (finite writes in the workload); the
  // safe register is wait-free.
  EXPECT_TRUE(out.live) << out.algorithm << " seed " << p.seed;

  // Returned values are always real written values (or v0).
  EXPECT_TRUE(out.values_legal.ok)
      << out.algorithm << ": " << out.values_legal.summary();

  // Consistency at the level each algorithm promises.
  switch (p.alg) {
    case Alg::kAdaptive:
    case Alg::kCoded:
    case Alg::kAbd:
      EXPECT_TRUE(out.weak_regular.ok)
          << out.algorithm << ": " << out.weak_regular.summary();
      EXPECT_TRUE(out.strong_regular.ok)
          << out.algorithm << ": " << out.strong_regular.summary();
      break;
    case Alg::kAbdWriteBack: {
      auto atom = consistency::check_atomicity(out.history);
      EXPECT_TRUE(atom.ok) << out.algorithm << ": " << atom.summary();
      break;
    }
    case Alg::kSafe:
      EXPECT_TRUE(out.strongly_safe.ok)
          << out.algorithm << ": " << out.strongly_safe.summary();
      break;
  }

  // Storage invariants that hold in every run.
  const auto& cfg = alg->config();
  switch (p.alg) {
    case Alg::kAdaptive:
      EXPECT_LE(out.max_object_bits,
                bounds::adaptive_upper_bound_bits(cfg.f, cfg.k, /*c=*/3,
                                                  cfg.data_bits));
      break;
    case Alg::kAbd:
    case Alg::kAbdWriteBack:
      EXPECT_EQ(out.max_object_bits,
                bounds::replication_bits(cfg.n, cfg.data_bits));
      break;
    case Alg::kSafe:
      EXPECT_EQ(out.max_object_bits,
                bounds::safe_register_bits(cfg.f, cfg.k, cfg.data_bits));
      break;
    case Alg::kCoded:
      EXPECT_LE(out.max_object_bits,
                bounds::coded_baseline_bits(cfg.f, cfg.k, /*c=*/3,
                                            cfg.data_bits));
      break;
  }
}

std::vector<PropertyCase> make_cases() {
  std::vector<PropertyCase> cases;
  const std::vector<std::pair<uint32_t, uint32_t>> shapes = {
      {1, 2}, {2, 2}, {2, 4}, {3, 3}};
  for (Alg alg : {Alg::kAdaptive, Alg::kAbd, Alg::kAbdWriteBack, Alg::kCoded,
                  Alg::kSafe}) {
    for (auto [f, k] : shapes) {
      for (uint64_t seed = 1; seed <= 6; ++seed) {
        cases.push_back(PropertyCase{alg, f, k, 256, seed, false});
      }
      for (uint64_t seed = 101; seed <= 103; ++seed) {
        cases.push_back(PropertyCase{alg, f, k, 256, seed, true});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, RegisterProperty,
                         ::testing::ValuesIn(make_cases()), case_name);

}  // namespace
}  // namespace sbrs
