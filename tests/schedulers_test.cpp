// Tests for the fair schedulers: weighting, crash budgets, determinism.
#include <gtest/gtest.h>

#include "harness/runner.h"
#include "sim/schedulers.h"
#include "sim/simulator.h"
#include "sim/workload.h"

namespace sbrs::sim {
namespace {

registers::RegisterConfig small_cfg() {
  registers::RegisterConfig cfg;
  cfg.f = 1;
  cfg.k = 2;
  cfg.n = 4;
  cfg.data_bits = 128;
  return cfg;
}

Simulator make_sim(std::unique_ptr<Scheduler> sched, uint32_t writers = 2,
                   uint32_t each = 2) {
  static auto alg = registers::make_adaptive(small_cfg());
  UniformWorkload::Options wl;
  wl.writers = writers;
  wl.writes_per_client = each;
  wl.data_bits = 128;
  SimConfig sc;
  sc.num_objects = 4;
  sc.num_clients = writers;
  return Simulator(sc, alg->object_factory(), alg->client_factory(),
                   std::make_unique<UniformWorkload>(wl), std::move(sched));
}

TEST(RandomScheduler, RespectsCrashBudget) {
  RandomScheduler::Options so;
  so.seed = 3;
  so.max_object_crashes = 1;
  so.crash_object_permyriad = 5000;  // 50% per step: will crash fast
  auto sim = make_sim(std::make_unique<RandomScheduler>(so), 2, 4);
  sim.run();
  EXPECT_LE(sim.crashed_objects(), 1u);
}

TEST(RandomScheduler, NoCrashesWhenDisabled) {
  RandomScheduler::Options so;
  so.seed = 4;
  auto sim = make_sim(std::make_unique<RandomScheduler>(so));
  sim.run();
  EXPECT_EQ(sim.crashed_objects(), 0u);
}

TEST(RandomScheduler, CompletesWorkloads) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    RandomScheduler::Options so;
    so.seed = seed;
    auto sim = make_sim(std::make_unique<RandomScheduler>(so), 3, 3);
    auto report = sim.run();
    EXPECT_TRUE(report.quiesced) << "seed " << seed;
  }
}

TEST(RoundRobinScheduler, DeterministicAndQuiesces) {
  auto run_steps = [] {
    auto sim = make_sim(std::make_unique<RoundRobinScheduler>(), 3, 3);
    return sim.run().steps;
  };
  const uint64_t a = run_steps();
  EXPECT_EQ(a, run_steps());
  EXPECT_GT(a, 0u);
}

TEST(BurstScheduler, InvokesEverythingFirst) {
  auto sim = make_sim(std::make_unique<BurstScheduler>(), 3, 1);
  // The first 3 steps must all be invocations (every client has exactly
  // one op and the burst scheduler prefers invoking).
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(sim.step());
    EXPECT_EQ(sim.history().invoke_count(), static_cast<size_t>(i + 1));
  }
  // All writes are now concurrent.
  EXPECT_EQ(sim.history().outstanding().size(), 3u);
  sim.run();
  EXPECT_TRUE(sim.history().outstanding().empty());
}

TEST(Schedulers, DeliverWeightChangesOverlap) {
  // Heavy delivery bias -> near-sequential runs -> less concurrency ->
  // fewer pieces parked at objects than under heavy invoke bias.
  auto peak_with = [](uint32_t deliver, uint32_t invoke) {
    auto alg = registers::make_coded(small_cfg());
    UniformWorkload::Options wl;
    wl.writers = 4;
    wl.writes_per_client = 2;
    wl.data_bits = 128;
    RandomScheduler::Options so;
    so.seed = 5;
    so.deliver_weight = deliver;
    so.invoke_weight = invoke;
    SimConfig sc;
    sc.num_objects = 4;
    sc.num_clients = 4;
    Simulator sim(sc, alg->object_factory(), alg->client_factory(),
                  std::make_unique<UniformWorkload>(wl),
                  std::make_unique<RandomScheduler>(so));
    sim.run();
    return sim.meter().max_object_bits();
  };
  EXPECT_LE(peak_with(50, 1), peak_with(1, 50));
}

}  // namespace
}  // namespace sbrs::sim
