// Unit tests for the storage accounting layer: footprints, snapshots
// (Definitions 2 and 6), and the meter.
#include <gtest/gtest.h>

#include "metrics/snapshot.h"
#include "metrics/storage_meter.h"

namespace sbrs::metrics {
namespace {

StorageSnapshot::ObjectEntry object_with(ObjectId id,
                                         std::vector<BlockInstance> blocks) {
  StorageSnapshot::ObjectEntry e;
  e.id = id;
  e.footprint.blocks = std::move(blocks);
  return e;
}

TEST(Footprint, TotalsAndMerge) {
  StorageFootprint a;
  a.add(codec::Source{OpId{1}, 1}, 100);
  a.add(codec::Source{OpId{1}, 2}, 50);
  EXPECT_EQ(a.total_bits(), 150u);

  StorageFootprint b;
  b.add(codec::Source{OpId{2}, 1}, 10);
  a.merge(b);
  EXPECT_EQ(a.total_bits(), 160u);
  EXPECT_EQ(a.blocks.size(), 3u);
  EXPECT_FALSE(a.empty());
  EXPECT_TRUE(StorageFootprint{}.empty());
}

TEST(Snapshot, TotalSplitsAcrossComponents) {
  StorageSnapshot snap;
  snap.objects.push_back(
      object_with(ObjectId{0}, {{codec::Source{OpId{1}, 1}, 100}}));
  StorageSnapshot::ClientEntry c;
  c.id = ClientId{0};
  c.footprint.add(codec::Source{OpId{2}, 1}, 30);
  snap.clients.push_back(c);
  StorageSnapshot::InFlightEntry r;
  r.rmw = RmwId{1};
  r.client = ClientId{1};
  r.target = ObjectId{0};
  r.op = OpId{3};
  r.footprint.add(codec::Source{OpId{3}, 2}, 7);
  snap.in_flight.push_back(r);

  EXPECT_EQ(snap.object_bits(), 100u);
  EXPECT_EQ(snap.channel_bits(), 7u);
  EXPECT_EQ(snap.total_bits(), 137u);
  EXPECT_EQ(snap.bits_at_object(ObjectId{0}), 100u);
  EXPECT_EQ(snap.bits_at_object(ObjectId{9}), 0u);
}

TEST(Snapshot, ContributionCountsDistinctIndicesOnly) {
  StorageSnapshot snap;
  // The same block index stored at two objects counts once (Definition 6).
  snap.objects.push_back(
      object_with(ObjectId{0}, {{codec::Source{OpId{1}, 3}, 64}}));
  snap.objects.push_back(
      object_with(ObjectId{1}, {{codec::Source{OpId{1}, 3}, 64},
                                {codec::Source{OpId{1}, 4}, 64}}));
  EXPECT_EQ(snap.op_contribution_bits(OpId{1}, std::nullopt), 128u);
  EXPECT_EQ(snap.op_distinct_blocks_at_objects(OpId{1}), 2u);
}

TEST(Snapshot, ContributionExcludesOwnersState) {
  StorageSnapshot snap;
  StorageSnapshot::ClientEntry owner;
  owner.id = ClientId{5};
  owner.footprint.add(codec::Source{OpId{1}, 1}, 100);
  snap.clients.push_back(owner);
  StorageSnapshot::InFlightEntry rmw;
  rmw.client = ClientId{5};
  rmw.op = OpId{1};
  rmw.footprint.add(codec::Source{OpId{1}, 2}, 100);
  snap.in_flight.push_back(rmw);

  // Blocks held by the writer itself (including its channel payloads) do
  // not count toward ||S(t, w)||.
  EXPECT_EQ(snap.op_contribution_bits(OpId{1}, ClientId{5}), 0u);
  // ...but they do for everyone else's view.
  EXPECT_EQ(snap.op_contribution_bits(OpId{1}, ClientId{0}), 200u);
}

TEST(Snapshot, ContributionIgnoresOtherOps) {
  StorageSnapshot snap;
  snap.objects.push_back(
      object_with(ObjectId{0}, {{codec::Source{OpId{1}, 1}, 64},
                                {codec::Source{OpId{2}, 1}, 64}}));
  EXPECT_EQ(snap.op_contribution_bits(OpId{1}, std::nullopt), 64u);
  EXPECT_EQ(snap.op_contribution_bits(OpId{9}, std::nullopt), 0u);
}

TEST(Meter, TracksMaximaAndSeries) {
  StorageMeter meter(1);
  for (uint64_t bits : {10u, 50u, 30u}) {
    StorageSnapshot snap;
    snap.time = meter.observations();
    snap.objects.push_back(
        object_with(ObjectId{0}, {{codec::Source{OpId{1}, 1}, bits}}));
    meter.observe(snap);
  }
  EXPECT_EQ(meter.max_total_bits(), 50u);
  EXPECT_EQ(meter.max_object_bits(), 50u);
  EXPECT_EQ(meter.last_total_bits(), 30u);
  EXPECT_EQ(meter.max_object_time(), 1u);
  EXPECT_EQ(meter.series().size(), 3u);
}

TEST(Meter, ComponentTotalsOverloadMatchesSnapshotOverload) {
  // The O(1) component-totals path (fed by the simulator's incremental
  // accounting) must be observationally identical to the snapshot path.
  StorageMeter from_snaps(2);
  StorageMeter from_totals(2);
  for (uint64_t i = 0; i < 7; ++i) {
    StorageSnapshot snap;
    snap.time = i;
    snap.objects.push_back(
        object_with(ObjectId{0}, {{codec::Source{OpId{1}, 1}, 10 * i}}));
    StorageSnapshot::ClientEntry c;
    c.id = ClientId{0};
    c.footprint.add(codec::Source{OpId{2}, 1}, 3 * i);
    snap.clients.push_back(c);
    StorageSnapshot::InFlightEntry r;
    r.footprint.add(codec::Source{OpId{3}, 2}, 7 * i);
    snap.in_flight.push_back(r);

    from_snaps.observe(snap);
    from_totals.observe(i, 10 * i, 3 * i, 7 * i);
  }
  EXPECT_EQ(from_snaps.max_total_bits(), from_totals.max_total_bits());
  EXPECT_EQ(from_snaps.max_object_bits(), from_totals.max_object_bits());
  EXPECT_EQ(from_snaps.max_channel_bits(), from_totals.max_channel_bits());
  EXPECT_EQ(from_snaps.max_object_time(), from_totals.max_object_time());
  ASSERT_EQ(from_snaps.series().size(), from_totals.series().size());
  for (size_t i = 0; i < from_snaps.series().size(); ++i) {
    EXPECT_EQ(from_snaps.series()[i].total_bits,
              from_totals.series()[i].total_bits);
    EXPECT_EQ(from_snaps.series()[i].object_bits,
              from_totals.series()[i].object_bits);
    EXPECT_EQ(from_snaps.series()[i].channel_bits,
              from_totals.series()[i].channel_bits);
  }
}

TEST(Meter, DecimatesSeriesButNotMaxima) {
  StorageMeter meter(10);
  for (uint64_t i = 0; i < 25; ++i) {
    StorageSnapshot snap;
    snap.time = i;
    snap.objects.push_back(
        object_with(ObjectId{0}, {{codec::Source{OpId{1}, 1}, i}}));
    meter.observe(snap);
  }
  EXPECT_EQ(meter.series().size(), 3u);  // t = 0, 10, 20
  EXPECT_EQ(meter.max_object_bits(), 24u);
}

}  // namespace
}  // namespace sbrs::metrics
