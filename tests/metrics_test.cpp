// Unit tests for the storage accounting layer: footprints, snapshots
// (Definitions 2 and 6), the meter, and the log-bucketed latency histogram.
#include <gtest/gtest.h>

#include "common/check.h"
#include "common/rng.h"
#include "metrics/latency_histogram.h"
#include "metrics/snapshot.h"
#include "metrics/storage_meter.h"

namespace sbrs::metrics {
namespace {

StorageSnapshot::ObjectEntry object_with(ObjectId id,
                                         std::vector<BlockInstance> blocks) {
  StorageSnapshot::ObjectEntry e;
  e.id = id;
  e.footprint.blocks = std::move(blocks);
  return e;
}

TEST(Footprint, TotalsAndMerge) {
  StorageFootprint a;
  a.add(codec::Source{OpId{1}, 1}, 100);
  a.add(codec::Source{OpId{1}, 2}, 50);
  EXPECT_EQ(a.total_bits(), 150u);

  StorageFootprint b;
  b.add(codec::Source{OpId{2}, 1}, 10);
  a.merge(b);
  EXPECT_EQ(a.total_bits(), 160u);
  EXPECT_EQ(a.blocks.size(), 3u);
  EXPECT_FALSE(a.empty());
  EXPECT_TRUE(StorageFootprint{}.empty());
}

TEST(Snapshot, TotalSplitsAcrossComponents) {
  StorageSnapshot snap;
  snap.objects.push_back(
      object_with(ObjectId{0}, {{codec::Source{OpId{1}, 1}, 100}}));
  StorageSnapshot::ClientEntry c;
  c.id = ClientId{0};
  c.footprint.add(codec::Source{OpId{2}, 1}, 30);
  snap.clients.push_back(c);
  StorageSnapshot::InFlightEntry r;
  r.rmw = RmwId{1};
  r.client = ClientId{1};
  r.target = ObjectId{0};
  r.op = OpId{3};
  r.footprint.add(codec::Source{OpId{3}, 2}, 7);
  snap.in_flight.push_back(r);

  EXPECT_EQ(snap.object_bits(), 100u);
  EXPECT_EQ(snap.channel_bits(), 7u);
  EXPECT_EQ(snap.total_bits(), 137u);
  EXPECT_EQ(snap.bits_at_object(ObjectId{0}), 100u);
  EXPECT_EQ(snap.bits_at_object(ObjectId{9}), 0u);
}

TEST(Snapshot, ContributionCountsDistinctIndicesOnly) {
  StorageSnapshot snap;
  // The same block index stored at two objects counts once (Definition 6).
  snap.objects.push_back(
      object_with(ObjectId{0}, {{codec::Source{OpId{1}, 3}, 64}}));
  snap.objects.push_back(
      object_with(ObjectId{1}, {{codec::Source{OpId{1}, 3}, 64},
                                {codec::Source{OpId{1}, 4}, 64}}));
  EXPECT_EQ(snap.op_contribution_bits(OpId{1}, std::nullopt), 128u);
  EXPECT_EQ(snap.op_distinct_blocks_at_objects(OpId{1}), 2u);
}

TEST(Snapshot, ContributionExcludesOwnersState) {
  StorageSnapshot snap;
  StorageSnapshot::ClientEntry owner;
  owner.id = ClientId{5};
  owner.footprint.add(codec::Source{OpId{1}, 1}, 100);
  snap.clients.push_back(owner);
  StorageSnapshot::InFlightEntry rmw;
  rmw.client = ClientId{5};
  rmw.op = OpId{1};
  rmw.footprint.add(codec::Source{OpId{1}, 2}, 100);
  snap.in_flight.push_back(rmw);

  // Blocks held by the writer itself (including its channel payloads) do
  // not count toward ||S(t, w)||.
  EXPECT_EQ(snap.op_contribution_bits(OpId{1}, ClientId{5}), 0u);
  // ...but they do for everyone else's view.
  EXPECT_EQ(snap.op_contribution_bits(OpId{1}, ClientId{0}), 200u);
}

TEST(Snapshot, ContributionIgnoresOtherOps) {
  StorageSnapshot snap;
  snap.objects.push_back(
      object_with(ObjectId{0}, {{codec::Source{OpId{1}, 1}, 64},
                                {codec::Source{OpId{2}, 1}, 64}}));
  EXPECT_EQ(snap.op_contribution_bits(OpId{1}, std::nullopt), 64u);
  EXPECT_EQ(snap.op_contribution_bits(OpId{9}, std::nullopt), 0u);
}

TEST(Meter, TracksMaximaAndSeries) {
  StorageMeter meter(1);
  for (uint64_t bits : {10u, 50u, 30u}) {
    StorageSnapshot snap;
    snap.time = meter.observations();
    snap.objects.push_back(
        object_with(ObjectId{0}, {{codec::Source{OpId{1}, 1}, bits}}));
    meter.observe(snap);
  }
  EXPECT_EQ(meter.max_total_bits(), 50u);
  EXPECT_EQ(meter.max_object_bits(), 50u);
  EXPECT_EQ(meter.last_total_bits(), 30u);
  EXPECT_EQ(meter.max_object_time(), 1u);
  EXPECT_EQ(meter.series().size(), 3u);
}

TEST(Meter, ComponentTotalsOverloadMatchesSnapshotOverload) {
  // The O(1) component-totals path (fed by the simulator's incremental
  // accounting) must be observationally identical to the snapshot path.
  StorageMeter from_snaps(2);
  StorageMeter from_totals(2);
  for (uint64_t i = 0; i < 7; ++i) {
    StorageSnapshot snap;
    snap.time = i;
    snap.objects.push_back(
        object_with(ObjectId{0}, {{codec::Source{OpId{1}, 1}, 10 * i}}));
    StorageSnapshot::ClientEntry c;
    c.id = ClientId{0};
    c.footprint.add(codec::Source{OpId{2}, 1}, 3 * i);
    snap.clients.push_back(c);
    StorageSnapshot::InFlightEntry r;
    r.footprint.add(codec::Source{OpId{3}, 2}, 7 * i);
    snap.in_flight.push_back(r);

    from_snaps.observe(snap);
    from_totals.observe(i, 10 * i, 3 * i, 7 * i);
  }
  EXPECT_EQ(from_snaps.max_total_bits(), from_totals.max_total_bits());
  EXPECT_EQ(from_snaps.max_object_bits(), from_totals.max_object_bits());
  EXPECT_EQ(from_snaps.max_channel_bits(), from_totals.max_channel_bits());
  EXPECT_EQ(from_snaps.max_object_time(), from_totals.max_object_time());
  ASSERT_EQ(from_snaps.series().size(), from_totals.series().size());
  for (size_t i = 0; i < from_snaps.series().size(); ++i) {
    EXPECT_EQ(from_snaps.series()[i].total_bits,
              from_totals.series()[i].total_bits);
    EXPECT_EQ(from_snaps.series()[i].object_bits,
              from_totals.series()[i].object_bits);
    EXPECT_EQ(from_snaps.series()[i].channel_bits,
              from_totals.series()[i].channel_bits);
  }
}

TEST(Meter, DecimatesSeriesButNotMaxima) {
  StorageMeter meter(10);
  for (uint64_t i = 0; i < 25; ++i) {
    StorageSnapshot snap;
    snap.time = i;
    snap.objects.push_back(
        object_with(ObjectId{0}, {{codec::Source{OpId{1}, 1}, i}}));
    meter.observe(snap);
  }
  EXPECT_EQ(meter.series().size(), 3u);  // t = 0, 10, 20
  EXPECT_EQ(meter.max_object_bits(), 24u);
}

TEST(LatencyHistogram, BucketBoundaries) {
  const uint32_t p = 3;  // 8 unit buckets, then 8 sub-buckets per octave
  // Values below 2^p land in exact unit buckets.
  for (uint64_t v = 0; v < 8; ++v) {
    EXPECT_EQ(LatencyHistogram::bucket_index(v, p), v);
    EXPECT_EQ(LatencyHistogram::bucket_lower(v, p), v);
    EXPECT_EQ(LatencyHistogram::bucket_upper(v, p), v);
  }
  // The first octave [8, 16) is still exact (sub-bucket width 1)...
  for (uint64_t v = 8; v < 16; ++v) {
    const size_t idx = LatencyHistogram::bucket_index(v, p);
    EXPECT_EQ(idx, v);
    EXPECT_EQ(LatencyHistogram::bucket_lower(idx, p), v);
    EXPECT_EQ(LatencyHistogram::bucket_upper(idx, p), v);
  }
  // ...then [16, 32) has 8 buckets of width 2: 16 and 17 share a bucket.
  EXPECT_EQ(LatencyHistogram::bucket_index(16, p),
            LatencyHistogram::bucket_index(17, p));
  EXPECT_NE(LatencyHistogram::bucket_index(17, p),
            LatencyHistogram::bucket_index(18, p));
  EXPECT_EQ(LatencyHistogram::bucket_lower(LatencyHistogram::bucket_index(16, p), p),
            16u);
  EXPECT_EQ(LatencyHistogram::bucket_upper(LatencyHistogram::bucket_index(16, p), p),
            17u);
  // Buckets tile the range with no gaps or overlaps across octaves.
  for (size_t idx = 0; idx < 64; ++idx) {
    EXPECT_EQ(LatencyHistogram::bucket_lower(idx + 1, p),
              LatencyHistogram::bucket_upper(idx, p) + 1)
        << "gap/overlap at bucket " << idx;
  }
  // The relative quantization error is bounded by 2^-p.
  for (uint64_t v : {100u, 1000u, 123456u, 87654321u}) {
    const size_t idx = LatencyHistogram::bucket_index(v, p);
    const uint64_t lo = LatencyHistogram::bucket_lower(idx, p);
    const uint64_t hi = LatencyHistogram::bucket_upper(idx, p);
    EXPECT_LE(lo, v);
    EXPECT_GE(hi, v);
    EXPECT_LE(hi - lo + 1, (lo >> p) + 1) << "bucket too wide at " << v;
  }
}

TEST(LatencyHistogram, PercentilesOnKnownInputs) {
  LatencyHistogram h;
  // 1..100 with default precision (128 unit buckets): everything exact.
  for (uint64_t v = 1; v <= 100; ++v) h.record(v);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
  EXPECT_EQ(h.p50(), 50u);
  EXPECT_EQ(h.p90(), 90u);
  EXPECT_EQ(h.p99(), 99u);
  EXPECT_EQ(h.percentile(1.0), 100u);
  EXPECT_EQ(h.percentile(0.0), 1u);

  // A single value answers every quantile with itself.
  LatencyHistogram one;
  one.record(7);
  EXPECT_EQ(one.p50(), 7u);
  EXPECT_EQ(one.p999(), 7u);

  // Empty histogram: all zeros, no crash.
  LatencyHistogram empty;
  EXPECT_EQ(empty.count(), 0u);
  EXPECT_EQ(empty.p99(), 0u);
  EXPECT_EQ(empty.mean(), 0.0);

  // Out-of-linear-range values stay within their bucket's bounds and never
  // exceed the recorded max.
  LatencyHistogram big;
  big.record(1'000'000);
  big.record(2'000'000);
  EXPECT_LE(big.p50(), 1'000'000u + (1'000'000u >> big.precision_bits()));
  EXPECT_GE(big.p50(), 1'000'000u);
  EXPECT_EQ(big.percentile(1.0), 2'000'000u);
}

TEST(LatencyHistogram, MergeEqualsHistogramOfUnion) {
  Rng rng(77);
  LatencyHistogram a, b, both;
  for (int i = 0; i < 3000; ++i) {
    // Mixed magnitudes: unit-bucket values and multi-octave values.
    const uint64_t v = rng.chance(1, 3) ? rng.below(100)
                                        : rng.below(5'000'000);
    if (rng.chance(1, 2)) {
      a.record(v);
    } else {
      b.record(v);
    }
    both.record(v);
  }
  LatencyHistogram merged = a;
  merged.merge(b);
  EXPECT_TRUE(merged == both);
  EXPECT_EQ(merged.count(), both.count());
  EXPECT_EQ(merged.min(), both.min());
  EXPECT_EQ(merged.max(), both.max());
  EXPECT_DOUBLE_EQ(merged.mean(), both.mean());
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    EXPECT_EQ(merged.percentile(q), both.percentile(q)) << "q=" << q;
  }
  // Merging an empty histogram is the identity.
  LatencyHistogram empty;
  merged.merge(empty);
  EXPECT_TRUE(merged == both);
  empty.merge(both);
  EXPECT_TRUE(empty == both);
  // Different precisions refuse to merge.
  LatencyHistogram coarse(4);
  EXPECT_THROW(coarse.merge(both), CheckFailure);
}

// The empty-histogram contract: every accessor (percentile included, at any
// quantile) returns 0, touches no bucket storage, and never reads past the
// bucket array. Exporters call p50/p99/p999 on histograms that may have
// recorded nothing (e.g. degraded_sojourn on a crash-free run), so this is
// load-bearing, not decorative.
TEST(LatencyHistogram, EmptyHistogramPercentilesAreZero) {
  const LatencyHistogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_TRUE(h.counts().empty()) << "no bucket storage allocated";
  for (double q : {0.0, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    EXPECT_EQ(h.percentile(q), 0u) << "q=" << q;
  }
  // Out-of-range quantiles are clamped, not misread.
  EXPECT_EQ(h.percentile(-1.0), 0u);
  EXPECT_EQ(h.percentile(2.0), 0u);
}

TEST(LatencyHistogram, SingleSamplePercentilesAreThatSample) {
  for (const uint64_t v : {0ull, 1ull, 42ull, 1'000'000ull}) {
    LatencyHistogram h;
    h.record(v);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.min(), v);
    EXPECT_EQ(h.max(), v);
    EXPECT_DOUBLE_EQ(h.mean(), static_cast<double>(v));
    for (double q : {0.0, 0.5, 0.99, 1.0}) {
      // Clamped to the true max: exact even above the unit-bucket range.
      EXPECT_EQ(h.percentile(q), v) << "v=" << v << " q=" << q;
    }
  }
}

TEST(LatencyHistogram, MergingEmptyIntoPopulatedIsIdentity) {
  LatencyHistogram populated;
  for (uint64_t v : {3u, 7u, 9000u}) populated.record(v);
  const LatencyHistogram before = populated;

  LatencyHistogram empty;
  populated.merge(empty);  // empty into populated: all stats unchanged
  EXPECT_TRUE(populated == before);
  EXPECT_EQ(populated.min(), 3u);
  EXPECT_EQ(populated.max(), 9000u);
  EXPECT_EQ(populated.p50(), 7u);

  empty.merge(populated);  // populated into empty: adopts min/max/buckets
  EXPECT_TRUE(empty == before);
  EXPECT_EQ(empty.min(), 3u);

  LatencyHistogram a, b;
  a.merge(b);  // empty into empty stays empty
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(a.percentile(0.99), 0u);
}

}  // namespace
}  // namespace sbrs::metrics
