// Tests for the CSV export helpers.
#include <gtest/gtest.h>

#include <sstream>

#include "common/check.h"
#include "harness/export.h"

namespace sbrs::harness {
namespace {

metrics::StorageSample sample(uint64_t t, uint64_t total, uint64_t obj,
                              uint64_t chan) {
  metrics::StorageSample s;
  s.time = t;
  s.total_bits = total;
  s.object_bits = obj;
  s.channel_bits = chan;
  return s;
}

TEST(Export, SeriesCsvFormat) {
  std::ostringstream os;
  const size_t rows = write_series_csv(
      os, {sample(0, 10, 6, 4), sample(1, 20, 12, 8)});
  EXPECT_EQ(rows, 2u);
  EXPECT_EQ(os.str(),
            "time,total_bits,object_bits,channel_bits\n"
            "0,10,6,4\n"
            "1,20,12,8\n");
}

TEST(Export, SweepCsvFormat) {
  std::ostringstream os;
  std::vector<SweepRow> rows = {{1.0, {100, 200}}, {2.0, {150, 250}}};
  const size_t n = write_sweep_csv(os, "c", {"measured", "bound"}, rows);
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(os.str(),
            "c,measured,bound\n"
            "1,100,200\n"
            "2,150,250\n");
}

TEST(Export, SweepCsvRejectsArityMismatch) {
  std::ostringstream os;
  std::vector<SweepRow> rows = {{1.0, {100}}};
  EXPECT_THROW(write_sweep_csv(os, "c", {"a", "b"}, rows), CheckFailure);
}

TEST(Export, DownsampleKeepsEndpointsAndBound) {
  std::vector<metrics::StorageSample> series;
  for (uint64_t t = 0; t < 100; ++t) series.push_back(sample(t, t, t, 0));
  auto ds = downsample(series, 10);
  ASSERT_EQ(ds.size(), 10u);
  EXPECT_EQ(ds.front().time, 0u);
  EXPECT_EQ(ds.back().time, 99u);
  for (size_t i = 1; i < ds.size(); ++i) {
    EXPECT_LT(ds[i - 1].time, ds[i].time);
  }
}

TEST(Export, DownsampleNoopWhenSmall) {
  std::vector<metrics::StorageSample> series = {sample(0, 1, 1, 0),
                                                sample(1, 2, 2, 0)};
  EXPECT_EQ(downsample(series, 10).size(), 2u);
  EXPECT_EQ(downsample(series, 1).size(), 2u);  // max_points < 2: unchanged
}

}  // namespace
}  // namespace sbrs::harness
