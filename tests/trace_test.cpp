// Structured-trace tests: recorder span lifecycles driven through real
// register runs, Chrome trace_event export shape, determinism pins (same
// seed -> byte-identical trace; store traces byte-identical across worker
// thread counts), the golden partition-heal interval pin against a
// scripted fault timeline, the disabled path's fingerprint neutrality, the
// campaign bundle's trace.json, and the sweep/campaign progress heartbeat.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstddef>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/stop_reason.h"
#include "harness/campaign.h"
#include "harness/runner.h"
#include "harness/scenario.h"
#include "harness/sweep.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "store/store.h"
#include "sim/linkfault.h"

#ifndef SBRS_SOURCE_DIR
#error "SBRS_SOURCE_DIR must point at the repository root"
#endif

namespace sbrs {
namespace {

namespace fs = std::filesystem;

registers::RegisterConfig small_cfg() {
  registers::RegisterConfig cfg;
  cfg.f = 1;
  cfg.k = 2;
  cfg.n = 4;
  cfg.data_bits = 64;
  return cfg;
}

harness::RunOptions base_opts(uint64_t seed) {
  harness::RunOptions opts;
  opts.writers = 2;
  opts.writes_per_client = 5;
  opts.readers = 2;
  opts.reads_per_client = 5;
  opts.seed = seed;
  return opts;
}

std::string shipped(const char* name) {
  return std::string(SBRS_SOURCE_DIR) + "/scenarios/" + name;
}

std::string trace_json_of(const obs::TraceRecorder& rec) {
  std::ostringstream os;
  obs::write_trace_json(os, rec);
  return os.str();
}

size_t count_of(const std::string& hay, const std::string& needle) {
  size_t n = 0;
  for (size_t pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

/// A scratch directory removed on scope exit.
struct TempDir {
  fs::path path;
  TempDir() {
    path = fs::temp_directory_path() /
           ("sbrs-trace-test-" + std::to_string(::getpid()));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
};

std::string read_file(const fs::path& path) {
  std::ifstream is(path);
  EXPECT_TRUE(is.good()) << path;
  std::ostringstream buf;
  buf << is.rdbuf();
  return buf.str();
}

// --- Recorder span lifecycles through a real run ---

TEST(TraceRecorder, OpAndRmwSpansCloseOnAQuiescedRun) {
  auto algorithm = harness::make_algorithm("adaptive", small_cfg());
  harness::RunOptions opts = base_opts(11);
  obs::TraceRecorder rec;
  opts.trace = &rec;
  auto out = harness::run_register_experiment(*algorithm, opts);
  ASSERT_TRUE(out.live);
  EXPECT_EQ(out.report.stop_reason, kStopQuiesced);

  // Every invoked operation produced a span, and every span closed with
  // invoke/return ordered around the arrival.
  EXPECT_EQ(rec.ops().size(), out.report.invoked_ops);
  for (const auto& op : rec.ops()) {
    EXPECT_NE(op.ret, obs::TraceRecorder::kOpen);
    EXPECT_LE(op.arrival, op.invoke);
    EXPECT_LE(op.invoke, op.ret);
    EXPECT_FALSE(op.degraded);  // fault-free run
  }
  // Every triggered RMW span closed as delivered (no faults configured).
  EXPECT_EQ(rec.rmws().size(), out.report.rmws_triggered);
  for (const auto& rmw : rec.rmws()) {
    EXPECT_NE(rmw.end, obs::TraceRecorder::kOpen);
    EXPECT_LE(rmw.trigger, rmw.end);
    EXPECT_EQ(rmw.outcome, obs::RmwOutcome::kDelivered);
    EXPECT_FALSE(rmw.dropped);
  }
  EXPECT_TRUE(rec.partitions().empty());
  EXPECT_TRUE(rec.instants().empty());
  // finish() pinned the trace end to the run's final step.
  EXPECT_EQ(rec.end_step(), out.report.steps);
  // The per-step registry sampled throughout the run.
  ASSERT_FALSE(rec.series().empty());
  for (const auto& s : rec.series()) {
    EXPECT_LE(s.step, out.report.steps);
    EXPECT_EQ(s.queue_depth, 0u);  // closed-loop: no arrival queue
  }
}

TEST(TraceRecorder, DropsAndCrashInstantsAreRecorded) {
  registers::RegisterConfig cfg = small_cfg();
  cfg.f = 2;
  cfg.n = 2 * cfg.f + cfg.k;
  auto algorithm = harness::make_algorithm("adaptive", cfg);
  harness::RunOptions opts = base_opts(5);
  opts.link_faults.drop_permyriad = 2'000;
  opts.link_faults.max_drops = 4;
  opts.object_crashes = 1;
  obs::TraceRecorder rec;
  opts.trace = &rec;
  auto out = harness::run_register_experiment(*algorithm, opts);

  size_t dropped = 0;
  for (const auto& rmw : rec.rmws()) {
    if (rmw.outcome == obs::RmwOutcome::kDropped) {
      ++dropped;
      EXPECT_TRUE(rmw.dropped);
    }
  }
  EXPECT_EQ(dropped, out.report.rmws_dropped);

  size_t crashes = 0;
  for (const auto& i : rec.instants()) {
    if (i.kind == obs::TraceRecorder::Instant::Kind::kObjectCrash) ++crashes;
  }
  EXPECT_EQ(crashes, out.report.object_crash_events);
}

// --- The golden partition-heal pin ---

TEST(TraceGolden, ScriptedPartitionIntervalMatchesFaultTimeline) {
  // partition_object at=400 heal_after=500: the auto-heal fires when the
  // fault table advances to step 900, so EVERY recorded partition interval
  // must be exactly [400, 900] — the span begin/end are the fault timeline,
  // not approximations of it.
  auto algorithm = harness::make_algorithm("adaptive", small_cfg());
  harness::RunOptions opts = base_opts(7);
  opts.writes_per_client = 6;
  opts.reads_per_client = 6;
  sim::FaultEvent cut;
  cut.kind = sim::FaultEvent::Kind::kPartitionObject;
  cut.at = 400;
  cut.object = 0;
  cut.heal_after = 500;
  opts.fault_timeline = {cut};
  obs::TraceRecorder rec;
  opts.trace = &rec;
  auto out = harness::run_register_experiment(*algorithm, opts);
  ASSERT_TRUE(out.live);

  ASSERT_EQ(rec.partitions().size(), 4u);  // one link span per client
  for (const auto& span : rec.partitions()) {
    EXPECT_EQ(span.object.value, 0u);
    EXPECT_EQ(span.begin, 400u);
    EXPECT_EQ(span.end, 900u);
  }

  // And the exported JSON pins the same numbers as b/e event timestamps.
  const std::string json = trace_json_of(rec);
  EXPECT_EQ(count_of(json, "\"cat\":\"partition\",\"ph\":\"b\""), 4u);
  EXPECT_EQ(count_of(json, "\"ph\":\"b\",\"id\":0,\"ts\":400"), 1u);
  EXPECT_EQ(count_of(json, "\"ph\":\"e\",\"id\":0,\"ts\":900"), 1u);
}

// --- Determinism pins ---

TEST(TraceDeterminism, SameSeedSameBytes) {
  const harness::Scenario scenario =
      harness::load_scenario(shipped("partition-heal.json"));
  std::string a, b;
  harness::run_scenario(scenario, 7, &a);
  harness::run_scenario(scenario, 7, &b);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  // A different seed produces a different trace (the schedule moved).
  std::string c;
  harness::run_scenario(scenario, 8, &c);
  EXPECT_NE(a, c);
  // The document carries the spans the scenario is about.
  EXPECT_GT(count_of(a, "\"cat\":\"op\""), 0u);
  EXPECT_GT(count_of(a, "\"cat\":\"rmw\""), 0u);
  EXPECT_GT(count_of(a, "\"cat\":\"partition\""), 0u);
  EXPECT_GT(count_of(a, "\"ph\":\"C\""), 0u);
  EXPECT_EQ(a.rfind("{\"traceEvents\":[", 0), 0u);
}

TEST(TraceDeterminism, StoreTraceIdenticalAcrossThreadCounts) {
  store::StoreOptions base;
  base.algorithm = "adaptive";
  base.register_config = small_cfg();
  base.num_shards = 4;
  base.workload.num_keys = 24;
  base.workload.clients = 3;
  base.workload.ops_per_client = 16;
  base.workload.seed = 17;
  base.seed = 17;
  base.object_crashes_per_shard = 1;
  base.restart_after = 200;
  base.partitions_per_shard = 1;
  base.heal_after = 150;
  base.trace = true;

  std::vector<std::string> docs;
  for (uint32_t threads : {1u, 4u, 9u}) {
    store::StoreOptions opts = base;
    opts.threads = threads;
    store::Store engine(opts);
    engine.run();
    std::ostringstream os;
    store::write_store_trace_json(os, engine);
    docs.push_back(os.str());
  }
  ASSERT_FALSE(docs[0].empty());
  EXPECT_EQ(docs[0], docs[1]);
  EXPECT_EQ(docs[0], docs[2]);
  // One process per shard, merged in shard-index order.
  EXPECT_EQ(count_of(docs[0], "\"name\":\"process_name\""), 4u);
  EXPECT_LT(docs[0].find("\"shard0\""), docs[0].find("\"shard3\""));
}

TEST(TraceDeterminism, DisabledPathKeepsRunFingerprints) {
  // Attaching a recorder must be purely observational: the traced run's
  // outcome fingerprint (history, storage maxima, verdicts) is identical
  // to the untraced run's — the null-sink path changes no behavior.
  harness::RunOptions opts = base_opts(23);
  opts.partitions = 2;
  opts.heal_after = 150;

  auto plain_alg = harness::make_algorithm("adaptive", small_cfg());
  auto plain = harness::run_register_experiment(*plain_alg, opts);

  obs::TraceRecorder rec;
  opts.trace = &rec;
  auto traced_alg = harness::make_algorithm("adaptive", small_cfg());
  auto traced = harness::run_register_experiment(*traced_alg, opts);

  EXPECT_EQ(harness::outcome_fingerprint(plain),
            harness::outcome_fingerprint(traced));
  EXPECT_EQ(plain.report.steps, traced.report.steps);
  EXPECT_FALSE(rec.ops().empty());
}

// --- Export shape ---

TEST(TraceExport, TimeseriesCsvHasOneRowPerSample) {
  auto algorithm = harness::make_algorithm("adaptive", small_cfg());
  harness::RunOptions opts = base_opts(3);
  opts.sample_every = 8;
  obs::TraceRecorder rec;
  opts.trace = &rec;
  harness::run_register_experiment(*algorithm, opts);

  std::ostringstream os;
  obs::write_timeseries_csv(os, {{&rec, 0, "sim"}});
  const std::string csv = os.str();
  std::istringstream lines(csv);
  std::string header;
  ASSERT_TRUE(std::getline(lines, header));
  EXPECT_EQ(header,
            "process,step,in_flight_rmws,queue_depth,backlog,total_bits,"
            "object_bits,channel_bits,crashed_objects,cut_links");
  size_t rows = 0;
  for (std::string line; std::getline(lines, line);) ++rows;
  EXPECT_EQ(rows, rec.series().size());
  EXPECT_GT(rows, 0u);
}

TEST(TraceExport, AnnotationsBecomeProcessLabels) {
  obs::TraceRecorder rec;
  rec.op_invoke(1, OpId{0}, ClientId{0}, true, 0);
  rec.op_return(5, OpId{0}, false);
  rec.finish(5);
  rec.annotate("scenario", "demo");
  const std::string json = trace_json_of(rec);
  EXPECT_NE(json.find("\"process_labels\""), std::string::npos);
  EXPECT_NE(json.find("scenario=demo"), std::string::npos);
}

TEST(TraceExport, OpenSpansClampToEndStepAndAreFlagged) {
  // A mid-run export (what a CheckFailure triage path sees): the op span
  // never returned, so it clamps to the last recorded step and is flagged.
  obs::TraceRecorder rec;
  rec.op_invoke(10, OpId{0}, ClientId{0}, true, 4);
  rec.rmw_trigger(12, RmwId{0}, OpId{0}, ClientId{0}, ObjectId{1}, 64, 12,
                  false);
  rec.finish(40);
  const std::string json = trace_json_of(rec);
  EXPECT_NE(json.find("\"open\":true"), std::string::npos);
  EXPECT_NE(json.find("\"outcome\":\"in-flight\""), std::string::npos);
  EXPECT_EQ(rec.end_step(), 40u);
}

// --- Campaign integration ---

TEST(TraceCampaign, FailedRunBundleCarriesReproducibleTraceJson) {
  TempDir tmp;
  // A deliberately impossible storage expectation: every seed fails, every
  // failure gets a bundle.
  const std::string text = R"({
    "name": "trace-canary",
    "mode": "register",
    "algorithm": "adaptive",
    "config": {"f": 1, "k": 2, "data_bits": 64},
    "workload": {"writers": 2, "writes_per_client": 2,
                 "readers": 1, "reads_per_client": 2},
    "seed": 3,
    "expect": {"max_total_bits": 1}
  })";
  const fs::path file = tmp.path / "trace-canary.json";
  std::ofstream(file) << text;

  harness::CampaignOptions opts;
  opts.scenario_files = {file.string()};
  opts.seeds_per_scenario = 1;
  opts.base_seed = 9;
  opts.threads = 2;
  opts.bundle_dir = (tmp.path / "bundles").string();
  const harness::CampaignResult result = harness::run_campaign(opts);
  ASSERT_EQ(result.failures, 1u);
  ASSERT_FALSE(result.runs[0].bundle_path.empty());

  const fs::path bundle_trace =
      fs::path(result.runs[0].bundle_path) / "trace.json";
  ASSERT_TRUE(fs::exists(bundle_trace));
  const std::string bundled = read_file(bundle_trace);
  EXPECT_GT(count_of(bundled, "\"cat\":\"op\""), 0u);

  // The bundle's trace is exactly what re-running the pinned (scenario,
  // seed) with tracing produces — the repro command's output matches.
  const harness::Scenario scenario = harness::load_scenario(file.string());
  std::string replay;
  harness::run_scenario(scenario, result.runs[0].seed, &replay);
  EXPECT_EQ(bundled, replay);
}

// --- Progress heartbeat plumbing ---

TEST(Progress, SweepReportsEveryCompletedRun) {
  harness::SweepCell cell;
  cell.algorithm = "adaptive";
  cell.config = small_cfg();
  cell.opts = base_opts(1);
  std::vector<harness::SweepCell> grid = {cell, cell};

  harness::SweepOptions so;
  so.threads = 2;
  so.seeds_per_cell = 3;
  size_t calls = 0, last_done = 0, last_total = 0, last_failures = 1;
  so.progress = [&](size_t done, size_t total, size_t failures) {
    ++calls;
    EXPECT_GT(done, last_done);  // under the mutex, done is monotonic
    last_done = done;
    last_total = total;
    last_failures = failures;
  };
  harness::SweepRunner(so).run(grid);
  EXPECT_EQ(calls, 6u);
  EXPECT_EQ(last_done, 6u);
  EXPECT_EQ(last_total, 6u);
  EXPECT_EQ(last_failures, 0u);
}

TEST(Progress, CampaignReportsEveryCompletedRun) {
  harness::CampaignOptions opts;
  opts.scenario_files = {shipped("partition-heal.json")};
  opts.seeds_per_scenario = 2;
  opts.threads = 2;
  size_t calls = 0, last_done = 0;
  opts.progress = [&](size_t done, size_t total, size_t failures) {
    ++calls;
    EXPECT_GT(done, last_done);
    last_done = done;
    EXPECT_EQ(total, 2u);
    EXPECT_EQ(failures, 0u);
  };
  const harness::CampaignResult result = harness::run_campaign(opts);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(calls, 2u);
  EXPECT_EQ(last_done, 2u);
}

}  // namespace
}  // namespace sbrs
