// Store-level checker cross-validation: randomized open-loop multi-key
// runs — including crash-heavy schedules — whose shard histories are split
// per key and pushed through the consistency-checker hierarchy directly.
// Complements checker_fuzz_test.cpp (single-register mutation fuzzing):
// here the histories come out of the sharded multiplexer under queued
// open-loop dispatch, so the split itself, the per-key isolation, and the
// checkers' tolerance of arrival-queued interleavings are all on trial —
// plus a mutation pass proving a corrupted per-key history is still caught
// (the split must not launder corruption into something the checkers
// accept).
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "consistency/checker.h"
#include "harness/algorithms.h"
#include "store/store.h"
#include "sim/history.h"
#include "sim/arrival.h"

namespace sbrs::store {
namespace {

StoreOptions fuzz_options(const std::string& alg, uint64_t seed,
                          bool crash_heavy, bool with_restarts = false) {
  StoreOptions opts;
  opts.algorithm = alg;
  opts.register_config.f = 2;
  opts.register_config.k = 2;
  opts.register_config.n = 6;
  opts.register_config.data_bits = 96;
  opts.num_shards = 3;
  opts.workload.num_keys = 24;
  opts.workload.clients = 4;
  opts.workload.ops_per_client = 20;
  opts.workload.mix = ycsb::Mix::kA;  // write-heavy: order bugs surface
  opts.workload.distribution = ycsb::Distribution::kZipfian;
  opts.workload.seed = seed;
  opts.seed = seed;
  opts.threads = 2;
  // The store runs its own per-key pass too; keep it on so the fuzz also
  // cross-checks our external verdicts against the engine's counters.
  opts.check_consistency = true;
  // Crash-heavy schedules: up to f objects per shard die mid-run.
  opts.object_crashes_per_shard = crash_heavy ? 2 : 0;
  // Randomized open-loop arrival shape, derived from the fuzz seed.
  Rng rng(seed);
  // Interleaved restarts: crashed objects come back from disk after a
  // randomized (seed-derived) delay, re-joining mid-stream with stale
  // per-key sub-states that later rounds overwrite.
  if (with_restarts) {
    opts.restart_after = 32 + rng.below(96);
  }
  switch (rng.below(3)) {
    case 0:
      opts.arrival.process = sim::ArrivalProcess::kFixedRate;
      break;
    case 1:
      opts.arrival.process = sim::ArrivalProcess::kBursty;
      opts.arrival.burst_on = 8 + rng.below(32);
      opts.arrival.burst_off = 16 + rng.below(64);
      break;
    default:
      opts.arrival.process = sim::ArrivalProcess::kPoisson;
      break;
  }
  // 0.02 .. 0.65 ops/step/shard: from trickle to well past saturation.
  opts.arrival.rate = 0.02 + static_cast<double>(rng.below(64)) / 100.0;
  return opts;
}

/// Run every split per-key history through the full hierarchy at the
/// algorithm's own guarantee; returns the number of keys checked.
size_t check_store_histories(const Store& store, const std::string& alg) {
  const auto guarantee = harness::expected_consistency(alg);
  size_t keys = 0;
  for (uint32_t s = 0; s < store.options().num_shards; ++s) {
    const auto by_key = split_history_by_key(store.shard_sim(s).history(),
                                             store.shard_op_keys(s));
    for (const auto& [key, sub] : by_key) {
      SCOPED_TRACE("shard " + std::to_string(s) + " key " +
                   std::to_string(key));
      EXPECT_TRUE(consistency::check_values_legal(sub).ok);
      switch (guarantee) {
        case harness::ConsistencyGuarantee::kStronglySafe:
          EXPECT_TRUE(consistency::check_strongly_safe(sub).ok);
          break;
        case harness::ConsistencyGuarantee::kWeakRegular:
          EXPECT_TRUE(consistency::check_weak_regularity(sub).ok);
          break;
        case harness::ConsistencyGuarantee::kStrongRegular:
          EXPECT_TRUE(consistency::check_weak_regularity(sub).ok);
          EXPECT_TRUE(consistency::check_strong_regularity(sub).ok);
          break;
      }
      ++keys;
    }
  }
  return keys;
}

TEST(StoreFuzz, OpenLoopHistoriesPassTheirGuaranteePerKey) {
  for (const std::string& alg : {"adaptive", "abd", "coded"}) {
    for (uint64_t seed = 1; seed <= 4; ++seed) {
      SCOPED_TRACE(alg + " seed " + std::to_string(seed));
      Store store(fuzz_options(alg, seed, /*crash_heavy=*/false));
      const StoreResult result = store.run();
      EXPECT_EQ(result.consistency_failures, 0u);
      EXPECT_TRUE(result.all_live);
      const size_t keys = check_store_histories(store, alg);
      EXPECT_GT(keys, 0u);
      EXPECT_EQ(keys, result.keys_checked)
          << "external split disagrees with the engine's per-key pass";
    }
  }
}

TEST(StoreFuzz, CrashHeavyOpenLoopSchedulesStillCheckOutPerKey) {
  for (const std::string& alg : {"adaptive", "coded-atomic", "safe"}) {
    for (uint64_t seed = 11; seed <= 14; ++seed) {
      SCOPED_TRACE(alg + " seed " + std::to_string(seed));
      Store store(fuzz_options(alg, seed, /*crash_heavy=*/true));
      const StoreResult result = store.run();
      // f objects per shard may die; every key must keep its guarantee
      // (liveness holds because crashes stay within f).
      EXPECT_EQ(result.consistency_failures, 0u);
      EXPECT_TRUE(result.all_live);
      check_store_histories(store, alg);
    }
  }
}

TEST(StoreFuzz, CrashRestartSchedulesStillCheckOutPerKey) {
  // Crash-heavy schedules with interleaved from-disk restarts: a restarted
  // object serves stale sub-states until fresh rounds overwrite them, and
  // every key must still keep the algorithm's own guarantee.
  uint64_t total_restarts = 0;
  for (const std::string& alg : {"adaptive", "abd", "coded-atomic"}) {
    for (uint64_t seed = 31; seed <= 34; ++seed) {
      SCOPED_TRACE(alg + " seed " + std::to_string(seed));
      Store store(fuzz_options(alg, seed, /*crash_heavy=*/true,
                               /*with_restarts=*/true));
      const StoreResult result = store.run();
      EXPECT_EQ(result.consistency_failures, 0u);
      EXPECT_TRUE(result.all_live);
      total_restarts += result.object_restarts;
      check_store_histories(store, alg);
    }
  }
  EXPECT_GT(total_restarts, 0u)
      << "the seeds must exercise at least one actual restart";
}

/// Rebuild a history with one read's returned value replaced (the
/// mutation-fuzz guard of checker_fuzz_test.cpp, applied to a split
/// per-key history).
sim::History mutate_read_value(const sim::History& h, OpId read_op,
                               const Value& new_value) {
  sim::History out;
  for (const auto& ev : h.events()) {
    if (ev.kind == sim::HistoryEvent::Kind::kInvoke) {
      sim::Invocation inv;
      inv.op = ev.op;
      inv.client = ev.client;
      inv.kind = ev.op_kind;
      inv.value = ev.value;
      out.record_invoke(ev.time, inv);
    } else {
      const bool target = ev.op == read_op && ev.op_kind == sim::OpKind::kRead;
      std::optional<Value> v;
      if (ev.op_kind == sim::OpKind::kRead) v = target ? new_value : ev.value;
      out.record_return(ev.time, ev.op, v);
    }
  }
  return out;
}

TEST(StoreFuzz, CorruptedPerKeyReadIsStillCaughtAfterTheSplit) {
  Store store(fuzz_options("adaptive", 21, /*crash_heavy=*/false));
  (void)store.run();
  Rng rng(21);
  size_t mutated = 0;
  for (uint32_t s = 0; s < store.options().num_shards; ++s) {
    const auto by_key = split_history_by_key(store.shard_sim(s).history(),
                                             store.shard_op_keys(s));
    for (const auto& [key, sub] : by_key) {
      const auto reads = sub.reads();
      if (reads.empty()) continue;
      const auto& victim = reads[rng.pick_index(reads)];
      if (!victim.complete()) continue;
      // A value no write anywhere produced.
      const auto corrupted = mutate_read_value(
          sub, victim.op,
          Value::from_tag(0xdead0000 + key,
                          store.options().register_config.data_bits));
      EXPECT_FALSE(consistency::check_values_legal(corrupted).ok)
          << "shard " << s << " key " << key;
      ++mutated;
    }
  }
  EXPECT_GT(mutated, 8u) << "the mutation pass should exercise many keys";
}

TEST(StoreFuzz, CorruptedPostRestartReadIsStillCaught) {
  // The split must not launder post-restart corruption either: corrupt only
  // reads invoked at or after the shard's first restart and require the
  // checkers to reject every one of them.
  size_t mutated = 0;
  for (uint64_t seed = 41; seed <= 44 && mutated < 6; ++seed) {
    Store store(fuzz_options("adaptive", seed, /*crash_heavy=*/true,
                             /*with_restarts=*/true));
    (void)store.run();
    Rng rng(seed);
    for (uint32_t s = 0; s < store.options().num_shards; ++s) {
      const sim::History& shard_history = store.shard_sim(s).history();
      // The shard's first restart step, if it had one.
      std::optional<uint64_t> restart_at;
      for (const auto& ev : shard_history.events()) {
        if (ev.kind == sim::HistoryEvent::Kind::kRestartObject) {
          restart_at = ev.time;
          break;
        }
      }
      if (!restart_at.has_value()) continue;
      const auto by_key =
          split_history_by_key(shard_history, store.shard_op_keys(s));
      for (const auto& [key, sub] : by_key) {
        std::vector<sim::OpRecord> late_reads;
        for (const auto& rec : sub.reads()) {
          if (rec.complete() && rec.invoke_time >= *restart_at) {
            late_reads.push_back(rec);
          }
        }
        if (late_reads.empty()) continue;
        const auto& victim = late_reads[rng.pick_index(late_reads)];
        const auto corrupted = mutate_read_value(
            sub, victim.op,
            Value::from_tag(0xbad0000 + key,
                            store.options().register_config.data_bits));
        EXPECT_FALSE(consistency::check_values_legal(corrupted).ok)
            << "shard " << s << " key " << key << " post-restart read";
        ++mutated;
      }
    }
  }
  EXPECT_GT(mutated, 0u)
      << "the seeds must yield post-restart reads to corrupt";
}

}  // namespace
}  // namespace sbrs::store
