// Unit tests for the sweep engine: metric aggregation, the parallel map,
// algorithm-by-name construction, grid execution, and the JSON export.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "common/check.h"
#include "harness/algorithms.h"
#include "harness/export.h"
#include "harness/sweep.h"

namespace sbrs::harness {
namespace {

registers::RegisterConfig cfg_small() {
  registers::RegisterConfig cfg;
  cfg.f = 1;
  cfg.k = 2;
  cfg.n = 4;
  cfg.data_bits = 128;
  return cfg;
}

TEST(MetricSummary, OrderStatistics) {
  std::vector<uint64_t> values;
  for (uint64_t v = 100; v >= 1; --v) values.push_back(v);  // 100..1
  const MetricSummary s = summarize_metric(values);
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, 100u);
  // Nearest-rank on the 0-based sorted sample: round(q * 99).
  EXPECT_EQ(s.p50, 51u);
  EXPECT_EQ(s.p90, 90u);
  EXPECT_EQ(s.p99, 99u);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
}

TEST(MetricSummary, SingleAndEmpty) {
  const MetricSummary one = summarize_metric({7});
  EXPECT_EQ(one.min, 7u);
  EXPECT_EQ(one.max, 7u);
  EXPECT_EQ(one.p50, 7u);
  EXPECT_EQ(one.p99, 7u);
  EXPECT_DOUBLE_EQ(one.mean, 7.0);
  const MetricSummary none = summarize_metric({});
  EXPECT_EQ(none.max, 0u);
}

TEST(ParallelMap, ResultsLandAtTheirIndex) {
  for (uint32_t threads : {1u, 4u, 32u}) {
    auto out = parallel_map(100, threads,
                            [](size_t i) { return i * i; });
    ASSERT_EQ(out.size(), 100u);
    for (size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
  }
}

TEST(ParallelMap, PropagatesWorkerExceptions) {
  EXPECT_THROW(parallel_map(16, 4,
                            [](size_t i) -> int {
                              if (i == 9) throw std::runtime_error("boom");
                              return 0;
                            }),
               std::runtime_error);
}

TEST(MakeAlgorithm, KnownNamesConstruct) {
  for (const auto& name : algorithm_names()) {
    auto alg = make_algorithm(name, cfg_small());
    ASSERT_NE(alg, nullptr) << name;
    EXPECT_FALSE(alg->name().empty());
  }
}

TEST(MakeAlgorithm, AbdForcesReplicationShape) {
  auto alg = make_algorithm("abd", cfg_small());
  EXPECT_EQ(alg->config().k, 1u);
  EXPECT_EQ(alg->config().n, 2 * cfg_small().f + 1);
}

TEST(MakeAlgorithm, UnknownNameThrows) {
  EXPECT_THROW(make_algorithm("paxos", cfg_small()), CheckFailure);
}

SweepResult tiny_sweep(uint32_t threads, uint32_t seeds) {
  std::vector<SweepCell> grid;
  for (uint32_t c : {1u, 2u}) {
    SweepCell cell;
    cell.algorithm = "adaptive";
    cell.config = cfg_small();
    cell.opts.writers = c;
    cell.opts.readers = 1;
    cell.label = "adaptive c=" + std::to_string(c);
    grid.push_back(std::move(cell));
  }
  SweepOptions so;
  so.threads = threads;
  so.seeds_per_cell = seeds;
  so.base_seed = 3;
  return SweepRunner(so).run(grid);
}

TEST(SweepRunner, AggregatesCellsInGridOrder) {
  const SweepResult result = tiny_sweep(/*threads=*/2, /*seeds=*/4);
  ASSERT_EQ(result.cells.size(), 2u);
  EXPECT_EQ(result.cells[0].cell.label, "adaptive c=1");
  EXPECT_EQ(result.cells[1].cell.label, "adaptive c=2");
  for (const auto& cell : result.cells) {
    EXPECT_EQ(cell.seeds, 4u);
    EXPECT_EQ(cell.consistency_failures, 0u) << cell.cell.label;
    EXPECT_EQ(cell.liveness_failures, 0u);
    EXPECT_EQ(cell.quiesced, 4u);
    EXPECT_GT(cell.steps.min, 0u);
    EXPECT_GT(cell.max_object_bits.max, 0u);
    EXPECT_GE(cell.max_total_bits.max, cell.max_object_bits.max);
    EXPECT_LE(cell.max_total_bits.p50, cell.max_total_bits.max);
    EXPECT_GT(cell.total_steps, 0u);
    EXPECT_NE(cell.fingerprint, 0u);
  }
  // More writers -> more storage pressure at the maximum.
  EXPECT_GE(result.cells[1].max_object_bits.max,
            result.cells[0].max_object_bits.max);
}

TEST(SweepRunner, SeedsProduceDistinctSchedules) {
  // Enough concurrency that the random scheduler's choices change the run
  // length: with 8 seeds the per-seed step counts must not all collapse to
  // a single value.
  SweepCell cell;
  cell.algorithm = "adaptive";
  cell.config = cfg_small();
  cell.opts.writers = 4;
  cell.opts.writes_per_client = 2;
  cell.opts.readers = 2;
  cell.opts.reads_per_client = 2;
  SweepOptions so;
  so.threads = 1;
  so.seeds_per_cell = 8;
  so.base_seed = 11;
  const SweepResult result = SweepRunner(so).run({cell});
  const auto& steps = result.cells[0].steps;
  EXPECT_LT(steps.min, steps.max);
}

TEST(SweepJson, ContainsGridAndSummaries) {
  const SweepResult result = tiny_sweep(/*threads=*/1, /*seeds=*/2);
  std::ostringstream os;
  write_sweep_json(os, result);
  const std::string json = os.str();

  EXPECT_NE(json.find("\"cells\": ["), std::string::npos);
  EXPECT_NE(json.find("\"label\": \"adaptive c=1\""), std::string::npos);
  EXPECT_NE(json.find("\"label\": \"adaptive c=2\""), std::string::npos);
  EXPECT_NE(json.find("\"max_object_bits\""), std::string::npos);
  EXPECT_NE(json.find("\"p90\""), std::string::npos);
  EXPECT_NE(json.find("\"steps_per_sec\""), std::string::npos);
  EXPECT_NE(json.find("\"fingerprint\""), std::string::npos);

  // Balanced braces/brackets (cheap well-formedness check — no JSON parser
  // in the dependency set).
  long depth = 0;
  for (char ch : json) {
    if (ch == '{' || ch == '[') ++depth;
    if (ch == '}' || ch == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(SweepJson, EscapesStrings) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(json_escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

}  // namespace
}  // namespace sbrs::harness
