// Unit and property tests for GF(2^8) arithmetic.
#include <gtest/gtest.h>

#include "common/check.h"
#include "gf/gf256.h"

namespace sbrs::gf {
namespace {

TEST(Gf256, AddIsXor) {
  EXPECT_EQ(add(0x00, 0x00), 0x00);
  EXPECT_EQ(add(0xff, 0xff), 0x00);
  EXPECT_EQ(add(0x53, 0xca), 0x53 ^ 0xca);
  EXPECT_EQ(sub(0x53, 0xca), add(0x53, 0xca));
}

TEST(Gf256, MulIdentityAndZero) {
  for (int a = 0; a < 256; ++a) {
    EXPECT_EQ(mul(static_cast<uint8_t>(a), 1), a);
    EXPECT_EQ(mul(1, static_cast<uint8_t>(a)), a);
    EXPECT_EQ(mul(static_cast<uint8_t>(a), 0), 0);
    EXPECT_EQ(mul(0, static_cast<uint8_t>(a)), 0);
  }
}

TEST(Gf256, KnownProducts) {
  // From the AES literature: 0x53 * 0xCA = 0x01 under poly 0x11b.
  EXPECT_EQ(mul(0x53, 0xca), 0x01);
  EXPECT_EQ(mul(0x02, 0x80), 0x1b);  // x * x^7 = x^8 = 0x1b mod poly
  EXPECT_EQ(mul(0x03, 0x03), 0x05);
}

TEST(Gf256, MulMatchesSlowReference) {
  for (int a = 0; a < 256; ++a) {
    for (int b = 0; b < 256; b += 7) {
      EXPECT_EQ(mul(static_cast<uint8_t>(a), static_cast<uint8_t>(b)),
                mul_slow(static_cast<uint8_t>(a), static_cast<uint8_t>(b)))
          << "a=" << a << " b=" << b;
    }
  }
}

TEST(Gf256, MulCommutative) {
  for (int a = 1; a < 256; a += 3) {
    for (int b = 1; b < 256; b += 5) {
      EXPECT_EQ(mul(static_cast<uint8_t>(a), static_cast<uint8_t>(b)),
                mul(static_cast<uint8_t>(b), static_cast<uint8_t>(a)));
    }
  }
}

TEST(Gf256, MulAssociative) {
  for (int a = 1; a < 256; a += 17) {
    for (int b = 1; b < 256; b += 23) {
      for (int c = 1; c < 256; c += 29) {
        const uint8_t ua = static_cast<uint8_t>(a);
        const uint8_t ub = static_cast<uint8_t>(b);
        const uint8_t uc = static_cast<uint8_t>(c);
        EXPECT_EQ(mul(mul(ua, ub), uc), mul(ua, mul(ub, uc)));
      }
    }
  }
}

TEST(Gf256, Distributive) {
  for (int a = 1; a < 256; a += 13) {
    for (int b = 0; b < 256; b += 11) {
      for (int c = 0; c < 256; c += 19) {
        const uint8_t ua = static_cast<uint8_t>(a);
        const uint8_t ub = static_cast<uint8_t>(b);
        const uint8_t uc = static_cast<uint8_t>(c);
        EXPECT_EQ(mul(ua, add(ub, uc)), add(mul(ua, ub), mul(ua, uc)));
      }
    }
  }
}

TEST(Gf256, InverseRoundTrip) {
  for (int a = 1; a < 256; ++a) {
    const uint8_t ua = static_cast<uint8_t>(a);
    EXPECT_EQ(mul(ua, inv(ua)), 1) << "a=" << a;
  }
}

TEST(Gf256, InvOfZeroThrows) { EXPECT_THROW(inv(0), CheckFailure); }

TEST(Gf256, DivisionInvertsMultiplication) {
  for (int a = 0; a < 256; a += 3) {
    for (int b = 1; b < 256; b += 7) {
      const uint8_t ua = static_cast<uint8_t>(a);
      const uint8_t ub = static_cast<uint8_t>(b);
      EXPECT_EQ(mul(div(ua, ub), ub), ua);
    }
  }
}

TEST(Gf256, DivByZeroThrows) { EXPECT_THROW(div(5, 0), CheckFailure); }

TEST(Gf256, PowBasics) {
  EXPECT_EQ(pow(0, 0), 1);
  EXPECT_EQ(pow(0, 5), 0);
  EXPECT_EQ(pow(7, 0), 1);
  EXPECT_EQ(pow(7, 1), 7);
  EXPECT_EQ(pow(2, 8), 0x1b);
}

TEST(Gf256, PowMatchesRepeatedMul) {
  for (int a = 1; a < 256; a += 31) {
    uint8_t acc = 1;
    for (uint32_t e = 0; e < 40; ++e) {
      EXPECT_EQ(pow(static_cast<uint8_t>(a), e), acc) << "a=" << a << " e=" << e;
      acc = mul(acc, static_cast<uint8_t>(a));
    }
  }
}

TEST(Gf256, GeneratorHasFullOrder) {
  // The generator's powers must cycle through all 255 nonzero elements.
  uint8_t x = 1;
  std::array<bool, 256> seen{};
  for (int i = 0; i < 255; ++i) {
    EXPECT_FALSE(seen[x]) << "repeat at step " << i;
    seen[x] = true;
    x = mul(x, kGenerator);
  }
  EXPECT_EQ(x, 1);  // order exactly 255
}

TEST(Gf256, MulAddRowMatchesScalarOps) {
  std::vector<uint8_t> y = {1, 2, 3, 4, 0, 255};
  std::vector<uint8_t> x = {9, 8, 7, 0, 5, 1};
  std::vector<uint8_t> expect = y;
  const uint8_t c = 0x37;
  for (size_t i = 0; i < y.size(); ++i) expect[i] ^= mul(c, x[i]);
  mul_add_row(y.data(), x.data(), c, y.size());
  EXPECT_EQ(y, expect);
}

TEST(Gf256, MulAddRowCoefficientZeroIsNoop) {
  std::vector<uint8_t> y = {1, 2, 3};
  std::vector<uint8_t> x = {9, 9, 9};
  mul_add_row(y.data(), x.data(), 0, y.size());
  EXPECT_EQ(y, (std::vector<uint8_t>{1, 2, 3}));
}

TEST(Gf256, MulAddRowCoefficientOneIsXor) {
  std::vector<uint8_t> y = {1, 2, 3};
  std::vector<uint8_t> x = {4, 5, 6};
  mul_add_row(y.data(), x.data(), 1, y.size());
  EXPECT_EQ(y, (std::vector<uint8_t>{1 ^ 4, 2 ^ 5, 3 ^ 6}));
}

TEST(Gf256, MulRowScalesBuffer) {
  std::vector<uint8_t> x = {1, 2, 0, 200};
  std::vector<uint8_t> y(4);
  mul_row(y.data(), x.data(), 0x11, x.size());
  for (size_t i = 0; i < x.size(); ++i) EXPECT_EQ(y[i], mul(0x11, x[i]));
}

}  // namespace
}  // namespace sbrs::gf
