// Tests for the experiment harness and the round-client framework details
// it exposes indirectly (quorum bookkeeping, stale responses, determinism).
#include <gtest/gtest.h>

#include "harness/runner.h"
#include "harness/table.h"

namespace sbrs::harness {
namespace {

registers::RegisterConfig small_cfg() {
  registers::RegisterConfig cfg;
  cfg.f = 1;
  cfg.k = 2;
  cfg.n = 4;
  cfg.data_bits = 256;
  return cfg;
}

TEST(Harness, DeterministicForFixedSeed) {
  auto alg = registers::make_adaptive(small_cfg());
  RunOptions opts;
  opts.writers = 2;
  opts.writes_per_client = 2;
  opts.readers = 2;
  opts.reads_per_client = 2;
  opts.seed = 99;
  auto a = run_register_experiment(*alg, opts);
  auto b = run_register_experiment(*alg, opts);
  EXPECT_EQ(a.report.steps, b.report.steps);
  EXPECT_EQ(a.max_total_bits, b.max_total_bits);
  EXPECT_EQ(a.final_object_bits, b.final_object_bits);
  EXPECT_EQ(a.history.events().size(), b.history.events().size());
}

TEST(Harness, DifferentSeedsGiveDifferentSchedules) {
  auto alg = registers::make_adaptive(small_cfg());
  RunOptions opts;
  opts.writers = 3;
  opts.writes_per_client = 3;
  opts.readers = 1;
  opts.reads_per_client = 3;
  opts.seed = 1;
  auto a = run_register_experiment(*alg, opts);
  opts.seed = 2;
  auto b = run_register_experiment(*alg, opts);
  EXPECT_NE(a.report.steps, b.report.steps);
}

TEST(Harness, SchedulersProduceDifferentConcurrencyProfiles) {
  auto alg = registers::make_coded(small_cfg());
  RunOptions burst;
  burst.writers = 4;
  burst.writes_per_client = 1;
  burst.scheduler = SchedKind::kBurst;
  auto burst_out = run_register_experiment(*alg, burst);

  RunOptions rr = burst;
  rr.scheduler = SchedKind::kRoundRobin;
  auto rr_out = run_register_experiment(*alg, rr);

  // Burst maximizes concurrency, so it must park at least as many pieces.
  EXPECT_GE(burst_out.max_object_bits, rr_out.max_object_bits);
}

TEST(Harness, FreshClientStatePerRun) {
  // Reusing the same algorithm object across runs must not leak state:
  // factories mint fresh objects and clients each time.
  auto alg = registers::make_adaptive(small_cfg());
  RunOptions opts;
  opts.writers = 1;
  opts.writes_per_client = 1;
  opts.scheduler = SchedKind::kRoundRobin;
  auto first = run_register_experiment(*alg, opts);
  auto second = run_register_experiment(*alg, opts);
  EXPECT_EQ(first.final_object_bits, second.final_object_bits);
  EXPECT_EQ(first.history.writes().front().value,
            second.history.writes().front().value);
}

TEST(Harness, ReportsOutstandingOpsWhenStuck) {
  // Crashing more than f objects may strand operations; live must be false
  // if any op of a surviving client cannot finish. With f+1 = 2 crashes on
  // n = 4 (quorum 3), progress is impossible once 2 objects are down.
  auto alg = registers::make_adaptive(small_cfg());
  RunOptions opts;
  opts.writers = 2;
  opts.writes_per_client = 3;
  opts.object_crashes = 2;  // > f
  opts.seed = 7;
  opts.max_steps = 50'000;
  auto out = run_register_experiment(*alg, opts);
  // Either the run got lucky (crashes after quiescence) or ops are stuck;
  // in the latter case liveness must be correctly reported as violated.
  if (!out.history.outstanding().empty()) {
    EXPECT_FALSE(out.live);
  }
}

TEST(Table, FormatsRows) {
  Table t({"a", "bb"});
  t.add_row(1, "xyz");
  t.add_row(22, 3.5);
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find(" a |"), std::string::npos);  // right-aligned header
  EXPECT_NE(s.find("xyz"), std::string::npos);
  EXPECT_NE(s.find("3.5"), std::string::npos);
  // Header separator present.
  EXPECT_NE(s.find("|--"), std::string::npos);
}

TEST(Table, FmtBits) {
  EXPECT_EQ(fmt_bits(100), "100b");
  EXPECT_EQ(fmt_bits(16384), "2.0KiB");
}

}  // namespace
}  // namespace sbrs::harness
