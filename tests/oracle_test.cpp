// Tests for the Definition 1 encoding/decoding oracles and their source
// tagging (Definition 4).
#include <gtest/gtest.h>

#include "codec/oracle.h"
#include "common/check.h"

namespace sbrs::codec {
namespace {

TEST(EncoderOracle, GetTagsBlocksWithSource) {
  auto codec = make_codec("rs", 6, 2, 256);
  const OpId op{42};
  EncoderOracle oracle(codec, op, Value::from_tag(7, 256));
  for (uint32_t i = 1; i <= 6; ++i) {
    const TaggedBlock tb = oracle.get(i);
    EXPECT_EQ(tb.source.op, op);
    EXPECT_EQ(tb.source.index, i);
    EXPECT_EQ(tb.block.index, i);
    EXPECT_EQ(tb.bit_size(), codec->block_bits(i));
  }
}

TEST(EncoderOracle, GetAllMatchesEncode) {
  auto codec = make_codec("rs", 5, 3, 240);
  const Value v = Value::from_tag(9, 240);
  EncoderOracle oracle(codec, OpId{1}, v);
  const auto all = oracle.get_all();
  const auto direct = codec->encode(v);
  ASSERT_EQ(all.size(), direct.size());
  for (size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].block, direct[i]);
  }
}

TEST(EncoderOracle, RejectsWrongSizeValue) {
  auto codec = make_codec("rs", 4, 2, 256);
  EXPECT_THROW(EncoderOracle(codec, OpId{1}, Value::from_tag(1, 128)),
               CheckFailure);
}

TEST(DecoderOracle, PushThenDoneDecodes) {
  auto codec = make_codec("rs", 6, 3, 384);
  const Value v = Value::from_tag(11, 384);
  auto blocks = codec->encode(v);
  DecoderOracle oracle(codec, OpId{2});
  oracle.push(1, blocks[0]);
  oracle.push(1, blocks[4]);
  EXPECT_EQ(oracle.group_size(1), 2u);
  EXPECT_FALSE(oracle.done(1).has_value());  // only 2 of 3 pushed
  oracle.push(1, blocks[2]);
  EXPECT_EQ(oracle.group_size(1), 3u);
  auto decoded = oracle.done(1);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, v);
}

TEST(DecoderOracle, GroupsAreIndependent) {
  auto codec = make_codec("rs", 4, 2, 128);
  const Value v1 = Value::from_tag(1, 128);
  const Value v2 = Value::from_tag(2, 128);
  auto b1 = codec->encode(v1);
  auto b2 = codec->encode(v2);
  DecoderOracle oracle(codec, OpId{3});
  oracle.push(10, b1[0]);
  oracle.push(10, b1[1]);
  oracle.push(20, b2[2]);
  oracle.push(20, b2[3]);
  EXPECT_EQ(*oracle.done(10), v1);
  EXPECT_EQ(*oracle.done(20), v2);
}

TEST(DecoderOracle, DoneOnEmptyGroupIsBottom) {
  auto codec = make_codec("rs", 4, 2, 128);
  DecoderOracle oracle(codec, OpId{4});
  EXPECT_FALSE(oracle.done(99).has_value());
}

TEST(DecoderOracle, DuplicatePushesDoNotInflateGroupSize) {
  auto codec = make_codec("rs", 4, 2, 128);
  auto blocks = codec->encode(Value::from_tag(5, 128));
  DecoderOracle oracle(codec, OpId{5});
  oracle.push(1, blocks[0]);
  oracle.push(1, blocks[0]);
  oracle.push(1, blocks[0]);
  EXPECT_EQ(oracle.group_size(1), 1u);
  EXPECT_FALSE(oracle.done(1).has_value());
}

TEST(Source, Ordering) {
  const Source a{OpId{1}, 2};
  const Source b{OpId{1}, 3};
  const Source c{OpId{2}, 0};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a, (Source{OpId{1}, 2}));
}

}  // namespace
}  // namespace sbrs::codec
