// Tests for the executable Claim 1: collisions exist exactly when the
// covered block sizes sum to less than D bits.
#include <gtest/gtest.h>

#include "adversary/pigeonhole.h"
#include "common/check.h"

namespace sbrs::adversary {
namespace {

TEST(Pigeonhole, CoverageSumsDistinctIndices) {
  auto codec = codec::make_codec("rs", 4, 2, 16);
  const std::vector<uint32_t> indices = {1, 2, 2, 1};
  EXPECT_EQ(coverage_bits(*codec, indices), 16u);  // two 8-bit blocks
}

TEST(Pigeonhole, CollisionExistsBelowD) {
  // 16-bit values, k=2 -> 8-bit blocks. Coverage {1} = 8 < 16 bits: Claim
  // 1 guarantees two values agreeing on block 1.
  auto codec = codec::make_codec("rs", 4, 2, 16);
  const std::vector<uint32_t> indices = {1};
  auto collision = find_colliding_values(*codec, indices);
  ASSERT_TRUE(collision.has_value());
  EXPECT_TRUE(verify_collision(*codec, *collision));
  EXPECT_NE(collision->u, collision->v);
}

TEST(Pigeonhole, CollisionExistsOnParityBlocksToo) {
  auto codec = codec::make_codec("rs", 4, 2, 16);
  const std::vector<uint32_t> indices = {4};  // a parity block
  auto collision = find_colliding_values(*codec, indices);
  ASSERT_TRUE(collision.has_value());
  EXPECT_TRUE(verify_collision(*codec, *collision));
}

TEST(Pigeonhole, NoCollisionAtFullCoverageOfSystematicCode) {
  // Blocks {1, 2} of the systematic code are the raw 16 data bits:
  // coverage = D, and indeed no two values collide — the threshold in
  // Claim 1 is tight.
  auto codec = codec::make_codec("rs", 4, 2, 16);
  const std::vector<uint32_t> indices = {1, 2};
  EXPECT_EQ(coverage_bits(*codec, indices), 16u);
  EXPECT_FALSE(find_colliding_values(*codec, indices).has_value());
}

TEST(Pigeonhole, MdsCodeHasNoCollisionOnAnyKBlocks) {
  // The MDS property is exactly "any k blocks determine the value":
  // no k-subset admits a collision.
  auto codec = codec::make_codec("rs", 5, 2, 16);
  for (uint32_t a = 1; a <= 5; ++a) {
    for (uint32_t b = a + 1; b <= 5; ++b) {
      const std::vector<uint32_t> indices = {a, b};
      EXPECT_FALSE(find_colliding_values(*codec, indices).has_value())
          << "blocks " << a << "," << b;
    }
  }
}

TEST(Pigeonhole, ReplicationCollidesOnNothingButEmptySet) {
  // Replication blocks are the full value: even one block determines it.
  auto codec = codec::make_codec("replication", 3, 1, 8);
  const std::vector<uint32_t> one = {2};
  EXPECT_FALSE(find_colliding_values(*codec, one).has_value());
  // The empty set covers 0 < D bits: everything collides.
  const std::vector<uint32_t> none = {};
  auto collision = find_colliding_values(*codec, none);
  ASSERT_TRUE(collision.has_value());
  EXPECT_TRUE(verify_collision(*codec, *collision));
}

TEST(Pigeonhole, RejectsHugeDomains) {
  auto codec = codec::make_codec("rs", 4, 2, 256);
  const std::vector<uint32_t> indices = {1};
  EXPECT_THROW(find_colliding_values(*codec, indices), CheckFailure);
}

TEST(Pigeonhole, VerifyRejectsNonCollisions) {
  auto codec = codec::make_codec("rs", 4, 2, 16);
  Collision fake;
  fake.u = Value::from_tag(1, 16);
  fake.v = Value::from_tag(1, 16);  // u == v: not a collision
  fake.indices = {1};
  EXPECT_FALSE(verify_collision(*codec, fake));
  fake.v = Value::from_tag(2, 16);  // blocks differ on index 1
  EXPECT_FALSE(verify_collision(*codec, fake));
}

}  // namespace
}  // namespace sbrs::adversary
