#include "common/bytes.h"

#include <stdexcept>

namespace sbrs {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  throw std::invalid_argument("from_hex: non-hex digit");
}
}  // namespace

std::string to_hex(BytesView bytes) {
  std::string out;
  out.reserve(bytes.size() * 2);
  for (uint8_t b : bytes) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0xf]);
  }
  return out;
}

Bytes from_hex(const std::string& hex) {
  if (hex.size() % 2 != 0) {
    throw std::invalid_argument("from_hex: odd length");
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    out.push_back(static_cast<uint8_t>((hex_value(hex[i]) << 4) |
                                       hex_value(hex[i + 1])));
  }
  return out;
}

uint64_t fnv1a(BytesView bytes) {
  uint64_t h = kFnv1aOffsetBasis;
  for (uint8_t b : bytes) {
    h ^= b;
    h *= kFnv1aPrime;
  }
  return h;
}

void xor_inplace(Bytes& a, BytesView b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("xor_inplace: size mismatch");
  }
  for (size_t i = 0; i < a.size(); ++i) a[i] ^= b[i];
}

bool bytes_equal(BytesView a, BytesView b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

Bytes concat(std::span<const BytesView> parts) {
  size_t total = 0;
  for (const auto& p : parts) total += p.size();
  Bytes out;
  out.reserve(total);
  for (const auto& p : parts) out.insert(out.end(), p.begin(), p.end());
  return out;
}

}  // namespace sbrs
