// Lexicographically ordered timestamps, as used by every register algorithm
// in the paper: TimeStamps = N x Pi with selectors num and c (Algorithm 1,
// line 1). Timestamps are metadata and are never counted toward storage cost
// (Definition 2).
#pragma once

#include <compare>
#include <cstdint>
#include <ostream>

#include "common/ids.h"

namespace sbrs {

struct TimeStamp {
  uint64_t num = 0;
  ClientId client{0};

  static constexpr TimeStamp zero() { return TimeStamp{}; }
  constexpr bool is_zero() const { return num == 0 && client.value == 0; }

  /// The successor timestamp a client cj picks after observing `this` as the
  /// maximum: <num+1, j> (Algorithm 2 line 7).
  constexpr TimeStamp next_for(ClientId cj) const {
    return TimeStamp{num + 1, cj};
  }

  friend constexpr auto operator<=>(const TimeStamp& a, const TimeStamp& b) {
    if (auto c = a.num <=> b.num; c != 0) return c;
    return a.client.value <=> b.client.value;
  }
  friend constexpr bool operator==(const TimeStamp&, const TimeStamp&) = default;
};

inline std::ostream& operator<<(std::ostream& os, const TimeStamp& ts) {
  return os << "<" << ts.num << "," << ts.client.value << ">";
}

}  // namespace sbrs

namespace std {
template <>
struct hash<sbrs::TimeStamp> {
  size_t operator()(const sbrs::TimeStamp& ts) const noexcept {
    return std::hash<uint64_t>{}(ts.num * 1000003ull + ts.client.value);
  }
};
}  // namespace std
