// Deterministic pseudo-random number generation.
//
// Every run of the simulator is driven by a single 64-bit seed so that any
// schedule — including failures found by property tests — can be replayed
// exactly. We use SplitMix64 for seeding and xoshiro256** for the stream;
// both are tiny, fast and well-distributed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

namespace sbrs {

/// SplitMix64 step: used to expand one seed into independent sub-seeds.
constexpr uint64_t splitmix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Registry of the independent RNG streams every component derives from the
/// single run seed. Each consumer XORs the run seed with its stream tweak
/// and expands through splitmix64 (derive_stream_seed), so the streams are
/// decorrelated from each other and from the raw seed. All tweaks live here
/// so a new subsystem can claim a stream without colliding with an existing
/// one — never reuse a constant, never feed the raw run seed to an Rng that
/// another component also draws from.
///
/// Changing any existing tweak changes every recorded artifact fingerprint;
/// they are frozen.
namespace seed_stream {

/// Open-loop arrival-process stream (sim::arrival_seed).
inline constexpr uint64_t kArrival = 0xa55a1ee15c4ed01eull;
/// Link-fault schedule stream (sim::fault_seed).
inline constexpr uint64_t kLinkFault = 0x0fa17ab1e5eedf00ull;
/// Threaded-runtime stream (runtime backend cross-check seeds; claimed by
/// this registry, unused by the simulator so sim artifacts are unaffected).
inline constexpr uint64_t kRuntime = 0x7ead71fe5eedbeefull;

}  // namespace seed_stream

/// Expand `seed` into the stream identified by `tweak` (a seed_stream
/// constant): XOR, burn one splitmix64 step to decorrelate from the raw
/// seed, emit the next. Nonzero so the result can feed generators that
/// reserve 0.
constexpr uint64_t derive_stream_seed(uint64_t seed, uint64_t tweak) {
  uint64_t state = seed ^ tweak;
  (void)splitmix64(state);
  const uint64_t out = splitmix64(state);
  return out == 0 ? 1 : out;
}

/// Per-cell seed for grid sweeps (harness::cell_seed): chained splitmix64
/// over {base, cell, seed-index}, so any two runs of a grid differ in at
/// least one input and the result is independent of which worker thread
/// picks the job up. Lives in the registry because it is the third seed
/// shape artifacts depend on.
constexpr uint64_t derive_cell_seed(uint64_t base_seed, size_t cell_index,
                                    uint32_t seed_index) {
  uint64_t state = base_seed;
  (void)splitmix64(state);
  state ^= 0x9e3779b97f4a7c15ull * (cell_index + 1);
  (void)splitmix64(state);
  state ^= 0xbf58476d1ce4e5b9ull * (seed_index + 1);
  const uint64_t seed = splitmix64(state);
  return seed == 0 ? 1 : seed;  // keep it nonzero like the stream seeds
}

class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x5eed5eed5eed5eedull) { reseed(seed); }

  void reseed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<uint64_t>::max();
  }

  uint64_t operator()() { return next(); }

  uint64_t next() {
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0. Uses rejection
  /// sampling to avoid modulo bias.
  uint64_t below(uint64_t bound) {
    const uint64_t threshold = -bound % bound;  // 2^64 mod bound
    for (;;) {
      uint64_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  uint64_t between(uint64_t lo, uint64_t hi) {
    return lo + below(hi - lo + 1);
  }

  /// Bernoulli draw with probability num/den.
  bool chance(uint64_t num, uint64_t den) { return below(den) < num; }

  double uniform01() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Derive an independent child RNG (e.g. one per client).
  Rng fork() { return Rng(next()); }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(below(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Pick a uniformly random element index of a non-empty container.
  template <typename Container>
  size_t pick_index(const Container& c) {
    return static_cast<size_t>(below(c.size()));
  }

 private:
  static constexpr uint64_t rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4] = {};
};

}  // namespace sbrs
