#include "common/json.h"

#include <cstdlib>

#include "common/check.h"

namespace sbrs::json {

bool Value::as_bool() const {
  SBRS_CHECK_MSG(is_bool(), "JSON value is not a bool");
  return bool_;
}

double Value::as_double() const {
  SBRS_CHECK_MSG(is_number(), "JSON value is not a number");
  return dbl_;
}

uint64_t Value::as_u64() const {
  SBRS_CHECK_MSG(is_number() && exact_u64_,
                 "JSON value is not a non-negative integer");
  return u64_;
}

int64_t Value::as_i64() const {
  SBRS_CHECK_MSG(is_number(), "JSON value is not a number");
  if (exact_u64_) {
    SBRS_CHECK_MSG(u64_ <= static_cast<uint64_t>(INT64_MAX),
                   "JSON integer out of int64 range");
    return static_cast<int64_t>(u64_);
  }
  return static_cast<int64_t>(dbl_);
}

const std::string& Value::as_string() const {
  SBRS_CHECK_MSG(is_string(), "JSON value is not a string");
  return str_;
}

const Value::Array& Value::as_array() const {
  SBRS_CHECK_MSG(is_array(), "JSON value is not an array");
  return *arr_;
}

const Value::Object& Value::as_object() const {
  SBRS_CHECK_MSG(is_object(), "JSON value is not an object");
  return *obj_;
}

const Value* Value::find(const std::string& key) const {
  if (!is_object()) return nullptr;
  auto it = obj_->find(key);
  return it == obj_->end() ? nullptr : &it->second;
}

bool Value::get_bool(const std::string& key, bool fallback) const {
  const Value* v = find(key);
  return v == nullptr ? fallback : v->as_bool();
}

double Value::get_double(const std::string& key, double fallback) const {
  const Value* v = find(key);
  return v == nullptr ? fallback : v->as_double();
}

uint64_t Value::get_u64(const std::string& key, uint64_t fallback) const {
  const Value* v = find(key);
  return v == nullptr ? fallback : v->as_u64();
}

std::string Value::get_string(const std::string& key,
                              const std::string& fallback) const {
  const Value* v = find(key);
  return v == nullptr ? fallback : v->as_string();
}

Value Value::make_null() { return Value{}; }

Value Value::make_bool(bool b) {
  Value v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

Value Value::make_u64(uint64_t x) {
  Value v;
  v.type_ = Type::kNumber;
  v.u64_ = x;
  v.dbl_ = static_cast<double>(x);
  v.exact_u64_ = true;
  return v;
}

Value Value::make_double(double x) {
  Value v;
  v.type_ = Type::kNumber;
  v.dbl_ = x;
  return v;
}

Value Value::make_string(std::string s) {
  Value v;
  v.type_ = Type::kString;
  v.str_ = std::move(s);
  return v;
}

Value Value::make_array(Array a) {
  Value v;
  v.type_ = Type::kArray;
  v.arr_ = std::make_shared<Array>(std::move(a));
  return v;
}

Value Value::make_object(Object o) {
  Value v;
  v.type_ = Type::kObject;
  v.obj_ = std::make_shared<Object>(std::move(o));
  return v;
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    fail_unless(pos_ == text_.size(), "trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    size_t line = 1, col = 1;
    for (size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    SBRS_CHECK_MSG(false, "JSON parse error at " << line << ":" << col << ": "
                                                 << what);
    std::abort();  // unreachable — SBRS_CHECK_MSG(false, ...) throws
  }

  void fail_unless(bool ok, const char* what) const {
    if (!ok) fail(what);
  }

  bool at_end() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  void skip_ws() {
    while (!at_end()) {
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else if (c == '/' && pos_ + 1 < text_.size() &&
                 text_[pos_ + 1] == '/') {
        while (!at_end() && peek() != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  bool consume(char c) {
    if (at_end() || peek() != c) return false;
    ++pos_;
    return true;
  }

  void expect(char c, const char* what) {
    if (!consume(c)) fail(what);
  }

  bool consume_word(std::string_view w) {
    if (text_.substr(pos_, w.size()) != w) return false;
    pos_ += w.size();
    return true;
  }

  Value parse_value() {
    skip_ws();
    fail_unless(!at_end(), "unexpected end of input");
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return Value::make_string(parse_string());
    if (consume_word("true")) return Value::make_bool(true);
    if (consume_word("false")) return Value::make_bool(false);
    if (consume_word("null")) return Value::make_null();
    if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
    fail("unexpected character");
  }

  Value parse_object() {
    expect('{', "expected '{'");
    Value::Object members;
    skip_ws();
    if (consume('}')) return Value::make_object(std::move(members));
    for (;;) {
      skip_ws();
      if (consume('}')) break;  // trailing comma tolerated
      fail_unless(!at_end() && peek() == '"', "expected member name");
      std::string key = parse_string();
      // Hand-edited config: a duplicate member is a typo'd override, not a
      // last-one-wins merge.
      if (members.count(key) != 0) fail("duplicate member \"" + key + "\"");
      skip_ws();
      expect(':', "expected ':' after member name");
      members[std::move(key)] = parse_value();
      skip_ws();
      if (consume(',')) continue;
      expect('}', "expected ',' or '}' in object");
      break;
    }
    return Value::make_object(std::move(members));
  }

  Value parse_array() {
    expect('[', "expected '['");
    Value::Array items;
    skip_ws();
    if (consume(']')) return Value::make_array(std::move(items));
    for (;;) {
      skip_ws();
      if (consume(']')) break;  // trailing comma tolerated
      items.push_back(parse_value());
      skip_ws();
      if (consume(',')) continue;
      expect(']', "expected ',' or ']' in array");
      break;
    }
    return Value::make_array(std::move(items));
  }

  std::string parse_string() {
    expect('"', "expected '\"'");
    std::string out;
    for (;;) {
      fail_unless(!at_end(), "unterminated string");
      const char c = text_[pos_++];
      if (c == '"') break;
      if (c != '\\') {
        out += c;
        continue;
      }
      fail_unless(!at_end(), "unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          fail_unless(pos_ + 4 <= text_.size(), "truncated \\u escape");
          uint32_t cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<uint32_t>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<uint32_t>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<uint32_t>(h - 'A' + 10);
            else fail("bad hex digit in \\u escape");
          }
          // UTF-8 encode (surrogate pairs unsupported — scenario files are
          // ASCII identifiers; reject rather than mis-encode).
          fail_unless(cp < 0xD800 || cp > 0xDFFF,
                      "surrogate \\u escapes unsupported");
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default:
          fail("unknown escape");
      }
    }
    return out;
  }

  Value parse_number() {
    const size_t start = pos_;
    bool negative = false;
    bool integral = true;
    if (consume('-')) negative = true;
    fail_unless(!at_end() && peek() >= '0' && peek() <= '9',
                "malformed number");
    while (!at_end() && peek() >= '0' && peek() <= '9') ++pos_;
    if (!at_end() && peek() == '.') {
      integral = false;
      ++pos_;
      fail_unless(!at_end() && peek() >= '0' && peek() <= '9',
                  "malformed fraction");
      while (!at_end() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      integral = false;
      ++pos_;
      if (!at_end() && (peek() == '+' || peek() == '-')) ++pos_;
      fail_unless(!at_end() && peek() >= '0' && peek() <= '9',
                  "malformed exponent");
      while (!at_end() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    const std::string lit(text_.substr(start, pos_ - start));
    if (integral && !negative) {
      errno = 0;
      char* end = nullptr;
      const unsigned long long u = std::strtoull(lit.c_str(), &end, 10);
      if (errno == 0 && end == lit.c_str() + lit.size()) {
        return Value::make_u64(u);
      }
    }
    return Value::make_double(std::strtod(lit.c_str(), nullptr));
  }

  std::string_view text_;
  size_t pos_ = 0;
};

Value parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace sbrs::json
