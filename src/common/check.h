// Invariant checking macros.
//
// SBRS_CHECK is always on (simulation correctness beats raw speed here) and
// throws sbrs::CheckFailure so tests can assert on violated invariants
// instead of aborting the process.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace sbrs {

class CheckFailure : public std::logic_error {
 public:
  explicit CheckFailure(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckFailure(os.str());
}
}  // namespace detail

}  // namespace sbrs

#define SBRS_CHECK(expr)                                              \
  do {                                                                \
    if (!(expr)) {                                                    \
      ::sbrs::detail::check_failed(#expr, __FILE__, __LINE__, "");    \
    }                                                                 \
  } while (0)

#define SBRS_CHECK_MSG(expr, msg)                                     \
  do {                                                                \
    if (!(expr)) {                                                    \
      std::ostringstream sbrs_os_;                                    \
      sbrs_os_ << msg;                                                \
      ::sbrs::detail::check_failed(#expr, __FILE__, __LINE__,         \
                                   sbrs_os_.str());                   \
    }                                                                 \
  } while (0)
