// Strongly-typed identifiers shared across the library.
//
// The paper's model (Section 2) has three kinds of actors: clients from an
// infinite set Pi, base objects bo_1..bo_n, and high-level operations that
// clients invoke on the emulated register. We give each its own integral id
// type so that they cannot be confused at compile time.
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>

namespace sbrs {

/// Identifier of a client (an element of the paper's client set Pi).
struct ClientId {
  uint32_t value = 0;

  friend constexpr auto operator<=>(ClientId, ClientId) = default;
};

/// Identifier of a base object (bo_i in the paper, i in 1..n).
struct ObjectId {
  uint32_t value = 0;

  friend constexpr auto operator<=>(ObjectId, ObjectId) = default;
};

/// Identifier of a high-level operation (a read or write on the emulated
/// register). Unique per run; used as the `w` in the paper's source function
/// source(b, t) = <w, i> (Definition 4).
struct OpId {
  uint64_t value = 0;

  static constexpr OpId none() { return OpId{0}; }
  constexpr bool is_none() const { return value == 0; }

  friend constexpr auto operator<=>(OpId, OpId) = default;
};

/// Identifier of a low-level RMW triggered on a base object.
struct RmwId {
  uint64_t value = 0;

  friend constexpr auto operator<=>(RmwId, RmwId) = default;
};

inline std::ostream& operator<<(std::ostream& os, ClientId id) {
  return os << "c" << id.value;
}
inline std::ostream& operator<<(std::ostream& os, ObjectId id) {
  return os << "bo" << id.value;
}
inline std::ostream& operator<<(std::ostream& os, OpId id) {
  return os << "op" << id.value;
}
inline std::ostream& operator<<(std::ostream& os, RmwId id) {
  return os << "rmw" << id.value;
}

}  // namespace sbrs

namespace std {
template <>
struct hash<sbrs::ClientId> {
  size_t operator()(sbrs::ClientId id) const noexcept {
    return std::hash<uint32_t>{}(id.value);
  }
};
template <>
struct hash<sbrs::ObjectId> {
  size_t operator()(sbrs::ObjectId id) const noexcept {
    return std::hash<uint32_t>{}(id.value);
  }
};
template <>
struct hash<sbrs::OpId> {
  size_t operator()(sbrs::OpId id) const noexcept {
    return std::hash<uint64_t>{}(id.value);
  }
};
template <>
struct hash<sbrs::RmwId> {
  size_t operator()(sbrs::RmwId id) const noexcept {
    return std::hash<uint64_t>{}(id.value);
  }
};
}  // namespace std
