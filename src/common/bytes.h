// Byte-string utilities.
//
// Values in the emulated register's domain V and erasure-code blocks in E are
// both represented as byte vectors. D = log2 |V| is measured in bits; we keep
// values byte-aligned (D divisible by 8) which loses no generality for the
// reproduced experiments.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace sbrs {

using Bytes = std::vector<uint8_t>;
using BytesView = std::span<const uint8_t>;

/// Number of bits in a byte string (Definition 2 counts storage in bits).
inline uint64_t bit_size(BytesView b) { return 8ull * b.size(); }

/// Hex rendering for debugging and golden tests ("0a1b..").
std::string to_hex(BytesView bytes);

/// Parse a hex string produced by to_hex. Throws std::invalid_argument on
/// malformed input (odd length or non-hex digit).
Bytes from_hex(const std::string& hex);

/// 64-bit FNV-1a over the bytes; used for cheap content fingerprints in tests
/// and histories (never for storage accounting).
uint64_t fnv1a(BytesView bytes);

/// XOR b into a (a ^= b); requires equal sizes.
void xor_inplace(Bytes& a, BytesView b);

/// Constant-time-ish equality (plain == is fine for simulation; this exists
/// so call sites read as intent).
bool bytes_equal(BytesView a, BytesView b);

/// Concatenate spans into one buffer.
Bytes concat(std::span<const BytesView> parts);

}  // namespace sbrs
