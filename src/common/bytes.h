// Byte-string utilities.
//
// Values in the emulated register's domain V and erasure-code blocks in E are
// both represented as byte vectors. D = log2 |V| is measured in bits; we keep
// values byte-aligned (D divisible by 8) which loses no generality for the
// reproduced experiments.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace sbrs {

using Bytes = std::vector<uint8_t>;
using BytesView = std::span<const uint8_t>;

/// Number of bits in a byte string (Definition 2 counts storage in bits).
inline uint64_t bit_size(BytesView b) { return 8ull * b.size(); }

/// Copy-on-write byte buffer.
///
/// Code-block payloads flow from one encode through many hands — write-round
/// RMW closures, base-object chunk sets, readValue response copies, reader
/// merge sets — and with plain Bytes every hop deep-copied a value-sized
/// buffer. A CowBytes copy is a refcount bump; the underlying buffer is
/// cloned only if someone calls mutable_bytes() while it is shared. The
/// default-constructed state is an empty buffer.
class CowBytes {
 public:
  CowBytes() = default;
  /*implicit*/ CowBytes(Bytes bytes)
      : data_(std::make_shared<Bytes>(std::move(bytes))) {}

  const Bytes& bytes() const { return data_ ? *data_ : empty_bytes(); }

  /// Mutable access; clones the buffer first when it is shared (or empty).
  Bytes& mutable_bytes() {
    if (!data_) {
      data_ = std::make_shared<Bytes>();
    } else if (data_.use_count() > 1) {
      data_ = std::make_shared<Bytes>(*data_);
    }
    return *data_;
  }

  size_t size() const { return bytes().size(); }
  bool empty() const { return bytes().empty(); }
  const uint8_t* data() const { return bytes().data(); }
  uint8_t operator[](size_t i) const { return bytes()[i]; }
  Bytes::const_iterator begin() const { return bytes().begin(); }
  Bytes::const_iterator end() const { return bytes().end(); }
  operator BytesView() const { return bytes(); }

  /// True when both refer to the same underlying buffer (equality is then
  /// free); used as a fast path by the comparisons below.
  bool shares_buffer_with(const CowBytes& other) const {
    return data_ == other.data_;
  }

  friend bool operator==(const CowBytes& a, const CowBytes& b) {
    return a.shares_buffer_with(b) || a.bytes() == b.bytes();
  }
  friend bool operator==(const CowBytes& a, const Bytes& b) {
    return a.bytes() == b;
  }

 private:
  static const Bytes& empty_bytes() {
    static const Bytes kEmpty;
    return kEmpty;
  }

  std::shared_ptr<Bytes> data_;
};

/// Hex rendering for debugging and golden tests ("0a1b..").
std::string to_hex(BytesView bytes);

/// Parse a hex string produced by to_hex. Throws std::invalid_argument on
/// malformed input (odd length or non-hex digit).
Bytes from_hex(const std::string& hex);

/// 64-bit FNV-1a parameters — the single definition shared by the byte hash
/// below, the store's key->shard placement, and the word-level fingerprint
/// mixers in harness/store. Fingerprint compatibility across subsystems
/// rests on these never diverging.
inline constexpr uint64_t kFnv1aOffsetBasis = 0xcbf29ce484222325ull;
inline constexpr uint64_t kFnv1aPrime = 0x100000001b3ull;

/// One FNV-style mixing step folding a 64-bit word into hash state `h`.
constexpr uint64_t fnv1a_mix(uint64_t h, uint64_t v) {
  return (h ^ v) * kFnv1aPrime;
}

/// 64-bit FNV-1a over the bytes; used for cheap content fingerprints in tests
/// and histories (never for storage accounting).
uint64_t fnv1a(BytesView bytes);

/// XOR b into a (a ^= b); requires equal sizes.
void xor_inplace(Bytes& a, BytesView b);

/// Constant-time-ish equality (plain == is fine for simulation; this exists
/// so call sites read as intent).
bool bytes_equal(BytesView a, BytesView b);

/// Concatenate spans into one buffer.
Bytes concat(std::span<const BytesView> parts);

}  // namespace sbrs
