#include "common/value.h"

#include <stdexcept>

namespace sbrs {

namespace {
size_t bits_to_bytes(size_t data_bits) {
  if (data_bits == 0 || data_bits % 8 != 0) {
    throw std::invalid_argument("Value: data_bits must be a positive multiple of 8");
  }
  return data_bits / 8;
}
}  // namespace

Value Value::initial(size_t data_bits) {
  return Value(Bytes(bits_to_bytes(data_bits), 0));
}

Value Value::from_tag(uint64_t tag, size_t data_bits) {
  Bytes b(bits_to_bytes(data_bits), 0);
  // Embed the tag little-endian in the prefix; fill the remainder with a
  // cheap keyed stream so large values are not mostly zero (exercises codecs
  // on non-trivial data).
  for (size_t i = 0; i < b.size() && i < 8; ++i) {
    b[i] = static_cast<uint8_t>(tag >> (8 * i));
  }
  uint64_t x = tag ^ 0x9e3779b97f4a7c15ull;
  for (size_t i = 8; i < b.size(); ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    b[i] = static_cast<uint8_t>(x);
  }
  return Value(std::move(b));
}

uint64_t Value::tag() const {
  uint64_t tag = 0;
  for (size_t i = 0; i < bytes_.size() && i < 8; ++i) {
    tag |= static_cast<uint64_t>(bytes_[i]) << (8 * i);
  }
  return tag;
}

std::ostream& operator<<(std::ostream& os, const Value& v) {
  if (v.bytes().size() <= 8) {
    return os << "v(" << to_hex(v.bytes()) << ")";
  }
  return os << "v(tag=" << v.tag() << ",bits=" << v.bit_size() << ")";
}

}  // namespace sbrs
