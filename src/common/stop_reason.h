// The canonical stop_reason vocabulary.
//
// RunReport::stop_reason is a free-form string (schedulers may state their
// own reasons), but the simulator's own classification uses exactly these
// four values, and every consumer — the sweep engine's stop_reasons
// histogram, the store's per-shard reports, the campaign/scenario judges,
// the JSON writers, tests — compares against them. Keeping them as named
// constants in one header means a typo is a compile error instead of a
// silently mis-classified run.
#pragma once

namespace sbrs {

/// Every workload operation was invoked and returned, and no client has
/// more to do (the run drained).
inline constexpr const char* kStopQuiesced = "quiesced";

/// SimConfig::max_steps cut the run off mid-flight.
inline constexpr const char* kStopStepLimit = "step-limit";

/// Undrained, but nothing will ever be schedulable again (e.g. a partition
/// held past every quorum's patience).
inline constexpr const char* kStopStalled = "stalled";

/// The scheduler ended the run without stating its own reason.
inline constexpr const char* kStopSchedulerStop = "scheduler-stop";

}  // namespace sbrs
