// The emulated register's value domain V.
//
// A Value is a fixed-width byte string of D/8 bytes (D bits, D = log2 |V|).
// The register framework generates distinct values per write so that
// consistency checkers can map a returned value back to the unique write that
// produced it.
#pragma once

#include <cstdint>
#include <optional>
#include <ostream>

#include "common/bytes.h"

namespace sbrs {

class Value {
 public:
  Value() = default;
  explicit Value(Bytes bytes) : bytes_(std::move(bytes)) {}

  /// Construct the domain's distinguished initial value v0: all-zero bytes.
  static Value initial(size_t data_bits);

  /// Deterministically derive a distinct value of `data_bits` bits from a
  /// 64-bit tag (e.g. the OpId of the write). Distinct tags give distinct
  /// values as long as data_bits >= 64; for smaller domains the low bits of
  /// the tag are used directly.
  static Value from_tag(uint64_t tag, size_t data_bits);

  const Bytes& bytes() const { return bytes_; }
  BytesView view() const { return bytes_; }
  uint64_t bit_size() const { return sbrs::bit_size(bytes_); }
  bool empty() const { return bytes_.empty(); }

  /// Recover the tag embedded by from_tag (first 8 bytes little-endian,
  /// zero-extended for smaller values). Used by checkers and tests.
  uint64_t tag() const;

  uint64_t fingerprint() const { return fnv1a(bytes_); }

  friend bool operator==(const Value& a, const Value& b) {
    return a.bytes_ == b.bytes_;
  }
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }

 private:
  Bytes bytes_;
};

std::ostream& operator<<(std::ostream& os, const Value& v);

}  // namespace sbrs
