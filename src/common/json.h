// A small recursive-descent JSON parser — just enough for the declarative
// scenario files (src/harness/scenario.h). No external dependency, no
// streaming, no NaN/Infinity extensions; `//` line comments and trailing
// commas ARE accepted (scenario files are hand-edited config, not wire
// data). Numbers keep an exact unsigned-64 representation when the literal
// is a plain non-negative integer, so seeds and step counts round-trip
// without double truncation.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace sbrs::json {

class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Objects keep their members in a sorted map: scenario semantics never
  /// depend on member order, and iteration is deterministic.
  using Object = std::map<std::string, Value>;
  using Array = std::vector<Value>;

  Value() = default;

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  // Typed accessors; SBRS_CHECK-fail (with the member path when known)
  // on a type mismatch.
  bool as_bool() const;
  double as_double() const;
  /// The literal must be a plain non-negative integer (no '.', 'e', '-').
  uint64_t as_u64() const;
  int64_t as_i64() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  /// Object member lookup; nullptr when absent (or when not an object).
  const Value* find(const std::string& key) const;

  // --- Convenience getters for optional members with defaults ---
  bool get_bool(const std::string& key, bool fallback) const;
  double get_double(const std::string& key, double fallback) const;
  uint64_t get_u64(const std::string& key, uint64_t fallback) const;
  std::string get_string(const std::string& key,
                         const std::string& fallback) const;

  // Construction (used by tests; the parser builds values directly).
  static Value make_null();
  static Value make_bool(bool b);
  static Value make_u64(uint64_t v);
  static Value make_double(double v);
  static Value make_string(std::string s);
  static Value make_array(Array a);
  static Value make_object(Object o);

 private:
  friend class Parser;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double dbl_ = 0;
  uint64_t u64_ = 0;
  /// True when the literal was a plain non-negative integer that fits
  /// uint64 — as_u64() demands it.
  bool exact_u64_ = false;
  std::string str_;
  // Indirection keeps Value movable/copyable without recursive layout.
  std::shared_ptr<Array> arr_;
  std::shared_ptr<Object> obj_;
};

/// Parse one JSON document (throws sbrs::CheckFailure with line:column on
/// malformed input; trailing garbage after the document is an error too).
Value parse(std::string_view text);

}  // namespace sbrs::json
