// Arithmetic in GF(2^8), the field underlying the Reed-Solomon codec.
//
// We use the AES polynomial x^8 + x^4 + x^3 + x + 1 (0x11b). Scalar mul and
// the bulk row operations delegate to the kernel layer in gf_kernels.h (flat
// 64 KiB product table + SIMD split-nibble paths); the exp/log tables here
// back the remaining group operations (inv, div, pow).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "gf/gf_kernels.h"

namespace sbrs::gf {

/// The reduction polynomial (without the x^8 term): 0x1b.
inline constexpr uint16_t kPoly = 0x11b;
/// Generator of the multiplicative group used for the log/exp tables.
inline constexpr uint8_t kGenerator = 0x03;

namespace detail {
struct Tables {
  // exp has 512 entries so mul can skip the mod-255 reduction.
  std::array<uint8_t, 512> exp{};
  std::array<uint8_t, 256> log{};
  std::array<uint8_t, 256> inv{};

  Tables();
};
const Tables& tables();
}  // namespace detail

/// Addition and subtraction in GF(2^8) are both XOR.
constexpr uint8_t add(uint8_t a, uint8_t b) { return a ^ b; }
constexpr uint8_t sub(uint8_t a, uint8_t b) { return a ^ b; }

/// Multiplication: one branch-free load from the kernel layer's flat table
/// (which covers the zero operands); mul(0, x) == mul(x, 0) == 0.
inline uint8_t mul(uint8_t a, uint8_t b) { return kern::mul(a, b); }

/// Multiplicative inverse; precondition a != 0.
uint8_t inv(uint8_t a);

/// Division a / b; precondition b != 0.
uint8_t div(uint8_t a, uint8_t b);

/// Exponentiation a^e (e >= 0), with a^0 == 1 (including 0^0 == 1).
uint8_t pow(uint8_t a, uint32_t e);

/// Slow carry-less multiply-and-reduce; reference implementation used by
/// tests to validate the tables.
uint8_t mul_slow(uint8_t a, uint8_t b);

/// y[i] += c * x[i] over a buffer — the inner loop of RS encode/decode.
/// Thin wrapper over the kernel layer, kept for API stability.
inline void mul_add_row(uint8_t* y, const uint8_t* x, uint8_t c, size_t len) {
  kern::mul_add_row(y, x, c, len);
}

/// y[i] = c * x[i]. In-place (y == x) is allowed.
inline void mul_row(uint8_t* y, const uint8_t* x, uint8_t c, size_t len) {
  kern::mul_row(y, x, c, len);
}

}  // namespace sbrs::gf
