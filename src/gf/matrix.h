// Dense matrices over GF(2^8), with the linear algebra needed by the
// Reed-Solomon codec: multiplication, Gaussian-elimination inversion, and
// the Vandermonde / Cauchy constructions whose square submatrices are
// invertible (the MDS property).
#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <vector>

#include "gf/gf256.h"

namespace sbrs::gf {

class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols) : rows_(rows), cols_(cols), a_(rows * cols, 0) {}

  static Matrix identity(size_t n);

  /// rows x cols Vandermonde matrix with evaluation points 1, 2, ..., rows
  /// (element (r, c) = (r+1)^c). Any k x k submatrix formed by choosing k
  /// distinct rows of a k-column Vandermonde matrix with distinct nonzero
  /// points is invertible.
  static Matrix vandermonde(size_t rows, size_t cols);

  /// Systematic encoding matrix for a k-of-n MDS code: the top k rows are
  /// the identity, and the bottom n-k rows keep the MDS property (any k of
  /// the n rows are linearly independent). Built by taking an n x k
  /// Vandermonde matrix V and right-multiplying by inverse(top k rows of V).
  static Matrix rs_systematic(size_t n, size_t k);

  /// Cauchy matrix with x_i = i (i in [0, rows)), y_j = rows + j; all
  /// square submatrices of a Cauchy matrix are invertible.
  static Matrix cauchy(size_t rows, size_t cols);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  uint8_t at(size_t r, size_t c) const { return a_[r * cols_ + c]; }
  uint8_t& at(size_t r, size_t c) { return a_[r * cols_ + c]; }
  const uint8_t* row(size_t r) const { return &a_[r * cols_]; }
  uint8_t* row(size_t r) { return &a_[r * cols_]; }

  Matrix mul(const Matrix& other) const;

  /// Select a subset of rows, in the given order.
  Matrix select_rows(const std::vector<size_t>& rows) const;

  /// Invert a square matrix via Gauss-Jordan elimination with partial
  /// pivoting; returns nullopt when singular.
  std::optional<Matrix> inverted() const;

  /// Apply this (rows x cols) matrix to `cols` input buffers of length
  /// `len`, producing `rows` output buffers: out[r] = sum_c at(r,c)*in[c].
  /// out must point at rows buffers of length len, zero-initialized by this
  /// function.
  void apply(const std::vector<const uint8_t*>& in,
             const std::vector<uint8_t*>& out, size_t len) const;

  /// Allocation-free variant of apply() for hot paths: `in` points at cols()
  /// buffers, `out` at rows() buffers, all of length `len`. Output buffers
  /// are zero-initialized by this function.
  void apply(const uint8_t* const* in, uint8_t* const* out, size_t len) const;

  bool operator==(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ && a_ == other.a_;
  }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<uint8_t> a_;
};

std::ostream& operator<<(std::ostream& os, const Matrix& m);

}  // namespace sbrs::gf
