#include "gf/matrix.h"

#include <cstring>

#include "common/check.h"
#include "gf/gf_kernels.h"

namespace sbrs::gf {

Matrix Matrix::identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m.at(i, i) = 1;
  return m;
}

Matrix Matrix::vandermonde(size_t rows, size_t cols) {
  SBRS_CHECK_MSG(rows <= 255, "vandermonde: need distinct nonzero points");
  Matrix m(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    const uint8_t point = static_cast<uint8_t>(r + 1);
    for (size_t c = 0; c < cols; ++c) {
      m.at(r, c) = pow(point, static_cast<uint32_t>(c));
    }
  }
  return m;
}

Matrix Matrix::rs_systematic(size_t n, size_t k) {
  SBRS_CHECK(k >= 1 && n >= k && n <= 255);
  Matrix v = vandermonde(n, k);
  std::vector<size_t> top(k);
  for (size_t i = 0; i < k; ++i) top[i] = i;
  auto top_inv = v.select_rows(top).inverted();
  SBRS_CHECK_MSG(top_inv.has_value(), "vandermonde top rows must be invertible");
  Matrix g = v.mul(*top_inv);
  // Force an exact identity in the top rows (numerically it already is).
  for (size_t r = 0; r < k; ++r) {
    for (size_t c = 0; c < k; ++c) {
      SBRS_CHECK(g.at(r, c) == (r == c ? 1 : 0));
    }
  }
  return g;
}

Matrix Matrix::cauchy(size_t rows, size_t cols) {
  SBRS_CHECK_MSG(rows + cols <= 256, "cauchy: x_i and y_j must be distinct");
  Matrix m(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      const uint8_t x = static_cast<uint8_t>(r);
      const uint8_t y = static_cast<uint8_t>(rows + c);
      m.at(r, c) = inv(add(x, y));
    }
  }
  return m;
}

Matrix Matrix::mul(const Matrix& other) const {
  SBRS_CHECK(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t i = 0; i < cols_; ++i) {
      kern::mul_add_row(out.row(r), other.row(i), at(r, i), other.cols_);
    }
  }
  return out;
}

Matrix Matrix::select_rows(const std::vector<size_t>& rows) const {
  Matrix out(rows.size(), cols_);
  for (size_t i = 0; i < rows.size(); ++i) {
    SBRS_CHECK(rows[i] < rows_);
    for (size_t c = 0; c < cols_; ++c) out.at(i, c) = at(rows[i], c);
  }
  return out;
}

std::optional<Matrix> Matrix::inverted() const {
  SBRS_CHECK(rows_ == cols_);
  const size_t n = rows_;
  Matrix a = *this;
  Matrix inv_m = identity(n);

  for (size_t col = 0; col < n; ++col) {
    // Find pivot.
    size_t pivot = col;
    while (pivot < n && a.at(pivot, col) == 0) ++pivot;
    if (pivot == n) return std::nullopt;  // singular
    if (pivot != col) {
      for (size_t c = 0; c < n; ++c) {
        std::swap(a.at(pivot, c), a.at(col, c));
        std::swap(inv_m.at(pivot, c), inv_m.at(col, c));
      }
    }
    // Normalize pivot row.
    const uint8_t p = a.at(col, col);
    if (p != 1) {
      const uint8_t pinv = inv(p);
      kern::mul_row(a.row(col), a.row(col), pinv, n);
      kern::mul_row(inv_m.row(col), inv_m.row(col), pinv, n);
    }
    // Eliminate all other rows.
    for (size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const uint8_t factor = a.at(r, col);
      if (factor == 0) continue;
      kern::mul_add_row(a.row(r), a.row(col), factor, n);
      kern::mul_add_row(inv_m.row(r), inv_m.row(col), factor, n);
    }
  }
  return inv_m;
}

void Matrix::apply(const std::vector<const uint8_t*>& in,
                   const std::vector<uint8_t*>& out, size_t len) const {
  SBRS_CHECK(in.size() == cols_ && out.size() == rows_);
  apply(in.data(), out.data(), len);
}

void Matrix::apply(const uint8_t* const* in, uint8_t* const* out,
                   size_t len) const {
  for (size_t r = 0; r < rows_; ++r) {
    uint8_t* dst = out[r];
    std::memset(dst, 0, len);
    for (size_t c = 0; c < cols_; ++c) {
      kern::mul_add_row(dst, in[c], at(r, c), len);
    }
  }
}

std::ostream& operator<<(std::ostream& os, const Matrix& m) {
  for (size_t r = 0; r < m.rows(); ++r) {
    for (size_t c = 0; c < m.cols(); ++c) {
      os << static_cast<int>(m.at(r, c)) << (c + 1 == m.cols() ? "" : " ");
    }
    os << "\n";
  }
  return os;
}

}  // namespace sbrs::gf
