#include "gf/gf_kernels.h"

#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define SBRS_GF_X86 1
#endif
#if defined(__aarch64__) && defined(__ARM_NEON)
#include <arm_neon.h>
#define SBRS_GF_NEON 1
#endif

namespace sbrs::gf::kern {

namespace {

// Bit-level shift-and-reduce product over the AES polynomial 0x11b; only
// used to seed the tables (and mirrored by gf::mul_slow for the tests).
constexpr uint16_t kPoly = 0x11b;

uint8_t seed_mul(uint8_t a, uint8_t b) {
  uint16_t acc = 0;
  const uint16_t aa = a;
  for (int i = 0; i < 8; ++i) {
    if (b & (1 << i)) acc ^= static_cast<uint16_t>(aa << i);
  }
  for (int bit = 15; bit >= 8; --bit) {
    if (acc & (1 << bit)) acc ^= static_cast<uint16_t>(kPoly << (bit - 8));
  }
  return static_cast<uint8_t>(acc);
}

}  // namespace

Tables::Tables() {
  for (size_t a = 0; a < 256; ++a) {
    for (size_t b = 0; b < 256; ++b) {
      mul[(a << 8) | b] =
          seed_mul(static_cast<uint8_t>(a), static_cast<uint8_t>(b));
    }
  }
  // Split-nibble views of each table row: c*x = c*(x & 0x0f) ^ c*(x & 0xf0).
  for (size_t c = 0; c < 256; ++c) {
    const uint8_t* row = &mul[c << 8];
    for (size_t n = 0; n < 16; ++n) {
      nib_lo[c][n] = row[n];
      nib_hi[c][n] = row[n << 4];
    }
  }
}

const Tables& tables() {
  static const Tables t;
  return t;
}

namespace {

// --- Scalar kernels: one table row, 8 loads per iteration, byte tail. -----

void mul_add_row_scalar(uint8_t* y, const uint8_t* x, uint8_t c, size_t len) {
  const uint8_t* row = &tables().mul[static_cast<size_t>(c) << 8];
  size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    y[i + 0] ^= row[x[i + 0]];
    y[i + 1] ^= row[x[i + 1]];
    y[i + 2] ^= row[x[i + 2]];
    y[i + 3] ^= row[x[i + 3]];
    y[i + 4] ^= row[x[i + 4]];
    y[i + 5] ^= row[x[i + 5]];
    y[i + 6] ^= row[x[i + 6]];
    y[i + 7] ^= row[x[i + 7]];
  }
  for (; i < len; ++i) y[i] ^= row[x[i]];
}

void mul_row_scalar(uint8_t* y, const uint8_t* x, uint8_t c, size_t len) {
  const uint8_t* row = &tables().mul[static_cast<size_t>(c) << 8];
  size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    y[i + 0] = row[x[i + 0]];
    y[i + 1] = row[x[i + 1]];
    y[i + 2] = row[x[i + 2]];
    y[i + 3] = row[x[i + 3]];
    y[i + 4] = row[x[i + 4]];
    y[i + 5] = row[x[i + 5]];
    y[i + 6] = row[x[i + 6]];
    y[i + 7] = row[x[i + 7]];
  }
  for (; i < len; ++i) y[i] = row[x[i]];
}

// --- SSSE3 kernels: 16 products per pshufb pair, scalar tail. -------------
// Built with a function-level target attribute so the TU needs no -mssse3;
// selected at startup only when the CPU reports SSSE3.

#if SBRS_GF_X86

__attribute__((target("ssse3"))) void mul_add_row_ssse3(uint8_t* y,
                                                        const uint8_t* x,
                                                        uint8_t c, size_t len) {
  const Tables& t = tables();
  const __m128i tlo =
      _mm_load_si128(reinterpret_cast<const __m128i*>(t.nib_lo[c]));
  const __m128i thi =
      _mm_load_si128(reinterpret_cast<const __m128i*>(t.nib_hi[c]));
  const __m128i mask = _mm_set1_epi8(0x0f);
  size_t i = 0;
  for (; i + 16 <= len; i += 16) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(x + i));
    const __m128i lo = _mm_shuffle_epi8(tlo, _mm_and_si128(v, mask));
    const __m128i hi =
        _mm_shuffle_epi8(thi, _mm_and_si128(_mm_srli_epi64(v, 4), mask));
    const __m128i prod = _mm_xor_si128(lo, hi);
    const __m128i old =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(y + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(y + i),
                     _mm_xor_si128(old, prod));
  }
  const uint8_t* row = &t.mul[static_cast<size_t>(c) << 8];
  for (; i < len; ++i) y[i] ^= row[x[i]];
}

__attribute__((target("ssse3"))) void mul_row_ssse3(uint8_t* y,
                                                    const uint8_t* x, uint8_t c,
                                                    size_t len) {
  const Tables& t = tables();
  const __m128i tlo =
      _mm_load_si128(reinterpret_cast<const __m128i*>(t.nib_lo[c]));
  const __m128i thi =
      _mm_load_si128(reinterpret_cast<const __m128i*>(t.nib_hi[c]));
  const __m128i mask = _mm_set1_epi8(0x0f);
  size_t i = 0;
  for (; i + 16 <= len; i += 16) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(x + i));
    const __m128i lo = _mm_shuffle_epi8(tlo, _mm_and_si128(v, mask));
    const __m128i hi =
        _mm_shuffle_epi8(thi, _mm_and_si128(_mm_srli_epi64(v, 4), mask));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(y + i),
                     _mm_xor_si128(lo, hi));
  }
  const uint8_t* row = &t.mul[static_cast<size_t>(c) << 8];
  for (; i < len; ++i) y[i] = row[x[i]];
}

#endif  // SBRS_GF_X86

// --- NEON kernels: baseline on AArch64, 16 products per tbl pair. ---------

#if SBRS_GF_NEON

void mul_add_row_neon(uint8_t* y, const uint8_t* x, uint8_t c, size_t len) {
  const Tables& t = tables();
  const uint8x16_t tlo = vld1q_u8(t.nib_lo[c]);
  const uint8x16_t thi = vld1q_u8(t.nib_hi[c]);
  const uint8x16_t mask = vdupq_n_u8(0x0f);
  size_t i = 0;
  for (; i + 16 <= len; i += 16) {
    const uint8x16_t v = vld1q_u8(x + i);
    const uint8x16_t lo = vqtbl1q_u8(tlo, vandq_u8(v, mask));
    const uint8x16_t hi = vqtbl1q_u8(thi, vshrq_n_u8(v, 4));
    vst1q_u8(y + i, veorq_u8(vld1q_u8(y + i), veorq_u8(lo, hi)));
  }
  const uint8_t* row = &t.mul[static_cast<size_t>(c) << 8];
  for (; i < len; ++i) y[i] ^= row[x[i]];
}

void mul_row_neon(uint8_t* y, const uint8_t* x, uint8_t c, size_t len) {
  const Tables& t = tables();
  const uint8x16_t tlo = vld1q_u8(t.nib_lo[c]);
  const uint8x16_t thi = vld1q_u8(t.nib_hi[c]);
  const uint8x16_t mask = vdupq_n_u8(0x0f);
  size_t i = 0;
  for (; i + 16 <= len; i += 16) {
    const uint8x16_t v = vld1q_u8(x + i);
    const uint8x16_t lo = vqtbl1q_u8(tlo, vandq_u8(v, mask));
    const uint8x16_t hi = vqtbl1q_u8(thi, vshrq_n_u8(v, 4));
    vst1q_u8(y + i, veorq_u8(lo, hi));
  }
  const uint8_t* row = &t.mul[static_cast<size_t>(c) << 8];
  for (; i < len; ++i) y[i] = row[x[i]];
}

#endif  // SBRS_GF_NEON

// --- Dispatch: resolved once; scalar is the mandatory fallback. -----------

using RowFn = void (*)(uint8_t*, const uint8_t*, uint8_t, size_t);

struct Dispatch {
  RowFn mul_add;
  RowFn mul;
  const char* name;
};

Dispatch resolve() {
#if SBRS_GF_X86
  if (__builtin_cpu_supports("ssse3")) {
    return {mul_add_row_ssse3, mul_row_ssse3, "ssse3"};
  }
#endif
#if SBRS_GF_NEON
  return {mul_add_row_neon, mul_row_neon, "neon"};
#endif
  return {mul_add_row_scalar, mul_row_scalar, "scalar"};
}

const Dispatch& dispatch() {
  static const Dispatch d = resolve();
  return d;
}

// Word-at-a-time XOR for the coefficient-1 fast path.
void xor_row(uint8_t* y, const uint8_t* x, size_t len) {
  size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    uint64_t a, b;
    std::memcpy(&a, y + i, 8);
    std::memcpy(&b, x + i, 8);
    a ^= b;
    std::memcpy(y + i, &a, 8);
  }
  for (; i < len; ++i) y[i] ^= x[i];
}

}  // namespace

void mul_add_row(uint8_t* y, const uint8_t* x, uint8_t c, size_t len) {
  if (c == 0 || len == 0) return;
  if (c == 1) {
    xor_row(y, x, len);
    return;
  }
  dispatch().mul_add(y, x, c, len);
}

void mul_row(uint8_t* y, const uint8_t* x, uint8_t c, size_t len) {
  if (len == 0) return;
  if (c == 0) {
    std::memset(y, 0, len);
    return;
  }
  if (c == 1) {
    if (y != x) std::memmove(y, x, len);
    return;
  }
  dispatch().mul(y, x, c, len);
}

const char* backend() { return dispatch().name; }

}  // namespace sbrs::gf::kern
