#include "gf/gf256.h"

#include "common/check.h"

namespace sbrs::gf {

namespace detail {

Tables::Tables() {
  // Build exp/log by repeated multiplication with the generator using the
  // slow shift-and-reduce product (table-free, so safe during construction).
  auto slow_mul = [](uint8_t a, uint8_t b) -> uint8_t {
    uint16_t acc = 0;
    uint16_t aa = a;
    for (int i = 0; i < 8; ++i) {
      if (b & (1 << i)) acc ^= aa << i;
    }
    // Reduce modulo kPoly.
    for (int bit = 15; bit >= 8; --bit) {
      if (acc & (1 << bit)) acc ^= kPoly << (bit - 8);
    }
    return static_cast<uint8_t>(acc);
  };

  uint8_t x = 1;
  for (int i = 0; i < 255; ++i) {
    exp[i] = x;
    log[x] = static_cast<uint8_t>(i);
    x = slow_mul(x, kGenerator);
  }
  // Duplicate so exp[log[a]+log[b]] needs no reduction (max index 508).
  for (int i = 255; i < 512; ++i) exp[i] = exp[i - 255];
  log[0] = 0;  // log(0) is undefined; mul() guards against using it.

  inv[0] = 0;  // undefined; inv() guards.
  for (int a = 1; a < 256; ++a) {
    inv[a] = exp[255 - log[a]];
  }
}

const Tables& tables() {
  static const Tables t;
  return t;
}

}  // namespace detail

uint8_t inv(uint8_t a) {
  SBRS_CHECK_MSG(a != 0, "gf::inv(0)");
  return detail::tables().inv[a];
}

uint8_t div(uint8_t a, uint8_t b) {
  SBRS_CHECK_MSG(b != 0, "gf::div by zero");
  if (a == 0) return 0;
  const auto& t = detail::tables();
  return t.exp[t.log[a] + 255 - t.log[b]];
}

uint8_t pow(uint8_t a, uint32_t e) {
  if (e == 0) return 1;
  if (a == 0) return 0;
  const auto& t = detail::tables();
  uint32_t le = (static_cast<uint32_t>(t.log[a]) * (e % 255)) % 255;
  return t.exp[le];
}

uint8_t mul_slow(uint8_t a, uint8_t b) {
  uint16_t acc = 0;
  uint16_t aa = a;
  for (int i = 0; i < 8; ++i) {
    if (b & (1 << i)) acc ^= aa << i;
  }
  for (int bit = 15; bit >= 8; --bit) {
    if (acc & (1 << bit)) acc ^= kPoly << (bit - 8);
  }
  return static_cast<uint8_t>(acc);
}

}  // namespace sbrs::gf
