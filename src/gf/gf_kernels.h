// Bulk GF(2^8) arithmetic kernels — the innermost layer of the coding
// substrate. Everything above (gf256.h scalar ops, gf::Matrix, the RS codec,
// every register protocol and bench) reduces to these row operations.
//
// Table layouts:
//   - mul: a flat 64 KiB full multiplication table, mul[(a << 8) | b] = a*b.
//     One branch-free load per scalar product; row &mul[c << 8] is the
//     256-entry lookup table "multiply by c" used by the unrolled row loops.
//   - nib_lo / nib_hi: per-coefficient split-nibble tables, 2 x 16 entries
//     per coefficient: c*x == nib_lo[c][x & 15] ^ nib_hi[c][x >> 4] (GF
//     addition is XOR, so the product splits across the nibbles). These are
//     exactly the operands a 16-lane byte shuffle (SSSE3 pshufb / NEON tbl)
//     needs to compute 16 products per instruction.
//
// Dispatch: the SIMD paths are compiled behind architecture guards with the
// scalar path as the mandatory fallback. On x86-64 the SSSE3 body is built
// with a function-level target attribute and selected once at startup via
// __builtin_cpu_supports, so no special compiler flags are required; on
// AArch64 NEON is baseline and used unconditionally. backend() reports which
// path is live so benches can record it.
//
// All tables are built once at first use from the bit-level shift-and-reduce
// product (the same reference `gf::mul_slow` validates against), and the
// tests assert exhaustive 256x256 equality of fast and slow multiplication.
#pragma once

#include <cstddef>
#include <cstdint>

namespace sbrs::gf::kern {

struct Tables {
  alignas(64) uint8_t mul[256 * 256];
  alignas(16) uint8_t nib_lo[256][16];
  alignas(16) uint8_t nib_hi[256][16];

  Tables();
};

/// The process-wide kernel tables (built on first use, thread-safe).
const Tables& tables();

/// Branch-free scalar product via the flat table (handles zero operands).
inline uint8_t mul(uint8_t a, uint8_t b) {
  return tables().mul[(static_cast<size_t>(a) << 8) | b];
}

/// y[i] ^= c * x[i] for i in [0, len). The RS encode/decode inner loop.
void mul_add_row(uint8_t* y, const uint8_t* x, uint8_t c, size_t len);

/// y[i] = c * x[i] for i in [0, len). In-place (y == x) is allowed.
void mul_row(uint8_t* y, const uint8_t* x, uint8_t c, size_t len);

/// Which row-kernel implementation is live: "ssse3", "neon", or "scalar".
const char* backend();

}  // namespace sbrs::gf::kern
