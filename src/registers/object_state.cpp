#include "registers/object_state.h"

#include "common/check.h"

namespace sbrs::registers {

RegisterObjectState& as_register_state(runtime::ObjectStateBase& s) {
  auto* cast = dynamic_cast<RegisterObjectState*>(&s);
  SBRS_CHECK_MSG(cast != nullptr, "object state is not RegisterObjectState");
  return *cast;
}

}  // namespace sbrs::registers
