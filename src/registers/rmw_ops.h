// Shared RMW closures used by the register algorithms.
#pragma once

#include "registers/messages.h"
#include "registers/object_state.h"

namespace sbrs::registers {

/// readValue() RMW (Algorithm 3, lines 23-31): return a copy of the
/// object's chunks and watermark without modifying it.
runtime::RmwFn make_read_value_rmw(ObjectId from);

/// Maximum ts.num visible in a readValue quorum: over the storedTS fields
/// and over every chunk's timestamp (Algorithm 2, line 6).
uint64_t max_ts_num(const std::vector<runtime::ResponsePtr>& responses);

/// Maximum storedTS watermark over a readValue quorum (readValue line 30).
TimeStamp max_stored_ts(const std::vector<runtime::ResponsePtr>& responses);

/// Union of all chunks returned by a readValue quorum (the ReadSet).
std::vector<Chunk> merge_chunks(const std::vector<runtime::ResponsePtr>& responses);

}  // namespace sbrs::registers
