#include "registers/rmw_ops.h"

namespace sbrs::registers {

runtime::RmwFn make_read_value_rmw(ObjectId from) {
  return [from](runtime::ObjectStateBase& s) -> runtime::ResponsePtr {
    auto& st = as_register_state(s);
    ReadValueResponse r;
    r.from = from;
    r.stored_ts = st.stored_ts;
    r.vp = st.vp;
    r.vf = st.vf;
    return make_response(std::move(r));
  };
}

uint64_t max_ts_num(const std::vector<runtime::ResponsePtr>& responses) {
  uint64_t best = 0;
  for (const auto& rp : responses) {
    const auto* r = response_as<ReadValueResponse>(rp);
    best = std::max(best, r->stored_ts.num);
    for (const Chunk& c : r->vp) best = std::max(best, c.ts.num);
    for (const Chunk& c : r->vf) best = std::max(best, c.ts.num);
  }
  return best;
}

TimeStamp max_stored_ts(const std::vector<runtime::ResponsePtr>& responses) {
  TimeStamp best = TimeStamp::zero();
  for (const auto& rp : responses) {
    const auto* r = response_as<ReadValueResponse>(rp);
    if (best < r->stored_ts) best = r->stored_ts;
  }
  return best;
}

std::vector<Chunk> merge_chunks(const std::vector<runtime::ResponsePtr>& responses) {
  std::vector<Chunk> out;
  for (const auto& rp : responses) {
    const auto* r = response_as<ReadValueResponse>(rp);
    out.insert(out.end(), r->vp.begin(), r->vp.end());
    out.insert(out.end(), r->vf.begin(), r->vf.end());
  }
  return out;
}

}  // namespace sbrs::registers
