// An *atomic* erasure-coded register, in the spirit of the coded atomic
// storage algorithms the paper cites ([6]): the coded baseline's three-round
// writes, plus reads that write the decoded value's pieces back (with a
// commit) before returning. The write-back re-establishes the key invariant
// for the returned timestamp on a full quorum, which rules out new-old read
// inversions — upgrading strong regularity to atomicity at the cost of a
// write round per read.
//
// Storage-wise this algorithm is in the same O(cD) class as the coded
// baseline (readers add transient pieces of the value they return), which
// is exactly why the paper's Theorem 1 covers it.
#include <algorithm>
#include <optional>

#include "codec/codec.h"
#include "common/check.h"
#include "registers/register_algorithm.h"
#include "registers/round_client.h"
#include "registers/rmw_ops.h"

namespace sbrs::registers {

namespace {

struct CodedAtomicParams {
  RegisterConfig cfg;
  codec::CodecPtr codec;
};

class CodedAtomicClient final : public RoundClient {
 public:
  CodedAtomicClient(ClientId self, CodedAtomicParams params)
      : RoundClient(params.cfg.n, params.cfg.f),
        self_(self),
        p_(std::move(params)) {}

  void on_invoke(const runtime::Invocation& inv, runtime::ExecutionContext& ctx) override {
    SBRS_CHECK(phase_ == Phase::kIdle);
    op_ = inv.op;
    if (inv.kind == runtime::OpKind::kWrite) {
      codec::EncoderOracle oracle(p_.codec, inv.op, inv.value);
      writeset_ = oracle.get_all();
      phase_ = Phase::kWriteReadTs;
    } else {
      phase_ = Phase::kReadLoop;
    }
    start_read_value_round(ctx);
  }

 protected:
  void on_quorum(uint64_t /*round*/,
                 const std::vector<runtime::ResponsePtr>& responses,
                 runtime::ExecutionContext& ctx) override {
    switch (phase_) {
      case Phase::kWriteReadTs: {
        ts_ = TimeStamp{max_ts_num(responses) + 1, self_};
        phase_ = Phase::kWriteStore;
        start_store_round(ctx, writeset_, ts_, /*commit=*/false);
        break;
      }
      case Phase::kWriteStore: {
        phase_ = Phase::kWriteCommit;
        start_commit_round(ctx, ts_);
        break;
      }
      case Phase::kWriteCommit: {
        phase_ = Phase::kIdle;
        writeset_.clear();
        ctx.complete(op_, std::nullopt);
        break;
      }
      case Phase::kReadLoop: {
        if (auto v = try_decode(responses)) {
          // Re-encode the decoded value through this read's own oracle and
          // write it back (pieces + commit in one RMW round), so the
          // returned timestamp is fully established before returning.
          read_result_ = *v;
          codec::EncoderOracle oracle(p_.codec, op_, *v);
          writeset_ = oracle.get_all();
          phase_ = Phase::kReadWriteBack;
          start_store_round(ctx, writeset_, decoded_ts_, /*commit=*/true);
        } else {
          start_read_value_round(ctx);
        }
        break;
      }
      case Phase::kReadWriteBack: {
        phase_ = Phase::kIdle;
        writeset_.clear();
        ctx.complete(op_, read_result_);
        break;
      }
      case Phase::kIdle:
        SBRS_CHECK_MSG(false, "quorum while idle");
    }
  }

 private:
  enum class Phase {
    kIdle,
    kWriteReadTs,
    kWriteStore,
    kWriteCommit,
    kReadLoop,
    kReadWriteBack
  };

  void start_read_value_round(runtime::ExecutionContext& ctx) {
    start_round(
        ctx, [](ObjectId o) { return make_read_value_rmw(o); },
        [](ObjectId) { return metrics::StorageFootprint{}; });
  }

  /// Store piece i of `set` at bo_i with timestamp ts; when `commit`, also
  /// raise the watermark to ts (the read write-back's combined RMW).
  void start_store_round(runtime::ExecutionContext& ctx,
                         const std::vector<codec::TaggedBlock>& set,
                         TimeStamp ts, bool commit) {
    start_round(
        ctx,
        [=, &set](ObjectId o) -> runtime::RmwFn {
          const Chunk piece{ts, set[o.value]};
          return [piece, commit, o](runtime::ObjectStateBase& s) -> runtime::ResponsePtr {
            auto& st = as_register_state(s);
            std::erase_if(st.vp, [&](const Chunk& c) {
              return c.ts < st.stored_ts;
            });
            if (!(piece.ts < st.stored_ts)) {
              // Avoid duplicating a piece already present for (ts, index).
              const bool dup = std::any_of(
                  st.vp.begin(), st.vp.end(), [&](const Chunk& c) {
                    return c.ts == piece.ts && c.index() == piece.index();
                  });
              if (!dup) st.vp.push_back(piece);
            }
            if (commit) {
              st.stored_ts = std::max(st.stored_ts, piece.ts);
              std::erase_if(st.vp, [&](const Chunk& c) {
                return c.ts < st.stored_ts;
              });
            }
            return make_response(AckResponse{o, st.stored_ts});
          };
        },
        [&](ObjectId o) {
          metrics::StorageFootprint fp;
          fp.add(set[o.value]);
          return fp;
        });
  }

  void start_commit_round(runtime::ExecutionContext& ctx, TimeStamp ts) {
    start_round(
        ctx,
        [=](ObjectId o) -> runtime::RmwFn {
          return [ts, o](runtime::ObjectStateBase& s) -> runtime::ResponsePtr {
            auto& st = as_register_state(s);
            st.stored_ts = std::max(st.stored_ts, ts);
            std::erase_if(st.vp, [&](const Chunk& c) {
              return c.ts < st.stored_ts;
            });
            return make_response(AckResponse{o, st.stored_ts});
          };
        },
        [](ObjectId) { return metrics::StorageFootprint{}; });
  }

  std::optional<Value> try_decode(
      const std::vector<runtime::ResponsePtr>& responses) {
    const TimeStamp watermark = max_stored_ts(responses);
    const std::vector<Chunk> read_set = merge_chunks(responses);
    std::optional<TimeStamp> best;
    for (const Chunk& c : read_set) {
      if (c.ts < watermark) continue;
      if (best.has_value() && c.ts <= *best) continue;
      if (distinct_indices_at(read_set, c.ts) >= p_.cfg.k) best = c.ts;
    }
    if (!best.has_value()) return std::nullopt;
    auto v = p_.codec->decode(blocks_at(read_set, *best));
    if (v.has_value()) decoded_ts_ = *best;
    return v;
  }

  ClientId self_;
  CodedAtomicParams p_;
  Phase phase_ = Phase::kIdle;
  OpId op_;
  std::vector<codec::TaggedBlock> writeset_;
  TimeStamp ts_;
  TimeStamp decoded_ts_;
  Value read_result_;
};

class CodedAtomicAlgorithm final : public RegisterAlgorithm {
 public:
  explicit CodedAtomicAlgorithm(const RegisterConfig& cfg) {
    cfg.validate_coded();
    params_.cfg = cfg;
    params_.codec = codec::make_codec(cfg.k == 1 ? "replication" : "rs",
                                      cfg.n, cfg.k, cfg.data_bits);
  }

  std::string name() const override {
    return "coded-atomic(" + params_.codec->name() + ")";
  }
  const RegisterConfig& config() const override { return params_.cfg; }
  codec::CodecPtr codec() const override { return params_.codec; }

  runtime::ObjectFactory object_factory() const override {
    auto params = params_;
    return [params](ObjectId o) -> std::unique_ptr<runtime::ObjectStateBase> {
      auto st = std::make_unique<RegisterObjectState>();
      const Value v0 = Value::initial(params.cfg.data_bits);
      codec::EncoderOracle oracle(params.codec, OpId::none(), v0);
      st->vp.push_back(Chunk{TimeStamp::zero(), oracle.get(o.value + 1)});
      return st;
    };
  }

  runtime::ClientFactory client_factory() const override {
    auto params = params_;
    return [params](ClientId c) -> std::unique_ptr<runtime::ClientProtocol> {
      return std::make_unique<CodedAtomicClient>(c, params);
    };
  }

 private:
  CodedAtomicParams params_;
};

}  // namespace

std::unique_ptr<RegisterAlgorithm> make_coded_atomic(
    const RegisterConfig& cfg) {
  return std::make_unique<CodedAtomicAlgorithm>(cfg);
}

}  // namespace sbrs::registers
