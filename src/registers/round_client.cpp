#include "registers/round_client.h"

namespace sbrs::registers {

uint64_t RoundClient::start_round(
    runtime::ExecutionContext& ctx, const std::function<runtime::RmwFn(ObjectId)>& fn_for,
    const std::function<metrics::StorageFootprint(ObjectId)>& footprint_for) {
  SBRS_CHECK_MSG(!round_active_, "round already in flight");
  const uint64_t round = next_round_++;
  active_round_ = round;
  round_active_ = true;
  collected_.clear();
  for (uint32_t i = 0; i < ctx.num_objects(); ++i) {
    const ObjectId target{i};
    RmwId id = ctx.trigger(target, fn_for(target), footprint_for(target));
    rmw_round_[id] = round;
  }
  return round;
}

void RoundClient::on_response(RmwId rmw, runtime::ResponsePtr response,
                              runtime::ExecutionContext& ctx) {
  auto it = rmw_round_.find(rmw);
  if (it == rmw_round_.end()) return;  // not ours / already forgotten
  const uint64_t round = it->second;
  rmw_round_.erase(it);
  if (!round_active_ || round != active_round_) {
    return;  // stale response of a finished round; effect already applied
  }
  collected_.push_back(std::move(response));
  if (collected_.size() < quorum()) return;

  // Quorum reached: close the round *before* the callback so the subclass
  // can immediately start the next round or complete the operation.
  round_active_ = false;
  std::vector<runtime::ResponsePtr> responses;
  responses.swap(collected_);
  on_quorum(round, responses, ctx);
}

}  // namespace sbrs::registers
