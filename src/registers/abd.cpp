// Replication baseline: the classic ABD multi-writer register [4].
//
// Every base object stores one full timestamped copy of the value (Vf with
// a single chunk of D bits). Writes are two rounds (read timestamps, then
// store); reads are one round (two with the optional write-back, which
// upgrades the register from strongly regular to atomic). Storage is flat
// in the concurrency level — n * D = (2f+1) * D bits — which is the
// replication cost the paper's lower bound shows cannot be beaten by more
// than the min(f, c) factor.
#include <algorithm>
#include <optional>

#include "codec/codec.h"
#include "common/check.h"
#include "registers/register_algorithm.h"
#include "registers/round_client.h"
#include "registers/rmw_ops.h"

namespace sbrs::registers {

namespace {

struct AbdParams {
  RegisterConfig cfg;
  AbdOptions opts;
  codec::CodecPtr codec;  // ReplicationCodec(n)
};

class AbdClient final : public RoundClient {
 public:
  AbdClient(ClientId self, AbdParams params)
      : RoundClient(params.cfg.n, params.cfg.f),
        self_(self),
        p_(std::move(params)) {}

  void on_invoke(const runtime::Invocation& inv, runtime::ExecutionContext& ctx) override {
    SBRS_CHECK(phase_ == Phase::kIdle);
    op_ = inv.op;
    if (inv.kind == runtime::OpKind::kWrite) {
      value_ = inv.value;
      phase_ = Phase::kWriteReadTs;
    } else {
      phase_ = Phase::kReadCollect;
    }
    start_round(
        ctx, [](ObjectId o) { return make_read_value_rmw(o); },
        [](ObjectId) { return metrics::StorageFootprint{}; });
  }

 protected:
  void on_quorum(uint64_t /*round*/,
                 const std::vector<runtime::ResponsePtr>& responses,
                 runtime::ExecutionContext& ctx) override {
    switch (phase_) {
      case Phase::kWriteReadTs: {
        const TimeStamp ts{max_ts_num(responses) + 1, self_};
        phase_ = Phase::kWriteStore;
        start_store_round(ctx, ts, value_, op_);
        break;
      }
      case Phase::kWriteStore: {
        phase_ = Phase::kIdle;
        ctx.complete(op_, std::nullopt);
        break;
      }
      case Phase::kReadCollect: {
        // Pick the freshest replica among the quorum.
        std::optional<Chunk> best;
        for (const Chunk& c : merge_chunks(responses)) {
          if (!best.has_value() || best->ts < c.ts) best = c;
        }
        SBRS_CHECK_MSG(best.has_value(), "ABD object with empty replica");
        auto decoded = p_.codec->decode({&best->block.block, 1});
        SBRS_CHECK_MSG(decoded.has_value(), "replication decode failed");
        if (p_.opts.write_back) {
          phase_ = Phase::kReadWriteBack;
          read_result_ = *decoded;
          start_write_back_round(ctx, *best);
        } else {
          phase_ = Phase::kIdle;
          ctx.complete(op_, std::move(decoded));
        }
        break;
      }
      case Phase::kReadWriteBack: {
        phase_ = Phase::kIdle;
        ctx.complete(op_, read_result_);
        break;
      }
      case Phase::kIdle:
        SBRS_CHECK_MSG(false, "quorum while idle");
    }
  }

 private:
  enum class Phase {
    kIdle,
    kWriteReadTs,
    kWriteStore,
    kReadCollect,
    kReadWriteBack
  };

  void start_store_round(runtime::ExecutionContext& ctx, TimeStamp ts, const Value& v,
                         OpId op) {
    codec::EncoderOracle oracle(p_.codec, op, v);
    start_round(
        ctx,
        [&, ts](ObjectId o) -> runtime::RmwFn {
          const Chunk replica{ts, oracle.get(o.value + 1)};
          return [replica, o](runtime::ObjectStateBase& s) -> runtime::ResponsePtr {
            auto& st = as_register_state(s);
            if (st.stored_ts < replica.ts) {
              st.stored_ts = replica.ts;
              st.vf = {replica};
            }
            return make_response(AckResponse{o, st.stored_ts});
          };
        },
        [&](ObjectId o) {
          metrics::StorageFootprint fp;
          fp.add(oracle.get(o.value + 1));
          return fp;
        });
  }

  /// Write-back of a read value: re-stores the freshest chunk (with its
  /// original provenance) so that subsequent reads cannot observe older
  /// values — the classic ABD second phase giving atomicity.
  void start_write_back_round(runtime::ExecutionContext& ctx, const Chunk& chunk) {
    start_round(
        ctx,
        [&](ObjectId o) -> runtime::RmwFn {
          const Chunk c = chunk;
          return [c, o](runtime::ObjectStateBase& s) -> runtime::ResponsePtr {
            auto& st = as_register_state(s);
            if (st.stored_ts < c.ts) {
              st.stored_ts = c.ts;
              st.vf = {c};
            }
            return make_response(AckResponse{o, st.stored_ts});
          };
        },
        [&](ObjectId) {
          metrics::StorageFootprint fp;
          fp.add(chunk.block);
          return fp;
        });
  }

  ClientId self_;
  AbdParams p_;
  Phase phase_ = Phase::kIdle;
  OpId op_;
  Value value_;
  Value read_result_;
};

class AbdAlgorithm final : public RegisterAlgorithm {
 public:
  AbdAlgorithm(const RegisterConfig& cfg, AbdOptions opts) {
    RegisterConfig fixed = cfg;
    fixed.k = 1;
    fixed.validate_replicated();
    params_.cfg = fixed;
    params_.opts = opts;
    params_.codec =
        codec::make_codec("replication", fixed.n, 1, fixed.data_bits);
  }

  std::string name() const override {
    return params_.opts.write_back ? "abd[write-back]" : "abd";
  }
  const RegisterConfig& config() const override { return params_.cfg; }
  codec::CodecPtr codec() const override { return params_.codec; }

  runtime::ObjectFactory object_factory() const override {
    auto params = params_;
    return [params](ObjectId o) -> std::unique_ptr<runtime::ObjectStateBase> {
      auto st = std::make_unique<RegisterObjectState>();
      const Value v0 = Value::initial(params.cfg.data_bits);
      codec::EncoderOracle oracle(params.codec, OpId::none(), v0);
      st->vf.push_back(Chunk{TimeStamp::zero(), oracle.get(o.value + 1)});
      return st;
    };
  }

  runtime::ClientFactory client_factory() const override {
    auto params = params_;
    return [params](ClientId c) -> std::unique_ptr<runtime::ClientProtocol> {
      return std::make_unique<AbdClient>(c, params);
    };
  }

 private:
  AbdParams params_;
};

}  // namespace

std::unique_ptr<RegisterAlgorithm> make_abd(const RegisterConfig& cfg,
                                            AbdOptions opts) {
  return std::make_unique<AbdAlgorithm>(cfg, opts);
}

}  // namespace sbrs::registers
