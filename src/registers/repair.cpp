#include "registers/repair.h"

#include <algorithm>
#include <functional>

#include "common/check.h"

namespace sbrs::registers {

std::optional<runtime::RepairPlan> plan_register_repair(
    const std::vector<const RegisterObjectState*>& peers,
    const RegisterObjectState& target, uint32_t target_index,
    uint32_t k, const codec::CodecPtr& codec) {
  if (peers.empty()) return std::nullopt;

  TimeStamp watermark = TimeStamp::zero();
  std::vector<Chunk> seen;
  for (const RegisterObjectState* p : peers) {
    watermark = std::max(watermark, p->stored_ts);
    const std::vector<Chunk> cs = p->all_chunks();
    seen.insert(seen.end(), cs.begin(), cs.end());
  }

  // Candidate timestamps at or above the watermark, newest first (the read
  // algorithms' scan order), deduplicated.
  std::vector<TimeStamp> cands;
  for (const Chunk& c : seen) {
    if (c.ts >= watermark) cands.push_back(c.ts);
  }
  std::sort(cands.begin(), cands.end(), std::greater<>());
  cands.erase(std::unique(cands.begin(), cands.end()), cands.end());

  std::optional<TimeStamp> best;
  for (const TimeStamp& ts : cands) {
    if (distinct_indices_at(seen, ts) >= k) {
      best = ts;
      break;
    }
  }
  if (!best.has_value()) return std::nullopt;
  const TimeStamp wm = watermark;

  // Target already fresh: a zero-bit digest push. The RMW mutates nothing
  // but its delivery still closes the repair window.
  bool target_has_best = false;
  for (const Chunk& c : target.all_chunks()) {
    if (c.ts >= *best) {
      target_has_best = true;
      break;
    }
  }
  if (target_has_best && target.stored_ts >= wm) {
    runtime::RepairPlan plan;
    plan.fn = [](runtime::ObjectStateBase&) -> runtime::ResponsePtr { return nullptr; };
    return plan;  // empty request footprint: zero bits on the channel
  }

  // Decode the best value and re-encode the target's block.
  const std::vector<codec::Block> blocks = blocks_at(seen, *best);
  const std::optional<Value> v = codec->decode(blocks);
  if (!v.has_value()) return std::nullopt;

  // Provenance: the original write's op, read off any peer chunk at `best`
  // (at least one exists — distinct_indices_at(seen, best) >= k >= 1).
  codec::Source src{};
  for (const Chunk& c : seen) {
    if (c.ts == *best) {
      src.op = c.block.source.op;
      break;
    }
  }
  src.index = target_index;

  Chunk chunk;
  chunk.ts = *best;
  chunk.block = codec::TaggedBlock{src, codec->encode_block(*v, target_index)};

  runtime::RepairPlan plan;
  plan.request_footprint.add(chunk.block);
  plan.fn = [chunk, wm](runtime::ObjectStateBase& s) -> runtime::ResponsePtr {
    auto& st = as_register_state(s);
    // Same shape as the write protocols' commit round: garbage-collect
    // below the (committed) watermark, install the piece, raise storedTS —
    // but only to the watermark, never to the pushed chunk's timestamp.
    std::erase_if(st.vp, [&](const Chunk& c) { return c.ts < wm; });
    std::erase_if(st.vf, [&](const Chunk& c) { return c.ts < wm; });
    const auto dup = [&](const std::vector<Chunk>& cs) {
      for (const Chunk& c : cs) {
        if (c.ts == chunk.ts && c.index() == chunk.index()) return true;
      }
      return false;
    };
    if (!dup(st.vp) && !dup(st.vf)) st.vp.push_back(chunk);
    st.stored_ts = std::max(st.stored_ts, wm);
    return nullptr;
  };
  return plan;
}

runtime::RepairPlanner make_repair_planner(const RegisterAlgorithm& alg) {
  const uint32_t k = alg.config().k;
  codec::CodecPtr codec = alg.codec();
  return [k, codec = std::move(codec)](
             const runtime::SystemView& sim,
             ObjectId o) -> std::optional<runtime::RepairPlan> {
    std::vector<const RegisterObjectState*> peers;
    peers.reserve(sim.num_objects());
    for (uint32_t i = 0; i < sim.num_objects(); ++i) {
      const ObjectId id{i};
      if (i == o.value || !sim.object_alive(id) || sim.object_repairing(id)) {
        continue;
      }
      const auto* st =
          dynamic_cast<const RegisterObjectState*>(&sim.object_state(id));
      if (st != nullptr) peers.push_back(st);
    }
    const auto* target =
        dynamic_cast<const RegisterObjectState*>(&sim.object_state(o));
    if (target == nullptr) return std::nullopt;
    return plan_register_repair(peers, *target, o.value + 1, k, codec);
  };
}

runtime::RepairPlanner RegisterAlgorithm::repair_planner() const {
  return make_repair_planner(*this);
}

}  // namespace sbrs::registers
