// The paper's adaptive register emulation (Section 5, Algorithms 1-3).
//
// A write proceeds in three rounds:
//   1. read timestamps (readValue), pick ts = <max seen + 1, j>;
//   2. update: store the i-th code piece in bo_i.Vp if |Vp| < k (trimming
//      pieces older than the observed storedTS), otherwise store a full
//      replica (k pieces) in bo_i.Vf;
//   3. garbage collect: drop all chunks older than ts everywhere, shrink an
//      own full replica down to one piece, and raise storedTS to ts.
//
// A read repeats readValue rounds until some timestamp >= the storedTS
// watermark has k distinct pieces, then decodes it (FW-termination: reads
// are guaranteed to return only when finitely many writes are invoked).
//
// Storage intuition: while concurrency is below k the Vp sets absorb one
// piece per concurrent write (cost (c+1) * n * D/k); when concurrency
// exceeds k the objects switch to full replicas, capping the cost at
// ~2 * n * D. With k = f both branches are O(min(f, c) * D) — matching the
// lower bound.
#include <algorithm>
#include <optional>

#include "codec/codec.h"
#include "common/check.h"
#include "registers/register_algorithm.h"
#include "registers/round_client.h"
#include "registers/rmw_ops.h"

namespace sbrs::registers {

namespace {

struct AdaptiveParams {
  RegisterConfig cfg;
  AdaptiveOptions opts;
  codec::CodecPtr codec;

  uint32_t vp_capacity() const {
    if (opts.vp_unbounded) return UINT32_MAX;
    if (opts.vp_capacity_override > 0) return opts.vp_capacity_override;
    return cfg.k;
  }
};

class AdaptiveClient final : public RoundClient {
 public:
  AdaptiveClient(ClientId self, AdaptiveParams params)
      : RoundClient(params.cfg.n, params.cfg.f),
        self_(self),
        p_(std::move(params)) {}

  void on_invoke(const runtime::Invocation& inv, runtime::ExecutionContext& ctx) override {
    SBRS_CHECK(phase_ == Phase::kIdle);
    op_ = inv.op;
    if (inv.kind == runtime::OpKind::kWrite) {
      // Encode v into n pieces via the write's encoder oracle (line 4).
      codec::EncoderOracle oracle(p_.codec, inv.op, inv.value);
      writeset_ = oracle.get_all();
      phase_ = Phase::kWriteReadTs;
      start_read_value_round(ctx);
    } else {
      phase_ = Phase::kReadLoop;
      read_rounds_ = 0;
      start_read_value_round(ctx);
    }
  }

 protected:
  void on_quorum(uint64_t /*round*/,
                 const std::vector<runtime::ResponsePtr>& responses,
                 runtime::ExecutionContext& ctx) override {
    switch (phase_) {
      case Phase::kWriteReadTs: {
        // Lines 5-7: pick a timestamp above everything observed.
        observed_sts_ = max_stored_ts(responses);
        ts_ = TimeStamp{max_ts_num(responses) + 1, self_};
        phase_ = Phase::kWriteUpdate;
        start_update_round(ctx);
        break;
      }
      case Phase::kWriteUpdate: {
        phase_ = Phase::kWriteGc;
        start_gc_round(ctx);
        break;
      }
      case Phase::kWriteGc: {
        phase_ = Phase::kIdle;
        writeset_.clear();
        ctx.complete(op_, std::nullopt);
        break;
      }
      case Phase::kReadLoop: {
        ++read_rounds_;
        if (auto v = try_decode(responses)) {
          phase_ = Phase::kIdle;
          ctx.complete(op_, std::move(v));
        } else {
          start_read_value_round(ctx);  // line 19: keep sampling
        }
        break;
      }
      case Phase::kIdle:
        SBRS_CHECK_MSG(false, "quorum while idle");
    }
  }

 private:
  enum class Phase { kIdle, kWriteReadTs, kWriteUpdate, kWriteGc, kReadLoop };

  void start_read_value_round(runtime::ExecutionContext& ctx) {
    start_round(
        ctx, [](ObjectId o) { return make_read_value_rmw(o); },
        [](ObjectId) { return metrics::StorageFootprint{}; });
  }

  void start_update_round(runtime::ExecutionContext& ctx) {
    const TimeStamp ts = ts_;
    const TimeStamp sts = observed_sts_;
    const uint32_t cap = p_.vp_capacity();
    const bool replicas = p_.opts.enable_replica_path;
    const uint32_t k = p_.cfg.k;

    // The full replica is the k systematic pieces (Algorithm 3, line 38).
    std::vector<Chunk> replica;
    replica.reserve(k);
    for (uint32_t j = 0; j < k; ++j) {
      replica.push_back(Chunk{ts, writeset_[j]});
    }

    start_round(
        ctx,
        [=, this](ObjectId o) -> runtime::RmwFn {
          const Chunk piece{ts, writeset_[o.value]};
          return [=](runtime::ObjectStateBase& s) -> runtime::ResponsePtr {
            auto& st = as_register_state(s);
            // Line 33: a newer write already committed here; do nothing.
            if (ts <= st.stored_ts) {
              return make_response(AckResponse{o, st.stored_ts});
            }
            if (st.vp.size() < cap) {
              // Line 36: trim pieces superseded by the observed watermark
              // and store my piece.
              std::erase_if(st.vp,
                            [&](const Chunk& c) { return c.ts < sts; });
              st.vp.push_back(piece);
            } else if (replicas) {
              // Line 37-38: Vp is full — store a complete replica if ours
              // is newer than the one present.
              const bool replace = st.vf.empty() || max_ts(st.vf) < ts;
              if (replace) st.vf = replica;
            }
            // Line 39: propagate the watermark.
            st.stored_ts = std::max(st.stored_ts, sts);
            return make_response(AckResponse{o, st.stored_ts});
          };
        },
        [&](ObjectId o) {
          metrics::StorageFootprint fp;
          fp.add(writeset_[o.value]);  // the Vp piece for this object
          if (replicas) {
            for (uint32_t j = 0; j < k; ++j) fp.add(writeset_[j]);
          }
          return fp;
        });
  }

  void start_gc_round(runtime::ExecutionContext& ctx) {
    const TimeStamp ts = ts_;
    start_round(
        ctx,
        [=, this](ObjectId o) -> runtime::RmwFn {
          const Chunk piece{ts, writeset_[o.value]};
          return [=](runtime::ObjectStateBase& s) -> runtime::ResponsePtr {
            auto& st = as_register_state(s);
            // Lines 41-42: keep only chunks at least as new as my write.
            std::erase_if(st.vp, [&](const Chunk& c) { return c.ts < ts; });
            std::erase_if(st.vf, [&](const Chunk& c) { return c.ts < ts; });
            // Lines 43-44: replace an own full replica by a single piece.
            const bool mine = std::any_of(
                st.vf.begin(), st.vf.end(),
                [&](const Chunk& c) { return c.ts == ts; });
            if (mine) st.vf = {piece};
            // Line 45.
            st.stored_ts = std::max(st.stored_ts, ts);
            return make_response(AckResponse{o, st.stored_ts});
          };
        },
        [&](ObjectId o) {
          metrics::StorageFootprint fp;
          fp.add(writeset_[o.value]);
          return fp;
        });
  }

  /// Algorithm 2 lines 18-21: the highest timestamp >= storedTS with at
  /// least k distinct pieces, decoded.
  std::optional<Value> try_decode(
      const std::vector<runtime::ResponsePtr>& responses) {
    const TimeStamp watermark = max_stored_ts(responses);
    const std::vector<Chunk> read_set = merge_chunks(responses);
    std::optional<TimeStamp> best;
    for (const Chunk& c : read_set) {
      if (c.ts < watermark) continue;
      if (best.has_value() && c.ts <= *best) continue;
      if (distinct_indices_at(read_set, c.ts) >= p_.cfg.k) best = c.ts;
    }
    if (!best.has_value()) return std::nullopt;
    return p_.codec->decode(blocks_at(read_set, *best));
  }

  ClientId self_;
  AdaptiveParams p_;
  Phase phase_ = Phase::kIdle;
  OpId op_;
  std::vector<codec::TaggedBlock> writeset_;
  TimeStamp ts_;
  TimeStamp observed_sts_;
  uint32_t read_rounds_ = 0;
};

class AdaptiveAlgorithm final : public RegisterAlgorithm {
 public:
  AdaptiveAlgorithm(const RegisterConfig& cfg, AdaptiveOptions opts) {
    cfg.validate_coded();
    params_.cfg = cfg;
    params_.opts = opts;
    params_.codec = codec::make_codec(cfg.k == 1 ? "replication" : "rs",
                                      cfg.n, cfg.k, cfg.data_bits);
  }

  std::string name() const override {
    std::string n = "adaptive(" + params_.codec->name() + ")";
    if (!params_.opts.enable_replica_path) n += "[no-replica]";
    if (params_.opts.vp_unbounded) n += "[vp-unbounded]";
    return n;
  }

  const RegisterConfig& config() const override { return params_.cfg; }
  codec::CodecPtr codec() const override { return params_.codec; }

  runtime::ObjectFactory object_factory() const override {
    auto params = params_;
    return [params](ObjectId o) -> std::unique_ptr<runtime::ObjectStateBase> {
      auto st = std::make_unique<RegisterObjectState>();
      // Initialization (Algorithm 1, line 9): bo_i holds the i-th piece of
      // v0 with the zero timestamp, sourced from the fictitious write op0.
      const Value v0 = Value::initial(params.cfg.data_bits);
      codec::EncoderOracle oracle(params.codec, OpId::none(), v0);
      st->vp.push_back(Chunk{TimeStamp::zero(), oracle.get(o.value + 1)});
      return st;
    };
  }

  runtime::ClientFactory client_factory() const override {
    auto params = params_;
    return [params](ClientId c) -> std::unique_ptr<runtime::ClientProtocol> {
      return std::make_unique<AdaptiveClient>(c, params);
    };
  }

 private:
  AdaptiveParams params_;
};

}  // namespace

void RegisterConfig::validate_coded() const {
  SBRS_CHECK_MSG(k >= 1, "k >= 1 required");
  SBRS_CHECK_MSG(n == 2 * f + k, "coded algorithms require n == 2f + k");
  SBRS_CHECK_MSG(2 * f < n, "f < n/2 required");
  SBRS_CHECK_MSG(data_bits >= 8 && data_bits % 8 == 0,
                 "data_bits must be a positive multiple of 8");
}

void RegisterConfig::validate_replicated() const {
  SBRS_CHECK_MSG(n >= 2 * f + 1, "replication requires n >= 2f + 1");
  SBRS_CHECK_MSG(data_bits >= 8 && data_bits % 8 == 0,
                 "data_bits must be a positive multiple of 8");
}

std::unique_ptr<RegisterAlgorithm> make_adaptive(const RegisterConfig& cfg,
                                                 AdaptiveOptions opts) {
  return std::make_unique<AdaptiveAlgorithm>(cfg, opts);
}

}  // namespace sbrs::registers
