// RMW response payloads used by the register algorithms.
#pragma once

#include <memory>

#include "registers/chunk.h"
#include "runtime/types.h"

namespace sbrs::registers {

/// Response of a readValue() RMW (Algorithm 3 lines 23-31): a copy of the
/// object's chunks and its storedTS watermark.
struct ReadValueResponse {
  ObjectId from;
  TimeStamp stored_ts;
  std::vector<Chunk> vp;
  std::vector<Chunk> vf;

  std::vector<Chunk> all_chunks() const {
    std::vector<Chunk> out = vp;
    out.insert(out.end(), vf.begin(), vf.end());
    return out;
  }
};

/// Response of an update / GC / commit RMW: a plain acknowledgement
/// carrying the object's (post-RMW) watermark.
struct AckResponse {
  ObjectId from;
  TimeStamp stored_ts;
};

template <typename T>
runtime::ResponsePtr make_response(T value) {
  return std::make_shared<const T>(std::move(value));
}

template <typename T>
const T* response_as(const runtime::ResponsePtr& p) {
  return static_cast<const T*>(p.get());
}

}  // namespace sbrs::registers
