// Pure erasure-coded baseline, in the style of the asynchronous code-based
// algorithms the paper cites ([5, 9, 6, 8]).
//
// Writes are three rounds: read-timestamp, store (each object keeps the new
// piece *in addition to* all pieces not yet superseded by a committed
// write), and commit (raise the storedTS watermark, letting objects drop
// older pieces). Reads loop readValue rounds until a timestamp at or above
// the watermark has k decodable pieces (FW-termination), exactly like the
// adaptive algorithm's reads.
//
// The point of this baseline is its storage profile: because coded pieces
// of an unfinished write cannot be garbage-collected (no single object can
// reconstruct the value, so deleting early would lose it), every concurrent
// write parks one piece per object, and the storage grows as
// Theta(c * n * D / k) = Theta(c * D) for k ~ f — the O(cD) behaviour the
// paper's introduction attributes to existing code-based algorithms, and
// which Theorem 1 shows is unavoidable without falling back to replication.
#include <algorithm>
#include <optional>

#include "codec/codec.h"
#include "common/check.h"
#include "registers/register_algorithm.h"
#include "registers/round_client.h"
#include "registers/rmw_ops.h"

namespace sbrs::registers {

namespace {

struct CodedParams {
  RegisterConfig cfg;
  codec::CodecPtr codec;
};

class CodedClient final : public RoundClient {
 public:
  CodedClient(ClientId self, CodedParams params)
      : RoundClient(params.cfg.n, params.cfg.f),
        self_(self),
        p_(std::move(params)) {}

  void on_invoke(const runtime::Invocation& inv, runtime::ExecutionContext& ctx) override {
    SBRS_CHECK(phase_ == Phase::kIdle);
    op_ = inv.op;
    if (inv.kind == runtime::OpKind::kWrite) {
      codec::EncoderOracle oracle(p_.codec, inv.op, inv.value);
      writeset_ = oracle.get_all();
      phase_ = Phase::kWriteReadTs;
    } else {
      phase_ = Phase::kReadLoop;
    }
    start_read_value_round(ctx);
  }

 protected:
  void on_quorum(uint64_t /*round*/,
                 const std::vector<runtime::ResponsePtr>& responses,
                 runtime::ExecutionContext& ctx) override {
    switch (phase_) {
      case Phase::kWriteReadTs: {
        ts_ = TimeStamp{max_ts_num(responses) + 1, self_};
        phase_ = Phase::kWriteStore;
        start_store_round(ctx);
        break;
      }
      case Phase::kWriteStore: {
        phase_ = Phase::kWriteCommit;
        start_commit_round(ctx);
        break;
      }
      case Phase::kWriteCommit: {
        phase_ = Phase::kIdle;
        writeset_.clear();
        ctx.complete(op_, std::nullopt);
        break;
      }
      case Phase::kReadLoop: {
        if (auto v = try_decode(responses)) {
          phase_ = Phase::kIdle;
          ctx.complete(op_, std::move(v));
        } else {
          start_read_value_round(ctx);
        }
        break;
      }
      case Phase::kIdle:
        SBRS_CHECK_MSG(false, "quorum while idle");
    }
  }

 private:
  enum class Phase {
    kIdle,
    kWriteReadTs,
    kWriteStore,
    kWriteCommit,
    kReadLoop
  };

  void start_read_value_round(runtime::ExecutionContext& ctx) {
    start_round(
        ctx, [](ObjectId o) { return make_read_value_rmw(o); },
        [](ObjectId) { return metrics::StorageFootprint{}; });
  }

  void start_store_round(runtime::ExecutionContext& ctx) {
    const TimeStamp ts = ts_;
    start_round(
        ctx,
        [=, this](ObjectId o) -> runtime::RmwFn {
          const Chunk piece{ts, writeset_[o.value]};
          return [piece, o](runtime::ObjectStateBase& s) -> runtime::ResponsePtr {
            auto& st = as_register_state(s);
            // Keep every piece not superseded by a *committed* write —
            // coded pieces of outstanding writes cannot be dropped safely.
            std::erase_if(st.vp, [&](const Chunk& c) {
              return c.ts < st.stored_ts;
            });
            if (!(piece.ts < st.stored_ts)) st.vp.push_back(piece);
            return make_response(AckResponse{o, st.stored_ts});
          };
        },
        [&](ObjectId o) {
          metrics::StorageFootprint fp;
          fp.add(writeset_[o.value]);
          return fp;
        });
  }

  void start_commit_round(runtime::ExecutionContext& ctx) {
    const TimeStamp ts = ts_;
    start_round(
        ctx,
        [=](ObjectId o) -> runtime::RmwFn {
          return [ts, o](runtime::ObjectStateBase& s) -> runtime::ResponsePtr {
            auto& st = as_register_state(s);
            st.stored_ts = std::max(st.stored_ts, ts);
            std::erase_if(st.vp, [&](const Chunk& c) {
              return c.ts < st.stored_ts;
            });
            return make_response(AckResponse{o, st.stored_ts});
          };
        },
        [](ObjectId) { return metrics::StorageFootprint{}; });
  }

  std::optional<Value> try_decode(
      const std::vector<runtime::ResponsePtr>& responses) {
    const TimeStamp watermark = max_stored_ts(responses);
    const std::vector<Chunk> read_set = merge_chunks(responses);
    std::optional<TimeStamp> best;
    for (const Chunk& c : read_set) {
      if (c.ts < watermark) continue;
      if (best.has_value() && c.ts <= *best) continue;
      if (distinct_indices_at(read_set, c.ts) >= p_.cfg.k) best = c.ts;
    }
    if (!best.has_value()) return std::nullopt;
    return p_.codec->decode(blocks_at(read_set, *best));
  }

  ClientId self_;
  CodedParams p_;
  Phase phase_ = Phase::kIdle;
  OpId op_;
  std::vector<codec::TaggedBlock> writeset_;
  TimeStamp ts_;
};

class CodedAlgorithm final : public RegisterAlgorithm {
 public:
  explicit CodedAlgorithm(const RegisterConfig& cfg) {
    cfg.validate_coded();
    params_.cfg = cfg;
    params_.codec = codec::make_codec(cfg.k == 1 ? "replication" : "rs",
                                      cfg.n, cfg.k, cfg.data_bits);
  }

  std::string name() const override {
    return "coded(" + params_.codec->name() + ")";
  }
  const RegisterConfig& config() const override { return params_.cfg; }
  codec::CodecPtr codec() const override { return params_.codec; }

  runtime::ObjectFactory object_factory() const override {
    auto params = params_;
    return [params](ObjectId o) -> std::unique_ptr<runtime::ObjectStateBase> {
      auto st = std::make_unique<RegisterObjectState>();
      const Value v0 = Value::initial(params.cfg.data_bits);
      codec::EncoderOracle oracle(params.codec, OpId::none(), v0);
      st->vp.push_back(Chunk{TimeStamp::zero(), oracle.get(o.value + 1)});
      return st;
    };
  }

  runtime::ClientFactory client_factory() const override {
    auto params = params_;
    return [params](ClientId c) -> std::unique_ptr<runtime::ClientProtocol> {
      return std::make_unique<CodedClient>(c, params);
    };
  }

 private:
  CodedParams params_;
};

}  // namespace

std::unique_ptr<RegisterAlgorithm> make_coded(const RegisterConfig& cfg) {
  return std::make_unique<CodedAlgorithm>(cfg);
}

}  // namespace sbrs::registers
