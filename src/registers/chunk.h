// Chunks: timestamped code blocks — the unit every register algorithm in
// the paper stores at base objects (Algorithm 1: Chunks = Pieces x
// TimeStamps). The timestamp is metadata (free); only the block's bits count
// toward storage cost.
#pragma once

#include <vector>

#include "codec/oracle.h"
#include "common/timestamp.h"

namespace sbrs::registers {

struct Chunk {
  TimeStamp ts;
  codec::TaggedBlock block;

  uint32_t index() const { return block.block.index; }
  uint64_t bits() const { return block.bit_size(); }
};

/// Number of distinct block indices among chunks carrying timestamp `ts`.
/// This is the decodability test of Algorithm 2 line 18.
size_t distinct_indices_at(const std::vector<Chunk>& chunks, TimeStamp ts);

/// Collect the blocks of all chunks with timestamp `ts` for decoding.
std::vector<codec::Block> blocks_at(const std::vector<Chunk>& chunks,
                                    TimeStamp ts);

/// The highest timestamp present among the chunks (zero if none).
TimeStamp max_ts(const std::vector<Chunk>& chunks);

}  // namespace sbrs::registers
