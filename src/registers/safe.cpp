// The Appendix E safe register: wait-free, storage exactly n * D / k.
//
// Each base object stores exactly one timestamped piece. A write is two
// rounds (read timestamps, conditionally overwrite); a read is a single
// round that decodes if some timestamp has k distinct pieces in the quorum,
// and otherwise returns v0 — which is allowed by (strongly) safe semantics
// because in that case a write is necessarily concurrent with the read.
//
// This algorithm shows the lower bound of Theorem 1 is specific to regular
// semantics: with safety only, nD/k = (2f/k + 1) D bits always suffice.
#include <algorithm>
#include <map>
#include <optional>
#include <set>

#include "codec/codec.h"
#include "common/check.h"
#include "registers/register_algorithm.h"
#include "registers/round_client.h"
#include "registers/rmw_ops.h"

namespace sbrs::registers {

namespace {

struct SafeParams {
  RegisterConfig cfg;
  codec::CodecPtr codec;
};

class SafeClient final : public RoundClient {
 public:
  SafeClient(ClientId self, SafeParams params)
      : RoundClient(params.cfg.n, params.cfg.f),
        self_(self),
        p_(std::move(params)) {}

  void on_invoke(const runtime::Invocation& inv, runtime::ExecutionContext& ctx) override {
    SBRS_CHECK(phase_ == Phase::kIdle);
    op_ = inv.op;
    if (inv.kind == runtime::OpKind::kWrite) {
      codec::EncoderOracle oracle(p_.codec, inv.op, inv.value);
      writeset_ = oracle.get_all();
      phase_ = Phase::kWriteReadTs;
    } else {
      phase_ = Phase::kRead;
    }
    start_round(
        ctx, [](ObjectId o) { return make_read_value_rmw(o); },
        [](ObjectId) { return metrics::StorageFootprint{}; });
  }

 protected:
  void on_quorum(uint64_t /*round*/,
                 const std::vector<runtime::ResponsePtr>& responses,
                 runtime::ExecutionContext& ctx) override {
    switch (phase_) {
      case Phase::kWriteReadTs: {
        const TimeStamp ts{max_ts_num(responses) + 1, self_};
        phase_ = Phase::kWriteStore;
        start_store_round(ctx, ts);
        break;
      }
      case Phase::kWriteStore: {
        phase_ = Phase::kIdle;
        writeset_.clear();
        ctx.complete(op_, std::nullopt);
        break;
      }
      case Phase::kRead: {
        phase_ = Phase::kIdle;
        ctx.complete(op_, decode_or_v0(responses));
        break;
      }
      case Phase::kIdle:
        SBRS_CHECK_MSG(false, "quorum while idle");
    }
  }

 private:
  enum class Phase { kIdle, kWriteReadTs, kWriteStore, kRead };

  void start_store_round(runtime::ExecutionContext& ctx, TimeStamp ts) {
    start_round(
        ctx,
        [=, this](ObjectId o) -> runtime::RmwFn {
          const Chunk piece{ts, writeset_[o.value]};
          return [piece, o](runtime::ObjectStateBase& s) -> runtime::ResponsePtr {
            auto& st = as_register_state(s);
            // Algorithm 5 lines 10-12: overwrite only with a newer ts. The
            // object stores exactly one piece at all times.
            if (st.stored_ts < piece.ts) {
              st.stored_ts = piece.ts;
              st.vp = {piece};
            }
            return make_response(AckResponse{o, st.stored_ts});
          };
        },
        [&](ObjectId o) {
          metrics::StorageFootprint fp;
          fp.add(writeset_[o.value]);
          return fp;
        });
  }

  /// Algorithm 5 lines 15-18: decode if any timestamp has k pieces in the
  /// quorum, else return v0 (legal: a write must be concurrent).
  Value decode_or_v0(const std::vector<runtime::ResponsePtr>& responses) {
    const std::vector<Chunk> read_set = merge_chunks(responses);
    std::optional<TimeStamp> best;
    for (const Chunk& c : read_set) {
      if (best.has_value() && c.ts <= *best) continue;
      if (distinct_indices_at(read_set, c.ts) >= p_.cfg.k) best = c.ts;
    }
    if (best.has_value()) {
      auto v = p_.codec->decode(blocks_at(read_set, *best));
      if (v.has_value()) return *v;
    }
    return Value::initial(p_.cfg.data_bits);
  }

  ClientId self_;
  SafeParams p_;
  Phase phase_ = Phase::kIdle;
  OpId op_;
  std::vector<codec::TaggedBlock> writeset_;
};

class SafeAlgorithm final : public RegisterAlgorithm {
 public:
  explicit SafeAlgorithm(const RegisterConfig& cfg) {
    cfg.validate_coded();
    params_.cfg = cfg;
    params_.codec = codec::make_codec(cfg.k == 1 ? "replication" : "rs",
                                      cfg.n, cfg.k, cfg.data_bits);
  }

  std::string name() const override {
    return "safe(" + params_.codec->name() + ")";
  }
  const RegisterConfig& config() const override { return params_.cfg; }
  codec::CodecPtr codec() const override { return params_.codec; }

  runtime::ObjectFactory object_factory() const override {
    auto params = params_;
    return [params](ObjectId o) -> std::unique_ptr<runtime::ObjectStateBase> {
      auto st = std::make_unique<RegisterObjectState>();
      const Value v0 = Value::initial(params.cfg.data_bits);
      codec::EncoderOracle oracle(params.codec, OpId::none(), v0);
      st->vp.push_back(Chunk{TimeStamp::zero(), oracle.get(o.value + 1)});
      return st;
    };
  }

  runtime::ClientFactory client_factory() const override {
    auto params = params_;
    return [params](ClientId c) -> std::unique_ptr<runtime::ClientProtocol> {
      return std::make_unique<SafeClient>(c, params);
    };
  }

 private:
  SafeParams params_;
};

}  // namespace

std::unique_ptr<RegisterAlgorithm> make_safe(const RegisterConfig& cfg) {
  return std::make_unique<SafeAlgorithm>(cfg);
}

}  // namespace sbrs::registers
