// The base-object state shared by all four register algorithms:
//
//   bo_i = < storedTS, Vp, Vf >     (Algorithm 1, line 8)
//
// - Vp holds timestamped code *pieces* (possibly of several writes);
// - Vf holds a timestamped full replica represented as up to k pieces;
// - storedTS is the commit watermark used to garbage-collect stale pieces.
//
// ABD uses only Vf (one full value), the safe and coded registers only Vp.
#pragma once

#include "metrics/footprint.h"
#include "registers/chunk.h"
#include "runtime/types.h"

namespace sbrs::registers {

class RegisterObjectState final : public runtime::ObjectStateBase {
 public:
  TimeStamp stored_ts = TimeStamp::zero();
  std::vector<Chunk> vp;
  std::vector<Chunk> vf;

  metrics::StorageFootprint footprint() const override {
    metrics::StorageFootprint fp;
    for (const Chunk& c : vp) fp.add(c.block);
    for (const Chunk& c : vf) fp.add(c.block);
    return fp;
  }

  /// All chunks (Vp u Vf), as sampled by readValue().
  std::vector<Chunk> all_chunks() const {
    std::vector<Chunk> out = vp;
    out.insert(out.end(), vf.begin(), vf.end());
    return out;
  }

  /// Allocation-free bit total for the simulator's incremental accounting
  /// (footprint() materializes a block list; this just sums sizes).
  uint64_t stored_bits() const override {
    uint64_t sum = 0;
    for (const Chunk& c : vp) sum += c.block.bit_size();
    for (const Chunk& c : vf) sum += c.block.bit_size();
    return sum;
  }
};

/// Downcast helper for RMW closures; checked.
RegisterObjectState& as_register_state(runtime::ObjectStateBase& s);

}  // namespace sbrs::registers
