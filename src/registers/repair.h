// Active repair for the register families (read-repair + anti-entropy).
//
// A restarted base object sits in its repair window until fresh traffic
// re-converges it. The planner sees the system only through the
// backend-neutral runtime::SystemView. Passive recovery closes the window
// only on the first payload-carrying fresh write — on read-mostly keys it
// can stay open forever. The planner here builds the *repair push*: an RMW
// from the replica mesh (runtime::kRepairSource) that re-installs the newest
// decodable block at the stale replica and closes the window on delivery.
//
// Safety: the push only ever raises the target's storedTS to the peers'
// commit watermark (max peer storedTS), never to a mid-flight write's
// timestamp — quorum intersection guarantees k pieces at a timestamp only
// once its update round committed at a quorum, so advancing storedTS past
// the watermark could garbage-collect pieces readers still need and stall
// FW-termination. The pushed chunk itself may carry a newer (not yet
// committed) timestamp; that is exactly what a slow in-flight pre-write
// would have stored.
#pragma once

#include "codec/codec.h"
#include "registers/object_state.h"
#include "registers/register_algorithm.h"
#include "runtime/types.h"

namespace sbrs::registers {

/// Plan one repair push toward `target` given the live peers' states.
///
/// watermark = max peer storedTS; best = the newest timestamp >= watermark
/// with >= k distinct block indices among the peers' chunks (the read
/// algorithm's decodability test). Returns:
///  - nullopt when no peer state is visible or nothing decodable yet
///    (the pump retries later);
///  - a zero-bit digest plan when the target already holds a chunk at
///    `best` and storedTS >= watermark (freshness confirmed; the delivery
///    still closes the window);
///  - otherwise a plan whose RMW garbage-collects pieces below the
///    watermark, installs the re-encoded block `target_index` of the
///    decoded best value into Vp (skipping exact (ts, index) duplicates),
///    and raises storedTS to the watermark.
std::optional<runtime::RepairPlan> plan_register_repair(
    const std::vector<const RegisterObjectState*>& peers,
    const RegisterObjectState& target, uint32_t target_index,
    uint32_t k, const codec::CodecPtr& codec);

/// The default planner for a register algorithm: peers are the live,
/// non-repairing base objects; the pushed block index follows the
/// object-to-block convention (object o stores block o.value + 1).
runtime::RepairPlanner make_repair_planner(const RegisterAlgorithm& alg);

}  // namespace sbrs::registers
