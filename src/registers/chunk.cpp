#include "registers/chunk.h"

#include <set>

namespace sbrs::registers {

size_t distinct_indices_at(const std::vector<Chunk>& chunks, TimeStamp ts) {
  std::set<uint32_t> indices;
  for (const Chunk& c : chunks) {
    if (c.ts == ts) indices.insert(c.index());
  }
  return indices.size();
}

std::vector<codec::Block> blocks_at(const std::vector<Chunk>& chunks,
                                    TimeStamp ts) {
  std::vector<codec::Block> out;
  for (const Chunk& c : chunks) {
    if (c.ts == ts) out.push_back(c.block.block);
  }
  return out;
}

TimeStamp max_ts(const std::vector<Chunk>& chunks) {
  TimeStamp best = TimeStamp::zero();
  for (const Chunk& c : chunks) {
    if (best < c.ts) best = c.ts;
  }
  return best;
}

}  // namespace sbrs::registers
