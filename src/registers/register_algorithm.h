// The public entry point of the library: a RegisterAlgorithm bundles the
// factories and parameters needed to emulate a MWMR register over a
// simulated asynchronous fault-prone shared memory.
//
// Four algorithms are provided:
//   - make_adaptive : the paper's contribution (Section 5, Algorithms 1-3).
//                     Strongly regular, FW-terminating, storage
//                     O(min(f, c) * D).
//   - make_abd      : replication baseline (ABD [4]); k = 1, storage O(fD),
//                     flat in concurrency.
//   - make_coded    : pure erasure-coded baseline in the style of
//                     [5, 9, 6, 8]; regular and FW-terminating but its
//                     storage grows as O(cD) under write concurrency.
//   - make_safe     : the Appendix E wait-free *safe* register; storage is
//                     exactly n*D/k, demonstrating that the lower bound
//                     does not apply to safe semantics.
#pragma once

#include <memory>
#include <string>

#include "codec/codec.h"
#include "runtime/context.h"

namespace sbrs::registers {

struct RegisterConfig {
  /// Number of base objects. Coded algorithms require n == 2f + k; ABD
  /// requires n >= 2f + 1.
  uint32_t n = 3;
  /// Erasure-code dimension (1 for replication).
  uint32_t k = 1;
  /// Number of tolerated base-object crashes (f < n/2).
  uint32_t f = 1;
  /// Register value size D in bits.
  uint64_t data_bits = 256;

  void validate_coded() const;
  void validate_replicated() const;
};

class RegisterAlgorithm {
 public:
  virtual ~RegisterAlgorithm() = default;

  virtual std::string name() const = 0;
  virtual const RegisterConfig& config() const = 0;
  virtual codec::CodecPtr codec() const = 0;

  /// Factory for the base-object states (with v0 pre-stored per the
  /// algorithm's initialization).
  virtual runtime::ObjectFactory object_factory() const = 0;

  /// Factory for client protocol instances.
  virtual runtime::ClientFactory client_factory() const = 0;

  /// Planner for active repair pushes (read-repair / anti-entropy,
  /// registers/repair.h). The default re-installs the newest decodable
  /// block at the stale replica; the returned closure captures only the
  /// codec and config, so it outlives the algorithm object.
  virtual runtime::RepairPlanner repair_planner() const;
};

/// Options for the adaptive algorithm; the defaults are the paper's
/// Algorithm 2. The ablation switches realize the Corollary 2 regime: with
/// the replica path disabled, Vp must be unbounded to preserve regularity,
/// and storage then grows linearly with concurrency.
struct AdaptiveOptions {
  bool enable_replica_path = true;
  /// Maximum pieces kept in Vp; the paper uses k. 0 means unbounded.
  uint32_t vp_capacity_override = 0;
  bool vp_unbounded = false;
};

std::unique_ptr<RegisterAlgorithm> make_adaptive(const RegisterConfig& cfg,
                                                 AdaptiveOptions opts = {});

/// ABD options: enabling write_back upgrades reads to write-back reads
/// (classic atomic ABD); off by default, matching the paper's remark that
/// strong regularity holds when readers do not change the storage.
struct AbdOptions {
  bool write_back = false;
};

std::unique_ptr<RegisterAlgorithm> make_abd(const RegisterConfig& cfg,
                                            AbdOptions opts = {});

std::unique_ptr<RegisterAlgorithm> make_coded(const RegisterConfig& cfg);

/// The coded baseline upgraded to atomicity via reader write-back (in the
/// spirit of coded atomic storage [6]): reads re-store the pieces of the
/// value they return and commit its timestamp before returning. Same
/// O(cD) storage class as make_coded.
std::unique_ptr<RegisterAlgorithm> make_coded_atomic(
    const RegisterConfig& cfg);

std::unique_ptr<RegisterAlgorithm> make_safe(const RegisterConfig& cfg);

}  // namespace sbrs::registers
