// Round-based client skeleton.
//
// Every algorithm in the paper follows the same communication pattern: "at
// each round, the client invokes RMWs on all base objects in parallel, and
// awaits responses from at least n - f base objects" (Section 5). This base
// class owns that pattern: subclasses start rounds and receive an
// on_quorum() callback once n - f responses arrive. Late responses of a
// finished round are ignored by the client, but their RMWs still took
// effect on the objects — exactly as in the paper's model.
#pragma once

#include <functional>
#include <map>
#include <vector>

#include "common/check.h"
#include "registers/messages.h"
#include "runtime/context.h"

namespace sbrs::registers {

class RoundClient : public runtime::ClientProtocol {
 public:
  RoundClient(uint32_t n, uint32_t f) : n_(n), f_(f) {
    SBRS_CHECK_MSG(2 * f < n, "need f < n/2 (paper Section 2)");
  }

  void on_response(RmwId rmw, runtime::ResponsePtr response,
                   runtime::ExecutionContext& ctx) final;

 protected:
  /// Broadcast one RMW per base object; fn_for(i)/footprint_for(i) build the
  /// closure and declared channel payload for object i. Returns the round
  /// number. Only one round may be in flight per client (operations are
  /// sequential and rounds within an operation are sequential).
  uint64_t start_round(
      runtime::ExecutionContext& ctx,
      const std::function<runtime::RmwFn(ObjectId)>& fn_for,
      const std::function<metrics::StorageFootprint(ObjectId)>& footprint_for);

  /// Called once the round's quorum (n - f responses) is reached.
  virtual void on_quorum(uint64_t round,
                         const std::vector<runtime::ResponsePtr>& responses,
                         runtime::ExecutionContext& ctx) = 0;

  uint32_t n() const { return n_; }
  uint32_t f() const { return f_; }
  uint32_t quorum() const { return n_ - f_; }
  bool round_in_flight() const { return round_active_; }

 private:
  uint32_t n_;
  uint32_t f_;
  uint64_t next_round_ = 1;
  uint64_t active_round_ = 0;
  bool round_active_ = false;
  std::map<RmwId, uint64_t> rmw_round_;
  std::vector<runtime::ResponsePtr> collected_;
};

}  // namespace sbrs::registers
