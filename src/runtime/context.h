// The client protocol interface: how register algorithms plug into an
// execution backend. Clients are reactive state machines — they act when an
// operation is invoked on them and when a triggered RMW responds, matching
// the paper's model where local computation is free and only base-object
// access is scheduled.
//
// ExecutionContext is the full capability set a backend grants a protocol
// while it is taking a step: the simulator's ContextImpl routes trigger()
// into the pending-RMW channel of the logical-step scheduler; the threaded
// backend's context sends the RMW over a bounded MPSC channel to the target
// object's worker thread. Protocol code cannot tell the difference — that
// is the whole point.
#pragma once

#include <memory>
#include <optional>

#include "common/ids.h"
#include "metrics/footprint.h"
#include "runtime/types.h"

namespace sbrs::runtime {

/// The capabilities a backend grants a client while it is taking a step.
/// Valid only for the duration of the callback that received it.
class ExecutionContext {
 public:
  virtual ~ExecutionContext() = default;

  /// Trigger an RMW on a base object; `request_footprint` declares the code
  /// blocks riding in the request (counted as channel storage until the RMW
  /// is delivered). Returns the RMW's id for matching the response.
  virtual RmwId trigger(ObjectId target, RmwFn fn,
                        metrics::StorageFootprint request_footprint) = 0;

  /// Complete (return from) the given high-level operation. Reads pass the
  /// returned value; writes pass nullopt ("ok").
  virtual void complete(OpId op, std::optional<Value> result) = 0;

  virtual ClientId self() const = 0;
  virtual uint32_t num_objects() const = 0;
  /// The backend's notion of "now": logical steps in the simulator, a
  /// monotone event sequence number in the threaded backend. Only ordering
  /// is meaningful across backends, never magnitudes.
  virtual uint64_t now() const = 0;
};

class ClientProtocol {
 public:
  virtual ~ClientProtocol() = default;

  /// A high-level operation was invoked at this client.
  virtual void on_invoke(const Invocation& inv, ExecutionContext& ctx) = 0;

  /// A previously triggered RMW was delivered and produced `response`.
  virtual void on_response(RmwId rmw, ResponsePtr response,
                           ExecutionContext& ctx) = 0;

  /// Code blocks held in this client's local *algorithm* state (Definition
  /// 2 counts these; oracle state — e.g. the written value awaiting
  /// encoding, or a reader's accumulated decode set — is free).
  virtual metrics::StorageFootprint footprint() const {
    return {};
  }

  /// Total stored bits — must equal footprint().total_bits(). The
  /// simulator's incremental accounting calls this after every client
  /// callback (mirroring ObjectStateBase::stored_bits); override with a
  /// cached counter when footprint() materializes a large block list, as
  /// the store's multiplexing client does.
  virtual uint64_t stored_bits() const { return footprint().total_bits(); }
};

using ClientFactory =
    std::function<std::unique_ptr<ClientProtocol>(ClientId)>;
using ObjectFactory =
    std::function<std::unique_ptr<ObjectStateBase>(ObjectId)>;

}  // namespace sbrs::runtime
