// Backend-neutral vocabulary of the register emulations: the types a
// protocol (the seven register variants, the store's multiplexers) needs to
// compile, with no reference to any particular execution backend.
//
// Two backends mount these protocols today:
//   - the deterministic logical-step simulator (src/sim/), which keeps the
//     paper-faithful adversarial scheduling, fault injection and Definition
//     2 storage accounting used by CI and the sweeps;
//   - the threaded runtime backend (src/runtime/backend.h), which runs the
//     same protocol objects on one OS thread per base object with bounded
//     channels and wall-clock latencies.
//
// src/sim/types.h re-exports everything here under sbrs::sim (type aliases,
// so the two spellings are the *same* types) — existing simulator code and
// tests compile unchanged, and artifacts stay byte-identical.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <ostream>

#include "common/ids.h"
#include "common/value.h"
#include "metrics/footprint.h"

namespace sbrs::runtime {

enum class OpKind { kRead, kWrite };

inline std::ostream& operator<<(std::ostream& os, OpKind k) {
  return os << (k == OpKind::kRead ? "read" : "write");
}

/// How a crashed base object comes back (sim::Simulator::restart_object;
/// the threaded backend does not inject crashes yet, but protocol states
/// implement the hook backend-independently).
enum class RestartMode {
  /// The state frozen at crash time is the persisted on-disk image; the
  /// object re-joins with exactly its pre-crash sub-states (possibly stale —
  /// later rounds overwrite them). Safe: indistinguishable from a slow
  /// object that lost some messages, so quorum intersection still holds.
  kFromDisk,
  /// The frozen state is discarded and the object factory mounts a fresh
  /// (v0 / empty) state — a replacement replica that lost its disk. Models
  /// data loss beyond the f crash budget: per-key guarantees may be
  /// violated until repair traffic re-converges the replica.
  kFromScratch,
};

inline const char* to_string(RestartMode m) {
  return m == RestartMode::kFromDisk ? "disk" : "scratch";
}

/// A high-level operation invocation on the emulated register.
struct Invocation {
  OpId op;
  ClientId client;
  OpKind kind = OpKind::kRead;
  /// The written value for writes; unused for reads.
  Value value;
  /// When the operation *arrived* (open-loop workloads: the scheduled
  /// arrival step, at or before the invoke). Unset means the op arrived at
  /// its invoke time (closed-loop sessions self-pace), so sojourn time
  /// degenerates to service time.
  std::optional<uint64_t> arrival_time;
};

/// Base-object state. Algorithms subclass this with their concrete fields;
/// the backends only need to extract the storage footprint (the code
/// blocks stored — metadata like timestamps is free).
class ObjectStateBase {
 public:
  virtual ~ObjectStateBase() = default;
  virtual metrics::StorageFootprint footprint() const = 0;

  /// Total stored bits at this object — must equal footprint().total_bits().
  /// The simulator's incremental accounting calls this after every RMW that
  /// touches the object; override with an allocation-free sum (or a cached
  /// counter) so the per-step cost is proportional to one object's state,
  /// not the whole system's.
  virtual uint64_t stored_bits() const { return footprint().total_bits(); }

  /// Called by sim::Simulator::restart_object when this object re-joins
  /// after a crash with its persisted state (RestartMode::kFromDisk;
  /// from-scratch restarts replace the object instead of invoking the
  /// hook). States that cache derived totals (the store's
  /// MultiKeyObjectState) or hold volatile fields recompute/drop them here;
  /// stored_bits() is re-read by the simulator's accounting right after, so
  /// any shrink or growth the hook causes stays exactly tracked.
  virtual void on_restart(RestartMode mode) { (void)mode; }
};

/// An RMW's response payload, produced atomically with the state change.
/// Algorithms define concrete response types and downcast.
using ResponsePtr = std::shared_ptr<const void>;

/// The atomic read-modify-write function applied to a base object.
using RmwFn = std::function<ResponsePtr(ObjectStateBase&)>;

/// The sentinel "client" repair pushes are attributed to: replica-mesh
/// traffic has no client session, never observes a response (client_alive
/// is false for it), and is never partitioned by client-link cuts.
inline constexpr ClientId kRepairSource{UINT32_MAX};

/// One planned repair push toward a repairing object: the RMW that writes
/// the newest decodable block(s) back (or confirms freshness with a
/// zero-bit digest check) and the request footprint charged to the channel
/// and, on delivery inside the window, to RunReport::repair_bits.
struct RepairPlan {
  RmwFn fn;
  metrics::StorageFootprint request_footprint;
};

/// The read-only view of a running system that repair planning needs: which
/// base objects exist, which are reachable, which sit inside a repair
/// window, and their current states. The simulator implements it directly
/// (sim::Simulator derives from it); a future runtime-backend repair mesh
/// would implement it over its own object registry. Keeping planners typed
/// against this interface — not the Simulator — is what lets the register
/// and store layers compile with no backend headers.
class SystemView {
 public:
  virtual ~SystemView() = default;

  virtual uint32_t num_objects() const = 0;
  virtual bool object_alive(ObjectId o) const = 0;
  /// True while `o` is restarted-but-not-yet-overwritten (its repair
  /// window): it must not be read as a repair *source*.
  virtual bool object_repairing(ObjectId o) const = 0;
  /// Direct access to a base object's algorithm state.
  virtual const ObjectStateBase& object_state(ObjectId o) const = 0;
};

/// Builds the repair push for one repairing object from the current system
/// state (live peers' chunks), or nullopt when nothing is decodable yet.
/// Installed via sim::SimConfig::repair_planner by the register algorithms
/// (registers/repair.h) and the store (store/repair.h). Must not mutate
/// anything and must draw no randomness — repair determinism rides on it.
using RepairPlanner =
    std::function<std::optional<RepairPlan>(const SystemView&, ObjectId)>;

}  // namespace sbrs::runtime
