// Run histories: the trace(r) of the paper's formalism — the subsequence of
// operation invocations and returns. Consumed by the consistency checkers
// and by the adversary (to know which writes are outstanding).
//
// Backend-neutral: the simulator stamps events with logical steps; the
// threaded runtime backend stamps them with a monotone sequence number
// assigned under the history lock (the recorded interval of every op is
// contained in its real-time interval, so precedence derived from these
// timestamps is real precedence and the checkers stay sound). The checkers
// only ever compare times for order, never magnitude.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/value.h"
#include "runtime/types.h"

namespace sbrs::runtime {

struct HistoryEvent {
  enum class Kind {
    kInvoke,
    kReturn,
    kCrashObject,
    kRestartObject,
    kPartition,  // a (client, object) link was cut (sim/linkfault.h)
    kHeal,       // a cut link re-opened (explicit heal or auto-heal)
  };
  Kind kind;
  uint64_t time = 0;
  OpId op;
  ClientId client;
  OpKind op_kind = OpKind::kRead;
  /// For write invokes: the written value. For read returns: the returned
  /// value. Empty otherwise.
  Value value;
  /// For kCrashObject / kRestartObject / kPartition / kHeal: the base
  /// object (partition/heal events also set `client` to the link's client).
  /// The consistency checkers consume only operation records, so fault
  /// bookkeeping events ride in the trace (and its fingerprint) without
  /// affecting verdicts.
  ObjectId object{};
  RestartMode restart_mode = RestartMode::kFromDisk;  // kRestartObject only
};

/// True for the operation invoke/return events the checkers consume (the
/// trace(r) of the paper); false for crash/restart bookkeeping events.
inline bool is_op_event(const HistoryEvent& ev) {
  return ev.kind == HistoryEvent::Kind::kInvoke ||
         ev.kind == HistoryEvent::Kind::kReturn;
}

/// Summary of one operation assembled from its invoke/return events.
struct OpRecord {
  OpId op;
  ClientId client;
  OpKind kind = OpKind::kRead;
  /// Arrival step (open-loop workloads); == invoke_time for closed-loop
  /// ops, so return - arrival (sojourn) always bounds return - invoke
  /// (service) from above.
  uint64_t arrival_time = 0;
  uint64_t invoke_time = 0;
  std::optional<uint64_t> return_time;
  /// Written value (writes) / returned value (completed reads).
  Value value;

  bool complete() const { return return_time.has_value(); }
};

class History {
 public:
  void record_invoke(uint64_t time, const Invocation& inv);
  void record_return(uint64_t time, OpId op, const std::optional<Value>& result);

  /// Record a base-object crash / restart in the trace. Pure bookkeeping:
  /// operation accessors (ops/reads/writes/outstanding) ignore these, but
  /// they are part of events() and the history fingerprint, so recovery
  /// schedules pin replayability the same way operations do.
  void record_object_crash(uint64_t time, ObjectId o);
  void record_object_restart(uint64_t time, ObjectId o, RestartMode mode);

  /// Record a link partition / heal transition (one event per link whose
  /// state actually changed). Bookkeeping like crash/restart: invisible to
  /// the checkers, pinned by the fingerprint — and only present in faulted
  /// runs, so fault-free recorded artifacts stay byte-identical.
  void record_partition(uint64_t time, ClientId c, ObjectId o);
  void record_heal(uint64_t time, ClientId c, ObjectId o);

  const std::vector<HistoryEvent>& events() const { return events_; }

  size_t object_crash_count() const { return object_crashes_; }
  size_t object_restart_count() const { return object_restarts_; }
  size_t partition_count() const { return partitions_; }
  size_t heal_count() const { return heals_; }

  /// All operations, in invocation order.
  std::vector<OpRecord> ops() const;
  std::vector<OpRecord> writes() const;
  std::vector<OpRecord> reads() const;

  /// Operations invoked but not returned.
  std::vector<OpRecord> outstanding() const;

  bool is_outstanding(OpId op) const;
  const OpRecord* find(OpId op) const;

  size_t invoke_count() const { return by_op_.size(); }
  size_t return_count() const { return returns_; }
  size_t completed_writes() const;
  size_t completed_reads() const;

 private:
  std::vector<HistoryEvent> events_;
  std::vector<OpId> order_;
  std::unordered_map<OpId, OpRecord> by_op_;
  size_t returns_ = 0;
  size_t object_crashes_ = 0;
  size_t object_restarts_ = 0;
  size_t partitions_ = 0;
  size_t heals_ = 0;
};

}  // namespace sbrs::runtime
