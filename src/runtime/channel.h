// Bounded MPSC channel for the threaded runtime backend.
//
// The simulator's "channel" is a logical multiset the adversary delivers
// from; here it is a real mutex+condvar queue between client driver threads
// and the one worker thread that owns a base object. Capacity bounds give
// backpressure on the request path (a flooded object slows its writers
// down instead of buffering unboundedly); reply channels are unbounded so
// an object worker can always complete a send and never deadlocks against
// a client that has stopped draining (stale replies to already-completed
// rounds are simply never received).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace sbrs::runtime {

/// Multi-producer single-consumer (and, as used here, sometimes MPMC-safe)
/// blocking queue. capacity == 0 means unbounded.
template <typename T>
class Channel {
 public:
  explicit Channel(size_t capacity = 0) : capacity_(capacity) {}

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Blocks while the channel is full (bounded mode). Returns false if the
  /// channel was closed (the item is dropped — receivers are gone).
  bool send(T item) {
    std::unique_lock<std::mutex> lk(mu_);
    not_full_.wait(lk, [&] {
      return closed_ || capacity_ == 0 || queue_.size() < capacity_;
    });
    if (closed_) return false;
    queue_.push_back(std::move(item));
    lk.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the channel is closed and
  /// drained. nullopt means closed-and-empty: the sender side is done.
  std::optional<T> recv() {
    std::unique_lock<std::mutex> lk(mu_);
    not_empty_.wait(lk, [&] { return closed_ || !queue_.empty(); });
    if (queue_.empty()) return std::nullopt;  // closed and drained
    T item = std::move(queue_.front());
    queue_.pop_front();
    lk.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking receive: nullopt if currently empty (whether or not the
  /// channel is closed).
  std::optional<T> try_recv() {
    std::unique_lock<std::mutex> lk(mu_);
    if (queue_.empty()) return std::nullopt;
    T item = std::move(queue_.front());
    queue_.pop_front();
    lk.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Close the channel: senders start failing, receivers drain the
  /// remaining items and then see nullopt. Idempotent.
  void close() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lk(mu_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lk(mu_);
    return queue_.size();
  }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> queue_;
  bool closed_ = false;
};

}  // namespace sbrs::runtime
