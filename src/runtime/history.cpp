#include "runtime/history.h"

#include "common/check.h"

namespace sbrs::runtime {

void History::record_invoke(uint64_t time, const Invocation& inv) {
  SBRS_CHECK_MSG(by_op_.find(inv.op) == by_op_.end(),
                 "duplicate invoke for " << inv.op);
  HistoryEvent ev;
  ev.kind = HistoryEvent::Kind::kInvoke;
  ev.time = time;
  ev.op = inv.op;
  ev.client = inv.client;
  ev.op_kind = inv.kind;
  if (inv.kind == OpKind::kWrite) ev.value = inv.value;
  events_.push_back(ev);

  OpRecord rec;
  rec.op = inv.op;
  rec.client = inv.client;
  rec.kind = inv.kind;
  rec.arrival_time = inv.arrival_time.value_or(time);
  SBRS_CHECK_MSG(rec.arrival_time <= time,
                 "op " << inv.op << " invoked at " << time
                       << " before its arrival " << rec.arrival_time);
  rec.invoke_time = time;
  if (inv.kind == OpKind::kWrite) rec.value = inv.value;
  by_op_.emplace(inv.op, rec);
  order_.push_back(inv.op);
}

void History::record_return(uint64_t time, OpId op,
                            const std::optional<Value>& result) {
  auto it = by_op_.find(op);
  SBRS_CHECK_MSG(it != by_op_.end(), "return for unknown " << op);
  SBRS_CHECK_MSG(!it->second.return_time.has_value(),
                 "duplicate return for " << op);
  it->second.return_time = time;
  if (it->second.kind == OpKind::kRead && result.has_value()) {
    it->second.value = *result;
  }
  ++returns_;

  HistoryEvent ev;
  ev.kind = HistoryEvent::Kind::kReturn;
  ev.time = time;
  ev.op = op;
  ev.client = it->second.client;
  ev.op_kind = it->second.kind;
  if (it->second.kind == OpKind::kRead && result.has_value()) {
    ev.value = *result;
  }
  events_.push_back(ev);
}

void History::record_object_crash(uint64_t time, ObjectId o) {
  HistoryEvent ev;
  ev.kind = HistoryEvent::Kind::kCrashObject;
  ev.time = time;
  ev.object = o;
  events_.push_back(ev);
  ++object_crashes_;
}

void History::record_object_restart(uint64_t time, ObjectId o,
                                    RestartMode mode) {
  HistoryEvent ev;
  ev.kind = HistoryEvent::Kind::kRestartObject;
  ev.time = time;
  ev.object = o;
  ev.restart_mode = mode;
  events_.push_back(ev);
  ++object_restarts_;
}

void History::record_partition(uint64_t time, ClientId c, ObjectId o) {
  HistoryEvent ev;
  ev.kind = HistoryEvent::Kind::kPartition;
  ev.time = time;
  ev.client = c;
  ev.object = o;
  events_.push_back(ev);
  ++partitions_;
}

void History::record_heal(uint64_t time, ClientId c, ObjectId o) {
  HistoryEvent ev;
  ev.kind = HistoryEvent::Kind::kHeal;
  ev.time = time;
  ev.client = c;
  ev.object = o;
  events_.push_back(ev);
  ++heals_;
}

std::vector<OpRecord> History::ops() const {
  std::vector<OpRecord> out;
  out.reserve(order_.size());
  for (OpId id : order_) out.push_back(by_op_.at(id));
  return out;
}

std::vector<OpRecord> History::writes() const {
  std::vector<OpRecord> out;
  for (OpId id : order_) {
    const auto& rec = by_op_.at(id);
    if (rec.kind == OpKind::kWrite) out.push_back(rec);
  }
  return out;
}

std::vector<OpRecord> History::reads() const {
  std::vector<OpRecord> out;
  for (OpId id : order_) {
    const auto& rec = by_op_.at(id);
    if (rec.kind == OpKind::kRead) out.push_back(rec);
  }
  return out;
}

std::vector<OpRecord> History::outstanding() const {
  std::vector<OpRecord> out;
  for (OpId id : order_) {
    const auto& rec = by_op_.at(id);
    if (!rec.complete()) out.push_back(rec);
  }
  return out;
}

bool History::is_outstanding(OpId op) const {
  auto it = by_op_.find(op);
  return it != by_op_.end() && !it->second.complete();
}

const OpRecord* History::find(OpId op) const {
  auto it = by_op_.find(op);
  return it == by_op_.end() ? nullptr : &it->second;
}

size_t History::completed_writes() const {
  size_t n = 0;
  for (const auto& [id, rec] : by_op_) {
    if (rec.kind == OpKind::kWrite && rec.complete()) ++n;
  }
  return n;
}

size_t History::completed_reads() const {
  size_t n = 0;
  for (const auto& [id, rec] : by_op_) {
    if (rec.kind == OpKind::kRead && rec.complete()) ++n;
  }
  return n;
}

}  // namespace sbrs::runtime
