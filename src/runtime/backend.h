// The threaded runtime backend: the same register protocols the simulator
// schedules adversarially, mounted on real OS threads, real channels and a
// real clock.
//
// Topology mirrors the paper's model one-to-one:
//   - one worker thread per base object, exclusively owning that object's
//     ObjectStateBase and applying RMWs atomically by construction (only
//     its thread ever touches the state);
//   - one driver thread per client session, running a closed-loop list of
//     pre-assigned invocations through an unmodified ClientProtocol;
//   - bounded MPSC request channels into each object (backpressure), an
//     unbounded reply channel per client (an object can always complete a
//     send, so the mesh cannot deadlock; replies to already-completed
//     rounds are simply never drained).
//
// Histories are captured under one mutex with a monotone sequence number as
// the event time: the recorded interval of every operation is contained in
// its real-time interval, so precedence derived from recorded times is real
// precedence and the simulator's consistency checkers verify threaded
// executions unchanged. Per-op wall-clock latencies (steady_clock, ns) feed
// metrics::LatencyHistogram tagged LatencyUnit::kNanos.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "metrics/latency_histogram.h"
#include "runtime/context.h"
#include "runtime/history.h"
#include "runtime/types.h"

namespace sbrs::runtime {

/// One client's closed-loop session: the driver invokes ops[i], waits for
/// the protocol to complete it, then invokes ops[i+1]. OpIds must be
/// globally unique across sessions; every Invocation's client must equal
/// `client`.
struct SessionSpec {
  ClientId client;
  std::vector<Invocation> ops;
};

struct ThreadBackendOptions {
  uint32_t num_objects = 0;
  ObjectFactory object_factory;
  ClientFactory client_factory;
  std::vector<SessionSpec> sessions;
  /// Per-object request channel bound (0 = unbounded). Small bounds give
  /// honest backpressure; the default comfortably covers one in-flight RMW
  /// from every client of a typical run.
  size_t request_channel_capacity = 1024;
};

/// What a threaded run produces: the same history shape the simulator
/// emits (checkable by the same checkers), wall-clock latency histograms,
/// and the storage extrema the paper's metrics care about.
struct ThreadRunReport {
  History history;

  /// Wall-clock per-operation service latencies, nanoseconds.
  metrics::LatencyHistogram op_latency{metrics::LatencyUnit::kNanos};
  metrics::LatencyHistogram read_latency{metrics::LatencyUnit::kNanos};
  metrics::LatencyHistogram write_latency{metrics::LatencyUnit::kNanos};

  uint64_t invoked_ops = 0;
  uint64_t completed_ops = 0;
  uint64_t rmws_triggered = 0;
  uint64_t rmws_delivered = 0;

  /// Storage at quiescence (after all sessions drained and workers joined).
  uint64_t final_object_bits = 0;
  uint64_t final_client_bits = 0;
  uint64_t final_total_bits = 0;
  /// Upper bound on max object storage: each worker samples its object's
  /// stored_bits after every RMW it applies; the reported value is the max
  /// over objects of the per-object max. (A true global-instant max would
  /// need a stop-the-world snapshot; per-object maxima bound it from
  /// above... per-object, and their sum bounds the global total.)
  uint64_t max_object_bits = 0;
  uint64_t sum_max_object_bits = 0;

  double wall_seconds = 0.0;
  /// Every session ran its op list to completion.
  bool live = false;
};

/// Run the sessions against num_objects base objects. Blocks until every
/// session has completed all its ops, then shuts the mesh down gracefully
/// (join clients, close request channels, join workers). Deterministic in
/// outcome-space (the checkers accept any schedule) but NOT in schedule —
/// that is the point.
ThreadRunReport run_threaded(const ThreadBackendOptions& opts);

}  // namespace sbrs::runtime
