#include "runtime/backend.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_set>
#include <utility>

#include "common/check.h"
#include "runtime/channel.h"

namespace sbrs::runtime {

namespace {

struct RmwReply {
  RmwId id;
  ResponsePtr response;
};

/// An RMW in flight toward an object worker. `reply_to` is the triggering
/// client's (unbounded) reply channel; the worker's send to it never blocks,
/// which is the no-deadlock argument for the whole mesh.
struct RmwRequest {
  RmwId id;
  RmwFn fn;
  Channel<RmwReply>* reply_to = nullptr;
};

/// History + event clock shared by every thread. One mutex orders all
/// invoke/return events and stamps them with a monotone sequence number;
/// because the stamp is taken while the op is genuinely in flight, the
/// recorded interval is contained in the real interval and checker-derived
/// precedence is sound.
class HistoryRecorder {
 public:
  void record_invoke(const Invocation& inv) {
    std::lock_guard<std::mutex> lk(mu_);
    history_.record_invoke(next_seq(), inv);
  }

  void record_return(OpId op, const std::optional<Value>& result) {
    std::lock_guard<std::mutex> lk(mu_);
    history_.record_return(next_seq(), op, result);
  }

  uint64_t now() const { return seq_.load(std::memory_order_relaxed); }

  History take() { return std::move(history_); }

 private:
  uint64_t next_seq() { return seq_.fetch_add(1, std::memory_order_relaxed); }

  std::mutex mu_;
  std::atomic<uint64_t> seq_{0};
  History history_;
};

struct SharedState {
  std::vector<std::unique_ptr<Channel<RmwRequest>>> request_channels;
  /// One unbounded reply channel per session. Owned here — NOT on the
  /// driver's stack — because workers may still be sending stale replies
  /// (to rounds whose op already completed) after the driver has finished
  /// its whole session and returned; the channels must outlive the workers.
  std::vector<std::unique_ptr<Channel<RmwReply>>> reply_channels;
  HistoryRecorder recorder;
  std::atomic<uint64_t> rmws_triggered{0};
  std::atomic<uint64_t> rmws_delivered{0};
  uint32_t num_objects = 0;
};

/// The ExecutionContext a driver thread hands its protocol. Lives for the
/// whole session (the protocol only sees it inside callbacks, per the
/// interface contract).
class ThreadContext final : public ExecutionContext {
 public:
  ThreadContext(ClientId self, SharedState& shared,
                Channel<RmwReply>& replies)
      : self_(self), shared_(shared), replies_(replies) {
    // Disjoint per-client id ranges make RmwIds globally unique without
    // cross-thread coordination: high bits carry the client, low bits a
    // local counter.
    next_rmw_ = (uint64_t{self.value} + 1) << 40;
  }

  RmwId trigger(ObjectId target, RmwFn fn,
                metrics::StorageFootprint /*request_footprint*/) override {
    SBRS_CHECK_MSG(target.value < shared_.num_objects,
                   "trigger on out-of-range object");
    const RmwId id{next_rmw_++};
    shared_.rmws_triggered.fetch_add(1, std::memory_order_relaxed);
    // Bounded send: backpressure from a flooded object propagates to the
    // protocol that keeps it busy. Channels only close after every driver
    // has joined, so the send cannot fail mid-session.
    const bool sent = shared_.request_channels[target.value]->send(
        RmwRequest{id, std::move(fn), &replies_});
    SBRS_CHECK_MSG(sent, "request channel closed while sessions still live");
    return id;
  }

  void complete(OpId op, std::optional<Value> result) override {
    shared_.recorder.record_return(op, result);
    completed_ = op;
  }

  ClientId self() const override { return self_; }
  uint32_t num_objects() const override { return shared_.num_objects; }
  uint64_t now() const override { return shared_.recorder.now(); }

  /// Driver-side: did the protocol complete `op` since the last check?
  bool take_completion(OpId op) {
    if (completed_ && *completed_ == op) {
      completed_.reset();
      return true;
    }
    return false;
  }

 private:
  ClientId self_;
  SharedState& shared_;
  Channel<RmwReply>& replies_;
  uint64_t next_rmw_ = 0;
  std::optional<OpId> completed_;
};

struct WorkerResult {
  uint64_t max_stored_bits = 0;
  uint64_t final_stored_bits = 0;
  uint64_t rmws_applied = 0;
};

struct DriverResult {
  metrics::LatencyHistogram op_latency{metrics::LatencyUnit::kNanos};
  metrics::LatencyHistogram read_latency{metrics::LatencyUnit::kNanos};
  metrics::LatencyHistogram write_latency{metrics::LatencyUnit::kNanos};
  uint64_t invoked = 0;
  uint64_t completed = 0;
  uint64_t final_client_bits = 0;
  bool finished = false;
};

}  // namespace

ThreadRunReport run_threaded(const ThreadBackendOptions& opts) {
  SBRS_CHECK_MSG(opts.num_objects > 0, "threaded run needs >= 1 object");
  SBRS_CHECK_MSG(static_cast<bool>(opts.object_factory),
                 "threaded run needs an object factory");
  SBRS_CHECK_MSG(static_cast<bool>(opts.client_factory),
                 "threaded run needs a client factory");
  {
    // OpIds must be globally unique: they key the history.
    std::unordered_set<uint64_t> seen;
    for (const auto& s : opts.sessions) {
      for (const auto& inv : s.ops) {
        SBRS_CHECK_MSG(inv.client == s.client,
                       "session op attributed to a different client");
        SBRS_CHECK_MSG(seen.insert(inv.op.value).second,
                       "duplicate OpId across sessions");
      }
    }
  }

  SharedState shared;
  shared.num_objects = opts.num_objects;
  shared.request_channels.reserve(opts.num_objects);
  for (uint32_t o = 0; o < opts.num_objects; ++o) {
    shared.request_channels.push_back(
        std::make_unique<Channel<RmwRequest>>(opts.request_channel_capacity));
  }
  shared.reply_channels.reserve(opts.sessions.size());
  for (size_t s = 0; s < opts.sessions.size(); ++s) {
    shared.reply_channels.push_back(
        std::make_unique<Channel<RmwReply>>(0));  // unbounded
  }

  const auto wall_start = std::chrono::steady_clock::now();

  // --- Object workers: exclusive owners of their ObjectStateBase. ---
  std::vector<WorkerResult> worker_results(opts.num_objects);
  std::vector<std::thread> workers;
  workers.reserve(opts.num_objects);
  for (uint32_t o = 0; o < opts.num_objects; ++o) {
    workers.emplace_back([o, &opts, &shared, &worker_results] {
      std::unique_ptr<ObjectStateBase> state =
          opts.object_factory(ObjectId{o});
      SBRS_CHECK_MSG(state != nullptr, "object factory returned null");
      WorkerResult& res = worker_results[o];
      res.max_stored_bits = state->stored_bits();
      Channel<RmwRequest>& requests = *shared.request_channels[o];
      while (auto req = requests.recv()) {
        ResponsePtr response = req->fn(*state);
        res.max_stored_bits =
            std::max(res.max_stored_bits, state->stored_bits());
        ++res.rmws_applied;
        shared.rmws_delivered.fetch_add(1, std::memory_order_relaxed);
        // Reply channels are unbounded: this send never blocks, so the
        // worker always drains and trigger() backpressure cannot deadlock.
        req->reply_to->send(RmwReply{req->id, std::move(response)});
      }
      res.final_stored_bits = state->stored_bits();
    });
  }

  // --- Client drivers: one thread per closed-loop session. ---
  std::vector<DriverResult> driver_results(opts.sessions.size());
  std::vector<std::thread> drivers;
  drivers.reserve(opts.sessions.size());
  for (size_t s = 0; s < opts.sessions.size(); ++s) {
    drivers.emplace_back([s, &opts, &shared, &driver_results] {
      const SessionSpec& session = opts.sessions[s];
      DriverResult& res = driver_results[s];
      Channel<RmwReply>& replies = *shared.reply_channels[s];
      ThreadContext ctx(session.client, shared, replies);
      std::unique_ptr<ClientProtocol> protocol =
          opts.client_factory(session.client);
      SBRS_CHECK_MSG(protocol != nullptr, "client factory returned null");

      for (const Invocation& inv : session.ops) {
        shared.recorder.record_invoke(inv);
        ++res.invoked;
        const auto op_start = std::chrono::steady_clock::now();
        protocol->on_invoke(inv, ctx);
        // Drain replies (current round's and stale earlier ones — the
        // protocols ignore unknown RmwIds) until the protocol completes
        // this op.
        while (!ctx.take_completion(inv.op)) {
          auto reply = replies.recv();
          SBRS_CHECK_MSG(reply.has_value(),
                         "reply channel closed mid-operation");
          protocol->on_response(reply->id, std::move(reply->response), ctx);
        }
        const auto op_end = std::chrono::steady_clock::now();
        const uint64_t ns = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(op_end -
                                                                 op_start)
                .count());
        res.op_latency.record(ns);
        (inv.kind == OpKind::kRead ? res.read_latency : res.write_latency)
            .record(ns);
        ++res.completed;
      }
      res.final_client_bits = protocol->stored_bits();
      res.finished = true;
      // Stale replies still queued (or still being sent by workers) are
      // abandoned; the channel is owned by SharedState and outlives the
      // workers, so late worker sends land harmlessly.
    });
  }

  // Graceful shutdown: sessions first, then starve + join the workers.
  for (auto& t : drivers) t.join();
  for (auto& ch : shared.request_channels) ch->close();
  for (auto& t : workers) t.join();

  const auto wall_end = std::chrono::steady_clock::now();

  ThreadRunReport report;
  report.history = shared.recorder.take();
  report.rmws_triggered =
      shared.rmws_triggered.load(std::memory_order_relaxed);
  report.rmws_delivered =
      shared.rmws_delivered.load(std::memory_order_relaxed);
  report.live = !opts.sessions.empty();
  for (const auto& d : driver_results) {
    report.op_latency.merge(d.op_latency);
    report.read_latency.merge(d.read_latency);
    report.write_latency.merge(d.write_latency);
    report.invoked_ops += d.invoked;
    report.completed_ops += d.completed;
    report.final_client_bits += d.final_client_bits;
    report.live = report.live && d.finished;
  }
  for (const auto& w : worker_results) {
    report.max_object_bits = std::max(report.max_object_bits, w.max_stored_bits);
    report.sum_max_object_bits += w.max_stored_bits;
    report.final_object_bits += w.final_stored_bits;
  }
  report.final_total_bits = report.final_object_bits + report.final_client_bits;
  report.wall_seconds =
      std::chrono::duration<double>(wall_end - wall_start).count();
  return report;
}

}  // namespace sbrs::runtime
