// Consistency checking of run histories against the paper's safety notions.
//
// The paper uses (Appendix A, following Shao et al. [14]):
//   - weak regularity   (MWRegWeak):  for every returned read there is a
//     linearization of that read together with all writes;
//   - strong regularity (MWRegWO):    weak regularity + all reads agree on
//     the order of the writes relevant to both;
//   - strongly safe:                  writes linearize, and reads with no
//     concurrent writes return the last preceding write's value.
//
// Checkers work on the recorded History. They rely on the test workloads
// writing *distinct* values (unique tags), so a returned value identifies
// the write that produced it.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sim/history.h"

namespace sbrs::consistency {

struct CheckResult {
  bool ok = true;
  std::vector<std::string> violations;

  void fail(std::string why) {
    ok = false;
    violations.push_back(std::move(why));
  }
  std::string summary() const;
};

/// Every completed read must return v0 or the value of some write in the
/// history — i.e. no "Frankenstein" values assembled from pieces of
/// different writes. This catches erasure-decoding mix-ups.
CheckResult check_values_legal(const sim::History& h);

/// MWRegWeak, checked per read: the returned value must be writable by a
/// linearization of {all writes} + that read. Equivalently the read r
/// returning write w requires
///   (a) w was invoked before r returned, and
///   (b) no write w' satisfies w <_r w' <_r r (w' entirely after w and
///       entirely before r);
/// v0 is legal iff no write completed before r was invoked.
CheckResult check_weak_regularity(const sim::History& h);

/// MWRegWO (strong regularity): weak regularity plus the existence of a
/// single total order sigma on writes, extending real-time precedence,
/// such that every read can be inserted immediately after the write it
/// returns without violating its own real-time constraints. Decided by
/// cycle detection on the induced constraint graph.
CheckResult check_strong_regularity(const sim::History& h);

/// Strongly safe (Appendix A): there is a write linearization such that
/// every read with no concurrent writes returns the last preceding write.
CheckResult check_strongly_safe(const sim::History& h);

/// Atomicity (linearizability) of the full history; used for the ABD
/// write-back extension. Implemented as strong regularity + the additional
/// constraint that reads respect each other's real-time order.
CheckResult check_atomicity(const sim::History& h);

}  // namespace sbrs::consistency
