#include "consistency/checker.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <vector>

#include "common/check.h"

namespace sbrs::consistency {

namespace {

// Internal write node: index 0 is the virtual initial write w0 (of v0),
// which precedes everything.
struct WriteNode {
  OpId op;                    // OpId::none() for w0
  int64_t invoke = -2;
  std::optional<int64_t> ret; // -1 for w0
};

struct ReadNode {
  sim::OpRecord rec;
  size_t returned_write = 0;  // index into writes; 0 = v0
};

struct Model {
  std::vector<WriteNode> writes;                 // [0] is w0
  std::vector<sim::OpRecord> write_recs;         // parallel to writes[1..]
  std::vector<ReadNode> reads;                   // completed reads only
  std::vector<std::string> problems;             // value-mapping failures
};

bool is_v0(const Value& v) {
  for (uint8_t b : v.bytes()) {
    if (b != 0) return false;
  }
  return true;
}

/// True iff a (complete) strictly precedes b in real time.
bool precedes(const WriteNode& a, int64_t b_invoke) {
  return a.ret.has_value() && *a.ret < b_invoke;
}

Model build_model(const sim::History& h) {
  Model m;
  m.writes.push_back(WriteNode{OpId::none(), -2, -1});  // w0

  for (const auto& w : h.writes()) {
    WriteNode node;
    node.op = w.op;
    node.invoke = static_cast<int64_t>(w.invoke_time);
    if (w.return_time) node.ret = static_cast<int64_t>(*w.return_time);
    m.writes.push_back(node);
    m.write_recs.push_back(w);
  }

  for (const auto& r : h.reads()) {
    if (!r.complete()) continue;
    ReadNode node;
    node.rec = r;
    if (is_v0(r.value)) {
      node.returned_write = 0;
    } else {
      // Map the returned value to the write that produced it.
      size_t found = 0;
      for (size_t i = 0; i < m.write_recs.size(); ++i) {
        if (m.write_recs[i].value == r.value) {
          found = i + 1;
          break;
        }
      }
      if (found == 0) {
        std::ostringstream os;
        os << r.op << " returned a value written by no operation (tag="
           << r.value.tag() << ")";
        m.problems.push_back(os.str());
        continue;
      }
      node.returned_write = found;
    }
    m.reads.push_back(node);
  }
  return m;
}

/// Directed graph over write indices with DFS cycle detection.
class WriteGraph {
 public:
  explicit WriteGraph(size_t n) : adj_(n) {}

  void add_edge(size_t from, size_t to) {
    if (from != to) adj_[from].push_back(to);
  }

  bool has_cycle() const {
    std::vector<int> state(adj_.size(), 0);  // 0 new, 1 in stack, 2 done
    for (size_t s = 0; s < adj_.size(); ++s) {
      if (state[s] == 0 && dfs(s, state)) return true;
    }
    return false;
  }

 private:
  bool dfs(size_t v, std::vector<int>& state) const {
    state[v] = 1;
    for (size_t w : adj_[v]) {
      if (state[w] == 1) return true;
      if (state[w] == 0 && dfs(w, state)) return true;
    }
    state[v] = 2;
    return false;
  }

  std::vector<std::vector<size_t>> adj_;
};

void add_real_time_edges(const Model& m, WriteGraph& g) {
  for (size_t i = 0; i < m.writes.size(); ++i) {
    for (size_t j = 0; j < m.writes.size(); ++j) {
      if (i != j && precedes(m.writes[i], m.writes[j].invoke)) {
        g.add_edge(i, j);
      }
    }
  }
}

/// Per-read placement constraints shared by the strong-regularity and
/// atomicity checks: every write completing before the read's invocation
/// must be ordered no later than the returned write, and every write
/// invoked after the read's return must be ordered after it.
void add_read_edges(const Model& m, const ReadNode& r, WriteGraph& g) {
  const int64_t inv = static_cast<int64_t>(r.rec.invoke_time);
  const int64_t ret = static_cast<int64_t>(*r.rec.return_time);
  for (size_t i = 0; i < m.writes.size(); ++i) {
    if (i == r.returned_write) continue;
    if (precedes(m.writes[i], inv)) {
      g.add_edge(i, r.returned_write);
    }
    if (m.writes[i].invoke > ret) {
      g.add_edge(r.returned_write, i);
    }
  }
}

}  // namespace

std::string CheckResult::summary() const {
  if (ok) return "OK";
  std::ostringstream os;
  os << violations.size() << " violation(s):";
  for (const auto& v : violations) os << "\n  - " << v;
  return os.str();
}

CheckResult check_values_legal(const sim::History& h) {
  CheckResult res;
  Model m = build_model(h);
  for (const auto& p : m.problems) res.fail(p);
  return res;
}

CheckResult check_weak_regularity(const sim::History& h) {
  CheckResult res;
  Model m = build_model(h);
  for (const auto& p : m.problems) res.fail(p);

  for (const ReadNode& r : m.reads) {
    const int64_t inv = static_cast<int64_t>(r.rec.invoke_time);
    const int64_t ret = static_cast<int64_t>(*r.rec.return_time);
    const WriteNode& w = m.writes[r.returned_write];

    // (a) the returned write must have been invoked before the read
    //     returned (w0 trivially satisfies this).
    if (w.invoke >= ret) {
      std::ostringstream os;
      os << r.rec.op << " returned the value of " << w.op
         << " which was invoked only after the read returned";
      res.fail(os.str());
      continue;
    }
    // (b) no write is sandwiched strictly between w and the read.
    for (size_t i = 1; i < m.writes.size(); ++i) {
      const WriteNode& mid = m.writes[i];
      if (i == r.returned_write) continue;
      const bool after_w =
          w.ret.has_value() ? (mid.invoke > *w.ret) : false;
      const bool before_r = precedes(mid, inv);
      if (after_w && before_r) {
        std::ostringstream os;
        os << r.rec.op << " returned " << w.op << " but " << mid.op
           << " completed strictly between them (new-old inversion)";
        res.fail(os.str());
        break;
      }
    }
  }
  return res;
}

CheckResult check_strong_regularity(const sim::History& h) {
  CheckResult res = check_weak_regularity(h);
  Model m = build_model(h);

  WriteGraph g(m.writes.size());
  add_real_time_edges(m, g);
  for (const ReadNode& r : m.reads) add_read_edges(m, r, g);

  if (g.has_cycle()) {
    res.fail(
        "no single write order satisfies all reads simultaneously "
        "(strong-regularity constraint graph has a cycle)");
  }
  return res;
}

CheckResult check_strongly_safe(const sim::History& h) {
  CheckResult res;
  Model m = build_model(h);
  for (const auto& p : m.problems) res.fail(p);

  WriteGraph g(m.writes.size());
  add_real_time_edges(m, g);

  for (const ReadNode& r : m.reads) {
    const int64_t inv = static_cast<int64_t>(r.rec.invoke_time);
    const int64_t ret = static_cast<int64_t>(*r.rec.return_time);

    // Does any write overlap the read? (Incomplete writes invoked before
    // the read returned count as concurrent.)
    bool has_concurrent = false;
    for (size_t i = 1; i < m.writes.size(); ++i) {
      const WriteNode& w = m.writes[i];
      const bool before = precedes(w, inv);
      const bool after = w.invoke > ret;
      if (!before && !after) {
        has_concurrent = true;
        break;
      }
    }
    if (has_concurrent) continue;  // unconstrained by safe semantics

    const WriteNode& w = m.writes[r.returned_write];
    if (r.returned_write != 0 && !precedes(w, inv)) {
      std::ostringstream os;
      os << r.rec.op << " has no concurrent writes but returned " << w.op
         << " which did not complete before it";
      res.fail(os.str());
      continue;
    }
    add_read_edges(m, r, g);
  }

  if (g.has_cycle()) {
    res.fail("no write linearization satisfies all quiescent reads");
  }
  return res;
}

CheckResult check_atomicity(const sim::History& h) {
  CheckResult res = check_strong_regularity(h);
  Model m = build_model(h);

  WriteGraph g(m.writes.size());
  add_real_time_edges(m, g);
  for (const ReadNode& r : m.reads) add_read_edges(m, r, g);

  // Reads must respect each other's real-time order: if r1 precedes r2,
  // r2 may not return an older write than r1.
  for (const ReadNode& r1 : m.reads) {
    for (const ReadNode& r2 : m.reads) {
      if (&r1 == &r2) continue;
      if (static_cast<int64_t>(*r1.rec.return_time) <
              static_cast<int64_t>(r2.rec.invoke_time) &&
          r1.returned_write != r2.returned_write) {
        g.add_edge(r1.returned_write, r2.returned_write);
      }
    }
  }
  if (g.has_cycle()) {
    res.fail("atomicity constraint graph has a cycle (read-read inversion)");
  }
  return res;
}

}  // namespace sbrs::consistency
