// Closed-form storage bounds from the paper, used by tests and benches to
// compare measured storage against predictions.
//
// All quantities are in bits. D is the register data size, f the number of
// tolerated base-object failures, c the write-concurrency level, k the
// erasure-code dimension, n = 2f + k the number of base objects.
#pragma once

#include <algorithm>
#include <cstdint>

namespace sbrs::bounds {

/// The bit size of one code piece as actually produced by the byte-aligned
/// k-of-n codecs: 8 * ceil(D / 8k). Equals D/k exactly when k divides the
/// byte size; the paper's idealized D/k otherwise rounds up to whole bytes.
inline uint64_t piece_bits(uint32_t k, uint64_t D) {
  const uint64_t value_bytes = D / 8;
  return 8ull * ((value_bytes + k - 1) / k);
}

/// Theorem 1: the storage an adversary can force any lock-free, regular,
/// symmetric-black-box-coding algorithm to hold. The proof's construction
/// with l = D/2 yields at least min(f+1, c) * D/2 bits.
inline uint64_t lower_bound_bits(uint32_t f, uint32_t c, uint64_t D) {
  return static_cast<uint64_t>(std::min(f + 1u, c)) * (D / 2);
}

/// Theorem 2 / Corollary 3 upper bound on the adaptive algorithm's
/// base-object storage. Lemma 6 gives (c+1) pieces per object — but only
/// while the concurrency is below the code dimension (c < k - 1); beyond
/// that the replica path kicks in and Lemma 7's cap of 2k pieces per object
/// (k in Vp plus a k-piece replica in Vf), i.e. 2(2f+k) D total, is the
/// operative bound. With k = f both regimes are O(min(f, c) D).
inline uint64_t adaptive_upper_bound_bits(uint32_t f, uint32_t k, uint32_t c,
                                          uint64_t D) {
  const uint64_t n = 2ull * f + k;
  const uint64_t replication_cap = 2ull * n * k * piece_bits(k, D);
  if (c + 1 < k) {
    const uint64_t low_concurrency = (c + 1ull) * n * piece_bits(k, D);
    return std::min(low_concurrency, replication_cap);
  }
  return replication_cap;
}

/// Theorem 2, quiescence clause: after finitely many writes, all by correct
/// writers, the adaptive algorithm's storage shrinks to (2f+k) D/k — one
/// piece per base object.
inline uint64_t adaptive_quiescent_bits(uint32_t f, uint32_t k, uint64_t D) {
  return (2ull * f + k) * piece_bits(k, D);
}

/// Replication (ABD) base-object storage: n full copies.
inline uint64_t replication_bits(uint32_t n, uint64_t D) {
  return static_cast<uint64_t>(n) * D;
}

/// Appendix E, Lemma 17: the safe register stores exactly n D/k =
/// (2f/k + 1) D bits at all times.
inline uint64_t safe_register_bits(uint32_t f, uint32_t k, uint64_t D) {
  return (2ull * f + k) * piece_bits(k, D);
}

/// The O(cD) behaviour of pure coded storage (Section 1's motivating
/// claim): c outstanding writes plus the last committed value leave up to
/// c+1 pieces per object.
inline uint64_t coded_baseline_bits(uint32_t f, uint32_t k, uint32_t c,
                                    uint64_t D) {
  return (c + 1ull) * (2ull * f + k) * piece_bits(k, D);
}

/// The replication/erasure crossover the adaptive algorithm exploits: for
/// c below this threshold coding is cheaper; above it replication is.
inline uint32_t crossover_concurrency(uint32_t f, uint32_t k) {
  // (c+1) n D / k <= 2 n D  <=>  c <= 2k - 1.
  (void)f;
  return 2 * k - 1;
}

}  // namespace sbrs::bounds
