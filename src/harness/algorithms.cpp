#include "harness/algorithms.h"

#include "common/check.h"

namespace sbrs::harness {

std::unique_ptr<registers::RegisterAlgorithm> make_algorithm(
    const std::string& name, const registers::RegisterConfig& cfg) {
  if (name == "adaptive") {
    return registers::make_adaptive(cfg);
  }
  if (name == "no-replica") {
    registers::AdaptiveOptions o;
    o.enable_replica_path = false;
    o.vp_unbounded = true;
    return registers::make_adaptive(cfg, o);
  }
  if (name == "abd" || name == "abd-wb") {
    registers::RegisterConfig abd = cfg;
    abd.k = 1;
    abd.n = 2 * cfg.f + 1;
    registers::AbdOptions o;
    o.write_back = (name == "abd-wb");
    return registers::make_abd(abd, o);
  }
  if (name == "coded") {
    return registers::make_coded(cfg);
  }
  if (name == "coded-atomic") {
    return registers::make_coded_atomic(cfg);
  }
  if (name == "safe") {
    return registers::make_safe(cfg);
  }
  SBRS_CHECK_MSG(false, "unknown algorithm name: " << name);
  return nullptr;
}

ConsistencyGuarantee expected_consistency(const std::string& name) {
  if (name == "safe") return ConsistencyGuarantee::kStronglySafe;
  if (name == "coded" || name == "coded-atomic" || name == "no-replica") {
    return ConsistencyGuarantee::kWeakRegular;
  }
  if (name == "abd" || name == "abd-wb" || name == "adaptive") {
    return ConsistencyGuarantee::kStrongRegular;
  }
  SBRS_CHECK_MSG(false, "unknown algorithm name: " << name);
  return ConsistencyGuarantee::kWeakRegular;
}

const std::vector<std::string>& algorithm_names() {
  static const std::vector<std::string> kNames = {
      "adaptive", "no-replica", "abd",  "abd-wb",
      "coded",    "coded-atomic", "safe"};
  return kNames;
}

}  // namespace sbrs::harness
