#include "harness/sweep.h"

#include <algorithm>
#include <chrono>

#include "common/bytes.h"
#include "common/check.h"
#include "common/rng.h"
#include "harness/algorithms.h"

namespace sbrs::harness {

namespace {

uint64_t mix_into(uint64_t h, uint64_t v) { return fnv1a_mix(h, v); }

/// The per-run result kept by a sweep worker: everything the aggregation
/// needs, without the history (a big sweep would otherwise hold every run's
/// full trace in memory at once).
struct RunDigest {
  uint64_t max_total_bits = 0;
  uint64_t max_object_bits = 0;
  uint64_t max_channel_bits = 0;
  uint64_t steps = 0;
  bool checks_ok = true;
  bool live = true;
  bool quiesced = false;
  uint64_t fingerprint = 0;
  metrics::LatencyHistogram latency;
  metrics::LatencyHistogram sojourn;
  uint64_t max_queue_depth = 0;
  bool saturated = false;
  uint64_t object_crash_events = 0;
  uint64_t object_restarts = 0;
  uint64_t repair_bits = 0;
  uint64_t repair_pushes = 0;
  uint64_t open_repair_windows = 0;
  uint64_t degraded_steps = 0;
  uint64_t repair_window_steps = 0;
  metrics::LatencyHistogram degraded_sojourn;
  uint64_t partition_events = 0;
  uint64_t heal_events = 0;
  uint64_t rmws_dropped = 0;
  uint64_t rmws_delayed = 0;
  std::string stop_reason;
  double seconds = 0;
};

}  // namespace

MetricSummary summarize_metric(std::vector<uint64_t> values) {
  MetricSummary s;
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  s.min = values.front();
  s.max = values.back();
  auto rank = [&](double q) {
    // Nearest-rank percentile on the sorted sample.
    const size_t idx = static_cast<size_t>(q * (values.size() - 1) + 0.5);
    return values[std::min(idx, values.size() - 1)];
  };
  s.p50 = rank(0.50);
  s.p90 = rank(0.90);
  s.p99 = rank(0.99);
  long double sum = 0;
  for (uint64_t v : values) sum += v;
  s.mean = static_cast<double>(sum / values.size());
  return s;
}

uint64_t cell_seed(uint64_t base_seed, size_t cell_index,
                   uint32_t seed_index) {
  // Thin alias of the registry shape (common/rng.h): derived seeds are
  // frozen by recorded artifacts.
  return derive_cell_seed(base_seed, cell_index, seed_index);
}

uint64_t history_fingerprint(const sim::History& history, uint64_t h) {
  for (const auto& ev : history.events()) {
    h = mix_into(h, ev.time);
    h = mix_into(h, static_cast<uint64_t>(ev.kind));
    h = mix_into(h, ev.op.value);
    h = mix_into(h, ev.client.value);
    h = mix_into(h, static_cast<uint64_t>(ev.op_kind));
    h = mix_into(h, ev.value.fingerprint());
    // Crash/restart bookkeeping events additionally pin their object and
    // mode. Mixed only for those kinds so recovery-free histories keep the
    // fingerprints recorded in committed artifacts.
    if (!sim::is_op_event(ev)) {
      h = mix_into(h, ev.object.value);
      h = mix_into(h, static_cast<uint64_t>(ev.restart_mode));
    }
  }
  return h;
}

uint64_t outcome_fingerprint(const RunOutcome& out) {
  uint64_t h = kFingerprintSeed;
  h = mix_into(h, out.max_total_bits);
  h = mix_into(h, out.max_object_bits);
  h = mix_into(h, out.max_channel_bits);
  h = mix_into(h, out.final_total_bits);
  h = mix_into(h, out.final_object_bits);
  h = mix_into(h, out.report.steps);
  h = mix_into(h, out.report.invoked_ops);
  h = mix_into(h, out.report.completed_ops);
  h = mix_into(h, out.report.rmws_triggered);
  h = mix_into(h, out.report.rmws_delivered);
  h = mix_into(h, out.values_legal.ok);
  h = mix_into(h, out.weak_regular.ok);
  h = mix_into(h, out.strong_regular.ok);
  h = mix_into(h, out.strongly_safe.ok);
  h = mix_into(h, out.live);
  // Open-loop outcome: arrival times are not part of the history trace, so
  // pin the queue stats and the derived sojourn tail explicitly.
  h = mix_into(h, out.max_queue_depth);
  h = mix_into(h, out.undispatched);
  h = mix_into(h, out.saturated);
  h = mix_into(h, out.report.sojourn_latency.count());
  h = mix_into(h, out.report.sojourn_latency.p50());
  h = mix_into(h, out.report.sojourn_latency.p99());
  h = mix_into(h, out.report.sojourn_latency.max());
  h = recovery_fingerprint(out.report, h);
  h = link_fault_fingerprint(out.report, h);
  return history_fingerprint(out.history, h);
}

uint64_t recovery_fingerprint(const sim::RunReport& report, uint64_t h) {
  // The crash/restart events themselves ride in the history trace; the
  // derived counters are pinned here, conditionally so crash-free runs
  // keep their recorded fingerprints.
  if (report.object_crash_events == 0 && report.object_restarts == 0) {
    return h;
  }
  h = mix_into(h, report.object_crash_events);
  h = mix_into(h, report.object_restarts);
  h = mix_into(h, report.repair_bits);
  h = mix_into(h, report.degraded_steps);
  h = mix_into(h, report.degraded_sojourn.count());
  h = mix_into(h, report.degraded_sojourn.p99());
  // Active-repair outcome, pinned only when a push actually fired so
  // passive-recovery runs keep the fingerprints recorded in committed
  // artifacts.
  if (report.repair_pushes > 0) {
    h = mix_into(h, report.repair_pushes);
    h = mix_into(h, report.open_repair_windows);
  }
  return h;
}

uint64_t link_fault_fingerprint(const sim::RunReport& report, uint64_t h) {
  // Partition/heal events ride in the history trace like crash/restart;
  // the derived counters are pinned here, conditionally so fault-free runs
  // keep their recorded fingerprints.
  if (report.partition_events == 0 && report.heal_events == 0 &&
      report.rmws_dropped == 0 && report.rmws_delayed == 0) {
    return h;
  }
  h = mix_into(h, report.partition_events);
  h = mix_into(h, report.heal_events);
  h = mix_into(h, report.rmws_dropped);
  h = mix_into(h, report.rmws_delayed);
  return h;
}

uint64_t SweepResult::fingerprint() const {
  uint64_t h = kFingerprintSeed;
  for (const auto& c : cells) h = mix_into(h, c.fingerprint);
  return h;
}

SweepResult SweepRunner::run(const std::vector<SweepCell>& grid) const {
  SBRS_CHECK(opts_.seeds_per_cell >= 1);
  const uint32_t seeds = opts_.seeds_per_cell;
  uint32_t threads =
      opts_.threads == 0 ? std::thread::hardware_concurrency() : opts_.threads;
  if (threads == 0) threads = 1;

  const auto sweep_start = std::chrono::steady_clock::now();

  // One job per (cell, seed-index); results land at their own index, so the
  // aggregation below sees a schedule-independent job list.
  const size_t jobs = grid.size() * seeds;
  std::mutex progress_mu;
  size_t progress_done = 0;
  size_t progress_failed = 0;
  std::vector<RunDigest> digests = parallel_map(
      jobs, threads, [&](size_t job) -> RunDigest {
        const size_t cell_index = job / seeds;
        const uint32_t seed_index = static_cast<uint32_t>(job % seeds);
        const SweepCell& cell = grid[cell_index];

        RunOptions opts = cell.opts;
        opts.seed = cell_seed(opts_.base_seed, cell_index, seed_index);
        opts.check_consistency = opts_.check_consistency;

        // Fresh algorithm instance per run: no shared mutable state (codec
        // caches etc.) crosses a worker boundary.
        auto algorithm = make_algorithm(cell.algorithm, cell.config);

        const auto start = std::chrono::steady_clock::now();
        RunOutcome out = run_register_experiment(*algorithm, opts);
        const auto end = std::chrono::steady_clock::now();

        RunDigest d;
        d.max_total_bits = out.max_total_bits;
        d.max_object_bits = out.max_object_bits;
        d.max_channel_bits = out.max_channel_bits;
        d.steps = out.report.steps;
        // Judge each run against the level its algorithm actually promises:
        // a safe register legitimately fails regularity under concurrent
        // reads, and the coded baselines promise only weak regularity.
        d.checks_ok = out.values_legal.ok;
        switch (expected_consistency(cell.algorithm)) {
          case ConsistencyGuarantee::kStronglySafe:
            d.checks_ok = d.checks_ok && out.strongly_safe.ok;
            break;
          case ConsistencyGuarantee::kWeakRegular:
            d.checks_ok = d.checks_ok && out.weak_regular.ok;
            break;
          case ConsistencyGuarantee::kStrongRegular:
            d.checks_ok = d.checks_ok && out.weak_regular.ok &&
                          out.strong_regular.ok;
            break;
        }
        d.live = out.live;
        d.quiesced = out.report.quiesced;
        d.latency = out.report.op_latency;
        d.sojourn = out.report.sojourn_latency;
        d.max_queue_depth = out.max_queue_depth;
        d.saturated = out.saturated;
        d.object_crash_events = out.report.object_crash_events;
        d.object_restarts = out.report.object_restarts;
        d.repair_bits = out.report.repair_bits;
        d.repair_pushes = out.report.repair_pushes;
        d.open_repair_windows = out.report.open_repair_windows;
        d.degraded_steps = out.report.degraded_steps;
        d.repair_window_steps = out.report.repair_window_steps;
        d.degraded_sojourn = out.report.degraded_sojourn;
        d.partition_events = out.report.partition_events;
        d.heal_events = out.report.heal_events;
        d.rmws_dropped = out.report.rmws_dropped;
        d.rmws_delayed = out.report.rmws_delayed;
        d.stop_reason = out.report.stop_reason;
        d.fingerprint = outcome_fingerprint(out);
        d.seconds = std::chrono::duration<double>(end - start).count();
        if (opts_.progress) {
          std::lock_guard<std::mutex> lock(progress_mu);
          ++progress_done;
          if (!d.checks_ok || (!d.live && !d.saturated)) ++progress_failed;
          opts_.progress(progress_done, jobs, progress_failed);
        }
        return d;
      });

  SweepResult result;
  result.options = opts_;
  result.threads_used = threads;
  result.cells.reserve(grid.size());
  for (size_t c = 0; c < grid.size(); ++c) {
    CellSummary cs;
    cs.cell = grid[c];
    cs.seeds = seeds;
    std::vector<uint64_t> total, object, channel, steps, qdepth;
    std::vector<uint64_t> repair, degraded;
    total.reserve(seeds);
    object.reserve(seeds);
    channel.reserve(seeds);
    steps.reserve(seeds);
    qdepth.reserve(seeds);
    repair.reserve(seeds);
    degraded.reserve(seeds);
    uint64_t fp = kFingerprintSeed;
    for (uint32_t s = 0; s < seeds; ++s) {
      const RunDigest& d = digests[c * seeds + s];
      total.push_back(d.max_total_bits);
      object.push_back(d.max_object_bits);
      channel.push_back(d.max_channel_bits);
      steps.push_back(d.steps);
      qdepth.push_back(d.max_queue_depth);
      if (!d.checks_ok) ++cs.consistency_failures;
      // A saturated open-loop seed legitimately ends with outstanding ops
      // (the step budget cut it off mid-queue) — that's the measurement,
      // not a stuck client; only unsaturated runs can fail liveness.
      if (!d.live && !d.saturated) ++cs.liveness_failures;
      if (d.quiesced) ++cs.quiesced;
      if (d.saturated) ++cs.saturated_seeds;
      cs.latency.merge(d.latency);
      cs.sojourn.merge(d.sojourn);
      cs.object_crash_events += d.object_crash_events;
      cs.object_restarts += d.object_restarts;
      repair.push_back(d.repair_bits);
      cs.repair_pushes += d.repair_pushes;
      cs.open_repair_windows += d.open_repair_windows;
      cs.repair_window_steps += d.repair_window_steps;
      degraded.push_back(d.degraded_steps);
      cs.degraded_sojourn.merge(d.degraded_sojourn);
      cs.partition_events += d.partition_events;
      cs.heal_events += d.heal_events;
      cs.rmws_dropped += d.rmws_dropped;
      cs.rmws_delayed += d.rmws_delayed;
      ++cs.stop_reasons[d.stop_reason];
      cs.total_steps += d.steps;
      cs.wall_seconds += d.seconds;
      fp = mix_into(fp, d.fingerprint);
    }
    cs.fingerprint = fp;
    cs.max_total_bits = summarize_metric(std::move(total));
    cs.max_object_bits = summarize_metric(std::move(object));
    cs.max_channel_bits = summarize_metric(std::move(channel));
    cs.steps = summarize_metric(std::move(steps));
    cs.max_queue_depth = summarize_metric(std::move(qdepth));
    cs.repair_bits = summarize_metric(std::move(repair));
    cs.degraded_steps = summarize_metric(std::move(degraded));
    cs.steps_per_sec = cs.wall_seconds > 0
                           ? static_cast<double>(cs.total_steps) /
                                 cs.wall_seconds
                           : 0.0;
    result.cells.push_back(std::move(cs));
  }
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    sweep_start)
          .count();
  return result;
}

}  // namespace sbrs::harness
