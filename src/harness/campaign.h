// The fault-campaign runner: sweep scenario files × seeds on the worker
// pool and triage every failure.
//
// A campaign takes a list of scenario files (harness/scenario.h), runs each
// one at `seeds_per_scenario` consecutive seeds (base_seed, base_seed+1,
// ...) via parallel_map — schedule-independent like the sweep engine — and
// aggregates pass/fail per (scenario, seed). Every run that violates its
// scenario's expect block (or trips an engine invariant: consistency,
// liveness, storage-accounting cross-check) produces a TRIAGE BUNDLE: a
// directory holding the scenario file verbatim, the resolved seed and
// outcome, the full history trace (register mode), a structured trace.json
// (Chrome trace_event, from a deterministic traced replay of the failing
// seed), the fingerprints, and a one-line repro command that reproduces the
// violation in a single sbrs_cli invocation. Bundles are written serially
// after the parallel phase, so the filesystem layout is deterministic too.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "harness/scenario.h"

namespace sbrs::harness {

struct CampaignOptions {
  std::vector<std::string> scenario_files;
  uint32_t seeds_per_scenario = 1;
  uint64_t base_seed = 1;
  /// Worker threads; 0 = hardware concurrency.
  uint32_t threads = 0;
  /// Where triage bundles land (one subdirectory per failed run). Empty =
  /// don't write bundles, just report.
  std::string bundle_dir;
  /// Heartbeat called (under an internal mutex, from worker threads) after
  /// every completed (scenario, seed) run: (runs done, runs total, failures
  /// so far). Powers sbrs_cli --progress; leave unset for silence.
  std::function<void(size_t done, size_t total, size_t failures)> progress;
};

/// One (scenario, seed) verdict, plus the path of its bundle if it failed
/// and bundles are enabled.
struct CampaignRun {
  std::string scenario;  // scenario name
  std::string file;      // source path
  uint64_t seed = 0;
  ScenarioOutcome outcome;
  std::string bundle_path;  // empty unless failed with bundle_dir set
};

struct CampaignResult {
  CampaignOptions options;
  std::vector<CampaignRun> runs;  // scenario-major, seed-minor order
  uint32_t failures = 0;
  uint32_t threads_used = 1;
  double wall_seconds = 0;  // machine-dependent

  bool ok() const { return failures == 0; }
};

/// Load every scenario file, run the grid, write triage bundles for the
/// failures. Scenario files that fail to parse throw (a broken campaign
/// spec is a usage error, not a finding).
CampaignResult run_campaign(const CampaignOptions& opts);

/// Campaign summary JSON: per-run verdicts (stop reasons, fault counters,
/// violations, bundle paths) plus the failure total. Deterministic except
/// wall_seconds.
void write_campaign_json(std::ostream& os, const CampaignResult& result);

/// Write one triage bundle directory for a failed run; returns its path.
/// Layout: scenario.json (the file verbatim), run.json (seed, violations,
/// counters, fingerprint, repro command), trace.txt (register-mode history
/// trace), repro.txt (the one-line repro command), and — when `trace_json`
/// is nonempty — trace.json (the structured Chrome trace_event document of
/// the failing run, loadable in ui.perfetto.dev). run_campaign fills
/// trace_json by deterministically re-running just the failed (scenario,
/// seed) with a recorder attached.
std::string write_triage_bundle(const std::string& bundle_dir,
                                const Scenario& scenario,
                                const ScenarioOutcome& outcome,
                                const std::string& trace_json = {});

}  // namespace sbrs::harness
