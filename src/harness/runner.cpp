#include "harness/runner.h"

#include "common/check.h"
#include "sim/schedulers.h"
#include "sim/workload.h"

namespace sbrs::harness {

RunOutcome run_register_experiment(
    const registers::RegisterAlgorithm& algorithm, const RunOptions& opts) {
  const auto& cfg = algorithm.config();

  sim::UniformWorkload::Options wl;
  wl.writers = opts.writers;
  wl.writes_per_client = opts.writes_per_client;
  wl.readers = opts.readers;
  wl.reads_per_client = opts.reads_per_client;
  wl.data_bits = cfg.data_bits;

  std::unique_ptr<sim::Scheduler> scheduler;
  switch (opts.scheduler) {
    case SchedKind::kRandom: {
      sim::RandomScheduler::Options so;
      so.seed = opts.seed;
      so.max_object_crashes = opts.object_crashes;
      so.crash_object_permyriad = opts.object_crashes > 0 ? 20 : 0;
      so.max_client_crashes = opts.client_crashes;
      so.crash_client_permyriad = opts.client_crashes > 0 ? 20 : 0;
      scheduler = std::make_unique<sim::RandomScheduler>(so);
      break;
    }
    case SchedKind::kRoundRobin:
      scheduler = std::make_unique<sim::RoundRobinScheduler>();
      break;
    case SchedKind::kBurst:
      scheduler = std::make_unique<sim::BurstScheduler>();
      break;
  }

  sim::SimConfig sc;
  sc.num_objects = cfg.n;
  sc.num_clients = opts.writers + opts.readers;
  sc.max_steps = opts.max_steps;
  sc.sample_every = opts.sample_every;

  sim::Simulator simulator(sc, algorithm.object_factory(),
                           algorithm.client_factory(),
                           std::make_unique<sim::UniformWorkload>(wl),
                           std::move(scheduler));
  sim::RunReport report = simulator.run();

  RunOutcome out;
  out.algorithm = algorithm.name();
  out.report = report;
  out.history = simulator.history();
  out.max_total_bits = simulator.meter().max_total_bits();
  out.max_object_bits = simulator.meter().max_object_bits();
  out.max_channel_bits = simulator.meter().max_channel_bits();
  out.final_object_bits = simulator.meter().last_object_bits();
  out.final_total_bits = simulator.meter().last_total_bits();

  if (opts.check_consistency) {
    out.values_legal = consistency::check_values_legal(out.history);
    out.weak_regular = consistency::check_weak_regularity(out.history);
    out.strong_regular = consistency::check_strong_regularity(out.history);
    out.strongly_safe = consistency::check_strongly_safe(out.history);
  }

  // Liveness: every operation of a client that stayed alive completed.
  out.live = true;
  for (const auto& rec : out.history.outstanding()) {
    if (simulator.client_alive(rec.client)) out.live = false;
  }
  return out;
}

}  // namespace sbrs::harness
