#include "harness/runner.h"

#include "common/check.h"
#include "common/stop_reason.h"
#include "registers/repair.h"
#include "runtime/backend.h"
#include "sim/schedulers.h"
#include "sim/workload.h"

namespace sbrs::harness {

Backend parse_backend(const std::string& s) {
  if (s == "sim") return Backend::kSim;
  if (s == "threads") return Backend::kThreads;
  SBRS_CHECK_MSG(false, "unknown backend '" << s << "' (sim | threads)");
  return Backend::kSim;
}

bool has_link_faults(const RunOptions& opts) {
  if (opts.partitions > 0) return true;
  const sim::LinkFaultOptions& lf = opts.link_faults;
  if (lf.drop_permyriad > 0 || lf.delay_permyriad > 0 ||
      lf.reorder_window > 0 || !lf.windows.empty()) {
    return true;
  }
  for (const sim::FaultEvent& e : opts.fault_timeline) {
    switch (e.kind) {
      case sim::FaultEvent::Kind::kPartitionLink:
      case sim::FaultEvent::Kind::kPartitionObject:
      case sim::FaultEvent::Kind::kHealLink:
      case sim::FaultEvent::Kind::kHealObject:
      case sim::FaultEvent::Kind::kHealAll:
        return true;
      default:
        break;
    }
  }
  return false;
}

std::string validate_fault_options(const RunOptions& opts) {
  if (opts.scheduler == SchedKind::kRandom) return {};
  if (has_link_faults(opts)) {
    return "link faults (partitions, drops, delays, reordering) need the "
           "random scheduler — the deterministic schedulers are not "
           "fault-aware";
  }
  if (opts.object_crashes > 0 || opts.client_crashes > 0) {
    return "crash injection needs the random scheduler";
  }
  if (opts.repair_every > 0) {
    return "anti-entropy (repair_every) needs the random scheduler — only "
           "its pump emits repair actions (read_repair works with any "
           "scheduler)";
  }
  return {};
}

std::string validate_backend_options(const RunOptions& opts) {
  if (opts.backend == Backend::kSim) return {};
  if (sim::open_loop(opts.arrival)) {
    return "the threaded backend runs closed-loop sessions only (open-loop "
           "arrival processes are a simulator capability)";
  }
  if (opts.object_crashes > 0 || opts.client_crashes > 0 ||
      opts.partitions > 0 || opts.repair_every > 0 || opts.read_repair ||
      !opts.fault_timeline.empty() || has_link_faults(opts)) {
    return "fault injection and repair are simulator capabilities — the "
           "threaded backend runs fault-free";
  }
  return {};
}

namespace {

/// The threaded-backend path of run_register_experiment: pre-assign the
/// closed-loop op list per session (same OpId/value scheme UniformWorkload
/// uses, so cross-backend histories are comparable value-for-value), run
/// the thread mesh, and dress the result in the same RunOutcome shape.
RunOutcome run_register_experiment_threads(
    const registers::RegisterAlgorithm& algorithm, const RunOptions& opts) {
  const auto& cfg = algorithm.config();

  runtime::ThreadBackendOptions topts;
  topts.num_objects = cfg.n;
  topts.object_factory = algorithm.object_factory();
  topts.client_factory = algorithm.client_factory();

  // Sessions mirror UniformWorkload: clients [0, writers) write
  // writes_per_client values tagged by OpId, the rest read. OpIds are dealt
  // sequentially across sessions (uniqueness is all that matters).
  uint64_t next_op = 0;
  const uint32_t num_clients = opts.writers + opts.readers;
  for (uint32_t c = 0; c < num_clients; ++c) {
    runtime::SessionSpec session;
    session.client = ClientId{c};
    const bool is_writer = c < opts.writers;
    const uint32_t ops =
        is_writer ? opts.writes_per_client : opts.reads_per_client;
    for (uint32_t i = 0; i < ops; ++i) {
      runtime::Invocation inv;
      inv.op = OpId{next_op++};
      inv.client = session.client;
      if (is_writer) {
        inv.kind = runtime::OpKind::kWrite;
        inv.value = Value::from_tag(inv.op.value, cfg.data_bits);
      } else {
        inv.kind = runtime::OpKind::kRead;
      }
      session.ops.push_back(std::move(inv));
    }
    topts.sessions.push_back(std::move(session));
  }

  runtime::ThreadRunReport treport = runtime::run_threaded(topts);

  RunOutcome out;
  out.algorithm = algorithm.name();
  out.backend = Backend::kThreads;
  out.wall_seconds = treport.wall_seconds;
  out.history = std::move(treport.history);

  // Dress the thread run in the RunReport shape the rest of the harness
  // consumes. steps counts recorded history events (the thread backend's
  // logical clock); latencies are wall-clock nanoseconds.
  out.report.steps = out.history.events().size();
  out.report.quiesced = out.history.outstanding().empty();
  out.report.stop_reason = kStopQuiesced;
  out.report.invoked_ops = treport.invoked_ops;
  out.report.completed_ops = treport.completed_ops;
  out.report.rmws_triggered = treport.rmws_triggered;
  out.report.rmws_delivered = treport.rmws_delivered;
  out.report.op_latency = treport.op_latency;
  // Closed-loop: arrival == invoke, sojourn degenerates to service time.
  out.report.sojourn_latency = treport.op_latency;
  out.read_latency = treport.read_latency;
  out.write_latency = treport.write_latency;

  // Storage: the threaded backend tracks per-object maxima (an upper-bound
  // envelope, not an instant-consistent global max) and exact quiescent
  // totals.
  out.max_object_bits = treport.max_object_bits;
  out.max_total_bits = treport.sum_max_object_bits;
  out.max_channel_bits = 0;  // in-flight accounting is a simulator metric
  out.final_object_bits = treport.final_object_bits;
  out.final_total_bits = treport.final_total_bits;

  if (opts.check_consistency) {
    out.values_legal = consistency::check_values_legal(out.history);
    out.weak_regular = consistency::check_weak_regularity(out.history);
    out.strong_regular = consistency::check_strong_regularity(out.history);
    out.strongly_safe = consistency::check_strongly_safe(out.history);
  }
  out.live = treport.live && out.history.outstanding().empty();
  return out;
}

}  // namespace

RunOutcome run_register_experiment(
    const registers::RegisterAlgorithm& algorithm, const RunOptions& opts) {
  const auto& cfg = algorithm.config();

  if (opts.backend == Backend::kThreads) {
    const std::string why = validate_backend_options(opts);
    SBRS_CHECK_MSG(why.empty(), why);
    return run_register_experiment_threads(algorithm, opts);
  }

  // Reject unusable arrival specs before any work (rate <= 0 would divide
  // by zero; burst_on == 0 would never release an arrival).
  {
    const std::string why = sim::validate_arrival(opts.arrival);
    SBRS_CHECK_MSG(why.empty(), why);
  }
  // Link faults require a fault-aware scheduler (crash injection with a
  // deterministic scheduler stays a silent no-op for compatibility; link
  // faults are new and strict).
  SBRS_CHECK_MSG(opts.scheduler == SchedKind::kRandom || !has_link_faults(opts),
                 validate_fault_options(opts));
  SBRS_CHECK_MSG(
      opts.scheduler == SchedKind::kRandom || opts.repair_every == 0,
      validate_fault_options(opts));

  // Closed loop: each session self-paces its own operations. Open loop: one
  // arrival-scheduled stream, any free session dispatches the queue.
  std::unique_ptr<sim::Workload> workload;
  const sim::OpenLoopWorkload* open_workload = nullptr;
  if (sim::open_loop(opts.arrival)) {
    sim::OpenLoopWorkload::Options ol;
    ol.clients = opts.writers + opts.readers;
    ol.write_ops = opts.writers * opts.writes_per_client;
    ol.read_ops = opts.readers * opts.reads_per_client;
    ol.data_bits = cfg.data_bits;
    auto w = std::make_unique<sim::OpenLoopWorkload>(
        ol, sim::generate_arrivals(opts.arrival,
                                   size_t{ol.write_ops} + ol.read_ops,
                                   sim::arrival_seed(opts.seed)));
    open_workload = w.get();
    workload = std::move(w);
  } else {
    sim::UniformWorkload::Options wl;
    wl.writers = opts.writers;
    wl.writes_per_client = opts.writes_per_client;
    wl.readers = opts.readers;
    wl.reads_per_client = opts.reads_per_client;
    wl.data_bits = cfg.data_bits;
    workload = std::make_unique<sim::UniformWorkload>(wl);
  }

  std::unique_ptr<sim::Scheduler> scheduler;
  switch (opts.scheduler) {
    case SchedKind::kRandom: {
      sim::RandomScheduler::Options so;
      so.seed = opts.seed;
      so.max_object_crashes = opts.object_crashes;
      so.crash_object_permyriad = opts.object_crashes > 0 ? 20 : 0;
      so.max_client_crashes = opts.client_crashes;
      so.crash_client_permyriad = opts.client_crashes > 0 ? 20 : 0;
      so.restart_after = opts.restart_after;
      so.restart_object_permyriad = opts.restart_permyriad;
      so.restart_mode = opts.restart_mode;
      so.max_object_restarts =
          (opts.restart_after > 0 || opts.restart_permyriad > 0)
              ? opts.object_crashes
              : 0;
      so.max_partitions = opts.partitions;
      so.partition_permyriad = opts.partitions > 0 ? 20 : 0;
      so.partition_heal_after = opts.heal_after;
      so.repair_every = opts.repair_every;
      scheduler = std::make_unique<sim::RandomScheduler>(so);
      break;
    }
    case SchedKind::kRoundRobin:
      scheduler = std::make_unique<sim::RoundRobinScheduler>();
      break;
    case SchedKind::kBurst:
      scheduler = std::make_unique<sim::BurstScheduler>();
      break;
  }
  if (!opts.fault_timeline.empty()) {
    scheduler = std::make_unique<sim::ScriptedFaultScheduler>(
        opts.fault_timeline, std::move(scheduler));
  }

  sim::SimConfig sc;
  sc.num_objects = cfg.n;
  sc.num_clients = opts.writers + opts.readers;
  sc.max_steps = opts.max_steps;
  sc.sample_every = opts.sample_every;
  sc.link_faults = opts.link_faults;
  sc.link_faults.seed = sim::fault_seed(opts.seed);
  sc.trace = opts.trace;
  if (opts.repair_every > 0 || opts.read_repair) {
    sc.repair_planner = registers::make_repair_planner(algorithm);
    sc.read_repair = opts.read_repair;
    sc.repair_budget = opts.repair_budget;
  }
  if (opts.verify_accounting.has_value()) {
    sc.verify_accounting = *opts.verify_accounting;
  }

  sim::Simulator simulator(sc, algorithm.object_factory(),
                           algorithm.client_factory(), std::move(workload),
                           std::move(scheduler));
  sim::RunReport report = simulator.run();

  RunOutcome out;
  out.algorithm = algorithm.name();
  out.report = report;
  out.history = simulator.history();
  out.max_total_bits = simulator.meter().max_total_bits();
  out.max_object_bits = simulator.meter().max_object_bits();
  out.max_channel_bits = simulator.meter().max_channel_bits();
  out.final_object_bits = simulator.meter().last_object_bits();
  out.final_total_bits = simulator.meter().last_total_bits();

  if (opts.check_consistency) {
    out.values_legal = consistency::check_values_legal(out.history);
    out.weak_regular = consistency::check_weak_regularity(out.history);
    out.strong_regular = consistency::check_strong_regularity(out.history);
    out.strongly_safe = consistency::check_strongly_safe(out.history);
  }

  // Liveness: every operation of a client that stayed alive completed.
  out.live = true;
  for (const auto& rec : out.history.outstanding()) {
    if (simulator.client_alive(rec.client)) out.live = false;
  }

  if (open_workload != nullptr) {
    out.max_queue_depth = open_workload->max_queue_depth();
    out.undispatched = open_workload->undispatched();
    out.saturated = open_workload->saturated(report.hit_step_limit);
  }
  return out;
}

}  // namespace sbrs::harness
