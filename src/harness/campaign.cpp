#include "harness/campaign.h"

#include <chrono>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <thread>

#include "common/check.h"
#include "harness/export.h"
#include "harness/sweep.h"

namespace sbrs::harness {

namespace {

const char* event_kind_name(sim::HistoryEvent::Kind k) {
  switch (k) {
    case sim::HistoryEvent::Kind::kInvoke: return "invoke";
    case sim::HistoryEvent::Kind::kReturn: return "return";
    case sim::HistoryEvent::Kind::kCrashObject: return "crash-object";
    case sim::HistoryEvent::Kind::kRestartObject: return "restart-object";
    case sim::HistoryEvent::Kind::kPartition: return "partition";
    case sim::HistoryEvent::Kind::kHeal: return "heal";
  }
  return "?";
}

/// Human-readable history trace: one event per line, replay-diffable.
void write_trace(std::ostream& os, const sim::History& history) {
  for (const auto& ev : history.events()) {
    os << ev.time << " " << event_kind_name(ev.kind);
    if (sim::is_op_event(ev)) {
      os << " op=" << ev.op.value << " client=" << ev.client.value << " "
         << (ev.op_kind == sim::OpKind::kRead ? "read" : "write");
      if (ev.value.bit_size() > 0) {
        os << " value_fp=" << std::hex << ev.value.fingerprint() << std::dec;
      }
    } else {
      os << " object=" << ev.object.value;
      if (ev.kind == sim::HistoryEvent::Kind::kPartition ||
          ev.kind == sim::HistoryEvent::Kind::kHeal) {
        os << " client=" << ev.client.value;
      }
      if (ev.kind == sim::HistoryEvent::Kind::kRestartObject) {
        os << " mode=" << sim::to_string(ev.restart_mode);
      }
    }
    os << "\n";
  }
}

void write_run_json(std::ostream& os, const Scenario& scenario,
                    const ScenarioOutcome& o) {
  os << "{\n";
  os << "  \"scenario\": \"" << json_escape(o.name) << "\",\n";
  os << "  \"file\": \"" << json_escape(scenario.source_path) << "\",\n";
  os << "  \"mode\": \"" << json_escape(o.mode) << "\",\n";
  os << "  \"seed\": " << o.seed << ",\n";
  os << "  \"ok\": " << (o.ok ? "true" : "false") << ",\n";
  os << "  \"violations\": [";
  for (size_t i = 0; i < o.violations.size(); ++i) {
    os << (i ? ", " : "") << "\"" << json_escape(o.violations[i]) << "\"";
  }
  os << "],\n";
  os << "  \"stop_reason\": \"" << json_escape(o.stop_reason) << "\",\n";
  os << "  \"fingerprint\": \"" << std::hex << o.fingerprint << std::dec
     << "\",\n";
  os << "  \"steps\": " << o.steps
     << ", \"max_total_bits\": " << o.max_total_bits
     << ", \"degraded_steps\": " << o.degraded_steps << ",\n";
  os << "  \"partition_events\": " << o.partition_events
     << ", \"heal_events\": " << o.heal_events
     << ", \"rmws_dropped\": " << o.rmws_dropped
     << ", \"rmws_delayed\": " << o.rmws_delayed << ",\n";
  os << "  \"object_crash_events\": " << o.object_crash_events
     << ", \"object_restarts\": " << o.object_restarts << ",\n";
  os << "  \"repro\": \"" << json_escape(repro_command(scenario, o.seed))
     << "\"\n";
  os << "}\n";
}

/// Filesystem-safe bundle directory name for one failed run.
std::string bundle_name(const ScenarioOutcome& o) {
  std::string base;
  for (char c : o.name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_';
    base += ok ? c : '-';
  }
  if (base.empty()) base = "scenario";
  return base + "-seed" + std::to_string(o.seed);
}

}  // namespace

std::string write_triage_bundle(const std::string& bundle_dir,
                                const Scenario& scenario,
                                const ScenarioOutcome& outcome,
                                const std::string& trace_json) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::path(bundle_dir) / bundle_name(outcome);
  std::error_code ec;
  fs::create_directories(dir, ec);
  SBRS_CHECK_MSG(!ec, "campaign: cannot create bundle directory "
                          << dir.string() << ": " << ec.message());

  {
    std::ofstream os(dir / "scenario.json");
    SBRS_CHECK_MSG(os.good(), "campaign: cannot write scenario.json");
    os << scenario.source_text;
    if (!scenario.source_text.empty() && scenario.source_text.back() != '\n') {
      os << "\n";
    }
  }
  {
    std::ofstream os(dir / "run.json");
    SBRS_CHECK_MSG(os.good(), "campaign: cannot write run.json");
    write_run_json(os, scenario, outcome);
  }
  {
    std::ofstream os(dir / "repro.txt");
    SBRS_CHECK_MSG(os.good(), "campaign: cannot write repro.txt");
    os << repro_command(scenario, outcome.seed) << "\n";
  }
  if (outcome.register_out.has_value()) {
    std::ofstream os(dir / "trace.txt");
    SBRS_CHECK_MSG(os.good(), "campaign: cannot write trace.txt");
    write_trace(os, outcome.register_out->history);
  }
  if (!trace_json.empty()) {
    std::ofstream os(dir / "trace.json");
    SBRS_CHECK_MSG(os.good(), "campaign: cannot write trace.json");
    os << trace_json;
  }
  return dir.string();
}

CampaignResult run_campaign(const CampaignOptions& opts) {
  SBRS_CHECK_MSG(!opts.scenario_files.empty(),
                 "campaign: no scenario files given");
  SBRS_CHECK_MSG(opts.seeds_per_scenario >= 1,
                 "campaign: seeds_per_scenario must be >= 1");

  // Parse errors throw here, before any run: a broken campaign spec is a
  // usage error, not a triage finding.
  std::vector<Scenario> scenarios;
  scenarios.reserve(opts.scenario_files.size());
  for (const auto& file : opts.scenario_files) {
    scenarios.push_back(load_scenario(file));
  }

  uint32_t threads =
      opts.threads == 0 ? std::thread::hardware_concurrency() : opts.threads;
  if (threads == 0) threads = 1;

  const size_t total = scenarios.size() * opts.seeds_per_scenario;
  const auto start = std::chrono::steady_clock::now();
  std::mutex progress_mu;
  size_t done = 0;
  size_t failed = 0;
  std::vector<ScenarioOutcome> outcomes =
      parallel_map(total, threads, [&](size_t i) -> ScenarioOutcome {
        const size_t sc = i / opts.seeds_per_scenario;
        const uint64_t seed =
            opts.base_seed + (i % opts.seeds_per_scenario);
        ScenarioOutcome out = run_scenario(scenarios[sc], seed);
        if (opts.progress) {
          std::lock_guard<std::mutex> lock(progress_mu);
          ++done;
          if (!out.ok) ++failed;
          opts.progress(done, total, failed);
        }
        return out;
      });

  CampaignResult result;
  result.options = opts;
  result.threads_used = threads;
  result.runs.reserve(total);
  for (size_t i = 0; i < total; ++i) {
    const size_t sc = i / opts.seeds_per_scenario;
    CampaignRun run;
    run.scenario = scenarios[sc].name;
    run.file = scenarios[sc].source_path;
    run.seed = outcomes[i].seed;
    run.outcome = std::move(outcomes[i]);
    if (!run.outcome.ok) {
      ++result.failures;
      // Bundles are written serially here, after the parallel phase: the
      // layout on disk never depends on worker scheduling. Each failed
      // (scenario, seed) is re-run with a trace recorder attached — the
      // replay is deterministic, so trace.json shows the exact spans of the
      // violating run at the cost of one serial re-execution per failure.
      if (!opts.bundle_dir.empty()) {
        std::string trace_json;
        run_scenario(scenarios[sc], run.seed, &trace_json);
        run.bundle_path = write_triage_bundle(opts.bundle_dir, scenarios[sc],
                                              run.outcome, trace_json);
      }
    }
    // The history kept for the bundle can be large; drop it once triaged.
    run.outcome.register_out.reset();
    result.runs.push_back(std::move(run));
  }
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

void write_campaign_json(std::ostream& os, const CampaignResult& result) {
  os << "{\n";
  os << "  \"options\": {\"seeds_per_scenario\": "
     << result.options.seeds_per_scenario
     << ", \"base_seed\": " << result.options.base_seed
     << ", \"scenarios\": " << result.options.scenario_files.size()
     << ", \"bundle_dir\": \"" << json_escape(result.options.bundle_dir)
     << "\"},\n";
  os << "  \"failures\": " << result.failures
     << ", \"runs_total\": " << result.runs.size()
     << ", \"threads_used\": " << result.threads_used
     << ", \"wall_seconds\": " << result.wall_seconds << ",\n";
  os << "  \"runs\": [\n";
  for (size_t i = 0; i < result.runs.size(); ++i) {
    const CampaignRun& r = result.runs[i];
    const ScenarioOutcome& o = r.outcome;
    os << "    {\"scenario\": \"" << json_escape(r.scenario)
       << "\", \"file\": \"" << json_escape(r.file)
       << "\", \"seed\": " << r.seed
       << ", \"ok\": " << (o.ok ? "true" : "false")
       << ", \"stop_reason\": \"" << json_escape(o.stop_reason)
       << "\", \"fingerprint\": \"" << std::hex << o.fingerprint << std::dec
       << "\", \"steps\": " << o.steps
       << ", \"partition_events\": " << o.partition_events
       << ", \"heal_events\": " << o.heal_events
       << ", \"rmws_dropped\": " << o.rmws_dropped
       << ", \"rmws_delayed\": " << o.rmws_delayed
       << ", \"degraded_steps\": " << o.degraded_steps
       << ", \"violations\": [";
    for (size_t j = 0; j < o.violations.size(); ++j) {
      os << (j ? ", " : "") << "\"" << json_escape(o.violations[j]) << "\"";
    }
    os << "], \"bundle\": \"" << json_escape(r.bundle_path) << "\"}"
       << (i + 1 < result.runs.size() ? "," : "") << "\n";
  }
  os << "  ]\n";
  os << "}\n";
}

}  // namespace sbrs::harness
