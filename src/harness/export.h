// Result export: CSV writers for storage time series and sweep results, and
// the JSON writer for SweepRunner results, so the bench tables can be
// re-plotted (gnuplot/matplotlib) without rerunning.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "harness/sweep.h"
#include "metrics/latency_histogram.h"
#include "metrics/storage_meter.h"

namespace sbrs::harness {

/// Write a storage time series as CSV: time,total_bits,object_bits,
/// channel_bits. Returns the number of rows written.
size_t write_series_csv(std::ostream& os,
                        const std::vector<metrics::StorageSample>& series);

/// A generic sweep row: x value plus named measurements.
struct SweepRow {
  double x = 0;
  std::vector<double> ys;
};

/// Write sweep results as CSV with the given header names (x first).
size_t write_sweep_csv(std::ostream& os, const std::string& x_name,
                       const std::vector<std::string>& y_names,
                       const std::vector<SweepRow>& rows);

/// Downsample a series to at most `max_points` evenly spaced samples
/// (keeping the first and last) for compact plotting.
std::vector<metrics::StorageSample> downsample(
    const std::vector<metrics::StorageSample>& series, size_t max_points);

/// Write a SweepResult as pretty-printed JSON: sweep options, then one
/// object per cell with its config, workload, metric summaries
/// (min/max/mean/p50/p90/p99), consistency counters, fingerprint, and
/// timing. Timing fields are machine-dependent; everything else is
/// deterministic for a given grid and base seed.
void write_sweep_json(std::ostream& os, const SweepResult& result);

/// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string json_escape(const std::string& s);

/// Write a latency histogram summary as one JSON object:
/// {"count", "mean", "min", "p50", "p90", "p99", "p999", "max"}.
/// Values are in the histogram's unit (h.unit(): simulator steps or
/// wall-clock nanoseconds); callers embed the unit in the surrounding key
/// (metrics::unit_suffix). Step-valued summaries are deterministic for a
/// given run.
void write_latency_json(std::ostream& os,
                        const metrics::LatencyHistogram& h);

}  // namespace sbrs::harness
