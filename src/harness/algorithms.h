// Construction of register algorithms by name — the single mapping shared
// by the sweep engine, the CLI, and the benches, so a grid cell can be
// described as data ({name, RegisterConfig}) and instantiated fresh inside
// any worker thread.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "registers/register_algorithm.h"

namespace sbrs::harness {

/// Instantiate a register algorithm by short name:
///   adaptive      the paper's Section 5 algorithm
///   no-replica    adaptive with the replica path ablated (Corollary 2)
///   abd           replication baseline (forces k = 1, n = 2f + 1)
///   abd-wb        ABD with reader write-back (atomic)
///   coded         pure erasure-coded baseline
///   coded-atomic  coded with reader write-back
///   safe          the Appendix E wait-free safe register
/// Throws CheckFailure on an unknown name or invalid config.
std::unique_ptr<registers::RegisterAlgorithm> make_algorithm(
    const std::string& name, const registers::RegisterConfig& cfg);

/// All names make_algorithm accepts, in display order.
const std::vector<std::string>& algorithm_names();

/// The consistency level an algorithm is *supposed* to provide (the level
/// its own tests pin). Sweep aggregation judges each run against this, so
/// e.g. a safe register is not flagged for failing regularity it never
/// promised, and a coded baseline is not flagged for lacking the write
/// ordering only the strongly regular algorithms guarantee.
enum class ConsistencyGuarantee {
  kStronglySafe,   // safe
  kWeakRegular,    // coded, coded-atomic, no-replica
  kStrongRegular,  // abd, abd-wb, adaptive
};

ConsistencyGuarantee expected_consistency(const std::string& name);

}  // namespace sbrs::harness
