#include "harness/export.h"

#include "common/check.h"

namespace sbrs::harness {

size_t write_series_csv(std::ostream& os,
                        const std::vector<metrics::StorageSample>& series) {
  os << "time,total_bits,object_bits,channel_bits\n";
  for (const auto& s : series) {
    os << s.time << "," << s.total_bits << "," << s.object_bits << ","
       << s.channel_bits << "\n";
  }
  return series.size();
}

size_t write_sweep_csv(std::ostream& os, const std::string& x_name,
                       const std::vector<std::string>& y_names,
                       const std::vector<SweepRow>& rows) {
  os << x_name;
  for (const auto& name : y_names) os << "," << name;
  os << "\n";
  for (const auto& row : rows) {
    SBRS_CHECK_MSG(row.ys.size() == y_names.size(),
                   "sweep row arity mismatch");
    os << row.x;
    for (double y : row.ys) os << "," << y;
    os << "\n";
  }
  return rows.size();
}

std::vector<metrics::StorageSample> downsample(
    const std::vector<metrics::StorageSample>& series, size_t max_points) {
  if (series.size() <= max_points || max_points < 2) return series;
  std::vector<metrics::StorageSample> out;
  out.reserve(max_points);
  const double step =
      static_cast<double>(series.size() - 1) / (max_points - 1);
  for (size_t i = 0; i < max_points; ++i) {
    out.push_back(series[static_cast<size_t>(i * step)]);
  }
  out.back() = series.back();
  return out;
}

}  // namespace sbrs::harness
