#include "harness/export.h"

#include <iomanip>
#include <sstream>

#include "common/check.h"

namespace sbrs::harness {

size_t write_series_csv(std::ostream& os,
                        const std::vector<metrics::StorageSample>& series) {
  os << "time,total_bits,object_bits,channel_bits\n";
  for (const auto& s : series) {
    os << s.time << "," << s.total_bits << "," << s.object_bits << ","
       << s.channel_bits << "\n";
  }
  return series.size();
}

size_t write_sweep_csv(std::ostream& os, const std::string& x_name,
                       const std::vector<std::string>& y_names,
                       const std::vector<SweepRow>& rows) {
  os << x_name;
  for (const auto& name : y_names) os << "," << name;
  os << "\n";
  for (const auto& row : rows) {
    SBRS_CHECK_MSG(row.ys.size() == y_names.size(),
                   "sweep row arity mismatch");
    os << row.x;
    for (double y : row.ys) os << "," << y;
    os << "\n";
  }
  return rows.size();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::ostringstream esc;
          esc << "\\u" << std::hex << std::setw(4) << std::setfill('0')
              << static_cast<int>(c);
          out += esc.str();
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void write_metric(std::ostream& os, const char* name,
                  const MetricSummary& m, const char* indent) {
  os << indent << "\"" << name << "\": {\"min\": " << m.min
     << ", \"max\": " << m.max << ", \"mean\": " << m.mean
     << ", \"p50\": " << m.p50 << ", \"p90\": " << m.p90
     << ", \"p99\": " << m.p99 << "}";
}

}  // namespace

void write_latency_json(std::ostream& os,
                        const metrics::LatencyHistogram& h) {
  os << "{\"count\": " << h.count() << ", \"mean\": " << h.mean()
     << ", \"min\": " << h.min() << ", \"p50\": " << h.p50()
     << ", \"p90\": " << h.p90() << ", \"p99\": " << h.p99()
     << ", \"p999\": " << h.p999() << ", \"max\": " << h.max() << "}";
}

void write_sweep_json(std::ostream& os, const SweepResult& result) {
  // max_digits10: doubles (metric means, timings) round-trip exactly, so
  // diffs of committed sweep artifacts only ever show real drift.
  const auto saved_precision = os.precision(17);
  os << "{\n";
  os << "  \"options\": {\"threads\": " << result.options.threads
     << ", \"threads_used\": " << result.threads_used
     << ", \"seeds_per_cell\": " << result.options.seeds_per_cell
     << ", \"base_seed\": " << result.options.base_seed
     << ", \"check_consistency\": "
     << (result.options.check_consistency ? "true" : "false") << "},\n";
  os << "  \"wall_seconds\": " << result.wall_seconds << ",\n";
  os << "  \"fingerprint\": \"" << std::hex << result.fingerprint()
     << std::dec << "\",\n";
  os << "  \"cells\": [\n";
  for (size_t i = 0; i < result.cells.size(); ++i) {
    const CellSummary& c = result.cells[i];
    const std::string label =
        c.cell.label.empty() ? c.cell.algorithm : c.cell.label;
    os << "    {\n";
    os << "      \"label\": \"" << json_escape(label) << "\",\n";
    os << "      \"algorithm\": \"" << json_escape(c.cell.algorithm)
       << "\",\n";
    os << "      \"config\": {\"n\": " << c.cell.config.n
       << ", \"k\": " << c.cell.config.k << ", \"f\": " << c.cell.config.f
       << ", \"data_bits\": " << c.cell.config.data_bits << "},\n";
    os << "      \"workload\": {\"writers\": " << c.cell.opts.writers
       << ", \"writes_per_client\": " << c.cell.opts.writes_per_client
       << ", \"readers\": " << c.cell.opts.readers
       << ", \"reads_per_client\": " << c.cell.opts.reads_per_client
       << ", \"scheduler\": \"" << to_string(c.cell.opts.scheduler)
       << "\", \"object_crashes\": " << c.cell.opts.object_crashes
       << ", \"client_crashes\": " << c.cell.opts.client_crashes
       << ", \"restart_after\": " << c.cell.opts.restart_after
       << ", \"restart_permyriad\": " << c.cell.opts.restart_permyriad
       << ", \"restart_mode\": \"" << sim::to_string(c.cell.opts.restart_mode)
       << "\", \"partitions\": " << c.cell.opts.partitions
       << ", \"heal_after\": " << c.cell.opts.heal_after
       << ", \"repair_every\": " << c.cell.opts.repair_every
       << ", \"read_repair\": "
       << (c.cell.opts.read_repair ? "true" : "false")
       << ", \"arrival\": \"" << sim::to_string(c.cell.opts.arrival.process)
       << "\", \"rate\": " << c.cell.opts.arrival.rate
       << ", \"burst_on\": " << c.cell.opts.arrival.burst_on
       << ", \"burst_off\": " << c.cell.opts.arrival.burst_off << "},\n";
    os << "      \"seeds\": " << c.seeds << ",\n";
    write_metric(os, "max_total_bits", c.max_total_bits, "      ");
    os << ",\n";
    write_metric(os, "max_object_bits", c.max_object_bits, "      ");
    os << ",\n";
    write_metric(os, "max_channel_bits", c.max_channel_bits, "      ");
    os << ",\n";
    write_metric(os, "steps", c.steps, "      ");
    os << ",\n";
    os << "      \"latency_" << metrics::unit_suffix(c.latency.unit())
       << "\": ";
    write_latency_json(os, c.latency);
    os << ",\n";
    os << "      \"sojourn_" << metrics::unit_suffix(c.sojourn.unit())
       << "\": ";
    write_latency_json(os, c.sojourn);
    os << ",\n";
    write_metric(os, "max_queue_depth", c.max_queue_depth, "      ");
    os << ",\n";
    os << "      \"saturated_seeds\": " << c.saturated_seeds << ",\n";
    os << "      \"object_crash_events\": " << c.object_crash_events
       << ", \"object_restarts\": " << c.object_restarts << ",\n";
    write_metric(os, "repair_bits", c.repair_bits, "      ");
    os << ",\n";
    os << "      \"repair_pushes\": " << c.repair_pushes
       << ", \"open_repair_windows\": " << c.open_repair_windows
       << ", \"repair_window_steps\": " << c.repair_window_steps << ",\n";
    write_metric(os, "degraded_steps", c.degraded_steps, "      ");
    os << ",\n";
    os << "      \"degraded_sojourn_"
       << metrics::unit_suffix(c.degraded_sojourn.unit()) << "\": ";
    write_latency_json(os, c.degraded_sojourn);
    os << ",\n";
    os << "      \"consistency_failures\": " << c.consistency_failures
       << ",\n";
    os << "      \"liveness_failures\": " << c.liveness_failures << ",\n";
    os << "      \"quiesced\": " << c.quiesced << ",\n";
    os << "      \"partition_events\": " << c.partition_events
       << ", \"heal_events\": " << c.heal_events
       << ", \"rmws_dropped\": " << c.rmws_dropped
       << ", \"rmws_delayed\": " << c.rmws_delayed << ",\n";
    os << "      \"stop_reasons\": {";
    {
      size_t j = 0;
      for (const auto& [reason, count] : c.stop_reasons) {
        os << (j++ ? ", " : "") << "\"" << json_escape(reason)
           << "\": " << count;
      }
    }
    os << "},\n";
    os << "      \"fingerprint\": \"" << std::hex << c.fingerprint
       << std::dec << "\",\n";
    os << "      \"total_steps\": " << c.total_steps << ",\n";
    os << "      \"wall_seconds\": " << c.wall_seconds << ",\n";
    os << "      \"steps_per_sec\": " << c.steps_per_sec << "\n";
    os << "    }" << (i + 1 < result.cells.size() ? "," : "") << "\n";
  }
  os << "  ]\n";
  os << "}\n";
  os.precision(saved_precision);
}

std::vector<metrics::StorageSample> downsample(
    const std::vector<metrics::StorageSample>& series, size_t max_points) {
  if (series.size() <= max_points || max_points < 2) return series;
  std::vector<metrics::StorageSample> out;
  out.reserve(max_points);
  const double step =
      static_cast<double>(series.size() - 1) / (max_points - 1);
  for (size_t i = 0; i < max_points; ++i) {
    out.push_back(series[static_cast<size_t>(i * step)]);
  }
  out.back() = series.back();
  return out;
}

}  // namespace sbrs::harness
