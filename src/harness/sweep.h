// SweepRunner: the parallel experiment-sweep engine.
//
// A sweep is a grid of cells, each naming a register algorithm, its
// RegisterConfig, and the workload/scheduler RunOptions to drive it with.
// Every cell is executed for `seeds_per_cell` seeds on a thread pool; each
// (cell, seed-index) pair derives its schedule seed purely from
// {base_seed, cell index, seed index}, so the per-cell outcomes — storage
// maxima, step counts, consistency verdicts, history fingerprints — are
// byte-identical no matter how many worker threads execute the grid or in
// which order the pool happens to schedule them. Only the timing fields
// (wall_seconds, steps_per_sec) depend on the machine.
//
// Algorithms are instantiated *inside* the worker (via make_algorithm), so
// cells share no mutable state; the consistency checker likewise runs
// per-cell on the worker thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "harness/runner.h"
#include "metrics/latency_histogram.h"
#include "registers/register_algorithm.h"

namespace sbrs::harness {

/// One grid cell. `opts.seed` is ignored — the engine derives the seed of
/// every run from {SweepOptions::base_seed, cell index, seed index}.
struct SweepCell {
  std::string algorithm = "adaptive";
  registers::RegisterConfig config;
  RunOptions opts;
  /// Optional display label (defaults to the algorithm name in exports).
  std::string label;
};

/// Order statistics over the per-seed values of one metric. Percentiles use
/// the nearest-rank method on the sorted values.
struct MetricSummary {
  uint64_t min = 0;
  uint64_t max = 0;
  uint64_t p50 = 0;
  uint64_t p90 = 0;
  uint64_t p99 = 0;
  double mean = 0;
};

MetricSummary summarize_metric(std::vector<uint64_t> values);

struct CellSummary {
  SweepCell cell;
  uint32_t seeds = 0;

  // Deterministic aggregates (independent of thread count / schedule).
  MetricSummary max_total_bits;
  MetricSummary max_object_bits;
  MetricSummary max_channel_bits;
  MetricSummary steps;
  /// Seeds whose history failed the algorithm's *own* consistency guarantee
  /// (harness::expected_consistency): strongly-safe for `safe`, weak
  /// regularity for the coded baselines, strong regularity for abd/adaptive;
  /// values-legality always. 0 when check_consistency is off.
  uint32_t consistency_failures = 0;
  /// Seeds with a stuck live client. Saturated open-loop seeds are
  /// excused: their outstanding ops are the step budget cutting off a
  /// queue, not a wedged protocol (they show up in saturated_seeds).
  uint32_t liveness_failures = 0;
  uint32_t quiesced = 0;              // seeds whose run fully quiesced
  /// Operation latency (simulator steps, invoke to return) merged across
  /// all the cell's seeds. Deterministic — logical time, not wall clock.
  metrics::LatencyHistogram latency;
  /// Sojourn time (arrival to return) merged across the cell's seeds;
  /// equals `latency` for closed-loop cells, and dominates it past
  /// saturation for open-loop cells.
  metrics::LatencyHistogram sojourn;
  /// Per-seed maxima of the open-loop arrival queue depth (all-zero for
  /// closed-loop cells).
  MetricSummary max_queue_depth;
  /// Seeds whose offered load beat the drain rate (arrivals left queued or
  /// the step budget cut the run off). 0 for closed-loop cells.
  uint32_t saturated_seeds = 0;

  // --- Crash-recovery outcome (all zero/empty for crash-free cells) ---

  /// Base-object crash / restart events summed over the cell's seeds.
  uint64_t object_crash_events = 0;
  uint64_t object_restarts = 0;
  /// Per-seed repair traffic (RunReport::repair_bits) and degraded-window
  /// length (RunReport::degraded_steps) order statistics.
  MetricSummary repair_bits;
  MetricSummary degraded_steps;
  /// Active-repair pushes (read-repair + anti-entropy) summed over seeds,
  /// and repair windows still open at run end — the repair-bandwidth vs
  /// degraded-window tradeoff curve reads {repair_bits, degraded_steps,
  /// sojourn} across cells that differ only in RunOptions::repair_every.
  uint64_t repair_pushes = 0;
  uint64_t open_repair_windows = 0;
  /// Steps with >= 1 repair window open, summed over seeds — the window
  /// length the pump rate buys down (degraded_steps only counts crashed
  /// time, which repair rate cannot change).
  uint64_t repair_window_steps = 0;
  /// Sojourn time of operations that returned while >= 1 object was down,
  /// merged across seeds — the degraded-window tail next to `sojourn`.
  metrics::LatencyHistogram degraded_sojourn;

  // --- Link-fault outcome (all zero for fault-free cells) ---

  /// RunReport link-fault counters summed over the cell's seeds.
  uint64_t partition_events = 0;
  uint64_t heal_events = 0;
  uint64_t rmws_dropped = 0;
  uint64_t rmws_delayed = 0;

  /// Why each seed's run ended (RunReport::stop_reason -> seed count):
  /// the common/stop_reason.h constants (kStopQuiesced, kStopStepLimit,
  /// kStopStalled) or a scheduler's own reason. Campaign summaries key off
  /// this to say how a cell died.
  std::map<std::string, uint32_t> stop_reasons;
  /// Order-independent fingerprint over all per-seed outcomes (histories
  /// included); equal fingerprints mean identical per-cell results.
  uint64_t fingerprint = 0;

  // Timing (machine-dependent; excluded from determinism comparisons).
  uint64_t total_steps = 0;
  double wall_seconds = 0;    // sum of per-seed run times in this cell
  double steps_per_sec = 0;   // total_steps / wall_seconds
};

struct SweepOptions {
  /// Worker threads; 0 means std::thread::hardware_concurrency().
  uint32_t threads = 0;
  uint32_t seeds_per_cell = 1;
  /// Mixed (splitmix64) with cell and seed indices to seed each run.
  uint64_t base_seed = 1;
  /// Forwarded into each cell's RunOptions.check_consistency.
  bool check_consistency = true;
  /// Heartbeat called (under an internal mutex, from worker threads) after
  /// every completed (cell, seed) run: (runs done, runs total, failures so
  /// far — consistency or non-saturated liveness). Powers sbrs_cli
  /// --progress; leave unset for silence.
  std::function<void(size_t done, size_t total, size_t failures)> progress;
};

struct SweepResult {
  SweepOptions options;
  uint32_t threads_used = 1;
  std::vector<CellSummary> cells;  // same order as the input grid
  double wall_seconds = 0;         // whole-sweep wall clock

  /// Combined fingerprint of all cells (order-sensitive across cells).
  uint64_t fingerprint() const;
};

/// The schedule seed of run (cell_index, seed_index): a splitmix64 mix of
/// the base seed and both indices. Stable across releases of this engine —
/// recorded seeds in exported JSON can be replayed individually.
uint64_t cell_seed(uint64_t base_seed, size_t cell_index, uint32_t seed_index);

/// Deterministic order-independent fingerprint of one run outcome (storage
/// maxima, report counters, check verdicts, and the full history trace).
uint64_t outcome_fingerprint(const RunOutcome& out);

/// Seed of every fingerprint hash chain in the sweep and store engines
/// (kept verbatim from the original sweep implementation so committed
/// artifacts with recorded fingerprints stay comparable).
inline constexpr uint64_t kFingerprintSeed = 1469598103934665603ull;

/// FNV-style mix of a full history trace into hash state `h` — the single
/// definition of "these two histories are identical" shared by the sweep
/// engine's outcome_fingerprint and the store's per-shard fingerprints, so
/// the two cannot silently diverge when HistoryEvent grows a field.
uint64_t history_fingerprint(const sim::History& history, uint64_t h);

/// Mix a run's crash-recovery outcome (crash/restart counts, repair_bits,
/// degraded-window length and sojourn tail) into hash state `h`. Mixed
/// only when the run actually saw a crash or restart, so recovery-free
/// runs keep the fingerprints recorded in committed artifacts. Shared by
/// outcome_fingerprint and the store's per-shard fingerprints — one
/// definition of "same recovery outcome" for both engines.
uint64_t recovery_fingerprint(const sim::RunReport& report, uint64_t h);

/// Mix a run's link-fault outcome (partition/heal transitions, dropped and
/// delayed RMW counts) into hash state `h`. Mixed only when the run saw a
/// link fault, so fault-free runs keep the fingerprints recorded in
/// committed artifacts — the same conditional pattern as
/// recovery_fingerprint, shared by both engines for the same reason.
uint64_t link_fault_fingerprint(const sim::RunReport& report, uint64_t h);

class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions opts = {}) : opts_(opts) {}

  /// Execute the grid; cells[i] of the result corresponds to grid[i].
  SweepResult run(const std::vector<SweepCell>& grid) const;

 private:
  SweepOptions opts_;
};

/// Deterministic parallel map: evaluates fn(i) for i in [0, n) on up to
/// `threads` workers and returns the results in index order. Work items are
/// handed out dynamically but land at their own index, so the result vector
/// is schedule-independent as long as fn is. The first exception thrown by
/// any worker is rethrown on the caller after all workers join. Used by
/// SweepRunner internally and directly by benches whose per-cell experiment
/// is not a plain register run (e.g. the lower-bound adversary).
template <typename Fn>
auto parallel_map(size_t n, uint32_t threads, Fn&& fn)
    -> std::vector<decltype(fn(size_t{0}))> {
  using R = decltype(fn(size_t{0}));
  std::vector<R> results(n);
  if (threads == 0) threads = std::thread::hardware_concurrency();
  if (threads <= 1 || n <= 1) {
    for (size_t i = 0; i < n; ++i) results[i] = fn(i);
    return results;
  }
  std::atomic<size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex error_mu;
  auto worker = [&] {
    for (;;) {
      const size_t i = next.fetch_add(1);
      if (i >= n || failed.load(std::memory_order_relaxed)) return;
      try {
        results[i] = fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!error) error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };
  std::vector<std::thread> pool;
  const size_t workers = std::min<size_t>(threads, n);
  pool.reserve(workers);
  for (size_t t = 0; t < workers; ++t) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  if (error) std::rethrow_exception(error);
  return results;
}

}  // namespace sbrs::harness
