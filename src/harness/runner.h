// The experiment harness: one-call execution of a register algorithm under
// a configurable workload and scheduler, with storage metering and
// consistency checking. Used by the integration tests, the property tests,
// the benchmarks, and the examples.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include <optional>
#include <vector>

#include "consistency/checker.h"
#include "registers/register_algorithm.h"
#include "sim/arrival.h"
#include "sim/history.h"
#include "sim/linkfault.h"
#include "sim/simulator.h"

namespace sbrs::harness {

enum class SchedKind {
  kRandom,      // seeded uniform choices; fair with probability 1
  kRoundRobin,  // deterministic FIFO delivery, interleaved invocations
  kBurst,       // all invocations first (maximum write concurrency)
};

inline const char* to_string(SchedKind k) {
  switch (k) {
    case SchedKind::kRandom: return "random";
    case SchedKind::kRoundRobin: return "rr";
    case SchedKind::kBurst: return "burst";
  }
  return "?";
}

/// Which execution backend mounts the protocol (docs/runtime_backend.md).
enum class Backend {
  kSim,      // deterministic logical-step simulator (default)
  kThreads,  // real threads / channels / clocks (runtime/backend.h)
};

inline const char* to_string(Backend b) {
  return b == Backend::kSim ? "sim" : "threads";
}

/// Parse "sim" / "threads"; throws CheckFailure on anything else.
Backend parse_backend(const std::string& s);

struct RunOptions {
  uint32_t writers = 1;
  uint32_t writes_per_client = 1;
  uint32_t readers = 0;
  uint32_t reads_per_client = 1;
  uint64_t seed = 1;
  SchedKind scheduler = SchedKind::kRandom;
  /// Open-loop arrival process: when set (process != kClosedLoop), the
  /// writers*writes + readers*reads operations become one arrival-scheduled
  /// stream (kinds interleaved proportionally) dispatched to any free
  /// session — sojourn time then includes queueing delay, and the outcome
  /// carries queue-depth maxima and a saturation verdict. The Poisson
  /// process draws from a PRNG seeded from `seed` (decorrelated from the
  /// scheduler stream), so runs stay exactly replayable.
  sim::ArrivalOptions arrival;
  /// Crash up to this many base objects at random points (must be <= f for
  /// the liveness guarantees to hold).
  uint32_t object_crashes = 0;
  /// Crash up to this many writer/reader clients at random points.
  uint32_t client_crashes = 0;
  /// Crash recovery (random scheduler only, like the crash injection):
  /// restart each crashed object this many steps after its crash (0 =
  /// never), re-joining in `restart_mode`. Restart events are bounded by
  /// object_crashes — every crash gets at most one restart.
  uint64_t restart_after = 0;
  /// Additionally restart a random crashed object with this per-step
  /// probability (out of 10'000).
  uint32_t restart_permyriad = 0;
  /// kFromDisk re-joins with the state frozen at crash time (guarantees
  /// hold); kFromScratch mounts an empty replacement (models data loss —
  /// per-key guarantees may fail until repair traffic re-converges it).
  sim::RestartMode restart_mode = sim::RestartMode::kFromDisk;
  /// Anti-entropy pump (random scheduler only): push the newest decodable
  /// block back to each repairing object every `repair_every` steps
  /// (registers/repair.h), closing repair windows without foreground
  /// writes. 0 = passive recovery only.
  uint64_t repair_every = 0;
  /// Read-repair: completed reads trigger one repair push per object whose
  /// repair window is open (any scheduler).
  bool read_repair = false;
  /// Bound on the bits of repair-push traffic triggered per run.
  uint64_t repair_budget = UINT64_MAX;
  /// Link partitions (random scheduler only): inject up to this many
  /// partition events at random points — symmetric (whole object) or
  /// asymmetric (a strict client subset), see RandomScheduler::Options.
  uint32_t partitions = 0;
  /// Auto-heal delay of each injected partition, in steps. Partitions held
  /// past every quorum's patience stall the run (reported, not an error).
  uint64_t heal_after = 512;
  /// Probabilistic message faults (drops, delay/jitter, reorder windows),
  /// applied at trigger time. The `seed` field is overwritten with
  /// sim::fault_seed(seed) — the stream is always decorrelated from the
  /// schedule. Random scheduler only, like the crash knobs.
  sim::LinkFaultOptions link_faults;
  /// Scripted fault timeline (crash/restart/partition/heal at absolute
  /// steps): wraps the scheduler in a ScriptedFaultScheduler. This is the
  /// execution path of the declarative scenario files.
  std::vector<sim::FaultEvent> fault_timeline;
  /// Override SimConfig::verify_accounting (unset = build-type default:
  /// on in Debug, off in Release).
  std::optional<bool> verify_accounting;
  uint64_t max_steps = 2'000'000;
  /// Storage series decimation (1 = sample every event), forwarded verbatim
  /// to SimConfig::sample_every. Decimation thins only the plotted series —
  /// the storage maxima reported in RunOutcome are exact regardless. The
  /// default is the same kDefaultSampleEvery constant SimConfig uses.
  uint64_t sample_every = metrics::kDefaultSampleEvery;
  /// Run the consistency-checker hierarchy on the resulting history. Off,
  /// the CheckResults in RunOutcome stay at their ok defaults — used by
  /// perf sweeps that only need the storage metrics.
  bool check_consistency = true;
  /// Structured trace sink (borrowed, must outlive the run; nullptr = no
  /// tracing). Forwarded verbatim to SimConfig::trace — the disabled path
  /// is a single pointer test per emission site, so untraced runs are
  /// byte-identical to pre-trace builds.
  obs::TraceSink* trace = nullptr;
  /// Execution backend. kThreads mounts the same protocol on the threaded
  /// runtime (closed-loop fault-free workloads only — see
  /// validate_backend_options); latency histograms then carry wall-clock
  /// nanoseconds instead of logical steps, and RunReport::steps counts
  /// recorded history events rather than scheduler steps.
  Backend backend = Backend::kSim;
};

struct RunOutcome {
  std::string algorithm;
  sim::RunReport report;
  sim::History history;

  uint64_t max_total_bits = 0;
  uint64_t max_object_bits = 0;
  uint64_t max_channel_bits = 0;
  uint64_t final_object_bits = 0;
  uint64_t final_total_bits = 0;

  consistency::CheckResult values_legal;
  consistency::CheckResult weak_regular;
  consistency::CheckResult strong_regular;
  consistency::CheckResult strongly_safe;

  /// All operations by non-crashed clients returned.
  bool live = false;

  // Open-loop queueing outcome (zero / false for closed-loop runs; the
  // sojourn histogram itself travels in report.sojourn_latency).
  uint64_t max_queue_depth = 0;
  uint64_t undispatched = 0;
  bool saturated = false;

  /// Which backend produced this outcome, and (threads backend) how long
  /// the run took on the wall clock. 0.0 for simulator runs.
  Backend backend = Backend::kSim;
  double wall_seconds = 0.0;

  /// Per-kind latency split (threads backend only — empty for simulator
  /// runs, whose per-kind split lives in the store layer). Unit kNanos.
  metrics::LatencyHistogram read_latency;
  metrics::LatencyHistogram write_latency;
};

/// True when `opts` configures any link-level fault source (partition
/// injection, probabilistic drop/delay/reorder, or a timeline containing
/// partition/heal events).
bool has_link_faults(const RunOptions& opts);

/// Validate the fault-injection knobs without running: returns the empty
/// string when the spec is usable, else a human-readable reason. Link
/// faults and crash/restart injection need the random scheduler (the
/// deterministic schedulers are not fault-aware and would try to deliver
/// across cut links). Front-ends treat a nonempty reason as a usage error;
/// run_register_experiment enforces the same rule via SBRS_CHECK.
std::string validate_fault_options(const RunOptions& opts);

/// Validate the backend choice against the rest of the options: the
/// threaded backend runs closed-loop, fault-free workloads (no crash /
/// partition / link-fault / repair / timeline knobs, no open-loop arrival
/// process — those are simulator capabilities). Empty string = usable.
std::string validate_backend_options(const RunOptions& opts);

/// Run `algorithm` under the given workload/scheduler and check the
/// resulting history against the consistency hierarchy.
RunOutcome run_register_experiment(
    const registers::RegisterAlgorithm& algorithm, const RunOptions& opts);

}  // namespace sbrs::harness
