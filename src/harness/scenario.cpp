#include "harness/scenario.h"

#include <fstream>
#include <sstream>

#include "common/check.h"
#include "common/json.h"
#include "consistency/checker.h"
#include "harness/algorithms.h"
#include "harness/sweep.h"
#include "obs/export.h"
#include "obs/trace.h"

namespace sbrs::harness {

namespace {

/// Reject unknown members: a typo in a hand-written scenario must fail
/// loudly, not silently become a default.
void check_keys(const json::Value& obj,
                std::initializer_list<const char*> allowed,
                const char* context) {
  for (const auto& [key, value] : obj.as_object()) {
    bool known = false;
    for (const char* a : allowed) {
      if (key == a) {
        known = true;
        break;
      }
    }
    SBRS_CHECK_MSG(known, "scenario: unknown member \"" << key << "\" in "
                                                        << context);
  }
}

sim::RestartMode parse_restart_mode(const std::string& s) {
  if (s == "disk") return sim::RestartMode::kFromDisk;
  if (s == "scratch") return sim::RestartMode::kFromScratch;
  SBRS_CHECK_MSG(false, "scenario: restart mode wants disk|scratch, got \""
                            << s << "\"");
  return sim::RestartMode::kFromDisk;
}

SchedKind parse_sched(const std::string& s) {
  if (s == "random") return SchedKind::kRandom;
  if (s == "rr") return SchedKind::kRoundRobin;
  if (s == "burst") return SchedKind::kBurst;
  SBRS_CHECK_MSG(false, "scenario: scheduler wants random|rr|burst, got \""
                            << s << "\"");
  return SchedKind::kRandom;
}

sim::FaultEvent::Kind parse_event_kind(const std::string& s) {
  using K = sim::FaultEvent::Kind;
  if (s == "crash_object") return K::kCrashObject;
  if (s == "restart_object") return K::kRestartObject;
  if (s == "crash_client") return K::kCrashClient;
  if (s == "partition_link") return K::kPartitionLink;
  if (s == "partition_object") return K::kPartitionObject;
  if (s == "heal_link") return K::kHealLink;
  if (s == "heal_object") return K::kHealObject;
  if (s == "heal_all") return K::kHealAll;
  SBRS_CHECK_MSG(false, "scenario: unknown timeline event kind \"" << s
                                                                   << "\"");
  return K::kCrashObject;
}

sim::FaultWindow parse_window(const json::Value& v) {
  check_keys(v, {"kind", "from", "until", "object", "permyriad", "delay",
                 "jitter", "max_events"},
             "faults.windows[]");
  sim::FaultWindow w;
  const std::string kind = v.get_string("kind", "drop");
  if (kind == "drop") {
    w.kind = sim::FaultWindow::Kind::kDrop;
  } else if (kind == "delay") {
    w.kind = sim::FaultWindow::Kind::kDelay;
  } else if (kind == "reorder") {
    w.kind = sim::FaultWindow::Kind::kReorder;
  } else {
    SBRS_CHECK_MSG(false, "scenario: window kind wants drop|delay|reorder, "
                          "got \""
                              << kind << "\"");
  }
  w.from = v.get_u64("from", 0);
  w.until = v.get_u64("until", UINT64_MAX);
  w.object = static_cast<uint32_t>(v.get_u64("object", sim::kAllObjects));
  w.permyriad = static_cast<uint32_t>(v.get_u64("permyriad", 10'000));
  w.delay = v.get_u64("delay", 0);
  w.jitter = v.get_u64("jitter", 0);
  w.max_events = v.get_u64("max_events", UINT64_MAX);
  return w;
}

/// A timeline entry is either one absolute event ("at") or a rate-based
/// trigger ("from"/"every"/"count") expanded to `count` events spaced
/// `every` steps apart — deterministic, no RNG.
void parse_timeline_entry(const json::Value& v,
                          std::vector<sim::FaultEvent>* out) {
  check_keys(v, {"kind", "at", "from", "every", "count", "object", "client",
                 "heal_after", "mode"},
             "faults.timeline[]");
  sim::FaultEvent e;
  e.kind = parse_event_kind(v.get_string("kind", ""));
  e.object = static_cast<uint32_t>(v.get_u64("object", 0));
  e.client = static_cast<uint32_t>(v.get_u64("client", 0));
  e.heal_after = v.get_u64("heal_after", 0);
  e.mode = parse_restart_mode(v.get_string("mode", "disk"));

  if (v.find("at") != nullptr) {
    SBRS_CHECK_MSG(v.find("every") == nullptr && v.find("count") == nullptr,
                   "scenario: timeline entry mixes \"at\" with "
                   "\"every\"/\"count\"");
    e.at = v.get_u64("at", 0);
    out->push_back(e);
    return;
  }
  const uint64_t every = v.get_u64("every", 0);
  const uint64_t count = v.get_u64("count", 0);
  SBRS_CHECK_MSG(every > 0 && count > 0,
                 "scenario: rate-based timeline entry needs \"every\" > 0 "
                 "and \"count\" > 0 (or use \"at\")");
  SBRS_CHECK_MSG(count <= 100'000,
                 "scenario: timeline \"count\" too large (> 100000)");
  uint64_t at = v.get_u64("from", every);
  for (uint64_t i = 0; i < count; ++i, at += every) {
    e.at = at;
    out->push_back(e);
  }
}

/// The parsed fault block, mode-agnostic; the caller maps it onto
/// RunOptions or StoreOptions.
struct FaultSpec {
  uint32_t partitions = 0;
  uint64_t heal_after = 512;
  uint32_t crashes = 0;
  uint32_t client_crashes = 0;
  uint64_t restart_after = 0;
  uint32_t restart_permyriad = 0;
  sim::RestartMode restart_mode = sim::RestartMode::kFromDisk;
  sim::LinkFaultOptions link_faults;
  std::vector<sim::FaultEvent> timeline;
};

FaultSpec parse_faults(const json::Value& v) {
  check_keys(v,
             {"partitions", "heal_after", "crashes", "client_crashes",
              "restart_after", "restart_permyriad", "restart_mode",
              "drop_permyriad", "max_drops", "delay_permyriad", "delay_steps",
              "delay_jitter", "reorder_window", "windows", "timeline"},
             "faults");
  FaultSpec f;
  f.partitions = static_cast<uint32_t>(v.get_u64("partitions", 0));
  f.heal_after = v.get_u64("heal_after", 512);
  f.crashes = static_cast<uint32_t>(v.get_u64("crashes", 0));
  f.client_crashes = static_cast<uint32_t>(v.get_u64("client_crashes", 0));
  f.restart_after = v.get_u64("restart_after", 0);
  f.restart_permyriad =
      static_cast<uint32_t>(v.get_u64("restart_permyriad", 0));
  f.restart_mode = parse_restart_mode(v.get_string("restart_mode", "disk"));
  f.link_faults.drop_permyriad =
      static_cast<uint32_t>(v.get_u64("drop_permyriad", 0));
  f.link_faults.max_drops = v.get_u64("max_drops", UINT64_MAX);
  f.link_faults.delay_permyriad =
      static_cast<uint32_t>(v.get_u64("delay_permyriad", 0));
  f.link_faults.delay_steps = v.get_u64("delay_steps", 0);
  f.link_faults.delay_jitter = v.get_u64("delay_jitter", 0);
  f.link_faults.reorder_window = v.get_u64("reorder_window", 0);
  if (const json::Value* windows = v.find("windows")) {
    for (const auto& w : windows->as_array()) {
      f.link_faults.windows.push_back(parse_window(w));
    }
  }
  if (const json::Value* timeline = v.find("timeline")) {
    for (const auto& e : timeline->as_array()) {
      parse_timeline_entry(e, &f.timeline);
    }
  }
  return f;
}

/// The parsed `repair` block, mode-agnostic like FaultSpec.
struct RepairSpec {
  uint64_t every = 0;
  bool read_repair = false;
  uint64_t budget = UINT64_MAX;
};

RepairSpec parse_repair(const json::Value& v) {
  check_keys(v, {"every", "read_repair", "budget"}, "repair");
  RepairSpec r;
  r.every = v.get_u64("every", 0);
  r.read_repair = v.get_bool("read_repair", false);
  r.budget = v.get_u64("budget", UINT64_MAX);
  SBRS_CHECK_MSG(r.every > 0 || r.read_repair,
                 "scenario: repair block needs \"every\" > 0 (anti-entropy) "
                 "and/or \"read_repair\": true");
  return r;
}

ScenarioExpect parse_expect(const json::Value& v) {
  check_keys(v,
             {"consistency", "live", "max_total_bits", "quiesced",
              "repair_windows_closed"},
             "expect");
  ScenarioExpect e;
  e.consistency = v.get_string("consistency", "algorithm");
  SBRS_CHECK_MSG(e.consistency == "algorithm" ||
                     e.consistency == "strongly_safe" ||
                     e.consistency == "weak_regular" ||
                     e.consistency == "strong_regular" ||
                     e.consistency == "atomic" || e.consistency == "none",
                 "scenario: expect.consistency wants algorithm|strongly_safe|"
                 "weak_regular|strong_regular|atomic|none, got \""
                     << e.consistency << "\"");
  e.live = v.get_bool("live", true);
  if (const json::Value* b = v.find("max_total_bits")) {
    e.max_total_bits = b->as_u64();
  }
  if (const json::Value* q = v.find("quiesced")) {
    e.quiesced = q->as_bool();
  }
  if (const json::Value* w = v.find("repair_windows_closed")) {
    e.repair_windows_closed = w->as_bool();
  }
  return e;
}

sim::ArrivalOptions parse_arrival(const json::Value& v) {
  check_keys(v, {"process", "rate", "burst_on", "burst_off"}, "arrival");
  sim::ArrivalOptions a;
  a.process = sim::parse_arrival_process(v.get_string("process", "poisson"));
  a.rate = v.get_double("rate", a.rate);
  a.burst_on = v.get_u64("burst_on", a.burst_on);
  a.burst_off = v.get_u64("burst_off", a.burst_off);
  const std::string why = sim::validate_arrival(a);
  SBRS_CHECK_MSG(why.empty(), "scenario: " << why);
  return a;
}

std::optional<ConsistencyGuarantee> store_check_level(
    const std::string& consistency) {
  if (consistency == "strongly_safe") {
    return ConsistencyGuarantee::kStronglySafe;
  }
  if (consistency == "weak_regular") return ConsistencyGuarantee::kWeakRegular;
  if (consistency == "strong_regular") {
    return ConsistencyGuarantee::kStrongRegular;
  }
  return std::nullopt;  // "algorithm" (and "none" disables checking)
}

void append_violations(std::vector<std::string>* out, const char* what,
                       const consistency::CheckResult& res) {
  if (res.ok) return;
  for (const auto& v : res.violations) {
    if (out->size() >= 8) return;
    out->push_back(std::string(what) + ": " + v);
  }
  if (res.violations.empty()) out->push_back(std::string(what) + ": failed");
}

void judge_repair_windows(const Scenario& s, uint32_t open,
                          std::vector<std::string>* violations) {
  if (!s.expect.repair_windows_closed.has_value()) return;
  if (*s.expect.repair_windows_closed && open > 0) {
    violations->push_back("repair: " + std::to_string(open) +
                          " repair window(s) still open at run end");
  } else if (!*s.expect.repair_windows_closed && open == 0) {
    violations->push_back(
        "repair: expected >= 1 repair window to stay open, all closed");
  }
}

void judge_register_consistency(const Scenario& s, const RunOutcome& out,
                                ScenarioOutcome* r) {
  std::string level = s.expect.consistency;
  if (level == "none") return;
  if (level == "algorithm") {
    switch (expected_consistency(s.algorithm)) {
      case ConsistencyGuarantee::kStronglySafe:
        level = "strongly_safe";
        break;
      case ConsistencyGuarantee::kWeakRegular:
        level = "weak_regular";
        break;
      case ConsistencyGuarantee::kStrongRegular:
        level = "strong_regular";
        break;
    }
  }
  append_violations(&r->violations, "values-legal", out.values_legal);
  if (level == "strongly_safe") {
    append_violations(&r->violations, "strongly-safe", out.strongly_safe);
  } else if (level == "weak_regular") {
    append_violations(&r->violations, "weak-regularity", out.weak_regular);
  } else if (level == "strong_regular") {
    append_violations(&r->violations, "weak-regularity", out.weak_regular);
    append_violations(&r->violations, "strong-regularity", out.strong_regular);
  } else if (level == "atomic") {
    append_violations(&r->violations, "atomicity",
                      consistency::check_atomicity(out.history));
  }
}

/// Serialize `rec` into *trace_json with deterministic provenance labels.
/// Works on partial traces too: open spans clamp to the last recorded step.
void serialize_trace(const Scenario& s, uint64_t seed, obs::TraceRecorder* rec,
                     std::string* trace_json) {
  rec->annotate("scenario", s.name);
  rec->annotate("mode", s.mode);
  rec->annotate("seed", std::to_string(seed));
  std::ostringstream os;
  obs::write_trace_json(os, *rec);
  *trace_json = os.str();
}

void run_register_mode(const Scenario& s, uint64_t seed, ScenarioOutcome* r,
                       std::string* trace_json) {
  std::unique_ptr<registers::RegisterAlgorithm> algorithm =
      make_algorithm(s.algorithm, s.config);
  RunOptions opts = s.run;
  opts.seed = seed;
  obs::TraceRecorder recorder;
  if (trace_json != nullptr) opts.trace = &recorder;
  RunOutcome out;
  try {
    out = run_register_experiment(*algorithm, opts);
  } catch (...) {
    // An engine invariant fired mid-run: the partial trace is the most
    // valuable artifact of all — serialize it before the CheckFailure
    // propagates to run_scenario's violation handler.
    if (trace_json != nullptr) serialize_trace(s, seed, &recorder, trace_json);
    throw;
  }
  if (trace_json != nullptr) serialize_trace(s, seed, &recorder, trace_json);

  r->stop_reason = out.report.stop_reason;
  r->fingerprint = outcome_fingerprint(out);
  r->steps = out.report.steps;
  r->max_total_bits = out.max_total_bits;
  r->degraded_steps = out.report.degraded_steps;
  r->partition_events = out.report.partition_events;
  r->heal_events = out.report.heal_events;
  r->rmws_dropped = out.report.rmws_dropped;
  r->rmws_delayed = out.report.rmws_delayed;
  r->object_crash_events = out.report.object_crash_events;
  r->object_restarts = out.report.object_restarts;
  r->repair_pushes = out.report.repair_pushes;
  r->repair_bits = out.report.repair_bits;
  r->open_repair_windows = out.report.open_repair_windows;

  judge_register_consistency(s, out, r);
  judge_repair_windows(s, r->open_repair_windows, &r->violations);
  if (s.expect.live && !out.live && !out.saturated) {
    r->violations.push_back("liveness: a live client's operation never "
                            "returned (stop: " +
                            out.report.stop_reason + ")");
  }
  if (s.expect.quiesced.has_value() &&
      *s.expect.quiesced != out.report.quiesced) {
    r->violations.push_back(std::string("quiesced: expected ") +
                            (*s.expect.quiesced ? "true" : "false") +
                            ", run " + (out.report.quiesced ? "did" : "did not") +
                            " quiesce");
  }
  if (s.expect.max_total_bits.has_value() &&
      out.max_total_bits > *s.expect.max_total_bits) {
    r->violations.push_back(
        "storage: peak total bits " + std::to_string(out.max_total_bits) +
        " exceed expect.max_total_bits " +
        std::to_string(*s.expect.max_total_bits));
  }
  r->register_out = std::move(out);
}

void run_store_mode(const Scenario& s, uint64_t seed, ScenarioOutcome* r,
                    std::string* trace_json) {
  store::StoreOptions opts = s.store_opts;
  opts.seed = seed;
  opts.workload.seed = seed;
  opts.trace = trace_json != nullptr;
  if (s.expect.consistency == "none") {
    opts.check_consistency = false;
  } else {
    opts.check_level = store_check_level(s.expect.consistency);
  }
  store::Store engine(opts);
  store::StoreResult result;
  try {
    result = engine.run();
  } catch (...) {
    if (trace_json != nullptr) {
      std::ostringstream os;
      store::write_store_trace_json(os, engine);
      *trace_json = os.str();
    }
    throw;
  }
  if (trace_json != nullptr) {
    std::ostringstream os;
    store::write_store_trace_json(os, engine);
    *trace_json = os.str();
  }

  r->fingerprint = result.fingerprint();
  r->steps = result.total_steps;
  r->max_total_bits = result.peak_total_bits_sum;
  r->degraded_steps = result.degraded_steps;
  r->partition_events = result.partition_events;
  r->heal_events = result.heal_events;
  r->rmws_dropped = result.rmws_dropped;
  r->rmws_delayed = result.rmws_delayed;
  r->object_crash_events = result.object_crash_events;
  r->object_restarts = result.object_restarts;
  r->repair_pushes = result.repair_pushes;
  r->repair_bits = result.repair_bits;
  r->open_repair_windows = result.open_repair_windows;
  judge_repair_windows(s, r->open_repair_windows, &r->violations);
  for (const auto& shard : result.shards) {
    if (r->stop_reason.empty()) r->stop_reason = shard.report.stop_reason;
    for (const auto& v : shard.violations) {
      if (r->violations.size() >= 8) break;
      r->violations.push_back("shard " + std::to_string(shard.shard) + " " +
                              v);
    }
  }
  if (result.consistency_failures > 0 && r->violations.empty()) {
    r->violations.push_back(
        std::to_string(result.consistency_failures) +
        " keys failed their consistency guarantee");
  }
  if (s.expect.live && !result.all_live && !result.saturated) {
    r->violations.push_back(
        "liveness: a live session's operation never returned");
  }
  if (s.expect.quiesced.has_value() &&
      *s.expect.quiesced != result.all_quiesced) {
    r->violations.push_back(std::string("quiesced: expected ") +
                            (*s.expect.quiesced ? "true" : "false") +
                            ", store " +
                            (result.all_quiesced ? "did" : "did not") +
                            " quiesce");
  }
  if (s.expect.max_total_bits.has_value() &&
      result.peak_total_bits_sum > *s.expect.max_total_bits) {
    r->violations.push_back(
        "storage: sum of shard peaks " +
        std::to_string(result.peak_total_bits_sum) +
        " exceeds expect.max_total_bits " +
        std::to_string(*s.expect.max_total_bits));
  }
}

}  // namespace

Scenario parse_scenario(const std::string& text, const std::string& path) {
  const json::Value doc = json::parse(text);
  SBRS_CHECK_MSG(doc.is_object(), "scenario: document must be an object");
  check_keys(doc,
             {"name", "mode", "algorithm", "config", "workload", "arrival",
              "store", "scheduler", "seed", "max_steps", "verify_accounting",
              "faults", "repair", "expect"},
             "the top level");

  Scenario s;
  s.source_path = path;
  s.source_text = text;
  s.name = doc.get_string("name", path.empty() ? "scenario" : path);
  s.mode = doc.get_string("mode", "register");
  SBRS_CHECK_MSG(s.mode == "register" || s.mode == "store",
                 "scenario: mode wants register|store, got \"" << s.mode
                                                               << "\"");
  s.algorithm = doc.get_string("algorithm", "adaptive");

  if (const json::Value* cfg = doc.find("config")) {
    check_keys(*cfg, {"n", "k", "f", "data_bits"}, "config");
    s.config.f = static_cast<uint32_t>(cfg->get_u64("f", 2));
    s.config.k = static_cast<uint32_t>(cfg->get_u64("k", 4));
    s.config.n = static_cast<uint32_t>(
        cfg->get_u64("n", 2 * uint64_t{s.config.f} + s.config.k));
    s.config.data_bits = cfg->get_u64("data_bits", 256);
  } else {
    s.config.f = 2;
    s.config.k = 4;
    s.config.n = 8;
    s.config.data_bits = 256;
  }

  const uint64_t seed = doc.get_u64("seed", 1);
  const SchedKind sched = parse_sched(doc.get_string("scheduler", "random"));
  const uint64_t max_steps = doc.get_u64("max_steps", 2'000'000);

  FaultSpec faults;
  if (const json::Value* f = doc.find("faults")) faults = parse_faults(*f);
  RepairSpec repair;
  if (const json::Value* rp = doc.find("repair")) repair = parse_repair(*rp);
  if (const json::Value* e = doc.find("expect")) {
    s.expect = parse_expect(*e);
  }
  SBRS_CHECK_MSG(s.mode == "register" || s.expect.consistency != "atomic",
                 "scenario: expect.consistency \"atomic\" is register mode "
                 "only (the store checks per-key guarantees)");

  if (s.mode == "register") {
    SBRS_CHECK_MSG(doc.find("store") == nullptr,
                   "scenario: \"store\" block in register mode");
    RunOptions& r = s.run;
    if (const json::Value* w = doc.find("workload")) {
      check_keys(*w,
                 {"writers", "writes_per_client", "readers",
                  "reads_per_client"},
                 "workload");
      r.writers = static_cast<uint32_t>(w->get_u64("writers", 2));
      r.writes_per_client =
          static_cast<uint32_t>(w->get_u64("writes_per_client", 4));
      r.readers = static_cast<uint32_t>(w->get_u64("readers", 2));
      r.reads_per_client =
          static_cast<uint32_t>(w->get_u64("reads_per_client", 4));
    }
    if (const json::Value* a = doc.find("arrival")) {
      r.arrival = parse_arrival(*a);
    }
    r.seed = seed;
    r.scheduler = sched;
    r.max_steps = max_steps;
    r.partitions = faults.partitions;
    r.heal_after = faults.heal_after;
    r.object_crashes = faults.crashes;
    r.client_crashes = faults.client_crashes;
    r.restart_after = faults.restart_after;
    r.restart_permyriad = faults.restart_permyriad;
    r.restart_mode = faults.restart_mode;
    r.link_faults = faults.link_faults;
    r.fault_timeline = std::move(faults.timeline);
    r.repair_every = repair.every;
    r.read_repair = repair.read_repair;
    r.repair_budget = repair.budget;
    if (const json::Value* va = doc.find("verify_accounting")) {
      r.verify_accounting = va->as_bool();
    }
    const std::string why = validate_fault_options(r);
    SBRS_CHECK_MSG(why.empty(), "scenario: " << why);
  } else {
    SBRS_CHECK_MSG(doc.find("workload") == nullptr,
                   "scenario: store mode shapes its load in the \"store\" "
                   "block, not \"workload\"");
    SBRS_CHECK_MSG(faults.client_crashes == 0 && faults.restart_permyriad == 0,
                   "scenario: store mode does not support client_crashes / "
                   "restart_permyriad");
    store::StoreOptions& o = s.store_opts;
    o.algorithm = s.algorithm;
    o.register_config = s.config;
    if (const json::Value* st = doc.find("store")) {
      check_keys(*st,
                 {"num_shards", "num_keys", "clients", "ops_per_client",
                  "mix", "read_percent", "distribution", "zipf_theta",
                  "max_steps_per_shard", "key_prefix"},
                 "store");
      o.num_shards = static_cast<uint32_t>(st->get_u64("num_shards", 8));
      o.workload.num_keys =
          static_cast<uint32_t>(st->get_u64("num_keys", 128));
      o.workload.clients = static_cast<uint32_t>(st->get_u64("clients", 4));
      o.workload.ops_per_client =
          static_cast<uint32_t>(st->get_u64("ops_per_client", 64));
      o.workload.mix = store::ycsb::parse_mix(st->get_string("mix", "B"));
      o.workload.read_percent =
          static_cast<uint32_t>(st->get_u64("read_percent", 95));
      o.workload.distribution = store::ycsb::parse_distribution(
          st->get_string("distribution", "zipfian"));
      o.workload.zipf_theta = st->get_double("zipf_theta", 0.99);
      o.max_steps_per_shard =
          st->get_u64("max_steps_per_shard", o.max_steps_per_shard);
      o.key_prefix = st->get_string("key_prefix", o.key_prefix);
    }
    if (const json::Value* a = doc.find("arrival")) {
      o.arrival = parse_arrival(*a);
    }
    o.seed = seed;
    o.workload.seed = seed;
    o.scheduler = sched;
    o.partitions_per_shard = faults.partitions;
    o.heal_after = faults.heal_after;
    o.object_crashes_per_shard = faults.crashes;
    o.restart_after = faults.restart_after;
    o.restart_mode = faults.restart_mode;
    o.link_faults = faults.link_faults;
    o.fault_timeline = std::move(faults.timeline);
    o.repair_every = repair.every;
    o.read_repair = repair.read_repair;
    o.repair_budget = repair.budget;
    if (const json::Value* va = doc.find("verify_accounting")) {
      o.verify_accounting = va->as_bool();
    }
    SBRS_CHECK_MSG(
        sched == SchedKind::kRandom ||
            (o.partitions_per_shard == 0 && o.fault_timeline.empty() &&
             o.link_faults.drop_permyriad == 0 &&
             o.link_faults.delay_permyriad == 0 &&
             o.link_faults.reorder_window == 0 &&
             o.link_faults.windows.empty()),
        "scenario: link faults need the random scheduler");
    SBRS_CHECK_MSG(o.repair_every == 0 || sched == SchedKind::kRandom,
                   "scenario: repair.every (anti-entropy) needs the random "
                   "scheduler");
  }
  return s;
}

Scenario load_scenario(const std::string& path) {
  std::ifstream is(path);
  SBRS_CHECK_MSG(is.good(), "scenario: cannot read \"" << path << "\"");
  std::ostringstream buf;
  buf << is.rdbuf();
  return parse_scenario(buf.str(), path);
}

ScenarioOutcome run_scenario(const Scenario& scenario, uint64_t seed,
                             std::string* trace_json) {
  ScenarioOutcome r;
  r.name = scenario.name;
  r.mode = scenario.mode;
  r.seed = seed;
  try {
    if (scenario.mode == "register") {
      run_register_mode(scenario, seed, &r, trace_json);
    } else {
      run_store_mode(scenario, seed, &r, trace_json);
    }
  } catch (const CheckFailure& e) {
    // An engine invariant fired mid-run (accounting cross-check, simulator
    // CHECK): that IS a campaign finding, not a crash of the runner.
    r.violations.push_back(std::string("engine invariant: ") + e.what());
  }
  r.ok = r.violations.empty();
  return r;
}

std::string repro_command(const Scenario& scenario, uint64_t seed) {
  const std::string file =
      scenario.source_path.empty() ? "<scenario-file>" : scenario.source_path;
  return "sbrs_cli --scenario=" + file + " --seed=" + std::to_string(seed);
}

}  // namespace sbrs::harness
