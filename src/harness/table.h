// Minimal fixed-width table printer for the benchmark binaries: the benches
// print paper-style result rows (measured vs predicted storage) in addition
// to google-benchmark timings.
#pragma once

#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace sbrs::harness {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  template <typename... Cells>
  void add_row(Cells&&... cells) {
    std::vector<std::string> row;
    (row.push_back(to_cell(std::forward<Cells>(cells))), ...);
    rows_.push_back(std::move(row));
  }

  void print(std::ostream& os = std::cout) const {
    std::vector<size_t> widths(headers_.size(), 0);
    for (size_t i = 0; i < headers_.size(); ++i) {
      widths[i] = headers_[i].size();
    }
    for (const auto& row : rows_) {
      for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
        widths[i] = std::max(widths[i], row[i].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      os << "|";
      for (size_t i = 0; i < widths.size(); ++i) {
        const std::string& cell = i < row.size() ? row[i] : "";
        os << " " << std::setw(static_cast<int>(widths[i])) << cell << " |";
      }
      os << "\n";
    };
    print_row(headers_);
    os << "|";
    for (size_t w : widths) os << std::string(w + 2, '-') << "|";
    os << "\n";
    for (const auto& row : rows_) print_row(row);
  }

 private:
  template <typename T>
  static std::string to_cell(T&& value) {
    if constexpr (std::is_convertible_v<T, std::string>) {
      return std::string(std::forward<T>(value));
    } else {
      std::ostringstream os;
      os << value;
      return os.str();
    }
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Human-readable bits quantity ("12.5 KiB" style but in bits).
inline std::string fmt_bits(uint64_t bits) {
  std::ostringstream os;
  if (bits < 8192) {
    os << bits << "b";
  } else {
    os << std::fixed << std::setprecision(1)
       << static_cast<double>(bits) / 8192.0 << "KiB";
  }
  return os.str();
}

}  // namespace sbrs::harness
