// Declarative fault-campaign scenarios.
//
// A scenario is a JSON file describing one experiment end to end: the
// algorithm and register shape, the workload mix and arrival process, the
// fault plan (probabilistic knobs and/or a scripted timeline of
// partition/heal/crash/restart events, with absolute or rate-based
// triggers), and an `expect` block stating the guarantees the run must
// keep. Scenarios are the unit the campaign runner (harness/campaign.h)
// sweeps over seeds; a run that breaks its expectations produces a triage
// bundle that pins the scenario + seed for one-command reproduction.
//
// The schema is documented with a worked example in
// docs/scenario_schema.md; shipped examples live under scenarios/.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "harness/runner.h"
#include "registers/register_algorithm.h"
#include "store/store.h"

namespace sbrs::harness {

/// The `expect` block: what the run must satisfy to pass.
struct ScenarioExpect {
  /// Consistency level to check: "algorithm" (the algorithm's own declared
  /// guarantee — the default), "strongly_safe", "weak_regular",
  /// "strong_regular", "atomic" (register mode only), or "none".
  std::string consistency = "algorithm";
  /// Every operation of a live client must return (saturated open-loop
  /// runs are excused, as everywhere else in the harness).
  bool live = true;
  /// Peak Definition-2 storage upper bound in bits (register mode: the
  /// run's max_total_bits; store mode: the sum of shard peaks).
  std::optional<uint64_t> max_total_bits;
  /// Demand the run (all shards) fully quiesced.
  std::optional<bool> quiesced;
  /// Demand that every repair window opened by a restart was closed again
  /// by the end of the run (fresh writes, read-repair, or anti-entropy —
  /// the `repair` block turns the active mechanisms on). `false` demands
  /// the opposite: at least one window stayed open.
  std::optional<bool> repair_windows_closed;
};

/// One parsed scenario. Exactly one of the two mode option sets is live
/// (`mode` selects): register mode drives run_register_experiment with
/// `run`, store mode drives store::Store with `store_opts`.
struct Scenario {
  std::string name;
  std::string mode = "register";  // "register" | "store"
  std::string algorithm = "adaptive";
  registers::RegisterConfig config;
  RunOptions run;
  store::StoreOptions store_opts;
  ScenarioExpect expect;
  /// Provenance (filled by load_scenario): the path the scenario came from
  /// and its raw text — triage bundles copy the text verbatim.
  std::string source_path;
  std::string source_text;
};

/// Parse a scenario document. Unknown members anywhere in the document are
/// an error (scenario files are hand-written; typos must not silently
/// become defaults). Throws sbrs::CheckFailure with the reason.
Scenario parse_scenario(const std::string& text, const std::string& path = "");

/// Read `path` and parse it. Throws sbrs::CheckFailure on IO errors too.
Scenario load_scenario(const std::string& path);

/// Outcome of one scenario execution at one seed — everything the campaign
/// summary and a triage bundle need.
struct ScenarioOutcome {
  std::string name;
  std::string mode;
  uint64_t seed = 0;
  /// All expectations held and no engine invariant (consistency, liveness,
  /// accounting) fired.
  bool ok = true;
  std::vector<std::string> violations;
  std::string stop_reason;  // register mode (store mode: per shard)
  uint64_t fingerprint = 0;
  uint64_t steps = 0;
  uint64_t max_total_bits = 0;  // register: peak; store: sum of shard peaks
  uint64_t degraded_steps = 0;
  uint64_t partition_events = 0;
  uint64_t heal_events = 0;
  uint64_t rmws_dropped = 0;
  uint64_t rmws_delayed = 0;
  uint64_t object_crash_events = 0;
  uint64_t object_restarts = 0;
  /// Active-repair outcome (store mode: summed over shards).
  uint64_t repair_pushes = 0;
  uint64_t repair_bits = 0;
  uint32_t open_repair_windows = 0;
  /// Register mode only: the raw outcome (history included), kept for
  /// trace dumps in triage bundles.
  std::optional<RunOutcome> register_out;
};

/// Execute `scenario` at `seed` (overriding any seed the file names) and
/// judge it against its expect block. Engine invariant failures
/// (sbrs::CheckFailure from accounting verification etc.) are caught and
/// reported as violations, not propagated.
///
/// When `trace_json` is non-null the run executes with a structured trace
/// recorder attached and *trace_json receives the Chrome trace_event JSON
/// document (see src/obs/export.h) — including for runs cut short by an
/// engine invariant, where the partial trace (open spans clamped to the
/// last recorded step) is exactly what a triage bundle wants. Tracing is
/// deterministic: same scenario + seed, same bytes.
ScenarioOutcome run_scenario(const Scenario& scenario, uint64_t seed,
                             std::string* trace_json = nullptr);

/// One-line shell command that reproduces this outcome: used in triage
/// bundles and printed by the campaign runner on failure.
std::string repro_command(const Scenario& scenario, uint64_t seed);

}  // namespace sbrs::harness
