// The lower-bound adversary Ad (Definition 7).
//
// At every point t, Ad:
//   1. If some pending RMW was triggered by an operation in C-_l(t) and
//      targets a base object outside the frozen set F_l(t), delivers the
//      longest-pending such RMW (its state change takes effect and its
//      response is scheduled).
//   2. Otherwise, picks a client in fair order and lets it take an action —
//      in this simulator that means invoking its next workload operation
//      (triggering of RMWs happens inside client steps and is not delayed).
//
// The run reaches its fixed point when neither rule applies: then either
// |C+| = c (every writer has paid >= D - l + 1 bits: Observation 1 gives
// storage >= c (D - l + 1)) or the frozen objects alone hold >= |F| * l
// bits. Lemma 3 shows one of |C+| = c or |F| > f must eventually happen —
// picking l = D/2 yields the Omega(min(f, c) D) bound.
#pragma once

#include <cstdint>
#include <string>

#include "adversary/tracker.h"
#include "sim/scheduler.h"

namespace sbrs::adversary {

class AdScheduler final : public sim::Scheduler {
 public:
  struct Options {
    /// The proof's threshold l in bits (Theorem 1 uses D/2).
    uint64_t l_bits = 0;
    uint64_t data_bits = 0;
    /// The concurrency level c (number of writer clients). Ad stops once
    /// |C+| reaches it, or earlier once |F| > f when stop_when_frozen.
    uint32_t concurrency = 0;
    uint32_t f = 0;
    /// Stop as soon as |F| > f (the proof's other fixed point). If false,
    /// the adversary keeps scheduling rule-2 actions until stuck.
    bool stop_when_frozen = true;

    /// One targeted fault the adversary injects on top of its rules: at the
    /// first scheduling decision with now >= at_step, crash (restart ==
    /// false) or restart `object`. Events already satisfied (crashing a
    /// dead object, restarting a live one) are skipped silently.
    struct FaultEvent {
      uint64_t at_step = 0;
      ObjectId object{};
      bool restart = false;
      sim::RestartMode mode = sim::RestartMode::kFromDisk;
    };
    /// Targeted crash→restart schedule, sorted by at_step. Lets lower-bound
    /// experiments measure how much of the adversary's frozen storage a
    /// crash erases and what the restarted object re-accumulates.
    std::vector<FaultEvent> faults;
  };

  explicit AdScheduler(Options opts)
      : opts_(opts), tracker_(opts.l_bits, opts.data_bits) {}

  sim::Action next(const sim::Simulator& sim) override;
  std::string stop_reason() const override { return stop_reason_; }

  /// Classification at the last scheduling decision (for reporting).
  const ClassifiedState& last_state() const { return last_; }

 private:
  Options opts_;
  OpClassTracker tracker_;
  ClassifiedState last_;
  std::string stop_reason_;
  uint64_t fair_counter_ = 0;
  size_t fault_cursor_ = 0;  // next not-yet-applied Options::faults entry
};

}  // namespace sbrs::adversary
