#include "adversary/ad_scheduler.h"

#include "sim/simulator.h"

namespace sbrs::adversary {

sim::Action AdScheduler::next(const sim::Simulator& sim) {
  // Targeted fault schedule first: due crash/restart events pre-empt the
  // rules (the adversary is allowed any legal action; these model the f
  // crash budget and crash recovery inside lower-bound runs).
  while (fault_cursor_ < opts_.faults.size() &&
         sim.now() >= opts_.faults[fault_cursor_].at_step) {
    const Options::FaultEvent& ev = opts_.faults[fault_cursor_];
    ++fault_cursor_;
    if (ev.restart && !sim.object_alive(ev.object)) {
      return sim::Action::restart_object(ev.object, ev.mode);
    }
    if (!ev.restart && sim.object_alive(ev.object)) {
      return sim::Action::crash_object(ev.object);
    }
    // Already in the requested state: skip and look at the next event.
  }

  const metrics::StorageSnapshot snap = sim.snapshot();
  last_ = tracker_.classify(sim.history(), snap);

  // Fixed points of the construction (Lemma 3's dichotomy).
  if (opts_.concurrency > 0 && last_.c_plus.size() >= opts_.concurrency) {
    stop_reason_ = "all " + std::to_string(opts_.concurrency) +
                   " writes in C+ (each contributed > D - l bits)";
    return sim::Action::stop();
  }
  if (opts_.stop_when_frozen && last_.frozen.size() > opts_.f) {
    stop_reason_ = std::to_string(last_.frozen.size()) +
                   " base objects frozen (each holds >= l bits)";
    return sim::Action::stop();
  }

  // Rule 1: deliver the longest-pending RMW triggered by an operation in
  // C- whose target is not frozen. sim.pending() is in trigger order.
  for (const auto& p : sim.pending()) {
    if (!sim.object_alive(p.target)) continue;
    if (last_.frozen.count(p.target) > 0) continue;
    if (!last_.in_c_minus(p.op)) {
      // Reads and non-write ops are not starved by Ad; the lower-bound
      // workload is write-only, so p.op not in C- means a C+ write.
      const sim::OpRecord* rec = sim.history().find(p.op);
      if (rec != nullptr && rec->kind == sim::OpKind::kWrite &&
          !rec->complete()) {
        continue;  // frozen out by rule 1
      }
      if (rec != nullptr && rec->kind == sim::OpKind::kWrite) continue;
    }
    return sim::Action::deliver(p.id);
  }

  // Rule 2: fair client order (c0, c0, c1, c0, c1, c2, ... degenerates to
  // round-robin here); the only client-local action the simulator exposes
  // is invoking the next operation.
  const auto ready = sim.invocable_clients();
  if (!ready.empty()) {
    const ClientId pick = ready[fair_counter_ % ready.size()];
    ++fair_counter_;
    return sim::Action::invoke(pick);
  }

  // Neither rule applies: every pending RMW is starved (C+ writer or
  // frozen target). This is the no-progress state the proof drives to.
  stop_reason_ = "starved: no rule-1 delivery possible, no invocations left";
  return sim::Action::stop();
}

}  // namespace sbrs::adversary
