// Live tracking of the lower-bound proof's sets (Section 4):
//
//   C(t)    — outstanding write operations;
//   C-_l(t) — outstanding writes whose distinct-block contribution to the
//             storage (Definition 6, excluding the writer's own client) is
//             at most D - l bits;
//   C+_l(t) — the rest: writes that already "paid" more than D - l bits;
//   F_l(t)  — "frozen" base objects storing at least l bits.
//
// The adversary Ad consults these sets; the benches record their sizes to
// visualize Lemma 3's dichotomy (|C+| = c or |F| > f).
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "common/ids.h"
#include "metrics/snapshot.h"
#include "sim/history.h"

namespace sbrs::adversary {

struct ClassifiedState {
  std::vector<OpId> outstanding_writes;  // C(t)
  std::vector<OpId> c_minus;             // C-_l(t)
  std::vector<OpId> c_plus;              // C+_l(t)
  std::set<ObjectId> frozen;             // F_l(t)

  bool in_c_minus(OpId op) const {
    for (OpId o : c_minus) {
      if (o == op) return true;
    }
    return false;
  }
};

class OpClassTracker {
 public:
  /// l is the proof's threshold parameter (0 < l <= D); Theorem 1 picks
  /// l = D/2. D is the register's data size in bits.
  OpClassTracker(uint64_t l_bits, uint64_t data_bits)
      : l_(l_bits), data_bits_(data_bits) {}

  uint64_t l_bits() const { return l_; }
  uint64_t data_bits() const { return data_bits_; }

  /// Classify the current state. `history` supplies the outstanding writes
  /// and their owners; `snap` the stored blocks.
  ClassifiedState classify(const sim::History& history,
                           const metrics::StorageSnapshot& snap) const;

  /// Definition 6's ||S(t, w)|| for one write.
  uint64_t contribution_bits(const metrics::StorageSnapshot& snap, OpId op,
                             ClientId owner) const;

 private:
  uint64_t l_ = 0;
  uint64_t data_bits_ = 0;
};

}  // namespace sbrs::adversary
