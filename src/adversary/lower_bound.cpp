#include "adversary/lower_bound.h"

#include "adversary/ad_scheduler.h"
#include "common/check.h"
#include "sim/simulator.h"
#include "sim/workload.h"

namespace sbrs::adversary {

LowerBoundResult run_lower_bound_experiment(
    const registers::RegisterAlgorithm& algorithm, uint32_t concurrency,
    LowerBoundOptions opts) {
  const auto& cfg = algorithm.config();
  SBRS_CHECK(concurrency >= 1);

  const uint64_t l_bits = opts.l_bits == 0 ? cfg.data_bits / 2 : opts.l_bits;

  // The construction of Lemma 3: a run beginning with the invocation of c
  // concurrent writes of distinct values.
  sim::UniformWorkload::Options wl;
  wl.writers = concurrency;
  wl.writes_per_client = 1;
  wl.readers = 0;
  wl.data_bits = cfg.data_bits;

  AdScheduler::Options ad;
  ad.l_bits = l_bits;
  ad.data_bits = cfg.data_bits;
  ad.concurrency = concurrency;
  ad.f = cfg.f;
  auto scheduler = std::make_unique<AdScheduler>(ad);
  AdScheduler* sched = scheduler.get();

  sim::SimConfig sc;
  sc.num_objects = cfg.n;
  sc.num_clients = concurrency;
  sc.max_steps = opts.max_steps;

  sim::Simulator sim(sc, algorithm.object_factory(),
                     algorithm.client_factory(),
                     std::make_unique<sim::UniformWorkload>(wl),
                     std::move(scheduler));
  sim::RunReport report = sim.run();

  LowerBoundResult out;
  out.algorithm = algorithm.name();
  out.concurrency = concurrency;
  out.f = cfg.f;
  out.data_bits = cfg.data_bits;
  out.l_bits = l_bits;
  out.steps = report.steps;
  out.max_total_bits = sim.meter().max_total_bits();
  out.max_object_bits = sim.meter().max_object_bits();
  out.final_total_bits = sim.meter().last_total_bits();
  out.final_object_bits = sim.meter().last_object_bits();
  out.frozen_objects = sched->last_state().frozen.size();
  out.c_plus_writes = sched->last_state().c_plus.size();
  out.completed_writes = sim.history().completed_writes();
  out.stop_reason = report.stop_reason;
  out.predicted_bits =
      static_cast<uint64_t>(std::min<uint32_t>(cfg.f + 1, concurrency)) *
      l_bits;
  return out;
}

}  // namespace sbrs::adversary
