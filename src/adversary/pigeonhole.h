// Claim 1, executable: the pigeonhole step of the lower-bound proof.
//
// For a symmetric encoding E and an index set I with sum_{i in I} size(i)
// < D bits, there must exist two distinct values u != u' that are
// I-colliding — E(u, i) = E(u', i) for every i in I. The proof uses this to
// swap the value a starved write "would have written" without any base
// object noticing (Definition 5's black-box replacement).
//
// This module finds such collisions constructively for small domains
// (exhaustive search over V, feasible for D up to ~20 bits), demonstrating
// both directions of the threshold: collisions always exist below D bits
// of coverage, and a systematic code shows they can vanish at exactly D.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "codec/codec.h"

namespace sbrs::adversary {

struct Collision {
  Value u;
  Value v;
  std::vector<uint32_t> indices;  // the I on which u and v collide
};

/// Total size(i) over a distinct-index set (the proof's ||S(t, w)||
/// quantity for a full coverage pattern).
uint64_t coverage_bits(const codec::Codec& codec,
                       std::span<const uint32_t> indices);

/// Exhaustively search V for two I-colliding values. Returns nullopt iff
/// none exist (possible only when coverage_bits >= D). The codec's domain
/// 2^D must be enumerable: requires data_bits <= max_domain_bits.
std::optional<Collision> find_colliding_values(
    const codec::Codec& codec, std::span<const uint32_t> indices,
    uint32_t max_domain_bits = 22);

/// Verify that u and v agree on every block in I (and differ as values).
bool verify_collision(const codec::Codec& codec, const Collision& c);

}  // namespace sbrs::adversary
