#include "adversary/pigeonhole.h"

#include <set>
#include <unordered_map>

#include "common/bytes.h"
#include "common/check.h"

namespace sbrs::adversary {

namespace {

/// Enumerate the value domain: every bit pattern of data_bits bits, emitted
/// as the little-endian counter (distinct counters give distinct values).
Value nth_value(uint64_t counter, uint64_t data_bits) {
  Bytes b(data_bits / 8, 0);
  for (size_t i = 0; i < b.size() && i < 8; ++i) {
    b[i] = static_cast<uint8_t>(counter >> (8 * i));
  }
  return Value(std::move(b));
}

/// Concatenated blocks at I — the collision key.
Bytes key_for(const codec::Codec& codec, const Value& v,
              std::span<const uint32_t> indices) {
  Bytes key;
  for (uint32_t i : indices) {
    const codec::Block b = codec.encode_block(v, i);
    key.insert(key.end(), b.data.begin(), b.data.end());
  }
  return key;
}

}  // namespace

uint64_t coverage_bits(const codec::Codec& codec,
                       std::span<const uint32_t> indices) {
  std::set<uint32_t> distinct(indices.begin(), indices.end());
  uint64_t total = 0;
  for (uint32_t i : distinct) total += codec.block_bits(i);
  return total;
}

std::optional<Collision> find_colliding_values(
    const codec::Codec& codec, std::span<const uint32_t> indices,
    uint32_t max_domain_bits) {
  const uint64_t data_bits = codec.data_bits();
  SBRS_CHECK_MSG(data_bits <= max_domain_bits,
                 "domain too large for exhaustive collision search");
  const uint64_t domain = 1ull << data_bits;

  std::unordered_map<uint64_t, std::vector<uint64_t>> buckets;
  buckets.reserve(domain);
  for (uint64_t counter = 0; counter < domain; ++counter) {
    const Value v = nth_value(counter, data_bits);
    const Bytes key = key_for(codec, v, indices);
    auto& bucket = buckets[fnv1a(key)];
    // Hash buckets may (rarely) contain non-colliding values; confirm with
    // a full key comparison.
    for (uint64_t other : bucket) {
      const Value u = nth_value(other, data_bits);
      if (key_for(codec, u, indices) == key) {
        Collision c;
        c.u = u;
        c.v = v;
        c.indices.assign(indices.begin(), indices.end());
        return c;
      }
    }
    bucket.push_back(counter);
  }
  return std::nullopt;
}

bool verify_collision(const codec::Codec& codec, const Collision& c) {
  if (c.u == c.v) return false;
  for (uint32_t i : c.indices) {
    if (codec.encode_block(c.u, i) != codec.encode_block(c.v, i)) {
      return false;
    }
  }
  return true;
}

}  // namespace sbrs::adversary
