#include "adversary/tracker.h"

namespace sbrs::adversary {

uint64_t OpClassTracker::contribution_bits(
    const metrics::StorageSnapshot& snap, OpId op, ClientId owner) const {
  return snap.op_contribution_bits(op, owner);
}

ClassifiedState OpClassTracker::classify(
    const sim::History& history, const metrics::StorageSnapshot& snap) const {
  ClassifiedState out;
  for (const auto& rec : history.outstanding()) {
    if (rec.kind != sim::OpKind::kWrite) continue;
    out.outstanding_writes.push_back(rec.op);
    const uint64_t contribution =
        contribution_bits(snap, rec.op, rec.client);
    // C-_l(t): ||S(t, w)|| <= D - l.
    if (contribution <= data_bits_ - l_) {
      out.c_minus.push_back(rec.op);
    } else {
      out.c_plus.push_back(rec.op);
    }
  }
  for (const auto& obj : snap.objects) {
    if (obj.footprint.total_bits() >= l_) out.frozen.insert(obj.id);
  }
  return out;
}

}  // namespace sbrs::adversary
