// The Lemma 3 experiment: drive a register algorithm with c concurrent
// writers under the adversary Ad and measure how much storage the adversary
// forces before reaching a fixed point (|C+| = c, |F| > f, or starvation).
//
// Theorem 1 predicts that for any *regular* algorithm the fixed-point
// storage is at least min(f+1, c) * l with l = D/2. The safe register of
// Appendix E demonstrates the bound's regularity requirement: under the
// same adversary its storage never exceeds n * D / k.
#pragma once

#include <cstdint>
#include <string>

#include "registers/register_algorithm.h"

namespace sbrs::adversary {

struct LowerBoundResult {
  std::string algorithm;
  uint32_t concurrency = 0;
  uint32_t f = 0;
  uint64_t data_bits = 0;
  uint64_t l_bits = 0;

  uint64_t steps = 0;
  /// Maximum Definition 2 storage over the run (objects+clients+channels).
  uint64_t max_total_bits = 0;
  /// Maximum storage at base objects only.
  uint64_t max_object_bits = 0;
  /// Storage at the adversary's fixed point.
  uint64_t final_total_bits = 0;
  uint64_t final_object_bits = 0;

  size_t frozen_objects = 0;    // |F| at the end
  size_t c_plus_writes = 0;     // |C+| at the end
  size_t completed_writes = 0;  // should be 0: Ad prevents progress
  std::string stop_reason;

  /// min(f+1, c) * l — the storage the Theorem 1 construction certifies.
  uint64_t predicted_bits = 0;
};

struct LowerBoundOptions {
  /// Threshold l in bits; 0 means the Theorem 1 choice l = D/2.
  uint64_t l_bits = 0;
  uint64_t max_steps = 500'000;
};

LowerBoundResult run_lower_bound_experiment(
    const registers::RegisterAlgorithm& algorithm, uint32_t concurrency,
    LowerBoundOptions opts = {});

}  // namespace sbrs::adversary
