#include "codec/codec.h"

#include "codec/replication.h"
#include "codec/reed_solomon.h"
#include "codec/stripe.h"
#include "common/check.h"

namespace sbrs::codec {

std::vector<Block> Codec::encode(const Value& v) const {
  std::vector<Block> out;
  out.reserve(n());
  for (uint32_t i = 1; i <= n(); ++i) {
    out.push_back(encode_block(v, i));
  }
  return out;
}

uint64_t Codec::total_bits() const {
  uint64_t total = 0;
  for (uint32_t i = 1; i <= n(); ++i) total += block_bits(i);
  return total;
}

bool verify_symmetry(const Codec& codec, std::span<const Value> sample) {
  for (uint32_t i = 1; i <= codec.n(); ++i) {
    const uint64_t declared = codec.block_bits(i);
    for (const Value& v : sample) {
      if (codec.encode_block(v, i).bit_size() != declared) return false;
    }
  }
  return true;
}

CodecPtr make_codec(const std::string& kind, uint32_t n, uint32_t k,
                    uint64_t data_bits) {
  if (kind == "replication") {
    return std::make_shared<ReplicationCodec>(n, data_bits);
  }
  if (kind == "rs") {
    return std::make_shared<RsCodec>(n, k, data_bits);
  }
  if (kind == "stripe") {
    return std::make_shared<StripeCodec>(n, data_bits);
  }
  SBRS_CHECK_MSG(false, "unknown codec kind: " << kind);
  return nullptr;
}

}  // namespace sbrs::codec
