// Replication as a (degenerate) coding scheme: every block is a full copy of
// the value, so k == 1 and any single block decodes. This is the coding
// scheme used by the ABD baseline [4] and by the adaptive algorithm's
// replica path when k = 1.
#pragma once

#include "codec/codec.h"

namespace sbrs::codec {

class ReplicationCodec final : public Codec {
 public:
  ReplicationCodec(uint32_t n, uint64_t data_bits);

  std::string name() const override;
  uint32_t n() const override { return n_; }
  uint32_t k() const override { return 1; }
  uint64_t data_bits() const override { return data_bits_; }
  uint64_t block_bits(uint32_t index) const override;
  Block encode_block(const Value& v, uint32_t index) const override;
  std::vector<Block> encode(const Value& v) const override;
  std::optional<Value> decode(std::span<const Block> blocks) const override;

 private:
  uint32_t n_;
  uint64_t data_bits_;
};

}  // namespace sbrs::codec
