// Code blocks (elements of the paper's domain E).
//
// A Block is the output of the encoding function E: V x N -> E for one block
// number. Blocks carry their index so the decoder knows which code symbol
// each one is (Definition 1's get(i) / push(e, i) interface).
#pragma once

#include <cstdint>
#include <ostream>

#include "common/bytes.h"

namespace sbrs::codec {

struct Block {
  /// Block number i in E(v, i). 1-based to match the paper's bo_i indexing.
  uint32_t index = 0;
  /// The code block contents e; |e| in bits is what storage cost counts.
  /// Copy-on-write: copying a Block (into chunks, responses, RMW closures)
  /// shares one buffer instead of duplicating value-sized payloads.
  CowBytes data;

  uint64_t bit_size() const { return 8ull * data.size(); }

  friend bool operator==(const Block& a, const Block& b) {
    return a.index == b.index && a.data == b.data;
  }
};

inline std::ostream& operator<<(std::ostream& os, const Block& b) {
  return os << "block[" << b.index << "," << b.bit_size() << "b]";
}

}  // namespace sbrs::codec
