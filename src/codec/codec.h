// The coding-scheme abstraction of Section 3.1.
//
// A Codec realizes the pair (E, D):
//   - encode block i of a value:   E : V x N -> E      (Definition 1)
//   - decode from a set of blocks: D : 2^E -> V u {_|_}
//
// All provided codecs are *symmetric* (Definition 3): |E(v, i)| depends only
// on i, never on v — verify_symmetry() checks this property empirically and
// is exercised by the property tests.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "codec/block.h"
#include "common/value.h"

namespace sbrs::codec {

class Codec {
 public:
  virtual ~Codec() = default;

  virtual std::string name() const = 0;

  /// Total number of blocks produced per value (the code length n).
  virtual uint32_t n() const = 0;

  /// Minimum number of distinct blocks sufficient to decode (the dimension
  /// k). Replication has k == 1.
  virtual uint32_t k() const = 0;

  /// The data size D in bits this codec instance is configured for.
  virtual uint64_t data_bits() const = 0;

  /// size(i): the bit size of block i, independent of the value
  /// (symmetric encoding, Definition 3). 1-based index in [1, n()].
  virtual uint64_t block_bits(uint32_t index) const = 0;

  /// E(v, i): produce the single block with number `index` (1-based).
  virtual Block encode_block(const Value& v, uint32_t index) const = 0;

  /// Produce all n blocks of v (the paper's encode(v) = {<e1,1>..<en,n>}).
  /// The base implementation loops over encode_block; codecs with a cheaper
  /// bulk path (e.g. RsCodec's single-pass shard + one-sweep parity) override
  /// it. Overrides must produce exactly the blocks the base loop would.
  virtual std::vector<Block> encode(const Value& v) const;

  /// D(S): decode from any subset of blocks; returns nullopt when the set
  /// is insufficient or inconsistent (the paper's bottom).
  virtual std::optional<Value> decode(std::span<const Block> blocks) const = 0;

  /// Storage in bits of one full set of n blocks — the codec's redundancy
  /// footprint n * D / k for MDS codecs.
  uint64_t total_bits() const;
};

using CodecPtr = std::shared_ptr<const Codec>;

/// Empirically check Definition 3 on a sample of values: every block index
/// must have the same size for all values. Returns false on any violation.
bool verify_symmetry(const Codec& codec, std::span<const Value> sample);

/// Construct codecs by name; used by benches and examples.
///  - "replication"       : k = 1, n copies
///  - "rs"                : k-of-n Reed-Solomon
///  - "stripe"            : k = n striping (no redundancy; test-only)
CodecPtr make_codec(const std::string& kind, uint32_t n, uint32_t k,
                    uint64_t data_bits);

}  // namespace sbrs::codec
