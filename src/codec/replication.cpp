#include "codec/replication.h"

#include <sstream>

#include "common/check.h"

namespace sbrs::codec {

ReplicationCodec::ReplicationCodec(uint32_t n, uint64_t data_bits)
    : n_(n), data_bits_(data_bits) {
  SBRS_CHECK(n >= 1);
  SBRS_CHECK(data_bits >= 8 && data_bits % 8 == 0);
}

std::string ReplicationCodec::name() const {
  std::ostringstream os;
  os << "replication(n=" << n_ << ")";
  return os.str();
}

uint64_t ReplicationCodec::block_bits(uint32_t index) const {
  SBRS_CHECK(index >= 1 && index <= n_);
  return data_bits_;
}

Block ReplicationCodec::encode_block(const Value& v, uint32_t index) const {
  SBRS_CHECK(index >= 1 && index <= n_);
  SBRS_CHECK(v.bit_size() == data_bits_);
  return Block{index, v.bytes()};
}

std::vector<Block> ReplicationCodec::encode(const Value& v) const {
  SBRS_CHECK(v.bit_size() == data_bits_);
  // All n replicas share one copy-on-write buffer — replication's bulk
  // encode is one value copy total, not one per replica.
  const CowBytes shared(v.bytes());
  std::vector<Block> out;
  out.reserve(n_);
  for (uint32_t i = 1; i <= n_; ++i) out.push_back(Block{i, shared});
  return out;
}

std::optional<Value> ReplicationCodec::decode(
    std::span<const Block> blocks) const {
  for (const Block& b : blocks) {
    if (b.index >= 1 && b.index <= n_ && b.bit_size() == data_bits_) {
      return Value(b.data.bytes());
    }
  }
  return std::nullopt;
}

}  // namespace sbrs::codec
