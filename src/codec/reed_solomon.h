// Systematic k-of-n Reed-Solomon codec over GF(2^8).
//
// The value's D/8 bytes are split into k shards of D/(8k) bytes each
// (padded up to a multiple of k), then n-k parity shards are produced with a
// systematic MDS generator matrix (see gf::Matrix::rs_systematic). Any k
// distinct blocks reconstruct the value, matching the paper's definition of
// a k-of-n erasure code in Section 5 ("the size of each block is D/k").
#pragma once

#include "codec/codec.h"
#include "gf/matrix.h"

namespace sbrs::codec {

class RsCodec final : public Codec {
 public:
  /// Requires 1 <= k <= n <= 255.
  RsCodec(uint32_t n, uint32_t k, uint64_t data_bits);

  std::string name() const override;
  uint32_t n() const override { return n_; }
  uint32_t k() const override { return k_; }
  uint64_t data_bits() const override { return data_bits_; }
  uint64_t block_bits(uint32_t index) const override;
  Block encode_block(const Value& v, uint32_t index) const override;
  std::optional<Value> decode(std::span<const Block> blocks) const override;

  /// Shard size in bytes (== ceil(D/8 / k)).
  size_t shard_bytes() const { return shard_bytes_; }

 private:
  /// Split v into the k data shards (with zero padding at the tail).
  std::vector<Bytes> shard(const Value& v) const;

  uint32_t n_;
  uint32_t k_;
  uint64_t data_bits_;
  size_t shard_bytes_;
  gf::Matrix generator_;  // n x k systematic MDS generator
};

}  // namespace sbrs::codec
