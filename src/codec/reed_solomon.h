// Systematic k-of-n Reed-Solomon codec over GF(2^8).
//
// The value's D/8 bytes are split into k shards of D/(8k) bytes each
// (padded up to a multiple of k), then n-k parity shards are produced with a
// systematic MDS generator matrix (see gf::Matrix::rs_systematic). Any k
// distinct blocks reconstruct the value, matching the paper's definition of
// a k-of-n erasure code in Section 5 ("the size of each block is D/k").
#pragma once

#include <array>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "codec/codec.h"
#include "gf/matrix.h"

namespace sbrs::codec {

class RsCodec final : public Codec {
 public:
  /// Requires 1 <= k <= n <= 255.
  RsCodec(uint32_t n, uint32_t k, uint64_t data_bits);

  std::string name() const override;
  uint32_t n() const override { return n_; }
  uint32_t k() const override { return k_; }
  uint64_t data_bits() const override { return data_bits_; }
  uint64_t block_bits(uint32_t index) const override;
  Block encode_block(const Value& v, uint32_t index) const override;

  /// Single-pass bulk encode: shard once into one contiguous scratch
  /// buffer, memcpy the k systematic blocks out of it, and produce all
  /// n-k parity rows in one Matrix::apply sweep — O(n*D/k) work and no
  /// per-block re-sharding (the base-class loop costs O(n*k) shardings).
  std::vector<Block> encode(const Value& v) const override;

  /// Decode from any k distinct blocks. Duplicate indices carrying
  /// conflicting payloads make the set inconsistent -> nullopt. The k x k
  /// inverse for each distinct chosen-row set is memoized in a small LRU
  /// cache, so steady-state decoding skips the Gaussian elimination.
  std::optional<Value> decode(std::span<const Block> blocks) const override;

  /// Shard size in bytes (== ceil(D/8 / k)).
  size_t shard_bytes() const { return shard_bytes_; }

  /// Number of decode-matrix inversions avoided via the LRU cache (test and
  /// bench introspection).
  uint64_t decode_cache_hits() const;

 private:
  /// 256-bit row-set key: bit r set <=> generator row r is in the chosen set.
  using RowSetKey = std::array<uint64_t, 4>;
  struct RowSetHash {
    size_t operator()(const RowSetKey& key) const;
  };

  /// Fetch (or compute and memoize) the inverse of the k x k submatrix
  /// formed by the given sorted generator rows. Returns nullptr when the
  /// submatrix is singular. Shared ownership keeps cache hits allocation-
  /// free and lets eviction race safely with an in-flight decode.
  std::shared_ptr<const gf::Matrix> inverse_for(
      const std::vector<size_t>& rows, const RowSetKey& key) const;

  uint32_t n_;
  uint32_t k_;
  uint64_t data_bits_;
  size_t shard_bytes_;
  gf::Matrix generator_;  // n x k systematic MDS generator
  gf::Matrix parity_;     // bottom n-k rows of generator_

  // LRU cache of decode-matrix inverses keyed by the chosen-row bitmap.
  using CacheEntry = std::pair<RowSetKey, std::shared_ptr<const gf::Matrix>>;
  static constexpr size_t kInverseCacheCapacity = 64;
  mutable std::mutex cache_mu_;
  mutable std::list<CacheEntry> cache_lru_;
  mutable std::unordered_map<RowSetKey, std::list<CacheEntry>::iterator,
                             RowSetHash>
      cache_index_;
  mutable uint64_t cache_hits_ = 0;
};

}  // namespace sbrs::codec
