// Encoding / decoding oracles (Definition 1) with source tracking
// (Definition 4).
//
// The lower-bound model routes all coding through per-operation oracles:
//   - a write w at client ci gets oracleE(ci, w) exposing get(i) = E(v, i);
//   - a read gets oracleD exposing push(e, i) and done(i).
// Oracle state is free (not part of storage cost), but every block an
// encoder hands out is tagged with its source <w, i> so the storage meter
// can apply Definition 6 (count distinct block numbers per operation) and
// the adversary can classify operations into C-/C+.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "codec/codec.h"
#include "common/ids.h"

namespace sbrs::codec {

/// Provenance tag of a block instance: source(b, t) = <w, i>.
struct Source {
  OpId op;
  uint32_t index = 0;

  friend constexpr auto operator<=>(const Source&, const Source&) = default;
};

/// A block together with its provenance; this is what algorithms store in
/// base objects so that accounting per Definitions 2/6 is possible.
struct TaggedBlock {
  Source source;
  Block block;

  uint64_t bit_size() const { return block.bit_size(); }
};

/// oracleE(ci, w): hands out code blocks of the written value, each tagged
/// with <w, i>. Expires (is destroyed) when the write completes.
class EncoderOracle {
 public:
  EncoderOracle(CodecPtr codec, OpId op, Value value);

  /// get(i): returns E(v, i) tagged with <op, i>.
  TaggedBlock get(uint32_t index) const;

  /// All n blocks, tagged (the common batched-usage pattern of Section 5).
  std::vector<TaggedBlock> get_all() const;

  OpId op() const { return op_; }
  const Value& value() const { return value_; }
  const Codec& codec() const { return *codec_; }

 private:
  CodecPtr codec_;
  OpId op_;
  Value value_;
};

/// oracleD(ci, r): accumulates pushed blocks and decodes on done().
class DecoderOracle {
 public:
  DecoderOracle(CodecPtr codec, OpId op);

  /// push(e, i) into decode attempt group `group`. Groups model the
  /// paper's done(i) parameter: a reader may maintain several candidate
  /// block sets (e.g. one per timestamp) and commit to one of them.
  void push(uint64_t group, const Block& block);

  /// done(i): decode group `group`; returns nullopt for bottom.
  std::optional<Value> done(uint64_t group) const;

  /// Number of distinct block indices pushed into a group so far.
  size_t group_size(uint64_t group) const;

  OpId op() const { return op_; }

 private:
  CodecPtr codec_;
  OpId op_;
  std::map<uint64_t, std::vector<Block>> groups_;
};

}  // namespace sbrs::codec
