// A rateless (LT / fountain-style) coding scheme.
//
// Definition 1 deliberately types the encoder as E : V x N -> E so that
// "rateless codes [13], in which an encoder can generate a limit-less
// sequence of blocks" fit the model. This codec realizes that case: block i
// is the XOR of a pseudo-random subset of the k source shards, with the
// subset derived deterministically from i (so the code is symmetric:
// |E(v, i)| depends only on i — in fact all blocks are one shard wide).
//
// Unlike the MDS codecs, ANY k blocks do not always suffice: decoding uses
// belief-propagation peeling plus Gaussian elimination as a fallback, and
// succeeds with high probability once ~k(1+overhead) distinct blocks are
// available. It therefore is NOT used by the register algorithms (whose
// correctness needs the any-k guarantee); it exists to exercise the
// oracle/model plumbing for the rateless case and as a substrate extension.
#pragma once

#include "codec/codec.h"

namespace sbrs::codec {

class LtCodec final : public Codec {
 public:
  /// `horizon` is the nominal n() reported for Codec compatibility; get(i)
  /// works for any i >= 1 regardless.
  LtCodec(uint32_t k, uint64_t data_bits, uint32_t horizon = 0,
          uint64_t seed = 0x17a7e1e55ull);

  std::string name() const override;
  uint32_t n() const override { return horizon_; }
  uint32_t k() const override { return k_; }
  uint64_t data_bits() const override { return data_bits_; }
  uint64_t block_bits(uint32_t index) const override;
  Block encode_block(const Value& v, uint32_t index) const override;
  std::optional<Value> decode(std::span<const Block> blocks) const override;

  /// The source-shard subset XORed into block `index` (sorted, distinct).
  std::vector<uint32_t> neighbors(uint32_t index) const;

  size_t shard_bytes() const { return shard_bytes_; }

 private:
  uint32_t degree_for(uint32_t index) const;

  uint32_t k_;
  uint64_t data_bits_;
  uint32_t horizon_;
  uint64_t seed_;
  size_t shard_bytes_;
};

}  // namespace sbrs::codec
