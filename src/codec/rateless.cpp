#include "codec/rateless.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "common/check.h"
#include "common/rng.h"

namespace sbrs::codec {

LtCodec::LtCodec(uint32_t k, uint64_t data_bits, uint32_t horizon,
                 uint64_t seed)
    : k_(k),
      data_bits_(data_bits),
      horizon_(horizon == 0 ? 4 * k : horizon),
      seed_(seed) {
  SBRS_CHECK(k >= 1);
  SBRS_CHECK(data_bits >= 8 && data_bits % 8 == 0);
  const size_t value_bytes = data_bits / 8;
  shard_bytes_ = (value_bytes + k - 1) / k;
}

std::string LtCodec::name() const {
  std::ostringstream os;
  os << "lt(k=" << k_ << ")";
  return os.str();
}

uint64_t LtCodec::block_bits(uint32_t index) const {
  SBRS_CHECK(index >= 1);
  return 8ull * shard_bytes_;
}

uint32_t LtCodec::degree_for(uint32_t index) const {
  // Ideal-soliton-flavoured degree choice, deterministic in the index:
  // P(d=1) ~ 1/k, P(d) ~ 1/(d(d-1)) otherwise — approximated by inverting
  // a uniform draw u in (0,1]: d = ceil(1/u), clamped to [1, k].
  uint64_t s = seed_ ^ (0x9e3779b97f4a7c15ull * index);
  const uint64_t draw = splitmix64(s);
  const double u =
      (static_cast<double>(draw >> 11) + 1.0) * 0x1.0p-53;  // (0, 1]
  uint32_t d = static_cast<uint32_t>(1.0 / u);
  if (d < 1) d = 1;
  if (d > k_) d = k_;
  // Guarantee a supply of degree-1 blocks so peeling can start: every
  // (k+1)-th index is forced systematic-ish.
  if (index % (k_ + 1) == 1) d = 1;
  return d;
}

std::vector<uint32_t> LtCodec::neighbors(uint32_t index) const {
  const uint32_t d = degree_for(index);
  uint64_t s = seed_ ^ (0xbf58476d1ce4e5b9ull * index);
  std::set<uint32_t> chosen;
  while (chosen.size() < d) {
    chosen.insert(static_cast<uint32_t>(splitmix64(s) % k_));
  }
  return std::vector<uint32_t>(chosen.begin(), chosen.end());
}

Block LtCodec::encode_block(const Value& v, uint32_t index) const {
  SBRS_CHECK(index >= 1);
  SBRS_CHECK(v.bit_size() == data_bits_);
  const Bytes& src = v.bytes();
  Bytes out(shard_bytes_, 0);
  for (uint32_t shard : neighbors(index)) {
    const size_t begin = static_cast<size_t>(shard) * shard_bytes_;
    if (begin >= src.size()) continue;
    const size_t len = std::min(shard_bytes_, src.size() - begin);
    for (size_t i = 0; i < len; ++i) out[i] ^= src[begin + i];
  }
  return Block{index, std::move(out)};
}

std::optional<Value> LtCodec::decode(std::span<const Block> blocks) const {
  // Collect distinct, well-formed blocks with their neighbor sets.
  struct Eq {
    std::set<uint32_t> unknowns;
    Bytes rhs;
  };
  std::vector<Eq> eqs;
  std::set<uint32_t> seen;
  for (const Block& b : blocks) {
    if (b.index < 1 || b.data.size() != shard_bytes_) continue;
    if (!seen.insert(b.index).second) continue;
    Eq eq;
    auto nb = neighbors(b.index);
    eq.unknowns.insert(nb.begin(), nb.end());
    eq.rhs = b.data.bytes();
    eqs.push_back(std::move(eq));
  }

  std::vector<std::optional<Bytes>> shards(k_);
  size_t solved = 0;

  // Belief-propagation peeling: repeatedly take an equation with one
  // unknown, solve it, and substitute everywhere.
  bool progress = true;
  while (progress && solved < k_) {
    progress = false;
    for (Eq& eq : eqs) {
      // Substitute already-solved shards.
      for (auto it = eq.unknowns.begin(); it != eq.unknowns.end();) {
        if (shards[*it].has_value()) {
          for (size_t i = 0; i < shard_bytes_; ++i) {
            eq.rhs[i] ^= (*shards[*it])[i];
          }
          it = eq.unknowns.erase(it);
        } else {
          ++it;
        }
      }
      if (eq.unknowns.size() == 1) {
        const uint32_t shard = *eq.unknowns.begin();
        if (!shards[shard].has_value()) {
          shards[shard] = eq.rhs;
          ++solved;
          progress = true;
        }
        eq.unknowns.clear();
      }
    }
  }
  if (solved < k_) return std::nullopt;  // peeling stalled: undecodable set

  const size_t value_bytes = data_bits_ / 8;
  Bytes value(value_bytes, 0);
  for (uint32_t s = 0; s < k_; ++s) {
    const size_t begin = static_cast<size_t>(s) * shard_bytes_;
    for (size_t i = 0; i < shard_bytes_ && begin + i < value_bytes; ++i) {
      value[begin + i] = (*shards[s])[i];
    }
  }
  return Value(std::move(value));
}

}  // namespace sbrs::codec
