#include "codec/reed_solomon.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "common/check.h"

namespace sbrs::codec {

RsCodec::RsCodec(uint32_t n, uint32_t k, uint64_t data_bits)
    : n_(n), k_(k), data_bits_(data_bits) {
  SBRS_CHECK(k >= 1 && k <= n && n <= 255);
  SBRS_CHECK(data_bits >= 8 && data_bits % 8 == 0);
  const size_t value_bytes = data_bits / 8;
  shard_bytes_ = (value_bytes + k - 1) / k;
  generator_ = gf::Matrix::rs_systematic(n, k);
}

std::string RsCodec::name() const {
  std::ostringstream os;
  os << "rs(n=" << n_ << ",k=" << k_ << ")";
  return os.str();
}

uint64_t RsCodec::block_bits(uint32_t index) const {
  SBRS_CHECK(index >= 1 && index <= n_);
  return 8ull * shard_bytes_;
}

std::vector<Bytes> RsCodec::shard(const Value& v) const {
  SBRS_CHECK(v.bit_size() == data_bits_);
  std::vector<Bytes> shards(k_, Bytes(shard_bytes_, 0));
  const Bytes& src = v.bytes();
  for (size_t i = 0; i < src.size(); ++i) {
    shards[i / shard_bytes_][i % shard_bytes_] = src[i];
  }
  return shards;
}

Block RsCodec::encode_block(const Value& v, uint32_t index) const {
  SBRS_CHECK(index >= 1 && index <= n_);
  const std::vector<Bytes> shards = shard(v);
  Bytes out(shard_bytes_, 0);
  const size_t row = index - 1;
  for (uint32_t c = 0; c < k_; ++c) {
    gf::mul_add_row(out.data(), shards[c].data(), generator_.at(row, c),
                    shard_bytes_);
  }
  return Block{index, std::move(out)};
}

std::optional<Value> RsCodec::decode(std::span<const Block> blocks) const {
  // Gather up to k blocks with distinct, in-range indices of the right size.
  std::vector<const Block*> chosen;
  std::set<uint32_t> seen;
  for (const Block& b : blocks) {
    if (b.index < 1 || b.index > n_) continue;
    if (b.data.size() != shard_bytes_) continue;
    if (!seen.insert(b.index).second) continue;
    chosen.push_back(&b);
    if (chosen.size() == k_) break;
  }
  if (chosen.size() < k_) return std::nullopt;

  // Build the k x k decoding matrix from the generator rows of the chosen
  // blocks and invert it.
  std::vector<size_t> rows;
  rows.reserve(k_);
  for (const Block* b : chosen) rows.push_back(b->index - 1);
  auto inv = generator_.select_rows(rows).inverted();
  if (!inv.has_value()) return std::nullopt;  // cannot happen for MDS rows

  std::vector<const uint8_t*> in;
  in.reserve(k_);
  for (const Block* b : chosen) in.push_back(b->data.data());

  std::vector<Bytes> shards(k_, Bytes(shard_bytes_, 0));
  std::vector<uint8_t*> out;
  out.reserve(k_);
  for (auto& s : shards) out.push_back(s.data());
  inv->apply(in, out, shard_bytes_);

  // Reassemble the value (drop shard padding).
  const size_t value_bytes = data_bits_ / 8;
  Bytes value(value_bytes, 0);
  for (size_t i = 0; i < value_bytes; ++i) {
    value[i] = shards[i / shard_bytes_][i % shard_bytes_];
  }
  return Value(std::move(value));
}

}  // namespace sbrs::codec
