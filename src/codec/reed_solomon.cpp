#include "codec/reed_solomon.h"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "common/check.h"
#include "gf/gf_kernels.h"

namespace sbrs::codec {

RsCodec::RsCodec(uint32_t n, uint32_t k, uint64_t data_bits)
    : n_(n), k_(k), data_bits_(data_bits) {
  SBRS_CHECK(k >= 1 && k <= n && n <= 255);
  SBRS_CHECK(data_bits >= 8 && data_bits % 8 == 0);
  const size_t value_bytes = data_bits / 8;
  shard_bytes_ = (value_bytes + k - 1) / k;
  generator_ = gf::Matrix::rs_systematic(n, k);
  if (n_ > k_) {
    std::vector<size_t> parity_rows;
    parity_rows.reserve(n_ - k_);
    for (size_t r = k_; r < n_; ++r) parity_rows.push_back(r);
    parity_ = generator_.select_rows(parity_rows);
  }
}

std::string RsCodec::name() const {
  std::ostringstream os;
  os << "rs(n=" << n_ << ",k=" << k_ << ")";
  return os.str();
}

uint64_t RsCodec::block_bits(uint32_t index) const {
  SBRS_CHECK(index >= 1 && index <= n_);
  return 8ull * shard_bytes_;
}

Block RsCodec::encode_block(const Value& v, uint32_t index) const {
  SBRS_CHECK(index >= 1 && index <= n_);
  SBRS_CHECK(v.bit_size() == data_bits_);
  const Bytes& src = v.bytes();
  const size_t sb = shard_bytes_;
  Bytes out(sb, 0);
  const size_t row = index - 1;
  if (row < k_) {
    // Systematic row: the block is shard `row`, sliced straight from the
    // value (the slice past the value's end stays zero padding).
    const size_t begin = row * sb;
    if (begin < src.size()) {
      std::memcpy(out.data(), src.data() + begin,
                  std::min(sb, src.size() - begin));
    }
  } else {
    // Parity row: accumulate coeff * shard_c without materializing shards;
    // zero padding past the value's tail contributes nothing to the sum.
    for (uint32_t c = 0; c < k_; ++c) {
      const size_t begin = static_cast<size_t>(c) * sb;
      if (begin >= src.size()) break;
      gf::kern::mul_add_row(out.data(), src.data() + begin,
                            generator_.at(row, c),
                            std::min(sb, src.size() - begin));
    }
  }
  return Block{index, std::move(out)};
}

std::vector<Block> RsCodec::encode(const Value& v) const {
  SBRS_CHECK(v.bit_size() == data_bits_);
  const Bytes& src = v.bytes();
  const size_t sb = shard_bytes_;

  std::vector<Block> out;
  out.reserve(n_);
  for (uint32_t i = 1; i <= n_; ++i) out.push_back(Block{i, Bytes(sb, 0)});

  // Shard once, directly into the k systematic blocks: block i-1 is shard
  // i-1 (zero-padded at the tail), so those buffers double as the shard
  // scratch the parity sweep reads from.
  std::array<const uint8_t*, 255> in;
  for (uint32_t c = 0; c < k_; ++c) {
    uint8_t* shard = out[c].data.mutable_bytes().data();
    const size_t begin = static_cast<size_t>(c) * sb;
    if (begin < src.size()) {
      std::memcpy(shard, src.data() + begin, std::min(sb, src.size() - begin));
    }
    in[c] = shard;
  }
  // All n-k parity rows in a single sweep over the shards.
  if (n_ > k_) {
    std::array<uint8_t*, 255> parity_out;
    for (uint32_t r = 0; r < n_ - k_; ++r) {
      parity_out[r] = out[k_ + r].data.mutable_bytes().data();
    }
    parity_.apply(in.data(), parity_out.data(), sb);
  }
  return out;
}

size_t RsCodec::RowSetHash::operator()(const RowSetKey& key) const {
  // SplitMix64-style mix of the four bitmap words.
  uint64_t h = 0x9e3779b97f4a7c15ull;
  for (uint64_t w : key) {
    h ^= w + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    h *= 0xbf58476d1ce4e5b9ull;
    h ^= h >> 31;
  }
  return static_cast<size_t>(h);
}

std::shared_ptr<const gf::Matrix> RsCodec::inverse_for(
    const std::vector<size_t>& rows, const RowSetKey& key) const {
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    auto it = cache_index_.find(key);
    if (it != cache_index_.end()) {
      cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second);
      ++cache_hits_;
      return it->second->second;
    }
  }
  auto inv = generator_.select_rows(rows).inverted();
  if (!inv.has_value()) return nullptr;  // cannot happen for MDS rows
  auto shared = std::make_shared<const gf::Matrix>(std::move(*inv));
  std::lock_guard<std::mutex> lock(cache_mu_);
  if (cache_index_.find(key) == cache_index_.end()) {
    cache_lru_.emplace_front(key, shared);
    cache_index_[key] = cache_lru_.begin();
    if (cache_lru_.size() > kInverseCacheCapacity) {
      cache_index_.erase(cache_lru_.back().first);
      cache_lru_.pop_back();
    }
  }
  return shared;
}

uint64_t RsCodec::decode_cache_hits() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  return cache_hits_;
}

std::optional<Value> RsCodec::decode(std::span<const Block> blocks) const {
  const size_t sb = shard_bytes_;

  // Dedup via a 256-bit bitmap over generator rows (index - 1). A duplicate
  // index with an identical payload is redundant; with a conflicting payload
  // the whole set is inconsistent and decodes to bottom.
  std::array<const Block*, 256> by_row{};
  RowSetKey have{};
  uint32_t distinct = 0;
  for (const Block& b : blocks) {
    if (b.index < 1 || b.index > n_) continue;
    if (b.data.size() != sb) continue;
    const uint32_t r = b.index - 1;
    const uint64_t bit = 1ull << (r & 63);
    if (have[r >> 6] & bit) {
      if (b.data != by_row[r]->data) return std::nullopt;
      continue;
    }
    have[r >> 6] |= bit;
    by_row[r] = &b;
    ++distinct;
  }
  if (distinct < k_) return std::nullopt;

  // Choose the k lowest-indexed rows. Deterministic choice means equal row
  // sets share one cache entry, and low rows maximize the systematic case.
  std::vector<size_t> rows;
  rows.reserve(k_);
  RowSetKey key{};
  for (uint32_t r = 0; r < n_ && rows.size() < k_; ++r) {
    if (have[r >> 6] & (1ull << (r & 63))) {
      rows.push_back(r);
      key[r >> 6] |= 1ull << (r & 63);
    }
  }

  const size_t value_bytes = data_bits_ / 8;
  Bytes value(value_bytes, 0);

  if (rows.back() < k_) {
    // All k systematic blocks present: they are the shards — reassemble
    // directly, no inversion and no matrix sweep.
    for (uint32_t c = 0; c < k_; ++c) {
      const size_t begin = static_cast<size_t>(c) * sb;
      if (begin >= value_bytes) break;
      std::memcpy(value.data() + begin, by_row[c]->data.data(),
                  std::min(sb, value_bytes - begin));
    }
    return Value(std::move(value));
  }

  const auto inv = inverse_for(rows, key);
  if (inv == nullptr) return std::nullopt;

  std::array<const uint8_t*, 255> in;
  for (uint32_t c = 0; c < k_; ++c) in[c] = by_row[rows[c]]->data.data();

  // Recover all k shards into one contiguous scratch, then trim the padding.
  Bytes scratch(static_cast<size_t>(k_) * sb);
  std::array<uint8_t*, 255> shards_out;
  for (uint32_t c = 0; c < k_; ++c) shards_out[c] = scratch.data() + c * sb;
  inv->apply(in.data(), shards_out.data(), sb);

  std::memcpy(value.data(), scratch.data(), value_bytes);
  return Value(std::move(value));
}

}  // namespace sbrs::codec
