// Striping "codec": k == n, no redundancy. Block i is simply the ith slice
// of the value. Useful in tests as the extreme point of the storage/fault-
// tolerance trade-off (loses data on any erasure), and as a fast path for
// measuring accounting overheads.
#pragma once

#include "codec/codec.h"

namespace sbrs::codec {

class StripeCodec final : public Codec {
 public:
  StripeCodec(uint32_t n, uint64_t data_bits);

  std::string name() const override;
  uint32_t n() const override { return n_; }
  uint32_t k() const override { return n_; }
  uint64_t data_bits() const override { return data_bits_; }
  uint64_t block_bits(uint32_t index) const override;
  Block encode_block(const Value& v, uint32_t index) const override;
  std::optional<Value> decode(std::span<const Block> blocks) const override;

 private:
  size_t shard_bytes() const;

  uint32_t n_;
  uint64_t data_bits_;
};

}  // namespace sbrs::codec
