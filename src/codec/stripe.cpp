#include "codec/stripe.h"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "common/check.h"

namespace sbrs::codec {

StripeCodec::StripeCodec(uint32_t n, uint64_t data_bits)
    : n_(n), data_bits_(data_bits) {
  SBRS_CHECK(n >= 1);
  SBRS_CHECK(data_bits >= 8 && data_bits % 8 == 0);
}

std::string StripeCodec::name() const {
  std::ostringstream os;
  os << "stripe(n=" << n_ << ")";
  return os.str();
}

size_t StripeCodec::shard_bytes() const {
  const size_t value_bytes = data_bits_ / 8;
  return (value_bytes + n_ - 1) / n_;
}

uint64_t StripeCodec::block_bits(uint32_t index) const {
  SBRS_CHECK(index >= 1 && index <= n_);
  return 8ull * shard_bytes();
}

Block StripeCodec::encode_block(const Value& v, uint32_t index) const {
  SBRS_CHECK(index >= 1 && index <= n_);
  SBRS_CHECK(v.bit_size() == data_bits_);
  const size_t sb = shard_bytes();
  Bytes out(sb, 0);
  const Bytes& src = v.bytes();
  const size_t begin = (index - 1) * sb;
  if (begin < src.size()) {
    std::memcpy(out.data(), src.data() + begin,
                std::min(sb, src.size() - begin));
  }
  return Block{index, std::move(out)};
}

std::optional<Value> StripeCodec::decode(std::span<const Block> blocks) const {
  const size_t sb = shard_bytes();
  const size_t value_bytes = data_bits_ / 8;
  std::vector<const Block*> by_index(n_ + 1, nullptr);
  size_t have = 0;
  for (const Block& b : blocks) {
    if (b.index < 1 || b.index > n_ || b.data.size() != sb) continue;
    if (by_index[b.index] == nullptr) {
      by_index[b.index] = &b;
      ++have;
    }
  }
  if (have < n_) return std::nullopt;
  Bytes value(value_bytes, 0);
  for (uint32_t i = 1; i <= n_; ++i) {
    const size_t begin = (i - 1) * sb;
    for (size_t j = 0; j < sb && begin + j < value_bytes; ++j) {
      value[begin + j] = by_index[i]->data[j];
    }
  }
  return Value(std::move(value));
}

}  // namespace sbrs::codec
