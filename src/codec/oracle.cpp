#include "codec/oracle.h"

#include <set>

#include "common/check.h"

namespace sbrs::codec {

EncoderOracle::EncoderOracle(CodecPtr codec, OpId op, Value value)
    : codec_(std::move(codec)), op_(op), value_(std::move(value)) {
  SBRS_CHECK(codec_ != nullptr);
  SBRS_CHECK(value_.bit_size() == codec_->data_bits());
}

TaggedBlock EncoderOracle::get(uint32_t index) const {
  return TaggedBlock{Source{op_, index}, codec_->encode_block(value_, index)};
}

std::vector<TaggedBlock> EncoderOracle::get_all() const {
  // Bulk path: one virtual encode() (single-pass for RsCodec) instead of n
  // independent encode_block calls, then tag each block with its source.
  std::vector<Block> blocks = codec_->encode(value_);
  std::vector<TaggedBlock> out;
  out.reserve(blocks.size());
  for (Block& b : blocks) {
    const uint32_t index = b.index;
    out.push_back(TaggedBlock{Source{op_, index}, std::move(b)});
  }
  return out;
}

DecoderOracle::DecoderOracle(CodecPtr codec, OpId op)
    : codec_(std::move(codec)), op_(op) {
  SBRS_CHECK(codec_ != nullptr);
}

void DecoderOracle::push(uint64_t group, const Block& block) {
  groups_[group].push_back(block);
}

std::optional<Value> DecoderOracle::done(uint64_t group) const {
  auto it = groups_.find(group);
  if (it == groups_.end()) return std::nullopt;
  return codec_->decode(it->second);
}

size_t DecoderOracle::group_size(uint64_t group) const {
  auto it = groups_.find(group);
  if (it == groups_.end()) return 0;
  std::set<uint32_t> distinct;
  for (const Block& b : it->second) distinct.insert(b.index);
  return distinct.size();
}

}  // namespace sbrs::codec
