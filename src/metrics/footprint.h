// Storage footprints: the unit of the paper's storage-cost accounting.
//
// Definition 2 counts the bits of code blocks stored at base objects and
// clients (including parameters of pending RMWs, i.e. "channels"), and
// explicitly excludes metadata and oracle state. A StorageFootprint is the
// list of block instances (with provenance, Definition 4) present in one
// component; the meter sums them across components.
#pragma once

#include <cstdint>
#include <vector>

#include "codec/oracle.h"
#include "common/ids.h"

namespace sbrs::metrics {

/// One stored block instance: which operation's oracle produced it
/// (source = <w, i>) and how many bits it occupies.
struct BlockInstance {
  codec::Source source;
  uint64_t bits = 0;
};

struct StorageFootprint {
  std::vector<BlockInstance> blocks;

  uint64_t total_bits() const {
    uint64_t sum = 0;
    for (const auto& b : blocks) sum += b.bits;
    return sum;
  }

  void add(const codec::TaggedBlock& tb) {
    blocks.push_back(BlockInstance{tb.source, tb.bit_size()});
  }

  void add(const codec::Source& source, uint64_t bits) {
    blocks.push_back(BlockInstance{source, bits});
  }

  void merge(const StorageFootprint& other) {
    blocks.insert(blocks.end(), other.blocks.begin(), other.blocks.end());
  }

  bool empty() const { return blocks.empty(); }
};

}  // namespace sbrs::metrics
