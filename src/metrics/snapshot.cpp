#include "metrics/snapshot.h"

#include <map>
#include <set>

namespace sbrs::metrics {

uint64_t StorageSnapshot::total_bits() const {
  uint64_t sum = 0;
  for (const auto& o : objects) sum += o.footprint.total_bits();
  for (const auto& c : clients) sum += c.footprint.total_bits();
  for (const auto& r : in_flight) sum += r.footprint.total_bits();
  return sum;
}

uint64_t StorageSnapshot::object_bits() const {
  uint64_t sum = 0;
  for (const auto& o : objects) sum += o.footprint.total_bits();
  return sum;
}

uint64_t StorageSnapshot::channel_bits() const {
  uint64_t sum = 0;
  for (const auto& r : in_flight) sum += r.footprint.total_bits();
  return sum;
}

uint64_t StorageSnapshot::bits_at_object(ObjectId id) const {
  for (const auto& o : objects) {
    if (o.id == id) return o.footprint.total_bits();
  }
  return 0;
}

uint64_t StorageSnapshot::op_contribution_bits(
    OpId w, std::optional<ClientId> owner) const {
  // Distinct block numbers only: multiple copies of E(v, i) count once
  // (Definition 6 sums size(i) over the index *set*).
  std::map<uint32_t, uint64_t> index_bits;
  auto scan = [&](const StorageFootprint& fp) {
    for (const auto& b : fp.blocks) {
      if (b.source.op == w) index_bits[b.source.index] = b.bits;
    }
  };
  for (const auto& o : objects) scan(o.footprint);
  for (const auto& c : clients) {
    if (owner.has_value() && c.id == *owner) continue;
    scan(c.footprint);
  }
  for (const auto& r : in_flight) {
    // Pending-RMW parameters are part of the triggering client's state.
    if (owner.has_value() && r.client == *owner) continue;
    scan(r.footprint);
  }
  uint64_t sum = 0;
  for (const auto& [idx, bits] : index_bits) sum += bits;
  return sum;
}

size_t StorageSnapshot::op_distinct_blocks_at_objects(OpId w) const {
  std::set<uint32_t> indices;
  for (const auto& o : objects) {
    for (const auto& b : o.footprint.blocks) {
      if (b.source.op == w) indices.insert(b.source.index);
    }
  }
  return indices.size();
}

}  // namespace sbrs::metrics
