// A point-in-time view of all storage in the system, used both by the
// storage meter (Definition 2 cost) and by the lower-bound adversary
// (Definition 6 per-operation contributions and the frozen set F(t)).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/ids.h"
#include "metrics/footprint.h"

namespace sbrs::metrics {

struct StorageSnapshot {
  struct ObjectEntry {
    ObjectId id;
    bool alive = true;
    StorageFootprint footprint;
  };
  struct ClientEntry {
    ClientId id;
    bool alive = true;
    StorageFootprint footprint;
  };
  /// Parameters of a pending RMW (blocks riding in a channel). Attributed
  /// to the triggering client per the paper's state definition.
  struct InFlightEntry {
    RmwId rmw;
    ClientId client;
    ObjectId target;
    OpId op;
    StorageFootprint footprint;
  };

  uint64_t time = 0;
  std::vector<ObjectEntry> objects;
  std::vector<ClientEntry> clients;
  std::vector<InFlightEntry> in_flight;

  /// Definition 2: total bits across base objects, clients, and channels.
  uint64_t total_bits() const;

  /// Total bits at base objects only — the accounting used by the paper's
  /// own upper-bound analysis (Appendix D, Lemmas 6-8).
  uint64_t object_bits() const;

  /// Bits currently riding in channels (pending-RMW parameters).
  uint64_t channel_bits() const;

  /// Bits stored at one base object (used for the frozen set F_l(t)).
  uint64_t bits_at_object(ObjectId id) const;

  /// Definition 6: ||S(t, w)|| — the sum of size(i) over *distinct* block
  /// numbers i of blocks sourced from operation `w` that are stored
  /// anywhere except at the client `owner` performing w (whose own blocks,
  /// including its pending-RMW parameters, are excluded).
  uint64_t op_contribution_bits(OpId w, std::optional<ClientId> owner) const;

  /// Number of distinct block indices from op `w` stored at base objects.
  size_t op_distinct_blocks_at_objects(OpId w) const;
};

}  // namespace sbrs::metrics
