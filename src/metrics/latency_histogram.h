// Log-bucketed latency histogram (HDR-histogram style).
//
// Records non-negative integer values (the store measures operation latency
// in simulator steps) into log-linear buckets: values below 2^precision_bits
// land in exact unit buckets; above that, each power-of-two range is split
// into 2^precision_bits sub-buckets, bounding the relative quantization
// error by 2^-precision_bits. Histograms with equal precision are mergeable
// by bucket-wise addition, which is how per-shard store results roll up into
// one tail-latency view — merge(a, b) is exactly the histogram of the
// concatenated samples.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sbrs::metrics {

/// What one recorded latency value means. The simulator measures in logical
/// steps, the threaded runtime backend in wall-clock nanoseconds; the unit
/// rides with the histogram through merges and exports so a steps table is
/// never read as a nanoseconds table (or summed into one).
enum class LatencyUnit {
  kSteps,  // logical simulator steps
  kNanos,  // wall-clock nanoseconds (steady_clock)
};

const char* to_string(LatencyUnit u);

/// Short unit suffix used in export keys and table headers: "steps" / "ns".
const char* unit_suffix(LatencyUnit u);

class LatencyHistogram {
 public:
  /// Default precision: 128 sub-buckets per octave, <0.8% relative error.
  static constexpr uint32_t kDefaultPrecisionBits = 7;

  explicit LatencyHistogram(uint32_t precision_bits = kDefaultPrecisionBits,
                            LatencyUnit unit = LatencyUnit::kSteps);
  explicit LatencyHistogram(LatencyUnit unit)
      : LatencyHistogram(kDefaultPrecisionBits, unit) {}

  void record(uint64_t value);

  /// Bucket-wise merge; requires equal precision_bits (checked). An empty
  /// histogram adopts the other side's unit (so default-constructed
  /// accumulators work for either backend); merging two non-empty
  /// histograms of different units is a unit error (checked).
  void merge(const LatencyHistogram& other);

  uint64_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double mean() const {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / count_;
  }

  /// Value at quantile q in [0, 1] by the nearest-rank method on the bucket
  /// cumulative counts. Returns the highest value mapping to the selected
  /// bucket (exact for values < 2^precision_bits), clamped to the true
  /// recorded max; 0 on an empty histogram.
  uint64_t percentile(double q) const;

  uint64_t p50() const { return percentile(0.50); }
  uint64_t p90() const { return percentile(0.90); }
  uint64_t p99() const { return percentile(0.99); }
  uint64_t p999() const { return percentile(0.999); }

  uint32_t precision_bits() const { return precision_bits_; }
  LatencyUnit unit() const { return unit_; }
  const std::vector<uint64_t>& counts() const { return counts_; }

  // --- Bucket geometry (exposed for tests) ---

  /// Index of the bucket `value` falls into.
  static size_t bucket_index(uint64_t value, uint32_t precision_bits);
  /// Smallest / largest value mapping to bucket `index`.
  static uint64_t bucket_lower(size_t index, uint32_t precision_bits);
  static uint64_t bucket_upper(size_t index, uint32_t precision_bits);

  friend bool operator==(const LatencyHistogram& a, const LatencyHistogram& b);

 private:
  uint32_t precision_bits_;
  LatencyUnit unit_ = LatencyUnit::kSteps;
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = 0;
  uint64_t max_ = 0;
  std::vector<uint64_t> counts_;  // grows on demand, trailing zeros trimmed
};

bool operator==(const LatencyHistogram& a, const LatencyHistogram& b);

}  // namespace sbrs::metrics
