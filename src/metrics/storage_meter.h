// Continuous storage-cost measurement over a run.
//
// The meter keeps the maxima that the paper's Definition 2 cares about ("the
// maximum storage cost at any point t in any run"), plus a decimated time
// series for the benchmark plots.
//
// Observations arrive in one of two forms:
//   - the O(1) component-totals form fed by the simulator's incremental
//     accounting (the hot path), or
//   - a full StorageSnapshot (used by tests and by the debug cross-check).
// Both produce bit-identical maxima and series entries for the same run.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "metrics/snapshot.h"

namespace sbrs::metrics {

/// Shared default decimation for the storage time series, used by both the
/// simulator's SimConfig and the harness's RunOptions so the two layers
/// cannot drift apart. Decimation only thins the *series*; the maxima are
/// updated on every observation and are always exact.
inline constexpr uint64_t kDefaultSampleEvery = 16;

struct StorageSample {
  uint64_t time = 0;
  uint64_t total_bits = 0;    // Definition 2 (objects + clients + channels)
  uint64_t object_bits = 0;   // base objects only (paper's Appendix D view)
  uint64_t channel_bits = 0;  // pending-RMW parameters
};

class StorageMeter {
 public:
  /// Record a sample every `sample_every` events (1 = every event). The
  /// maxima are updated on every observation regardless of decimation.
  explicit StorageMeter(uint64_t sample_every = 1)
      : sample_every_(sample_every == 0 ? 1 : sample_every) {}

  /// O(1) observation from pre-summed component totals (the simulator's
  /// incremental accounting path). `client_bits` is storage held in client
  /// algorithm state; total = object + client + channel.
  void observe(uint64_t time, uint64_t object_bits, uint64_t client_bits,
               uint64_t channel_bits);

  /// Observation from a full snapshot; sums the components and delegates.
  void observe(const StorageSnapshot& snap);

  uint64_t max_total_bits() const { return max_total_; }
  uint64_t max_object_bits() const { return max_object_; }
  uint64_t max_channel_bits() const { return max_channel_; }
  uint64_t last_total_bits() const { return last_.total_bits; }
  uint64_t last_object_bits() const { return last_.object_bits; }
  uint64_t observations() const { return observations_; }

  const std::vector<StorageSample>& series() const { return series_; }

  /// Time at which the object-storage maximum was (first) reached.
  uint64_t max_object_time() const { return max_object_time_; }

 private:
  uint64_t sample_every_;
  uint64_t observations_ = 0;
  uint64_t max_total_ = 0;
  uint64_t max_object_ = 0;
  uint64_t max_channel_ = 0;
  uint64_t max_object_time_ = 0;
  StorageSample last_{};
  std::vector<StorageSample> series_;
};

}  // namespace sbrs::metrics
