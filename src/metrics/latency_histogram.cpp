#include "metrics/latency_histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/check.h"

namespace sbrs::metrics {

const char* to_string(LatencyUnit u) {
  switch (u) {
    case LatencyUnit::kSteps:
      return "steps";
    case LatencyUnit::kNanos:
      return "nanoseconds";
  }
  return "?";
}

const char* unit_suffix(LatencyUnit u) {
  switch (u) {
    case LatencyUnit::kSteps:
      return "steps";
    case LatencyUnit::kNanos:
      return "ns";
  }
  return "?";
}

LatencyHistogram::LatencyHistogram(uint32_t precision_bits, LatencyUnit unit)
    : precision_bits_(precision_bits), unit_(unit) {
  SBRS_CHECK_MSG(precision_bits >= 1 && precision_bits <= 16,
                 "latency histogram precision out of range");
}

size_t LatencyHistogram::bucket_index(uint64_t value,
                                      uint32_t precision_bits) {
  const uint64_t m = uint64_t{1} << precision_bits;
  if (value < m) return static_cast<size_t>(value);
  // exponent e: 2^e <= value < 2^(e+1), e >= precision_bits. The top
  // precision_bits bits below the leading one select the sub-bucket, so each
  // octave contributes 2^precision_bits buckets and the scheme is continuous
  // with the unit-bucket range (group 1 is exact too: shift == 0).
  const uint32_t e = 63 - static_cast<uint32_t>(std::countl_zero(value));
  const uint32_t group = e - precision_bits + 1;
  const uint64_t sub = (value >> (e - precision_bits)) - m;
  return static_cast<size_t>(group) * static_cast<size_t>(m) +
         static_cast<size_t>(sub);
}

uint64_t LatencyHistogram::bucket_lower(size_t index, uint32_t precision_bits) {
  const uint64_t m = uint64_t{1} << precision_bits;
  const uint64_t group = index >> precision_bits;
  if (group == 0) return index;
  const uint64_t sub = index & (m - 1);
  const uint32_t shift = static_cast<uint32_t>(group - 1);
  return (m + sub) << shift;
}

uint64_t LatencyHistogram::bucket_upper(size_t index, uint32_t precision_bits) {
  const uint64_t group = index >> precision_bits;
  if (group == 0) return index;
  const uint32_t shift = static_cast<uint32_t>(group - 1);
  return bucket_lower(index, precision_bits) + ((uint64_t{1} << shift) - 1);
}

void LatencyHistogram::record(uint64_t value) {
  const size_t idx = bucket_index(value, precision_bits_);
  if (idx >= counts_.size()) counts_.resize(idx + 1, 0);
  ++counts_[idx];
  if (count_ == 0 || value < min_) min_ = value;
  if (value > max_) max_ = value;
  sum_ += value;
  ++count_;
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  SBRS_CHECK_MSG(precision_bits_ == other.precision_bits_,
                 "merging latency histograms of different precision");
  if (other.count_ == 0) return;
  if (count_ == 0) {
    unit_ = other.unit_;  // empty accumulator adopts the incoming unit
  } else {
    SBRS_CHECK_MSG(unit_ == other.unit_,
                   "merging latency histograms of different units");
  }
  if (other.counts_.size() > counts_.size()) {
    counts_.resize(other.counts_.size(), 0);
  }
  for (size_t i = 0; i < other.counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
  count_ += other.count_;
}

uint64_t LatencyHistogram::percentile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank: the smallest value with cumulative count >= ceil(q * N).
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(q * static_cast<double>(count_))));
  uint64_t cum = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    cum += counts_[i];
    if (cum >= rank) {
      return std::min(bucket_upper(i, precision_bits_), max_);
    }
  }
  return max_;
}

bool operator==(const LatencyHistogram& a, const LatencyHistogram& b) {
  if (a.precision_bits_ != b.precision_bits_ || a.count_ != b.count_ ||
      a.sum_ != b.sum_ || a.min() != b.min() || a.max_ != b.max_) {
    return false;
  }
  // Unit is content only once there is content: two empty histograms are
  // equal whatever their declared units (an empty accumulator has not
  // committed to one yet — see merge()).
  if (a.count_ != 0 && a.unit_ != b.unit_) return false;
  // Trailing zero buckets are representation noise, not content.
  const size_t n = std::max(a.counts_.size(), b.counts_.size());
  for (size_t i = 0; i < n; ++i) {
    const uint64_t ca = i < a.counts_.size() ? a.counts_[i] : 0;
    const uint64_t cb = i < b.counts_.size() ? b.counts_[i] : 0;
    if (ca != cb) return false;
  }
  return true;
}

}  // namespace sbrs::metrics
