#include "metrics/storage_meter.h"

namespace sbrs::metrics {

void StorageMeter::observe(const StorageSnapshot& snap) {
  StorageSample s;
  s.time = snap.time;
  s.object_bits = snap.object_bits();
  s.channel_bits = snap.channel_bits();
  s.total_bits = snap.total_bits();

  if (s.total_bits > max_total_) max_total_ = s.total_bits;
  if (s.object_bits > max_object_) {
    max_object_ = s.object_bits;
    max_object_time_ = s.time;
  }
  if (s.channel_bits > max_channel_) max_channel_ = s.channel_bits;
  last_ = s;

  if (observations_ % sample_every_ == 0) {
    series_.push_back(s);
  }
  ++observations_;
}

}  // namespace sbrs::metrics
