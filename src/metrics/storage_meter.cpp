#include "metrics/storage_meter.h"

namespace sbrs::metrics {

void StorageMeter::observe(uint64_t time, uint64_t object_bits,
                           uint64_t client_bits, uint64_t channel_bits) {
  StorageSample s;
  s.time = time;
  s.object_bits = object_bits;
  s.channel_bits = channel_bits;
  s.total_bits = object_bits + client_bits + channel_bits;

  if (s.total_bits > max_total_) max_total_ = s.total_bits;
  if (s.object_bits > max_object_) {
    max_object_ = s.object_bits;
    max_object_time_ = s.time;
  }
  if (s.channel_bits > max_channel_) max_channel_ = s.channel_bits;
  last_ = s;

  if (observations_ % sample_every_ == 0) {
    series_.push_back(s);
  }
  ++observations_;
}

void StorageMeter::observe(const StorageSnapshot& snap) {
  uint64_t client_bits = 0;
  for (const auto& c : snap.clients) client_bits += c.footprint.total_bits();
  observe(snap.time, snap.object_bits(), client_bits, snap.channel_bits());
}

}  // namespace sbrs::metrics
