// Workloads: the sequence of high-level operations each client performs.
//
// The write-concurrency level c of the paper is realized structurally: a
// workload with c writer clients (each with at most one outstanding
// operation, enforced by well-formedness) yields runs with at most c
// concurrent writes.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "common/value.h"
#include "sim/arrival.h"
#include "sim/types.h"

namespace sbrs::sim {

class Workload {
 public:
  virtual ~Workload() = default;

  /// True if client `c` has at least one more operation to invoke *now*
  /// (open-loop workloads expose only operations whose arrival step has
  /// been released by advance_to).
  virtual bool has_more(ClientId c) const = 0;

  /// Produce client `c`'s next operation, stamped with the simulator-
  /// assigned OpId. Called only when has_more(c).
  virtual Invocation next(ClientId c, OpId id) = 0;

  /// Advance the workload's arrival clock to simulator time `now`,
  /// releasing every operation whose arrival step is <= now. The simulator
  /// calls this at the top of each step; closed-loop workloads ignore it.
  virtual void advance_to(uint64_t now) { (void)now; }

  /// Earliest not-yet-released arrival step, if any. When nothing is
  /// schedulable but a future arrival exists, the simulator fast-forwards
  /// its logical clock to it instead of stopping.
  virtual std::optional<uint64_t> next_arrival() const { return std::nullopt; }

  /// Current released-but-undispatched queue depth (the trace layer's
  /// per-step counter registry samples this). Closed-loop workloads have no
  /// queue: 0.
  virtual uint64_t queue_depth() const { return 0; }

  /// Operations not yet handed to a session — queued now or arriving later
  /// (the open-loop saturation backlog). Closed-loop: 0.
  virtual uint64_t backlog() const { return 0; }
};

/// Each of the first `writers` clients performs `writes_per_client`
/// write operations (with globally distinct values derived from the OpId);
/// the following `readers` clients perform `reads_per_client` reads.
class UniformWorkload final : public Workload {
 public:
  struct Options {
    uint32_t writers = 1;
    uint32_t writes_per_client = 1;
    uint32_t readers = 0;
    uint32_t reads_per_client = 1;
    uint64_t data_bits = 256;
  };

  explicit UniformWorkload(Options opts) : opts_(opts) {}

  bool has_more(ClientId c) const override;
  Invocation next(ClientId c, OpId id) override;

  uint32_t num_clients() const { return opts_.writers + opts_.readers; }
  const Options& options() const { return opts_; }

 private:
  Options opts_;
  std::vector<uint32_t> issued_;  // per-client issued count (lazily sized)
  uint32_t issued_for(ClientId c) const;
};

/// A fully scripted operation list (used by unit tests to pin down exact
/// interleavings). Operations are dealt per-client in list order.
class ScriptedWorkload final : public Workload {
 public:
  struct Step {
    ClientId client;
    OpKind kind = OpKind::kRead;
    Value value;  // for writes
  };

  explicit ScriptedWorkload(std::vector<Step> steps)
      : steps_(std::move(steps)) {}

  bool has_more(ClientId c) const override;
  Invocation next(ClientId c, OpId id) override;

 private:
  std::vector<Step> steps_;
  std::vector<bool> consumed_ = {};
};

/// Open-loop workload for the register harness: a single arrival-ordered
/// stream of `write_ops + read_ops` operations (kinds interleaved
/// proportionally, write values tagged by OpId), released at the arrival
/// steps supplied by sim::generate_arrivals and dispatched to ANY free
/// client slot — in open loop the writer/reader split dissolves into a pool
/// of server sessions draining one queue. Tracks the queue-depth maximum
/// and the not-yet-dispatched backlog for saturation detection.
class OpenLoopWorkload final : public Workload {
 public:
  struct Options {
    uint32_t clients = 4;  // dispatch slots; any free slot serves the queue
    uint32_t write_ops = 0;
    uint32_t read_ops = 0;
    uint64_t data_bits = 256;
  };

  /// `arrivals` has one nondecreasing arrival step per operation
  /// (write_ops + read_ops entries).
  OpenLoopWorkload(Options opts, std::vector<uint64_t> arrivals);

  bool has_more(ClientId c) const override;
  Invocation next(ClientId c, OpId id) override;
  void advance_to(uint64_t now) override;
  std::optional<uint64_t> next_arrival() const override;
  uint64_t queue_depth() const override { return queue_.depth(); }
  uint64_t backlog() const override { return queue_.undispatched(); }

  /// Largest number of released-but-undispatched operations ever queued.
  uint64_t max_queue_depth() const { return queue_.max_queue_depth(); }
  /// Operations not yet handed to a client (queued now or arriving later).
  size_t undispatched() const { return queue_.undispatched(); }
  /// ArrivalQueue::saturated over this run's session pool.
  bool saturated(bool hit_step_limit) const {
    return queue_.saturated(opts_.clients, hit_step_limit);
  }

 private:
  bool is_write(size_t index) const;

  Options opts_;
  ArrivalQueue<size_t> queue_;  // payload: global op index (kind selection)
};

/// Mixed read/write workload with a seeded RNG: every client flips a coin
/// per operation. Used by property tests for schedule diversity.
class MixedWorkload final : public Workload {
 public:
  struct Options {
    uint32_t clients = 4;
    uint32_t ops_per_client = 4;
    /// Probability numerator (out of 100) that an op is a write.
    uint32_t write_percent = 50;
    uint64_t data_bits = 256;
    uint64_t seed = 7;
  };

  explicit MixedWorkload(Options opts) : opts_(opts), rng_(opts.seed) {}

  bool has_more(ClientId c) const override;
  Invocation next(ClientId c, OpId id) override;

 private:
  Options opts_;
  Rng rng_;
  std::vector<uint32_t> issued_;
  uint32_t issued_for(ClientId c) const;
};

}  // namespace sbrs::sim
