#include "sim/schedulers.h"

#include "sim/simulator.h"

namespace sbrs::sim {

Action RandomScheduler::next(const Simulator& sim) {
  // Crash recovery first: restarts are considered before new crashes so a
  // due restart is never starved by the crash budget. The whole block is
  // gated on max_object_restarts, keeping pre-recovery seeds' schedules
  // byte-identical (in particular, no RNG draw is taken unless the
  // probabilistic restart knob is on).
  if (object_restarts_ < opts_.max_object_restarts &&
      (opts_.restart_after > 0 || opts_.restart_object_permyriad > 0)) {
    if (crash_seen_.size() < sim.num_objects()) {
      crash_seen_.resize(sim.num_objects(), 0);
    }
    for (uint32_t i = 0; i < sim.num_objects(); ++i) {
      if (!sim.object_alive(ObjectId{i})) {
        if (crash_seen_[i] == 0) crash_seen_[i] = sim.now() + 1;
      } else {
        crash_seen_[i] = 0;
      }
    }
    if (opts_.restart_after > 0) {
      for (uint32_t i = 0; i < sim.num_objects(); ++i) {
        if (crash_seen_[i] != 0 &&
            sim.now() + 1 >= crash_seen_[i] + opts_.restart_after) {
          ++object_restarts_;
          return Action::restart_object(ObjectId{i}, opts_.restart_mode);
        }
      }
    }
    if (opts_.restart_object_permyriad > 0 &&
        rng_.below(10'000) < opts_.restart_object_permyriad) {
      std::vector<ObjectId> dead;
      for (uint32_t i = 0; i < sim.num_objects(); ++i) {
        if (!sim.object_alive(ObjectId{i})) dead.push_back(ObjectId{i});
      }
      if (!dead.empty()) {
        ++object_restarts_;
        return Action::restart_object(dead[rng_.pick_index(dead)],
                                      opts_.restart_mode);
      }
    }
  }

  // Crash injection next (bounded, probabilistic).
  if (object_crashes_ < opts_.max_object_crashes &&
      opts_.crash_object_permyriad > 0 &&
      rng_.below(10'000) < opts_.crash_object_permyriad) {
    // Pick a live object uniformly.
    std::vector<ObjectId> live;
    for (uint32_t i = 0; i < sim.num_objects(); ++i) {
      if (sim.object_alive(ObjectId{i})) live.push_back(ObjectId{i});
    }
    if (!live.empty()) {
      ++object_crashes_;
      return Action::crash_object(live[rng_.pick_index(live)]);
    }
  }
  if (client_crashes_ < opts_.max_client_crashes &&
      opts_.crash_client_permyriad > 0 &&
      rng_.below(10'000) < opts_.crash_client_permyriad) {
    std::vector<ClientId> live;
    for (uint32_t i = 0; i < sim.num_clients(); ++i) {
      if (sim.client_alive(ClientId{i})) live.push_back(ClientId{i});
    }
    if (!live.empty()) {
      ++client_crashes_;
      return Action::crash_client(live[rng_.pick_index(live)]);
    }
  }

  // Deliverable RMWs: those targeting live objects. RMWs to crashed objects
  // are eventually dropped; we deliver them too (delivery = drop) so the
  // pending queue drains, but deprioritize nothing — uniform choice.
  const auto& pending = sim.pending();
  const auto ready = sim.invocable_clients();

  const bool can_deliver = !pending.empty();
  const bool can_invoke = !ready.empty();
  if (!can_deliver && !can_invoke) return Action::stop();

  uint64_t w_deliver = can_deliver ? opts_.deliver_weight : 0;
  uint64_t w_invoke = can_invoke ? opts_.invoke_weight : 0;
  const uint64_t total = w_deliver + w_invoke;
  if (rng_.below(total) < w_deliver) {
    const size_t i = static_cast<size_t>(rng_.below(pending.size()));
    return Action::deliver(pending[i].id);
  }
  return Action::invoke(ready[rng_.pick_index(ready)]);
}

Action RoundRobinScheduler::next(const Simulator& sim) {
  const auto ready = sim.invocable_clients();
  const bool invoke_turn =
      !ready.empty() &&
      (sim.pending().empty() || deliveries_ % invoke_every_ == 0);
  if (invoke_turn) {
    ++deliveries_;  // advance the interleave counter on invocations too
    // Rotate through clients for fairness.
    for (size_t attempt = 0; attempt < ready.size(); ++attempt) {
      const ClientId c = ready[(next_client_ + attempt) % ready.size()];
      next_client_ = (next_client_ + attempt + 1) %
                     std::max<size_t>(ready.size(), 1);
      return Action::invoke(c);
    }
  }
  if (!sim.pending().empty()) {
    ++deliveries_;
    return Action::deliver(sim.pending().front().id);
  }
  if (!ready.empty()) {
    return Action::invoke(ready.front());
  }
  return Action::stop();
}

Action BurstScheduler::next(const Simulator& sim) {
  const auto ready = sim.invocable_clients();
  if (!ready.empty()) return Action::invoke(ready.front());
  if (!sim.pending().empty()) return Action::deliver(sim.pending().front().id);
  return Action::stop();
}

}  // namespace sbrs::sim
