#include "sim/schedulers.h"

#include <algorithm>

#include "sim/simulator.h"

namespace sbrs::sim {

void RandomScheduler::observe_crashes(const Simulator& sim) {
  if (crash_seen_.size() < sim.num_objects()) {
    crash_seen_.resize(sim.num_objects(), 0);
  }
  for (uint32_t i = 0; i < sim.num_objects(); ++i) {
    if (!sim.object_alive(ObjectId{i})) {
      if (crash_seen_[i] == 0) crash_seen_[i] = sim.now() + 1;
    } else {
      crash_seen_[i] = 0;
    }
  }
}

void RandomScheduler::observe_repair(const Simulator& sim) {
  if (repair_due_.size() < sim.num_objects()) {
    repair_due_.resize(sim.num_objects(), 0);
  }
  for (uint32_t i = 0; i < sim.num_objects(); ++i) {
    if (sim.object_repairing(ObjectId{i})) {
      if (repair_due_[i] == 0) repair_due_[i] = sim.now() + opts_.repair_every;
    } else {
      repair_due_[i] = 0;  // window closed (or object crashed again)
    }
  }
}

std::optional<uint64_t> RandomScheduler::next_wakeup(const Simulator& sim) {
  // Only the deterministic restart delay and the anti-entropy pump yield
  // wakeups: a probabilistic restart needs steps to happen, and partitions
  // auto-heal through the fault table's own deadline. No RNG draws here,
  // ever.
  std::optional<uint64_t> due;
  if (object_restarts_ < opts_.max_object_restarts &&
      opts_.restart_after > 0) {
    observe_crashes(sim);
    for (uint32_t i = 0; i < crash_seen_.size(); ++i) {
      if (crash_seen_[i] == 0) continue;
      // next() fires the restart once now + 1 >= seen + restart_after.
      const uint64_t t = crash_seen_[i] + opts_.restart_after - 1;
      if (!due.has_value() || t < *due) due = t;
    }
  }
  if (opts_.repair_every > 0 && sim.repair_budget_left()) {
    observe_repair(sim);
    for (uint32_t i = 0; i < repair_due_.size(); ++i) {
      if (repair_due_[i] == 0) continue;
      if (!due.has_value() || repair_due_[i] < *due) due = repair_due_[i];
    }
  }
  return due;
}

Action RandomScheduler::next(const Simulator& sim) {
  // An asymmetric partition in progress dribbles its remaining link cuts
  // first, one action per step.
  if (!queued_.empty()) {
    Action a = queued_.front();
    queued_.pop_front();
    return a;
  }

  // Crash recovery next: restarts are considered before new crashes so a
  // due restart is never starved by the crash budget. The whole block is
  // gated on max_object_restarts, keeping pre-recovery seeds' schedules
  // byte-identical (in particular, no RNG draw is taken unless the
  // probabilistic restart knob is on).
  if (object_restarts_ < opts_.max_object_restarts &&
      (opts_.restart_after > 0 || opts_.restart_object_permyriad > 0)) {
    observe_crashes(sim);
    if (opts_.restart_after > 0) {
      for (uint32_t i = 0; i < sim.num_objects(); ++i) {
        if (crash_seen_[i] != 0 &&
            sim.now() + 1 >= crash_seen_[i] + opts_.restart_after) {
          ++object_restarts_;
          return Action::restart_object(ObjectId{i}, opts_.restart_mode);
        }
      }
    }
    if (opts_.restart_object_permyriad > 0 &&
        rng_.below(10'000) < opts_.restart_object_permyriad) {
      std::vector<ObjectId> dead;
      for (uint32_t i = 0; i < sim.num_objects(); ++i) {
        if (!sim.object_alive(ObjectId{i})) dead.push_back(ObjectId{i});
      }
      if (!dead.empty()) {
        ++object_restarts_;
        return Action::restart_object(dead[rng_.pick_index(dead)],
                                      opts_.restart_mode);
      }
    }
  }

  // Anti-entropy pump: one repair push per repairing object every
  // repair_every steps, budget permitting. Fully gated (zero bookkeeping,
  // zero RNG draws when off) so repair-free seeds keep their schedules.
  if (opts_.repair_every > 0) {
    observe_repair(sim);
    for (uint32_t i = 0; i < sim.num_objects(); ++i) {
      if (repair_due_[i] != 0 && sim.now() >= repair_due_[i] &&
          sim.repair_budget_left()) {
        repair_due_[i] = sim.now() + opts_.repair_every;  // re-arm
        return Action::repair_object(ObjectId{i});
      }
    }
  }

  // Crash injection next (bounded, probabilistic).
  if (object_crashes_ < opts_.max_object_crashes &&
      opts_.crash_object_permyriad > 0 &&
      rng_.below(10'000) < opts_.crash_object_permyriad) {
    // Pick a live object uniformly.
    std::vector<ObjectId> live;
    for (uint32_t i = 0; i < sim.num_objects(); ++i) {
      if (sim.object_alive(ObjectId{i})) live.push_back(ObjectId{i});
    }
    if (!live.empty()) {
      ++object_crashes_;
      return Action::crash_object(live[rng_.pick_index(live)]);
    }
  }
  if (client_crashes_ < opts_.max_client_crashes &&
      opts_.crash_client_permyriad > 0 &&
      rng_.below(10'000) < opts_.crash_client_permyriad) {
    std::vector<ClientId> live;
    for (uint32_t i = 0; i < sim.num_clients(); ++i) {
      if (sim.client_alive(ClientId{i})) live.push_back(ClientId{i});
    }
    if (!live.empty()) {
      ++client_crashes_;
      return Action::crash_client(live[rng_.pick_index(live)]);
    }
  }

  // Link partitions (bounded, probabilistic; gated like the crash knobs).
  if (partitions_ < opts_.max_partitions && opts_.partition_permyriad > 0 &&
      rng_.below(10'000) < opts_.partition_permyriad) {
    ++partitions_;
    const ObjectId o{static_cast<uint32_t>(rng_.below(sim.num_objects()))};
    if (sim.num_clients() < 2 || rng_.below(2) == 0) {
      // Symmetric: the object drops off the network for everyone.
      return Action::partition_object(o, opts_.partition_heal_after);
    }
    // Asymmetric: a strict subset of clients loses the object — the
    // reachability split that stresses quorum intersection. One link cut
    // per step, the rest queued.
    const uint32_t k =
        static_cast<uint32_t>(1 + rng_.below(sim.num_clients() - 1));
    std::vector<ClientId> cs;
    cs.reserve(sim.num_clients());
    for (uint32_t i = 0; i < sim.num_clients(); ++i) cs.push_back(ClientId{i});
    rng_.shuffle(cs);
    for (uint32_t i = 0; i < k; ++i) {
      queued_.push_back(
          Action::partition_link(cs[i], o, opts_.partition_heal_after));
    }
    Action a = queued_.front();
    queued_.pop_front();
    return a;
  }

  // Deliverable RMWs: those targeting live objects. RMWs to crashed objects
  // are eventually dropped; we deliver them too (delivery = drop) so the
  // pending queue drains, but deprioritize nothing — uniform choice. Under
  // link faults the pick is filtered to deliverable RMWs; while no fault is
  // active the filtered and unfiltered paths take identical draws and pick
  // identical RMWs, so engaging the fault layer never perturbs a schedule.
  const auto& pending = sim.pending();
  const auto ready = sim.invocable_clients();

  const bool fault_aware =
      opts_.max_partitions > 0 || sim.link_fault_mode();
  std::vector<RmwId> deliverable;
  bool can_deliver;
  if (fault_aware) {
    deliverable.reserve(pending.size());
    for (const auto& p : pending) {
      if (sim.rmw_deliverable(p)) deliverable.push_back(p.id);
    }
    can_deliver = !deliverable.empty();
  } else {
    can_deliver = !pending.empty();
  }
  const bool can_invoke = !ready.empty();
  if (!can_deliver && !can_invoke) return Action::stop();

  uint64_t w_deliver = can_deliver ? opts_.deliver_weight : 0;
  uint64_t w_invoke = can_invoke ? opts_.invoke_weight : 0;
  const uint64_t total = w_deliver + w_invoke;
  if (rng_.below(total) < w_deliver) {
    if (fault_aware) {
      return Action::deliver(deliverable[rng_.pick_index(deliverable)]);
    }
    const size_t i = static_cast<size_t>(rng_.below(pending.size()));
    return Action::deliver(pending[i].id);
  }
  return Action::invoke(ready[rng_.pick_index(ready)]);
}

Action RoundRobinScheduler::next(const Simulator& sim) {
  const auto ready = sim.invocable_clients();
  const bool invoke_turn =
      !ready.empty() &&
      (sim.pending().empty() || deliveries_ % invoke_every_ == 0);
  if (invoke_turn) {
    ++deliveries_;  // advance the interleave counter on invocations too
    // Rotate through clients for fairness.
    for (size_t attempt = 0; attempt < ready.size(); ++attempt) {
      const ClientId c = ready[(next_client_ + attempt) % ready.size()];
      next_client_ = (next_client_ + attempt + 1) %
                     std::max<size_t>(ready.size(), 1);
      return Action::invoke(c);
    }
  }
  if (!sim.pending().empty()) {
    ++deliveries_;
    return Action::deliver(sim.pending().front().id);
  }
  if (!ready.empty()) {
    return Action::invoke(ready.front());
  }
  return Action::stop();
}

Action BurstScheduler::next(const Simulator& sim) {
  const auto ready = sim.invocable_clients();
  if (!ready.empty()) return Action::invoke(ready.front());
  if (!sim.pending().empty()) return Action::deliver(sim.pending().front().id);
  return Action::stop();
}

ScriptedFaultScheduler::ScriptedFaultScheduler(
    std::vector<FaultEvent> timeline, std::unique_ptr<Scheduler> inner)
    : timeline_(std::move(timeline)), inner_(std::move(inner)) {
  SBRS_CHECK(inner_ != nullptr);
  std::stable_sort(timeline_.begin(), timeline_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
}

Action ScriptedFaultScheduler::next(const Simulator& sim) {
  while (cursor_ < timeline_.size() && timeline_[cursor_].at <= sim.now()) {
    const FaultEvent& e = timeline_[cursor_++];
    const ObjectId o{e.object};
    const ClientId c{e.client};
    switch (e.kind) {
      case FaultEvent::Kind::kCrashObject:
        if (sim.object_alive(o)) return Action::crash_object(o);
        break;  // already down: skip, keep draining due events
      case FaultEvent::Kind::kRestartObject:
        if (!sim.object_alive(o)) return Action::restart_object(o, e.mode);
        break;
      case FaultEvent::Kind::kCrashClient:
        if (sim.client_alive(c)) return Action::crash_client(c);
        break;
      case FaultEvent::Kind::kPartitionLink:
        return Action::partition_link(c, o, e.heal_after);
      case FaultEvent::Kind::kPartitionObject:
        return Action::partition_object(o, e.heal_after);
      case FaultEvent::Kind::kHealLink:
        return Action::heal_link(c, o);
      case FaultEvent::Kind::kHealObject:
        return Action::heal_object(o);
      case FaultEvent::Kind::kHealAll:
        return Action::heal_all();
    }
  }
  return inner_->next(sim);
}

std::optional<uint64_t> ScriptedFaultScheduler::next_wakeup(
    const Simulator& sim) {
  std::optional<uint64_t> wake = inner_->next_wakeup(sim);
  if (cursor_ < timeline_.size() &&
      (!wake.has_value() || timeline_[cursor_].at < *wake)) {
    wake = timeline_[cursor_].at;
  }
  return wake;
}

}  // namespace sbrs::sim
