// Fair schedulers used by the liveness / consistency / storage-bound tests
// and benches. (The unfair lower-bound adversary Ad lives in src/adversary.)
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "sim/linkfault.h"
#include "sim/scheduler.h"

namespace sbrs::sim {

/// Seeded random scheduler: picks uniformly among the enabled actions
/// (deliver a random pending RMW / invoke at a random ready client), and
/// injects crashes according to its options. Fair with probability 1.
class RandomScheduler final : public Scheduler {
 public:
  struct Options {
    uint64_t seed = 1;
    /// Relative weight of delivering an RMW vs invoking an operation when
    /// both are possible. Higher delivery bias produces lower concurrency.
    uint32_t deliver_weight = 4;
    uint32_t invoke_weight = 1;
    /// Crash at most this many base objects, each with probability
    /// crash_object_percent per step (out of 10'000).
    uint32_t max_object_crashes = 0;
    uint32_t crash_object_permyriad = 0;
    /// Crash at most this many clients.
    uint32_t max_client_crashes = 0;
    uint32_t crash_client_permyriad = 0;
    /// Crash recovery: restart each crashed object `restart_after` steps
    /// after its crash was observed (0 = never), and/or restart a uniformly
    /// chosen crashed object with probability restart_object_permyriad per
    /// step. Both are bounded by max_object_restarts events and gated off
    /// entirely when that bound is 0, so crash-only seeds keep their exact
    /// pre-recovery schedules (no extra RNG draws are taken).
    uint64_t restart_after = 0;
    uint32_t restart_object_permyriad = 0;
    uint32_t max_object_restarts = 0;
    RestartMode restart_mode = RestartMode::kFromDisk;
    /// Link partitions: with probability partition_permyriad per step,
    /// partition a uniformly chosen object — symmetrically (every client's
    /// link) or asymmetrically (a strict client subset, dribbled out one
    /// link-cut action per step), a fair coin choosing which. At most
    /// max_partitions partition events; the whole block is gated on that
    /// bound like the crash knobs, so partition-free seeds keep their
    /// exact schedules. Each cut heals partition_heal_after steps later —
    /// keep it > 0, a never-healing cut can stall the run.
    uint32_t max_partitions = 0;
    uint32_t partition_permyriad = 0;
    uint64_t partition_heal_after = 0;
    /// Anti-entropy pump: while an object sits in its repair window, emit
    /// one kRepairObject action toward it every `repair_every` steps (the
    /// first push fires repair_every steps after the window is observed
    /// open, so a fresh write racing the restart still gets first shot).
    /// 0 disables the pump entirely — no bookkeeping, no RNG draws, no
    /// wakeups — so repair-free seeds keep their exact schedules. The
    /// pump stops early when the simulator's repair-bit budget is spent.
    uint64_t repair_every = 0;
  };

  explicit RandomScheduler(Options opts) : opts_(opts), rng_(opts.seed) {}

  Action next(const Simulator& sim) override;

  /// Earliest due deterministic restart (restart_after), so a stalled
  /// simulator fast-forwards to it instead of ending the run.
  std::optional<uint64_t> next_wakeup(const Simulator& sim) override;

 private:
  /// Update crash_seen_ from the simulator's current crash state (shared
  /// by next and next_wakeup; idempotent within a step).
  void observe_crashes(const Simulator& sim);

  Options opts_;
  Rng rng_;
  uint32_t object_crashes_ = 0;
  uint32_t client_crashes_ = 0;
  uint32_t object_restarts_ = 0;
  uint32_t partitions_ = 0;
  /// Remaining link-cut actions of an asymmetric partition in progress
  /// (emitted one per next() call before anything else).
  std::deque<Action> queued_;
  /// Step+1 at which each object was first observed crashed (0 = alive);
  /// drives the deterministic restart_after delay.
  std::vector<uint64_t> crash_seen_;
  /// Anti-entropy pump state (repair_every > 0 only): the step at which the
  /// next repair push toward each object is due (0 = window not open / no
  /// push scheduled).
  std::vector<uint64_t> repair_due_;

  /// Update repair_due_ from the simulator's current repair-window state
  /// (shared by next and next_wakeup; idempotent within a step; no RNG).
  void observe_repair(const Simulator& sim);
};

/// Wraps any scheduler with a scripted fault timeline: at the first step
/// at or past each event's `at`, the event becomes the matching Action
/// (one per step, in timeline order, no-op events — crashing a dead
/// object, restarting a live one — skipped); between due events the inner
/// scheduler chooses as usual. next_wakeup surfaces the next timeline
/// step so idle simulators fast-forward to scripted faults instead of
/// stopping. This is the execution engine of the declarative scenario
/// timelines (harness/scenario.h).
class ScriptedFaultScheduler final : public Scheduler {
 public:
  ScriptedFaultScheduler(std::vector<FaultEvent> timeline,
                         std::unique_ptr<Scheduler> inner);

  Action next(const Simulator& sim) override;
  std::string stop_reason() const override { return inner_->stop_reason(); }
  std::optional<uint64_t> next_wakeup(const Simulator& sim) override;

 private:
  std::vector<FaultEvent> timeline_;  // sorted by `at`, stable
  std::unique_ptr<Scheduler> inner_;
  size_t cursor_ = 0;
};

/// Deterministic near-synchronous scheduler: delivers pending RMWs FIFO,
/// interleaving one invocation every `invoke_every` deliveries. With
/// invoke_every == 1 it approximates lock-step rounds.
class RoundRobinScheduler final : public Scheduler {
 public:
  explicit RoundRobinScheduler(uint32_t invoke_every = 1)
      : invoke_every_(invoke_every == 0 ? 1 : invoke_every) {}

  Action next(const Simulator& sim) override;

 private:
  uint32_t invoke_every_;
  uint64_t deliveries_ = 0;
  uint32_t next_client_ = 0;
};

/// Invokes everything as early as possible, then delivers FIFO. Produces
/// maximum write concurrency; used by the storage-bound benches.
class BurstScheduler final : public Scheduler {
 public:
  BurstScheduler() = default;
  Action next(const Simulator& sim) override;
};

}  // namespace sbrs::sim
