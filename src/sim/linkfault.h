// Link-level fault injection between client-object pairs.
//
// The paper's adversary controls asynchrony completely; crash/restart of
// whole components (PR 5) is only the coarsest corner of that power. This
// layer adds the message-level faults that stress quorum intersection:
//
//   - partitions with heal: a link (client, object) or a whole object is
//     cut — RMWs across it stay triggered (and keep their Definition 2
//     channel bits) but are undeliverable until the link heals, either by
//     an explicit heal action or an auto-heal deadline;
//   - delay/jitter windows: a triggered RMW is stamped undeliverable
//     until step T = now + delay (+ uniform jitter);
//   - probabilistic drops: the request vanishes in the network (the
//     client protocol must survive on the remaining quorums);
//   - bounded reordering: a uniform per-RMW release offset in [0, W]
//     permutes delivery order even under FIFO schedulers, but never by
//     more than the window.
//
// All probabilistic draws come from a dedicated fault RNG stream
// (fault_seed, decorrelated from the schedule and arrival streams) and are
// taken only when a fault source is configured, so fault-free runs keep
// their recorded schedules and fingerprints byte-identical.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "sim/types.h"

namespace sbrs::sim {

/// Sentinel for "every object" in a FaultWindow.
inline constexpr uint32_t kAllObjects = UINT32_MAX;

/// One message-fault source, active over the half-open step interval
/// [from, until): each RMW triggered inside it (toward `object`, or any
/// object when kAllObjects) fires with probability permyriad / 10'000, at
/// most max_events times over the run.
struct FaultWindow {
  enum class Kind {
    kDrop,     // the request vanishes (never delivered, never responds)
    kDelay,    // undeliverable for `delay` + uniform[0, jitter] steps
    kReorder,  // undeliverable for uniform[0, delay] steps (bounded shuffle)
  };
  Kind kind = Kind::kDrop;
  uint64_t from = 0;
  uint64_t until = UINT64_MAX;
  uint32_t object = kAllObjects;
  uint32_t permyriad = 10'000;  // fire probability per triggered RMW
  /// kDelay: fixed extra steps; kReorder: the reorder bound W.
  uint64_t delay = 0;
  /// kDelay only: extra uniform draw in [0, jitter].
  uint64_t jitter = 0;
  uint64_t max_events = UINT64_MAX;
};

/// Configuration of the fault table. The scalar knobs are shorthand for
/// one run-wide window each (normalized at construction); `windows` holds
/// arbitrary further sources. Empty options == no fault source == zero RNG
/// draws, the guarantee fault-free artifacts rest on.
struct LinkFaultOptions {
  /// Drop each triggered RMW with this probability (out of 10'000), at
  /// most max_drops times. Keep total drops <= f for liveness: safety
  /// holds under arbitrary drops, but every quorum round must still find
  /// n - f responsive objects.
  uint32_t drop_permyriad = 0;
  uint64_t max_drops = UINT64_MAX;
  /// Delay each triggered RMW with probability delay_permyriad by
  /// delay_steps + uniform[0, delay_jitter] steps.
  uint32_t delay_permyriad = 0;
  uint64_t delay_steps = 0;
  uint64_t delay_jitter = 0;
  /// Bounded reordering: every triggered RMW gets a uniform release offset
  /// in [0, reorder_window] steps (0 = off).
  uint64_t reorder_window = 0;
  /// Seed of the dedicated fault RNG stream (derive via fault_seed so it
  /// never collides with the schedule or arrival streams).
  uint64_t seed = 1;
  std::vector<FaultWindow> windows;
};

/// One scripted fault-timeline entry, applied by ScriptedFaultScheduler at
/// the first step >= `at` (one simulator action per event). The scenario
/// parser (harness/scenario.h) builds these from JSON timelines.
struct FaultEvent {
  enum class Kind {
    kCrashObject,
    kRestartObject,
    kCrashClient,
    kPartitionLink,    // cut (client, object)
    kPartitionObject,  // cut every client's link to object
    kHealLink,
    kHealObject,
    kHealAll,
  };
  Kind kind = Kind::kCrashObject;
  uint64_t at = 0;
  uint32_t object = 0;
  uint32_t client = 0;
  /// Partitions: auto-heal this many steps after the cut (0 = only an
  /// explicit heal event re-opens the link).
  uint64_t heal_after = 0;
  RestartMode mode = RestartMode::kFromDisk;  // kRestartObject only
};

/// A (client, object) link, as reported by the cut/heal mutators so the
/// simulator can record exactly the transitions that happened.
struct Link {
  ClientId client;
  ObjectId object;
};

/// Decorrelate the fault RNG from the schedule/arrival streams (all are
/// derived from the same run seed).
uint64_t fault_seed(uint64_t seed);

/// The partition/drop/delay state between every client-object pair,
/// consulted by the simulator at trigger time (on_trigger stamps drops and
/// release times onto the PendingRmw) and at scheduling/delivery time
/// (deliverable). Cheap when idle: engaged() stays false until a fault
/// source is configured or a first cut happens, and the simulator keeps
/// its O(1) fast paths until then.
class LinkFaultTable {
 public:
  LinkFaultTable() = default;
  LinkFaultTable(const LinkFaultOptions& opts, uint32_t num_clients,
                 uint32_t num_objects);

  /// Any window can ever fire (scalar knobs are normalized into windows).
  bool configured() const { return !windows_.empty(); }

  /// configured(), or at least one link was ever cut: the simulator and
  /// fault-aware schedulers switch to deliverability-filtered paths. Sticky
  /// by design — once engaged, filtered and unfiltered picks coincide
  /// whenever no fault is active, so determinism is unaffected.
  bool engaged() const { return engaged_ || configured(); }

  /// Stamp drop / release-time effects of the active windows onto a freshly
  /// triggered RMW. No RNG draw unless a window is active for it.
  void on_trigger(PendingRmw& p, uint64_t now);

  /// Force engaged() on without cutting anything (used when a scripted
  /// kDelayRmw stamps a release time from outside the table, so the
  /// deliverability-filtered paths take over).
  void engage() { engaged_ = true; }

  // --- Partition mutators. Each returns the links whose state actually
  // --- changed (cutting a cut link only updates its heal deadline; healing
  // --- an open link is a no-op), in (client, object) order.
  std::vector<Link> cut_link(ClientId c, ObjectId o, uint64_t heal_at);
  std::vector<Link> cut_object(ObjectId o, uint64_t heal_at);
  std::vector<Link> heal_link(ClientId c, ObjectId o);
  std::vector<Link> heal_object(ObjectId o);
  std::vector<Link> heal_all();

  /// Apply every auto-heal deadline at or before `now`; returns the links
  /// that healed (the simulator records them in the history trace).
  std::vector<Link> advance_to(uint64_t now);

  bool link_cut(ClientId c, ObjectId o) const;
  uint32_t cut_links() const { return cut_links_; }

  /// Earliest pending auto-heal deadline, if any cut link has one.
  std::optional<uint64_t> next_auto_heal() const;

  /// A pending RMW the scheduler may deliver *now*: dropped RMWs are
  /// always deliverable (delivery = the loss taking effect, draining the
  /// channel); live ones need their release time reached and their link
  /// open.
  bool deliverable(const PendingRmw& p, uint64_t now) const {
    return p.dropped ||
           (p.deliverable_at <= now && !link_cut(p.client, p.target));
  }

  /// Earliest future release time among pending RMWs that are only waiting
  /// out a delay (their link is open): the simulator fast-forwards its
  /// idle clock to it. Cut links are excluded — their release comes from a
  /// heal, covered by next_auto_heal / the scripted timeline.
  std::optional<uint64_t> next_release(const std::deque<PendingRmw>& pending,
                                       uint64_t now) const;

 private:
  struct ActiveWindow {
    FaultWindow w;
    uint64_t fired = 0;
  };

  size_t index(ClientId c, ObjectId o) const {
    return static_cast<size_t>(c.value) * num_objects_ + o.value;
  }

  std::vector<ActiveWindow> windows_;
  uint32_t num_clients_ = 0;
  uint32_t num_objects_ = 0;
  /// Per-link heal deadline: 0 = link open, UINT64_MAX = cut until an
  /// explicit heal, else cut until that step (inclusive trigger at >= it).
  std::vector<uint64_t> heal_at_;
  uint32_t cut_links_ = 0;
  bool engaged_ = false;
  Rng rng_{1};
};

}  // namespace sbrs::sim
