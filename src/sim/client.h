// The client protocol interface, re-exported under sbrs::sim.
//
// The interface itself is backend-neutral and lives in runtime/context.h
// (ExecutionContext + ClientProtocol + factories); this shim keeps the
// simulator-era spellings — sim::SimContext in particular — valid as
// aliases of the same types, so the simulator, tests and any downstream
// code compile unchanged against the split.
#pragma once

#include "common/ids.h"
#include "common/rng.h"
#include "runtime/context.h"
#include "sim/types.h"

namespace sbrs::sim {

/// The historical name of runtime::ExecutionContext: the capabilities the
/// simulator grants a client while it is taking a step.
using SimContext = runtime::ExecutionContext;

using ClientProtocol = runtime::ClientProtocol;
using ClientFactory = runtime::ClientFactory;
using ObjectFactory = runtime::ObjectFactory;

}  // namespace sbrs::sim
