// The client protocol interface: how register algorithms plug into the
// simulator. Clients are reactive state machines — they act when an
// operation is invoked on them and when a triggered RMW responds, matching
// the paper's model where local computation is free and only base-object
// access is scheduled.
#pragma once

#include <memory>
#include <optional>

#include "common/ids.h"
#include "common/rng.h"
#include "metrics/footprint.h"
#include "sim/types.h"

namespace sbrs::sim {

/// The capabilities the simulator grants a client while it is taking a
/// step. Valid only for the duration of the callback that received it.
class SimContext {
 public:
  virtual ~SimContext() = default;

  /// Trigger an RMW on a base object; `request_footprint` declares the code
  /// blocks riding in the request (counted as channel storage until the RMW
  /// is delivered). Returns the RMW's id for matching the response.
  virtual RmwId trigger(ObjectId target, RmwFn fn,
                        metrics::StorageFootprint request_footprint) = 0;

  /// Complete (return from) the given high-level operation. Reads pass the
  /// returned value; writes pass nullopt ("ok").
  virtual void complete(OpId op, std::optional<Value> result) = 0;

  virtual ClientId self() const = 0;
  virtual uint32_t num_objects() const = 0;
  virtual uint64_t now() const = 0;
};

class ClientProtocol {
 public:
  virtual ~ClientProtocol() = default;

  /// A high-level operation was invoked at this client.
  virtual void on_invoke(const Invocation& inv, SimContext& ctx) = 0;

  /// A previously triggered RMW was delivered and produced `response`.
  virtual void on_response(RmwId rmw, ResponsePtr response,
                           SimContext& ctx) = 0;

  /// Code blocks held in this client's local *algorithm* state (Definition
  /// 2 counts these; oracle state — e.g. the written value awaiting
  /// encoding, or a reader's accumulated decode set — is free).
  virtual metrics::StorageFootprint footprint() const {
    return {};
  }

  /// Total stored bits — must equal footprint().total_bits(). The
  /// simulator's incremental accounting calls this after every client
  /// callback (mirroring ObjectStateBase::stored_bits); override with a
  /// cached counter when footprint() materializes a large block list, as
  /// the store's multiplexing client does.
  virtual uint64_t stored_bits() const { return footprint().total_bits(); }
};

using ClientFactory =
    std::function<std::unique_ptr<ClientProtocol>(ClientId)>;
using ObjectFactory =
    std::function<std::unique_ptr<ObjectStateBase>(ObjectId)>;

}  // namespace sbrs::sim
