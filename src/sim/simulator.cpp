#include "sim/simulator.h"

#include <algorithm>

namespace sbrs::sim {

/// The per-step capability object handed to clients. It queues side effects
/// directly into the simulator; re-entrant trigger/complete calls from
/// within on_invoke / on_response are the normal mode of operation.
class Simulator::ContextImpl final : public SimContext {
 public:
  ContextImpl(Simulator& sim, ClientId self) : sim_(sim), self_(self) {}

  RmwId trigger(ObjectId target, RmwFn fn,
                metrics::StorageFootprint request_footprint) override {
    SBRS_CHECK_MSG(target.value < sim_.config_.num_objects,
                   "trigger on unknown object " << target);
    PendingRmw p;
    p.id = RmwId{sim_.next_rmw_id_++};
    p.client = self_;
    auto op = sim_.outstanding_[self_.value];
    p.op = op.value_or(OpId::none());
    p.target = target;
    p.fn = std::move(fn);
    p.request_footprint = std::move(request_footprint);
    p.trigger_seq = sim_.trigger_seq_++;
    sim_.acct_channel_bits_ += p.request_footprint.total_bits();
    sim_.pending_.push_back(std::move(p));
    ++sim_.report_.rmws_triggered;
    return sim_.pending_.back().id;
  }

  void complete(OpId op, std::optional<Value> result) override {
    SBRS_CHECK_MSG(sim_.outstanding_[self_.value] == op,
                   "complete for non-outstanding " << op);
    const sim::OpRecord* rec = sim_.history_.find(op);
    SBRS_CHECK_MSG(rec != nullptr, "complete for unrecorded " << op);
    sim_.report_.op_latency.record(sim_.time_ - rec->invoke_time);
    sim_.report_.sojourn_latency.record(sim_.time_ - rec->arrival_time);
    if (sim_.crashed_objects_ > 0) {
      sim_.report_.degraded_sojourn.record(sim_.time_ - rec->arrival_time);
    }
    sim_.history_.record_return(sim_.time_, op, result);
    sim_.outstanding_[self_.value] = std::nullopt;
    ++sim_.report_.completed_ops;
  }

  ClientId self() const override { return self_; }
  uint32_t num_objects() const override { return sim_.config_.num_objects; }
  uint64_t now() const override { return sim_.time_; }

 private:
  Simulator& sim_;
  ClientId self_;
};

Simulator::Simulator(SimConfig config, ObjectFactory object_factory,
                     ClientFactory client_factory,
                     std::unique_ptr<Workload> workload,
                     std::unique_ptr<Scheduler> scheduler)
    : config_(config),
      workload_(std::move(workload)),
      scheduler_(std::move(scheduler)),
      object_factory_(std::move(object_factory)) {
  SBRS_CHECK(config_.num_objects >= 1);
  SBRS_CHECK(config_.num_clients >= 1);
  SBRS_CHECK(workload_ != nullptr && scheduler_ != nullptr);
  SBRS_CHECK(object_factory_ != nullptr);

  objects_.reserve(config_.num_objects);
  for (uint32_t i = 0; i < config_.num_objects; ++i) {
    objects_.push_back(object_factory_(ObjectId{i}));
    SBRS_CHECK(objects_.back() != nullptr);
  }
  object_alive_.assign(config_.num_objects, true);
  object_repairing_.assign(config_.num_objects, false);
  object_restart_time_.assign(config_.num_objects, 0);

  clients_.reserve(config_.num_clients);
  for (uint32_t i = 0; i < config_.num_clients; ++i) {
    clients_.push_back(client_factory(ClientId{i}));
    SBRS_CHECK(clients_.back() != nullptr);
  }
  client_alive_.assign(config_.num_clients, true);
  outstanding_.assign(config_.num_clients, std::nullopt);

  // Seed the incremental accounting from the initial component states; from
  // here on only deltas are applied at the mutation points.
  object_bits_.resize(config_.num_objects);
  for (uint32_t i = 0; i < config_.num_objects; ++i) {
    object_bits_[i] = objects_[i]->stored_bits();
    acct_object_bits_ += object_bits_[i];
  }
  client_bits_.resize(config_.num_clients);
  for (uint32_t i = 0; i < config_.num_clients; ++i) {
    client_bits_[i] = clients_[i]->stored_bits();
    acct_client_bits_ += client_bits_[i];
  }

  meter_ = metrics::StorageMeter(config_.sample_every);
  observe_storage();
}

bool Simulator::object_alive(ObjectId o) const {
  return o.value < object_alive_.size() && object_alive_[o.value];
}

bool Simulator::client_alive(ClientId c) const {
  return c.value < client_alive_.size() && client_alive_[c.value];
}

bool Simulator::object_repairing(ObjectId o) const {
  return o.value < object_repairing_.size() && object_repairing_[o.value];
}

bool Simulator::can_invoke(ClientId c) const {
  return client_alive(c) && c.value < config_.num_clients &&
         !outstanding_[c.value].has_value() && workload_->has_more(c);
}

std::vector<ClientId> Simulator::invocable_clients() const {
  std::vector<ClientId> out;
  for (uint32_t i = 0; i < config_.num_clients; ++i) {
    if (can_invoke(ClientId{i})) out.push_back(ClientId{i});
  }
  return out;
}

std::optional<OpId> Simulator::outstanding_op(ClientId c) const {
  if (c.value >= outstanding_.size()) return std::nullopt;
  return outstanding_[c.value];
}

const ObjectStateBase& Simulator::object_state(ObjectId o) const {
  SBRS_CHECK(o.value < objects_.size());
  return *objects_[o.value];
}

metrics::StorageSnapshot Simulator::snapshot() const {
  metrics::StorageSnapshot snap;
  snap.time = time_;
  snap.objects.reserve(objects_.size());
  for (uint32_t i = 0; i < objects_.size(); ++i) {
    if (!object_alive_[i] && !config_.count_crashed) continue;
    metrics::StorageSnapshot::ObjectEntry e;
    e.id = ObjectId{i};
    e.alive = object_alive_[i];
    e.footprint = objects_[i]->footprint();
    snap.objects.push_back(std::move(e));
  }
  snap.clients.reserve(clients_.size());
  for (uint32_t i = 0; i < clients_.size(); ++i) {
    if (!client_alive_[i] && !config_.count_crashed) continue;
    metrics::StorageSnapshot::ClientEntry e;
    e.id = ClientId{i};
    e.alive = client_alive_[i];
    e.footprint = clients_[i]->footprint();
    snap.clients.push_back(std::move(e));
  }
  snap.in_flight.reserve(pending_.size());
  for (const auto& p : pending_) {
    metrics::StorageSnapshot::InFlightEntry e;
    e.rmw = p.id;
    e.client = p.client;
    e.target = p.target;
    e.op = p.op;
    e.footprint = p.request_footprint;
    snap.in_flight.push_back(std::move(e));
  }
  return snap;
}

void Simulator::observe_storage() {
  if (config_.verify_accounting) verify_accounting();
  meter_.observe(time_, acct_object_bits_, acct_client_bits_,
                 acct_channel_bits_);
}

void Simulator::refresh_object_bits(ObjectId o) {
  const uint64_t now_bits = objects_[o.value]->stored_bits();
  const uint64_t before = object_bits_[o.value];
  object_bits_[o.value] = now_bits;
  if (object_alive_[o.value] || config_.count_crashed) {
    acct_object_bits_ += now_bits - before;  // wraps correctly for shrinks
  }
}

void Simulator::refresh_client_bits(ClientId c) {
  const uint64_t now_bits = clients_[c.value]->stored_bits();
  const uint64_t before = client_bits_[c.value];
  client_bits_[c.value] = now_bits;
  if (client_alive_[c.value] || config_.count_crashed) {
    acct_client_bits_ += now_bits - before;
  }
}

void Simulator::verify_accounting() const {
  const metrics::StorageSnapshot snap = snapshot();
  uint64_t client_bits = 0;
  for (const auto& c : snap.clients) client_bits += c.footprint.total_bits();
  SBRS_CHECK_MSG(acct_object_bits_ == snap.object_bits(),
                 "incremental object bits " << acct_object_bits_
                     << " != snapshot " << snap.object_bits() << " at t="
                     << time_);
  SBRS_CHECK_MSG(acct_client_bits_ == client_bits,
                 "incremental client bits " << acct_client_bits_
                     << " != snapshot " << client_bits << " at t=" << time_);
  SBRS_CHECK_MSG(acct_channel_bits_ == snap.channel_bits(),
                 "incremental channel bits " << acct_channel_bits_
                     << " != snapshot " << snap.channel_bits() << " at t="
                     << time_);
}

bool Simulator::step() {
  if (stopped_) return false;
  for (;;) {
    if (time_ >= config_.max_steps) {
      report_.hit_step_limit = true;
      stopped_ = true;
      return false;
    }
    // Release open-loop arrivals scheduled at or before the current time
    // (a no-op for closed-loop workloads).
    workload_->advance_to(time_);
    if (!pending_.empty() || !invocable_clients().empty()) break;
    // Nothing schedulable *now*. If the workload still has a future
    // arrival, fast-forward the logical clock to it — an idle open-loop
    // system waiting for load, not a finished run. The jump is clamped to
    // the step budget so a truncated run reports exactly max_steps.
    const std::optional<uint64_t> arrival = workload_->next_arrival();
    if (!arrival.has_value()) {
      stopped_ = true;
      return false;
    }
    SBRS_CHECK_MSG(*arrival > time_, "unreleased arrival in the past");
    time_ = std::min(*arrival, config_.max_steps);
  }
  Action a = scheduler_->next(*this);
  if (a.kind == Action::Kind::kStop) {
    report_.stop_reason = scheduler_->stop_reason();
    stopped_ = true;
    return false;
  }
  apply(a);
  // Degraded window: this step ran while at least one base object was down
  // (the crash action itself counts; the restart that revives the last one
  // does not — crashed_objects_ is read after the action applied).
  if (crashed_objects_ > 0) ++report_.degraded_steps;
  ++time_;
  observe_storage();
  return true;
}

RunReport Simulator::run() {
  while (step()) {
  }
  report_.steps = time_;
  report_.invoked_ops = history_.invoke_count();
  bool all_returned = history_.outstanding().empty();
  bool workload_done = invocable_clients().empty();
  // Quiesced: every op invoked and returned, and no client has more to do —
  // neither released work nor a still-scheduled future arrival.
  bool any_more = workload_->next_arrival().has_value();
  for (uint32_t i = 0; i < config_.num_clients; ++i) {
    if (client_alive_[i] && workload_->has_more(ClientId{i})) any_more = true;
  }
  report_.quiesced = all_returned && workload_done && !any_more;
  return report_;
}

void Simulator::apply(const Action& a) {
  switch (a.kind) {
    case Action::Kind::kDeliverRmw:
      do_deliver(a.rmw);
      break;
    case Action::Kind::kInvoke:
      do_invoke(a.client);
      break;
    case Action::Kind::kCrashObject:
      do_crash_object(a.object);
      break;
    case Action::Kind::kCrashClient:
      do_crash_client(a.client);
      break;
    case Action::Kind::kRestartObject:
      restart_object(a.object, a.restart_mode);
      break;
    case Action::Kind::kStop:
      break;
  }
}

void Simulator::do_deliver(RmwId id) {
  auto it = std::find_if(pending_.begin(), pending_.end(),
                         [&](const PendingRmw& p) { return p.id == id; });
  SBRS_CHECK_MSG(it != pending_.end(), "deliver of unknown " << id);
  PendingRmw p = std::move(*it);
  pending_.erase(it);
  // The request's parameters leave the channel regardless of what happens
  // at the (possibly crashed) target.
  acct_channel_bits_ -= p.request_footprint.total_bits();

  // RMWs on crashed objects are lost (never take effect, never respond).
  if (!object_alive(p.target)) return;

  // Repair window: every RMW a restarted-but-not-yet-overwritten object
  // receives is recovery traffic — its request bits are charged to
  // repair_bits (Definition 2 prices each request, so this is exactly the
  // extra channel cost of the recovery). The window closes, inclusively,
  // with the first delivered *payload-carrying* RMW of a write operation
  // invoked after the restart: that store-phase round's overwrite
  // re-converges the replica. The payload requirement matters for the
  // two-round algorithms — ABD's query round of a fresh write is a pure
  // read of timestamps (0 request bits) and leaves the replica stale.
  if (object_repairing_[p.target.value]) {
    report_.repair_bits += p.request_footprint.total_bits();
    const sim::OpRecord* rec = history_.find(p.op);
    if (rec != nullptr && rec->kind == OpKind::kWrite &&
        rec->invoke_time >= object_restart_time_[p.target.value] &&
        p.request_footprint.total_bits() > 0) {
      object_repairing_[p.target.value] = false;
    }
  }

  // The state change is atomic; the response is produced with it.
  ResponsePtr response = p.fn(*objects_[p.target.value]);
  ++report_.rmws_delivered;
  refresh_object_bits(p.target);

  // A crashed client never observes the response; the effect stands
  // (matching the paper: RMWs may take effect after the client fails).
  if (!client_alive(p.client)) return;

  ContextImpl ctx(*this, p.client);
  clients_[p.client.value]->on_response(p.id, std::move(response), ctx);
  refresh_client_bits(p.client);
}

void Simulator::do_invoke(ClientId c) {
  SBRS_CHECK_MSG(can_invoke(c), "invoke on non-invocable client " << c);
  Invocation inv = workload_->next(c, OpId{next_op_id_++});
  SBRS_CHECK(inv.client == c);
  outstanding_[c.value] = inv.op;
  history_.record_invoke(time_, inv);
  ContextImpl ctx(*this, c);
  clients_[c.value]->on_invoke(inv, ctx);
  refresh_client_bits(c);
}

void Simulator::do_crash_object(ObjectId o) {
  SBRS_CHECK(o.value < object_alive_.size());
  if (!object_alive_[o.value]) return;
  object_alive_[o.value] = false;
  // A repairing object that crashes again is just crashed; a later restart
  // opens a fresh repair window.
  object_repairing_[o.value] = false;
  ++crashed_objects_;
  ++report_.object_crash_events;
  history_.record_object_crash(time_, o);
  // Pending RMWs targeting the crashed object will be dropped on delivery.
  // Its state is frozen from here on; when crashed storage is excluded from
  // the Definition 2 total, it leaves the aggregate now.
  if (!config_.count_crashed) acct_object_bits_ -= object_bits_[o.value];
}

void Simulator::restart_object(ObjectId o, RestartMode mode) {
  SBRS_CHECK_MSG(o.value < object_alive_.size(), "restart of unknown " << o);
  SBRS_CHECK_MSG(!object_alive_[o.value], "restart of live object " << o);
  if (mode == RestartMode::kFromScratch) {
    // A replacement replica that lost its disk: mount a fresh state from
    // the factory (v0 pre-stored, as at time zero).
    objects_[o.value] = object_factory_(o);
    SBRS_CHECK(objects_[o.value] != nullptr);
  } else {
    // Re-join with the image frozen at crash time; the hook lets states
    // shed volatile fields / recompute cached totals.
    objects_[o.value]->on_restart(mode);
  }
  object_alive_[o.value] = true;
  SBRS_CHECK(crashed_objects_ > 0);
  --crashed_objects_;

  // Exact accounting across the transition: while crashed, the cached
  // object_bits_ stayed in the aggregate iff count_crashed; the restarted
  // state's bits (possibly changed by replacement or the hook) re-enter
  // now, so tracked totals equal a full snapshot on the very next check.
  const uint64_t now_bits = objects_[o.value]->stored_bits();
  if (config_.count_crashed) {
    acct_object_bits_ += now_bits - object_bits_[o.value];
  } else {
    acct_object_bits_ += now_bits;
  }
  object_bits_[o.value] = now_bits;

  object_repairing_[o.value] = true;
  object_restart_time_[o.value] = time_;
  ++report_.object_restarts;
  history_.record_object_restart(time_, o, mode);
}

void Simulator::do_crash_client(ClientId c) {
  SBRS_CHECK(c.value < client_alive_.size());
  if (!client_alive_[c.value]) return;
  client_alive_[c.value] = false;
  // Its outstanding operation stays outstanding forever; its pending RMWs
  // may still take effect on objects (and stay counted as channel storage
  // until delivered, matching snapshot()'s in_flight accounting).
  if (!config_.count_crashed) acct_client_bits_ -= client_bits_[c.value];
}

}  // namespace sbrs::sim
