#include "sim/simulator.h"

#include <algorithm>

#include "common/stop_reason.h"

namespace sbrs::sim {

/// The per-step capability object handed to clients. It queues side effects
/// directly into the simulator; re-entrant trigger/complete calls from
/// within on_invoke / on_response are the normal mode of operation.
class Simulator::ContextImpl final : public SimContext {
 public:
  ContextImpl(Simulator& sim, ClientId self) : sim_(sim), self_(self) {}

  RmwId trigger(ObjectId target, RmwFn fn,
                metrics::StorageFootprint request_footprint) override {
    SBRS_CHECK_MSG(target.value < sim_.config_.num_objects,
                   "trigger on unknown object " << target);
    PendingRmw p;
    p.id = RmwId{sim_.next_rmw_id_++};
    p.client = self_;
    auto op = sim_.outstanding_[self_.value];
    p.op = op.value_or(OpId::none());
    p.target = target;
    p.fn = std::move(fn);
    p.request_footprint = std::move(request_footprint);
    p.trigger_seq = sim_.trigger_seq_++;
    if (sim_.faults_.configured()) {
      sim_.faults_.on_trigger(p, sim_.time_);
      if (p.dropped) {
        ++sim_.report_.rmws_dropped;
      } else if (p.deliverable_at > sim_.time_) {
        ++sim_.report_.rmws_delayed;
      }
    }
    sim_.acct_channel_bits_ += p.request_footprint.total_bits();
    sim_.pending_.push_back(std::move(p));
    ++sim_.report_.rmws_triggered;
    if (sim_.config_.trace != nullptr) {
      const PendingRmw& q = sim_.pending_.back();
      sim_.config_.trace->rmw_trigger(sim_.time_, q.id, q.op, self_, q.target,
                                      q.request_footprint.total_bits(),
                                      q.deliverable_at, q.dropped);
    }
    return sim_.pending_.back().id;
  }

  void complete(OpId op, std::optional<Value> result) override {
    SBRS_CHECK_MSG(sim_.outstanding_[self_.value] == op,
                   "complete for non-outstanding " << op);
    const sim::OpRecord* rec = sim_.history_.find(op);
    SBRS_CHECK_MSG(rec != nullptr, "complete for unrecorded " << op);
    sim_.report_.op_latency.record(sim_.time_ - rec->invoke_time);
    sim_.report_.sojourn_latency.record(sim_.time_ - rec->arrival_time);
    const bool degraded =
        sim_.crashed_objects_ > 0 || sim_.faults_.cut_links() > 0;
    if (degraded) {
      sim_.report_.degraded_sojourn.record(sim_.time_ - rec->arrival_time);
    }
    sim_.history_.record_return(sim_.time_, op, result);
    sim_.outstanding_[self_.value] = std::nullopt;
    ++sim_.report_.completed_ops;
    if (sim_.config_.trace != nullptr) {
      sim_.config_.trace->op_return(sim_.time_, op, degraded);
    }
    // Read-repair: a read that completed while repair windows are open just
    // proved stale replicas are visible — push the newest decodable block
    // back at each of them. One pointer-test guard when off; the pushes
    // draw no randomness.
    if (sim_.config_.read_repair && rec->kind == OpKind::kRead) {
      for (uint32_t i = 0; i < sim_.config_.num_objects; ++i) {
        if (sim_.object_repairing_[i]) sim_.trigger_repair(ObjectId{i});
      }
    }
  }

  ClientId self() const override { return self_; }
  uint32_t num_objects() const override { return sim_.config_.num_objects; }
  uint64_t now() const override { return sim_.time_; }

 private:
  Simulator& sim_;
  ClientId self_;
};

Simulator::Simulator(SimConfig config, ObjectFactory object_factory,
                     ClientFactory client_factory,
                     std::unique_ptr<Workload> workload,
                     std::unique_ptr<Scheduler> scheduler)
    : config_(config),
      workload_(std::move(workload)),
      scheduler_(std::move(scheduler)),
      object_factory_(std::move(object_factory)) {
  SBRS_CHECK(config_.num_objects >= 1);
  SBRS_CHECK(config_.num_clients >= 1);
  SBRS_CHECK(workload_ != nullptr && scheduler_ != nullptr);
  SBRS_CHECK(object_factory_ != nullptr);

  objects_.reserve(config_.num_objects);
  for (uint32_t i = 0; i < config_.num_objects; ++i) {
    objects_.push_back(object_factory_(ObjectId{i}));
    SBRS_CHECK(objects_.back() != nullptr);
  }
  object_alive_.assign(config_.num_objects, true);
  object_repairing_.assign(config_.num_objects, false);
  object_restart_time_.assign(config_.num_objects, 0);

  clients_.reserve(config_.num_clients);
  for (uint32_t i = 0; i < config_.num_clients; ++i) {
    clients_.push_back(client_factory(ClientId{i}));
    SBRS_CHECK(clients_.back() != nullptr);
  }
  client_alive_.assign(config_.num_clients, true);
  outstanding_.assign(config_.num_clients, std::nullopt);

  faults_ = LinkFaultTable(config_.link_faults, config_.num_clients,
                           config_.num_objects);

  // Seed the incremental accounting from the initial component states; from
  // here on only deltas are applied at the mutation points.
  object_bits_.resize(config_.num_objects);
  for (uint32_t i = 0; i < config_.num_objects; ++i) {
    object_bits_[i] = objects_[i]->stored_bits();
    acct_object_bits_ += object_bits_[i];
  }
  client_bits_.resize(config_.num_clients);
  for (uint32_t i = 0; i < config_.num_clients; ++i) {
    client_bits_[i] = clients_[i]->stored_bits();
    acct_client_bits_ += client_bits_[i];
  }

  meter_ = metrics::StorageMeter(config_.sample_every);
  observe_storage();
}

bool Simulator::object_alive(ObjectId o) const {
  return o.value < object_alive_.size() && object_alive_[o.value];
}

bool Simulator::client_alive(ClientId c) const {
  return c.value < client_alive_.size() && client_alive_[c.value];
}

bool Simulator::object_repairing(ObjectId o) const {
  return o.value < object_repairing_.size() && object_repairing_[o.value];
}

bool Simulator::can_invoke(ClientId c) const {
  return client_alive(c) && c.value < config_.num_clients &&
         !outstanding_[c.value].has_value() && workload_->has_more(c);
}

std::vector<ClientId> Simulator::invocable_clients() const {
  std::vector<ClientId> out;
  for (uint32_t i = 0; i < config_.num_clients; ++i) {
    if (can_invoke(ClientId{i})) out.push_back(ClientId{i});
  }
  return out;
}

std::optional<OpId> Simulator::outstanding_op(ClientId c) const {
  if (c.value >= outstanding_.size()) return std::nullopt;
  return outstanding_[c.value];
}

const ObjectStateBase& Simulator::object_state(ObjectId o) const {
  SBRS_CHECK(o.value < objects_.size());
  return *objects_[o.value];
}

metrics::StorageSnapshot Simulator::snapshot() const {
  metrics::StorageSnapshot snap;
  snap.time = time_;
  snap.objects.reserve(objects_.size());
  for (uint32_t i = 0; i < objects_.size(); ++i) {
    if (!object_alive_[i] && !config_.count_crashed) continue;
    metrics::StorageSnapshot::ObjectEntry e;
    e.id = ObjectId{i};
    e.alive = object_alive_[i];
    e.footprint = objects_[i]->footprint();
    snap.objects.push_back(std::move(e));
  }
  snap.clients.reserve(clients_.size());
  for (uint32_t i = 0; i < clients_.size(); ++i) {
    if (!client_alive_[i] && !config_.count_crashed) continue;
    metrics::StorageSnapshot::ClientEntry e;
    e.id = ClientId{i};
    e.alive = client_alive_[i];
    e.footprint = clients_[i]->footprint();
    snap.clients.push_back(std::move(e));
  }
  snap.in_flight.reserve(pending_.size());
  for (const auto& p : pending_) {
    metrics::StorageSnapshot::InFlightEntry e;
    e.rmw = p.id;
    e.client = p.client;
    e.target = p.target;
    e.op = p.op;
    e.footprint = p.request_footprint;
    snap.in_flight.push_back(std::move(e));
  }
  return snap;
}

void Simulator::observe_storage() {
  if (config_.verify_accounting) verify_accounting();
  meter_.observe(time_, acct_object_bits_, acct_client_bits_,
                 acct_channel_bits_);
}

void Simulator::refresh_object_bits(ObjectId o) {
  const uint64_t now_bits = objects_[o.value]->stored_bits();
  const uint64_t before = object_bits_[o.value];
  object_bits_[o.value] = now_bits;
  if (object_alive_[o.value] || config_.count_crashed) {
    acct_object_bits_ += now_bits - before;  // wraps correctly for shrinks
  }
}

void Simulator::refresh_client_bits(ClientId c) {
  const uint64_t now_bits = clients_[c.value]->stored_bits();
  const uint64_t before = client_bits_[c.value];
  client_bits_[c.value] = now_bits;
  if (client_alive_[c.value] || config_.count_crashed) {
    acct_client_bits_ += now_bits - before;
  }
}

void Simulator::verify_accounting() const {
  const metrics::StorageSnapshot snap = snapshot();
  uint64_t client_bits = 0;
  for (const auto& c : snap.clients) client_bits += c.footprint.total_bits();
  SBRS_CHECK_MSG(acct_object_bits_ == snap.object_bits(),
                 "incremental object bits " << acct_object_bits_
                     << " != snapshot " << snap.object_bits() << " at t="
                     << time_);
  SBRS_CHECK_MSG(acct_client_bits_ == client_bits,
                 "incremental client bits " << acct_client_bits_
                     << " != snapshot " << client_bits << " at t=" << time_);
  SBRS_CHECK_MSG(acct_channel_bits_ == snap.channel_bits(),
                 "incremental channel bits " << acct_channel_bits_
                     << " != snapshot " << snap.channel_bits() << " at t="
                     << time_);
}

bool Simulator::actionable_now() {
  if (faults_.engaged()) {
    for (const auto& p : pending_) {
      if (faults_.deliverable(p, time_)) return true;
    }
  } else if (!pending_.empty()) {
    return true;
  }
  if (!invocable_clients().empty()) return true;
  const auto wake = scheduler_->next_wakeup(*this);
  return wake.has_value() && *wake <= time_;
}

bool Simulator::step() {
  if (stopped_) return false;
  for (;;) {
    if (time_ >= config_.max_steps) {
      report_.hit_step_limit = true;
      stopped_ = true;
      return false;
    }
    // Release open-loop arrivals scheduled at or before the current time
    // (a no-op for closed-loop workloads), then apply every auto-heal
    // deadline that has come due.
    workload_->advance_to(time_);
    if (faults_.engaged()) record_heals(faults_.advance_to(time_));
    if (actionable_now()) break;
    // Nothing schedulable *now*. Fast-forward the logical clock to the
    // earliest future event that can unblock the run: the next open-loop
    // arrival, the next auto-heal, the next delayed-RMW release, or the
    // scheduler's own wakeup (a due restart, a scripted fault event). The
    // jump is clamped to the step budget so a truncated run reports
    // exactly max_steps; with no future event the run is over.
    std::optional<uint64_t> target = workload_->next_arrival();
    const auto consider = [&target](std::optional<uint64_t> t) {
      if (t.has_value() && (!target.has_value() || *t < *target)) target = t;
    };
    if (faults_.engaged()) {
      consider(faults_.next_auto_heal());
      consider(faults_.next_release(pending_, time_));
    }
    consider(scheduler_->next_wakeup(*this));
    if (!target.has_value()) {
      stopped_ = true;
      return false;
    }
    SBRS_CHECK_MSG(*target > time_, "fast-forward target in the past");
    time_ = std::min(*target, config_.max_steps);
  }
  Action a = scheduler_->next(*this);
  if (a.kind == Action::Kind::kStop) {
    report_.stop_reason = scheduler_->stop_reason();
    scheduler_stopped_ = !report_.stop_reason.empty();
    stopped_ = true;
    return false;
  }
  apply(a);
  // Degraded window: this step ran while at least one base object was down
  // or at least one link was cut (the crash/partition action itself counts;
  // the restart/heal that revives the last one does not — the state is read
  // after the action applied).
  if (crashed_objects_ > 0 || faults_.cut_links() > 0) {
    ++report_.degraded_steps;
  }
  ++time_;
  observe_storage();
  // The per-step time-series registry: one counter sample per sample_every
  // steps (the storage-meter decimation), feeding the trace's counter
  // tracks. Pure reads of the incrementally tracked totals — O(1).
  if (config_.trace != nullptr &&
      time_ % (config_.sample_every == 0 ? 1 : config_.sample_every) == 0) {
    obs::CounterSample s;
    s.step = time_;
    s.in_flight_rmws = pending_.size();
    s.queue_depth = workload_->queue_depth();
    s.backlog = workload_->backlog();
    s.total_bits = acct_object_bits_ + acct_client_bits_ + acct_channel_bits_;
    s.object_bits = acct_object_bits_;
    s.channel_bits = acct_channel_bits_;
    s.crashed_objects = crashed_objects_;
    s.cut_links = static_cast<uint32_t>(faults_.cut_links());
    config_.trace->sample(s);
  }
  return true;
}

RunReport Simulator::run() {
  while (step()) {
  }
  report_.steps = time_;
  report_.invoked_ops = history_.invoke_count();
  report_.open_repair_windows = open_repair_windows();
  // Windows still open at run end accrue their duration up to the last step.
  for (uint32_t i = 0; i < object_repairing_.size(); ++i) {
    if (object_repairing_[i]) {
      report_.repair_window_steps += time_ - object_restart_time_[i];
    }
  }
  bool all_returned = history_.outstanding().empty();
  bool workload_done = invocable_clients().empty();
  // Quiesced: every op invoked and returned, and no client has more to do —
  // neither released work nor a still-scheduled future arrival.
  bool any_more = workload_->next_arrival().has_value();
  for (uint32_t i = 0; i < config_.num_clients; ++i) {
    if (client_alive_[i] && workload_->has_more(ClientId{i})) any_more = true;
  }
  report_.quiesced = all_returned && workload_done && !any_more;
  // Classify the stop for the exports: a scheduler that stated a reason
  // keeps it, everything else reduces to the three simulator outcomes.
  if (report_.hit_step_limit) {
    report_.stop_reason = kStopStepLimit;
  } else if (scheduler_stopped_) {
    if (report_.stop_reason.empty()) report_.stop_reason = kStopSchedulerStop;
  } else {
    report_.stop_reason = report_.quiesced ? kStopQuiesced : kStopStalled;
  }
  if (config_.trace != nullptr) config_.trace->finish(time_);
  return report_;
}

void Simulator::apply(const Action& a) {
  switch (a.kind) {
    case Action::Kind::kDeliverRmw:
      do_deliver(a.rmw);
      break;
    case Action::Kind::kInvoke:
      do_invoke(a.client);
      break;
    case Action::Kind::kCrashObject:
      do_crash_object(a.object);
      break;
    case Action::Kind::kCrashClient:
      do_crash_client(a.client);
      break;
    case Action::Kind::kRestartObject:
      restart_object(a.object, a.restart_mode);
      break;
    case Action::Kind::kRepairObject:
      // A no-op (still one step) when the window already closed or nothing
      // is decodable yet — the pump re-arms and retries.
      trigger_repair(a.object);
      break;
    case Action::Kind::kPartitionLink:
      partition_link(a.client, a.object, a.heal_after);
      break;
    case Action::Kind::kPartitionObject:
      partition_object(a.object, a.heal_after);
      break;
    case Action::Kind::kHealLink:
      heal_link(a.client, a.object);
      break;
    case Action::Kind::kHealObject:
      heal_object(a.object);
      break;
    case Action::Kind::kHealAll:
      heal_all();
      break;
    case Action::Kind::kDropRmw:
      do_drop_rmw(a.rmw);
      break;
    case Action::Kind::kDelayRmw:
      do_delay_rmw(a.rmw, a.delay);
      break;
    case Action::Kind::kStop:
      break;
  }
}

void Simulator::record_partitions(const std::vector<Link>& cut) {
  for (const Link& l : cut) {
    history_.record_partition(time_, l.client, l.object);
    ++report_.partition_events;
    if (config_.trace != nullptr) {
      config_.trace->link_partition(time_, l.client, l.object);
    }
  }
}

void Simulator::record_heals(const std::vector<Link>& healed) {
  for (const Link& l : healed) {
    history_.record_heal(time_, l.client, l.object);
    ++report_.heal_events;
    if (config_.trace != nullptr) {
      config_.trace->link_heal(time_, l.client, l.object);
    }
  }
}

void Simulator::partition_link(ClientId c, ObjectId o, uint64_t heal_after) {
  const uint64_t heal_at =
      heal_after == 0 ? UINT64_MAX : time_ + heal_after;
  record_partitions(faults_.cut_link(c, o, heal_at));
}

void Simulator::partition_object(ObjectId o, uint64_t heal_after) {
  const uint64_t heal_at =
      heal_after == 0 ? UINT64_MAX : time_ + heal_after;
  record_partitions(faults_.cut_object(o, heal_at));
}

void Simulator::heal_link(ClientId c, ObjectId o) {
  record_heals(faults_.heal_link(c, o));
}

void Simulator::heal_object(ObjectId o) {
  record_heals(faults_.heal_object(o));
}

void Simulator::heal_all() { record_heals(faults_.heal_all()); }

void Simulator::do_drop_rmw(RmwId id) {
  auto it = std::find_if(pending_.begin(), pending_.end(),
                         [&](const PendingRmw& p) { return p.id == id; });
  SBRS_CHECK_MSG(it != pending_.end(), "drop of unknown " << id);
  // The request vanishes from the network immediately: its parameters
  // leave the channel and the target never sees it.
  acct_channel_bits_ -= it->request_footprint.total_bits();
  pending_.erase(it);
  ++report_.rmws_dropped;
  if (config_.trace != nullptr) {
    config_.trace->rmw_deliver(time_, id, obs::RmwOutcome::kDropped, false);
  }
}

void Simulator::do_delay_rmw(RmwId id, uint64_t delay) {
  auto it = std::find_if(pending_.begin(), pending_.end(),
                         [&](const PendingRmw& p) { return p.id == id; });
  SBRS_CHECK_MSG(it != pending_.end(), "delay of unknown " << id);
  it->deliverable_at = std::max(it->deliverable_at, time_ + delay);
  // The release time was stamped outside the table; engage it so the
  // deliverability-filtered scheduling paths respect the delay.
  faults_.engage();
  ++report_.rmws_delayed;
  if (config_.trace != nullptr) {
    config_.trace->rmw_delay(time_, id, it->deliverable_at);
  }
}

void Simulator::do_deliver(RmwId id) {
  auto it = std::find_if(pending_.begin(), pending_.end(),
                         [&](const PendingRmw& p) { return p.id == id; });
  SBRS_CHECK_MSG(it != pending_.end(), "deliver of unknown " << id);
  SBRS_CHECK_MSG(faults_.deliverable(*it, time_),
                 "deliver of undeliverable (partitioned or delayed) " << id
                     << " — fault injection needs a fault-aware scheduler");
  PendingRmw p = std::move(*it);
  pending_.erase(it);
  // The request's parameters leave the channel regardless of what happens
  // at the (possibly crashed) target.
  acct_channel_bits_ -= p.request_footprint.total_bits();

  // Dropped RMWs: this delivery is the loss taking effect — the request
  // left the channel and never reaches the object (counted in
  // rmws_dropped at the drop draw).
  if (p.dropped) {
    if (config_.trace != nullptr) {
      config_.trace->rmw_deliver(time_, p.id, obs::RmwOutcome::kDropped,
                                 false);
    }
    return;
  }

  // RMWs on crashed objects are lost (never take effect, never respond).
  if (!object_alive(p.target)) {
    if (config_.trace != nullptr) {
      config_.trace->rmw_deliver(time_, p.id, obs::RmwOutcome::kLostCrashed,
                                 false);
    }
    return;
  }

  // Repair window: every RMW a restarted-but-not-yet-overwritten object
  // receives is recovery traffic — its request bits are charged to
  // repair_bits (Definition 2 prices each request, so this is exactly the
  // extra channel cost of the recovery). The window closes, inclusively,
  // with the first delivered RMW that re-converges the replica: either a
  // *payload-carrying* RMW of a write operation invoked strictly after the
  // restart (the store-phase overwrite), or a repair push (read-repair /
  // anti-entropy — re-converging by construction, so even a zero-bit
  // digest push closes). The payload requirement matters for the two-round
  // algorithms — ABD's query round of a fresh write is a pure read of
  // timestamps (0 request bits) and leaves the replica stale. A write
  // invoked at the restart step itself does NOT close: its payload may
  // have been computed against pre-restart reads, so only strictly-later
  // invocations count as the overwrite.
  const bool repairing = object_repairing_[p.target.value];
  if (repairing) {
    report_.repair_bits += p.request_footprint.total_bits();
    bool closes = p.is_repair;
    if (!closes) {
      const sim::OpRecord* rec = history_.find(p.op);
      closes = rec != nullptr && rec->kind == OpKind::kWrite &&
               rec->invoke_time > object_restart_time_[p.target.value] &&
               p.request_footprint.total_bits() > 0;
    }
    if (closes) {
      object_repairing_[p.target.value] = false;
      report_.repair_window_steps +=
          time_ - object_restart_time_[p.target.value];
      if (config_.trace != nullptr) {
        config_.trace->repair_close(time_, p.target);
      }
    }
  }
  if (config_.trace != nullptr) {
    config_.trace->rmw_deliver(time_, p.id, obs::RmwOutcome::kDelivered,
                               repairing);
  }

  // The state change is atomic; the response is produced with it.
  ResponsePtr response = p.fn(*objects_[p.target.value]);
  ++report_.rmws_delivered;
  refresh_object_bits(p.target);

  // A crashed client never observes the response; the effect stands
  // (matching the paper: RMWs may take effect after the client fails).
  if (!client_alive(p.client)) return;

  ContextImpl ctx(*this, p.client);
  clients_[p.client.value]->on_response(p.id, std::move(response), ctx);
  refresh_client_bits(p.client);
}

void Simulator::do_invoke(ClientId c) {
  SBRS_CHECK_MSG(can_invoke(c), "invoke on non-invocable client " << c);
  Invocation inv = workload_->next(c, OpId{next_op_id_++});
  SBRS_CHECK(inv.client == c);
  outstanding_[c.value] = inv.op;
  history_.record_invoke(time_, inv);
  if (config_.trace != nullptr) {
    config_.trace->op_invoke(time_, inv.op, c, inv.kind == OpKind::kWrite,
                             inv.arrival_time.value_or(time_));
  }
  ContextImpl ctx(*this, c);
  clients_[c.value]->on_invoke(inv, ctx);
  refresh_client_bits(c);
}

void Simulator::do_crash_object(ObjectId o) {
  SBRS_CHECK(o.value < object_alive_.size());
  if (!object_alive_[o.value]) return;
  object_alive_[o.value] = false;
  // A repairing object that crashes again is just crashed; a later restart
  // opens a fresh repair window. The cut-short window still counts toward
  // the open-window duration up to the crash.
  if (object_repairing_[o.value]) {
    report_.repair_window_steps += time_ - object_restart_time_[o.value];
  }
  object_repairing_[o.value] = false;
  ++crashed_objects_;
  ++report_.object_crash_events;
  history_.record_object_crash(time_, o);
  if (config_.trace != nullptr) config_.trace->object_crash(time_, o);
  // Pending RMWs targeting the crashed object will be dropped on delivery.
  // Its state is frozen from here on; when crashed storage is excluded from
  // the Definition 2 total, it leaves the aggregate now.
  if (!config_.count_crashed) acct_object_bits_ -= object_bits_[o.value];
}

void Simulator::restart_object(ObjectId o, RestartMode mode) {
  SBRS_CHECK_MSG(o.value < object_alive_.size(), "restart of unknown " << o);
  SBRS_CHECK_MSG(!object_alive_[o.value], "restart of live object " << o);
  if (mode == RestartMode::kFromScratch) {
    // A replacement replica that lost its disk: mount a fresh state from
    // the factory (v0 pre-stored, as at time zero).
    objects_[o.value] = object_factory_(o);
    SBRS_CHECK(objects_[o.value] != nullptr);
  } else {
    // Re-join with the image frozen at crash time; the hook lets states
    // shed volatile fields / recompute cached totals.
    objects_[o.value]->on_restart(mode);
  }
  object_alive_[o.value] = true;
  SBRS_CHECK(crashed_objects_ > 0);
  --crashed_objects_;

  // Exact accounting across the transition: while crashed, the cached
  // object_bits_ stayed in the aggregate iff count_crashed; the restarted
  // state's bits (possibly changed by replacement or the hook) re-enter
  // now, so tracked totals equal a full snapshot on the very next check.
  const uint64_t now_bits = objects_[o.value]->stored_bits();
  if (config_.count_crashed) {
    acct_object_bits_ += now_bits - object_bits_[o.value];
  } else {
    acct_object_bits_ += now_bits;
  }
  object_bits_[o.value] = now_bits;

  object_repairing_[o.value] = true;
  object_restart_time_[o.value] = time_;
  ++report_.object_restarts;
  history_.record_object_restart(time_, o, mode);
  if (config_.trace != nullptr) {
    config_.trace->object_restart(time_, o, to_string(mode));
  }
}

uint32_t Simulator::open_repair_windows() const {
  uint32_t open = 0;
  for (uint32_t i = 0; i < config_.num_objects; ++i) {
    if (object_repairing_[i]) ++open;
  }
  return open;
}

bool Simulator::trigger_repair(ObjectId o) {
  SBRS_CHECK_MSG(o.value < object_alive_.size(), "repair of unknown " << o);
  if (config_.repair_planner == nullptr) return false;
  if (!object_alive_[o.value] || !object_repairing_[o.value]) return false;
  if (!repair_budget_left()) return false;
  std::optional<RepairPlan> plan = config_.repair_planner(*this, o);
  if (!plan.has_value()) return false;  // nothing decodable yet; retry later
  SBRS_CHECK(plan->fn != nullptr);

  PendingRmw p;
  p.id = RmwId{next_rmw_id_++};
  p.op = OpId::none();  // replica-mesh traffic belongs to no operation
  p.client = kRepairSource;
  p.target = o;
  p.fn = std::move(plan->fn);
  p.request_footprint = std::move(plan->request_footprint);
  p.trigger_seq = trigger_seq_++;
  p.is_repair = true;
  // Deliberately NOT routed through faults_.on_trigger: the push models
  // replica-mesh traffic outside the client-object links, and skipping the
  // fault draws keeps the fault RNG stream identical to a repair-free run.
  const uint64_t bits = p.request_footprint.total_bits();
  acct_channel_bits_ += bits;
  repair_push_bits_ += bits;
  pending_.push_back(std::move(p));
  ++report_.rmws_triggered;
  ++report_.repair_pushes;
  if (config_.trace != nullptr) {
    const PendingRmw& q = pending_.back();
    config_.trace->rmw_trigger(time_, q.id, q.op, kRepairSource, o, bits,
                               q.deliverable_at, false);
  }
  return true;
}

void Simulator::do_crash_client(ClientId c) {
  SBRS_CHECK(c.value < client_alive_.size());
  if (!client_alive_[c.value]) return;
  client_alive_[c.value] = false;
  if (config_.trace != nullptr) config_.trace->client_crash(time_, c);
  // Its outstanding operation stays outstanding forever; its pending RMWs
  // may still take effect on objects (and stay counted as channel storage
  // until delivered, matching snapshot()'s in_flight accounting).
  if (!config_.count_crashed) acct_client_bits_ -= client_bits_[c.value];
}

}  // namespace sbrs::sim
