#include "sim/arrival.h"

#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace sbrs::sim {

const char* to_string(ArrivalProcess p) {
  switch (p) {
    case ArrivalProcess::kClosedLoop: return "closed";
    case ArrivalProcess::kFixedRate: return "fixed";
    case ArrivalProcess::kBursty: return "burst";
    case ArrivalProcess::kPoisson: return "poisson";
  }
  return "?";
}

ArrivalProcess parse_arrival_process(const std::string& s) {
  if (s == "closed") return ArrivalProcess::kClosedLoop;
  if (s == "fixed") return ArrivalProcess::kFixedRate;
  if (s == "burst" || s == "bursty") return ArrivalProcess::kBursty;
  if (s == "poisson") return ArrivalProcess::kPoisson;
  SBRS_CHECK_MSG(false, "unknown arrival process '"
                            << s << "' (closed|fixed|burst|poisson)");
  return ArrivalProcess::kClosedLoop;
}

std::string validate_arrival(const ArrivalOptions& a) {
  if (!open_loop(a)) return {};
  if (!std::isfinite(a.rate) || a.rate <= 0) {
    return "arrival rate must be a positive finite number of ops per step, "
           "got " +
           std::to_string(a.rate);
  }
  if (a.process == ArrivalProcess::kBursty && a.burst_on == 0) {
    return "bursty arrivals need an on-window of >= 1 step (burst_on == 0 "
           "never releases an arrival)";
  }
  return {};
}

uint64_t arrival_seed(uint64_t seed) {
  return derive_stream_seed(seed, seed_stream::kArrival);
}

std::vector<uint64_t> generate_arrivals(const ArrivalOptions& opts,
                                        size_t num_ops, uint64_t seed) {
  SBRS_CHECK_MSG(open_loop(opts), "generate_arrivals on a closed-loop spec");
  const std::string why = validate_arrival(opts);
  SBRS_CHECK_MSG(why.empty(), why);

  std::vector<uint64_t> out;
  out.reserve(num_ops);
  switch (opts.process) {
    case ArrivalProcess::kClosedLoop:
      break;  // unreachable (checked above)
    case ArrivalProcess::kFixedRate: {
      for (size_t i = 0; i < num_ops; ++i) {
        out.push_back(
            static_cast<uint64_t>(static_cast<double>(i) / opts.rate));
      }
      break;
    }
    case ArrivalProcess::kBursty: {
      // Pace the stream at the on-window peak rate on a virtual "on-time"
      // axis, then splice the off-windows back in: cycle c's on-window
      // [c*on, c*on + on) of on-time maps to real steps starting at
      // c*(on + off). Mean rate over a whole cycle is exactly opts.rate.
      const uint64_t on = opts.burst_on;
      const uint64_t off = opts.burst_off;
      const double peak_rate =
          opts.rate * static_cast<double>(on + off) / static_cast<double>(on);
      for (size_t i = 0; i < num_ops; ++i) {
        const uint64_t on_time =
            static_cast<uint64_t>(static_cast<double>(i) / peak_rate);
        const uint64_t cycle = on_time / on;
        out.push_back(cycle * (on + off) + on_time % on);
      }
      break;
    }
    case ArrivalProcess::kPoisson: {
      Rng rng(seed);
      double t = 0;
      for (size_t i = 0; i < num_ops; ++i) {
        // Inverse-CDF exponential interarrival; 1 - u in (0, 1] keeps the
        // log argument away from zero.
        const double u = 1.0 - rng.uniform01();
        t += -std::log(u) / opts.rate;
        out.push_back(static_cast<uint64_t>(t));
      }
      break;
    }
  }
  return out;
}

}  // namespace sbrs::sim
