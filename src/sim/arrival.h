// Deterministic open-loop arrival schedules.
//
// A closed-loop session issues its next operation only after the previous
// one returned, so latency histograms measure service time alone. An
// open-loop run decouples arrivals from completions: every operation is
// assigned an *arrival step* up front, queues until a session is free, and
// its sojourn time (arrival -> return) includes the queueing delay — the
// regime where the paper's concurrent-op storage blowup actually bites.
//
// generate_arrivals() is a pure function of {options, op count, seed}: the
// schedule is computed before the simulation starts, so open-loop runs stay
// exactly as replayable (and thread-count independent) as closed-loop ones.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"

namespace sbrs::sim {

enum class ArrivalProcess {
  kClosedLoop,  // no arrival schedule: sessions self-pace (the default)
  kFixedRate,   // op i arrives at floor(i / rate): a perfectly paced feed
  kBursty,      // on-off: arrivals compressed into periodic on-windows
  kPoisson,     // seeded exponential interarrivals with mean 1 / rate
};

const char* to_string(ArrivalProcess p);
/// Parse "closed" / "fixed" / "burst" / "poisson"; throws CheckFailure
/// otherwise.
ArrivalProcess parse_arrival_process(const std::string& s);

struct ArrivalOptions {
  ArrivalProcess process = ArrivalProcess::kClosedLoop;
  /// Mean offered load in operations per simulator step. For the store this
  /// is per shard (each shard is one simulator with its own logical clock).
  double rate = 0.25;
  /// Bursty (on-off) shape: each cycle is `burst_on` steps of arrivals
  /// followed by `burst_off` idle steps. The mean rate is preserved — the
  /// on-window peak rate is rate * (on + off) / on.
  uint64_t burst_on = 64;
  uint64_t burst_off = 192;
};

inline bool open_loop(const ArrivalOptions& a) {
  return a.process != ArrivalProcess::kClosedLoop;
}

/// Validate an arrival spec without generating a schedule: returns the
/// empty string when the spec is usable, else a human-readable reason.
/// Closed-loop specs are always valid (the open-loop knobs are ignored);
/// open-loop specs need a positive finite rate, and bursty ones an
/// on-window of at least one step (burst_on == 0 would divide by zero /
/// never release an arrival). generate_arrivals enforces the same rule via
/// SBRS_CHECK; front-ends (sbrs_cli, bench_store, the Store constructor)
/// call this up front so a bad flag is a usage error, not a deep failure.
std::string validate_arrival(const ArrivalOptions& a);

/// Decorrelate the arrival-schedule RNG from the schedule RNG (both are
/// seeded from the same run seed; an identical stream would couple crash
/// points to arrival times).
uint64_t arrival_seed(uint64_t seed);

/// The arrival step of each of `num_ops` operations, nondecreasing.
/// Deterministic in {opts, num_ops, seed}; `seed` is only consumed by the
/// Poisson process. Requires an open-loop process and a positive finite
/// rate.
std::vector<uint64_t> generate_arrivals(const ArrivalOptions& opts,
                                        size_t num_ops, uint64_t seed);

/// The FIFO arrival queue shared by the open-loop workloads
/// (sim::OpenLoopWorkload, store::QueueWorkload): payloads are pushed with
/// nondecreasing arrival steps, released into a ready queue by
/// advance_to(now), and popped at dispatch. Tracks the two queueing
/// statistics saturation detection rests on — the depth maximum and the
/// backlog left at the instant the last arrival was released.
template <typename Payload>
class ArrivalQueue {
 public:
  void push(uint64_t step, Payload payload) {
    SBRS_CHECK_MSG(scheduled_.empty() || scheduled_.back().step <= step,
                   "arrivals must be pushed in nondecreasing step order");
    scheduled_.push_back(Entry{step, std::move(payload)});
    final_backlog_.reset();  // a new batch re-evaluates its own backlog
  }

  /// Release every arrival scheduled at or before `now`.
  void advance_to(uint64_t now) {
    const bool had_pending = released_ < scheduled_.size();
    while (released_ < scheduled_.size() &&
           scheduled_[released_].step <= now) {
      ready_.push_back(std::move(scheduled_[released_]));
      ++released_;
    }
    max_queue_depth_ = std::max<uint64_t>(max_queue_depth_, ready_.size());
    if (had_pending && released_ == scheduled_.size() &&
        !final_backlog_.has_value()) {
      final_backlog_ = ready_.size();
    }
  }

  bool ready() const { return !ready_.empty(); }

  /// Pop the oldest released entry: {arrival step, payload}.
  std::pair<uint64_t, Payload> pop() {
    SBRS_CHECK(!ready_.empty());
    Entry e = std::move(ready_.front());
    ready_.pop_front();
    return {e.step, std::move(e.payload)};
  }

  /// Earliest not-yet-released arrival step, if any.
  std::optional<uint64_t> next_arrival() const {
    if (released_ >= scheduled_.size()) return std::nullopt;
    return scheduled_[released_].step;
  }

  /// Largest number of released-but-undispatched entries ever queued.
  uint64_t max_queue_depth() const { return max_queue_depth_; }

  /// Released-but-undispatched entries queued right now (the trace layer's
  /// queue-depth counter samples this each step).
  uint64_t depth() const { return ready_.size(); }

  /// Entries not yet popped (queued now or arriving later).
  size_t undispatched() const {
    return ready_.size() + (scheduled_.size() - released_);
  }

  /// Queue depth at the instant the last arrival was released — the
  /// backlog the offered load left behind. A stable system keeps this near
  /// the session count; an overloaded one accumulates a backlog
  /// proportional to the whole stream (the saturation signal for runs
  /// that still drain within the step budget).
  uint64_t final_backlog() const { return final_backlog_.value_or(0); }

  /// Step of the latest scheduled arrival (0 when none): later batches
  /// must base themselves at or past this to keep the push order legal.
  uint64_t last_scheduled_step() const {
    return scheduled_.empty() ? 0 : scheduled_.back().step;
  }

  /// The single saturation verdict every open-loop surface reports: the
  /// step budget cut the arrivals off, or the backlog at the end of the
  /// offered load exceeded 2x the session pool (a stable system keeps the
  /// queue near the session count; an overloaded one accumulates the
  /// whole stream). Always false when no arrival was ever scheduled —
  /// a closed-loop run truncated by the step budget is a stuck run, not a
  /// saturated one, and must keep failing liveness/quiescence checks.
  bool saturated(uint64_t session_slots, bool hit_step_limit) const {
    if (scheduled_.empty()) return false;
    return undispatched() > 0 || hit_step_limit ||
           final_backlog() > 2 * session_slots;
  }

 private:
  struct Entry {
    uint64_t step = 0;
    Payload payload;
  };

  std::vector<Entry> scheduled_;  // sorted; [0, released_) went to ready_
  size_t released_ = 0;
  std::deque<Entry> ready_;       // released, awaiting dispatch
  uint64_t max_queue_depth_ = 0;
  std::optional<uint64_t> final_backlog_;
};

}  // namespace sbrs::sim
