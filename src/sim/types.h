// Core vocabulary of the asynchronous fault-prone shared-memory model
// (Section 2 of the paper): high-level operations on the emulated register
// and low-level RMWs triggered on base objects.
//
// The backend-neutral protocol types (Invocation, ObjectStateBase, RmwFn,
// RepairPlan, SystemView, ...) live in runtime/types.h and are re-exported
// here as aliases — sbrs::sim::X and sbrs::runtime::X are the same types,
// so simulator code, tests and recorded artifacts are untouched by the
// backend split. Only PendingRmw stays simulator-specific: it carries the
// logical-step link-fault stamps the channel model schedules with.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <ostream>

#include "common/ids.h"
#include "common/value.h"
#include "metrics/footprint.h"
#include "runtime/types.h"

namespace sbrs::sim {

using OpKind = runtime::OpKind;
using RestartMode = runtime::RestartMode;
using Invocation = runtime::Invocation;
using ObjectStateBase = runtime::ObjectStateBase;
using ResponsePtr = runtime::ResponsePtr;
using RmwFn = runtime::RmwFn;
using RepairPlan = runtime::RepairPlan;
using SystemView = runtime::SystemView;
using RepairPlanner = runtime::RepairPlanner;

// Unqualified sim::to_string(RestartMode) / stream operators keep working.
using runtime::operator<<;
using runtime::to_string;

/// The sentinel "client" repair pushes are attributed to (runtime::
/// kRepairSource): replica-mesh traffic has no client session, never
/// observes a response, and is never partitioned by client-link cuts.
inline constexpr ClientId kRepairSource = runtime::kRepairSource;

/// A triggered-but-not-yet-delivered RMW. Its parameters (request_footprint)
/// are counted as storage per the paper's channel-accounting rule.
/// Simulator-specific: the link-fault stamps below are scheduled on the
/// logical clock.
struct PendingRmw {
  RmwId id;
  OpId op;
  ClientId client;
  ObjectId target;
  RmwFn fn;
  metrics::StorageFootprint request_footprint;
  /// Monotone sequence number of the trigger; the adversary uses it to find
  /// the longest-pending RMW (Definition 7, rule 1).
  uint64_t trigger_seq = 0;
  /// Link-fault stamps (sim/linkfault.h), applied at trigger time. The RMW
  /// cannot be delivered before step `deliverable_at` (delay / reorder
  /// windows); a `dropped` RMW stays in the channel but its delivery is the
  /// loss taking effect — it never reaches the object.
  uint64_t deliverable_at = 0;
  bool dropped = false;
  /// A repair push (Simulator::trigger_repair): originates from the replica
  /// mesh, not a client (client is kRepairSource), belongs to no operation,
  /// and closes the target's repair window on delivery.
  bool is_repair = false;
};

}  // namespace sbrs::sim
