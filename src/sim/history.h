// Run histories, re-exported under sbrs::sim.
//
// History itself is backend-neutral (runtime/history.h): the simulator
// stamps events with logical steps, the threaded backend with a monotone
// sequence number. The aliases here keep sim::History (and with it every
// consistency-checker signature and recorded fingerprint) exactly what it
// was before the backend split.
#pragma once

#include "runtime/history.h"
#include "sim/types.h"

namespace sbrs::sim {

using HistoryEvent = runtime::HistoryEvent;
using OpRecord = runtime::OpRecord;
using History = runtime::History;

using runtime::is_op_event;

}  // namespace sbrs::sim
