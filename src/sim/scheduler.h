// Scheduling: the environment/adversary of the asynchronous model.
//
// The scheduler is asked for the next action after every event. It fully
// controls asynchrony: which pending RMW takes effect and responds next,
// when clients get to invoke operations, and when crashes happen. The
// lower-bound adversary Ad (Definition 7) is one implementation; fair
// random/round-robin schedulers drive the liveness and consistency tests.
#pragma once

#include <cstdint>
#include <optional>

#include "common/ids.h"
#include "sim/types.h"

namespace sbrs::sim {

class Simulator;

struct Action {
  enum class Kind {
    kDeliverRmw,       // apply + respond a pending RMW
    kInvoke,           // let a client invoke its next workload operation
    kCrashObject,      // crash a base object
    kCrashClient,      // crash a client
    kRestartObject,    // re-arm a crashed base object (crash recovery)
    kRepairObject,     // trigger one anti-entropy repair push at an object
    kPartitionLink,    // cut one (client, object) link (sim/linkfault.h)
    kPartitionObject,  // cut every client's link to an object
    kHealLink,         // re-open one link
    kHealObject,       // re-open every link to an object
    kHealAll,          // re-open every link
    kDropRmw,          // remove a pending RMW from the channel (lost)
    kDelayRmw,         // push a pending RMW's release time forward
    kStop,             // end the run (adversary reached its fixed point)
  };
  Kind kind = Kind::kStop;
  RmwId rmw{};       // for kDeliverRmw / kDropRmw / kDelayRmw
  ClientId client{}; // for kInvoke / kCrashClient / link partitions
  ObjectId object{}; // for kCrashObject / kRestartObject / partitions
  RestartMode restart_mode = RestartMode::kFromDisk;  // for kRestartObject
  /// kPartition*: auto-heal this many steps after the cut (0 = only an
  /// explicit heal re-opens the link).
  uint64_t heal_after = 0;
  uint64_t delay = 0;  // for kDelayRmw: extra undeliverable steps

  static Action deliver(RmwId id) {
    Action a;
    a.kind = Kind::kDeliverRmw;
    a.rmw = id;
    return a;
  }
  static Action invoke(ClientId c) {
    Action a;
    a.kind = Kind::kInvoke;
    a.client = c;
    return a;
  }
  static Action crash_object(ObjectId o) {
    Action a;
    a.kind = Kind::kCrashObject;
    a.object = o;
    return a;
  }
  static Action crash_client(ClientId c) {
    Action a;
    a.kind = Kind::kCrashClient;
    a.client = c;
    return a;
  }
  static Action restart_object(ObjectId o, RestartMode mode) {
    Action a;
    a.kind = Kind::kRestartObject;
    a.object = o;
    a.restart_mode = mode;
    return a;
  }
  static Action repair_object(ObjectId o) {
    Action a;
    a.kind = Kind::kRepairObject;
    a.object = o;
    return a;
  }
  static Action partition_link(ClientId c, ObjectId o, uint64_t heal_after) {
    Action a;
    a.kind = Kind::kPartitionLink;
    a.client = c;
    a.object = o;
    a.heal_after = heal_after;
    return a;
  }
  static Action partition_object(ObjectId o, uint64_t heal_after) {
    Action a;
    a.kind = Kind::kPartitionObject;
    a.object = o;
    a.heal_after = heal_after;
    return a;
  }
  static Action heal_link(ClientId c, ObjectId o) {
    Action a;
    a.kind = Kind::kHealLink;
    a.client = c;
    a.object = o;
    return a;
  }
  static Action heal_object(ObjectId o) {
    Action a;
    a.kind = Kind::kHealObject;
    a.object = o;
    return a;
  }
  static Action heal_all() {
    Action a;
    a.kind = Kind::kHealAll;
    return a;
  }
  static Action drop_rmw(RmwId id) {
    Action a;
    a.kind = Kind::kDropRmw;
    a.rmw = id;
    return a;
  }
  static Action delay_rmw(RmwId id, uint64_t delay) {
    Action a;
    a.kind = Kind::kDelayRmw;
    a.rmw = id;
    a.delay = delay;
    return a;
  }
  static Action stop() { return Action{}; }
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Choose the next action given the current simulator state. Returning
  /// kStop ends the run. The simulator itself stops when no action is
  /// possible (no pending RMWs, no invocable operations).
  virtual Action next(const Simulator& sim) = 0;

  /// A short reason string recorded when the scheduler stops the run.
  virtual std::string stop_reason() const { return ""; }

  /// Earliest future step at which this scheduler has an action to take
  /// even if nothing is schedulable before then (a due restart, a scripted
  /// fault-timeline event). When nothing is deliverable or invocable, the
  /// simulator fast-forwards its idle clock to the minimum of this, the
  /// next workload arrival, and the next link-fault release/heal instead
  /// of stopping. Non-const: implementations may update their own
  /// observation bookkeeping.
  virtual std::optional<uint64_t> next_wakeup(const Simulator& sim) {
    (void)sim;
    return std::nullopt;
  }
};

}  // namespace sbrs::sim
