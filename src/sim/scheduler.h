// Scheduling: the environment/adversary of the asynchronous model.
//
// The scheduler is asked for the next action after every event. It fully
// controls asynchrony: which pending RMW takes effect and responds next,
// when clients get to invoke operations, and when crashes happen. The
// lower-bound adversary Ad (Definition 7) is one implementation; fair
// random/round-robin schedulers drive the liveness and consistency tests.
#pragma once

#include <cstdint>
#include <optional>

#include "common/ids.h"
#include "sim/types.h"

namespace sbrs::sim {

class Simulator;

struct Action {
  enum class Kind {
    kDeliverRmw,     // apply + respond a pending RMW
    kInvoke,         // let a client invoke its next workload operation
    kCrashObject,    // crash a base object
    kCrashClient,    // crash a client
    kRestartObject,  // re-arm a crashed base object (crash recovery)
    kStop,           // end the run (adversary reached its fixed point, etc.)
  };
  Kind kind = Kind::kStop;
  RmwId rmw{};       // for kDeliverRmw
  ClientId client{}; // for kInvoke / kCrashClient
  ObjectId object{}; // for kCrashObject / kRestartObject
  RestartMode restart_mode = RestartMode::kFromDisk;  // for kRestartObject

  static Action deliver(RmwId id) {
    Action a;
    a.kind = Kind::kDeliverRmw;
    a.rmw = id;
    return a;
  }
  static Action invoke(ClientId c) {
    Action a;
    a.kind = Kind::kInvoke;
    a.client = c;
    return a;
  }
  static Action crash_object(ObjectId o) {
    Action a;
    a.kind = Kind::kCrashObject;
    a.object = o;
    return a;
  }
  static Action crash_client(ClientId c) {
    Action a;
    a.kind = Kind::kCrashClient;
    a.client = c;
    return a;
  }
  static Action restart_object(ObjectId o, RestartMode mode) {
    Action a;
    a.kind = Kind::kRestartObject;
    a.object = o;
    a.restart_mode = mode;
    return a;
  }
  static Action stop() { return Action{}; }
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Choose the next action given the current simulator state. Returning
  /// kStop ends the run. The simulator itself stops when no action is
  /// possible (no pending RMWs, no invocable operations).
  virtual Action next(const Simulator& sim) = 0;

  /// A short reason string recorded when the scheduler stops the run.
  virtual std::string stop_reason() const { return ""; }
};

}  // namespace sbrs::sim
