#include "sim/linkfault.h"

#include <algorithm>

#include "common/check.h"

namespace sbrs::sim {

uint64_t fault_seed(uint64_t seed) {
  // Dedicated stream (common/rng.h registry): the fault stream must
  // coincide with neither the schedule nor the arrival stream.
  return derive_stream_seed(seed, seed_stream::kLinkFault);
}

LinkFaultTable::LinkFaultTable(const LinkFaultOptions& opts,
                               uint32_t num_clients, uint32_t num_objects)
    : num_clients_(num_clients), num_objects_(num_objects), rng_(opts.seed) {
  heal_at_.assign(static_cast<size_t>(num_clients) * num_objects, 0);
  // Normalize the scalar knobs into run-wide windows, then append the
  // explicit ones. Order matters only for RNG draw sequence, which is
  // pinned by this fixed normalization.
  if (opts.drop_permyriad > 0) {
    FaultWindow w;
    w.kind = FaultWindow::Kind::kDrop;
    w.permyriad = opts.drop_permyriad;
    w.max_events = opts.max_drops;
    windows_.push_back(ActiveWindow{w, 0});
  }
  if (opts.delay_permyriad > 0 &&
      (opts.delay_steps > 0 || opts.delay_jitter > 0)) {
    FaultWindow w;
    w.kind = FaultWindow::Kind::kDelay;
    w.permyriad = opts.delay_permyriad;
    w.delay = opts.delay_steps;
    w.jitter = opts.delay_jitter;
    windows_.push_back(ActiveWindow{w, 0});
  }
  if (opts.reorder_window > 0) {
    FaultWindow w;
    w.kind = FaultWindow::Kind::kReorder;
    w.delay = opts.reorder_window;
    windows_.push_back(ActiveWindow{w, 0});
  }
  for (const FaultWindow& w : opts.windows) {
    windows_.push_back(ActiveWindow{w, 0});
  }
}

void LinkFaultTable::on_trigger(PendingRmw& p, uint64_t now) {
  for (ActiveWindow& aw : windows_) {
    const FaultWindow& w = aw.w;
    if (now < w.from || now >= w.until) continue;
    if (w.object != kAllObjects && w.object != p.target.value) continue;
    if (aw.fired >= w.max_events) continue;
    // Sure-fire windows (permyriad >= 10'000) skip the draw so an
    // always-on reorder window costs one draw per trigger, not two.
    if (w.permyriad < 10'000 && rng_.below(10'000) >= w.permyriad) continue;
    ++aw.fired;
    switch (w.kind) {
      case FaultWindow::Kind::kDrop:
        p.dropped = true;
        return;  // a dropped request can't also be delayed
      case FaultWindow::Kind::kDelay: {
        const uint64_t extra =
            w.delay + (w.jitter > 0 ? rng_.below(w.jitter + 1) : 0);
        p.deliverable_at = std::max(p.deliverable_at, now + extra);
        break;
      }
      case FaultWindow::Kind::kReorder: {
        const uint64_t extra = w.delay > 0 ? rng_.below(w.delay + 1) : 0;
        p.deliverable_at = std::max(p.deliverable_at, now + extra);
        break;
      }
    }
  }
}

std::vector<Link> LinkFaultTable::cut_link(ClientId c, ObjectId o,
                                           uint64_t heal_at) {
  SBRS_CHECK_MSG(c.value < num_clients_ && o.value < num_objects_,
                 "cut of unknown link (" << c << ", " << o << ")");
  SBRS_CHECK_MSG(heal_at > 0, "cut with a heal deadline in the past");
  engaged_ = true;
  uint64_t& slot = heal_at_[index(c, o)];
  const bool was_open = slot == 0;
  slot = heal_at;  // re-cutting a cut link just moves its deadline
  if (!was_open) return {};
  ++cut_links_;
  return {Link{c, o}};
}

std::vector<Link> LinkFaultTable::cut_object(ObjectId o, uint64_t heal_at) {
  std::vector<Link> changed;
  for (uint32_t c = 0; c < num_clients_; ++c) {
    auto one = cut_link(ClientId{c}, o, heal_at);
    changed.insert(changed.end(), one.begin(), one.end());
  }
  return changed;
}

std::vector<Link> LinkFaultTable::heal_link(ClientId c, ObjectId o) {
  SBRS_CHECK_MSG(c.value < num_clients_ && o.value < num_objects_,
                 "heal of unknown link (" << c << ", " << o << ")");
  uint64_t& slot = heal_at_[index(c, o)];
  if (slot == 0) return {};
  slot = 0;
  SBRS_CHECK(cut_links_ > 0);
  --cut_links_;
  return {Link{c, o}};
}

std::vector<Link> LinkFaultTable::heal_object(ObjectId o) {
  std::vector<Link> changed;
  for (uint32_t c = 0; c < num_clients_; ++c) {
    auto one = heal_link(ClientId{c}, o);
    changed.insert(changed.end(), one.begin(), one.end());
  }
  return changed;
}

std::vector<Link> LinkFaultTable::heal_all() {
  std::vector<Link> changed;
  for (uint32_t c = 0; c < num_clients_; ++c) {
    for (uint32_t o = 0; o < num_objects_; ++o) {
      auto one = heal_link(ClientId{c}, ObjectId{o});
      changed.insert(changed.end(), one.begin(), one.end());
    }
  }
  return changed;
}

std::vector<Link> LinkFaultTable::advance_to(uint64_t now) {
  std::vector<Link> healed;
  if (cut_links_ == 0) return healed;
  for (uint32_t c = 0; c < num_clients_; ++c) {
    for (uint32_t o = 0; o < num_objects_; ++o) {
      uint64_t& slot = heal_at_[index(ClientId{c}, ObjectId{o})];
      if (slot != 0 && slot != UINT64_MAX && slot <= now) {
        slot = 0;
        SBRS_CHECK(cut_links_ > 0);
        --cut_links_;
        healed.push_back(Link{ClientId{c}, ObjectId{o}});
      }
    }
  }
  return healed;
}

bool LinkFaultTable::link_cut(ClientId c, ObjectId o) const {
  if (cut_links_ == 0) return false;
  if (c.value >= num_clients_ || o.value >= num_objects_) return false;
  return heal_at_[index(c, o)] != 0;
}

std::optional<uint64_t> LinkFaultTable::next_auto_heal() const {
  if (cut_links_ == 0) return std::nullopt;
  std::optional<uint64_t> out;
  for (uint64_t h : heal_at_) {
    if (h == 0 || h == UINT64_MAX) continue;
    if (!out.has_value() || h < *out) out = h;
  }
  return out;
}

std::optional<uint64_t> LinkFaultTable::next_release(
    const std::deque<PendingRmw>& pending, uint64_t now) const {
  std::optional<uint64_t> out;
  for (const PendingRmw& p : pending) {
    if (p.dropped || p.deliverable_at <= now) continue;
    if (link_cut(p.client, p.target)) continue;
    if (!out.has_value() || p.deliverable_at < *out) out = p.deliverable_at;
  }
  return out;
}

}  // namespace sbrs::sim
