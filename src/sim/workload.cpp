#include "sim/workload.h"

#include <algorithm>

#include "common/check.h"

namespace sbrs::sim {

uint32_t UniformWorkload::issued_for(ClientId c) const {
  return c.value < issued_.size() ? issued_[c.value] : 0;
}

bool UniformWorkload::has_more(ClientId c) const {
  if (c.value < opts_.writers) {
    return issued_for(c) < opts_.writes_per_client;
  }
  if (c.value < opts_.writers + opts_.readers) {
    return issued_for(c) < opts_.reads_per_client;
  }
  return false;
}

Invocation UniformWorkload::next(ClientId c, OpId id) {
  SBRS_CHECK(has_more(c));
  if (c.value >= issued_.size()) issued_.resize(c.value + 1, 0);
  ++issued_[c.value];

  Invocation inv;
  inv.op = id;
  inv.client = c;
  if (c.value < opts_.writers) {
    inv.kind = OpKind::kWrite;
    inv.value = Value::from_tag(id.value, opts_.data_bits);
  } else {
    inv.kind = OpKind::kRead;
  }
  return inv;
}

OpenLoopWorkload::OpenLoopWorkload(Options opts,
                                   std::vector<uint64_t> arrivals)
    : opts_(opts) {
  SBRS_CHECK(opts_.clients >= 1);
  SBRS_CHECK_MSG(
      arrivals.size() == size_t{opts_.write_ops} + opts_.read_ops,
      "arrival schedule has " << arrivals.size() << " entries for "
                              << (opts_.write_ops + opts_.read_ops) << " ops");
  for (size_t i = 0; i < arrivals.size(); ++i) {
    queue_.push(arrivals[i], i);  // push() checks the nondecreasing order
  }
}

bool OpenLoopWorkload::is_write(size_t index) const {
  // Proportional (Bresenham) interleave of write_ops writes among the
  // total: op i is a write iff the scaled write count advances at i.
  const uint64_t total = uint64_t{opts_.write_ops} + opts_.read_ops;
  return (index + 1) * opts_.write_ops / total >
         index * opts_.write_ops / total;
}

bool OpenLoopWorkload::has_more(ClientId c) const {
  return c.value < opts_.clients && queue_.ready();
}

Invocation OpenLoopWorkload::next(ClientId c, OpId id) {
  SBRS_CHECK(has_more(c));
  const auto [arrival, index] = queue_.pop();

  Invocation inv;
  inv.op = id;
  inv.client = c;
  inv.arrival_time = arrival;
  if (is_write(index)) {
    inv.kind = OpKind::kWrite;
    inv.value = Value::from_tag(id.value, opts_.data_bits);
  } else {
    inv.kind = OpKind::kRead;
  }
  return inv;
}

void OpenLoopWorkload::advance_to(uint64_t now) { queue_.advance_to(now); }

std::optional<uint64_t> OpenLoopWorkload::next_arrival() const {
  return queue_.next_arrival();
}

bool ScriptedWorkload::has_more(ClientId c) const {
  for (size_t i = 0; i < steps_.size(); ++i) {
    const bool used = i < consumed_.size() && consumed_[i];
    if (!used && steps_[i].client == c) return true;
  }
  return false;
}

Invocation ScriptedWorkload::next(ClientId c, OpId id) {
  for (size_t i = 0; i < steps_.size(); ++i) {
    const bool used = i < consumed_.size() && consumed_[i];
    if (!used && steps_[i].client == c) {
      if (consumed_.size() < steps_.size()) consumed_.resize(steps_.size());
      consumed_[i] = true;
      Invocation inv;
      inv.op = id;
      inv.client = c;
      inv.kind = steps_[i].kind;
      inv.value = steps_[i].value;
      return inv;
    }
  }
  SBRS_CHECK_MSG(false, "ScriptedWorkload::next with no step for client");
  return {};
}

uint32_t MixedWorkload::issued_for(ClientId c) const {
  return c.value < issued_.size() ? issued_[c.value] : 0;
}

bool MixedWorkload::has_more(ClientId c) const {
  return c.value < opts_.clients && issued_for(c) < opts_.ops_per_client;
}

Invocation MixedWorkload::next(ClientId c, OpId id) {
  SBRS_CHECK(has_more(c));
  if (c.value >= issued_.size()) issued_.resize(c.value + 1, 0);
  ++issued_[c.value];

  Invocation inv;
  inv.op = id;
  inv.client = c;
  if (rng_.below(100) < opts_.write_percent) {
    inv.kind = OpKind::kWrite;
    inv.value = Value::from_tag(id.value, opts_.data_bits);
  } else {
    inv.kind = OpKind::kRead;
  }
  return inv;
}

}  // namespace sbrs::sim
