#include "sim/workload.h"

#include "common/check.h"

namespace sbrs::sim {

uint32_t UniformWorkload::issued_for(ClientId c) const {
  return c.value < issued_.size() ? issued_[c.value] : 0;
}

bool UniformWorkload::has_more(ClientId c) const {
  if (c.value < opts_.writers) {
    return issued_for(c) < opts_.writes_per_client;
  }
  if (c.value < opts_.writers + opts_.readers) {
    return issued_for(c) < opts_.reads_per_client;
  }
  return false;
}

Invocation UniformWorkload::next(ClientId c, OpId id) {
  SBRS_CHECK(has_more(c));
  if (c.value >= issued_.size()) issued_.resize(c.value + 1, 0);
  ++issued_[c.value];

  Invocation inv;
  inv.op = id;
  inv.client = c;
  if (c.value < opts_.writers) {
    inv.kind = OpKind::kWrite;
    inv.value = Value::from_tag(id.value, opts_.data_bits);
  } else {
    inv.kind = OpKind::kRead;
  }
  return inv;
}

bool ScriptedWorkload::has_more(ClientId c) const {
  for (size_t i = 0; i < steps_.size(); ++i) {
    const bool used = i < consumed_.size() && consumed_[i];
    if (!used && steps_[i].client == c) return true;
  }
  return false;
}

Invocation ScriptedWorkload::next(ClientId c, OpId id) {
  for (size_t i = 0; i < steps_.size(); ++i) {
    const bool used = i < consumed_.size() && consumed_[i];
    if (!used && steps_[i].client == c) {
      if (consumed_.size() < steps_.size()) consumed_.resize(steps_.size());
      consumed_[i] = true;
      Invocation inv;
      inv.op = id;
      inv.client = c;
      inv.kind = steps_[i].kind;
      inv.value = steps_[i].value;
      return inv;
    }
  }
  SBRS_CHECK_MSG(false, "ScriptedWorkload::next with no step for client");
  return {};
}

uint32_t MixedWorkload::issued_for(ClientId c) const {
  return c.value < issued_.size() ? issued_[c.value] : 0;
}

bool MixedWorkload::has_more(ClientId c) const {
  return c.value < opts_.clients && issued_for(c) < opts_.ops_per_client;
}

Invocation MixedWorkload::next(ClientId c, OpId id) {
  SBRS_CHECK(has_more(c));
  if (c.value >= issued_.size()) issued_.resize(c.value + 1, 0);
  ++issued_[c.value];

  Invocation inv;
  inv.op = id;
  inv.client = c;
  if (rng_.below(100) < opts_.write_percent) {
    inv.kind = OpKind::kWrite;
    inv.value = Value::from_tag(id.value, opts_.data_bits);
  } else {
    inv.kind = OpKind::kRead;
  }
  return inv;
}

}  // namespace sbrs::sim
