// The discrete-event simulator for the asynchronous fault-prone shared
// memory model of Section 2.
//
// Runs are alternating sequences of configurations and actions (Appendix A);
// logical time is the number of actions taken. A single seed determines the
// whole run given a deterministic scheduler, making every schedule — in
// particular adversarial counterexamples — exactly replayable.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/ids.h"
#include "common/rng.h"
#include "metrics/latency_histogram.h"
#include "metrics/snapshot.h"
#include "metrics/storage_meter.h"
#include "obs/trace.h"
#include "sim/client.h"
#include "sim/history.h"
#include "sim/linkfault.h"
#include "sim/scheduler.h"
#include "sim/types.h"
#include "sim/workload.h"

namespace sbrs::sim {

struct SimConfig {
  uint32_t num_objects = 3;
  uint32_t num_clients = 2;
  uint64_t max_steps = 2'000'000;
  /// Decimation for the storage-meter time series: one series entry every
  /// `sample_every` events. Decimation thins only the plotted series — the
  /// storage *maxima* are updated on every event and are always exact. The
  /// default is shared with harness::RunOptions (kDefaultSampleEvery) so the
  /// sim and harness layers cannot drift apart.
  uint64_t sample_every = metrics::kDefaultSampleEvery;
  /// Count storage held at crashed base objects (Definition 2 counts all of
  /// S; flip off to measure live storage only).
  bool count_crashed = true;
  /// Debug cross-check of the incremental storage accounting: rebuild the
  /// full Definition 2 snapshot after every step and assert the delta-tracked
  /// totals match it exactly. O(system size) per step — on by default in
  /// debug builds, off in release.
#ifdef NDEBUG
  bool verify_accounting = false;
#else
  bool verify_accounting = true;
#endif
  /// Probabilistic message faults between client-object pairs (drops,
  /// delays, reordering windows) applied at trigger time; partitions are
  /// driven through Actions instead. Empty options keep the fault layer
  /// fully disengaged — zero RNG draws, identical schedules.
  LinkFaultOptions link_faults;
  /// Active repair (read-repair + anti-entropy pumps) planner: builds the
  /// push RMW that re-converges one repairing object from its live peers.
  /// Null (the default) disables active repair entirely — no extra RMWs,
  /// no RNG draws, repair-free runs keep their artifacts byte-identical.
  RepairPlanner repair_planner;
  /// Read-repair: when a *read* completes while >= 1 object sits inside
  /// its repair window, trigger one repair push per repairing object (the
  /// read just proved the stale replica is visible traffic). Requires
  /// repair_planner; off by default.
  bool read_repair = false;
  /// Budget (in request bits) for the repair pushes of the whole run:
  /// trigger_repair refuses once the bits already pushed reach it. The
  /// default is unbounded.
  uint64_t repair_budget = UINT64_MAX;
  /// Structured trace sink (obs/trace.h): op spans, RMW message spans,
  /// partition/repair intervals, crash/restart instants and decimated
  /// counter samples are emitted into it as the run executes, stamped with
  /// logical steps. Null (the default) disables tracing entirely: every
  /// emission site is one pointer test, no RNG draw, no allocation — the
  /// same O(1) disabled-path discipline as LinkFaultTable::engaged(), so
  /// trace-free runs keep artifacts and fingerprints byte-identical. The
  /// sink is borrowed, not owned; it must outlive the simulator.
  obs::TraceSink* trace = nullptr;
};

struct RunReport {
  uint64_t steps = 0;
  bool hit_step_limit = false;
  /// True when every workload operation was invoked and returned.
  bool quiesced = false;
  /// Why run() ended: kStopQuiesced (drained), kStopStepLimit, kStopStalled
  /// (undrained but nothing will ever be schedulable again), or the
  /// scheduler's own stated reason (kStopSchedulerStop when it gave none).
  /// The canonical values live in common/stop_reason.h. Empty until run()
  /// completes once.
  std::string stop_reason;
  size_t invoked_ops = 0;
  size_t completed_ops = 0;
  uint64_t rmws_triggered = 0;
  uint64_t rmws_delivered = 0;
  /// Latency (in simulator steps, invoke to return) of every completed
  /// operation. Deterministic for a given seed — latency in this model is
  /// logical time, not wall clock.
  metrics::LatencyHistogram op_latency;
  /// Sojourn time (arrival to return) of every completed operation: service
  /// time plus the queueing delay an open-loop workload imposes before a
  /// session is free to invoke it. For closed-loop workloads arrival ==
  /// invoke, so this histogram equals op_latency.
  metrics::LatencyHistogram sojourn_latency;

  // --- Crash-recovery outcome (all zero/empty for crash-free runs) ---

  /// Base-object crash and restart events over the whole run (a restarted
  /// object that crashes again counts each event separately).
  uint64_t object_crash_events = 0;
  uint64_t object_restarts = 0;
  /// RMW request bits delivered to restarted objects during their repair
  /// window: from restart up to and including the close — the first
  /// delivered payload-carrying RMW of a write invoked strictly after the
  /// restart (the store-phase overwrite that re-converges the replica; a
  /// fresh write's query round carries no payload and leaves the window
  /// open), or the first delivered repair push (read-repair / anti-entropy,
  /// which re-converges by construction). The paper's Definition 2 channel
  /// accounting prices each request, so this is exactly the extra traffic
  /// recovery cost the deployment.
  uint64_t repair_bits = 0;
  /// Repair pushes triggered by the active repair subsystem (read-repair
  /// hooks plus anti-entropy pump actions); 0 whenever repair is off.
  uint64_t repair_pushes = 0;
  /// Repair windows still open when the run ended — with active repair on
  /// and decodable peers this should drain to 0 even without foreground
  /// writes.
  uint32_t open_repair_windows = 0;
  /// Steps taken while at least one base object was crashed — the length
  /// of the degraded windows (quorums shrunk to their floor).
  uint64_t degraded_steps = 0;
  /// Logical time spent inside repair windows, summed per window from the
  /// restart to the close (or to a re-crash / the end of the run). The axis
  /// repair bandwidth buys down: a faster anti-entropy pump spends more
  /// pushes to shrink this.
  uint64_t repair_window_steps = 0;
  /// Sojourn time of operations that *returned* during a degraded window.
  /// Comparing its tail against sojourn_latency shows what crashes cost
  /// the ops that lived through them.
  metrics::LatencyHistogram degraded_sojourn;

  // --- Link-fault outcome (all zero for fault-free runs). Partition time
  // --- is charged into degraded_steps/degraded_sojourn above: a step is
  // --- degraded while any object is crashed OR any link is cut.

  /// Link-level partition / heal transitions (one per link per cut or
  /// re-open; a whole-object partition counts each client's link).
  uint64_t partition_events = 0;
  uint64_t heal_events = 0;
  /// RMWs lost in the network (probabilistic drops plus scripted
  /// kDropRmw actions) and RMWs stamped with a future release time
  /// (delay / reorder windows plus scripted kDelayRmw actions).
  uint64_t rmws_dropped = 0;
  uint64_t rmws_delayed = 0;
};

/// The simulator is itself a runtime::SystemView: repair planners (typed
/// against the view so the register/store layers stay backend-neutral) read
/// liveness, repair windows and object states straight off it.
class Simulator final : public SystemView {
 public:
  Simulator(SimConfig config, ObjectFactory object_factory,
            ClientFactory client_factory, std::unique_ptr<Workload> workload,
            std::unique_ptr<Scheduler> scheduler);

  /// Execute until the scheduler stops, nothing is schedulable, or the step
  /// limit is reached.
  RunReport run();

  /// Take exactly one scheduler-chosen step; returns false when the run is
  /// over. Used by drivers that interleave measurement with execution.
  bool step();

  /// Re-arm a simulator that stopped because nothing was schedulable, so
  /// more workload can be driven through it (the store's interactive
  /// put/get path pushes operations into its queue workload and resumes).
  /// A no-op once the step limit was hit or the scheduler stopped the run
  /// for a stated reason (an idle kStop with an empty reason — the fair
  /// schedulers' "nothing to do" — stays resumable).
  void resume() {
    if (!report_.hit_step_limit && !scheduler_stopped_) stopped_ = false;
  }

  /// Re-arm a crashed base object so it resumes receiving triggers and
  /// serving RMW responses. kFromDisk re-joins with the state frozen at
  /// crash time (the persisted image; on_restart lets it shed volatile
  /// fields); kFromScratch discards that state and mounts a fresh object
  /// from the factory. Either way the object enters a repair window: RMW
  /// request bits it receives are charged to RunReport::repair_bits until
  /// the first payload-carrying fresh-write RMW lands (the overwrite;
  /// query rounds don't re-converge the replica and don't close). Tracked
  /// storage totals stay exactly equal to full snapshots across the
  /// transition, including with count_crashed == false. Callable by
  /// schedulers (via Action::restart_object) and directly by drivers
  /// between steps; a no-op error (CheckFailure) on a live object.
  void restart_object(ObjectId o, RestartMode mode);

  /// Trigger one repair push toward repairing object `o`: ask the
  /// configured repair planner for the push RMW and inject it into the
  /// channel as replica-mesh traffic (client = kRepairSource, no response
  /// is observed; the push ignores client-link partitions and takes no
  /// fault-RNG draws, so fault schedules are unperturbed). On delivery to
  /// the still-repairing target the push closes its repair window — even a
  /// zero-bit digest push (the planner found the replica already fresh).
  /// Returns false (a no-op) when repair is unconfigured, `o` is not in a
  /// repair window, the repair-bit budget is exhausted, or the planner
  /// found nothing decodable yet. Called by the anti-entropy pump
  /// (Action::repair_object) and the read-repair hook.
  bool trigger_repair(ObjectId o);

  /// True while the repair-push budget (SimConfig::repair_budget) has bits
  /// left; the anti-entropy pump stops pumping once it is spent.
  bool repair_budget_left() const {
    return repair_push_bits_ < config_.repair_budget;
  }

  /// Objects currently inside a repair window.
  uint32_t open_repair_windows() const;

  // --- Link partitions (sim/linkfault.h). Cut links hold RMWs in the
  // --- channel (undeliverable, still priced by Definition 2) until the
  // --- link heals — by these calls, by the matching Actions, or by the
  // --- auto-heal deadline `heal_after` steps after the cut (0 = explicit
  // --- heal only). Each link-state transition is recorded in the history
  // --- trace and counted in RunReport::partition_events / heal_events;
  // --- re-cutting a cut link only moves its deadline.

  void partition_link(ClientId c, ObjectId o, uint64_t heal_after = 0);
  void partition_object(ObjectId o, uint64_t heal_after = 0);
  void heal_link(ClientId c, ObjectId o);
  void heal_object(ObjectId o);
  void heal_all();

  // --- State inspection (used by schedulers, meters, the adversary) ---

  uint64_t now() const { return time_; }
  uint32_t num_objects() const override { return config_.num_objects; }
  uint32_t num_clients() const { return config_.num_clients; }

  bool object_alive(ObjectId o) const override;
  bool client_alive(ClientId c) const;
  uint32_t crashed_objects() const { return crashed_objects_; }

  /// True while `o` is restarted-but-not-yet-overwritten (its repair
  /// window): traffic it receives counts toward RunReport::repair_bits.
  bool object_repairing(ObjectId o) const override;

  /// Pending RMWs in trigger order (oldest first).
  const std::deque<PendingRmw>& pending() const { return pending_; }

  const LinkFaultTable& faults() const { return faults_; }

  /// True once any fault source exists (configured windows or a first
  /// partition): fault-aware schedulers switch to deliverability-filtered
  /// RMW picks. Sticky, but filtered and unfiltered picks coincide while
  /// no fault is active, so engaging it never perturbs a schedule.
  bool link_fault_mode() const { return faults_.engaged(); }

  /// Whether the scheduler may deliver `p` now (see
  /// LinkFaultTable::deliverable). Always true when faults are disengaged.
  bool rmw_deliverable(const PendingRmw& p) const {
    return faults_.deliverable(p, time_);
  }

  /// True if `c` is alive, has no outstanding operation, and the workload
  /// has another operation for it.
  bool can_invoke(ClientId c) const;

  /// Clients that can currently invoke, in id order.
  std::vector<ClientId> invocable_clients() const;

  /// The operation currently outstanding at client c (if any).
  std::optional<OpId> outstanding_op(ClientId c) const;

  const History& history() const { return history_; }
  const metrics::StorageMeter& meter() const { return meter_; }

  /// Assemble the full Definition 2 storage snapshot. O(objects + clients +
  /// pending RMWs) — measurement no longer calls this per step (the meter is
  /// fed by incremental deltas); it remains for the adversary, tests, and
  /// the verify_accounting cross-check.
  metrics::StorageSnapshot snapshot() const;

  // Incrementally tracked component totals (equal to the corresponding
  // snapshot() sums at all times; verify_accounting asserts this).
  uint64_t tracked_object_bits() const { return acct_object_bits_; }
  uint64_t tracked_client_bits() const { return acct_client_bits_; }
  uint64_t tracked_channel_bits() const { return acct_channel_bits_; }

  /// Direct access to a base object's algorithm state (tests/verifiers).
  const ObjectStateBase& object_state(ObjectId o) const override;

  const RunReport& report() const { return report_; }

 private:
  class ContextImpl;

  void apply(const Action& a);
  void do_deliver(RmwId id);
  void do_invoke(ClientId c);
  void do_crash_object(ObjectId o);
  void do_crash_client(ClientId c);
  void do_drop_rmw(RmwId id);
  void do_delay_rmw(RmwId id, uint64_t delay);
  void observe_storage();

  /// Something the scheduler can act on *now*: a deliverable pending RMW,
  /// an invocable client, or a due scheduler wakeup. Non-const because
  /// next_wakeup may update scheduler bookkeeping.
  bool actionable_now();
  void record_heals(const std::vector<Link>& healed);
  void record_partitions(const std::vector<Link>& cut);

  // --- Incremental storage accounting (the Definition 2 totals are kept
  // --- up to date by deltas applied at each mutation point, so observing
  // --- storage after a step is O(1) instead of a full snapshot rebuild).
  void refresh_object_bits(ObjectId o);
  void refresh_client_bits(ClientId c);
  void verify_accounting() const;

  SimConfig config_;
  std::unique_ptr<Workload> workload_;
  std::unique_ptr<Scheduler> scheduler_;
  /// Kept beyond construction: restart_object(kFromScratch) mounts a fresh
  /// replacement state from it.
  ObjectFactory object_factory_;

  std::vector<std::unique_ptr<ObjectStateBase>> objects_;
  std::vector<bool> object_alive_;
  /// Objects inside their post-restart repair window (see restart_object).
  std::vector<bool> object_repairing_;
  /// Step of each object's latest restart (meaningful while repairing): a
  /// delivered payload-carrying write-op RMW closes the window only if the
  /// write was invoked strictly after this — pre-crash writes still in
  /// flight don't count as the re-converging overwrite, and neither does a
  /// write invoked at the restart step itself (its payload may have been
  /// computed against pre-restart reads).
  std::vector<uint64_t> object_restart_time_;
  std::vector<std::unique_ptr<ClientProtocol>> clients_;
  std::vector<bool> client_alive_;
  std::vector<std::optional<OpId>> outstanding_;

  std::deque<PendingRmw> pending_;
  LinkFaultTable faults_;
  uint64_t time_ = 0;
  uint64_t next_op_id_ = 1;   // OpId 0 is reserved for the initial value v0
  uint64_t next_rmw_id_ = 1;
  uint64_t trigger_seq_ = 0;
  uint32_t crashed_objects_ = 0;

  History history_;
  metrics::StorageMeter meter_;
  RunReport report_;
  bool stopped_ = false;
  /// The scheduler ended the run with a stated reason (kStop + nonempty
  /// stop_reason): terminal, resume() won't re-arm. An idle kStop (empty
  /// reason) is equivalent to "nothing schedulable" and stays resumable.
  bool scheduler_stopped_ = false;

  // Per-component cached bit counts (always the component's true size, even
  // when crashed) and the aggregated totals the meter observes. When
  // count_crashed is false the aggregates exclude crashed components, to
  // match snapshot()'s filtering.
  std::vector<uint64_t> object_bits_;
  std::vector<uint64_t> client_bits_;
  uint64_t acct_object_bits_ = 0;
  uint64_t acct_client_bits_ = 0;
  uint64_t acct_channel_bits_ = 0;
  /// Request bits of the repair pushes triggered so far, checked against
  /// SimConfig::repair_budget (distinct from RunReport::repair_bits, which
  /// charges *delivered* in-window traffic of any origin).
  uint64_t repair_push_bits_ = 0;
};

}  // namespace sbrs::sim
