// The discrete-event simulator for the asynchronous fault-prone shared
// memory model of Section 2.
//
// Runs are alternating sequences of configurations and actions (Appendix A);
// logical time is the number of actions taken. A single seed determines the
// whole run given a deterministic scheduler, making every schedule — in
// particular adversarial counterexamples — exactly replayable.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/ids.h"
#include "common/rng.h"
#include "metrics/snapshot.h"
#include "metrics/storage_meter.h"
#include "sim/client.h"
#include "sim/history.h"
#include "sim/scheduler.h"
#include "sim/types.h"
#include "sim/workload.h"

namespace sbrs::sim {

struct SimConfig {
  uint32_t num_objects = 3;
  uint32_t num_clients = 2;
  uint64_t max_steps = 2'000'000;
  /// Decimation for the storage-meter time series (maxima are exact).
  uint64_t sample_every = 1;
  /// Count storage held at crashed base objects (Definition 2 counts all of
  /// S; flip off to measure live storage only).
  bool count_crashed = true;
};

struct RunReport {
  uint64_t steps = 0;
  bool hit_step_limit = false;
  /// True when every workload operation was invoked and returned.
  bool quiesced = false;
  std::string stop_reason;
  size_t invoked_ops = 0;
  size_t completed_ops = 0;
  uint64_t rmws_triggered = 0;
  uint64_t rmws_delivered = 0;
};

class Simulator {
 public:
  Simulator(SimConfig config, ObjectFactory object_factory,
            ClientFactory client_factory, std::unique_ptr<Workload> workload,
            std::unique_ptr<Scheduler> scheduler);

  /// Execute until the scheduler stops, nothing is schedulable, or the step
  /// limit is reached.
  RunReport run();

  /// Take exactly one scheduler-chosen step; returns false when the run is
  /// over. Used by drivers that interleave measurement with execution.
  bool step();

  // --- State inspection (used by schedulers, meters, the adversary) ---

  uint64_t now() const { return time_; }
  uint32_t num_objects() const { return config_.num_objects; }
  uint32_t num_clients() const { return config_.num_clients; }

  bool object_alive(ObjectId o) const;
  bool client_alive(ClientId c) const;
  uint32_t crashed_objects() const { return crashed_objects_; }

  /// Pending RMWs in trigger order (oldest first).
  const std::deque<PendingRmw>& pending() const { return pending_; }

  /// True if `c` is alive, has no outstanding operation, and the workload
  /// has another operation for it.
  bool can_invoke(ClientId c) const;

  /// Clients that can currently invoke, in id order.
  std::vector<ClientId> invocable_clients() const;

  /// The operation currently outstanding at client c (if any).
  std::optional<OpId> outstanding_op(ClientId c) const;

  const History& history() const { return history_; }
  const metrics::StorageMeter& meter() const { return meter_; }

  /// Assemble the full Definition 2 storage snapshot.
  metrics::StorageSnapshot snapshot() const;

  /// Direct access to a base object's algorithm state (tests/verifiers).
  const ObjectStateBase& object_state(ObjectId o) const;

  const RunReport& report() const { return report_; }

 private:
  class ContextImpl;

  void apply(const Action& a);
  void do_deliver(RmwId id);
  void do_invoke(ClientId c);
  void do_crash_object(ObjectId o);
  void do_crash_client(ClientId c);
  void observe_storage();

  SimConfig config_;
  std::unique_ptr<Workload> workload_;
  std::unique_ptr<Scheduler> scheduler_;

  std::vector<std::unique_ptr<ObjectStateBase>> objects_;
  std::vector<bool> object_alive_;
  std::vector<std::unique_ptr<ClientProtocol>> clients_;
  std::vector<bool> client_alive_;
  std::vector<std::optional<OpId>> outstanding_;

  std::deque<PendingRmw> pending_;
  uint64_t time_ = 0;
  uint64_t next_op_id_ = 1;   // OpId 0 is reserved for the initial value v0
  uint64_t next_rmw_id_ = 1;
  uint64_t trigger_seq_ = 0;
  uint32_t crashed_objects_ = 0;

  History history_;
  metrics::StorageMeter meter_;
  RunReport report_;
  bool stopped_ = false;
};

}  // namespace sbrs::sim
