// Structured tracing: typed event spans over a run's logical timeline.
//
// The simulator emits typed events — op spans (arrival -> invoke -> return),
// RMW message spans (trigger -> deliver/drop), partition and repair-window
// intervals, crash/restart instants, decimated counter samples — through the
// TraceSink interface. Timestamps are logical steps, so a trace is a pure
// function of {config, seed}: the same run produces byte-identical exports
// no matter how many worker threads executed it, and per-shard store traces
// merge deterministically in shard order.
//
// The disabled path is a null pointer: SimConfig::trace defaults to nullptr
// and every emission site is guarded by one pointer test (the same O(1)
// discipline as LinkFaultTable::engaged()), so trace-free runs take zero
// extra RNG draws, allocate nothing, and keep every existing artifact and
// fingerprint byte-identical. Tracing never enters any fingerprint.
//
// TraceRecorder is the standard sink: it assembles the event stream into
// spans/instants/series in memory; the exporters (obs/export.h) serialize a
// recorder to Chrome/Perfetto trace_event JSON or a time-series table.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/ids.h"

namespace sbrs::obs {

/// What happened when an RMW left the channel.
enum class RmwOutcome {
  kDelivered,    // reached a live object and took effect
  kDropped,      // lost in the network (probabilistic or scripted drop)
  kLostCrashed,  // delivered to a crashed object: never takes effect
};

const char* to_string(RmwOutcome o);

/// One decimated sample of the per-step time-series registry (taken every
/// SimConfig::sample_every steps, like the storage-meter series).
struct CounterSample {
  uint64_t step = 0;
  uint64_t in_flight_rmws = 0;  // channel occupancy (pending RMWs)
  uint64_t queue_depth = 0;     // open-loop released-but-undispatched ops
  uint64_t backlog = 0;         // open-loop ops not yet handed to a session
  uint64_t total_bits = 0;      // Definition 2 total (object+client+channel)
  uint64_t object_bits = 0;
  uint64_t channel_bits = 0;
  uint32_t crashed_objects = 0;
  uint32_t cut_links = 0;
};

/// The event interface the engines emit into. All hooks take the logical
/// step at which the event happened; implementations must not assume any
/// cross-event ordering beyond nondecreasing steps per emitting simulator.
class TraceSink {
 public:
  virtual ~TraceSink() = default;

  /// A high-level operation was invoked. `arrival_step` <= `step`: the
  /// scheduled arrival for open-loop workloads, == step for closed-loop.
  virtual void op_invoke(uint64_t step, OpId op, ClientId client,
                         bool is_write, uint64_t arrival_step) = 0;
  /// The operation returned. `degraded`: it returned while >= 1 object was
  /// crashed or >= 1 link was cut (the degraded_sojourn condition).
  virtual void op_return(uint64_t step, OpId op, bool degraded) = 0;

  /// An RMW entered the channel. `deliverable_at` > step means a
  /// delay/reorder window stamped a future release; `dropped` means the
  /// loss draw already condemned it (it still occupies the channel until
  /// its delivery slot).
  virtual void rmw_trigger(uint64_t step, RmwId rmw, OpId op, ClientId client,
                           ObjectId target, uint64_t request_bits,
                           uint64_t deliverable_at, bool dropped) = 0;
  /// A scripted kDelayRmw action pushed the release time to
  /// `deliverable_at`.
  virtual void rmw_delay(uint64_t step, RmwId rmw, uint64_t deliverable_at) = 0;
  /// The RMW left the channel. `repair`: it landed on an object inside its
  /// post-restart repair window (its bits were charged to repair_bits).
  virtual void rmw_deliver(uint64_t step, RmwId rmw, RmwOutcome outcome,
                           bool repair) = 0;

  /// One link was cut / re-opened (a whole-object partition emits one event
  /// per client link, matching RunReport::partition_events).
  virtual void link_partition(uint64_t step, ClientId client,
                              ObjectId object) = 0;
  virtual void link_heal(uint64_t step, ClientId client, ObjectId object) = 0;

  virtual void object_crash(uint64_t step, ObjectId object) = 0;
  /// `mode` is sim::to_string(RestartMode): "disk" | "scratch". Opens the
  /// object's repair window.
  virtual void object_restart(uint64_t step, ObjectId object,
                              const char* mode) = 0;
  /// The repair window closed: the first payload-carrying fresh-write RMW
  /// landed on the restarted object.
  virtual void repair_close(uint64_t step, ObjectId object) = 0;
  virtual void client_crash(uint64_t step, ClientId client) = 0;

  /// One decimated counter sample (every SimConfig::sample_every steps).
  virtual void sample(const CounterSample& s) = 0;

  /// The run ended at `step`. Idempotent; a recorder serialized without a
  /// finish (an engine invariant fired mid-run) still exports everything
  /// recorded so far, with open spans clamped to the last event seen.
  virtual void finish(uint64_t step) = 0;
};

/// The standard in-memory sink: assembles the event stream into spans,
/// instants and series for the exporters. One recorder per simulator; the
/// store attaches one per shard (each written by exactly one worker) and
/// merges them in shard order at serialization time.
class TraceRecorder final : public TraceSink {
 public:
  /// Sentinel end step of a span that never closed.
  static constexpr uint64_t kOpen = UINT64_MAX;

  struct OpSpan {
    OpId op;
    ClientId client;
    bool is_write = false;
    uint64_t arrival = 0;
    uint64_t invoke = 0;
    uint64_t ret = kOpen;
    bool degraded = false;
  };

  struct RmwSpan {
    RmwId rmw;
    OpId op;
    ClientId client;
    ObjectId target;
    uint64_t request_bits = 0;
    uint64_t trigger = 0;
    uint64_t end = kOpen;
    RmwOutcome outcome = RmwOutcome::kDelivered;  // meaningful once closed
    bool repair = false;
    bool delayed = false;  // a future release time was ever stamped
    bool dropped = false;  // the loss draw / scripted drop condemned it
  };

  /// A partition interval on one link, or a repair window on one object
  /// (client.value == UINT32_MAX for repair windows).
  struct IntervalSpan {
    ClientId client;
    ObjectId object;
    uint64_t begin = 0;
    uint64_t end = kOpen;
  };

  struct Instant {
    enum class Kind { kObjectCrash, kObjectRestart, kClientCrash };
    Kind kind = Kind::kObjectCrash;
    uint64_t step = 0;
    ClientId client;       // kClientCrash
    ObjectId object;       // kObjectCrash / kObjectRestart
    const char* mode = "";  // kObjectRestart: "disk" | "scratch"
  };

  // --- TraceSink ---
  void op_invoke(uint64_t step, OpId op, ClientId client, bool is_write,
                 uint64_t arrival_step) override;
  void op_return(uint64_t step, OpId op, bool degraded) override;
  void rmw_trigger(uint64_t step, RmwId rmw, OpId op, ClientId client,
                   ObjectId target, uint64_t request_bits,
                   uint64_t deliverable_at, bool dropped) override;
  void rmw_delay(uint64_t step, RmwId rmw, uint64_t deliverable_at) override;
  void rmw_deliver(uint64_t step, RmwId rmw, RmwOutcome outcome,
                   bool repair) override;
  void link_partition(uint64_t step, ClientId client, ObjectId object) override;
  void link_heal(uint64_t step, ClientId client, ObjectId object) override;
  void object_crash(uint64_t step, ObjectId object) override;
  void object_restart(uint64_t step, ObjectId object,
                      const char* mode) override;
  void repair_close(uint64_t step, ObjectId object) override;
  void client_crash(uint64_t step, ClientId client) override;
  void sample(const CounterSample& s) override;
  void finish(uint64_t step) override;

  /// Run-level key/value annotation (stop_reason, saturation verdict, ...),
  /// exported into the trace's metadata block. Insertion-ordered, so
  /// annotate calls must themselves be deterministic.
  void annotate(const std::string& key, const std::string& value);

  // --- Assembled state (exporters / tests) ---
  const std::vector<OpSpan>& ops() const { return ops_; }
  const std::vector<RmwSpan>& rmws() const { return rmws_; }
  const std::vector<IntervalSpan>& partitions() const { return partitions_; }
  const std::vector<IntervalSpan>& repairs() const { return repairs_; }
  const std::vector<Instant>& instants() const { return instants_; }
  const std::vector<CounterSample>& series() const { return series_; }
  const std::vector<std::pair<std::string, std::string>>& annotations() const {
    return annotations_;
  }
  /// Running max over every event step seen (also the finish step once
  /// finish ran): the clamp exporters use for spans still open.
  uint64_t end_step() const { return end_step_; }

 private:
  void bump(uint64_t step);

  std::vector<OpSpan> ops_;
  std::vector<RmwSpan> rmws_;
  std::vector<IntervalSpan> partitions_;
  std::vector<IntervalSpan> repairs_;
  std::vector<Instant> instants_;
  std::vector<CounterSample> series_;
  std::vector<std::pair<std::string, std::string>> annotations_;

  // Open-span lookup (value -> index into the vectors above).
  std::map<uint64_t, size_t> open_ops_;
  std::map<uint64_t, size_t> open_rmws_;
  std::map<uint64_t, size_t> open_partitions_;  // key: client<<32 | object
  std::map<uint32_t, size_t> open_repairs_;     // key: object
  uint64_t end_step_ = 0;
};

}  // namespace sbrs::obs
