#include "obs/export.h"

#include <cstdio>
#include <set>

namespace sbrs::obs {

namespace {

/// Minimal JSON string escaping (the exporters construct most names
/// themselves; process names and annotations come from callers).
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Comma-separated one-event-per-line emitter for the traceEvents array.
class Emitter {
 public:
  explicit Emitter(std::ostream& os) : os_(os) {}

  std::ostream& event() {
    if (!first_) os_ << ",\n";
    first_ = false;
    return os_;
  }

 private:
  std::ostream& os_;
  bool first_ = true;
};

constexpr uint32_t kCounterTid = 0;
constexpr uint32_t kClientTidBase = 1;
constexpr uint32_t kObjectTidBase = 1000;

void emit_process(Emitter& e, const TraceProcess& p) {
  const TraceRecorder& t = *p.trace;
  const uint64_t clamp = t.end_step();
  const uint32_t pid = p.pid;

  // --- Metadata: process + the threads (tracks) this process uses ---
  e.event() << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
            << ",\"args\":{\"name\":\"" << escape(p.name) << "\"}}";
  if (!t.annotations().empty()) {
    std::string labels;
    for (const auto& [k, v] : t.annotations()) {
      if (!labels.empty()) labels += "; ";
      labels += k + "=" + v;
    }
    e.event() << "{\"name\":\"process_labels\",\"ph\":\"M\",\"pid\":" << pid
              << ",\"args\":{\"labels\":\"" << escape(labels) << "\"}}";
  }

  std::set<uint32_t> clients, objects;
  for (const auto& s : t.ops()) clients.insert(s.client.value);
  for (const auto& s : t.rmws()) {
    clients.insert(s.client.value);
    objects.insert(s.target.value);
  }
  for (const auto& s : t.partitions()) objects.insert(s.object.value);
  for (const auto& s : t.repairs()) objects.insert(s.object.value);
  for (const auto& i : t.instants()) {
    if (i.kind == TraceRecorder::Instant::Kind::kClientCrash) {
      clients.insert(i.client.value);
    } else {
      objects.insert(i.object.value);
    }
  }
  if (!t.series().empty()) {
    e.event() << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << pid
              << ",\"tid\":" << kCounterTid
              << ",\"args\":{\"name\":\"counters\"}}";
  }
  for (uint32_t c : clients) {
    e.event() << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << pid
              << ",\"tid\":" << (kClientTidBase + c)
              << ",\"args\":{\"name\":\"client c" << c << "\"}}";
  }
  for (uint32_t o : objects) {
    e.event() << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << pid
              << ",\"tid\":" << (kObjectTidBase + o)
              << ",\"args\":{\"name\":\"object bo" << o << "\"}}";
  }

  // --- Op spans: arrival -> return on the client's track ---
  for (const auto& s : t.ops()) {
    const bool open = s.ret == TraceRecorder::kOpen;
    const uint64_t end = open ? clamp : s.ret;
    e.event() << "{\"name\":\"" << (s.is_write ? "write" : "read")
              << "\",\"cat\":\"op\",\"ph\":\"X\",\"ts\":" << s.arrival
              << ",\"dur\":" << (end - s.arrival) << ",\"pid\":" << pid
              << ",\"tid\":" << (kClientTidBase + s.client.value)
              << ",\"args\":{\"op\":" << s.op.value << ",\"invoke\":"
              << s.invoke << ",\"degraded\":" << (s.degraded ? "true" : "false")
              << (open ? ",\"open\":true" : "") << "}}";
  }

  // --- RMW message spans: async trigger -> deliver/drop (cat "rmw") ---
  for (const auto& s : t.rmws()) {
    const bool open = s.end == TraceRecorder::kOpen;
    const uint64_t end = open ? clamp : s.end;
    const std::string name = "rmw:bo" + std::to_string(s.target.value);
    e.event() << "{\"name\":\"" << name
              << "\",\"cat\":\"rmw\",\"ph\":\"b\",\"id\":" << s.rmw.value
              << ",\"ts\":" << s.trigger << ",\"pid\":" << pid
              << ",\"tid\":" << (kClientTidBase + s.client.value)
              << ",\"args\":{\"op\":" << s.op.value << ",\"client\":"
              << s.client.value << ",\"bits\":" << s.request_bits
              << ",\"delayed\":" << (s.delayed ? "true" : "false")
              << ",\"dropped\":" << (s.dropped ? "true" : "false") << "}}";
    e.event() << "{\"name\":\"" << name
              << "\",\"cat\":\"rmw\",\"ph\":\"e\",\"id\":" << s.rmw.value
              << ",\"ts\":" << end << ",\"pid\":" << pid << ",\"tid\":"
              << (kClientTidBase + s.client.value) << ",\"args\":{"
              << "\"outcome\":\""
              << (open ? "in-flight" : to_string(s.outcome))
              << "\",\"repair\":" << (s.repair ? "true" : "false") << "}}";
  }

  // --- Partition intervals: async cut -> heal (cat "partition") ---
  for (const auto& s : t.partitions()) {
    const bool open = s.end == TraceRecorder::kOpen;
    const uint64_t end = open ? clamp : s.end;
    const uint64_t id = (uint64_t{s.client.value} << 32) | s.object.value;
    const std::string name = "partition c" + std::to_string(s.client.value) +
                             "-bo" + std::to_string(s.object.value);
    e.event() << "{\"name\":\"" << name
              << "\",\"cat\":\"partition\",\"ph\":\"b\",\"id\":" << id
              << ",\"ts\":" << s.begin << ",\"pid\":" << pid << ",\"tid\":"
              << (kObjectTidBase + s.object.value) << ",\"args\":{}}";
    e.event() << "{\"name\":\"" << name
              << "\",\"cat\":\"partition\",\"ph\":\"e\",\"id\":" << id
              << ",\"ts\":" << end << ",\"pid\":" << pid << ",\"tid\":"
              << (kObjectTidBase + s.object.value) << ",\"args\":{"
              << (open ? "\"open\":true" : "") << "}}";
  }

  // --- Repair windows: complete spans on the object's track ---
  for (const auto& s : t.repairs()) {
    const bool open = s.end == TraceRecorder::kOpen;
    const uint64_t end = open ? clamp : s.end;
    e.event() << "{\"name\":\"repair\",\"cat\":\"repair\",\"ph\":\"X\",\"ts\":"
              << s.begin << ",\"dur\":" << (end - s.begin) << ",\"pid\":"
              << pid << ",\"tid\":" << (kObjectTidBase + s.object.value)
              << ",\"args\":{" << (open ? "\"open\":true" : "") << "}}";
  }

  // --- Crash / restart instants ---
  for (const auto& i : t.instants()) {
    switch (i.kind) {
      case TraceRecorder::Instant::Kind::kObjectCrash:
        e.event() << "{\"name\":\"crash\",\"cat\":\"fault\",\"ph\":\"i\","
                  << "\"s\":\"t\",\"ts\":" << i.step << ",\"pid\":" << pid
                  << ",\"tid\":" << (kObjectTidBase + i.object.value) << "}";
        break;
      case TraceRecorder::Instant::Kind::kObjectRestart:
        e.event() << "{\"name\":\"restart(" << i.mode
                  << ")\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"t\",\"ts\":"
                  << i.step << ",\"pid\":" << pid << ",\"tid\":"
                  << (kObjectTidBase + i.object.value) << "}";
        break;
      case TraceRecorder::Instant::Kind::kClientCrash:
        e.event() << "{\"name\":\"client-crash\",\"cat\":\"fault\",\"ph\":"
                  << "\"i\",\"s\":\"t\",\"ts\":" << i.step << ",\"pid\":"
                  << pid << ",\"tid\":" << (kClientTidBase + i.client.value)
                  << "}";
        break;
    }
  }

  // --- Counter tracks (the per-step time-series registry) ---
  for (const auto& c : t.series()) {
    e.event() << "{\"name\":\"storage bits\",\"ph\":\"C\",\"ts\":" << c.step
              << ",\"pid\":" << pid << ",\"tid\":" << kCounterTid
              << ",\"args\":{\"total\":" << c.total_bits << ",\"object\":"
              << c.object_bits << ",\"channel\":" << c.channel_bits << "}}";
    e.event() << "{\"name\":\"in-flight rmws\",\"ph\":\"C\",\"ts\":" << c.step
              << ",\"pid\":" << pid << ",\"tid\":" << kCounterTid
              << ",\"args\":{\"rmws\":" << c.in_flight_rmws << "}}";
    e.event() << "{\"name\":\"queue\",\"ph\":\"C\",\"ts\":" << c.step
              << ",\"pid\":" << pid << ",\"tid\":" << kCounterTid
              << ",\"args\":{\"depth\":" << c.queue_depth << ",\"backlog\":"
              << c.backlog << "}}";
    e.event() << "{\"name\":\"faults\",\"ph\":\"C\",\"ts\":" << c.step
              << ",\"pid\":" << pid << ",\"tid\":" << kCounterTid
              << ",\"args\":{\"crashed_objects\":" << c.crashed_objects
              << ",\"cut_links\":" << c.cut_links << "}}";
  }
}

}  // namespace

void write_trace_json(std::ostream& os,
                      const std::vector<TraceProcess>& processes) {
  os << "{\"traceEvents\":[\n";
  Emitter e(os);
  for (const auto& p : processes) {
    if (p.trace != nullptr) emit_process(e, p);
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

void write_trace_json(std::ostream& os, const TraceRecorder& trace) {
  TraceProcess p;
  p.trace = &trace;
  p.pid = 0;
  p.name = "sim";
  write_trace_json(os, {p});
}

void write_timeseries_csv(std::ostream& os,
                          const std::vector<TraceProcess>& processes) {
  os << "process,step,in_flight_rmws,queue_depth,backlog,total_bits,"
        "object_bits,channel_bits,crashed_objects,cut_links\n";
  for (const auto& p : processes) {
    if (p.trace == nullptr) continue;
    for (const auto& c : p.trace->series()) {
      os << p.pid << "," << c.step << "," << c.in_flight_rmws << ","
         << c.queue_depth << "," << c.backlog << "," << c.total_bits << ","
         << c.object_bits << "," << c.channel_bits << ","
         << c.crashed_objects << "," << c.cut_links << "\n";
    }
  }
}

void write_timeseries_json(std::ostream& os,
                           const std::vector<TraceProcess>& processes) {
  os << "[\n";
  bool first = true;
  for (const auto& p : processes) {
    if (p.trace == nullptr) continue;
    for (const auto& c : p.trace->series()) {
      if (!first) os << ",\n";
      first = false;
      os << "{\"process\":" << p.pid << ",\"step\":" << c.step
         << ",\"in_flight_rmws\":" << c.in_flight_rmws << ",\"queue_depth\":"
         << c.queue_depth << ",\"backlog\":" << c.backlog << ",\"total_bits\":"
         << c.total_bits << ",\"object_bits\":" << c.object_bits
         << ",\"channel_bits\":" << c.channel_bits << ",\"crashed_objects\":"
         << c.crashed_objects << ",\"cut_links\":" << c.cut_links << "}";
    }
  }
  os << "\n]\n";
}

}  // namespace sbrs::obs
