#include "obs/trace.h"

namespace sbrs::obs {

const char* to_string(RmwOutcome o) {
  switch (o) {
    case RmwOutcome::kDelivered: return "delivered";
    case RmwOutcome::kDropped: return "dropped";
    case RmwOutcome::kLostCrashed: return "lost-crashed";
  }
  return "?";
}

void TraceRecorder::bump(uint64_t step) {
  if (step != kOpen && step > end_step_) end_step_ = step;
}

void TraceRecorder::op_invoke(uint64_t step, OpId op, ClientId client,
                              bool is_write, uint64_t arrival_step) {
  bump(step);
  OpSpan s;
  s.op = op;
  s.client = client;
  s.is_write = is_write;
  s.arrival = arrival_step;
  s.invoke = step;
  open_ops_[op.value] = ops_.size();
  ops_.push_back(s);
}

void TraceRecorder::op_return(uint64_t step, OpId op, bool degraded) {
  bump(step);
  auto it = open_ops_.find(op.value);
  if (it == open_ops_.end()) return;  // a return without a recorded invoke
  ops_[it->second].ret = step;
  ops_[it->second].degraded = degraded;
  open_ops_.erase(it);
}

void TraceRecorder::rmw_trigger(uint64_t step, RmwId rmw, OpId op,
                                ClientId client, ObjectId target,
                                uint64_t request_bits, uint64_t deliverable_at,
                                bool dropped) {
  bump(step);
  RmwSpan s;
  s.rmw = rmw;
  s.op = op;
  s.client = client;
  s.target = target;
  s.request_bits = request_bits;
  s.trigger = step;
  s.delayed = deliverable_at > step;
  s.dropped = dropped;
  open_rmws_[rmw.value] = rmws_.size();
  rmws_.push_back(s);
}

void TraceRecorder::rmw_delay(uint64_t step, RmwId rmw,
                              uint64_t deliverable_at) {
  bump(step);
  (void)deliverable_at;
  auto it = open_rmws_.find(rmw.value);
  if (it == open_rmws_.end()) return;
  rmws_[it->second].delayed = true;
}

void TraceRecorder::rmw_deliver(uint64_t step, RmwId rmw, RmwOutcome outcome,
                                bool repair) {
  bump(step);
  auto it = open_rmws_.find(rmw.value);
  if (it == open_rmws_.end()) return;
  RmwSpan& s = rmws_[it->second];
  s.end = step;
  s.outcome = outcome;
  s.repair = repair;
  if (outcome == RmwOutcome::kDropped) s.dropped = true;
  open_rmws_.erase(it);
}

void TraceRecorder::link_partition(uint64_t step, ClientId client,
                                   ObjectId object) {
  bump(step);
  const uint64_t key = (uint64_t{client.value} << 32) | object.value;
  IntervalSpan s;
  s.client = client;
  s.object = object;
  s.begin = step;
  open_partitions_[key] = partitions_.size();
  partitions_.push_back(s);
}

void TraceRecorder::link_heal(uint64_t step, ClientId client,
                              ObjectId object) {
  bump(step);
  const uint64_t key = (uint64_t{client.value} << 32) | object.value;
  auto it = open_partitions_.find(key);
  if (it == open_partitions_.end()) return;
  partitions_[it->second].end = step;
  open_partitions_.erase(it);
}

void TraceRecorder::object_crash(uint64_t step, ObjectId object) {
  bump(step);
  // A repairing object that crashes again leaves its repair window: close
  // the interval here (the simulator clears the flag without a close hook).
  auto it = open_repairs_.find(object.value);
  if (it != open_repairs_.end()) {
    repairs_[it->second].end = step;
    open_repairs_.erase(it);
  }
  Instant i;
  i.kind = Instant::Kind::kObjectCrash;
  i.step = step;
  i.object = object;
  instants_.push_back(i);
}

void TraceRecorder::object_restart(uint64_t step, ObjectId object,
                                   const char* mode) {
  bump(step);
  Instant i;
  i.kind = Instant::Kind::kObjectRestart;
  i.step = step;
  i.object = object;
  i.mode = mode;
  instants_.push_back(i);

  IntervalSpan s;
  s.client = ClientId{UINT32_MAX};
  s.object = object;
  s.begin = step;
  open_repairs_[object.value] = repairs_.size();
  repairs_.push_back(s);
}

void TraceRecorder::repair_close(uint64_t step, ObjectId object) {
  bump(step);
  auto it = open_repairs_.find(object.value);
  if (it == open_repairs_.end()) return;
  repairs_[it->second].end = step;
  open_repairs_.erase(it);
}

void TraceRecorder::client_crash(uint64_t step, ClientId client) {
  bump(step);
  Instant i;
  i.kind = Instant::Kind::kClientCrash;
  i.step = step;
  i.client = client;
  instants_.push_back(i);
}

void TraceRecorder::sample(const CounterSample& s) {
  bump(s.step);
  series_.push_back(s);
}

void TraceRecorder::finish(uint64_t step) { bump(step); }

void TraceRecorder::annotate(const std::string& key,
                             const std::string& value) {
  annotations_.emplace_back(key, value);
}

}  // namespace sbrs::obs
