// Trace exporters: Chrome/Perfetto `trace_event` JSON and a time-series
// dump (CSV or JSON) of the per-step counter registry.
//
// The trace_event output loads directly in ui.perfetto.dev (or
// chrome://tracing): one process per simulator (the store maps shard i to
// pid i, merged in shard index order), client threads carrying op spans,
// per-object tracks carrying repair-window spans and crash/restart
// instants, async spans for RMW messages (cat "rmw") and partition
// intervals (cat "partition"), and counter tracks for the sampled series.
// Timestamps are logical steps written as integers: the output is
// byte-identical for the same {config, seed} regardless of thread count.
//
// Track layout per process (docs/observability.md has the full schema):
//   tid 0            counter tracks ("storage bits", "in-flight rmws",
//                    "queue", "faults")
//   tid 1 + c        client c: "write"/"read" op spans (ph X), client-crash
//                    instants, and the b/e ends of its RMW spans
//   tid 1000 + o     object o: "repair" window spans (ph X), crash/restart
//                    instants, partition b/e interval ends
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace sbrs::obs {

/// One simulator's recorded trace, mapped to a trace_event process.
struct TraceProcess {
  const TraceRecorder* trace = nullptr;
  uint32_t pid = 0;
  std::string name;  // process_name metadata, e.g. "sim" or "shard3"
};

/// Serialize `processes` as trace_event JSON (one event per line). Spans
/// still open (the run was cut off or an invariant fired mid-run) are
/// clamped to their recorder's end_step() and flagged with "open": true.
void write_trace_json(std::ostream& os,
                      const std::vector<TraceProcess>& processes);

/// Convenience: a single recorder as pid 0, name "sim".
void write_trace_json(std::ostream& os, const TraceRecorder& trace);

/// The counter series as CSV: header
///   process,step,in_flight_rmws,queue_depth,backlog,total_bits,
///   object_bits,channel_bits,crashed_objects,cut_links
/// with one row per sample, processes in input order.
void write_timeseries_csv(std::ostream& os,
                          const std::vector<TraceProcess>& processes);

/// The same series as a JSON array of objects (one per sample).
void write_timeseries_json(std::ostream& os,
                           const std::vector<TraceProcess>& processes);

}  // namespace sbrs::obs
