// The client half of register multiplexing: one MultiKeyClient per store
// session, owning one lazily created protocol instance of the wrapped
// algorithm per key it has touched.
//
// Routing works in both directions:
//   - down: when an operation is invoked, the key it targets is looked up
//     in the shared OpKeyTable (filled by the shard's QueueWorkload as ops
//     are issued); the inner protocol runs against a KeyedContext whose
//     trigger() rewrites the RMW closure to land on that key's sub-state of
//     the shared MultiKeyObjectState pool;
//   - up: every triggered RMW id is remembered with its key, so responses
//     are delivered to exactly the inner protocol that triggered them
//     (sessions of other keys never see them — their own stale-response
//     filtering is not relied upon for cross-key isolation).
//
// A session has at most one outstanding operation (simulator-enforced), so
// at most one inner protocol is mid-operation at a time; the others are
// idle between operations, exactly as a single-register client would be.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>

#include "runtime/context.h"
#include "runtime/types.h"

namespace sbrs::store {

/// OpId -> key id, written by the shard workload when it issues an op and
/// read by the clients (and, post-run, by the per-key history splitter).
class OpKeyTable {
 public:
  void assign(OpId op, uint32_t key) { map_[op.value] = key; }
  /// Key of an issued op; throws CheckFailure for unknown ops.
  uint32_t key_of(OpId op) const;
  const uint32_t* find(OpId op) const {
    auto it = map_.find(op.value);
    return it == map_.end() ? nullptr : &it->second;
  }

 private:
  std::unordered_map<uint64_t, uint32_t> map_;
};

class MultiKeyClient final : public runtime::ClientProtocol {
 public:
  MultiKeyClient(ClientId self, runtime::ClientFactory inner_factory,
                 std::shared_ptr<const OpKeyTable> op_keys);

  void on_invoke(const runtime::Invocation& inv, runtime::ExecutionContext& ctx) override;
  void on_response(RmwId rmw, runtime::ResponsePtr response,
                   runtime::ExecutionContext& ctx) override;

  /// Definition 2 client state: the union over the per-key sessions.
  metrics::StorageFootprint footprint() const override;

  /// Cached total so the simulator's per-step accounting stays O(1) in the
  /// number of sessions (only the active key's session can change state,
  /// and the routing callbacks refresh its cached bits afterwards).
  uint64_t stored_bits() const override { return total_bits_; }

  size_t sessions() const { return sessions_.size(); }

 private:
  class KeyedContext;

  struct Session {
    std::unique_ptr<runtime::ClientProtocol> protocol;
    uint64_t bits = 0;  // cached protocol->footprint().total_bits()
  };

  Session& session(uint32_t key);
  void refresh_session_bits(Session& session);

  ClientId self_;
  runtime::ClientFactory inner_factory_;
  std::shared_ptr<const OpKeyTable> op_keys_;
  std::map<uint32_t, Session> sessions_;  // ordered: deterministic footprint
  std::unordered_map<uint64_t, uint32_t> rmw_key_;  // in-flight RMW -> key
  uint64_t total_bits_ = 0;
};

}  // namespace sbrs::store
