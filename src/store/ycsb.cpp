#include "store/ycsb.h"

#include <cmath>
#include <optional>

#include "common/check.h"

namespace sbrs::store::ycsb {

const char* to_string(Distribution d) {
  switch (d) {
    case Distribution::kUniform: return "uniform";
    case Distribution::kZipfian: return "zipfian";
    case Distribution::kLatest: return "latest";
  }
  return "?";
}

const char* to_string(Mix m) {
  switch (m) {
    case Mix::kA: return "A";
    case Mix::kB: return "B";
    case Mix::kC: return "C";
    case Mix::kF: return "F";
    case Mix::kCustom: return "custom";
  }
  return "?";
}

Distribution parse_distribution(const std::string& s) {
  if (s == "uniform") return Distribution::kUniform;
  if (s == "zipfian") return Distribution::kZipfian;
  if (s == "latest") return Distribution::kLatest;
  SBRS_CHECK_MSG(false, "unknown distribution '" << s
                            << "' (want uniform|zipfian|latest)");
  return Distribution::kUniform;
}

Mix parse_mix(const std::string& s) {
  if (s == "A" || s == "a") return Mix::kA;
  if (s == "B" || s == "b") return Mix::kB;
  if (s == "C" || s == "c") return Mix::kC;
  if (s == "F" || s == "f") return Mix::kF;
  if (s == "custom") return Mix::kCustom;
  SBRS_CHECK_MSG(false, "unknown mix '" << s << "' (want A|B|C|F|custom)");
  return Mix::kB;
}

uint32_t read_percent_for(Mix m) {
  switch (m) {
    case Mix::kA: return 50;
    case Mix::kB: return 95;
    case Mix::kC: return 100;
    case Mix::kF: return 50;
    case Mix::kCustom: return 95;
  }
  return 95;
}

namespace {

double zeta(uint64_t n, double theta) {
  double sum = 0;
  for (uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(i, theta);
  return sum;
}

}  // namespace

ZipfianGenerator::ZipfianGenerator(uint64_t n, double theta)
    : n_(n), theta_(theta) {
  SBRS_CHECK_MSG(n >= 1, "zipfian over empty keyspace");
  SBRS_CHECK_MSG(theta > 0 && theta < 1, "zipfian theta must be in (0, 1)");
  zetan_ = zeta(n, theta);
  alpha_ = 1.0 / (1.0 - theta);
  const double zeta2 = zeta(2, theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
         (1.0 - zeta2 / zetan_);
}

uint64_t ZipfianGenerator::next(Rng& rng) const {
  const double u = rng.uniform01();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const uint64_t rank = static_cast<uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return rank >= n_ ? n_ - 1 : rank;
}

LatestGenerator::LatestGenerator(uint64_t n, double theta)
    : zipf_(n, theta), latest_(n - 1) {}

uint64_t LatestGenerator::next(Rng& rng) const {
  const uint64_t back = zipf_.next(rng);
  // latest - back, wrapped onto [0, n).
  return (latest_ + zipf_.n() - back % zipf_.n()) % zipf_.n();
}

std::vector<Op> generate(const Options& opts) {
  SBRS_CHECK_MSG(opts.num_keys >= 1, "ycsb needs at least one key");
  SBRS_CHECK_MSG(opts.clients >= 1, "ycsb needs at least one client");
  const uint32_t read_pct = opts.mix == Mix::kCustom
                                ? opts.read_percent
                                : read_percent_for(opts.mix);
  SBRS_CHECK_MSG(read_pct <= 100, "read_percent out of range");

  Rng rng(opts.seed);
  // Only the requested distribution's generator is built: the zipfian
  // constructor pays an O(num_keys) zeta sweep and validates theta, neither
  // of which should apply to a uniform workload.
  std::optional<ZipfianGenerator> zipf;
  std::optional<LatestGenerator> latest;
  if (opts.distribution == Distribution::kZipfian) {
    zipf.emplace(opts.num_keys, opts.zipf_theta);
  } else if (opts.distribution == Distribution::kLatest) {
    latest.emplace(opts.num_keys, opts.zipf_theta);
  }

  auto pick_key = [&]() -> uint32_t {
    switch (opts.distribution) {
      case Distribution::kUniform:
        return static_cast<uint32_t>(rng.below(opts.num_keys));
      case Distribution::kZipfian:
        return static_cast<uint32_t>(zipf->next(rng));
      case Distribution::kLatest:
        return static_cast<uint32_t>(latest->next(rng));
    }
    return 0;
  };

  std::vector<Op> out;
  out.reserve(static_cast<size_t>(opts.clients) * opts.ops_per_client * 2);
  // Round-robin across clients, one workload op per client per round; an
  // F-mix read-modify-write contributes a read and a write back to back in
  // its client's sequence (the stream stays per-client ordered after the
  // Store partitions it into shard queues).
  for (uint32_t i = 0; i < opts.ops_per_client; ++i) {
    for (uint32_t c = 0; c < opts.clients; ++c) {
      const uint32_t key = pick_key();
      const bool is_read = rng.below(100) < read_pct;
      if (is_read) {
        out.push_back(Op{c, key, sim::OpKind::kRead});
        continue;
      }
      if (opts.mix == Mix::kF) {
        out.push_back(Op{c, key, sim::OpKind::kRead});
      }
      out.push_back(Op{c, key, sim::OpKind::kWrite});
      if (latest.has_value()) latest->note_write(key);
    }
  }
  return out;
}

}  // namespace sbrs::store::ycsb
