#include "store/repair.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/check.h"
#include "registers/object_state.h"
#include "registers/repair.h"
#include "store/multi_object.h"

namespace sbrs::store {

runtime::RepairPlanner make_store_repair_planner(
    const registers::RegisterAlgorithm& alg) {
  const uint32_t k = alg.config().k;
  codec::CodecPtr codec = alg.codec();
  return [k, codec = std::move(codec)](
             const runtime::SystemView& sim,
             ObjectId o) -> std::optional<runtime::RepairPlan> {
    const auto* target =
        dynamic_cast<const MultiKeyObjectState*>(&sim.object_state(o));
    if (target == nullptr) return std::nullopt;

    std::vector<const MultiKeyObjectState*> peers;
    peers.reserve(sim.num_objects());
    for (uint32_t i = 0; i < sim.num_objects(); ++i) {
      const ObjectId id{i};
      if (i == o.value || !sim.object_alive(id) || sim.object_repairing(id)) {
        continue;
      }
      const auto* st =
          dynamic_cast<const MultiKeyObjectState*>(&sim.object_state(id));
      if (st != nullptr) peers.push_back(st);
    }
    if (peers.empty()) return std::nullopt;

    // Union of mounted keys across the target and its peers, ascending —
    // a key any replica knows about must be covered before the window may
    // close.
    std::vector<uint32_t> keys = target->mounted_key_ids();
    for (const MultiKeyObjectState* p : peers) {
      const std::vector<uint32_t> pk = p->mounted_key_ids();
      keys.insert(keys.end(), pk.begin(), pk.end());
    }
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());

    static const registers::RegisterObjectState kEmpty;
    std::vector<std::pair<uint32_t, runtime::RmwFn>> fns;
    fns.reserve(keys.size());
    metrics::StorageFootprint footprint;
    for (uint32_t key : keys) {
      std::vector<const registers::RegisterObjectState*> key_peers;
      key_peers.reserve(peers.size());
      for (const MultiKeyObjectState* p : peers) {
        const auto* st =
            dynamic_cast<const registers::RegisterObjectState*>(p->sub(key));
        if (st != nullptr) key_peers.push_back(st);
      }
      const auto* tsub =
          dynamic_cast<const registers::RegisterObjectState*>(target->sub(key));
      std::optional<runtime::RepairPlan> plan = registers::plan_register_repair(
          key_peers, tsub != nullptr ? *tsub : kEmpty, o.value + 1, k, codec);
      // A single undecodable key withholds the whole push: delivery closes
      // the window for the entire shard object, all keys or nothing.
      if (!plan.has_value()) return std::nullopt;
      footprint.merge(plan->request_footprint);
      fns.emplace_back(key, std::move(plan->fn));
    }

    runtime::RepairPlan plan;
    plan.request_footprint = std::move(footprint);
    plan.fn = [fns = std::move(fns)](
                  runtime::ObjectStateBase& s) -> runtime::ResponsePtr {
      auto* mk = dynamic_cast<MultiKeyObjectState*>(&s);
      SBRS_CHECK_MSG(mk != nullptr, "store repair on non-multi-key state");
      // apply() keeps the cached per-key bit totals exact, and mounts any
      // key the target had never seen (materializing v0 first, exactly as
      // a first client touch would).
      for (const auto& [key, fn] : fns) mk->apply(key, fn);
      return nullptr;
    };
    return plan;
  };
}

}  // namespace sbrs::store
