// The shard's operation feed: per-session FIFO queues that the Store fills
// (the whole YCSB stream up front in batch mode; one item at a time in the
// interactive put/get path) and the simulator drains via the standard
// Workload interface. next() stamps the simulator-assigned OpId into the
// shared OpKeyTable — that table is how the multiplexing clients and the
// post-run per-key history splitter learn which key an operation targeted.
//
// Open-loop mode adds a third feed: push_arrival() schedules items at
// absolute simulator steps; advance_to() (called by the simulator each
// step) releases due items into a shared ready queue that ANY free session
// drains, so each op carries an arrival timestamp and its sojourn time
// (arrival -> return) includes the queueing delay. The ready queue's depth
// maximum and the undispatched backlog feed saturation detection.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "common/value.h"
#include "sim/arrival.h"
#include "sim/workload.h"
#include "store/multi_client.h"

namespace sbrs::store {

class QueueWorkload final : public sim::Workload {
 public:
  struct Item {
    uint32_t key = 0;
    sim::OpKind kind = sim::OpKind::kRead;
    Value value;  // written value; unused for reads
  };

  QueueWorkload(uint32_t num_sessions, std::shared_ptr<OpKeyTable> op_keys);

  void push(ClientId session, Item item);

  /// Schedule `item` to arrive at simulator step `step` (open-loop mode).
  /// Steps must be pushed in nondecreasing order; the item is dispatched to
  /// whichever session the scheduler frees up first once released.
  void push_arrival(uint64_t step, Item item);

  bool has_more(ClientId c) const override;
  sim::Invocation next(ClientId c, OpId id) override;
  void advance_to(uint64_t now) override;
  std::optional<uint64_t> next_arrival() const override;
  uint64_t queue_depth() const override { return queue_.depth(); }
  uint64_t backlog() const override { return queue_.undispatched(); }

  /// OpIds issued on behalf of `session`, in issue order (the interactive
  /// driver uses this to find the completion record of the op it pushed).
  const std::vector<OpId>& issued(ClientId session) const;

  /// Items pushed but not yet issued, across all sessions.
  size_t queued() const;

  /// Largest number of released-but-undispatched arrivals ever queued.
  uint64_t max_queue_depth() const { return queue_.max_queue_depth(); }
  /// Open-loop items not yet handed to a session (queued now or arriving
  /// later) — nonzero after a run means the offered rate beat the drain
  /// rate within the step budget (saturation).
  size_t undispatched() const { return queue_.undispatched(); }
  /// sim::ArrivalQueue::saturated over this shard's session pool.
  bool saturated(bool hit_step_limit) const {
    return queue_.saturated(queues_.size(), hit_step_limit);
  }
  /// Step of the latest scheduled arrival: a later batch (repeated
  /// Store::run()) must base itself at or past this — a saturated first
  /// batch can leave arrivals scheduled beyond the shard's current time.
  uint64_t last_scheduled_step() const {
    return queue_.last_scheduled_step();
  }

 private:
  std::vector<std::deque<Item>> queues_;
  std::vector<std::vector<OpId>> issued_;
  std::shared_ptr<OpKeyTable> op_keys_;
  sim::ArrivalQueue<Item> queue_;  // the open-loop feed
};

}  // namespace sbrs::store
