// The shard's operation feed: per-session FIFO queues that the Store fills
// (the whole YCSB stream up front in batch mode; one item at a time in the
// interactive put/get path) and the simulator drains via the standard
// Workload interface. next() stamps the simulator-assigned OpId into the
// shared OpKeyTable — that table is how the multiplexing clients and the
// post-run per-key history splitter learn which key an operation targeted.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "common/value.h"
#include "sim/workload.h"
#include "store/multi_client.h"

namespace sbrs::store {

class QueueWorkload final : public sim::Workload {
 public:
  struct Item {
    uint32_t key = 0;
    sim::OpKind kind = sim::OpKind::kRead;
    Value value;  // written value; unused for reads
  };

  QueueWorkload(uint32_t num_sessions, std::shared_ptr<OpKeyTable> op_keys);

  void push(ClientId session, Item item);

  bool has_more(ClientId c) const override;
  sim::Invocation next(ClientId c, OpId id) override;

  /// OpIds issued on behalf of `session`, in issue order (the interactive
  /// driver uses this to find the completion record of the op it pushed).
  const std::vector<OpId>& issued(ClientId session) const;

  /// Items pushed but not yet issued, across all sessions.
  size_t queued() const;

 private:
  std::vector<std::deque<Item>> queues_;
  std::vector<std::vector<OpId>> issued_;
  std::shared_ptr<OpKeyTable> op_keys_;
};

}  // namespace sbrs::store
