#include "store/multi_client.h"

#include <utility>

#include "common/check.h"
#include "store/multi_object.h"

namespace sbrs::store {

uint32_t OpKeyTable::key_of(OpId op) const {
  const uint32_t* key = find(op);
  SBRS_CHECK_MSG(key != nullptr, "no key recorded for " << op);
  return *key;
}

/// Wraps the simulator-provided context for the duration of one inner
/// callback: trigger() retargets the RMW closure onto the key's sub-state
/// and records the id -> key routing entry; everything else passes through.
class MultiKeyClient::KeyedContext final : public runtime::ExecutionContext {
 public:
  KeyedContext(MultiKeyClient& owner, runtime::ExecutionContext& inner, uint32_t key)
      : owner_(owner), inner_(inner), key_(key) {}

  RmwId trigger(ObjectId target, runtime::RmwFn fn,
                metrics::StorageFootprint request_footprint) override {
    // The store owns the object factory, so every base object in a shard
    // simulator is a MultiKeyObjectState; apply() keeps its cached bit
    // totals current as a side effect.
    runtime::RmwFn wrapped =
        [key = key_, fn = std::move(fn)](
            runtime::ObjectStateBase& state) -> runtime::ResponsePtr {
      return static_cast<MultiKeyObjectState&>(state).apply(key, fn);
    };
    const RmwId id =
        inner_.trigger(target, std::move(wrapped), std::move(request_footprint));
    owner_.rmw_key_[id.value] = key_;
    return id;
  }

  void complete(OpId op, std::optional<Value> result) override {
    inner_.complete(op, std::move(result));
  }

  ClientId self() const override { return inner_.self(); }
  uint32_t num_objects() const override { return inner_.num_objects(); }
  uint64_t now() const override { return inner_.now(); }

 private:
  MultiKeyClient& owner_;
  runtime::ExecutionContext& inner_;
  uint32_t key_;
};

MultiKeyClient::MultiKeyClient(ClientId self, runtime::ClientFactory inner_factory,
                               std::shared_ptr<const OpKeyTable> op_keys)
    : self_(self),
      inner_factory_(std::move(inner_factory)),
      op_keys_(std::move(op_keys)) {
  SBRS_CHECK(inner_factory_ != nullptr && op_keys_ != nullptr);
}

MultiKeyClient::Session& MultiKeyClient::session(uint32_t key) {
  auto it = sessions_.find(key);
  if (it == sessions_.end()) {
    Session s;
    s.protocol = inner_factory_(self_);
    SBRS_CHECK(s.protocol != nullptr);
    s.bits = s.protocol->footprint().total_bits();
    total_bits_ += s.bits;
    it = sessions_.emplace(key, std::move(s)).first;
  }
  return it->second;
}

void MultiKeyClient::refresh_session_bits(Session& s) {
  const uint64_t now_bits = s.protocol->footprint().total_bits();
  total_bits_ += now_bits - s.bits;  // wraps correctly for shrinks
  s.bits = now_bits;
}

void MultiKeyClient::on_invoke(const runtime::Invocation& inv,
                               runtime::ExecutionContext& ctx) {
  const uint32_t key = op_keys_->key_of(inv.op);
  KeyedContext kctx(*this, ctx, key);
  Session& s = session(key);
  s.protocol->on_invoke(inv, kctx);
  refresh_session_bits(s);
}

void MultiKeyClient::on_response(RmwId rmw, runtime::ResponsePtr response,
                                 runtime::ExecutionContext& ctx) {
  auto it = rmw_key_.find(rmw.value);
  SBRS_CHECK_MSG(it != rmw_key_.end(), "response for unrouted " << rmw);
  const uint32_t key = it->second;
  rmw_key_.erase(it);
  KeyedContext kctx(*this, ctx, key);
  Session& s = session(key);
  s.protocol->on_response(rmw, std::move(response), kctx);
  refresh_session_bits(s);
}

metrics::StorageFootprint MultiKeyClient::footprint() const {
  metrics::StorageFootprint fp;
  for (const auto& [key, s] : sessions_) {
    fp.merge(s.protocol->footprint());
  }
  return fp;
}

}  // namespace sbrs::store
