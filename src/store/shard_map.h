// Deterministic key -> shard placement for the multi-object store.
//
// Keys are opaque strings; the map hashes them (FNV-1a 64) and reduces onto
// a fixed shard count. The hash is part of the store's on-disk/JSON contract
// (committed bench artifacts record per-shard results), so it is fixed here
// rather than delegated to std::hash, whose value is implementation-defined.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/check.h"

namespace sbrs::store {

class ShardMap {
 public:
  explicit ShardMap(uint32_t num_shards) : num_shards_(num_shards) {
    SBRS_CHECK_MSG(num_shards >= 1, "store needs at least one shard");
  }

  uint32_t num_shards() const { return num_shards_; }

  uint32_t shard_of(std::string_view key) const {
    return static_cast<uint32_t>(key_hash(key) % num_shards_);
  }

  /// FNV-1a 64 over the key bytes; stable across platforms and releases.
  static uint64_t key_hash(std::string_view key);

 private:
  uint32_t num_shards_;
};

}  // namespace sbrs::store
