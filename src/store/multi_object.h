// Multiplexing many emulated registers over one simulated base object.
//
// A store shard runs ONE simulator whose n base objects are shared by every
// key the shard owns: each MultiKeyObjectState holds an independent
// per-key sub-state produced by the wrapped algorithm's own object factory
// (with v0 pre-stored, exactly as in a single-register run). An RMW routed
// through MultiKeyClient names its key; apply() dispatches it to that key's
// sub-state only, so per-key protocol state never interacts across keys —
// which is why each key individually keeps the wrapped algorithm's
// consistency and storage guarantees while sharing the crash domain (an
// object crash takes down its slice of *every* key, as one disk would).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "runtime/context.h"
#include "runtime/types.h"

namespace sbrs::store {

class MultiKeyObjectState final : public runtime::ObjectStateBase {
 public:
  /// `premount` lists the key ids whose sub-states (with their v0 pieces)
  /// exist from time zero — the store's loaded keyspace. Keys outside it
  /// are mounted on first RMW touch, materializing their v0 then.
  MultiKeyObjectState(ObjectId self, runtime::ObjectFactory inner_factory,
                      const std::vector<uint32_t>& premount);

  /// Apply `fn` to key `key`'s sub-state (mounting it if needed) and keep
  /// the cached bit total current — the simulator's incremental accounting
  /// reads stored_bits() after every delivery, and re-summing all keys
  /// there would make delivery O(keyspace).
  runtime::ResponsePtr apply(uint32_t key, const runtime::RmwFn& fn);

  metrics::StorageFootprint footprint() const override;
  uint64_t stored_bits() const override { return total_bits_; }

  /// From-disk restart: forward the hook to every mounted per-key sub-state
  /// (they re-join with their frozen, possibly stale images) and rebuild the
  /// cached per-key and total bit counts from scratch — the simulator reads
  /// stored_bits() right after, so the accounting stays exact even if a
  /// sub-state's hook shed volatile bits.
  void on_restart(runtime::RestartMode mode) override;

  size_t mounted_keys() const { return subs_.size(); }
  /// The sub-state of `key`, or nullptr if never mounted (tests).
  const runtime::ObjectStateBase* sub(uint32_t key) const;
  /// Ids of all mounted keys, ascending (the repair planner walks them to
  /// build the per-key repair fan; store/repair.h).
  std::vector<uint32_t> mounted_key_ids() const;

 private:
  runtime::ObjectStateBase& ensure(uint32_t key);

  ObjectId self_;
  runtime::ObjectFactory inner_factory_;
  struct Sub {
    std::unique_ptr<runtime::ObjectStateBase> state;
    uint64_t bits = 0;  // cached state->stored_bits()
  };
  std::map<uint32_t, Sub> subs_;  // ordered: deterministic footprint order
  uint64_t total_bits_ = 0;
};

}  // namespace sbrs::store
