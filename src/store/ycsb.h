// YCSB-style workload generation for the multi-object store.
//
// The cloud-serving benchmark's core workloads map onto the register model
// as follows: "read" = get (a register read), "update" = put (a register
// write of a full record), "read-modify-write" = a get immediately followed
// by a put on the same key by the same client (the register API has no
// atomic RMW, matching YCSB-F's non-transactional default). Key popularity
// follows one of three request distributions:
//
//   uniform   every record equally likely;
//   zipfian   Gray et al.'s bounded zipfian over record ranks (YCSB's
//             generator) — record 0 is the most popular, giving tests a
//             monotone frequency-vs-rank shape to pin;
//   latest    zipfian over recency: rank 0 is the most recently *written*
//             record at generation time, so reads chase the write frontier.
//
// generate() produces the full deterministic operation stream up front (one
// shared seeded RNG, clients interleaved round-robin), which the Store then
// partitions by key hash into per-shard queues — so the stream, and with it
// every per-shard simulation, is a pure function of the options.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "sim/types.h"

namespace sbrs::store::ycsb {

enum class Distribution { kUniform, kZipfian, kLatest };

/// The YCSB core mixes this store models (D and E need inserts/scans the
/// register API does not expose). kCustom uses Options::read_percent.
enum class Mix { kA, kB, kC, kF, kCustom };

const char* to_string(Distribution d);
const char* to_string(Mix m);
/// Parse "uniform" / "zipfian" / "latest"; throws CheckFailure otherwise.
Distribution parse_distribution(const std::string& s);
/// Parse "A"/"a"/"B"/.../"F"; throws CheckFailure otherwise.
Mix parse_mix(const std::string& s);

/// Read percentage (out of 100) of a mix: A=50, B=95, C=100, F=50 (the
/// write half of F being read-modify-write pairs).
uint32_t read_percent_for(Mix m);

struct Options {
  uint32_t num_keys = 128;       // record count
  uint32_t clients = 4;          // closed-loop sessions
  uint32_t ops_per_client = 64;  // workload ops (an F-mix RMW counts as one)
  Mix mix = Mix::kB;
  uint32_t read_percent = 95;    // used only when mix == kCustom
  Distribution distribution = Distribution::kZipfian;
  double zipf_theta = 0.99;      // YCSB's zipfian constant
  uint64_t seed = 1;
};

/// One generated operation: which client session performs it, on which
/// record (key index in [0, num_keys)), read or write.
struct Op {
  uint32_t client = 0;
  uint32_t key = 0;
  sim::OpKind kind = sim::OpKind::kRead;
};

/// The full operation stream, deterministic in Options (including seed).
/// RMW pairs of the F mix appear as adjacent read+write ops of one client;
/// the stream is interleaved round-robin across clients, matching how
/// closed-loop sessions would race in real time.
std::vector<Op> generate(const Options& opts);

/// Bounded zipfian over ranks [0, n) (Gray et al., "Quickly generating
/// billion-record synthetic databases" — the YCSB generator): rank r is
/// drawn with probability proportional to 1/(r+1)^theta. Stateless between
/// draws; the caller supplies the RNG so streams stay replayable.
class ZipfianGenerator {
 public:
  ZipfianGenerator(uint64_t n, double theta);

  uint64_t next(Rng& rng) const;

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
};

/// "Latest" request distribution: a zipfian draw over recency. next()
/// returns the key `z` positions behind the most recent write (modulo the
/// keyspace), where z ~ zipfian(n); note_write() advances the frontier.
class LatestGenerator {
 public:
  LatestGenerator(uint64_t n, double theta);

  uint64_t next(Rng& rng) const;
  void note_write(uint64_t key) { latest_ = key; }
  uint64_t latest() const { return latest_; }

 private:
  ZipfianGenerator zipf_;
  uint64_t latest_;  // most recently written key; starts at n - 1
};

}  // namespace sbrs::store::ycsb
