// The sharded multi-object store engine.
//
// A Store mounts one emulated register per key over `num_shards` shards;
// each shard is ONE simulator whose n base objects are shared by all of the
// shard's keys (MultiKeyObjectState) and whose clients are multiplexing
// sessions (MultiKeyClient). Keys place onto shards by hash (ShardMap).
// Because sub-states never interact across keys, every key individually
// keeps the wrapped algorithm's guarantees — strong regularity for
// adaptive/abd, weak regularity for the coded baselines, O(min(f, c) D)
// storage per key — while sharing crash domains and the storage pool the
// way a real deployment would.
//
// Two driving modes share the shard infrastructure:
//   - put()/get(): synchronous single-key operations (the shard simulator
//     is resumed and stepped until the operation returns);
//   - run(): a whole YCSB-style workload (src/store/ycsb.h) generated up
//     front, partitioned into per-shard queues, and drained shard-parallel
//     on harness::parallel_map with schedule-independent per-shard seeds —
//     results are identical for any worker thread count.
//
// Consistency checking relies on written values being distinct (the batch
// path derives them from the global stream position; interactive callers
// should write distinct values or skip the checkers).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include <map>

#include "harness/algorithms.h"
#include "harness/runner.h"
#include "metrics/latency_histogram.h"
#include "registers/register_algorithm.h"
#include "sim/arrival.h"
#include "sim/history.h"
#include "sim/simulator.h"
#include "store/multi_client.h"
#include "store/shard_map.h"
#include "store/ycsb.h"

namespace sbrs::store {

struct StoreOptions {
  /// Any harness::make_algorithm name (adaptive, abd, coded, ...).
  std::string algorithm = "adaptive";
  /// Per-shard pool shape: n base objects, erasure dimension k, fault
  /// tolerance f; data_bits is the record size D.
  registers::RegisterConfig register_config;
  uint32_t num_shards = 8;
  ycsb::Options workload;
  /// Open-loop arrival process for run(): when set (process !=
  /// kClosedLoop), the generated stream is scheduled onto each shard's
  /// logical clock (arrival.rate = offered ops per step PER SHARD, each
  /// shard being one simulator) instead of session-paced; ops queue while
  /// all sessions are busy, so latency splits into service and sojourn
  /// time. The ycsb `client` assignment is ignored — any free session
  /// dispatches the queue, the sessions acting as server slots.
  sim::ArrivalOptions arrival;
  harness::SchedKind scheduler = harness::SchedKind::kRandom;
  /// Crash up to this many base objects per shard at random points (keep
  /// <= f for liveness), scheduler == kRandom only.
  uint32_t object_crashes_per_shard = 0;
  /// Crash recovery: restart each crashed object this many steps (on its
  /// shard's logical clock) after the crash (0 = never; scheduler ==
  /// kRandom only, like the crash injection). Each crash gets at most one
  /// restart; the restarted object enters a repair window whose traffic is
  /// charged to repair_bits until the first post-restart write overwrites
  /// it.
  uint64_t restart_after = 0;
  /// kFromDisk re-joins every key's sub-state frozen at crash time (per-key
  /// guarantees hold); kFromScratch mounts an empty replacement replica
  /// (models disk loss — guarantees may fail until repair re-converges it).
  sim::RestartMode restart_mode = sim::RestartMode::kFromDisk;
  /// Anti-entropy pump (scheduler == kRandom only): while a restarted
  /// object's repair window is open, push the newest decodable block of
  /// every mounted key back to it every `repair_every` per-shard steps
  /// (store/repair.h); the push's delivery closes the window even with zero
  /// foreground writes. 0 = passive recovery only.
  uint64_t repair_every = 0;
  /// Read-repair: a read completing on a shard with open repair windows
  /// triggers one repair push per repairing object (piggybacking window
  /// closure on foreground reads; works with every scheduler).
  bool read_repair = false;
  /// Per-shard bound on the bits of repair-push traffic triggered; pushes
  /// stop once spent (windows then only close passively).
  uint64_t repair_budget = UINT64_MAX;
  /// Link partitions per shard (scheduler == kRandom only): inject up to
  /// this many partition events per shard — symmetric or asymmetric, see
  /// sim::RandomScheduler::Options.
  uint32_t partitions_per_shard = 0;
  /// Auto-heal delay of injected partitions, in per-shard steps.
  uint64_t heal_after = 512;
  /// Probabilistic message faults (drops, delay/jitter, reorder windows)
  /// applied on every shard; each shard's fault stream is seeded from
  /// sim::fault_seed(cell_seed(seed, shard, 0)) — thread-count independent
  /// and decorrelated from the shard's schedule stream.
  sim::LinkFaultOptions link_faults;
  /// Scripted fault timeline applied to EVERY shard (times are on each
  /// shard's own logical clock). The scenario runner's execution path.
  std::vector<sim::FaultEvent> fault_timeline;
  /// Override the per-key consistency guarantee checked (default: the
  /// algorithm's own, harness::expected_consistency). Scenario files use
  /// this to demand a weaker/stronger level than the algorithm declares.
  std::optional<harness::ConsistencyGuarantee> check_level;
  /// Override SimConfig::verify_accounting on every shard (unset =
  /// build-type default: on in Debug, off in Release).
  std::optional<bool> verify_accounting;
  /// Base seed; each shard's schedule seed is splitmix-derived from
  /// {seed, shard index}, independent of thread count.
  uint64_t seed = 1;
  /// Worker threads for run(); 0 = hardware concurrency.
  uint32_t threads = 0;
  bool check_consistency = true;
  /// Attach an obs::TraceRecorder to every shard simulator. Each recorder
  /// is written by exactly one worker (run() drains one shard per task), so
  /// tracing stays race-free and the merged export (write_store_trace_json)
  /// is byte-identical for any thread count. Off (the default), no recorder
  /// exists and every shard runs the null-sink O(1) path.
  bool trace = false;
  uint64_t max_steps_per_shard = 8'000'000;
  /// Records are named `<key_prefix><i>` for i in [0, workload.num_keys).
  std::string key_prefix = "user";
  /// Execution backend for run(). kThreads mounts each shard's MultiKey
  /// protocols on the threaded runtime (runtime/backend.h): one worker
  /// thread per base object, one driver per session, wall-clock-nanosecond
  /// latency histograms, real ops_per_sec. Closed-loop fault-free workloads
  /// only (checked at mount); put()/get() stay simulator-driven and are
  /// rejected in threads mode. Shard fingerprints are 0 — threaded
  /// histories are real interleavings, not replayable schedules.
  harness::Backend backend = harness::Backend::kSim;
};

/// Deterministic per-shard outcome (wall_seconds excepted).
struct ShardResult {
  uint32_t shard = 0;
  uint32_t keys_mounted = 0;  // loaded keyspace owned by this shard
  uint32_t keys_touched = 0;  // keys with at least one operation
  uint32_t keys_checked = 0;
  uint32_t consistency_failures = 0;  // keys failing their own guarantee
  sim::RunReport report;
  uint64_t max_total_bits = 0;
  uint64_t max_object_bits = 0;
  uint64_t max_channel_bits = 0;
  uint64_t final_object_bits = 0;
  uint64_t final_total_bits = 0;
  metrics::LatencyHistogram read_latency;
  metrics::LatencyHistogram write_latency;
  // Open-loop queueing outcome (zero / false for closed-loop runs; the
  // sojourn histogram itself travels in report.sojourn_latency).
  uint64_t max_queue_depth = 0;
  uint64_t undispatched = 0;  // arrivals never handed to a session
  /// Offered load beat the drain rate: the run ended with queued arrivals
  /// or was cut off by the per-shard step budget.
  bool saturated = false;
  bool live = true;   // no operation of a live session left outstanding
  uint64_t fingerprint = 0;
  std::vector<std::string> violations;  // first few, for diagnostics
  double wall_seconds = 0;  // machine-dependent
};

struct StoreResult {
  StoreOptions options;
  std::vector<ShardResult> shards;  // in shard order

  // Merged deterministic aggregates.
  metrics::LatencyHistogram read_latency;
  metrics::LatencyHistogram write_latency;
  /// All-op service time (invoke -> return) and sojourn time (arrival ->
  /// return) merged across shards. Closed-loop runs: the two are equal;
  /// open-loop runs past saturation: sojourn p99 >> service p99.
  metrics::LatencyHistogram service_latency;
  metrics::LatencyHistogram sojourn_latency;
  uint64_t max_queue_depth = 0;  // deepest per-shard arrival queue
  uint64_t undispatched = 0;     // summed over shards
  bool saturated = false;        // any shard saturated
  /// Crash-recovery outcome summed over shards (each shard's own counters
  /// live in its ShardResult::report). degraded_sojourn merges the sojourn
  /// time of operations that returned while >= 1 of their shard's objects
  /// was down — the degraded-window tail next to sojourn_latency.
  uint64_t object_crash_events = 0;
  uint64_t object_restarts = 0;
  uint64_t repair_bits = 0;
  /// Active-repair outcome summed over shards: pushes triggered (read-repair
  /// + anti-entropy) and repair windows still open at the end of the run
  /// (0 = every restarted replica re-converged).
  uint64_t repair_pushes = 0;
  uint32_t open_repair_windows = 0;
  uint64_t degraded_steps = 0;
  /// Steps (summed over shards) with >= 1 repair window open — the
  /// degraded-window axis the anti-entropy rate trades repair_bits against.
  uint64_t repair_window_steps = 0;
  metrics::LatencyHistogram degraded_sojourn;
  /// Link-fault outcome summed over shards (zero for fault-free runs).
  uint64_t partition_events = 0;
  uint64_t heal_events = 0;
  uint64_t rmws_dropped = 0;
  uint64_t rmws_delayed = 0;
  uint64_t completed_reads = 0;
  uint64_t completed_writes = 0;
  uint64_t total_steps = 0;
  /// Sum over shards of each shard's Definition 2 peak — an upper bound on
  /// the store-wide peak (shards need not peak simultaneously).
  uint64_t peak_total_bits_sum = 0;
  uint64_t peak_object_bits_sum = 0;
  uint64_t final_object_bits_sum = 0;
  /// The hottest shard's peak object storage (shard skew in one number).
  uint64_t max_shard_object_bits = 0;
  uint32_t keys_checked = 0;
  uint32_t consistency_failures = 0;
  bool all_live = true;
  bool all_quiesced = true;

  // Timing (machine-dependent; excluded from the deterministic export).
  double wall_seconds = 0;
  double ops_per_sec = 0;
  uint32_t threads_used = 1;

  /// Order-sensitive mix of the per-shard fingerprints: equal fingerprints
  /// mean identical per-shard histories, storage maxima, and verdicts.
  uint64_t fingerprint() const;
};

class Store {
 public:
  explicit Store(StoreOptions opts);
  ~Store();

  Store(const Store&) = delete;
  Store& operator=(const Store&) = delete;

  // --- Interactive API (session 0 of the key's shard) ---

  /// Write `value` (D bits) to `key`, driving the shard until the write
  /// returns. Keys outside the loaded keyspace are mounted on first touch.
  void put(const std::string& key, const Value& value);

  /// Read `key`, driving the shard until the read returns.
  Value get(const std::string& key);

  // --- Batch API ---

  /// Generate the configured YCSB stream, partition it onto the shards,
  /// drain all shards in parallel, and summarize (per-key consistency
  /// checks included when check_consistency is set). May be called
  /// repeatedly — written values stay distinct across calls and results
  /// are cumulative over the store's whole history.
  StoreResult run();

  /// Summarize the shards' current state without driving more operations
  /// (used after interactive traffic). Timing fields are zero.
  StoreResult summarize();

  const ShardMap& shard_map() const { return map_; }
  const StoreOptions& options() const { return opts_; }

  /// Dense id of `key`, registering it if new.
  uint32_t key_id(const std::string& key);
  const std::string& key_name(uint32_t id) const;
  uint32_t num_keys() const;

  /// The shard simulator owning `key` (tests / inspection).
  const sim::Simulator& shard_sim(uint32_t shard) const;

  /// The op -> key table of `shard` (tests / external history splitting).
  const OpKeyTable& shard_op_keys(uint32_t shard) const;

  /// The trace recorder of `shard`, or nullptr when StoreOptions::trace is
  /// off (tests / custom exporters; write_store_trace_json merges them all).
  const obs::TraceRecorder* shard_trace(uint32_t shard) const;

 private:
  struct Shard;

  std::optional<Value> drive(const std::string& key, sim::OpKind kind,
                             Value value);
  ShardResult summarize_shard(const Shard& shard) const;
  StoreResult assemble(std::vector<ShardResult> shards) const;
  /// The threaded-backend batch path of run(): per-shard runtime meshes,
  /// sequential over shards (each shard already fans out n + sessions
  /// threads).
  StoreResult run_threads_batch(const std::vector<ycsb::Op>& ops);

  StoreOptions opts_;
  ShardMap map_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::string> key_names_;
  std::vector<uint32_t> key_shards_;  // shard_of(key_names_[i]), cached
  std::unordered_map<std::string, uint32_t> key_ids_;
  /// Store-lifetime write-value tag counter: keeps batch-written values
  /// distinct across repeated run() calls (the checkers' precondition).
  uint64_t next_write_tag_ = 1;
  /// Count of open-loop run() batches already scheduled: batch b draws its
  /// per-shard arrival schedules from seed index 1 + b, so a repeated run()
  /// gets fresh interarrival draws instead of replaying batch 0's pattern
  /// shifted past the old traffic (index 0 is the shard scheduler's seed).
  uint64_t open_batches_ = 0;
};

/// Pretty-printed JSON of the full result: an "options" block, the
/// deterministic block (write_store_deterministic_json below, byte-stable
/// across thread counts), and a "timing" block (machine-dependent).
void write_store_json(std::ostream& os, const StoreResult& result);

/// Only the deterministic portion: merged latency/storage aggregates,
/// verdict counters, and the per-shard array. Byte-identical for the same
/// {options, seed} no matter how many worker threads ran the shards.
void write_store_deterministic_json(std::ostream& os,
                                    const StoreResult& result);

/// Split a shard-wide history into one history per key (keyed by the dense
/// key id the OpKeyTable records), in a single pass. The checkers then see
/// exactly what a single-register run of each key's operations would have
/// recorded. Used internally by the per-key consistency pass and exposed
/// for the store fuzz tests, which push randomized open-loop multi-key
/// histories through the checker hierarchy directly.
std::map<uint32_t, sim::History> split_history_by_key(
    const sim::History& h, const OpKeyTable& op_keys);

/// Chrome trace_event JSON of every shard's trace, one process per shard
/// (pid = shard index, name "shard<i>"), merged in shard-index order — the
/// bytes are identical for any worker thread count. Requires
/// StoreOptions::trace; throws CheckFailure otherwise.
void write_store_trace_json(std::ostream& os, const Store& store);

/// CSV counterpart (see obs::write_timeseries_csv) of the shards' per-step
/// counter series, `process` column = "shard<i>".
void write_store_timeseries_csv(std::ostream& os, const Store& store);

}  // namespace sbrs::store
