#include "store/shard_map.h"

#include "common/bytes.h"

namespace sbrs::store {

uint64_t ShardMap::key_hash(std::string_view key) {
  return fnv1a(BytesView(reinterpret_cast<const uint8_t*>(key.data()),
                         key.size()));
}

}  // namespace sbrs::store
