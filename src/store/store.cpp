#include "store/store.h"

#include <algorithm>
#include <chrono>
#include <iomanip>
#include <map>
#include <thread>
#include <utility>

#include "common/bytes.h"
#include "common/check.h"
#include "common/stop_reason.h"
#include "consistency/checker.h"
#include "harness/algorithms.h"
#include "harness/export.h"
#include "harness/sweep.h"
#include "obs/export.h"
#include "runtime/backend.h"
#include "sim/schedulers.h"
#include "store/multi_client.h"
#include "store/multi_object.h"
#include "store/queue_workload.h"
#include "store/repair.h"

namespace sbrs::store {

namespace {

uint64_t mix_into(uint64_t h, uint64_t v) { return fnv1a_mix(h, v); }

/// StoreOptions counterpart of harness::has_link_faults.
bool store_has_link_faults(const StoreOptions& opts) {
  if (opts.partitions_per_shard > 0) return true;
  const sim::LinkFaultOptions& lf = opts.link_faults;
  if (lf.drop_permyriad > 0 || lf.delay_permyriad > 0 ||
      lf.reorder_window > 0 || !lf.windows.empty()) {
    return true;
  }
  for (const sim::FaultEvent& e : opts.fault_timeline) {
    switch (e.kind) {
      case sim::FaultEvent::Kind::kPartitionLink:
      case sim::FaultEvent::Kind::kPartitionObject:
      case sim::FaultEvent::Kind::kHealLink:
      case sim::FaultEvent::Kind::kHealObject:
      case sim::FaultEvent::Kind::kHealAll:
        return true;
      default:
        break;
    }
  }
  return false;
}

std::unique_ptr<sim::Scheduler> make_scheduler(const StoreOptions& opts,
                                               uint64_t shard_seed) {
  std::unique_ptr<sim::Scheduler> scheduler;
  switch (opts.scheduler) {
    case harness::SchedKind::kRandom: {
      sim::RandomScheduler::Options so;
      so.seed = shard_seed;
      so.max_object_crashes = opts.object_crashes_per_shard;
      so.crash_object_permyriad = opts.object_crashes_per_shard > 0 ? 20 : 0;
      so.restart_after = opts.restart_after;
      so.restart_mode = opts.restart_mode;
      so.max_object_restarts =
          opts.restart_after > 0 ? opts.object_crashes_per_shard : 0;
      so.max_partitions = opts.partitions_per_shard;
      so.partition_permyriad = opts.partitions_per_shard > 0 ? 20 : 0;
      so.partition_heal_after = opts.heal_after;
      so.repair_every = opts.repair_every;
      scheduler = std::make_unique<sim::RandomScheduler>(so);
      break;
    }
    case harness::SchedKind::kRoundRobin:
      scheduler = std::make_unique<sim::RoundRobinScheduler>();
      break;
    case harness::SchedKind::kBurst:
      scheduler = std::make_unique<sim::BurstScheduler>();
      break;
  }
  if (!opts.fault_timeline.empty()) {
    scheduler = std::make_unique<sim::ScriptedFaultScheduler>(
        opts.fault_timeline, std::move(scheduler));
  }
  return scheduler;
}

}  // namespace

std::map<uint32_t, sim::History> split_history_by_key(
    const sim::History& h, const OpKeyTable& op_keys) {
  std::map<uint32_t, sim::History> out;
  for (const auto& ev : h.events()) {
    // Crash/restart bookkeeping events carry no operation and stay out of
    // the per-key traces the checkers consume.
    if (!sim::is_op_event(ev)) continue;
    const uint32_t* k = op_keys.find(ev.op);
    if (k == nullptr) continue;
    sim::History& sub = out[*k];
    if (ev.kind == sim::HistoryEvent::Kind::kInvoke) {
      sim::Invocation inv;
      inv.op = ev.op;
      inv.client = ev.client;
      inv.kind = ev.op_kind;
      inv.value = ev.value;
      sub.record_invoke(ev.time, inv);
    } else {
      std::optional<Value> result;
      if (ev.op_kind == sim::OpKind::kRead) result = ev.value;
      sub.record_return(ev.time, ev.op, result);
    }
  }
  return out;
}

struct Store::Shard {
  uint32_t index = 0;
  std::unique_ptr<registers::RegisterAlgorithm> algorithm;
  std::shared_ptr<OpKeyTable> op_keys;
  QueueWorkload* workload = nullptr;  // owned by the simulator
  std::unique_ptr<sim::Simulator> sim;
  std::vector<uint32_t> premounted;  // key ids loaded at time zero
  /// Written only by the worker draining this shard (run() hands each shard
  /// to exactly one task), read only after the parallel_map barrier.
  std::unique_ptr<obs::TraceRecorder> trace;
};

Store::Store(StoreOptions opts) : opts_(std::move(opts)), map_(opts_.num_shards) {
  SBRS_CHECK_MSG(opts_.workload.clients >= 1, "store needs >= 1 session");
  // An unusable arrival spec (rate <= 0, burst_on == 0) fails at mount
  // time with the reason, not deep inside the first run().
  const std::string arrival_why = sim::validate_arrival(opts_.arrival);
  SBRS_CHECK_MSG(arrival_why.empty(), arrival_why);
  SBRS_CHECK_MSG(
      opts_.scheduler == harness::SchedKind::kRandom ||
          !store_has_link_faults(opts_),
      "link faults (partitions, drops, delays, reordering) need the random "
      "scheduler — the deterministic schedulers are not fault-aware");
  SBRS_CHECK_MSG(
      opts_.repair_every == 0 || opts_.scheduler == harness::SchedKind::kRandom,
      "anti-entropy (repair_every) needs the random scheduler — only its "
      "pump emits repair actions (read_repair works with any scheduler)");
  if (opts_.backend == harness::Backend::kThreads) {
    SBRS_CHECK_MSG(!sim::open_loop(opts_.arrival),
                   "the threaded store backend runs closed-loop sessions "
                   "only (open-loop arrivals are a simulator capability)");
    SBRS_CHECK_MSG(opts_.object_crashes_per_shard == 0 &&
                       opts_.partitions_per_shard == 0 &&
                       opts_.repair_every == 0 && !opts_.read_repair &&
                       opts_.fault_timeline.empty() &&
                       !store_has_link_faults(opts_),
                   "fault injection and repair are simulator capabilities — "
                   "the threaded store backend runs fault-free");
    SBRS_CHECK_MSG(!opts_.trace,
                   "structured tracing is a simulator capability — the "
                   "threaded store backend does not emit trace events");
  }

  // The loaded keyspace: ids 0..num_keys-1 in name order, matching the
  // ycsb::Op key indices, placed onto shards by key-name hash.
  std::vector<std::vector<uint32_t>> premount(opts_.num_shards);
  for (uint32_t i = 0; i < opts_.workload.num_keys; ++i) {
    const uint32_t id = key_id(opts_.key_prefix + std::to_string(i));
    SBRS_CHECK(id == i);
    premount[key_shards_[id]].push_back(id);
  }

  shards_.reserve(opts_.num_shards);
  for (uint32_t s = 0; s < opts_.num_shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->index = s;
    // A fresh algorithm instance per shard: codec caches and any other
    // mutable algorithm state never cross a worker-thread boundary.
    shard->algorithm =
        harness::make_algorithm(opts_.algorithm, opts_.register_config);
    shard->op_keys = std::make_shared<OpKeyTable>();
    shard->premounted = std::move(premount[s]);

    const auto& cfg = shard->algorithm->config();
    sim::SimConfig sc;
    sc.num_objects = cfg.n;
    sc.num_clients = opts_.workload.clients;
    sc.max_steps = opts_.max_steps_per_shard;
    sc.link_faults = opts_.link_faults;
    sc.link_faults.seed = sim::fault_seed(harness::cell_seed(opts_.seed, s, 0));
    if (opts_.repair_every > 0 || opts_.read_repair) {
      sc.repair_planner = make_store_repair_planner(*shard->algorithm);
      sc.read_repair = opts_.read_repair;
      sc.repair_budget = opts_.repair_budget;
    }
    if (opts_.verify_accounting.has_value()) {
      sc.verify_accounting = *opts_.verify_accounting;
    }
    if (opts_.trace) {
      shard->trace = std::make_unique<obs::TraceRecorder>();
      sc.trace = shard->trace.get();
    }

    auto workload =
        std::make_unique<QueueWorkload>(opts_.workload.clients, shard->op_keys);
    shard->workload = workload.get();

    sim::ObjectFactory inner_objects = shard->algorithm->object_factory();
    const std::vector<uint32_t>& mounted = shard->premounted;
    sim::ObjectFactory objects =
        [inner_objects, mounted](ObjectId o) -> std::unique_ptr<sim::ObjectStateBase> {
      return std::make_unique<MultiKeyObjectState>(o, inner_objects, mounted);
    };

    sim::ClientFactory inner_clients = shard->algorithm->client_factory();
    std::shared_ptr<const OpKeyTable> op_keys = shard->op_keys;
    sim::ClientFactory clients =
        [inner_clients, op_keys](ClientId c) -> std::unique_ptr<sim::ClientProtocol> {
      return std::make_unique<MultiKeyClient>(c, inner_clients, op_keys);
    };

    shard->sim = std::make_unique<sim::Simulator>(
        sc, objects, clients, std::move(workload),
        make_scheduler(opts_, harness::cell_seed(opts_.seed, s, 0)));
    shards_.push_back(std::move(shard));
  }
}

Store::~Store() = default;

uint32_t Store::key_id(const std::string& key) {
  auto it = key_ids_.find(key);
  if (it != key_ids_.end()) return it->second;
  const uint32_t id = static_cast<uint32_t>(key_names_.size());
  key_names_.push_back(key);
  key_shards_.push_back(map_.shard_of(key));
  key_ids_.emplace(key, id);
  return id;
}

const std::string& Store::key_name(uint32_t id) const {
  SBRS_CHECK(id < key_names_.size());
  return key_names_[id];
}

uint32_t Store::num_keys() const {
  return static_cast<uint32_t>(key_names_.size());
}

const sim::Simulator& Store::shard_sim(uint32_t shard) const {
  SBRS_CHECK(shard < shards_.size());
  return *shards_[shard]->sim;
}

const OpKeyTable& Store::shard_op_keys(uint32_t shard) const {
  SBRS_CHECK(shard < shards_.size());
  return *shards_[shard]->op_keys;
}

const obs::TraceRecorder* Store::shard_trace(uint32_t shard) const {
  SBRS_CHECK(shard < shards_.size());
  return shards_[shard]->trace.get();
}

std::optional<Value> Store::drive(const std::string& key, sim::OpKind kind,
                                  Value value) {
  SBRS_CHECK_MSG(opts_.backend == harness::Backend::kSim,
                 "put()/get() drive the shard simulator — use backend=sim "
                 "(the threaded backend is batch-run() only)");
  const uint32_t id = key_id(key);
  Shard& shard = *shards_[key_shards_[id]];
  const ClientId session{0};

  const size_t already_issued = shard.workload->issued(session).size();
  QueueWorkload::Item item;
  item.key = id;
  item.kind = kind;
  item.value = std::move(value);
  shard.workload->push(session, std::move(item));

  shard.sim->resume();
  shard.sim->run();

  const auto& issued = shard.workload->issued(session);
  SBRS_CHECK_MSG(issued.size() > already_issued,
                 "store op on '" << key << "' was never invoked "
                                 << "(step limit reached?)");
  const sim::OpRecord* rec = shard.sim->history().find(issued[already_issued]);
  SBRS_CHECK_MSG(rec != nullptr && rec->complete(),
                 "store op on '" << key << "' did not return "
                                 << "(stuck protocol or step limit)");
  if (kind == sim::OpKind::kRead) return rec->value;
  return std::nullopt;
}

void Store::put(const std::string& key, const Value& value) {
  SBRS_CHECK_MSG(value.bit_size() == opts_.register_config.data_bits,
                 "put value must be exactly D = "
                     << opts_.register_config.data_bits << " bits");
  drive(key, sim::OpKind::kWrite, value);
}

Value Store::get(const std::string& key) {
  auto result = drive(key, sim::OpKind::kRead, Value{});
  SBRS_CHECK(result.has_value());
  return std::move(*result);
}

ShardResult Store::summarize_shard(const Shard& shard) const {
  ShardResult r;
  r.shard = shard.index;
  r.keys_mounted = static_cast<uint32_t>(shard.premounted.size());
  r.report = shard.sim->report();

  const auto& meter = shard.sim->meter();
  r.max_total_bits = meter.max_total_bits();
  r.max_object_bits = meter.max_object_bits();
  r.max_channel_bits = meter.max_channel_bits();
  r.final_object_bits = meter.last_object_bits();
  r.final_total_bits = meter.last_total_bits();

  const sim::History& history = shard.sim->history();
  for (const auto& rec : history.ops()) {
    if (!rec.complete()) continue;
    const uint64_t latency = *rec.return_time - rec.invoke_time;
    (rec.kind == sim::OpKind::kRead ? r.read_latency : r.write_latency)
        .record(latency);
  }

  r.max_queue_depth = shard.workload->max_queue_depth();
  r.undispatched = shard.workload->undispatched();
  r.saturated = shard.workload->saturated(r.report.hit_step_limit);

  r.live = true;
  for (const auto& rec : history.outstanding()) {
    if (shard.sim->client_alive(rec.client)) r.live = false;
  }

  // Per-key histories in key-id order: deterministic verdict aggregation.
  const std::map<uint32_t, sim::History> by_key =
      split_history_by_key(history, *shard.op_keys);
  r.keys_touched = static_cast<uint32_t>(by_key.size());

  uint64_t fp = harness::kFingerprintSeed;
  fp = mix_into(fp, shard.index);
  if (opts_.check_consistency) {
    const auto guarantee = opts_.check_level.value_or(
        harness::expected_consistency(opts_.algorithm));
    for (const auto& [key, sub] : by_key) {
      consistency::CheckResult legal = consistency::check_values_legal(sub);
      bool ok = legal.ok;
      std::vector<std::string> why = std::move(legal.violations);
      auto apply = [&](consistency::CheckResult res) {
        ok = ok && res.ok;
        why.insert(why.end(), res.violations.begin(), res.violations.end());
      };
      switch (guarantee) {
        case harness::ConsistencyGuarantee::kStronglySafe:
          apply(consistency::check_strongly_safe(sub));
          break;
        case harness::ConsistencyGuarantee::kWeakRegular:
          apply(consistency::check_weak_regularity(sub));
          break;
        case harness::ConsistencyGuarantee::kStrongRegular:
          apply(consistency::check_weak_regularity(sub));
          apply(consistency::check_strong_regularity(sub));
          break;
      }
      ++r.keys_checked;
      if (!ok) {
        ++r.consistency_failures;
        for (const auto& v : why) {
          if (r.violations.size() >= 4) break;
          r.violations.push_back("key '" + key_name(key) + "': " + v);
        }
      }
      fp = mix_into(fp, ok);
    }
  }

  fp = harness::history_fingerprint(history, fp);
  fp = mix_into(fp, r.max_total_bits);
  fp = mix_into(fp, r.max_object_bits);
  fp = mix_into(fp, r.max_channel_bits);
  fp = mix_into(fp, r.final_total_bits);
  fp = mix_into(fp, r.report.steps);
  fp = mix_into(fp, r.report.rmws_triggered);
  fp = mix_into(fp, r.report.rmws_delivered);
  fp = mix_into(fp, r.live);
  // Open-loop queueing outcome: arrival times are not part of the history
  // trace, so pin the derived sojourn tail and queue stats explicitly.
  fp = mix_into(fp, r.max_queue_depth);
  fp = mix_into(fp, r.undispatched);
  fp = mix_into(fp, r.saturated);
  fp = mix_into(fp, r.report.sojourn_latency.count());
  fp = mix_into(fp, r.report.sojourn_latency.p50());
  fp = mix_into(fp, r.report.sojourn_latency.p99());
  fp = mix_into(fp, r.report.sojourn_latency.max());
  fp = harness::recovery_fingerprint(r.report, fp);
  fp = harness::link_fault_fingerprint(r.report, fp);
  r.fingerprint = fp;
  return r;
}

StoreResult Store::assemble(std::vector<ShardResult> shards) const {
  StoreResult result;
  result.options = opts_;
  for (const auto& s : shards) {
    result.read_latency.merge(s.read_latency);
    result.write_latency.merge(s.write_latency);
    result.service_latency.merge(s.report.op_latency);
    result.sojourn_latency.merge(s.report.sojourn_latency);
    result.max_queue_depth = std::max(result.max_queue_depth,
                                      s.max_queue_depth);
    result.undispatched += s.undispatched;
    result.saturated = result.saturated || s.saturated;
    result.object_crash_events += s.report.object_crash_events;
    result.object_restarts += s.report.object_restarts;
    result.repair_bits += s.report.repair_bits;
    result.repair_pushes += s.report.repair_pushes;
    result.open_repair_windows += s.report.open_repair_windows;
    result.degraded_steps += s.report.degraded_steps;
    result.repair_window_steps += s.report.repair_window_steps;
    result.degraded_sojourn.merge(s.report.degraded_sojourn);
    result.partition_events += s.report.partition_events;
    result.heal_events += s.report.heal_events;
    result.rmws_dropped += s.report.rmws_dropped;
    result.rmws_delayed += s.report.rmws_delayed;
    result.completed_reads += s.read_latency.count();
    result.completed_writes += s.write_latency.count();
    result.total_steps += s.report.steps;
    result.peak_total_bits_sum += s.max_total_bits;
    result.peak_object_bits_sum += s.max_object_bits;
    result.final_object_bits_sum += s.final_object_bits;
    result.max_shard_object_bits =
        std::max(result.max_shard_object_bits, s.max_object_bits);
    result.keys_checked += s.keys_checked;
    result.consistency_failures += s.consistency_failures;
    result.all_live = result.all_live && s.live;
    result.all_quiesced = result.all_quiesced && s.report.quiesced;
  }
  result.shards = std::move(shards);
  return result;
}

StoreResult Store::run_threads_batch(const std::vector<ycsb::Op>& ops) {
  const auto start = std::chrono::steady_clock::now();
  const auto& cfg = opts_.register_config;

  // Partition the stream onto shards, preserving per-client order, with
  // globally unique OpIds and distinct write tags (the checkers'
  // precondition), and a FRESH OpKeyTable per shard per batch: the
  // simulator-side tables (shard->op_keys) stay untouched, so a threaded
  // batch never perturbs sim-mode state.
  struct ShardBatch {
    std::shared_ptr<OpKeyTable> op_keys = std::make_shared<OpKeyTable>();
    // session (ycsb client) -> ops, in stream order
    std::map<uint32_t, std::vector<runtime::Invocation>> sessions;
    uint32_t keys_touched = 0;
  };
  std::vector<ShardBatch> batches(opts_.num_shards);
  uint64_t next_op = 1;
  for (const auto& op : ops) {
    SBRS_CHECK(op.key < opts_.workload.num_keys);
    const uint32_t shard_index = key_shards_[op.key];
    ShardBatch& b = batches[shard_index];
    runtime::Invocation inv;
    inv.op = OpId{next_op++};
    inv.client = ClientId{op.client};
    inv.kind = op.kind;
    if (op.kind == sim::OpKind::kWrite) {
      inv.value = Value::from_tag(next_write_tag_++, cfg.data_bits);
    }
    b.op_keys->assign(inv.op, op.key);
    b.sessions[op.client].push_back(std::move(inv));
  }

  // One runtime mesh per shard, sequentially: each mesh already fans out
  // cfg.n worker threads plus one driver per session.
  std::vector<ShardResult> shard_results;
  shard_results.reserve(opts_.num_shards);
  for (uint32_t s = 0; s < opts_.num_shards; ++s) {
    ShardBatch& b = batches[s];
    const auto shard_start = std::chrono::steady_clock::now();

    runtime::ThreadBackendOptions topts;
    topts.num_objects = cfg.n;
    const Shard& shard = *shards_[s];
    sim::ObjectFactory inner_objects = shard.algorithm->object_factory();
    const std::vector<uint32_t>& mounted = shard.premounted;
    topts.object_factory =
        [inner_objects, mounted](ObjectId o) -> std::unique_ptr<sim::ObjectStateBase> {
      return std::make_unique<MultiKeyObjectState>(o, inner_objects, mounted);
    };
    sim::ClientFactory inner_clients = shard.algorithm->client_factory();
    std::shared_ptr<const OpKeyTable> op_keys = b.op_keys;
    topts.client_factory =
        [inner_clients, op_keys](ClientId c) -> std::unique_ptr<sim::ClientProtocol> {
      return std::make_unique<MultiKeyClient>(c, inner_clients, op_keys);
    };
    for (auto& [client, session_ops] : b.sessions) {
      runtime::SessionSpec session;
      session.client = ClientId{client};
      session.ops = std::move(session_ops);
      topts.sessions.push_back(std::move(session));
    }

    runtime::ThreadRunReport treport = runtime::run_threaded(topts);

    ShardResult r;
    r.shard = s;
    r.keys_mounted = static_cast<uint32_t>(shard.premounted.size());
    r.report.steps = treport.history.events().size();
    r.report.quiesced = treport.history.outstanding().empty();
    r.report.stop_reason = kStopQuiesced;
    r.report.invoked_ops = treport.invoked_ops;
    r.report.completed_ops = treport.completed_ops;
    r.report.rmws_triggered = treport.rmws_triggered;
    r.report.rmws_delivered = treport.rmws_delivered;
    r.report.op_latency = treport.op_latency;
    r.report.sojourn_latency = treport.op_latency;  // closed loop
    r.read_latency = treport.read_latency;
    r.write_latency = treport.write_latency;
    r.max_object_bits = treport.max_object_bits;
    r.max_total_bits = treport.sum_max_object_bits;
    r.max_channel_bits = 0;  // in-flight accounting is a simulator metric
    r.final_object_bits = treport.final_object_bits;
    r.final_total_bits = treport.final_total_bits;
    r.live = treport.live && r.report.quiesced;
    r.fingerprint = 0;  // real interleavings are not replayable schedules

    // Same per-key consistency pass the simulator path runs.
    const std::map<uint32_t, sim::History> by_key =
        split_history_by_key(treport.history, *b.op_keys);
    r.keys_touched = static_cast<uint32_t>(by_key.size());
    if (opts_.check_consistency) {
      const auto guarantee = opts_.check_level.value_or(
          harness::expected_consistency(opts_.algorithm));
      for (const auto& [key, sub] : by_key) {
        consistency::CheckResult legal = consistency::check_values_legal(sub);
        bool ok = legal.ok;
        std::vector<std::string> why = std::move(legal.violations);
        auto apply = [&](consistency::CheckResult res) {
          ok = ok && res.ok;
          why.insert(why.end(), res.violations.begin(), res.violations.end());
        };
        switch (guarantee) {
          case harness::ConsistencyGuarantee::kStronglySafe:
            apply(consistency::check_strongly_safe(sub));
            break;
          case harness::ConsistencyGuarantee::kWeakRegular:
            apply(consistency::check_weak_regularity(sub));
            break;
          case harness::ConsistencyGuarantee::kStrongRegular:
            apply(consistency::check_weak_regularity(sub));
            apply(consistency::check_strong_regularity(sub));
            break;
        }
        ++r.keys_checked;
        if (!ok) {
          ++r.consistency_failures;
          for (const auto& v : why) {
            if (r.violations.size() >= 4) break;
            r.violations.push_back("key '" + key_name(key) + "': " + v);
          }
        }
      }
    }

    r.wall_seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - shard_start)
                         .count();
    shard_results.push_back(std::move(r));
  }

  StoreResult result = assemble(std::move(shard_results));
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  result.threads_used = opts_.num_shards == 0
                            ? 1
                            : opts_.register_config.n + opts_.workload.clients;
  const uint64_t completed = result.completed_reads + result.completed_writes;
  result.ops_per_sec = result.wall_seconds > 0
                           ? static_cast<double>(completed) / result.wall_seconds
                           : 0.0;
  return result;
}

StoreResult Store::run() {
  const auto ops = ycsb::generate(opts_.workload);
  if (opts_.backend == harness::Backend::kThreads) {
    return run_threads_batch(ops);
  }
  const bool open = sim::open_loop(opts_.arrival);

  // Partition the stream onto the shards, preserving per-client order.
  // Write values take tags from the store-lifetime counter, so repeated
  // run() calls on one Store keep every written value distinct — the
  // assumption the per-key checkers rest on (results are then cumulative
  // over the store's whole history).
  std::vector<std::vector<QueueWorkload::Item>> open_items(
      open ? opts_.num_shards : 0);
  for (const auto& op : ops) {
    SBRS_CHECK(op.key < opts_.workload.num_keys);
    const uint32_t shard_index = key_shards_[op.key];
    QueueWorkload::Item item;
    item.key = op.key;
    item.kind = op.kind;
    if (op.kind == sim::OpKind::kWrite) {
      item.value = Value::from_tag(next_write_tag_++,
                                   opts_.register_config.data_bits);
    }
    if (open) {
      open_items[shard_index].push_back(std::move(item));
    } else {
      shards_[shard_index]->workload->push(ClientId{op.client},
                                           std::move(item));
    }
  }

  // Open loop: schedule each shard's sub-stream on that shard's own
  // logical clock (each shard is one simulator), offset past any earlier
  // traffic so repeated run() calls keep the push order nondecreasing and
  // never land a new arrival before traffic the shard already executed:
  //   - a saturated previous batch left arrivals scheduled beyond the step
  //     budget -> base at its last scheduled step;
  //   - a fully drained previous batch (or prior interactive traffic with
  //     no arrival schedule at all) -> base at the shard's current clock;
  //   - a shard that received zero ops in every batch so far keeps base 0.
  // Schedule seeds are splitmix-derived per {shard, batch}: thread-count
  // independent, decorrelated from the scheduler stream (seed index 0),
  // and fresh per batch — a second run() must not replay the first batch's
  // interarrival pattern shifted past the old traffic.
  if (open) {
    const uint32_t batch_index =
        static_cast<uint32_t>(1 + open_batches_++);
    for (uint32_t s = 0; s < opts_.num_shards; ++s) {
      const std::vector<uint64_t> arrivals = sim::generate_arrivals(
          opts_.arrival, open_items[s].size(),
          sim::arrival_seed(harness::cell_seed(opts_.seed, s, batch_index)));
      const uint64_t base =
          std::max(shards_[s]->sim->now(),
                   shards_[s]->workload->last_scheduled_step());
      for (size_t i = 0; i < open_items[s].size(); ++i) {
        shards_[s]->workload->push_arrival(base + arrivals[i],
                                           std::move(open_items[s][i]));
      }
    }
  }

  uint32_t threads =
      opts_.threads == 0 ? std::thread::hardware_concurrency() : opts_.threads;
  if (threads == 0) threads = 1;

  const auto start = std::chrono::steady_clock::now();
  std::vector<ShardResult> shard_results = harness::parallel_map(
      shards_.size(), threads, [&](size_t i) -> ShardResult {
        const auto shard_start = std::chrono::steady_clock::now();
        shards_[i]->sim->resume();
        shards_[i]->sim->run();
        ShardResult r = summarize_shard(*shards_[i]);
        r.wall_seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - shard_start)
                             .count();
        return r;
      });

  StoreResult result = assemble(std::move(shard_results));
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  result.threads_used = threads;
  const uint64_t completed = result.completed_reads + result.completed_writes;
  result.ops_per_sec = result.wall_seconds > 0
                           ? static_cast<double>(completed) / result.wall_seconds
                           : 0.0;
  return result;
}

StoreResult Store::summarize() {
  std::vector<ShardResult> shard_results;
  shard_results.reserve(shards_.size());
  for (const auto& shard : shards_) {
    shard_results.push_back(summarize_shard(*shard));
  }
  return assemble(std::move(shard_results));
}

uint64_t StoreResult::fingerprint() const {
  uint64_t h = harness::kFingerprintSeed;
  for (const auto& s : shards) h = mix_into(h, s.fingerprint);
  return h;
}

void write_store_deterministic_json(std::ostream& os,
                                    const StoreResult& r) {
  os << "{\n";
  os << "    \"fingerprint\": \"" << std::hex << r.fingerprint() << std::dec
     << "\",\n";
  os << "    \"completed_reads\": " << r.completed_reads
     << ", \"completed_writes\": " << r.completed_writes
     << ", \"total_steps\": " << r.total_steps << ",\n";
  os << "    \"peak_total_bits_sum\": " << r.peak_total_bits_sum
     << ", \"peak_object_bits_sum\": " << r.peak_object_bits_sum
     << ", \"final_object_bits_sum\": " << r.final_object_bits_sum
     << ", \"max_shard_object_bits\": " << r.max_shard_object_bits << ",\n";
  os << "    \"keys_checked\": " << r.keys_checked
     << ", \"consistency_failures\": " << r.consistency_failures
     << ", \"all_live\": " << (r.all_live ? "true" : "false")
     << ", \"all_quiesced\": " << (r.all_quiesced ? "true" : "false")
     << ",\n";
  os << "    \"max_queue_depth\": " << r.max_queue_depth
     << ", \"undispatched\": " << r.undispatched
     << ", \"saturated\": " << (r.saturated ? "true" : "false") << ",\n";
  os << "    \"object_crash_events\": " << r.object_crash_events
     << ", \"object_restarts\": " << r.object_restarts
     << ", \"repair_bits\": " << r.repair_bits
     << ", \"repair_pushes\": " << r.repair_pushes
     << ", \"open_repair_windows\": " << r.open_repair_windows
     << ", \"degraded_steps\": " << r.degraded_steps
     << ", \"repair_window_steps\": " << r.repair_window_steps << ",\n";
  os << "    \"partition_events\": " << r.partition_events
     << ", \"heal_events\": " << r.heal_events
     << ", \"rmws_dropped\": " << r.rmws_dropped
     << ", \"rmws_delayed\": " << r.rmws_delayed << ",\n";
  os << "    \"degraded_sojourn_steps\": ";
  harness::write_latency_json(os, r.degraded_sojourn);
  os << ",\n";
  // Key suffixes carry the histogram unit ("steps" for the simulator,
  // "ns" for the threaded backend) so a wall-clock table can never be
  // mistaken for a logical-step one. Sim output keeps its historical keys
  // byte-for-byte.
  os << "    \"read_latency_" << metrics::unit_suffix(r.read_latency.unit())
     << "\": ";
  harness::write_latency_json(os, r.read_latency);
  os << ",\n    \"write_latency_" << metrics::unit_suffix(r.write_latency.unit())
     << "\": ";
  harness::write_latency_json(os, r.write_latency);
  os << ",\n    \"service_latency_"
     << metrics::unit_suffix(r.service_latency.unit()) << "\": ";
  harness::write_latency_json(os, r.service_latency);
  os << ",\n    \"sojourn_latency_"
     << metrics::unit_suffix(r.sojourn_latency.unit()) << "\": ";
  harness::write_latency_json(os, r.sojourn_latency);
  os << ",\n    \"shards\": [\n";
  for (size_t i = 0; i < r.shards.size(); ++i) {
    const ShardResult& s = r.shards[i];
    os << "      {\"shard\": " << s.shard
       << ", \"keys_mounted\": " << s.keys_mounted
       << ", \"keys_touched\": " << s.keys_touched
       << ", \"keys_checked\": " << s.keys_checked
       << ", \"consistency_failures\": " << s.consistency_failures
       << ", \"steps\": " << s.report.steps
       << ", \"invoked_ops\": " << s.report.invoked_ops
       << ", \"completed_ops\": " << s.report.completed_ops
       << ", \"rmws_delivered\": " << s.report.rmws_delivered
       << ", \"max_total_bits\": " << s.max_total_bits
       << ", \"max_object_bits\": " << s.max_object_bits
       << ", \"max_channel_bits\": " << s.max_channel_bits
       << ", \"final_object_bits\": " << s.final_object_bits
       << ", \"max_queue_depth\": " << s.max_queue_depth
       << ", \"undispatched\": " << s.undispatched
       << ", \"saturated\": " << (s.saturated ? "true" : "false")
       << ", \"object_crash_events\": " << s.report.object_crash_events
       << ", \"object_restarts\": " << s.report.object_restarts
       << ", \"repair_bits\": " << s.report.repair_bits
       << ", \"repair_pushes\": " << s.report.repair_pushes
       << ", \"open_repair_windows\": " << s.report.open_repair_windows
       << ", \"degraded_steps\": " << s.report.degraded_steps
       << ", \"repair_window_steps\": " << s.report.repair_window_steps
       << ", \"partition_events\": " << s.report.partition_events
       << ", \"heal_events\": " << s.report.heal_events
       << ", \"rmws_dropped\": " << s.report.rmws_dropped
       << ", \"rmws_delayed\": " << s.report.rmws_delayed
       << ", \"live\": " << (s.live ? "true" : "false")
       << ", \"quiesced\": " << (s.report.quiesced ? "true" : "false")
       << ", \"stop_reason\": \""
       << harness::json_escape(s.report.stop_reason) << "\""
       << ", \"fingerprint\": \"" << std::hex << s.fingerprint << std::dec
       << "\", \"read_latency_" << metrics::unit_suffix(s.read_latency.unit())
       << "\": ";
    harness::write_latency_json(os, s.read_latency);
    os << ", \"write_latency_" << metrics::unit_suffix(s.write_latency.unit())
       << "\": ";
    harness::write_latency_json(os, s.write_latency);
    os << ", \"sojourn_latency_"
       << metrics::unit_suffix(s.report.sojourn_latency.unit()) << "\": ";
    harness::write_latency_json(os, s.report.sojourn_latency);
    os << "}" << (i + 1 < r.shards.size() ? "," : "") << "\n";
  }
  os << "    ]\n";
  os << "  }";
}

void write_store_json(std::ostream& os, const StoreResult& r) {
  const auto saved_precision = os.precision(17);
  const StoreOptions& o = r.options;
  const auto& w = o.workload;
  os << "{\n";
  os << "  \"options\": {\"algorithm\": \"" << harness::json_escape(o.algorithm)
     << "\", \"num_shards\": " << o.num_shards
     << ", \"num_keys\": " << w.num_keys << ", \"clients\": " << w.clients
     << ", \"ops_per_client\": " << w.ops_per_client << ", \"mix\": \""
     << ycsb::to_string(w.mix) << "\", \"distribution\": \""
     << ycsb::to_string(w.distribution) << "\", \"zipf_theta\": "
     << w.zipf_theta << ", \"read_percent\": "
     << (w.mix == ycsb::Mix::kCustom ? w.read_percent
                                     : ycsb::read_percent_for(w.mix))
     << ", \"record_bits\": " << o.register_config.data_bits
     << ", \"n\": " << o.register_config.n << ", \"k\": "
     << o.register_config.k << ", \"f\": " << o.register_config.f
     << ", \"arrival\": \"" << sim::to_string(o.arrival.process)
     << "\", \"rate\": " << o.arrival.rate
     << ", \"burst_on\": " << o.arrival.burst_on
     << ", \"burst_off\": " << o.arrival.burst_off
     << ", \"scheduler\": \"" << harness::to_string(o.scheduler)
     << "\", \"object_crashes_per_shard\": " << o.object_crashes_per_shard
     << ", \"restart_after\": " << o.restart_after
     << ", \"restart_mode\": \"" << sim::to_string(o.restart_mode)
     << "\", \"partitions_per_shard\": " << o.partitions_per_shard
     << ", \"heal_after\": " << o.heal_after
     << ", \"repair_every\": " << o.repair_every
     << ", \"read_repair\": " << (o.read_repair ? "true" : "false")
     << ", \"seed\": " << o.seed << ", \"check_consistency\": "
     << (o.check_consistency ? "true" : "false") << "},\n";
  os << "  \"deterministic\": ";
  write_store_deterministic_json(os, r);
  os << ",\n";
  os << "  \"timing\": {\"wall_seconds\": " << r.wall_seconds
     << ", \"ops_per_sec\": " << r.ops_per_sec
     << ", \"threads_used\": " << r.threads_used << "}\n";
  os << "}\n";
  os.precision(saved_precision);
}

namespace {

std::vector<obs::TraceProcess> trace_processes(const Store& store) {
  SBRS_CHECK_MSG(store.options().trace,
                 "store trace export needs StoreOptions::trace");
  std::vector<obs::TraceProcess> procs;
  procs.reserve(store.options().num_shards);
  for (uint32_t s = 0; s < store.options().num_shards; ++s) {
    const obs::TraceRecorder* rec = store.shard_trace(s);
    SBRS_CHECK(rec != nullptr);
    procs.push_back({rec, s, "shard" + std::to_string(s)});
  }
  return procs;
}

}  // namespace

void write_store_trace_json(std::ostream& os, const Store& store) {
  obs::write_trace_json(os, trace_processes(store));
}

void write_store_timeseries_csv(std::ostream& os, const Store& store) {
  obs::write_timeseries_csv(os, trace_processes(store));
}

}  // namespace sbrs::store
