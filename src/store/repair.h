// Store-level active repair: the per-shard planner behind read-repair and
// the anti-entropy pump (runtime::SimConfig::repair_planner).
//
// A shard's base object multiplexes one register sub-state per key
// (store/multi_object.h), so one repair push re-converges *every* key the
// replica is stale on: the planner walks the union of mounted keys across
// the target and its live peers, plans one register repair per key
// (registers/repair.h), and bundles them into a single RMW whose delivery
// closes the shard object's repair window. Conservative gate: if any key
// is not yet decodable from the live peers, the whole push is withheld
// (nullopt) — closing the window early would hide a still-stale key.
#pragma once

#include "registers/register_algorithm.h"
#include "runtime/types.h"

namespace sbrs::store {

/// Planner for a shard simulator whose objects are MultiKeyObjectState
/// wrappers around `alg`'s per-key states. The returned closure captures
/// only the codec and config, so it outlives `alg`.
runtime::RepairPlanner make_store_repair_planner(
    const registers::RegisterAlgorithm& alg);

}  // namespace sbrs::store
