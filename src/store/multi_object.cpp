#include "store/multi_object.h"

#include "common/check.h"

namespace sbrs::store {

MultiKeyObjectState::MultiKeyObjectState(
    ObjectId self, runtime::ObjectFactory inner_factory,
    const std::vector<uint32_t>& premount)
    : self_(self), inner_factory_(std::move(inner_factory)) {
  SBRS_CHECK(inner_factory_ != nullptr);
  for (uint32_t key : premount) ensure(key);
}

runtime::ObjectStateBase& MultiKeyObjectState::ensure(uint32_t key) {
  auto it = subs_.find(key);
  if (it == subs_.end()) {
    Sub sub;
    sub.state = inner_factory_(self_);
    SBRS_CHECK(sub.state != nullptr);
    sub.bits = sub.state->stored_bits();
    total_bits_ += sub.bits;
    it = subs_.emplace(key, std::move(sub)).first;
  }
  return *it->second.state;
}

runtime::ResponsePtr MultiKeyObjectState::apply(uint32_t key,
                                            const runtime::RmwFn& fn) {
  runtime::ObjectStateBase& state = ensure(key);
  runtime::ResponsePtr response = fn(state);
  Sub& sub = subs_.at(key);
  const uint64_t now_bits = state.stored_bits();
  total_bits_ += now_bits - sub.bits;  // wraps correctly for shrinks
  sub.bits = now_bits;
  return response;
}

void MultiKeyObjectState::on_restart(runtime::RestartMode mode) {
  total_bits_ = 0;
  for (auto& [key, sub] : subs_) {
    sub.state->on_restart(mode);
    sub.bits = sub.state->stored_bits();
    total_bits_ += sub.bits;
  }
}

metrics::StorageFootprint MultiKeyObjectState::footprint() const {
  metrics::StorageFootprint fp;
  for (const auto& [key, sub] : subs_) fp.merge(sub.state->footprint());
  return fp;
}

const runtime::ObjectStateBase* MultiKeyObjectState::sub(uint32_t key) const {
  auto it = subs_.find(key);
  return it == subs_.end() ? nullptr : it->second.state.get();
}

std::vector<uint32_t> MultiKeyObjectState::mounted_key_ids() const {
  std::vector<uint32_t> out;
  out.reserve(subs_.size());
  for (const auto& [key, sub] : subs_) out.push_back(key);
  return out;
}

}  // namespace sbrs::store
