#include "store/queue_workload.h"

#include "common/check.h"

namespace sbrs::store {

QueueWorkload::QueueWorkload(uint32_t num_sessions,
                             std::shared_ptr<OpKeyTable> op_keys)
    : queues_(num_sessions), issued_(num_sessions),
      op_keys_(std::move(op_keys)) {
  SBRS_CHECK(num_sessions >= 1 && op_keys_ != nullptr);
}

void QueueWorkload::push(ClientId session, Item item) {
  SBRS_CHECK_MSG(session.value < queues_.size(),
                 "push for unknown session " << session);
  queues_[session.value].push_back(std::move(item));
}

void QueueWorkload::push_arrival(uint64_t step, Item item) {
  queue_.push(step, std::move(item));
}

bool QueueWorkload::has_more(ClientId c) const {
  if (c.value >= queues_.size()) return false;
  return !queues_[c.value].empty() || queue_.ready();
}

sim::Invocation QueueWorkload::next(ClientId c, OpId id) {
  SBRS_CHECK_MSG(has_more(c), "next() on drained session " << c);
  Item item;
  std::optional<uint64_t> arrival;
  if (!queues_[c.value].empty()) {
    // Session-pinned items (batch closed-loop / interactive) first: the
    // interactive driver relies on its session draining its own queue.
    item = std::move(queues_[c.value].front());
    queues_[c.value].pop_front();
  } else {
    auto [step, popped] = queue_.pop();
    item = std::move(popped);
    arrival = step;
  }

  op_keys_->assign(id, item.key);
  issued_[c.value].push_back(id);

  sim::Invocation inv;
  inv.op = id;
  inv.client = c;
  inv.kind = item.kind;
  inv.arrival_time = arrival;
  if (item.kind == sim::OpKind::kWrite) inv.value = std::move(item.value);
  return inv;
}

void QueueWorkload::advance_to(uint64_t now) { queue_.advance_to(now); }

std::optional<uint64_t> QueueWorkload::next_arrival() const {
  return queue_.next_arrival();
}

const std::vector<OpId>& QueueWorkload::issued(ClientId session) const {
  SBRS_CHECK(session.value < issued_.size());
  return issued_[session.value];
}

size_t QueueWorkload::queued() const {
  size_t n = 0;
  for (const auto& q : queues_) n += q.size();
  return n;
}

}  // namespace sbrs::store
