#!/usr/bin/env sh
# Run the register-layer sweep benchmark and record the results as
# BENCH_registers.json at the repo root (building first if needed), so the
# register/simulator perf trajectory is tracked the same way the codec's is
# (BENCH_codec.json).
#
# The fixed grid: {abd, safe, coded, coded-atomic, adaptive} x
# {c = 1,2,4,8,16,32} concurrent writers, one 4096-bit write each, burst
# scheduler (maximum write concurrency — the paper's storage-vs-concurrency
# shape), 3 seeds per cell. Every cell records its max storage summaries and
# steps/sec. The grid is run twice — single-threaded and with
# $SWEEP_THREADS (default 8) workers — and both results land in the JSON
# together with the measured scaling efficiency; per-cell fingerprints of
# the two runs are identical by construction (deterministic seeding).
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir="$repo_root/build"
threads="${SWEEP_THREADS:-8}"
out="$repo_root/BENCH_registers.json"

if [ ! -x "$build_dir/sbrs_cli" ]; then
  cmake -B "$build_dir" -S "$repo_root"
  cmake --build "$build_dir" -j --target sbrs_cli
fi

grid="--sweep --algs=abd,safe,coded,coded-atomic,adaptive \
  --cs=1,2,4,8,16,32 --sched=burst --f=4 --k=4 --data-bits=4096 \
  --writes=1 --readers=0 --seeds=3 --seed=1"

tmp_single=$(mktemp)
tmp_multi=$(mktemp)
trap 'rm -f "$tmp_single" "$tmp_multi"' EXIT

# shellcheck disable=SC2086  # word splitting of $grid is intentional
"$build_dir/sbrs_cli" $grid --threads=1 --json="$tmp_single" >/dev/null
# shellcheck disable=SC2086
"$build_dir/sbrs_cli" $grid --threads="$threads" --json="$tmp_multi" \
  >/dev/null

# Diff the deterministic sections of the two runs: everything except the
# machine-dependent lines (wall clock, steps/sec, thread counts) must be
# byte-identical — per-cell fingerprints included — or the "deterministic
# seeding" claim this artifact rests on is broken and we refuse to record.
strip_timing() {
  grep -v -e '"wall_seconds"' -e '"steps_per_sec"' -e '"options"' "$1"
}
tmp_det_single=$(mktemp)
tmp_det_multi=$(mktemp)
trap 'rm -f "$tmp_single" "$tmp_multi" "$tmp_det_single" "$tmp_det_multi"' EXIT
strip_timing "$tmp_single" > "$tmp_det_single"
strip_timing "$tmp_multi" > "$tmp_det_multi"
if ! diff -u "$tmp_det_single" "$tmp_det_multi" >&2; then
  echo "FATAL: deterministic sections differ between --threads=1 and" \
       "--threads=$threads runs" >&2
  exit 1
fi
echo "deterministic sections identical across thread counts"

wall_single=$(awk -F': ' '/^  "wall_seconds"/ {gsub(/,/, "", $2); print $2; exit}' "$tmp_single")
wall_multi=$(awk -F': ' '/^  "wall_seconds"/ {gsub(/,/, "", $2); print $2; exit}' "$tmp_multi")
efficiency=$(awk "BEGIN {printf \"%.4f\", $wall_single / ($threads * $wall_multi)}")
speedup=$(awk "BEGIN {printf \"%.4f\", $wall_single / $wall_multi}")
hw_threads=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)

{
  printf '{\n'
  printf '  "context": {\n'
  printf '    "date": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%S+00:00)"
  printf '    "host_name": "%s",\n' "$(hostname)"
  printf '    "hardware_threads": %s,\n' "$hw_threads"
  printf '    "grid": "abd,safe,coded,coded-atomic,adaptive x c=1,2,4,8,16,32; burst; f=4 k=4 D=4096; 3 seeds/cell"\n'
  printf '  },\n'
  printf '  "scaling": {\n'
  printf '    "sweep_threads": %s,\n' "$threads"
  printf '    "wall_seconds_threads_1": %s,\n' "$wall_single"
  printf '    "wall_seconds_threads_n": %s,\n' "$wall_multi"
  printf '    "speedup": %s,\n' "$speedup"
  printf '    "efficiency": %s\n' "$efficiency"
  printf '  },\n'
  printf '  "single_thread": '
  cat "$tmp_single"
  printf '  ,\n  "threads_n": '
  cat "$tmp_multi"
  printf '}\n'
} > "$out"

echo "wrote $out (1 thread: ${wall_single}s, $threads threads: ${wall_multi}s, efficiency $efficiency on $hw_threads hardware threads)"
