// Runtime-backend benchmark: every register variant mounted on the
// threaded runtime (real threads, real channels, steady_clock latencies —
// runtime/backend.h) instead of the logical-step simulator.
//
// The results table reports real throughput (ops/s) and nanosecond latency
// tails per variant, and cross-checks each threaded run against a
// simulator run of the same closed-loop shape: both histories must pass
// the variant's promised consistency level and complete the same number of
// operations. run_runtime_bench.sh records the table as
// BENCH_runtime.json at the repo root.
#include "bench_util.h"

#include "common/rng.h"
#include "harness/algorithms.h"
#include "metrics/latency_histogram.h"

namespace sbrs::bench {
namespace {

// The universal smoke shape: n = 2f + k = 4 satisfies every variant's
// n == 2f + k requirement (make_algorithm re-derives n = 2f + 1 for the
// ABD variants itself).
constexpr uint32_t kF = 1;
constexpr uint32_t kK = 2;
constexpr uint64_t kDataBits = 1024;
constexpr uint32_t kWriters = 3;
constexpr uint32_t kWritesPerClient = 32;
constexpr uint32_t kReaders = 3;
constexpr uint32_t kReadsPerClient = 32;

harness::RunOptions workload(harness::Backend backend, uint64_t seed) {
  harness::RunOptions opts;
  opts.backend = backend;
  opts.writers = kWriters;
  opts.writes_per_client = kWritesPerClient;
  opts.readers = kReaders;
  opts.reads_per_client = kReadsPerClient;
  opts.seed = seed;
  return opts;
}

/// Did `out` meet the consistency level this variant promises?
bool meets_guarantee(const std::string& name,
                     const harness::RunOutcome& out) {
  if (!out.values_legal.ok) return false;
  switch (harness::expected_consistency(name)) {
    case harness::ConsistencyGuarantee::kStronglySafe:
      return out.strongly_safe.ok;
    case harness::ConsistencyGuarantee::kWeakRegular:
      return out.weak_regular.ok;
    case harness::ConsistencyGuarantee::kStrongRegular:
      return out.strong_regular.ok;
  }
  return false;
}

void print_runtime_table() {
  std::cout << "\n=== Runtime backend: real threads/channels/clocks (f=" << kF
            << ", k=" << kK << ", D=" << kDataBits << " bits; " << kWriters
            << "w x " << kWritesPerClient << " + " << kReaders << "r x "
            << kReadsPerClient << ", closed loop) ===\n";

  harness::Table table({"algorithm", "ops", "ops/s", "op p50/p99 (ns)",
                        "read p99 (ns)", "write p99 (ns)", "checks",
                        "sim cross-check"});
  for (const auto& name : harness::algorithm_names()) {
    auto alg = harness::make_algorithm(name, cfg_fk(kF, kK, kDataBits));

    auto tout = harness::run_register_experiment(
        *alg, workload(harness::Backend::kThreads, 1));

    // Simulator cross-check: the same closed-loop shape on the logical
    // backend, seeded from the runtime stream so the schedule is
    // decorrelated from every other artifact's.
    auto sout = harness::run_register_experiment(
        *alg,
        workload(harness::Backend::kSim,
                 derive_stream_seed(1, seed_stream::kRuntime)));
    const bool cross_ok = meets_guarantee(name, sout) && sout.live &&
                          sout.report.completed_ops ==
                              tout.report.completed_ops;

    const uint64_t ops_per_sec =
        tout.wall_seconds > 0.0
            ? static_cast<uint64_t>(tout.report.completed_ops /
                                    tout.wall_seconds)
            : 0;
    table.add_row(
        name, tout.report.completed_ops, ops_per_sec,
        std::to_string(tout.report.op_latency.p50()) + " / " +
            std::to_string(tout.report.op_latency.p99()),
        tout.read_latency.p99(), tout.write_latency.p99(),
        meets_guarantee(name, tout) && tout.live ? "ok" : "FAIL",
        cross_ok ? "ok" : "FAIL");
  }
  table.print();
  std::cout << "\nLatencies are wall-clock nanoseconds (the simulator's are "
               "logical steps; the two never merge — the histogram carries "
               "its unit). Storage maxima on this backend are per-object "
               "envelopes, not instant-consistent global maxima.\n\n";
}

void BM_ThreadedOps(benchmark::State& state) {
  const auto& name =
      harness::algorithm_names()[static_cast<size_t>(state.range(0))];
  auto alg = harness::make_algorithm(name, cfg_fk(kF, kK, kDataBits));
  harness::RunOptions opts = workload(harness::Backend::kThreads, 1);
  opts.check_consistency = false;  // time the mesh, not the checkers
  uint64_t ops = 0;
  for (auto _ : state) {
    auto out = harness::run_register_experiment(*alg, opts);
    ops += out.report.completed_ops;
    benchmark::DoNotOptimize(out.report.steps);
  }
  state.counters["ops/s"] = benchmark::Counter(
      static_cast<double>(ops), benchmark::Counter::kIsRate);
  state.SetLabel(name);
}
BENCHMARK(BM_ThreadedOps)->DenseRange(0, 6);

void BM_SimOps(benchmark::State& state) {
  // The same shape on the simulator, for a like-for-like mesh-overhead
  // comparison in the recorded JSON.
  const auto& name =
      harness::algorithm_names()[static_cast<size_t>(state.range(0))];
  auto alg = harness::make_algorithm(name, cfg_fk(kF, kK, kDataBits));
  harness::RunOptions opts = workload(harness::Backend::kSim, 1);
  opts.check_consistency = false;
  opts.sample_every = 1024;
  uint64_t ops = 0;
  for (auto _ : state) {
    auto out = harness::run_register_experiment(*alg, opts);
    ops += out.report.completed_ops;
    benchmark::DoNotOptimize(out.report.steps);
  }
  state.counters["ops/s"] = benchmark::Counter(
      static_cast<double>(ops), benchmark::Counter::kIsRate);
  state.SetLabel(name);
}
BENCHMARK(BM_SimOps)->DenseRange(0, 6);

}  // namespace
}  // namespace sbrs::bench

int main(int argc, char** argv) {
  sbrs::bench::print_runtime_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
