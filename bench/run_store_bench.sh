#!/usr/bin/env sh
# Run the store-engine grid and record BENCH_store.json at the repo root
# (building first if needed), tracking the multi-object store's throughput
# and tail latency the same way BENCH_codec.json / BENCH_registers.json
# track the codec and register layers.
#
# The fixed grid: {adaptive, abd, coded} x {uniform, zipfian, latest}, each
# a 256-key / 16-shard / 8-client / 32-ops-per-client YCSB-B (95% read)
# run with f=2 k=4 D=1024 and per-key consistency checking ON. Every cell's
# full store JSON (options + deterministic block + timing) is embedded
# under results.<algorithm>.<distribution>; the deterministic blocks are
# thread-count-independent, so diffs of this file show real drift only in
# the "timing" sections.
#
# A second grid sweeps OPEN-LOOP Poisson load over zipfian keys for
# {adaptive, abd, coded}: offered rate 0.02 -> 0.4 ops/step/shard, around
# the measured per-shard capacity of ~0.1 at 8 sessions. Each cell lands
# under open_loop.<algorithm>."rate_<r>" with its sojourn-vs-service
# histograms, queue-depth maximum and saturation verdict — the top cells
# (>= 2x saturation) are where p99 sojourn detaches from p99 service.
#
# A third grid records CRASH RECOVERY: write-heavy (YCSB-A) open-loop load
# with up to f=2 object crashes per shard, each restarted from disk after
# {100, 800} steps. Cells land under recovery.<algorithm>."restart_<d>"
# with object_crash_events / object_restarts / repair_bits /
# degraded_steps and the degraded-window sojourn histogram next to the
# overall one — the instrument for "stored bits dip at crash, spike during
# repair" runs. Deterministic blocks stay thread-count independent.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir="$repo_root/build"
threads="${STORE_THREADS:-8}"
out="$repo_root/BENCH_store.json"

if [ ! -x "$build_dir/sbrs_cli" ]; then
  cmake -B "$build_dir" -S "$repo_root"
  cmake --build "$build_dir" -j --target sbrs_cli
fi

grid="--store --keys=256 --shards=16 --clients=8 --ops=32 --mix=B \
  --f=2 --k=4 --data-bits=1024 --seed=1"

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT

algs="adaptive abd coded"
dists="uniform zipfian latest"
rates="0.02 0.05 0.1 0.2 0.4"
restarts="100 800"
open_grid="--store --keys=256 --shards=16 --clients=8 --ops=64 --mix=B \
  --dist=zipfian --f=2 --k=4 --data-bits=1024 --seed=1 \
  --open-loop --arrival=poisson"
recovery_grid="--store --keys=256 --shards=16 --clients=8 --ops=64 --mix=A \
  --dist=zipfian --f=2 --k=4 --data-bits=1024 --seed=1 \
  --open-loop --arrival=poisson --rate=0.08 --crashes=2"

for alg in $algs; do
  for dist in $dists; do
    # shellcheck disable=SC2086  # word splitting of $grid is intentional
    "$build_dir/sbrs_cli" $grid --alg="$alg" --dist="$dist" \
      --threads="$threads" --json="$tmpdir/$alg.$dist.json" >/dev/null
  done
  for rate in $rates; do
    # shellcheck disable=SC2086
    "$build_dir/sbrs_cli" $open_grid --alg="$alg" --rate="$rate" \
      --threads="$threads" --json="$tmpdir/$alg.rate_$rate.json" >/dev/null
  done
  for delay in $restarts; do
    # shellcheck disable=SC2086
    "$build_dir/sbrs_cli" $recovery_grid --alg="$alg" --restart="$delay" \
      --threads="$threads" --json="$tmpdir/$alg.restart_$delay.json" \
      >/dev/null
  done
done

hw_threads=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)

{
  printf '{\n'
  printf '  "context": {\n'
  printf '    "date": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%S+00:00)"
  printf '    "host_name": "%s",\n' "$(hostname)"
  printf '    "hardware_threads": %s,\n' "$hw_threads"
  printf '    "store_threads": %s,\n' "$threads"
  printf '    "grid": "adaptive,abd,coded x uniform,zipfian,latest; YCSB-B; 256 keys / 16 shards / 8 clients x 32 ops; f=2 k=4 D=1024",\n'
  printf '    "open_loop_grid": "adaptive,abd,coded x poisson rate 0.02-0.4 ops/step/shard; zipfian YCSB-B; 256 keys / 16 shards / 8 clients x 64 ops",\n'
  printf '    "recovery_grid": "adaptive,abd,coded x restart_after 100,800 steps; up to 2 crashes/shard restarted from disk; poisson rate 0.08; zipfian YCSB-A; 256 keys / 16 shards / 8 clients x 64 ops"\n'
  printf '  },\n'
  printf '  "results": {\n'
  first_alg=1
  for alg in $algs; do
    [ $first_alg -eq 1 ] || printf '  ,\n'
    first_alg=0
    printf '  "%s": {\n' "$alg"
    first_dist=1
    for dist in $dists; do
      [ $first_dist -eq 1 ] || printf '  ,\n'
      first_dist=0
      printf '  "%s": ' "$dist"
      cat "$tmpdir/$alg.$dist.json"
    done
    printf '  }\n'
  done
  printf '  },\n'
  printf '  "open_loop": {\n'
  first_alg=1
  for alg in $algs; do
    [ $first_alg -eq 1 ] || printf '  ,\n'
    first_alg=0
    printf '  "%s": {\n' "$alg"
    first_rate=1
    for rate in $rates; do
      [ $first_rate -eq 1 ] || printf '  ,\n'
      first_rate=0
      printf '  "rate_%s": ' "$rate"
      cat "$tmpdir/$alg.rate_$rate.json"
    done
    printf '  }\n'
  done
  printf '  },\n'
  printf '  "recovery": {\n'
  first_alg=1
  for alg in $algs; do
    [ $first_alg -eq 1 ] || printf '  ,\n'
    first_alg=0
    printf '  "%s": {\n' "$alg"
    first_delay=1
    for delay in $restarts; do
      [ $first_delay -eq 1 ] || printf '  ,\n'
      first_delay=0
      printf '  "restart_%s": ' "$delay"
      cat "$tmpdir/$alg.restart_$delay.json"
    done
    printf '  }\n'
  done
  printf '  }\n'
  printf '}\n'
} > "$out"

echo "wrote $out"
