// Store engine benchmark: throughput and tail latency of the sharded
// multi-object store under YCSB-style load, per {algorithm, distribution}.
//
// Each benchmark iteration builds a fresh Store (so per-shard simulators
// start from v0) and drains one full workload shard-parallel. Counters
// record the deterministic outcome (logical-step latency percentiles, peak
// storage) next to the wall-clock throughput google-benchmark measures —
// the pairing the committed BENCH_store.json tracks over time.
#include <benchmark/benchmark.h>

#include "store/store.h"

namespace sbrs::bench {
namespace {

constexpr uint32_t kShards = 16;
constexpr uint32_t kKeys = 256;
constexpr uint32_t kClients = 8;
constexpr uint32_t kOpsPerClient = 32;

store::StoreOptions store_options(const std::string& alg,
                                  store::ycsb::Distribution dist) {
  store::StoreOptions opts;
  opts.algorithm = alg;
  opts.register_config.f = 2;
  opts.register_config.k = 4;
  opts.register_config.n = 8;
  opts.register_config.data_bits = 1024;
  opts.num_shards = kShards;
  opts.workload.num_keys = kKeys;
  opts.workload.clients = kClients;
  opts.workload.ops_per_client = kOpsPerClient;
  opts.workload.mix = store::ycsb::Mix::kB;
  opts.workload.distribution = dist;
  opts.seed = 1;
  opts.threads = 0;  // all hardware threads
  // Checking dominates small-run wall time; the bench measures the engine.
  opts.check_consistency = false;
  return opts;
}

const char* dist_name(int index) {
  switch (index) {
    case 0: return "uniform";
    case 1: return "zipfian";
    default: return "latest";
  }
}

store::ycsb::Distribution dist_of(int index) {
  switch (index) {
    case 0: return store::ycsb::Distribution::kUniform;
    case 1: return store::ycsb::Distribution::kZipfian;
    default: return store::ycsb::Distribution::kLatest;
  }
}

void run_store_bench(benchmark::State& state, const std::string& alg) {
  const auto dist = dist_of(static_cast<int>(state.range(0)));
  uint64_t ops = 0;
  for (auto _ : state) {
    store::Store engine(store_options(alg, dist));
    store::StoreResult result = engine.run();
    benchmark::DoNotOptimize(result.total_steps);
    ops += result.completed_reads + result.completed_writes;
    state.counters["read_p50_steps"] =
        static_cast<double>(result.read_latency.p50());
    state.counters["read_p99_steps"] =
        static_cast<double>(result.read_latency.p99());
    state.counters["write_p99_steps"] =
        static_cast<double>(result.write_latency.p99());
    state.counters["peak_bits_sum"] =
        static_cast<double>(result.peak_total_bits_sum);
    state.counters["hot_shard_bits"] =
        static_cast<double>(result.max_shard_object_bits);
  }
  state.SetLabel(std::string(alg) + "/" + dist_name(static_cast<int>(state.range(0))));
  state.counters["ops_per_sec"] = benchmark::Counter(
      static_cast<double>(ops), benchmark::Counter::kIsRate);
}

void BM_StoreAdaptive(benchmark::State& state) {
  run_store_bench(state, "adaptive");
}
void BM_StoreAbd(benchmark::State& state) { run_store_bench(state, "abd"); }
void BM_StoreCoded(benchmark::State& state) {
  run_store_bench(state, "coded");
}

// Arg: 0 = uniform, 1 = zipfian, 2 = latest.
BENCHMARK(BM_StoreAdaptive)->DenseRange(0, 2)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StoreAbd)->DenseRange(0, 2)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StoreCoded)->DenseRange(0, 2)->Unit(benchmark::kMillisecond);

// Open-loop load: Poisson arrivals onto each shard's logical clock at
// `rate = arg / 1000` ops per step per shard, zipfian keys. Counters split
// latency into service and sojourn time and record the queueing outcome —
// past the per-shard capacity (~0.1 ops/step at 8 sessions) the sojourn
// tail detaches from the service tail and `saturated` flips to 1.
void run_store_open_loop_bench(benchmark::State& state,
                               const std::string& alg) {
  store::StoreOptions opts =
      store_options(alg, store::ycsb::Distribution::kZipfian);
  opts.arrival.process = sim::ArrivalProcess::kPoisson;
  opts.arrival.rate = static_cast<double>(state.range(0)) / 1000.0;
  uint64_t ops = 0;
  for (auto _ : state) {
    store::Store engine(opts);
    store::StoreResult result = engine.run();
    benchmark::DoNotOptimize(result.total_steps);
    ops += result.completed_reads + result.completed_writes;
    state.counters["service_p99_steps"] =
        static_cast<double>(result.service_latency.p99());
    state.counters["sojourn_p99_steps"] =
        static_cast<double>(result.sojourn_latency.p99());
    state.counters["max_queue_depth"] =
        static_cast<double>(result.max_queue_depth);
    state.counters["saturated"] = result.saturated ? 1 : 0;
  }
  state.SetLabel(alg + "/zipfian/rate=" +
                 std::to_string(opts.arrival.rate));
  state.counters["ops_per_sec"] = benchmark::Counter(
      static_cast<double>(ops), benchmark::Counter::kIsRate);
}

void BM_StoreOpenLoopAdaptive(benchmark::State& state) {
  run_store_open_loop_bench(state, "adaptive");
}
void BM_StoreOpenLoopAbd(benchmark::State& state) {
  run_store_open_loop_bench(state, "abd");
}
void BM_StoreOpenLoopCoded(benchmark::State& state) {
  run_store_open_loop_bench(state, "coded");
}

// Arg: offered rate in milli-ops per step per shard — below, near, and
// well past the measured saturation point.
BENCHMARK(BM_StoreOpenLoopAdaptive)
    ->Arg(20)->Arg(80)->Arg(320)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StoreOpenLoopAbd)
    ->Arg(20)->Arg(80)->Arg(320)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StoreOpenLoopCoded)
    ->Arg(20)->Arg(80)->Arg(320)->Unit(benchmark::kMillisecond);

// Crash recovery under open-loop load: up to f objects per shard crash and
// restart from disk `arg` steps later, so every run carries degraded
// windows and repair traffic. Counters record the recovery outcome the
// committed BENCH_store.json recovery section tracks: restarts, repair
// bits, and the degraded-window sojourn tail next to the overall one.
void run_store_recovery_bench(benchmark::State& state,
                              const std::string& alg) {
  store::StoreOptions opts =
      store_options(alg, store::ycsb::Distribution::kZipfian);
  opts.workload.mix = store::ycsb::Mix::kA;  // writes close repair windows
  opts.workload.ops_per_client = 2 * kOpsPerClient;
  opts.arrival.process = sim::ArrivalProcess::kPoisson;
  opts.arrival.rate = 0.08;
  opts.object_crashes_per_shard = 2;
  opts.restart_after = static_cast<uint64_t>(state.range(0));
  uint64_t ops = 0;
  for (auto _ : state) {
    store::Store engine(opts);
    store::StoreResult result = engine.run();
    benchmark::DoNotOptimize(result.total_steps);
    ops += result.completed_reads + result.completed_writes;
    state.counters["object_restarts"] =
        static_cast<double>(result.object_restarts);
    state.counters["repair_bits"] = static_cast<double>(result.repair_bits);
    state.counters["degraded_steps"] =
        static_cast<double>(result.degraded_steps);
    state.counters["degraded_sojourn_p99"] =
        static_cast<double>(result.degraded_sojourn.p99());
    state.counters["sojourn_p99_steps"] =
        static_cast<double>(result.sojourn_latency.p99());
  }
  state.SetLabel(alg + "/zipfian/restart_after=" +
                 std::to_string(state.range(0)));
  state.counters["ops_per_sec"] = benchmark::Counter(
      static_cast<double>(ops), benchmark::Counter::kIsRate);
}

void BM_StoreRecoveryAdaptive(benchmark::State& state) {
  run_store_recovery_bench(state, "adaptive");
}
void BM_StoreRecoveryAbd(benchmark::State& state) {
  run_store_recovery_bench(state, "abd");
}
void BM_StoreRecoveryCoded(benchmark::State& state) {
  run_store_recovery_bench(state, "coded");
}

// Arg: restart delay in steps — a fast restart (short degraded window) vs
// a slow one (long window, more lost RMWs to re-converge).
BENCHMARK(BM_StoreRecoveryAdaptive)
    ->Arg(100)->Arg(800)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StoreRecoveryAbd)
    ->Arg(100)->Arg(800)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StoreRecoveryCoded)
    ->Arg(100)->Arg(800)->Unit(benchmark::kMillisecond);

// Active anti-entropy on a pure-read store: with YCSB mix C no foreground
// write ever closes a repair window, so the background pump is the only
// thing re-converging scratch-restarted replicas. Arg = repair_every (the
// pump period); sweeping it reads out the repair-bandwidth vs
// degraded-window tradeoff — a fast pump spends more repair pushes to
// close windows sooner, a slow one leaves replicas degraded longer. The
// counters mirror the sweep export's repair section: pushes, repair bits,
// degraded steps, and the still-open window count (must be 0).
void BM_StoreAntiEntropy(benchmark::State& state) {
  store::StoreOptions opts =
      store_options("adaptive", store::ycsb::Distribution::kZipfian);
  opts.workload.mix = store::ycsb::Mix::kC;  // zero foreground writes
  opts.object_crashes_per_shard = 2;
  opts.restart_after = 100;
  opts.restart_mode = sim::RestartMode::kFromScratch;
  opts.repair_every = static_cast<uint64_t>(state.range(0));
  // Pump-only: with read-repair on, the first overlapping read closes the
  // window a few steps after restart and the rate sweep reads flat.
  opts.read_repair = false;
  uint64_t ops = 0;
  for (auto _ : state) {
    store::Store engine(opts);
    store::StoreResult result = engine.run();
    benchmark::DoNotOptimize(result.total_steps);
    ops += result.completed_reads + result.completed_writes;
    state.counters["repair_pushes"] =
        static_cast<double>(result.repair_pushes);
    state.counters["repair_bits"] = static_cast<double>(result.repair_bits);
    state.counters["degraded_steps"] =
        static_cast<double>(result.degraded_steps);
    state.counters["repair_window_steps"] =
        static_cast<double>(result.repair_window_steps);
    state.counters["open_repair_windows"] =
        static_cast<double>(result.open_repair_windows);
    state.counters["read_p99_steps"] =
        static_cast<double>(result.read_latency.p99());
  }
  state.SetLabel("adaptive/zipfian/mixC/repair_every=" +
                 std::to_string(state.range(0)));
  state.counters["ops_per_sec"] = benchmark::Counter(
      static_cast<double>(ops), benchmark::Counter::kIsRate);
}

// Arg: the anti-entropy pump period in steps.
BENCHMARK(BM_StoreAntiEntropy)
    ->Arg(40)->Arg(160)->Arg(640)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace sbrs::bench

BENCHMARK_MAIN();
