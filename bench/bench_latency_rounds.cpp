// E9 — operation complexity: RMWs and rounds per operation for every
// algorithm, plus FW-termination behaviour (read retries under write
// churn). Writes cost 3 rounds (adaptive, coded), 2 rounds (ABD, safe);
// reads cost 1 round when quiescent and may retry under churn for the
// FW-terminating algorithms.
#include "bench_util.h"

namespace sbrs::bench {
namespace {

constexpr uint64_t kDataBits = 1024;

struct OpCosts {
  double rmws_per_write = 0;
  double rmws_per_read = 0;
};

OpCosts measure(const registers::RegisterAlgorithm& alg, uint64_t seed) {
  // Writes-only run to isolate write cost.
  harness::RunOptions w;
  w.writers = 2;
  w.writes_per_client = 8;
  w.scheduler = harness::SchedKind::kRoundRobin;
  auto wout = harness::run_register_experiment(alg, w);

  // Mixed run; subtract the write cost to estimate reads.
  harness::RunOptions m = w;
  m.readers = 2;
  m.reads_per_client = 8;
  m.seed = seed;
  auto mout = harness::run_register_experiment(alg, m);

  OpCosts costs;
  costs.rmws_per_write = static_cast<double>(wout.report.rmws_triggered) / 16;
  costs.rmws_per_read =
      static_cast<double>(mout.report.rmws_triggered -
                          wout.report.rmws_triggered) /
      16;
  return costs;
}

void print_sweep() {
  std::cout << "\n=== E9: RMWs per operation (n objects per round; f=2, "
            << "k=2, D=" << kDataBits << " bits) ===\n";
  const auto cfg = cfg_fk(2, 2, kDataBits);
  std::vector<std::unique_ptr<registers::RegisterAlgorithm>> algs;
  algs.push_back(registers::make_adaptive(cfg));
  algs.push_back(registers::make_coded(cfg));
  algs.push_back(registers::make_abd(cfg_abd(2, kDataBits)));
  algs.push_back(registers::make_safe(cfg));

  harness::Table table({"algorithm", "n", "rmws/write", "write rounds",
                        "rmws/read", "read rounds (quiescent-ish)"});
  for (const auto& alg : algs) {
    auto costs = measure(*alg, 3);
    const double n = static_cast<double>(alg->config().n);
    table.add_row(alg->name(), alg->config().n, costs.rmws_per_write,
                  costs.rmws_per_write / n, costs.rmws_per_read,
                  costs.rmws_per_read / n);
  }
  table.print();
  std::cout << "\nWrites: 3 rounds for the coded/adaptive registers "
               "(read-ts, update, GC/commit), 2 for ABD and the safe "
               "register. Reads: 1 round when writes are quiet; the "
               "FW-terminating readers retry under churn.\n\n";
}

void BM_EndToEndOps(benchmark::State& state) {
  const auto cfg = cfg_fk(2, 2, kDataBits);
  std::unique_ptr<registers::RegisterAlgorithm> alg;
  switch (state.range(0)) {
    case 0: alg = registers::make_adaptive(cfg); break;
    case 1: alg = registers::make_coded(cfg); break;
    case 2: alg = registers::make_abd(cfg_abd(2, kDataBits)); break;
    default: alg = registers::make_safe(cfg); break;
  }
  uint64_t ops = 0;
  for (auto _ : state) {
    harness::RunOptions opts;
    opts.writers = 2;
    opts.writes_per_client = 4;
    opts.readers = 2;
    opts.reads_per_client = 4;
    opts.seed = 1;
    opts.sample_every = 1024;
    auto out = harness::run_register_experiment(*alg, opts);
    ops += out.report.completed_ops;
    benchmark::DoNotOptimize(out.report.steps);
  }
  state.counters["ops/s"] = benchmark::Counter(
      static_cast<double>(ops), benchmark::Counter::kIsRate);
  state.SetLabel(alg->name());
}
BENCHMARK(BM_EndToEndOps)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

}  // namespace
}  // namespace sbrs::bench

int main(int argc, char** argv) {
  sbrs::bench::print_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
