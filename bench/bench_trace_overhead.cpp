// Trace-layer overhead: the disabled path (SimConfig::trace == nullptr,
// one pointer test per emission site) must be free next to the identical
// untraced workload — BM_TraceOverhead/N mirrors BM_AdaptiveWriteStorm/N
// exactly, so CI can diff the two and fail on a disabled-path regression.
// BM_TraceOverheadRecording measures the enabled path (a TraceRecorder
// attached, spans + counter samples assembled in memory) for scale.
#include "obs/trace.h"

#include "bench_util.h"
#include "harness/runner.h"

namespace sbrs::bench {
namespace {

constexpr uint32_t kF = 4, kK = 8;
constexpr uint64_t kDataBits = 4096;

/// The exact BM_AdaptiveWriteStorm workload with tracing disabled: any
/// measurable gap between this and BM_AdaptiveWriteStorm at the same arg
/// is overhead the null-sink guards leaked into the hot path.
void BM_TraceOverhead(benchmark::State& state) {
  auto alg = registers::make_adaptive(cfg_fk(kF, kK, kDataBits));
  const uint32_t c = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    auto out = storage_run(*alg, c);
    benchmark::DoNotOptimize(out.max_object_bits);
  }
}
BENCHMARK(BM_TraceOverhead)->Arg(2)->Arg(8)->Arg(32);

/// Same workload with a recorder attached: the cost of actually assembling
/// op/RMW spans and counter samples in memory.
void BM_TraceOverheadRecording(benchmark::State& state) {
  auto alg = registers::make_adaptive(cfg_fk(kF, kK, kDataBits));
  const uint32_t c = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    obs::TraceRecorder rec;
    harness::RunOptions opts;
    opts.writers = c;
    opts.writes_per_client = 1;
    opts.scheduler = harness::SchedKind::kBurst;
    opts.sample_every = 64;
    opts.trace = &rec;
    auto out = harness::run_register_experiment(*alg, opts);
    benchmark::DoNotOptimize(out.max_object_bits);
    state.counters["spans"] =
        static_cast<double>(rec.ops().size() + rec.rmws().size());
  }
}
BENCHMARK(BM_TraceOverheadRecording)->Arg(2)->Arg(8)->Arg(32);

}  // namespace
}  // namespace sbrs::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
