// E5 — the O(cD) claim (Section 1): a pure erasure-coded register parks one
// piece per object per outstanding write, so its storage grows linearly
// with the concurrency level — the behaviour Theorem 1 proves unavoidable
// for code-dominant algorithms.
#include "bench_util.h"

namespace sbrs::bench {
namespace {

constexpr uint32_t kF = 4, kK = 4;
constexpr uint64_t kDataBits = 4096;

void print_sweep() {
  std::cout << "\n=== E5: pure coded register storage vs concurrency "
            << "(f=" << kF << ", k=" << kK << ", D=" << kDataBits
            << " bits) ===\n";
  auto alg = registers::make_coded(cfg_fk(kF, kK, kDataBits));
  harness::Table table(
      {"c", "max object bits", "(c+1) nD/k model", "ratio", "bits per c"});
  uint64_t prev = 0;
  uint32_t prev_c = 0;
  for (uint32_t c : {1u, 2u, 4u, 8u, 16u, 32u}) {
    auto out = storage_run(*alg, c);
    const uint64_t model = bounds::coded_baseline_bits(kF, kK, c, kDataBits);
    const uint64_t slope =
        prev_c == 0 ? 0 : (out.max_object_bits - prev) / (c - prev_c);
    table.add_row(c, out.max_object_bits, model,
                  ratio(out.max_object_bits, model), slope);
    prev = out.max_object_bits;
    prev_c = c;
  }
  table.print();
  std::cout << "\nThe per-concurrent-write slope is ~n*D/k = "
            << (2 * kF + kK) * bounds::piece_bits(kK, kDataBits)
            << " bits: storage is Theta(c D), the cost Theorem 2's "
               "adaptive switch avoids.\n\n";
}

void BM_CodedWriteStorm(benchmark::State& state) {
  auto alg = registers::make_coded(cfg_fk(kF, kK, kDataBits));
  const uint32_t c = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    auto out = storage_run(*alg, c);
    benchmark::DoNotOptimize(out.max_object_bits);
    state.counters["object_bits"] = static_cast<double>(out.max_object_bits);
  }
}
BENCHMARK(BM_CodedWriteStorm)->Arg(2)->Arg(8)->Arg(32);

}  // namespace
}  // namespace sbrs::bench

int main(int argc, char** argv) {
  sbrs::bench::print_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
