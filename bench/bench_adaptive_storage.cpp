// E2 — Theorem 2: the adaptive algorithm's storage vs concurrency.
//
// Sweeps the write-concurrency level and prints the measured maximum
// base-object storage next to the paper's bound min((c+1)(2f+k)D/k,
// 2(2f+k)D) (the Lemma 6 / Lemma 7 regimes). The channel column shows
// Definition 2's additional in-flight contribution, which the paper's
// upper-bound analysis does not charge (see DESIGN.md).
#include "bench_util.h"

namespace sbrs::bench {
namespace {

constexpr uint32_t kF = 4, kK = 8;
constexpr uint64_t kDataBits = 4096;

void print_sweep() {
  std::cout << "\n=== E2: adaptive register storage vs concurrency "
            << "(f=" << kF << ", k=" << kK << ", n=" << (2 * kF + kK)
            << ", D=" << kDataBits << " bits) ===\n";
  auto alg = registers::make_adaptive(cfg_fk(kF, kK, kDataBits));
  harness::Table table({"c", "max object bits", "Thm2 bound", "ratio",
                        "max channel bits", "regime"});
  for (uint32_t c : {1u, 2u, 3u, 4u, 6u, 8u, 12u, 16u, 24u, 32u}) {
    auto out = storage_run(*alg, c);
    const uint64_t bound =
        bounds::adaptive_upper_bound_bits(kF, kK, c, kDataBits);
    table.add_row(c, out.max_object_bits, bound,
                  ratio(out.max_object_bits, bound), out.max_channel_bits,
                  c + 1 < kK ? "coding (c+1 pieces/obj)" : "replica cap 2nD");
  }
  table.print();
  std::cout << "\nStorage grows ~linearly while c < k-1, then saturates at "
               "the replication cap — the min(f, c) adaptivity of Theorem "
               "2.\n\n";
}

void BM_AdaptiveWriteStorm(benchmark::State& state) {
  auto alg = registers::make_adaptive(cfg_fk(kF, kK, kDataBits));
  const uint32_t c = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    auto out = storage_run(*alg, c);
    benchmark::DoNotOptimize(out.max_object_bits);
    state.counters["object_bits"] = static_cast<double>(out.max_object_bits);
    state.counters["bound_bits"] = static_cast<double>(
        bounds::adaptive_upper_bound_bits(kF, kK, c, kDataBits));
  }
}
BENCHMARK(BM_AdaptiveWriteStorm)->Arg(2)->Arg(8)->Arg(32);

}  // namespace
}  // namespace sbrs::bench

int main(int argc, char** argv) {
  sbrs::bench::print_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
