// E2 — Theorem 2: the adaptive algorithm's storage vs concurrency.
//
// Sweeps the write-concurrency level (as a SweepRunner grid, one cell per
// concurrency level) and prints the measured maximum base-object storage
// next to the paper's bound min((c+1)(2f+k)D/k, 2(2f+k)D) (the Lemma 6 /
// Lemma 7 regimes). The channel column shows Definition 2's additional
// in-flight contribution, which the paper's upper-bound analysis does not
// charge (see DESIGN.md).
#include "harness/sweep.h"

#include "bench_util.h"

namespace sbrs::bench {
namespace {

constexpr uint32_t kF = 4, kK = 8;
constexpr uint64_t kDataBits = 4096;

void print_sweep() {
  std::cout << "\n=== E2: adaptive register storage vs concurrency "
            << "(f=" << kF << ", k=" << kK << ", n=" << (2 * kF + kK)
            << ", D=" << kDataBits << " bits) ===\n";
  const std::vector<uint32_t> cs = {1, 2, 3, 4, 6, 8, 12, 16, 24, 32};
  std::vector<harness::SweepCell> grid;
  for (uint32_t c : cs) grid.push_back(storage_cell("adaptive", kF, kK, kDataBits, c));
  auto result = harness::SweepRunner(sweep_options()).run(grid);

  harness::Table table({"c", "max object bits", "Thm2 bound", "ratio",
                        "max channel bits", "steps/s", "regime"});
  for (size_t i = 0; i < cs.size(); ++i) {
    const auto& cell = result.cells[i];
    const uint32_t c = cs[i];
    const uint64_t bound =
        bounds::adaptive_upper_bound_bits(kF, kK, c, kDataBits);
    table.add_row(c, cell.max_object_bits.max, bound,
                  ratio(cell.max_object_bits.max, bound),
                  cell.max_channel_bits.max,
                  static_cast<uint64_t>(cell.steps_per_sec),
                  c + 1 < kK ? "coding (c+1 pieces/obj)" : "replica cap 2nD");
  }
  table.print();
  std::cout << "\nStorage grows ~linearly while c < k-1, then saturates at "
               "the replication cap — the min(f, c) adaptivity of Theorem "
               "2. (sweep: " << result.threads_used << " threads, "
            << result.wall_seconds << "s)\n\n";
}

void BM_AdaptiveWriteStorm(benchmark::State& state) {
  auto alg = registers::make_adaptive(cfg_fk(kF, kK, kDataBits));
  const uint32_t c = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    auto out = storage_run(*alg, c);
    benchmark::DoNotOptimize(out.max_object_bits);
    state.counters["object_bits"] = static_cast<double>(out.max_object_bits);
    state.counters["bound_bits"] = static_cast<double>(
        bounds::adaptive_upper_bound_bits(kF, kK, c, kDataBits));
  }
}
BENCHMARK(BM_AdaptiveWriteStorm)->Arg(2)->Arg(8)->Arg(32);

}  // namespace
}  // namespace sbrs::bench

int main(int argc, char** argv) {
  sbrs::bench::print_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
