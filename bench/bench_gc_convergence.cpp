// E3 — Theorem 2's garbage-collection clause: after finitely many writes by
// correct writers, the adaptive register's storage shrinks to (2f+k) D/k —
// a single piece per base object. The table shows the peak-vs-final storage
// for growing write counts; the final column never grows.
#include "bench_util.h"

namespace sbrs::bench {
namespace {

constexpr uint32_t kF = 2, kK = 4;
constexpr uint64_t kDataBits = 2048;

void print_sweep() {
  std::cout << "\n=== E3: GC convergence of the adaptive register "
            << "(f=" << kF << ", k=" << kK << ", D=" << kDataBits
            << " bits) ===\n";
  auto alg = registers::make_adaptive(cfg_fk(kF, kK, kDataBits));
  const uint64_t quiescent =
      bounds::adaptive_quiescent_bits(kF, kK, kDataBits);
  harness::Table table({"writers", "writes each", "peak object bits",
                        "final object bits", "(2f+k)D/k", "converged"});
  for (uint32_t writers : {1u, 2u, 4u}) {
    for (uint32_t each : {1u, 4u, 16u}) {
      harness::RunOptions opts;
      opts.writers = writers;
      opts.writes_per_client = each;
      opts.scheduler = harness::SchedKind::kRoundRobin;  // FIFO channels
      auto out = harness::run_register_experiment(*alg, opts);
      table.add_row(writers, each, out.max_object_bits,
                    out.final_object_bits, quiescent,
                    out.final_object_bits == quiescent ? "yes" : "no");
    }
  }
  table.print();
  std::cout << "\nFinal storage is exactly one D/k piece per object no "
               "matter how many writes ran — Theorem 2's quiescent bound."
               "\n\n";
}

void BM_GcRun(benchmark::State& state) {
  auto alg = registers::make_adaptive(cfg_fk(kF, kK, kDataBits));
  const uint32_t writes = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    harness::RunOptions opts;
    opts.writers = 2;
    opts.writes_per_client = writes;
    opts.scheduler = harness::SchedKind::kRoundRobin;
    auto out = harness::run_register_experiment(*alg, opts);
    benchmark::DoNotOptimize(out.final_object_bits);
    state.counters["final_bits"] = static_cast<double>(out.final_object_bits);
  }
}
BENCHMARK(BM_GcRun)->Arg(4)->Arg(16);

}  // namespace
}  // namespace sbrs::bench

int main(int argc, char** argv) {
  sbrs::bench::print_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
