#!/usr/bin/env sh
# Run the codec microbenchmarks and record the results as BENCH_codec.json
# at the repo root (google-benchmark JSON), building first if needed.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir="$repo_root/build"

if [ ! -x "$build_dir/bench/bench_codec" ]; then
  cmake -B "$build_dir" -S "$repo_root"
  cmake --build "$build_dir" -j --target bench_codec
fi

"$build_dir/bench/bench_codec" \
  --benchmark_format=json \
  --benchmark_out="$repo_root/BENCH_codec.json" \
  --benchmark_out_format=json \
  "$@"

echo "wrote $repo_root/BENCH_codec.json"
