// E11 — storage-over-time "figure": the trajectory of total storage during
// a concurrent write burst followed by quiescence, for the three register
// families side by side. This is the time-domain view of the E7 crossover:
// the coded baseline's peak scales with c, the adaptive register's peak is
// capped, and its GC pulls the curve back down to (2f+k)D/k.
//
// Also writes bench_storage_timeline.csv for replotting.
#include <fstream>

#include "bench_util.h"
#include "harness/export.h"
#include "sim/schedulers.h"
#include "sim/simulator.h"

namespace sbrs::bench {
namespace {

constexpr uint32_t kF = 3, kK = 3, kC = 12;
constexpr uint64_t kDataBits = 2048;

std::vector<metrics::StorageSample> run_series(
    const registers::RegisterAlgorithm& alg) {
  sim::UniformWorkload::Options wl;
  wl.writers = kC;
  wl.writes_per_client = 1;
  wl.data_bits = kDataBits;

  sim::SimConfig sc;
  sc.num_objects = alg.config().n;
  sc.num_clients = kC;
  sc.sample_every = 1;

  sim::Simulator simulator(sc, alg.object_factory(), alg.client_factory(),
                           std::make_unique<sim::UniformWorkload>(wl),
                           std::make_unique<sim::BurstScheduler>());
  simulator.run();
  return simulator.meter().series();
}

void print_timeline() {
  std::cout << "\n=== E11: object storage over time during a c=" << kC
            << " write burst (f=" << kF << ", k=" << kK
            << ", D=" << kDataBits << " bits) ===\n";
  auto adaptive = registers::make_adaptive(cfg_fk(kF, kK, kDataBits));
  auto coded = registers::make_coded(cfg_fk(kF, kK, kDataBits));
  auto abd = registers::make_abd(cfg_abd(kF, kDataBits));

  auto a_series = run_series(*adaptive);
  auto c_series = run_series(*coded);
  auto r_series = run_series(*abd);

  // Render ~16 aligned time points as a table (the "figure").
  const size_t points = 16;
  auto a = harness::downsample(a_series, points);
  auto c = harness::downsample(c_series, points);
  auto r = harness::downsample(r_series, points);
  harness::Table table({"t (frac of run)", "adaptive bits", "coded bits",
                        "abd bits"});
  for (size_t i = 0; i < points; ++i) {
    const auto& aa = a[std::min(i, a.size() - 1)];
    const auto& cc = c[std::min(i, c.size() - 1)];
    const auto& rr = r[std::min(i, r.size() - 1)];
    std::ostringstream frac;
    frac << std::fixed << std::setprecision(2)
         << static_cast<double>(i) / (points - 1);
    table.add_row(frac.str(), aa.object_bits, cc.object_bits,
                  rr.object_bits);
  }
  table.print();

  std::ofstream csv("bench_storage_timeline.csv");
  harness::write_series_csv(csv, a_series);
  std::cout << "\nadaptive series written to bench_storage_timeline.csv ("
            << a_series.size() << " samples). The adaptive curve rises to "
               "its replica cap, then GC collapses it to "
            << bounds::adaptive_quiescent_bits(kF, kK, kDataBits)
            << " bits; the coded curve peaks ~c/k higher and only drops to "
               "the last committed write; ABD stays flat.\n\n";
}

void BM_TimelineRun(benchmark::State& state) {
  auto alg = registers::make_adaptive(cfg_fk(kF, kK, kDataBits));
  for (auto _ : state) {
    auto series = run_series(*alg);
    benchmark::DoNotOptimize(series.size());
  }
}
BENCHMARK(BM_TimelineRun);

}  // namespace
}  // namespace sbrs::bench

int main(int argc, char** argv) {
  sbrs::bench::print_timeline();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
