// E7 — "the best of both" (Sections 1 and 5): replication vs pure coding vs
// the adaptive algorithm across the concurrency axis. Coding wins at low c,
// replication at high c, and the adaptive register tracks the minimum of
// the two — the Theta(min(f, c) D) envelope. The whole 3-algorithm x 10-c
// grid runs as one parallel sweep.
#include "harness/sweep.h"

#include "bench_util.h"

namespace sbrs::bench {
namespace {

constexpr uint32_t kF = 4, kK = 4;
constexpr uint64_t kDataBits = 4096;

void print_sweep() {
  std::cout << "\n=== E7: storage crossover — replication vs coded vs "
            << "adaptive (f=" << kF << ", k=" << kK << ", D=" << kDataBits
            << " bits) ===\n";
  const std::vector<uint32_t> cs = {1, 2, 3, 4, 6, 8, 12, 16, 24, 32};
  const std::vector<std::string> algs = {"abd", "coded", "adaptive"};
  std::vector<harness::SweepCell> grid;
  for (uint32_t c : cs) {
    for (const auto& alg : algs) {
      grid.push_back(storage_cell(alg, kF, kK, kDataBits, c));
    }
  }
  auto result = harness::SweepRunner(sweep_options()).run(grid);

  harness::Table table({"c", "abd bits", "coded bits", "adaptive bits",
                        "adaptive regime"});
  const uint64_t cap =
      bounds::adaptive_upper_bound_bits(kF, kK, /*c=*/1000, kDataBits);
  for (size_t i = 0; i < cs.size(); ++i) {
    const uint64_t abd_bits = result.cells[3 * i + 0].max_object_bits.max;
    const uint64_t coded_bits = result.cells[3 * i + 1].max_object_bits.max;
    const uint64_t adaptive_bits =
        result.cells[3 * i + 2].max_object_bits.max;
    table.add_row(cs[i], abd_bits, coded_bits, adaptive_bits,
                  adaptive_bits >= cap ? "saturated (O(fD) cap)"
                                       : "coding (grows with c)");
  }
  table.print();
  std::cout << "\nThe pure coded register grows Theta(cD) without bound; "
               "the adaptive register tracks it at low c and saturates at "
               "its 2nD replica cap — i.e. O(min(f, c) D), within a "
               "constant factor of replication's flat (2f+1)D line.\n\n";
}

void BM_CrossoverPoint(benchmark::State& state) {
  auto adaptive = registers::make_adaptive(cfg_fk(kF, kK, kDataBits));
  for (auto _ : state) {
    auto out = storage_run(*adaptive, 2 * kK);
    benchmark::DoNotOptimize(out.max_object_bits);
  }
}
BENCHMARK(BM_CrossoverPoint);

}  // namespace
}  // namespace sbrs::bench

int main(int argc, char** argv) {
  sbrs::bench::print_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
