// E7 — "the best of both" (Sections 1 and 5): replication vs pure coding vs
// the adaptive algorithm across the concurrency axis. Coding wins at low c,
// replication at high c, and the adaptive register tracks the minimum of
// the two — the Theta(min(f, c) D) envelope.
#include "bench_util.h"

namespace sbrs::bench {
namespace {

constexpr uint32_t kF = 4, kK = 4;
constexpr uint64_t kDataBits = 4096;

void print_sweep() {
  std::cout << "\n=== E7: storage crossover — replication vs coded vs "
            << "adaptive (f=" << kF << ", k=" << kK << ", D=" << kDataBits
            << " bits) ===\n";
  auto abd = registers::make_abd(cfg_abd(kF, kDataBits));
  auto coded = registers::make_coded(cfg_fk(kF, kK, kDataBits));
  auto adaptive = registers::make_adaptive(cfg_fk(kF, kK, kDataBits));

  harness::Table table({"c", "abd bits", "coded bits", "adaptive bits",
                        "adaptive regime"});
  const uint64_t cap =
      bounds::adaptive_upper_bound_bits(kF, kK, /*c=*/1000, kDataBits);
  for (uint32_t c : {1u, 2u, 3u, 4u, 6u, 8u, 12u, 16u, 24u, 32u}) {
    auto abd_out = storage_run(*abd, c);
    auto coded_out = storage_run(*coded, c);
    auto adaptive_out = storage_run(*adaptive, c);
    table.add_row(c, abd_out.max_object_bits, coded_out.max_object_bits,
                  adaptive_out.max_object_bits,
                  adaptive_out.max_object_bits >= cap
                      ? "saturated (O(fD) cap)"
                      : "coding (grows with c)");
  }
  table.print();
  std::cout << "\nThe pure coded register grows Theta(cD) without bound; "
               "the adaptive register tracks it at low c and saturates at "
               "its 2nD replica cap — i.e. O(min(f, c) D), within a "
               "constant factor of replication's flat (2f+1)D line.\n\n";
}

void BM_CrossoverPoint(benchmark::State& state) {
  auto adaptive = registers::make_adaptive(cfg_fk(kF, kK, kDataBits));
  for (auto _ : state) {
    auto out = storage_run(*adaptive, 2 * kK);
    benchmark::DoNotOptimize(out.max_object_bits);
  }
}
BENCHMARK(BM_CrossoverPoint);

}  // namespace
}  // namespace sbrs::bench

int main(int argc, char** argv) {
  sbrs::bench::print_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
