// E4 — the replication cost claim (Section 1): ABD stores n = 2f+1 full
// copies, flat in the concurrency level. The sweep shows object storage is
// exactly (2f+1) D for every c, and grows linearly in f.
#include "bench_util.h"

namespace sbrs::bench {
namespace {

constexpr uint64_t kDataBits = 4096;

void print_sweep() {
  std::cout << "\n=== E4a: ABD (replication) storage vs concurrency "
            << "(f=4, D=" << kDataBits << " bits) ===\n";
  auto alg = registers::make_abd(cfg_abd(4, kDataBits));
  harness::Table table({"c", "max object bits", "(2f+1)D", "flat"});
  const uint64_t expected = bounds::replication_bits(9, kDataBits);
  for (uint32_t c : {1u, 2u, 4u, 8u, 16u, 32u}) {
    auto out = storage_run(*alg, c);
    table.add_row(c, out.max_object_bits, expected,
                  out.max_object_bits == expected ? "yes" : "no");
  }
  table.print();

  std::cout << "\n=== E4b: ABD storage vs fault tolerance f (c=8) ===\n";
  harness::Table ftable({"f", "n=2f+1", "max object bits", "(2f+1)D"});
  for (uint32_t f : {1u, 2u, 4u, 8u}) {
    auto a = registers::make_abd(cfg_abd(f, kDataBits));
    auto out = storage_run(*a, 8);
    ftable.add_row(f, 2 * f + 1, out.max_object_bits,
                   bounds::replication_bits(2 * f + 1, kDataBits));
  }
  ftable.print();
  std::cout << "\nReplication pays O(fD) regardless of concurrency — one "
               "side of the paper's min(f, c) dichotomy.\n\n";
}

void BM_AbdMixedOps(benchmark::State& state) {
  auto alg = registers::make_abd(cfg_abd(2, kDataBits));
  for (auto _ : state) {
    harness::RunOptions opts;
    opts.writers = 2;
    opts.writes_per_client = 4;
    opts.readers = 2;
    opts.reads_per_client = 4;
    opts.seed = 1;
    auto out = harness::run_register_experiment(*alg, opts);
    benchmark::DoNotOptimize(out.report.steps);
  }
}
BENCHMARK(BM_AbdMixedOps);

}  // namespace
}  // namespace sbrs::bench

int main(int argc, char** argv) {
  sbrs::bench::print_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
