// E6 — Appendix E: the wait-free safe register stores exactly n D / k bits
// at all times (Lemma 17) — flat in c, shrinking in k — and for k >> f dips
// *below* the Theorem 1 floor for regular registers, separating safe from
// regular semantics.
#include "bench_util.h"

namespace sbrs::bench {
namespace {

constexpr uint64_t kDataBits = 4096;

void print_sweep() {
  std::cout << "\n=== E6a: safe register storage vs concurrency "
            << "(f=2, k=8, D=" << kDataBits << " bits) ===\n";
  auto alg = registers::make_safe(cfg_fk(2, 8, kDataBits));
  const uint64_t expected = bounds::safe_register_bits(2, 8, kDataBits);
  harness::Table table({"c", "max object bits", "nD/k", "flat"});
  for (uint32_t c : {1u, 4u, 16u, 64u}) {
    auto out = storage_run(*alg, c);
    table.add_row(c, out.max_object_bits, expected,
                  out.max_object_bits == expected ? "yes" : "no");
  }
  table.print();

  std::cout << "\n=== E6b: safe register storage vs code dimension k "
            << "(f=2, c=16) — compared to the regular-register floor ===\n";
  harness::Table ktable({"k", "n=2f+k", "object bits nD/k",
                         "regular floor min(f+1,c)D/2", "below floor"});
  for (uint32_t k : {1u, 2u, 4u, 8u, 16u, 32u}) {
    auto a = registers::make_safe(cfg_fk(2, k, kDataBits));
    auto out = storage_run(*a, 16);
    const uint64_t floor = bounds::lower_bound_bits(2, 16, kDataBits);
    ktable.add_row(k, 2 * 2 + k, out.max_object_bits, floor,
                   out.max_object_bits < floor ? "yes" : "no");
  }
  ktable.print();
  std::cout << "\nFor k >= 8 the safe register stores less than ANY regular "
               "register can (Theorem 1): the lower bound is specific to "
               "regular semantics.\n\n";
}

void BM_SafeOps(benchmark::State& state) {
  auto alg = registers::make_safe(cfg_fk(2, 8, kDataBits));
  for (auto _ : state) {
    harness::RunOptions opts;
    opts.writers = 4;
    opts.writes_per_client = 4;
    opts.readers = 4;
    opts.reads_per_client = 4;
    opts.seed = 1;
    auto out = harness::run_register_experiment(*alg, opts);
    benchmark::DoNotOptimize(out.report.steps);
  }
}
BENCHMARK(BM_SafeOps);

}  // namespace
}  // namespace sbrs::bench

int main(int argc, char** argv) {
  sbrs::bench::print_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
