// Shared helpers for the benchmark binaries.
//
// Every bench prints a paper-style results table (measured vs predicted
// storage, in bits) before running its google-benchmark timings, so a
// plain `./bench_<name>` reproduces the corresponding experiment row of
// EXPERIMENTS.md.
#pragma once

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "bounds/formulas.h"
#include "harness/runner.h"
#include "harness/sweep.h"
#include "harness/table.h"
#include "registers/register_algorithm.h"

namespace sbrs::bench {

inline registers::RegisterConfig cfg_fk(uint32_t f, uint32_t k,
                                        uint64_t data_bits) {
  registers::RegisterConfig cfg;
  cfg.f = f;
  cfg.k = k;
  cfg.n = 2 * f + k;
  cfg.data_bits = data_bits;
  return cfg;
}

inline registers::RegisterConfig cfg_abd(uint32_t f, uint64_t data_bits) {
  registers::RegisterConfig cfg;
  cfg.f = f;
  cfg.k = 1;
  cfg.n = 2 * f + 1;
  cfg.data_bits = data_bits;
  return cfg;
}

/// Max-concurrency storage run: c writers, burst scheduler (all writes
/// start before any RMW is delivered).
inline harness::RunOutcome storage_run(
    const registers::RegisterAlgorithm& alg, uint32_t c,
    uint32_t writes_per_client = 1) {
  harness::RunOptions opts;
  opts.writers = c;
  opts.writes_per_client = writes_per_client;
  opts.scheduler = harness::SchedKind::kBurst;
  opts.sample_every = 64;
  return harness::run_register_experiment(alg, opts);
}

inline double ratio(uint64_t measured, uint64_t predicted) {
  return predicted == 0 ? 0.0
                        : static_cast<double>(measured) /
                              static_cast<double>(predicted);
}

/// One sweep-grid cell matching storage_run's shape: c writers, burst
/// scheduler (maximum write concurrency), one write each.
inline harness::SweepCell storage_cell(const std::string& alg, uint32_t f,
                                       uint32_t k, uint64_t data_bits,
                                       uint32_t c) {
  harness::SweepCell cell;
  cell.algorithm = alg;
  cell.config = (alg == "abd" || alg == "abd-wb") ? cfg_abd(f, data_bits)
                                                  : cfg_fk(f, k, data_bits);
  cell.opts.writers = c;
  cell.opts.writes_per_client = 1;
  cell.opts.scheduler = harness::SchedKind::kBurst;
  cell.opts.sample_every = 64;
  cell.label = alg + " c=" + std::to_string(c);
  return cell;
}

inline harness::SweepOptions sweep_options(uint32_t seeds_per_cell = 1) {
  harness::SweepOptions so;
  so.threads = 0;  // all hardware threads
  so.seeds_per_cell = seeds_per_cell;
  return so;
}

}  // namespace sbrs::bench
