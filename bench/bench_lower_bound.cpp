// E1 — Theorem 1 (the lower bound).
//
// Runs the Lemma 3 adversary construction against each algorithm and
// reports the storage Ad forces at its fixed point, next to the predicted
// floor min(f+1, c) * D/2. For the regular algorithms measured >= predicted
// must hold at every sweep point; the safe register (Appendix E) stays flat
// at n*D/k, demonstrating that the bound is specific to regular semantics.
#include "adversary/lower_bound.h"
#include "bench_util.h"

namespace sbrs::bench {
namespace {

constexpr uint64_t kDataBits = 4096;

void print_concurrency_sweep() {
  std::cout << "\n=== E1a: adversarial storage vs concurrency c "
            << "(f=4, k=4, D=" << kDataBits << " bits, l=D/2) ===\n";
  const auto cfg = cfg_fk(4, 4, kDataBits);
  const auto abd = cfg_abd(4, kDataBits);

  std::vector<std::unique_ptr<registers::RegisterAlgorithm>> algs;
  algs.push_back(registers::make_coded(cfg));
  algs.push_back(registers::make_adaptive(cfg));
  algs.push_back(registers::make_abd(abd));
  algs.push_back(registers::make_safe(cfg));

  harness::Table table({"algorithm", "c", "max storage (bits)",
                        "bound min(f+1,c)D/2", "ratio", "|F|", "|C+|",
                        "fixed point"});
  for (const auto& alg : algs) {
    for (uint32_t c : {1u, 2u, 3u, 4u, 5u, 8u, 16u, 32u}) {
      auto r = adversary::run_lower_bound_experiment(*alg, c);
      table.add_row(r.algorithm, c, r.max_total_bits, r.predicted_bits,
                    ratio(r.max_total_bits, r.predicted_bits),
                    r.frozen_objects, r.c_plus_writes, r.stop_reason);
    }
  }
  table.print();
}

void print_fault_sweep() {
  std::cout << "\n=== E1b: adversarial storage vs fault tolerance f "
            << "(c=16, k=f, D=" << kDataBits << " bits) ===\n";
  harness::Table table({"algorithm", "f", "max storage (bits)",
                        "bound min(f+1,c)D/2", "ratio"});
  for (uint32_t f : {1u, 2u, 4u, 8u}) {
    const auto cfg = cfg_fk(f, f, kDataBits);
    auto coded = registers::make_coded(cfg);
    auto adaptive = registers::make_adaptive(cfg);
    for (auto* alg : {coded.get(), adaptive.get()}) {
      auto r = adversary::run_lower_bound_experiment(*alg, 16);
      table.add_row(r.algorithm, f, r.max_total_bits, r.predicted_bits,
                    ratio(r.max_total_bits, r.predicted_bits));
    }
  }
  table.print();
  std::cout << "\nAll regular algorithms satisfy measured >= bound; the "
               "safe register's flat n*D/k line shows the bound does not "
               "apply to safe semantics (Appendix E).\n\n";
}

void BM_AdversaryRun(benchmark::State& state) {
  const auto cfg = cfg_fk(4, 4, kDataBits);
  auto alg = registers::make_coded(cfg);
  const uint32_t c = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    auto r = adversary::run_lower_bound_experiment(*alg, c);
    benchmark::DoNotOptimize(r.max_total_bits);
    state.counters["max_bits"] = static_cast<double>(r.max_total_bits);
    state.counters["bound_bits"] = static_cast<double>(r.predicted_bits);
  }
}
BENCHMARK(BM_AdversaryRun)->Arg(2)->Arg(8)->Arg(32);

}  // namespace
}  // namespace sbrs::bench

int main(int argc, char** argv) {
  sbrs::bench::print_concurrency_sweep();
  sbrs::bench::print_fault_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
