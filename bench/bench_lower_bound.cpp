// E1 — Theorem 1 (the lower bound).
//
// Runs the Lemma 3 adversary construction against each algorithm and
// reports the storage Ad forces at its fixed point, next to the predicted
// floor min(f+1, c) * D/2. For the regular algorithms measured >= predicted
// must hold at every sweep point; the safe register (Appendix E) stays flat
// at n*D/k, demonstrating that the bound is specific to regular semantics.
#include "adversary/lower_bound.h"
#include "harness/algorithms.h"
#include "harness/sweep.h"

#include "bench_util.h"

namespace sbrs::bench {
namespace {

constexpr uint64_t kDataBits = 4096;

/// A lower-bound experiment is not a plain register run, so it rides the
/// sweep engine's generic parallel_map: one job per (algorithm, parameter)
/// cell, each constructing its own algorithm instance on the worker.
struct AdCell {
  std::string algorithm;
  registers::RegisterConfig cfg;
  uint32_t concurrency = 1;
};

std::vector<adversary::LowerBoundResult> run_ad_grid(
    const std::vector<AdCell>& grid) {
  return harness::parallel_map(
      grid.size(), /*threads=*/0, [&](size_t i) {
        const AdCell& cell = grid[i];
        auto alg = harness::make_algorithm(cell.algorithm, cell.cfg);
        return adversary::run_lower_bound_experiment(*alg, cell.concurrency);
      });
}

void print_concurrency_sweep() {
  std::cout << "\n=== E1a: adversarial storage vs concurrency c "
            << "(f=4, k=4, D=" << kDataBits << " bits, l=D/2) ===\n";
  const auto cfg = cfg_fk(4, 4, kDataBits);
  const auto abd = cfg_abd(4, kDataBits);

  std::vector<AdCell> grid;
  for (const char* alg : {"coded", "adaptive", "abd", "safe"}) {
    for (uint32_t c : {1u, 2u, 3u, 4u, 5u, 8u, 16u, 32u}) {
      grid.push_back(AdCell{alg, std::string(alg) == "abd" ? abd : cfg, c});
    }
  }
  auto results = run_ad_grid(grid);

  harness::Table table({"algorithm", "c", "max storage (bits)",
                        "bound min(f+1,c)D/2", "ratio", "|F|", "|C+|",
                        "fixed point"});
  for (size_t i = 0; i < grid.size(); ++i) {
    const auto& r = results[i];
    table.add_row(r.algorithm, grid[i].concurrency, r.max_total_bits,
                  r.predicted_bits, ratio(r.max_total_bits, r.predicted_bits),
                  r.frozen_objects, r.c_plus_writes, r.stop_reason);
  }
  table.print();
}

void print_fault_sweep() {
  std::cout << "\n=== E1b: adversarial storage vs fault tolerance f "
            << "(c=16, k=f, D=" << kDataBits << " bits) ===\n";
  std::vector<AdCell> grid;
  std::vector<uint32_t> fs;
  for (uint32_t f : {1u, 2u, 4u, 8u}) {
    for (const char* alg : {"coded", "adaptive"}) {
      grid.push_back(AdCell{alg, cfg_fk(f, f, kDataBits), 16});
      fs.push_back(f);
    }
  }
  auto results = run_ad_grid(grid);

  harness::Table table({"algorithm", "f", "max storage (bits)",
                        "bound min(f+1,c)D/2", "ratio"});
  for (size_t i = 0; i < grid.size(); ++i) {
    const auto& r = results[i];
    table.add_row(r.algorithm, fs[i], r.max_total_bits, r.predicted_bits,
                  ratio(r.max_total_bits, r.predicted_bits));
  }
  table.print();
  std::cout << "\nAll regular algorithms satisfy measured >= bound; the "
               "safe register's flat n*D/k line shows the bound does not "
               "apply to safe semantics (Appendix E).\n\n";
}

void BM_AdversaryRun(benchmark::State& state) {
  const auto cfg = cfg_fk(4, 4, kDataBits);
  auto alg = registers::make_coded(cfg);
  const uint32_t c = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    auto r = adversary::run_lower_bound_experiment(*alg, c);
    benchmark::DoNotOptimize(r.max_total_bits);
    state.counters["max_bits"] = static_cast<double>(r.max_total_bits);
    state.counters["bound_bits"] = static_cast<double>(r.predicted_bits);
  }
}
BENCHMARK(BM_AdversaryRun)->Arg(2)->Arg(8)->Arg(32);

}  // namespace
}  // namespace sbrs::bench

int main(int argc, char** argv) {
  sbrs::bench::print_concurrency_sweep();
  sbrs::bench::print_fault_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
