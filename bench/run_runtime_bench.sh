#!/usr/bin/env sh
# Run the threaded-runtime benchmark and record the results as
# BENCH_runtime.json at the repo root (google-benchmark JSON, building
# first if needed), tracking the real-thread backend's throughput next to
# the layers BENCH_codec.json / BENCH_registers.json / BENCH_store.json
# already cover.
#
# The fixed shape: every register variant, f=1 k=2 (n=4) D=1024, 3 writers
# x 32 writes + 3 readers x 32 reads, closed loop, on BOTH backends —
# BM_ThreadedOps times the real thread/channel mesh (wall-clock ns), and
# BM_SimOps times the logical-step simulator on the identical workload, so
# the recorded JSON carries the mesh-overhead comparison directly. The
# results table printed before the timings cross-checks each threaded run
# against a simulator run (both checker-clean at the variant's promised
# consistency level) and aborts the recording on any FAIL.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir="$repo_root/build"
out="$repo_root/BENCH_runtime.json"

if [ ! -x "$build_dir/bench/bench_runtime" ]; then
  cmake -B "$build_dir" -S "$repo_root"
  cmake --build "$build_dir" -j --target bench_runtime
fi

tmp=$(mktemp)
console=$(mktemp)
trap 'rm -f "$tmp" "$console"' EXIT

"$build_dir/bench/bench_runtime" \
  --benchmark_format=json \
  --benchmark_out="$tmp" \
  --benchmark_out_format=json \
  "$@" | tee "$console"

if grep -q FAIL "$console"; then
  echo "FATAL: a consistency check or sim cross-check failed; not" \
       "recording $out" >&2
  exit 1
fi

mv "$tmp" "$out"
rm -f "$console"
trap - EXIT
echo "wrote $out"
