// E8 — Corollary 2 (ablation): disabling the adaptive algorithm's
// full-replica path (and unbounding Vp to preserve regularity) removes the
// "store D bits in f+1 objects" escape hatch, and storage reverts to
// growing linearly with the concurrency — exactly what Corollary 2 says
// must happen to any such algorithm.
#include "bench_util.h"

namespace sbrs::bench {
namespace {

constexpr uint32_t kF = 4, kK = 4;
constexpr uint64_t kDataBits = 4096;

void print_sweep() {
  std::cout << "\n=== E8: ablation — adaptive with vs without the replica "
            << "path (f=" << kF << ", k=" << kK << ", D=" << kDataBits
            << " bits) ===\n";
  auto full = registers::make_adaptive(cfg_fk(kF, kK, kDataBits));
  registers::AdaptiveOptions ablated;
  ablated.enable_replica_path = false;
  ablated.vp_unbounded = true;
  auto no_replica =
      registers::make_adaptive(cfg_fk(kF, kK, kDataBits), ablated);

  harness::Table table({"c", "adaptive bits", "no-replica bits",
                        "no-replica / adaptive", "replica cap 2nD"});
  const uint64_t cap = 2ull * (2 * kF + kK) * kDataBits;
  for (uint32_t c : {1u, 2u, 4u, 8u, 16u, 32u}) {
    auto full_out = storage_run(*full, c);
    auto ablated_out = storage_run(*no_replica, c);
    table.add_row(c, full_out.max_object_bits, ablated_out.max_object_bits,
                  ratio(ablated_out.max_object_bits,
                        full_out.max_object_bits),
                  cap);
  }
  table.print();
  std::cout << "\nWithout a full replica in f+1 objects, storage grows "
               "linearly with c (Corollary 2); the replica path is what "
               "caps the adaptive register at 2nD.\n\n";
}

void BM_AblatedStorm(benchmark::State& state) {
  registers::AdaptiveOptions ablated;
  ablated.enable_replica_path = false;
  ablated.vp_unbounded = true;
  auto alg = registers::make_adaptive(cfg_fk(kF, kK, kDataBits), ablated);
  const uint32_t c = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    auto out = storage_run(*alg, c);
    benchmark::DoNotOptimize(out.max_object_bits);
    state.counters["object_bits"] = static_cast<double>(out.max_object_bits);
  }
}
BENCHMARK(BM_AblatedStorm)->Arg(4)->Arg(16);

}  // namespace
}  // namespace sbrs::bench

int main(int argc, char** argv) {
  sbrs::bench::print_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
