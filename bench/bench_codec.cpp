// E10 — substrate microbenchmarks: Reed-Solomon encode/decode throughput
// vs (n, k, D), GF(2^8) row operations, and replication as the baseline.
// These justify treating coding cost as negligible relative to the storage
// effects the paper is about.
#include <benchmark/benchmark.h>

#include "codec/codec.h"
#include "common/rng.h"
#include "gf/gf_kernels.h"

namespace sbrs::codec {
namespace {

Value random_value(uint64_t bits, uint64_t seed) {
  Rng rng(seed);
  Bytes b(bits / 8);
  for (auto& x : b) x = static_cast<uint8_t>(rng.below(256));
  return Value(std::move(b));
}

void BM_RsEncode(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  const uint32_t k = static_cast<uint32_t>(state.range(1));
  const uint64_t bits = static_cast<uint64_t>(state.range(2));
  auto codec = make_codec("rs", n, k, bits);
  const Value v = random_value(bits, 1);
  for (auto _ : state) {
    auto blocks = codec->encode(v);
    benchmark::DoNotOptimize(blocks);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bits / 8));
}
BENCHMARK(BM_RsEncode)
    ->Args({6, 2, 4096})
    ->Args({12, 4, 4096})
    ->Args({24, 8, 4096})
    ->Args({12, 4, 65536})
    ->Args({12, 4, 1048576});

void BM_RsDecodeFromParity(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  const uint32_t k = static_cast<uint32_t>(state.range(1));
  const uint64_t bits = static_cast<uint64_t>(state.range(2));
  auto codec = make_codec("rs", n, k, bits);
  const Value v = random_value(bits, 2);
  auto blocks = codec->encode(v);
  // Worst case: decode entirely from parity blocks (full matrix inversion).
  std::vector<Block> parity(blocks.begin() + k, blocks.begin() + 2 * k);
  for (auto _ : state) {
    auto decoded = codec->decode(parity);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bits / 8));
}
BENCHMARK(BM_RsDecodeFromParity)
    ->Args({6, 2, 4096})
    ->Args({12, 4, 4096})
    ->Args({24, 8, 4096})
    ->Args({12, 4, 65536});

void BM_RsDecodeSystematic(benchmark::State& state) {
  // Best case: the k systematic blocks are present — no inversion work.
  auto codec = make_codec("rs", 12, 4, 65536);
  const Value v = random_value(65536, 3);
  auto blocks = codec->encode(v);
  std::vector<Block> data(blocks.begin(), blocks.begin() + 4);
  for (auto _ : state) {
    auto decoded = codec->decode(data);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 8192);
}
BENCHMARK(BM_RsDecodeSystematic);

void BM_ReplicationEncode(benchmark::State& state) {
  auto codec = make_codec("replication", 5, 1, 65536);
  const Value v = random_value(65536, 4);
  for (auto _ : state) {
    auto blocks = codec->encode(v);
    benchmark::DoNotOptimize(blocks);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 8192);
}
BENCHMARK(BM_ReplicationEncode);

void BM_GfMulAddRow(benchmark::State& state) {
  // The innermost kernel: y ^= c*x over a buffer. The label records which
  // dispatch path (ssse3/neon/scalar) produced the numbers.
  const size_t len = static_cast<size_t>(state.range(0));
  Rng rng(6);
  Bytes x(len), y(len);
  for (auto& b : x) b = static_cast<uint8_t>(rng.below(256));
  for (auto& b : y) b = static_cast<uint8_t>(rng.below(256));
  for (auto _ : state) {
    gf::kern::mul_add_row(y.data(), x.data(), 0xb7, len);
    benchmark::DoNotOptimize(y.data());
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(len));
  state.SetLabel(gf::kern::backend());
}
BENCHMARK(BM_GfMulAddRow)->Arg(64)->Arg(1024)->Arg(65536)->Arg(1 << 20);

void BM_GfMulRow(benchmark::State& state) {
  const size_t len = static_cast<size_t>(state.range(0));
  Rng rng(7);
  Bytes x(len), y(len);
  for (auto& b : x) b = static_cast<uint8_t>(rng.below(256));
  for (auto _ : state) {
    gf::kern::mul_row(y.data(), x.data(), 0x53, len);
    benchmark::DoNotOptimize(y.data());
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(len));
  state.SetLabel(gf::kern::backend());
}
BENCHMARK(BM_GfMulRow)->Arg(1024)->Arg(65536);

void BM_EncodeSingleBlock(benchmark::State& state) {
  auto codec = make_codec("rs", 12, 4, 65536);
  const Value v = random_value(65536, 5);
  uint32_t i = 1;
  for (auto _ : state) {
    auto b = codec->encode_block(v, i);
    benchmark::DoNotOptimize(b);
    i = i % 12 + 1;
  }
}
BENCHMARK(BM_EncodeSingleBlock);

}  // namespace
}  // namespace sbrs::codec

BENCHMARK_MAIN();
